// Corpus & checkpoint regression harness: the mmap trace store's bulk-read
// path against TraceSet::load, append/commit throughput, checkpoint
// kill/resume identity, and the multi-process shard merge identity.
//
// Modes:
//   * default / --json [--smoke]: run the harness, emit BENCH_corpus.json,
//     and exit nonzero if an identity gate fails (always) or the read
//     speedup gate fails (full runs only; --smoke shrinks the corpus far
//     below the regime the ISSUE's 100k-trace floor is specified at).
//
// The read leg is the headline number: at 100k stored traces the zero-copy
// mmap scan must beat the stream-parsing TraceSet::load by >= 5x. Identity
// legs assert the DESIGN.md §8 contract — kill/resume and 1/2/4-shard runs
// are byte-identical to the plain in-memory campaign.

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "core/acquisition.hpp"
#include "core/attack.hpp"
#include "core/campaign_checkpoint.hpp"
#include "core/campaign_runner.hpp"
#include "core/corpus_campaign.hpp"
#include "core/shard_driver.hpp"
#include "corpus/trace_store.hpp"
#include "lwe/dbdd.hpp"
#include "obs/diagnostics.hpp"
#include "sca/trace.hpp"

using namespace reveal;
using namespace reveal::core;

namespace {

constexpr double kReadSpeedupGate = 5.0;  // corpus scan vs TraceSet::load

struct Timer {
  std::chrono::steady_clock::time_point t0 = std::chrono::steady_clock::now();
  [[nodiscard]] double ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
  }
};

template <typename F>
double time_best_ms(F&& f, int passes) {
  double best = std::numeric_limits<double>::infinity();
  for (int p = 0; p < passes; ++p) {
    Timer t;
    f();
    best = std::min(best, t.ms());
  }
  return best;
}

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) return true;
  return false;
}

CampaignConfig degraded_config() {
  CampaignConfig cfg;
  cfg.n = 64;
  cfg.faults.jitter_sigma = 0.4;
  cfg.faults.dropout_rate = 0.02;
  cfg.faults.glitch_count = 2;
  return cfg;
}

lwe::DbddParams paper_params() {
  lwe::DbddParams params;
  params.secret_dim = 1024;
  params.error_dim = 1024;
  params.q = 132120577.0;
  params.secret_variance = 3.2 * 3.2;
  params.error_variance = 3.2 * 3.2;
  return params;
}

bool reports_identical(const sca::RecoveryReport& a, const sca::RecoveryReport& b) {
  return a == b;
}

std::string diag_json(const obs::Registry& registry,
                      const sca::ConfusionMatrix& confusion) {
  return obs::make_report(registry, nullptr, &confusion).to_json();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string bytes{std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>()};
  return bytes;
}

// Bitwise content digest over one trace: XOR-folds the sample bit patterns
// across four lanes (bandwidth-bound, no serial FP dependency chain), mixed
// with the label and length. Equal digests in the same trace order certify
// the two stores served byte-identical content without adding a shared
// FP-latency floor to both timed legs.
std::uint64_t trace_digest(std::int32_t label, const double* samples,
                           std::size_t count) {
  std::uint64_t lanes[4] = {0, 0, 0, 0};
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    std::uint64_t bits[4];
    std::memcpy(bits, samples + i, sizeof(bits));
    lanes[0] ^= bits[0];
    lanes[1] ^= bits[1];
    lanes[2] ^= bits[2];
    lanes[3] ^= bits[3];
  }
  for (; i < count; ++i) {
    std::uint64_t bits;
    std::memcpy(&bits, samples + i, sizeof(bits));
    lanes[i % 4] ^= bits;
  }
  std::uint64_t digest = (lanes[0] * 3) ^ (lanes[1] * 5) ^ (lanes[2] * 7) ^
                         (lanes[3] * 11);
  return digest ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(label)) *
                   0x9E3779B97F4A7C15ull) ^
         count;
}

int run_json_harness(bool smoke) {
  const char* out_path = "BENCH_corpus.json";
  const std::string scratch = "BENCH_corpus_scratch_";

  // ---- leg 1: bulk read — mmap corpus scan vs TraceSet::load -------------
  // Synthetic traces: the leg measures storage, not acquisition. Both timed
  // loops fold every served sample into an order-sensitive bitwise digest
  // (see trace_digest), so each pass touches all payload bytes and equal
  // digests certify byte-identical content.
  // Smoke still stores enough traces that the timed scan is well above
  // timer noise — the regression diff gates on the speedup ratio.
  const std::size_t read_traces = smoke ? 20000 : 100000;
  const std::size_t samples_per_trace = 64;
  const std::string corpus_path = scratch + "read.rvlc";
  const std::string traceset_path = scratch + "read.trc";
  {
    std::mt19937_64 rng(0xC0FFEE);
    std::normal_distribution<double> gauss;
    corpus::CorpusWriter writer = corpus::CorpusWriter::create(corpus_path);
    sca::TraceSet set;
    std::vector<double> samples(samples_per_trace);
    for (std::size_t i = 0; i < read_traces; ++i) {
      for (double& v : samples) v = gauss(rng);
      writer.add(static_cast<std::int32_t>(i % 7), samples);
      sca::Trace trace;
      trace.label = static_cast<std::int32_t>(i % 7);
      trace.samples = samples;
      set.add(std::move(trace));
    }
    writer.close();
    set.save(traceset_path);
  }
  const int read_passes = smoke ? 3 : 5;
  std::uint64_t corpus_digest = 0;
  std::size_t corpus_count = 0;
  const double corpus_ms = time_best_ms(
      [&] {
        corpus::ReaderOptions options;
        options.verify_payload_crc = false;  // bulk re-read of a local file
        corpus::CorpusReader reader(corpus_path, options);
        std::uint64_t digest = 0;
        for (std::size_t i = 0; i < reader.size(); ++i) {
          const corpus::TraceView view = reader[i];
          digest = digest * 0x100000001B3ull ^
                   trace_digest(view.label, view.samples.data(), view.samples.size());
        }
        corpus_digest = digest;
        corpus_count = reader.size();
      },
      read_passes);
  std::uint64_t traceset_digest = 0;
  std::size_t traceset_count = 0;
  const double traceset_ms = time_best_ms(
      [&] {
        const sca::TraceSet loaded = sca::TraceSet::load(traceset_path);
        std::uint64_t digest = 0;
        for (std::size_t i = 0; i < loaded.size(); ++i) {
          digest = digest * 0x100000001B3ull ^
                   trace_digest(loaded[i].label, loaded[i].samples.data(),
                                loaded[i].samples.size());
        }
        traceset_digest = digest;
        traceset_count = loaded.size();
      },
      read_passes);
  const double read_speedup = traceset_ms / corpus_ms;
  const bool read_identical = corpus_digest == traceset_digest &&
                              corpus_count == traceset_count &&
                              corpus_count == read_traces;

  // ---- leg 2: append/commit throughput + crash-safe reopen ---------------
  const std::size_t append_traces = smoke ? 10000 : 50000;
  const std::string append_path = scratch + "append.rvlc";
  std::vector<double> append_sample(samples_per_trace, 1.25);
  const double append_ms = time_best_ms(
      [&] {
        corpus::CorpusWriter writer = corpus::CorpusWriter::create(append_path);
        for (std::size_t i = 0; i < append_traces; ++i)
          writer.add(static_cast<std::int32_t>(i), append_sample);
        writer.close();
      },
      1);
  bool append_identical = false;
  {
    // Reopen-for-append must resume exactly where the commit pointer left
    // the file, and the reader must see the full sequence afterwards.
    corpus::CorpusWriter writer = corpus::CorpusWriter::append(append_path);
    const bool resumed = writer.committed_traces() == append_traces;
    writer.add(-1, append_sample);
    writer.close();
    corpus::CorpusReader reader(append_path);
    append_identical = resumed && reader.size() == append_traces + 1 &&
                       reader[append_traces].label == -1 &&
                       reader[0].label == 0;
  }
  const double append_per_sec = 1000.0 * static_cast<double>(append_traces) / append_ms;

  // ---- campaign legs share one trained attack and one reference run ------
  const CampaignConfig cfg = degraded_config();
  const lwe::DbddParams params = paper_params();
  const HintPolicy policy;
  const std::uint64_t base_seed = 424242;
  const std::size_t captures = smoke ? 6 : 24;

  RevealAttack attack;
  {
    CampaignConfig clean;
    clean.n = 64;
    clean.num_workers = 0;
    SamplerCampaign profiler(clean);
    attack.train(profiler.collect_windows(120, /*seed_base=*/1));
  }
  CampaignRunner serial(0);
  CampaignDiagnostics reference_diag;
  const RecoveryCampaignResult reference = serial.run_recovery_campaign(
      attack, cfg, CampaignRunner::stream_seeds(base_seed, captures), policy, params,
      &reference_diag);
  const std::string reference_json =
      diag_json(reference_diag.registry, reference_diag.confusion);

  // ---- leg 3: checkpoint kill/resume identity ----------------------------
  const std::string ckpt_path = scratch + "campaign.ckpt";
  std::remove(ckpt_path.c_str());
  CheckpointOptions uninterrupted_options;
  uninterrupted_options.path = ckpt_path;
  uninterrupted_options.batch_size = 4;
  Timer unint_timer;
  const CheckpointedCampaignResult uninterrupted = run_recovery_campaign_checkpointed(
      serial, attack, cfg, base_seed, captures, policy, params, uninterrupted_options);
  const double uninterrupted_ms = unint_timer.ms();

  CheckpointOptions resume_options = uninterrupted_options;
  resume_options.max_batches_per_call = 1;  // simulated kill at every batch
  std::remove(ckpt_path.c_str());
  Timer resume_timer;
  CheckpointedCampaignResult resumed;
  do {
    CampaignRunner runner(0);  // a fresh process every time, in effect
    resumed = run_recovery_campaign_checkpointed(runner, attack, cfg, base_seed,
                                                 captures, policy, params,
                                                 resume_options);
  } while (!resumed.complete);
  const double resumed_ms = resume_timer.ms();

  const bool checkpoint_identical =
      uninterrupted.complete &&
      reports_identical(uninterrupted.report, reference.report) &&
      uninterrupted.hints == reference.hints &&
      reports_identical(resumed.report, reference.report) &&
      resumed.hints == reference.hints &&
      diag_json(uninterrupted.diagnostics.registry,
                uninterrupted.diagnostics.confusion) == reference_json &&
      diag_json(resumed.diagnostics.registry, resumed.diagnostics.confusion) ==
          reference_json;

  // ---- leg 4: shard merge identity (1/2/4 shards) ------------------------
  bool shard_identical = true;
  Timer shard_timer;
  for (const std::size_t shards : {1u, 2u, 4u}) {
    ShardOptions options;
    options.shards = shards;
    options.work_dir = ".";
    options.in_process = true;  // byte-identical to fork mode by contract
    const ShardedCampaignResult sharded =
        run_sharded_campaign(attack, cfg, base_seed, captures, policy, params, options);
    shard_identical = shard_identical &&
                      reports_identical(sharded.report, reference.report) &&
                      sharded.hints == reference.hints &&
                      diag_json(sharded.diagnostics.registry,
                                sharded.diagnostics.confusion) == reference_json;
  }
  const double shard_ms = shard_timer.ms();

  // Sharded corpus construction: the merged file must not depend on the
  // shard count.
  bool shard_corpus_identical = true;
  {
    std::string first;
    for (const std::size_t shards : {1u, 2u}) {
      ShardOptions options;
      options.shards = shards;
      options.work_dir = ".";
      options.in_process = true;
      const std::string dest = scratch + "sharded" + std::to_string(shards) + ".rvlc";
      build_sharded_corpus(dest, cfg, base_seed, captures, options);
      const std::string bytes = read_file(dest);
      if (shards == 1) {
        first = bytes;
      } else {
        shard_corpus_identical = shard_corpus_identical && !bytes.empty() &&
                                 bytes == first;
      }
      std::remove(dest.c_str());
    }
  }

  // ---- gates -------------------------------------------------------------
  const bool identity_ok = read_identical && append_identical &&
                           checkpoint_identical && shard_identical &&
                           shard_corpus_identical;
  const bool speedups_ok = smoke || read_speedup >= kReadSpeedupGate;
  const bool passed = identity_ok && speedups_ok;

  FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench_corpus: cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"corpus\",\n  \"smoke\": %s,\n",
               smoke ? "true" : "false");
  std::fprintf(out,
               "  \"corpus_read\": {\"traces\": %zu, \"samples_per_trace\": %zu, "
               "\"corpus_ms\": %.2f, \"traceset_ms\": %.2f, \"speedup\": %.2f, "
               "\"identical\": %s},\n",
               read_traces, samples_per_trace, corpus_ms, traceset_ms, read_speedup,
               read_identical ? "true" : "false");
  std::fprintf(out,
               "  \"corpus_append\": {\"traces\": %zu, \"append_ms\": %.2f, "
               "\"traces_per_sec\": %.0f, \"identical\": %s},\n",
               append_traces, append_ms, append_per_sec,
               append_identical ? "true" : "false");
  std::fprintf(out,
               "  \"checkpoint_resume\": {\"captures\": %zu, \"batch_size\": %zu, "
               "\"uninterrupted_ms\": %.2f, \"resumed_ms\": %.2f, \"identical\": %s},\n",
               captures, uninterrupted_options.batch_size, uninterrupted_ms,
               resumed_ms, checkpoint_identical ? "true" : "false");
  std::fprintf(out,
               "  \"shard_merge\": {\"captures\": %zu, \"shard_counts\": [1, 2, 4], "
               "\"wall_ms\": %.2f, \"identical\": %s, \"corpus_identical\": %s},\n",
               captures, shard_ms, shard_identical ? "true" : "false",
               shard_corpus_identical ? "true" : "false");
  std::fprintf(out,
               "  \"gates\": {\"read_speedup_min\": %.1f, \"enforced\": %s},\n",
               kReadSpeedupGate, smoke ? "false" : "true");
  std::fprintf(out, "  \"passed\": %s\n}\n", passed ? "true" : "false");
  std::fclose(out);

  std::printf("corpus_read       %7zu traces  corpus %8.2f ms  traceset %8.2f ms  "
              "speedup %5.2fx  identical %d\n",
              read_traces, corpus_ms, traceset_ms, read_speedup, read_identical);
  std::printf("corpus_append     %7zu traces  %8.2f ms  (%.0f traces/s)  resume ok %d\n",
              append_traces, append_ms, append_per_sec, append_identical);
  std::printf("checkpoint_resume %7zu captures  uninterrupted %8.2f ms  resumed "
              "%8.2f ms  identical %d\n",
              captures, uninterrupted_ms, resumed_ms, checkpoint_identical);
  std::printf("shard_merge       %7zu captures  1/2/4 shards  %8.2f ms  identical %d  "
              "corpus identical %d\n",
              captures, shard_ms, shard_identical, shard_corpus_identical);

  std::remove(corpus_path.c_str());
  std::remove(traceset_path.c_str());
  std::remove(append_path.c_str());
  std::remove(ckpt_path.c_str());

  if (!passed) {
    std::fprintf(stderr, "bench_corpus: gate FAILED (identity %s, speedups %s)\n",
                 identity_ok ? "ok" : "FAILED", speedups_ok ? "ok" : "FAILED");
    return 1;
  }
  std::printf("bench_corpus: all gates passed\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = has_flag(argc, argv, "--smoke");
  (void)has_flag(argc, argv, "--json");
  return run_json_harness(smoke);
}
