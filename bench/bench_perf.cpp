// Microbenchmarks of the core primitives: NTT, BFV encrypt/decrypt, the
// RISC-V victim simulation, trace segmentation, template scoring and LLL —
// the cost profile of the whole reproduction.
//
// Two modes:
//   * default: google-benchmark over the registered BM_* functions
//     (supports the usual --benchmark_* flags);
//   * --json [--smoke] [--tier reference|predecode|block]: the hot-path
//     regression harness. Hand-rolled steady_clock loops time the victim
//     simulator's full execution ladder (decode-per-step reference,
//     predecode cache, basic-block translation) and the shared-work
//     template scoring against their pre-optimization references, plus
//     segmentation / capture / NTT throughput, and emit BENCH_perf.json
//     (BENCH_perf_<tier>.json for non-default --tier). --tier pins the
//     capture-throughput leg's execution tier; the victim-sim leg always
//     measures all three. The run fails (nonzero exit) if the fast paths
//     are not byte-identical: every tier must produce identical InstrEvent
//     streams, cycle counts and decoded noise, and the golden fixture's
//     committed recovery (tests/data/golden_expected.txt) must replay
//     exactly through the optimized pipeline. --smoke shrinks the
//     iteration counts and skips the speedup thresholds (identity is
//     still enforced) so CTest can run the gate quickly.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/acquisition.hpp"
#include "core/attack.hpp"
#include "core/campaign_runner.hpp"
#include "core/hints.hpp"
#include "core/victim.hpp"
#include "lwe/dbdd.hpp"
#include "lattice/lattice.hpp"
#include "numeric/matrix.hpp"
#include "numeric/rng.hpp"
#include "sca/alignment.hpp"
#include "sca/class_stats.hpp"
#include "sca/poi.hpp"
#include "sca/segmentation.hpp"
#include "sca/template_attack.hpp"
#include "sca/trace.hpp"
#include "sca/tvla.hpp"
#include "seal/decryptor.hpp"
#include "seal/encryptor.hpp"
#include "seal/keys.hpp"
#include "seal/ntt.hpp"
#include "seal/ntt_fast.hpp"

using namespace reveal;

namespace {

// --------------------------------------------------------------------------
// Shared helpers for the --json harness
// --------------------------------------------------------------------------

/// The pre-PR victim execution shape: decode-per-step interpretation with a
/// runtime observer null check (Machine::run_reference).
core::VictimRun run_victim_reference(const core::VictimProgram& prog, riscv::Machine& machine,
                                     std::uint32_t seed,
                                     riscv::ExecutionObserver* observer = nullptr) {
  core::detail::prepare_victim_run(prog, machine, seed);
  const auto reason =
      machine.run_reference(core::detail::victim_instruction_limit(prog), observer);
  return core::detail::finish_victim_run(prog, machine, reason);
}

/// Times f(i) over `iters` calls after a small warmup; returns ns per call.
template <typename F>
double time_ns_per_op(F&& f, std::size_t iters) {
  for (std::size_t i = 0; i < 3 && i < iters; ++i) f(i);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) f(i);
  const auto t1 = std::chrono::steady_clock::now();
  const double ns =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  return ns / static_cast<double>(iters);
}

/// Records every InstrEvent for field-by-field stream comparison.
struct EventCollector final : riscv::ExecutionObserver {
  std::vector<riscv::InstrEvent> events;
  void on_instruction(const riscv::InstrEvent& e) override { events.push_back(e); }
};

bool events_equal(const riscv::InstrEvent& a, const riscv::InstrEvent& b) {
  return a.pc == b.pc && a.op == b.op && a.klass == b.klass && a.rd == b.rd &&
         a.rs1_val == b.rs1_val && a.rs2_val == b.rs2_val && a.rd_old == b.rd_old &&
         a.rd_new == b.rd_new && a.rd_written == b.rd_written &&
         a.branch_taken == b.branch_taken && a.mem_addr == b.mem_addr &&
         a.mem_data == b.mem_data && a.is_mem_read == b.is_mem_read &&
         a.is_mem_write == b.is_mem_write && a.cycles == b.cycles;
}

/// Every tier of the execution ladder (reference -> predecode -> block)
/// over several seeds: event streams, cycle/instruction counters and
/// decoded noise must all match the decode-per-step anchor exactly.
bool victim_identity_gate() {
  const core::VictimProgram prog = core::build_sampler_firmware(64, {132120577ULL});
  riscv::Machine ref_machine(prog.memory_bytes);
  riscv::Machine pre_machine(prog.memory_bytes);
  riscv::Machine blk_machine(prog.memory_bytes);
  for (std::uint32_t seed = 1; seed <= 5; ++seed) {
    EventCollector ref_events;
    EventCollector pre_events;
    EventCollector blk_events;
    const core::VictimRun ref = core::run_victim_tier(
        prog, ref_machine, seed, core::VictimTier::kReference, &ref_events);
    const core::VictimRun pre = core::run_victim_tier(
        prog, pre_machine, seed, core::VictimTier::kPredecode, &pre_events);
    const core::VictimRun blk = core::run_victim_tier(
        prog, blk_machine, seed, core::VictimTier::kBlock, &blk_events);
    for (const core::VictimRun* run : {&pre, &blk}) {
      if (run->noise != ref.noise || run->cycles != ref.cycles ||
          run->instructions != ref.instructions)
        return false;
    }
    for (const EventCollector* col : {&pre_events, &blk_events}) {
      if (col->events.size() != ref_events.events.size()) return false;
      for (std::size_t i = 0; i < col->events.size(); ++i) {
        if (!events_equal(col->events[i], ref_events.events[i])) return false;
      }
    }
  }
  return true;
}

const char* tier_name(core::VictimTier tier) {
  switch (tier) {
    case core::VictimTier::kReference: return "reference";
    case core::VictimTier::kPredecode: return "predecode";
    case core::VictimTier::kBlock: return "block";
  }
  return "block";
}

/// A template set of the attack's shape: K labels, pooled SPD covariance.
sca::TemplateSet make_template_set(std::size_t num_classes, std::size_t dim,
                                   std::uint64_t seed) {
  num::Xoshiro256StarStar rng(seed);
  num::Matrix a(dim, dim);
  for (std::size_t i = 0; i < dim; ++i)
    for (std::size_t j = 0; j < dim; ++j) a(i, j) = rng.gaussian(0.0, 1.0);
  num::Matrix cov(dim, dim);
  for (std::size_t i = 0; i < dim; ++i) {
    for (std::size_t j = 0; j < dim; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < dim; ++k) acc += a(k, i) * a(k, j);
      cov(i, j) = acc / static_cast<double>(dim);
    }
  }
  num::add_ridge(cov, 0.05);
  std::vector<sca::TemplateSet::ClassTemplate> classes(num_classes);
  const std::int32_t half = static_cast<std::int32_t>(num_classes / 2);
  for (std::size_t c = 0; c < num_classes; ++c) {
    classes[c].label = static_cast<std::int32_t>(c) - half;
    classes[c].count = 16;
    classes[c].mean.resize(dim);
    for (double& m : classes[c].mean) m = rng.gaussian(0.0, 2.0);
  }
  return sca::TemplateSet(std::move(classes), std::move(cov));
}

struct ExpectedWindow {
  std::size_t index = 0;
  int sign = 0;
  int value = 0;
  int quality = 0;
  long long truth = 0;
};

/// Replays the committed golden-fixture recovery (same pinned configuration
/// as tests/test_golden_fixture.cpp) through the optimized pipeline; every
/// window's integer decision must match the committed expectation.
bool golden_identity_gate() {
  const std::string dir = REVEAL_GOLDEN_DATA_DIR;
  const sca::TraceSet set = sca::TraceSet::load(dir + "/golden_trace.bin");
  if (set.size() != 1) return false;

  std::vector<ExpectedWindow> expected;
  std::ifstream in(dir + "/golden_expected.txt");
  if (!in.good()) return false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    ExpectedWindow w;
    if (std::sscanf(line.c_str(), "%zu %d %d %d %lld", &w.index, &w.sign, &w.value,
                    &w.quality, &w.truth) != 5)
      return false;
    expected.push_back(w);
  }

  core::CampaignConfig capture_cfg;
  capture_cfg.n = 16;
  capture_cfg.num_workers = 0;
  if (expected.size() != capture_cfg.n) return false;

  core::CampaignConfig train_cfg;
  train_cfg.n = 64;
  train_cfg.num_workers = 0;
  core::SamplerCampaign profiler(train_cfg);
  core::AttackConfig acfg;
  acfg.abstain_margin = 0.30;
  acfg.low_confidence_margin = 0.45;
  acfg.value_commit_threshold = 0.05;
  acfg.sign_fit_threshold = 2.5;
  acfg.value_fit_threshold = 4.0;
  core::RevealAttack attack(acfg);
  attack.train(profiler.collect_windows(120, /*seed_base=*/1));

  const core::RobustCaptureResult res = attack.attack_capture_robust(
      set[0].samples, capture_cfg.n, capture_cfg.segmentation);
  if (res.guesses.size() != expected.size()) return false;
  for (const ExpectedWindow& w : expected) {
    const core::CoefficientGuess& g = res.guesses[w.index];
    if (g.sign != w.sign || g.value != w.value || static_cast<int>(g.quality) != w.quality)
      return false;
  }
  return true;
}

// --------------------------------------------------------------------------
// Analysis-plane leg inputs
// --------------------------------------------------------------------------

bool segments_equal(const std::vector<sca::Segment>& a,
                    const std::vector<sca::Segment>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].burst_begin != b[i].burst_begin || a[i].burst_end != b[i].burst_end ||
        a[i].window_begin != b[i].window_begin || a[i].window_end != b[i].window_end)
      return false;
  }
  return true;
}

/// Fast vs reference sweep result: everything except `attempts` (the fast
/// path skips duplicate candidates by design) must match bit-for-bit.
bool sweep_results_equal(const sca::SegmentationResult& fast,
                         const sca::SegmentationResult& ref) {
  return fast.status == ref.status && segments_equal(fast.segments, ref.segments) &&
         fast.window_quality == ref.window_quality &&
         fast.config.smooth_window == ref.config.smooth_window &&
         fast.config.threshold == ref.config.threshold &&
         fast.config.min_burst_length == ref.config.min_burst_length &&
         fast.burst_consistency == ref.burst_consistency;
}

/// A jittery alignment pair: a noisy burst pattern and a shifted noisy copy.
struct AlignmentPair {
  std::vector<double> reference;
  std::vector<double> trace;
};

AlignmentPair make_alignment_pair(std::size_t length, std::ptrdiff_t shift,
                                  std::uint64_t seed) {
  num::Xoshiro256StarStar rng(seed);
  AlignmentPair p;
  p.reference.resize(length);
  for (std::size_t i = 0; i < length; ++i) {
    const double burst = (i / 96) % 3 == 0 ? 2.5 : 0.3;
    p.reference[i] = burst + rng.gaussian(0.0, 0.25);
  }
  p.trace = sca::apply_shift(p.reference, shift);
  for (double& v : p.trace) v += rng.gaussian(0.0, 0.1);
  return p;
}

/// A labelled trace set of the attack's shape: one mean level per label
/// plus noise, leaking at a few sample points.
sca::TraceSet make_labelled_set(std::size_t num_classes, std::size_t traces_per_class,
                                std::size_t length, std::uint64_t seed) {
  num::Xoshiro256StarStar rng(seed);
  sca::TraceSet set;
  const std::int32_t half = static_cast<std::int32_t>(num_classes / 2);
  for (std::size_t t = 0; t < traces_per_class; ++t) {
    for (std::size_t c = 0; c < num_classes; ++c) {
      sca::Trace trace;
      trace.label = static_cast<std::int32_t>(c) - half;
      trace.samples.resize(length);
      for (std::size_t i = 0; i < length; ++i) {
        const double leak = i % 37 == 5 ? 0.08 * static_cast<double>(trace.label) : 0.0;
        trace.samples[i] = leak + rng.gaussian(0.0, 1.0);
      }
      set.add(std::move(trace));
    }
  }
  return set;
}

/// A fixed-seed LLL instance: near-diagonal with dense noise, the shape the
/// DBDD embedding produces after hint intersection.
lattice::Basis make_lll_basis(std::size_t n, std::uint64_t seed) {
  num::Xoshiro256StarStar rng(seed);
  lattice::Basis basis(n, std::vector<std::int64_t>(n, 0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) basis[i][j] = rng.uniform_int(-50, 50);
    basis[i][i] += 150;
  }
  return basis;
}

// --------------------------------------------------------------------------
// Observability-overhead leg inputs
// --------------------------------------------------------------------------

bool guesses_equal(const core::CoefficientGuess& a, const core::CoefficientGuess& b) {
  return a.sign == b.sign && a.value == b.value && a.support == b.support &&
         a.posterior == b.posterior && a.quality == b.quality &&
         a.sign_trusted == b.sign_trusted && a.sign_margin == b.sign_margin;
}

/// Bit-equality of two campaign results over every field the equivalence
/// suite pins (guesses, hints, report counters, bikz/bits).
bool campaign_results_equal(const core::RecoveryCampaignResult& a,
                            const core::RecoveryCampaignResult& b) {
  if (a.captures.size() != b.captures.size()) return false;
  for (std::size_t i = 0; i < a.captures.size(); ++i) {
    const auto& sa = a.captures[i].segmentation;
    const auto& sb = b.captures[i].segmentation;
    if (sa.status != sb.status || sa.attempts != sb.attempts ||
        sa.burst_consistency != sb.burst_consistency ||
        sa.window_quality != sb.window_quality)
      return false;
    if (a.captures[i].guesses.size() != b.captures[i].guesses.size()) return false;
    for (std::size_t g = 0; g < a.captures[i].guesses.size(); ++g) {
      if (!guesses_equal(a.captures[i].guesses[g], b.captures[i].guesses[g])) return false;
    }
  }
  if (a.hints != b.hints) return false;
  if (a.hint_totals.perfect != b.hint_totals.perfect ||
      a.hint_totals.approximate != b.hint_totals.approximate ||
      a.hint_totals.sign_only != b.hint_totals.sign_only ||
      a.hint_totals.skipped != b.hint_totals.skipped ||
      a.hint_totals.mean_residual_variance != b.hint_totals.mean_residual_variance)
    return false;
  const auto& ra = a.report;
  const auto& rb = b.report;
  return ra.expected_windows == rb.expected_windows &&
         ra.recovered_windows == rb.recovered_windows &&
         ra.segmentation_status == rb.segmentation_status &&
         ra.segmentation_attempts == rb.segmentation_attempts &&
         ra.burst_consistency == rb.burst_consistency &&
         ra.ok_guesses == rb.ok_guesses &&
         ra.low_confidence_guesses == rb.low_confidence_guesses &&
         ra.abstained_guesses == rb.abstained_guesses &&
         ra.perfect_hints == rb.perfect_hints &&
         ra.approximate_hints == rb.approximate_hints &&
         ra.sign_only_hints == rb.sign_only_hints &&
         ra.dropped_hints == rb.dropped_hints && ra.bikz == rb.bikz &&
         ra.bits == rb.bits;
}

// --------------------------------------------------------------------------
// --json harness
// --------------------------------------------------------------------------

int run_json_harness(bool smoke, core::VictimTier capture_tier) {
  // Block tier vs the decode-per-step anchor, and vs the predecode tier it
  // sits above: the tentpole gates of the translated execution tier.
  constexpr double kVictimBlockVsReferenceGate = 10.0;
  constexpr double kVictimBlockVsPredecodeGate = 3.5;
  constexpr double kTemplateSpeedupGate = 3.0;
  constexpr double kSegSweepSpeedupGate = 3.0;
  constexpr double kAlignSpeedupGate = 4.0;
  constexpr double kClassStatsSpeedupGate = 2.0;
  constexpr double kLllSpeedupGate = 2.0;
  constexpr double kTStatTolerance = 1e-9;
  constexpr double kObsOverheadGate = 0.02;  // observability must cost < 2%

  // --- victim simulation: the full execution ladder -----------------------
  // All three tiers are timed every run (reference -> predecode -> block) so
  // the regression gate tracks the whole ladder; min over repeated passes
  // keeps the tier ratios stable against scheduler noise.
  const core::VictimProgram prog = core::build_sampler_firmware(64, {132120577ULL});
  const std::size_t victim_iters = smoke ? 20 : 300;
  std::uint64_t sink = 0;
  const auto time_victim_tier = [&](core::VictimTier tier) {
    riscv::Machine m(prog.memory_bytes);
    double best = std::numeric_limits<double>::infinity();
    for (int pass = 0; pass < (smoke ? 2 : 3); ++pass) {
      best = std::min(
          best, time_ns_per_op(
                    [&](std::size_t i) {
                      const auto run = core::run_victim_tier(
                          prog, m, static_cast<std::uint32_t>(i + 1), tier);
                      sink += run.cycles;
                    },
                    victim_iters));
    }
    return best;
  };
  const double victim_block_ns = time_victim_tier(core::VictimTier::kBlock);
  const double victim_pre_ns = time_victim_tier(core::VictimTier::kPredecode);
  const double victim_ref_ns = time_victim_tier(core::VictimTier::kReference);
  const double victim_speedup = victim_block_ns > 0.0 ? victim_ref_ns / victim_block_ns : 0.0;
  const double victim_speedup_pre =
      victim_block_ns > 0.0 ? victim_pre_ns / victim_block_ns : 0.0;

  // --- template scoring: shared-work factorization vs per-class loops ----
  const std::size_t dim = 12;
  const std::size_t num_classes = 25;  // sign classes + value classes of the attack
  const sca::TemplateSet templates = make_template_set(num_classes, dim, 99);
  num::Xoshiro256StarStar obs_rng(7);
  std::vector<std::vector<double>> observations(smoke ? 64 : 512);
  for (auto& obs : observations) {
    obs.resize(dim);
    for (double& v : obs) v = obs_rng.gaussian(0.0, 2.0);
  }
  const std::size_t score_iters = smoke ? 2000 : 40000;
  double fsink = 0.0;
  const double score_fast_ns = time_ns_per_op(
      [&](std::size_t i) {
        const auto d = templates.mahalanobis(observations[i % observations.size()]);
        fsink += d.back();
      },
      score_iters);
  const double score_ref_ns = time_ns_per_op(
      [&](std::size_t i) {
        const auto d = templates.mahalanobis_reference(observations[i % observations.size()]);
        fsink += d.back();
      },
      score_iters);
  const double score_speedup = score_ref_ns > 0.0 ? score_ref_ns / score_fast_ns : 0.0;
  double score_max_delta = 0.0;
  for (const auto& obs : observations) {
    const auto fast = templates.mahalanobis(obs);
    const auto ref = templates.mahalanobis_reference(obs);
    for (std::size_t c = 0; c < fast.size(); ++c) {
      score_max_delta = std::max(score_max_delta, std::fabs(fast[c] - ref[c]));
    }
  }

  // --- capture + segmentation throughput ---------------------------------
  // The capture leg runs at the tier selected by --tier (default: block,
  // the campaign default), reported as per-capture ms / captures-per-second
  // — the acquisition-plane throughput the tier ladder exists to buy.
  core::CampaignConfig cfg = bench::default_campaign(64);
  cfg.num_workers = 0;
  cfg.victim_tier = capture_tier;
  core::SamplerCampaign campaign(cfg);
  core::FullCapture cap;
  const double capture_ns = time_ns_per_op(
      [&](std::size_t i) {
        campaign.capture_into(i + 1, cap);
        sink += cap.trace.size();
      },
      smoke ? 10 : 100);
  const double capture_ms = capture_ns / 1e6;
  const double captures_per_second = capture_ns > 0.0 ? 1e9 / capture_ns : 0.0;
  campaign.capture_into(12345, cap);
  const double segment_ns = time_ns_per_op(
      [&](std::size_t) {
        const auto segs = sca::segment_trace(cap.trace, cfg.segmentation);
        sink += segs.size();
      },
      smoke ? 20 : 200);

  // --- robust segmentation sweep: shared-work vs full re-segmentation ----
  // A mismatched expected count forces the complete sweep (the worst case
  // the degraded-capture pipeline hits); the fast path smooths once per
  // distinct window and scans bursts once per (window, threshold).
  const std::size_t sweep_expected = cfg.n + 5;
  // Min over alternating short windows: one long window per leg lets a
  // single scheduling episode land on just one side and swing the ratio
  // across the gate.
  double sweep_fast_ns = std::numeric_limits<double>::infinity();
  double sweep_ref_ns = std::numeric_limits<double>::infinity();
  for (int pass = 0; pass < (smoke ? 1 : 6); ++pass) {
    sweep_fast_ns = std::min(
        sweep_fast_ns, time_ns_per_op(
                           [&](std::size_t) {
                             const auto res =
                                 sca::segment_trace_robust(cap.trace, sweep_expected);
                             sink += res.attempts;
                           },
                           smoke ? 3 : 4));
    sweep_ref_ns = std::min(
        sweep_ref_ns, time_ns_per_op(
                          [&](std::size_t) {
                            const auto res = sca::segment_trace_robust_reference(
                                cap.trace, sweep_expected);
                            sink += res.attempts;
                          },
                          smoke ? 3 : 2));
  }
  const double sweep_speedup = sweep_fast_ns > 0.0 ? sweep_ref_ns / sweep_fast_ns : 0.0;
  bool sweep_identical = true;
  for (const std::size_t expected : {cfg.n, sweep_expected, cfg.n / 2}) {
    const auto fast = sca::segment_trace_robust(cap.trace, expected);
    const auto ref = sca::segment_trace_robust_reference(cap.trace, expected);
    if (!sweep_results_equal(fast, ref)) sweep_identical = false;
  }

  // --- alignment: FFT screen + exact re-score vs O(L * lag) scan ---------
  const std::size_t align_len = smoke ? 16384 : 65536;
  const std::size_t align_shift = smoke ? 256 : 512;
  const AlignmentPair align_pair = make_alignment_pair(align_len, 137, 21);
  const double align_fast_ns = time_ns_per_op(
      [&](std::size_t) {
        const auto r =
            sca::find_alignment(align_pair.reference, align_pair.trace, align_shift);
        sink += static_cast<std::uint64_t>(r.shift + 4096);
      },
      smoke ? 2 : 12);
  const double align_ref_ns = time_ns_per_op(
      [&](std::size_t) {
        const auto r = sca::find_alignment_reference(align_pair.reference,
                                                     align_pair.trace, align_shift);
        sink += static_cast<std::uint64_t>(r.shift + 4096);
      },
      smoke ? 2 : 12);
  const double align_speedup = align_fast_ns > 0.0 ? align_ref_ns / align_fast_ns : 0.0;
  bool align_identical = true;
  for (std::uint64_t seed = 31; seed <= 35; ++seed) {
    const AlignmentPair p = make_alignment_pair(
        8192, static_cast<std::ptrdiff_t>(seed % 7) * 29 - 87, seed);
    const auto fast = sca::find_alignment(p.reference, p.trace, 192);
    const auto ref = sca::find_alignment_reference(p.reference, p.trace, 192);
    if (fast.shift != ref.shift || fast.correlation != ref.correlation)
      align_identical = false;
  }

  // --- class stats: one streaming pass vs per-deliverable re-reads -------
  // Deliverable: class means, SOSD curve, POIs and the pairwise |t|
  // distinguishability matrix. The reference path re-reads the trace set
  // for the means and twice per population per pair; ClassStats reads every
  // trace once and answers each pair from its accumulated state.
  const std::size_t cs_classes = 25;
  const std::size_t cs_per_class = smoke ? 8 : 24;
  const std::size_t cs_len = 256;
  const sca::TraceSet cs_set = make_labelled_set(cs_classes, cs_per_class, cs_len, 77);
  std::vector<sca::TraceSet> cs_pops(cs_classes);
  const std::int32_t cs_half = static_cast<std::int32_t>(cs_classes / 2);
  for (const sca::Trace& t : cs_set) {
    cs_pops[static_cast<std::size_t>(t.label + cs_half)].add(t);
  }
  const std::size_t cs_iters = smoke ? 2 : 10;
  const double cs_fast_ns = time_ns_per_op(
      [&](std::size_t) {
        sca::ClassStats acc(cs_len);
        acc.add_all(cs_set);
        const auto pois = sca::select_pois(acc.sosd(), 12, 3);
        sink += pois.size();
        for (std::size_t a = 0; a < cs_classes; ++a) {
          for (std::size_t b = a + 1; b < cs_classes; ++b) {
            const auto t = acc.welch_t(static_cast<std::int32_t>(a) - cs_half,
                                       static_cast<std::int32_t>(b) - cs_half);
            fsink += t[0];
          }
        }
      },
      cs_iters);
  const double cs_ref_ns = time_ns_per_op(
      [&](std::size_t) {
        const auto means = sca::class_means(cs_set);
        const auto pois = sca::select_pois(sca::sosd_curve(means), 12, 3);
        sink += pois.size();
        for (std::size_t a = 0; a < cs_classes; ++a) {
          for (std::size_t b = a + 1; b < cs_classes; ++b) {
            const auto t = sca::welch_t_test(cs_pops[a], cs_pops[b]);
            fsink += t[0];
          }
        }
      },
      cs_iters);
  const double cs_speedup = cs_fast_ns > 0.0 ? cs_ref_ns / cs_fast_ns : 0.0;
  sca::ClassStats cs_acc(cs_len);
  cs_acc.add_all(cs_set);
  const bool cs_means_identical = cs_acc.means() == sca::class_means(cs_set) &&
                                  cs_acc.sosd() == sca::sosd_curve(sca::class_means(cs_set));
  const bool cs_pois_identical =
      sca::select_pois(cs_acc.sosd(), 12, 3) ==
      sca::select_pois(sca::sosd_curve(sca::class_means(cs_set)), 12, 3);
  double cs_t_delta = 0.0;
  for (std::size_t a = 0; a < cs_classes; ++a) {
    for (std::size_t b = a + 1; b < cs_classes; ++b) {
      const auto fast = cs_acc.welch_t(static_cast<std::int32_t>(a) - cs_half,
                                       static_cast<std::int32_t>(b) - cs_half);
      const auto ref = sca::welch_t_test(cs_pops[a], cs_pops[b]);
      for (std::size_t i = 0; i < fast.size(); ++i) {
        cs_t_delta = std::max(cs_t_delta, std::fabs(fast[i] - ref[i]));
      }
    }
  }
  const bool cs_identical =
      cs_means_identical && cs_pois_identical && cs_t_delta <= kTStatTolerance;

  // --- LLL: flat incremental GSO vs full recompute per perturbation ------
  const std::size_t lll_n = smoke ? 16 : 28;
  const lattice::Basis lll_basis = make_lll_basis(lll_n, 5);
  const double lll_fast_ns = time_ns_per_op(
      [&](std::size_t) {
        lattice::Basis b = lll_basis;
        sink += lattice::lll_reduce(b);
      },
      smoke ? 2 : 8);
  const double lll_ref_ns = time_ns_per_op(
      [&](std::size_t) {
        lattice::Basis b = lll_basis;
        sink += lattice::lll_reduce_reference(b);
      },
      smoke ? 2 : 8);
  const double lll_speedup = lll_fast_ns > 0.0 ? lll_ref_ns / lll_fast_ns : 0.0;
  bool lll_identical = true;
  for (std::uint64_t seed = 5; seed <= 7; ++seed) {
    lattice::Basis fast_b = make_lll_basis(smoke ? 12 : 20, seed);
    lattice::Basis ref_b = fast_b;
    const std::size_t fast_swaps = lattice::lll_reduce(fast_b);
    const std::size_t ref_swaps = lattice::lll_reduce_reference(ref_b);
    if (fast_b != ref_b || fast_swaps != ref_swaps) lll_identical = false;
  }

  // --- observability overhead: instrumented vs null-tracer campaign ------
  // The same degradation-aware campaign runs with and without a
  // CampaignDiagnostics sink. The diag-off leg is the NullSpanTracer
  // instantiation (the pre-observability code by construction); the gate
  // bounds what the instrumented instantiation may cost on top and requires
  // the two results to be bit-identical.
  core::CampaignConfig obs_cfg = bench::default_campaign(64);
  obs_cfg.num_workers = 0;
  obs_cfg.faults.jitter_sigma = 0.4;
  obs_cfg.faults.dropout_rate = 0.02;
  obs_cfg.faults.glitch_count = 2;
  core::SamplerCampaign obs_profiler(bench::default_campaign(64));
  core::AttackConfig obs_acfg;
  obs_acfg.abstain_margin = 0.30;
  obs_acfg.low_confidence_margin = 0.45;
  obs_acfg.value_commit_threshold = 0.05;
  obs_acfg.sign_fit_threshold = 2.5;
  obs_acfg.value_fit_threshold = 4.0;
  core::RevealAttack obs_attack(obs_acfg);
  obs_attack.train(obs_profiler.collect_windows(smoke ? 60 : 120, /*seed_base=*/1));
  lwe::DbddParams obs_params;
  obs_params.secret_dim = 1024;
  obs_params.error_dim = 1024;
  obs_params.q = 132120577.0;
  obs_params.secret_variance = 3.2 * 3.2;
  obs_params.error_variance = 3.2 * 3.2;
  const core::HintPolicy obs_policy;
  const std::vector<std::uint64_t> obs_seeds =
      core::CampaignRunner::stream_seeds(777, smoke ? 3 : 8);
  core::CampaignRunner obs_runner(0);
  // Min over many short alternating windows: the overhead gate compares two
  // legs of identical work, so scheduler noise — not the instrumentation —
  // is the main source of spread. The block execution tier cut campaign
  // wall-time enough that a single noisy long window moves the ratio by
  // several percent, so each window times exactly one campaign and the min
  // per leg converges on the true floor regardless of when the noise lands.
  const int obs_passes = smoke ? 4 : 24;
  const auto run_obs_off = [&] {
    const auto r = obs_runner.run_recovery_campaign(obs_attack, obs_cfg, obs_seeds,
                                                    obs_policy, obs_params);
    sink += r.report.recovered_windows;
  };
  const auto run_obs_on = [&] {
    core::CampaignDiagnostics diag;
    const auto r = obs_runner.run_recovery_campaign(obs_attack, obs_cfg, obs_seeds,
                                                    obs_policy, obs_params, &diag);
    sink += r.report.recovered_windows;
    sink += diag.registry.counter_value("capture.count");
  };
  const auto time_once = [](const auto& f) {
    const auto t0 = std::chrono::steady_clock::now();
    f();
    const auto t1 = std::chrono::steady_clock::now();
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  };
  run_obs_off();  // warm both instantiations before the timed windows
  run_obs_on();
  double obs_off_ns = std::numeric_limits<double>::infinity();
  double obs_on_ns = std::numeric_limits<double>::infinity();
  for (int pass = 0; pass < obs_passes; ++pass) {
    obs_off_ns = std::min(obs_off_ns, time_once(run_obs_off));
    obs_on_ns = std::min(obs_on_ns, time_once(run_obs_on));
  }
  const double obs_overhead = obs_off_ns > 0.0 ? obs_on_ns / obs_off_ns - 1.0 : 0.0;
  core::CampaignDiagnostics obs_diag;
  const core::RecoveryCampaignResult obs_plain = obs_runner.run_recovery_campaign(
      obs_attack, obs_cfg, obs_seeds, obs_policy, obs_params);
  const core::RecoveryCampaignResult obs_instrumented = obs_runner.run_recovery_campaign(
      obs_attack, obs_cfg, obs_seeds, obs_policy, obs_params, &obs_diag);
  const bool obs_identical =
      campaign_results_equal(obs_plain, obs_instrumented) &&
      obs_diag.registry.counter_value("capture.count") == obs_seeds.size();

  // --- NTT throughput ----------------------------------------------------
  const seal::Modulus q(132120577);
  const seal::NttTables tables(1024, q);
  num::Xoshiro256StarStar ntt_rng(1);
  std::vector<std::uint64_t> poly(1024);
  for (auto& v : poly) v = ntt_rng() % q.value();
  const double ntt_ns = time_ns_per_op(
      [&](std::size_t) {
        tables.forward_transform(poly.data());
        sink += poly[0];
      },
      smoke ? 200 : 4000);

  // --- byte-identity gates ----------------------------------------------
  const bool victim_identical = victim_identity_gate();
  const bool golden_identical = golden_identity_gate();
  const bool identity_ok = victim_identical && golden_identical && sweep_identical &&
                           align_identical && cs_identical && lll_identical &&
                           obs_identical;
  const bool speedups_ok =
      victim_speedup >= kVictimBlockVsReferenceGate &&
      victim_speedup_pre >= kVictimBlockVsPredecodeGate &&
      score_speedup >= kTemplateSpeedupGate &&
      sweep_speedup >= kSegSweepSpeedupGate && align_speedup >= kAlignSpeedupGate &&
      cs_speedup >= kClassStatsSpeedupGate && lll_speedup >= kLllSpeedupGate &&
      obs_overhead <= kObsOverheadGate;
  const bool passed = identity_ok && (smoke || speedups_ok);

  // Non-default capture tiers write tier-suffixed files so the per-tier
  // smoke tests can run in parallel without clobbering the regression
  // gate's BENCH_perf.json.
  char out_path[64];
  if (capture_tier == core::VictimTier::kBlock) {
    std::snprintf(out_path, sizeof out_path, "BENCH_perf.json");
  } else {
    std::snprintf(out_path, sizeof out_path, "BENCH_perf_%s.json",
                  tier_name(capture_tier));
  }
  std::FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path);
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"perf\",\n  \"smoke\": %s,\n",
               smoke ? "true" : "false");
  std::fprintf(out,
               "  \"victim_sim\": {\"block_ns_per_run\": %.1f, "
               "\"predecode_ns_per_run\": %.1f, \"reference_ns_per_run\": %.1f, "
               "\"speedup\": %.2f, \"speedup_vs_predecode\": %.2f, \"identical\": %s},\n",
               victim_block_ns, victim_pre_ns, victim_ref_ns, victim_speedup,
               victim_speedup_pre, victim_identical ? "true" : "false");
  std::fprintf(out,
               "  \"template_scoring\": {\"fast_ns_per_obs\": %.1f, "
               "\"baseline_ns_per_obs\": %.1f, \"speedup\": %.2f, \"classes\": %zu, "
               "\"dim\": %zu, \"max_abs_delta\": %.3e},\n",
               score_fast_ns, score_ref_ns, score_speedup, num_classes, dim,
               score_max_delta);
  std::fprintf(out,
               "  \"capture\": {\"tier\": \"%s\", \"ns_per_capture\": %.1f, "
               "\"ms_per_capture\": %.4f, \"captures_per_second\": %.1f},\n",
               tier_name(capture_tier), capture_ns, capture_ms, captures_per_second);
  std::fprintf(out, "  \"segmentation\": {\"ns_per_trace\": %.1f},\n", segment_ns);
  std::fprintf(out,
               "  \"segmentation_sweep\": {\"fast_ns_per_sweep\": %.1f, "
               "\"baseline_ns_per_sweep\": %.1f, \"speedup\": %.2f, \"identical\": %s},\n",
               sweep_fast_ns, sweep_ref_ns, sweep_speedup,
               sweep_identical ? "true" : "false");
  std::fprintf(out,
               "  \"alignment_fft\": {\"length\": %zu, \"max_shift\": %zu, "
               "\"fast_ns_per_align\": %.1f, \"baseline_ns_per_align\": %.1f, "
               "\"speedup\": %.2f, \"identical\": %s},\n",
               align_len, align_shift, align_fast_ns, align_ref_ns, align_speedup,
               align_identical ? "true" : "false");
  std::fprintf(out,
               "  \"class_stats\": {\"classes\": %zu, \"traces\": %zu, "
               "\"fast_ns_per_pass\": %.1f, \"baseline_ns_per_pass\": %.1f, "
               "\"speedup\": %.2f, \"pois_identical\": %s, \"means_identical\": %s, "
               "\"t_max_abs_delta\": %.3e, \"identical\": %s},\n",
               cs_classes, cs_set.size(), cs_fast_ns, cs_ref_ns, cs_speedup,
               cs_pois_identical ? "true" : "false",
               cs_means_identical ? "true" : "false", cs_t_delta,
               cs_identical ? "true" : "false");
  std::fprintf(out,
               "  \"lll_flat\": {\"dimension\": %zu, \"fast_ns_per_reduce\": %.1f, "
               "\"baseline_ns_per_reduce\": %.1f, \"speedup\": %.2f, \"identical\": %s},\n",
               lll_n, lll_fast_ns, lll_ref_ns, lll_speedup,
               lll_identical ? "true" : "false");
  std::fprintf(out,
               "  \"observability\": {\"captures\": %zu, \"off_ns_per_campaign\": %.1f, "
               "\"on_ns_per_campaign\": %.1f, \"overhead\": %.4f, "
               "\"overhead_max\": %.4f, \"identical\": %s},\n",
               obs_seeds.size(), obs_off_ns, obs_on_ns, obs_overhead, kObsOverheadGate,
               obs_identical ? "true" : "false");
  std::fprintf(out, "  \"ntt_forward_1024\": {\"ns_per_transform\": %.1f},\n", ntt_ns);
  std::fprintf(out, "  \"golden_recovery_identical\": %s,\n",
               golden_identical ? "true" : "false");
  std::fprintf(out,
               "  \"gates\": {\"victim_speedup_min\": %.1f, "
               "\"victim_vs_predecode_speedup_min\": %.1f, \"template_speedup_min\": "
               "%.1f, \"segmentation_sweep_speedup_min\": %.1f, "
               "\"alignment_speedup_min\": %.1f, \"class_stats_speedup_min\": %.1f, "
               "\"lll_speedup_min\": %.1f, \"t_stat_tolerance\": %.1e, "
               "\"obs_overhead_max\": %.2f, "
               "\"enforced\": %s, \"passed\": %s},\n",
               kVictimBlockVsReferenceGate, kVictimBlockVsPredecodeGate,
               kTemplateSpeedupGate, kSegSweepSpeedupGate,
               kAlignSpeedupGate, kClassStatsSpeedupGate, kLllSpeedupGate,
               kTStatTolerance, kObsOverheadGate, smoke ? "false" : "true",
               passed ? "true" : "false");
  // Folding the sinks into the output keeps the timed work observable
  // (nothing for the optimizer to elide).
  std::fprintf(out, "  \"checksum\": \"%llu\"\n}\n",
               static_cast<unsigned long long>(sink % 997) +
                   (std::isfinite(fsink) ? 0ULL : 1ULL));
  std::fclose(out);

  std::printf("victim sim:       block %.0f ns/run  predecode %.0f ns/run  reference "
              "%.0f ns/run  speedup %.2fx vs ref, %.2fx vs predecode\n",
              victim_block_ns, victim_pre_ns, victim_ref_ns, victim_speedup,
              victim_speedup_pre);
  std::printf("template scoring: fast %.0f ns/obs  baseline %.0f ns/obs  speedup %.2fx\n",
              score_fast_ns, score_ref_ns, score_speedup);
  std::printf("segmentation sweep: fast %.0f ns  baseline %.0f ns  speedup %.2fx\n",
              sweep_fast_ns, sweep_ref_ns, sweep_speedup);
  std::printf("alignment (L=%zu): fast %.0f ns  baseline %.0f ns  speedup %.2fx\n",
              align_len, align_fast_ns, align_ref_ns, align_speedup);
  std::printf("class stats:      fast %.0f ns  baseline %.0f ns  speedup %.2fx\n",
              cs_fast_ns, cs_ref_ns, cs_speedup);
  std::printf("lll (n=%zu):      fast %.0f ns  baseline %.0f ns  speedup %.2fx\n", lll_n,
              lll_fast_ns, lll_ref_ns, lll_speedup);
  std::printf("observability:    off %.0f ns  on %.0f ns  overhead %.2f%% (max %.0f%%)\n",
              obs_off_ns, obs_on_ns, 100.0 * obs_overhead, 100.0 * kObsOverheadGate);
  std::printf("capture (%s tier) %.3f ms/capture  %.1f captures/s  "
              "segmentation %.0f ns  ntt-1024 %.0f ns\n",
              tier_name(capture_tier), capture_ms, captures_per_second, segment_ns, ntt_ns);
  std::printf("identity: victim events %s, golden recovery %s, sweep %s, alignment %s, "
              "class stats %s, lll %s, observability %s\n",
              victim_identical ? "ok" : "MISMATCH", golden_identical ? "ok" : "MISMATCH",
              sweep_identical ? "ok" : "MISMATCH", align_identical ? "ok" : "MISMATCH",
              cs_identical ? "ok" : "MISMATCH", lll_identical ? "ok" : "MISMATCH",
              obs_identical ? "ok" : "MISMATCH");
  if (!passed) {
    std::fprintf(stderr, "bench_perf: gate FAILED (identity %s, speedups %s)\n",
                 identity_ok ? "ok" : "violated", speedups_ok ? "ok" : "below threshold");
    return 1;
  }
  std::printf("wrote %s\n", out_path);
  return 0;
}

// --------------------------------------------------------------------------
// google-benchmark registrations (default mode)
// --------------------------------------------------------------------------

void BM_NttForward1024(benchmark::State& state) {
  const seal::Modulus q(132120577);
  const seal::NttTables tables(1024, q);
  num::Xoshiro256StarStar rng(1);
  std::vector<std::uint64_t> poly(1024);
  for (auto& v : poly) v = rng() % q.value();
  for (auto _ : state) {
    tables.forward_transform(poly.data());
    benchmark::DoNotOptimize(poly.data());
  }
}
BENCHMARK(BM_NttForward1024);

void BM_NttInverse1024(benchmark::State& state) {
  const seal::Modulus q(132120577);
  const seal::NttTables tables(1024, q);
  num::Xoshiro256StarStar rng(2);
  std::vector<std::uint64_t> poly(1024);
  for (auto& v : poly) v = rng() % q.value();
  for (auto _ : state) {
    tables.inverse_transform(poly.data());
    benchmark::DoNotOptimize(poly.data());
  }
}
BENCHMARK(BM_NttInverse1024);

void BM_FastNttForward1024(benchmark::State& state) {
  const seal::Modulus q(132120577);
  const seal::FastNttTables tables(1024, q);
  num::Xoshiro256StarStar rng(1);
  std::vector<std::uint64_t> poly(1024);
  for (auto& v : poly) v = rng() % q.value();
  for (auto _ : state) {
    tables.forward_transform(poly.data());
    benchmark::DoNotOptimize(poly.data());
  }
}
BENCHMARK(BM_FastNttForward1024);

void BM_FastNttInverse1024(benchmark::State& state) {
  const seal::Modulus q(132120577);
  const seal::FastNttTables tables(1024, q);
  num::Xoshiro256StarStar rng(2);
  std::vector<std::uint64_t> poly(1024);
  for (auto& v : poly) v = rng() % q.value();
  for (auto _ : state) {
    tables.inverse_transform(poly.data());
    benchmark::DoNotOptimize(poly.data());
  }
}
BENCHMARK(BM_FastNttInverse1024);

void BM_BfvEncrypt1024(benchmark::State& state) {
  const seal::Context ctx(seal::EncryptionParameters::seal_128_1024());
  seal::StandardRandomGenerator rng(3);
  const seal::KeyGenerator keygen(ctx, rng);
  const seal::Encryptor encryptor(ctx, keygen.public_key());
  const seal::Plaintext plain(std::vector<std::uint64_t>{1, 2, 3, 4, 5});
  for (auto _ : state) {
    auto ct = encryptor.encrypt(plain, rng);
    benchmark::DoNotOptimize(ct);
  }
}
BENCHMARK(BM_BfvEncrypt1024);

void BM_BfvDecrypt1024(benchmark::State& state) {
  const seal::Context ctx(seal::EncryptionParameters::seal_128_1024());
  seal::StandardRandomGenerator rng(4);
  const seal::KeyGenerator keygen(ctx, rng);
  const seal::Encryptor encryptor(ctx, keygen.public_key());
  const seal::Decryptor decryptor(ctx, keygen.secret_key());
  const auto ct = encryptor.encrypt(seal::Plaintext(std::uint64_t{42}), rng);
  for (auto _ : state) {
    auto plain = decryptor.decrypt(ct);
    benchmark::DoNotOptimize(plain);
  }
}
BENCHMARK(BM_BfvDecrypt1024);

void BM_VictimSampling64(benchmark::State& state) {
  const core::VictimProgram prog = core::build_sampler_firmware(64, {132120577ULL});
  riscv::Machine machine(prog.memory_bytes);
  std::uint32_t seed = 1;
  for (auto _ : state) {
    auto run = core::run_victim(prog, machine, seed++);
    benchmark::DoNotOptimize(run);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_VictimSampling64);

void BM_VictimSampling64Predecode(benchmark::State& state) {
  const core::VictimProgram prog = core::build_sampler_firmware(64, {132120577ULL});
  riscv::Machine machine(prog.memory_bytes);
  std::uint32_t seed = 1;
  for (auto _ : state) {
    auto run = core::run_victim_tier(prog, machine, seed++, core::VictimTier::kPredecode);
    benchmark::DoNotOptimize(run);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_VictimSampling64Predecode);

void BM_VictimSampling64Reference(benchmark::State& state) {
  const core::VictimProgram prog = core::build_sampler_firmware(64, {132120577ULL});
  riscv::Machine machine(prog.memory_bytes);
  machine.set_predecode(false);
  std::uint32_t seed = 1;
  for (auto _ : state) {
    auto run = run_victim_reference(prog, machine, seed++);
    benchmark::DoNotOptimize(run);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_VictimSampling64Reference);

void BM_TemplateScore(benchmark::State& state) {
  const sca::TemplateSet templates = make_template_set(25, 12, 99);
  num::Xoshiro256StarStar rng(7);
  std::vector<double> obs(12);
  for (double& v : obs) v = rng.gaussian(0.0, 2.0);
  for (auto _ : state) {
    auto d = templates.mahalanobis(obs);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_TemplateScore);

void BM_TemplateScoreReference(benchmark::State& state) {
  const sca::TemplateSet templates = make_template_set(25, 12, 99);
  num::Xoshiro256StarStar rng(7);
  std::vector<double> obs(12);
  for (double& v : obs) v = rng.gaussian(0.0, 2.0);
  for (auto _ : state) {
    auto d = templates.mahalanobis_reference(obs);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_TemplateScoreReference);

void BM_CaptureAndSegment(benchmark::State& state) {
  core::CampaignConfig cfg;
  cfg.n = 64;
  core::SamplerCampaign campaign(cfg);
  core::FullCapture cap;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    campaign.capture_into(seed++, cap);
    benchmark::DoNotOptimize(cap);
  }
}
BENCHMARK(BM_CaptureAndSegment);

void BM_AttackWindow(benchmark::State& state) {
  core::CampaignConfig cfg;
  cfg.n = 64;
  core::SamplerCampaign campaign(cfg);
  core::RevealAttack attack;
  attack.train(campaign.collect_windows(60, 1));
  const auto cap = campaign.capture(777);
  const auto windows = core::windows_from_capture(cap);
  std::size_t idx = 0;
  for (auto _ : state) {
    auto guess = attack.attack_window(windows[idx % windows.size()].samples);
    benchmark::DoNotOptimize(guess);
    ++idx;
  }
}
BENCHMARK(BM_AttackWindow);

void BM_Lll12(benchmark::State& state) {
  num::Xoshiro256StarStar rng(5);
  for (auto _ : state) {
    state.PauseTiming();
    lattice::Basis basis(12, std::vector<std::int64_t>(12, 0));
    for (std::size_t i = 0; i < 12; ++i) {
      for (std::size_t j = 0; j < 12; ++j) basis[i][j] = rng.uniform_int(-50, 50);
      basis[i][i] += 150;
    }
    state.ResumeTiming();
    lattice::lll_reduce(basis);
    benchmark::DoNotOptimize(basis);
  }
}
BENCHMARK(BM_Lll12);

}  // namespace

int main(int argc, char** argv) {
  core::VictimTier tier = core::VictimTier::kBlock;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--tier") != 0) continue;
    const char* value = argv[i + 1];
    if (std::strcmp(value, "reference") == 0) {
      tier = core::VictimTier::kReference;
    } else if (std::strcmp(value, "predecode") == 0) {
      tier = core::VictimTier::kPredecode;
    } else if (std::strcmp(value, "block") == 0) {
      tier = core::VictimTier::kBlock;
    } else {
      std::fprintf(stderr, "bench_perf: unknown --tier '%s' "
                           "(expected reference, predecode or block)\n", value);
      return 2;
    }
  }
  if (bench::has_flag(argc, argv, "--json")) {
    return run_json_harness(bench::has_flag(argc, argv, "--smoke"), tier);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
