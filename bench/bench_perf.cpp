// Microbenchmarks of the core primitives (google-benchmark): NTT, BFV
// encrypt/decrypt, the RISC-V victim simulation, trace segmentation,
// template scoring and LLL — the cost profile of the whole reproduction.

#include <benchmark/benchmark.h>

#include "core/acquisition.hpp"
#include "core/attack.hpp"
#include "lattice/lattice.hpp"
#include "numeric/rng.hpp"
#include "sca/segmentation.hpp"
#include "seal/decryptor.hpp"
#include "seal/encryptor.hpp"
#include "seal/keys.hpp"
#include "seal/ntt.hpp"
#include "seal/ntt_fast.hpp"

using namespace reveal;

namespace {

void BM_NttForward1024(benchmark::State& state) {
  const seal::Modulus q(132120577);
  const seal::NttTables tables(1024, q);
  num::Xoshiro256StarStar rng(1);
  std::vector<std::uint64_t> poly(1024);
  for (auto& v : poly) v = rng() % q.value();
  for (auto _ : state) {
    tables.forward_transform(poly.data());
    benchmark::DoNotOptimize(poly.data());
  }
}
BENCHMARK(BM_NttForward1024);

void BM_NttInverse1024(benchmark::State& state) {
  const seal::Modulus q(132120577);
  const seal::NttTables tables(1024, q);
  num::Xoshiro256StarStar rng(2);
  std::vector<std::uint64_t> poly(1024);
  for (auto& v : poly) v = rng() % q.value();
  for (auto _ : state) {
    tables.inverse_transform(poly.data());
    benchmark::DoNotOptimize(poly.data());
  }
}
BENCHMARK(BM_NttInverse1024);

void BM_FastNttForward1024(benchmark::State& state) {
  const seal::Modulus q(132120577);
  const seal::FastNttTables tables(1024, q);
  num::Xoshiro256StarStar rng(1);
  std::vector<std::uint64_t> poly(1024);
  for (auto& v : poly) v = rng() % q.value();
  for (auto _ : state) {
    tables.forward_transform(poly.data());
    benchmark::DoNotOptimize(poly.data());
  }
}
BENCHMARK(BM_FastNttForward1024);

void BM_FastNttInverse1024(benchmark::State& state) {
  const seal::Modulus q(132120577);
  const seal::FastNttTables tables(1024, q);
  num::Xoshiro256StarStar rng(2);
  std::vector<std::uint64_t> poly(1024);
  for (auto& v : poly) v = rng() % q.value();
  for (auto _ : state) {
    tables.inverse_transform(poly.data());
    benchmark::DoNotOptimize(poly.data());
  }
}
BENCHMARK(BM_FastNttInverse1024);

void BM_BfvEncrypt1024(benchmark::State& state) {
  const seal::Context ctx(seal::EncryptionParameters::seal_128_1024());
  seal::StandardRandomGenerator rng(3);
  const seal::KeyGenerator keygen(ctx, rng);
  const seal::Encryptor encryptor(ctx, keygen.public_key());
  const seal::Plaintext plain(std::vector<std::uint64_t>{1, 2, 3, 4, 5});
  for (auto _ : state) {
    auto ct = encryptor.encrypt(plain, rng);
    benchmark::DoNotOptimize(ct);
  }
}
BENCHMARK(BM_BfvEncrypt1024);

void BM_BfvDecrypt1024(benchmark::State& state) {
  const seal::Context ctx(seal::EncryptionParameters::seal_128_1024());
  seal::StandardRandomGenerator rng(4);
  const seal::KeyGenerator keygen(ctx, rng);
  const seal::Encryptor encryptor(ctx, keygen.public_key());
  const seal::Decryptor decryptor(ctx, keygen.secret_key());
  const auto ct = encryptor.encrypt(seal::Plaintext(std::uint64_t{42}), rng);
  for (auto _ : state) {
    auto plain = decryptor.decrypt(ct);
    benchmark::DoNotOptimize(plain);
  }
}
BENCHMARK(BM_BfvDecrypt1024);

void BM_VictimSampling64(benchmark::State& state) {
  const core::VictimProgram prog = core::build_sampler_firmware(64, {132120577ULL});
  riscv::Machine machine(prog.memory_bytes);
  std::uint32_t seed = 1;
  for (auto _ : state) {
    auto run = core::run_victim(prog, machine, seed++);
    benchmark::DoNotOptimize(run);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_VictimSampling64);

void BM_CaptureAndSegment(benchmark::State& state) {
  core::CampaignConfig cfg;
  cfg.n = 64;
  core::SamplerCampaign campaign(cfg);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto cap = campaign.capture(seed++);
    benchmark::DoNotOptimize(cap);
  }
}
BENCHMARK(BM_CaptureAndSegment);

void BM_AttackWindow(benchmark::State& state) {
  core::CampaignConfig cfg;
  cfg.n = 64;
  core::SamplerCampaign campaign(cfg);
  core::RevealAttack attack;
  attack.train(campaign.collect_windows(60, 1));
  const auto cap = campaign.capture(777);
  const auto windows = core::windows_from_capture(cap);
  std::size_t idx = 0;
  for (auto _ : state) {
    auto guess = attack.attack_window(windows[idx % windows.size()].samples);
    benchmark::DoNotOptimize(guess);
    ++idx;
  }
}
BENCHMARK(BM_AttackWindow);

void BM_Lll12(benchmark::State& state) {
  num::Xoshiro256StarStar rng(5);
  for (auto _ : state) {
    state.PauseTiming();
    lattice::Basis basis(12, std::vector<std::int64_t>(12, 0));
    for (std::size_t i = 0; i < 12; ++i) {
      for (std::size_t j = 0; j < 12; ++j) basis[i][j] = rng.uniform_int(-50, 50);
      basis[i][i] += 150;
    }
    state.ResumeTiming();
    lattice::lll_reduce(basis);
    benchmark::DoNotOptimize(basis);
  }
}
BENCHMARK(BM_Lll12);

}  // namespace
