#!/usr/bin/env python3
"""Compare two BENCH_perf.json files and fail on speedup regressions.

Usage:
    compare_bench.py BASELINE.json CURRENT.json [--tolerance FRACTION]

Every gated leg (a top-level object carrying a "speedup" field) present in
the baseline must still exist in the current file, keep its identity flag
(when it has one), and keep its speedup within ``tolerance`` of the baseline
value: ``current >= baseline * (1 - tolerance)``. The default tolerance is
0.10 — a >10% drop in any gated leg's speedup fails the comparison. Faster
legs never fail.

Exit codes: 0 = no regression, 1 = regression or identity violation,
2 = usage / unreadable input (CTest maps 2 to "skipped" via
SKIP_RETURN_CODE so a build that never produced a current json does not
count as a failure).
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as exc:
        print(f"compare_bench: cannot read {path}: {exc}", file=sys.stderr)
        raise SystemExit(2)


def gated_legs(doc):
    """Top-level objects with a measured speedup, keyed by leg name."""
    return {
        name: leg
        for name, leg in doc.items()
        if isinstance(leg, dict) and "speedup" in leg
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="allowed fractional speedup drop per leg (default 0.10)",
    )
    args = parser.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)

    base_legs = gated_legs(baseline)
    cur_legs = gated_legs(current)
    if not base_legs:
        print(f"compare_bench: no gated legs in {args.baseline}", file=sys.stderr)
        return 2

    failures = []
    for name, base in sorted(base_legs.items()):
        cur = cur_legs.get(name)
        if cur is None:
            failures.append(f"{name}: leg missing from current run")
            continue
        base_speedup = float(base["speedup"])
        cur_speedup = float(cur["speedup"])
        floor = base_speedup * (1.0 - args.tolerance)
        ratio = cur_speedup / base_speedup if base_speedup > 0 else float("inf")
        status = "ok"
        if cur_speedup < floor:
            status = "REGRESSION"
            failures.append(
                f"{name}: speedup {cur_speedup:.2f}x < floor {floor:.2f}x "
                f"(baseline {base_speedup:.2f}x, -{(1 - ratio) * 100:.1f}%)"
            )
        if cur.get("identical") is False:
            status = "IDENTITY"
            failures.append(f"{name}: fast path no longer byte-identical")
        print(
            f"  {name:22s} baseline {base_speedup:7.2f}x  "
            f"current {cur_speedup:7.2f}x  {status}"
        )

    if failures:
        print("compare_bench: FAILED", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"compare_bench: all {len(base_legs)} gated legs within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
