// Fault-tolerance sweep (extension beyond the paper): how gracefully does
// the single-trace attack degrade when the acquisition is faulty?
//
// A clean-trained attack (profiling is assumed clean — the adversary
// profiles their own device) is run against captures corrupted by
// increasingly severe FaultSpecs: clock jitter, ADC dropout, glitches,
// burst noise, trigger misalignment, rail clipping. The degradation-aware
// pipeline (robust segmentation + classifier abstention + quality-gated
// hint routing) must trade information for correctness: as severity grows
// the hint mix shifts from perfect towards approximate / sign-only / none,
// so the residual bikz rises monotonically — and no level may ever emit a
// wrong perfect hint, which would silently break the DBDD reduction.
//
// Emits BENCH_fault_tolerance.json (one record per severity level) for the
// monotonicity check and plotting.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/attack.hpp"
#include "core/campaign_runner.hpp"
#include "core/hints.hpp"
#include "core/parallel.hpp"
#include "lwe/dbdd.hpp"
#include "obs/diagnostics.hpp"
#include "power/fault_injector.hpp"
#include "sca/report.hpp"

using namespace reveal;
using namespace reveal::core;

namespace {

struct Level {
  const char* name;
  power::FaultSpec faults;
};

std::vector<Level> severity_levels() {
  std::vector<Level> levels;
  levels.push_back({"L0-clean", {}});

  power::FaultSpec l1;
  l1.jitter_sigma = 0.1;
  l1.dropout_rate = 0.01;
  levels.push_back({"L1-light", l1});

  power::FaultSpec l2;
  l2.jitter_sigma = 0.4;
  l2.dropout_rate = 0.02;
  l2.glitch_count = 2;
  levels.push_back({"L2-mild", l2});

  // The acceptance-criteria "moderate" level.
  power::FaultSpec l3;
  l3.jitter_sigma = 1.0;
  l3.dropout_rate = 0.05;
  l3.glitch_count = 4;
  levels.push_back({"L3-moderate", l3});

  power::FaultSpec l4;
  l4.jitter_sigma = 1.5;
  l4.dropout_rate = 0.10;
  l4.glitch_count = 8;
  l4.burst_count = 2;
  levels.push_back({"L4-severe", l4});

  power::FaultSpec l5;
  l5.jitter_sigma = 3.0;
  l5.dropout_rate = 0.20;
  l5.glitch_count = 16;
  l5.burst_count = 4;
  l5.trigger_misalign = 40;
  l5.clip = true;
  levels.push_back({"L5-heavy", l5});
  return levels;
}

struct LevelResult {
  std::string name;
  double severity = 0.0;
  std::size_t captures = 0;
  std::size_t segmentation_ok = 0;        ///< expected window count recovered
  std::size_t recovered_windows = 0;
  std::size_t expected_total = 0;
  std::size_t ok_guesses = 0;
  std::size_t low_confidence_guesses = 0;
  std::size_t abstained_guesses = 0;
  std::size_t perfect_hints = 0;
  std::size_t approximate_hints = 0;
  std::size_t sign_only_hints = 0;
  std::size_t dropped_hints = 0;
  std::size_t sign_correct = 0;           ///< over aligned (full-count) captures
  std::size_t value_correct = 0;
  std::size_t aligned_windows = 0;
  std::size_t wrong_perfect_hints = 0;    ///< must be 0 at every level
  double bikz = 0.0;
  double bits = 0.0;
};

// One severity leg: its own campaign and estimator, captures attacked in
// seed order. Self-contained (no shared mutable state), so the legs can run
// on worker-pool threads with results landing in per-level slots — the
// numbers are identical to the sequential sweep for any worker count.
LevelResult run_level(const RevealAttack& attack, const CampaignConfig& clean,
                      const Level& level, std::size_t captures_per_level,
                      const lwe::DbddParams& params, const HintPolicy& policy,
                      CampaignDiagnostics* diag) {
  CampaignConfig cfg = clean;
  cfg.faults = level.faults;
  SamplerCampaign campaign(cfg);

  LevelResult r;
  r.name = level.name;
  r.severity = level.faults.severity();
  lwe::DbddEstimator estimator(params);
  // Fixed coefficient budget: every level attacks the same firmware runs
  // (seeds), so differences come from the faults alone. A capture whose
  // segmentation fails outright consumes its hint slots with no hints.
  for (std::size_t k = 0; k < captures_per_level; ++k) {
    FullCapture cap;
    if (diag != nullptr) {
      auto span = diag->tracer.span(obs::Stage::kCapture, static_cast<std::uint32_t>(k));
      campaign.capture_into(40000 + k, cap);
    } else {
      campaign.capture_into(40000 + k, cap);
    }
    const RobustCaptureResult res =
        diag != nullptr
            ? attack.attack_capture_robust_traced(cap.trace, cfg.n, cfg.segmentation,
                                                  diag->tracer,
                                                  static_cast<std::uint32_t>(k))
            : attack.attack_capture_robust(cap.trace, cfg.n, cfg.segmentation);
    ++r.captures;
    r.expected_total += cfg.n;
    r.recovered_windows += res.segmentation.segments.size();
    if (diag != nullptr) {
      obs::Registry& reg = diag->registry;
      reg.set_max(reg.gauge("capture.trace_samples.max"),
                  static_cast<double>(cap.trace.size()));
      // Same names and semantics as CampaignRunner's instrumented path.
      reg.add(reg.counter("segmentation.attempts"), res.segmentation.attempts);
      if (res.segmentation.attempts > 1)
        reg.add(reg.counter("segmentation.retries"), res.segmentation.attempts - 1);
      switch (res.segmentation.status) {
        case sca::SegmentationStatus::kOk:
          reg.add(reg.counter("segmentation.ok"));
          break;
        case sca::SegmentationStatus::kRecovered:
          reg.add(reg.counter("segmentation.recovered"));
          break;
        case sca::SegmentationStatus::kDegraded:
          reg.add(reg.counter("segmentation.degraded"));
          break;
        case sca::SegmentationStatus::kFailed:
          reg.add(reg.counter("segmentation.failed"));
          break;
      }
      const obs::Registry::Id wq =
          reg.histogram("segmentation.window_quality", 0.0, 1.0, 20);
      for (const double q : res.segmentation.window_quality) reg.observe(wq, q);
      if (res.guesses.size() == cap.noise.size()) {
        for (std::size_t i = 0; i < res.guesses.size(); ++i) {
          diag->confusion.add(static_cast<std::int32_t>(cap.noise[i]),
                              res.guesses[i].value);
        }
      }
    }
    if (res.segmentation.status == sca::SegmentationStatus::kFailed) {
      r.dropped_hints += cfg.n;
      continue;
    }
    HintSummary hints;
    if (diag != nullptr) {
      auto span = diag->tracer.span(obs::Stage::kHints, static_cast<std::uint32_t>(k));
      hints = integrate_guess_hints(estimator, res.guesses, policy);
    } else {
      hints = integrate_guess_hints(estimator, res.guesses, policy);
    }
    r.perfect_hints += hints.perfect;
    r.approximate_hints += hints.approximate;
    r.sign_only_hints += hints.sign_only;
    r.dropped_hints += hints.skipped + (cfg.n - res.guesses.size());
    for (const auto& g : res.guesses) {
      switch (g.quality) {
        case GuessQuality::kOk: ++r.ok_guesses; break;
        case GuessQuality::kLowConfidence: ++r.low_confidence_guesses; break;
        case GuessQuality::kAbstained: ++r.abstained_guesses; break;
      }
    }
    // Ground-truth scoring needs window <-> coefficient alignment, which
    // only holds when the expected count was recovered.
    if (res.guesses.size() == cap.noise.size()) {
      for (std::size_t i = 0; i < res.guesses.size(); ++i) {
        const auto& g = res.guesses[i];
        const int truth_sign = cap.noise[i] > 0 ? 1 : (cap.noise[i] < 0 ? -1 : 0);
        ++r.aligned_windows;
        r.sign_correct += (g.sign == truth_sign);
        r.value_correct += (g.value == cap.noise[i]);
        if (routes_as_perfect(g, policy) && g.value != cap.noise[i])
          ++r.wrong_perfect_hints;
      }
      ++r.segmentation_ok;
    }
  }
  lwe::SecurityEstimate est;
  if (diag != nullptr) {
    auto span = diag->tracer.span(obs::Stage::kEstimation);
    est = estimator.estimate();
  } else {
    est = estimator.estimate();
  }
  r.bikz = est.beta;
  r.bits = est.bits;

  // The counters the campaign engine would have produced, derived from the
  // level tallies (same names as CampaignRunner's instrumented path —
  // segmentation status counters are folded per capture above) plus the
  // fault injector's activation stats for this level's captures.
  if (diag != nullptr) {
    obs::Registry& reg = diag->registry;
    reg.add(reg.counter("capture.count"), r.captures);
    reg.add(reg.counter("classify.ok"), r.ok_guesses);
    reg.add(reg.counter("classify.low_confidence"), r.low_confidence_guesses);
    reg.add(reg.counter("classify.abstained"), r.abstained_guesses);
    reg.add(reg.counter("hints.perfect"), r.perfect_hints);
    reg.add(reg.counter("hints.approximate"), r.approximate_hints);
    reg.add(reg.counter("hints.sign_only"), r.sign_only_hints);
    reg.add(reg.counter("hints.skipped"), r.dropped_hints);
    const power::FaultStats& faults = campaign.fault_stats();
    reg.add(reg.counter("faults.captures"), faults.captures);
    reg.add(reg.counter("faults.dropped_samples"), faults.dropped_samples);
    reg.add(reg.counter("faults.glitch_samples"), faults.glitch_samples);
    reg.add(reg.counter("faults.burst_windows"), faults.burst_windows);
    reg.add(reg.counter("faults.drifted_captures"), faults.drifted_captures);
    reg.add(reg.counter("faults.clipped_samples"), faults.clipped_samples);
    reg.add(reg.counter("faults.misaligned_captures"), faults.misaligned_captures);
    reg.add(reg.counter("faults.warped_captures"), faults.warped_captures);
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::has_flag(argc, argv, "--full");
  const std::size_t profiling_runs =
      static_cast<std::size_t>(bench::flag_value(argc, argv, "--profiling", full ? 600 : 250));
  const std::size_t captures_per_level =
      static_cast<std::size_t>(bench::flag_value(argc, argv, "--captures", full ? 16 : 8));

  bench::print_header(
      "Fault tolerance (extension)",
      "Attack degradation vs acquisition-fault severity; hint mix and bikz per level.");

  // Profiling is clean; only the attacked captures are degraded.
  CampaignConfig clean = bench::default_campaign(64);
  SamplerCampaign profiler(clean);
  AttackConfig acfg;
  // Empirically calibrated gates (see tests/test_fault_injection.cpp):
  // clean-capture sign margins stay above ~0.6, corrupted windows fall
  // below ~0.3.
  acfg.abstain_margin = 0.30;
  acfg.low_confidence_margin = 0.45;
  acfg.value_commit_threshold = 0.05;
  acfg.sign_fit_threshold = 2.5;
  acfg.value_fit_threshold = 4.0;
  RevealAttack attack(acfg);
  std::printf("\ntraining on %zu clean profiling runs...\n", profiling_runs);
  attack.train(profiler.collect_windows(profiling_runs, /*seed_base=*/1));

  lwe::DbddParams params;
  params.secret_dim = 1024;
  params.error_dim = 1024;
  params.q = 132120577.0;
  params.secret_variance = 3.2 * 3.2;
  params.error_variance = 3.2 * 3.2;
  const double baseline = lwe::estimate_lwe_security(params).beta;
  std::printf("baseline (no hints): %.1f bikz\n", baseline);

  // The severity legs are independent experiments; fan them out over the
  // worker pool with each result landing in its level's slot. Output is
  // buffered per level and printed afterwards in severity order.
  const HintPolicy policy;
  const std::vector<Level> levels = severity_levels();
  const long workers_flag = bench::flag_value(argc, argv, "--workers", -1);
  WorkerPool pool(workers_flag < 0 ? default_num_workers()
                                   : static_cast<std::size_t>(workers_flag));
  // --diag=<path>: per-level diagnostics sinks (one per level slot, so the
  // fan-out stays race-free), merged in severity order afterwards.
  const std::string diag_path = bench::flag_string(argc, argv, "--diag");
  std::vector<CampaignDiagnostics> level_diags(diag_path.empty() ? 0 : levels.size());
  std::vector<LevelResult> results(levels.size());
  pool.run_indexed(levels.size(), [&](std::size_t i, std::size_t) {
    results[i] = run_level(attack, clean, levels[i], captures_per_level, params, policy,
                           level_diags.empty() ? nullptr : &level_diags[i]);
  });

  for (const LevelResult& r : results) {
    std::printf("\n%-12s severity %.2f  recovery %zu/%zu windows (%zu/%zu captures)\n",
                r.name.c_str(), r.severity, r.recovered_windows, r.expected_total,
                r.segmentation_ok, r.captures);
    std::printf("  guesses: %zu ok / %zu low-conf / %zu abstained\n", r.ok_guesses,
                r.low_confidence_guesses, r.abstained_guesses);
    std::printf("  hints:   %zu perfect / %zu approx / %zu sign-only / %zu none\n",
                r.perfect_hints, r.approximate_hints, r.sign_only_hints, r.dropped_hints);
    if (r.aligned_windows > 0) {
      std::printf("  aligned accuracy: sign %.1f%%  value %.1f%%  (wrong perfect hints: %zu)\n",
                  100.0 * static_cast<double>(r.sign_correct) /
                      static_cast<double>(r.aligned_windows),
                  100.0 * static_cast<double>(r.value_correct) /
                      static_cast<double>(r.aligned_windows),
                  r.wrong_perfect_hints);
    }
    std::printf("  residual hardness: %.1f bikz (%.1f bits)\n", r.bikz, r.bits);
  }

  // --- invariants ----------------------------------------------------------
  bool monotone = true;
  for (std::size_t i = 1; i < results.size(); ++i) {
    if (results[i].bikz + 1e-9 < results[i - 1].bikz) monotone = false;
  }
  std::size_t wrong_total = 0;
  for (const auto& r : results) wrong_total += r.wrong_perfect_hints;
  std::printf("\nbikz monotone non-decreasing across severity: %s\n",
              monotone ? "PASS" : "FAIL");
  std::printf("wrong perfect hints across all levels: %zu (%s)\n", wrong_total,
              wrong_total == 0 ? "PASS" : "FAIL");

  // --- JSON ----------------------------------------------------------------
  const char* out_path = "BENCH_fault_tolerance.json";
  std::FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path);
    return 1;
  }
  std::fprintf(out, "{\n  \"baseline_bikz\": %.3f,\n  \"levels\": [\n", baseline);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    const auto& f = levels[i].faults;
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"severity\": %.3f,\n"
                 "     \"faults\": {\"jitter_sigma\": %.3f, \"dropout_rate\": %.3f, "
                 "\"glitch_count\": %zu, \"burst_count\": %zu, "
                 "\"trigger_misalign\": %zu, \"clip\": %s},\n"
                 "     \"captures\": %zu, \"segmentation_ok\": %zu, "
                 "\"recovered_windows\": %zu, \"expected_windows\": %zu,\n"
                 "     \"guesses\": {\"ok\": %zu, \"low_confidence\": %zu, "
                 "\"abstained\": %zu},\n"
                 "     \"hints\": {\"perfect\": %zu, \"approximate\": %zu, "
                 "\"sign_only\": %zu, \"none\": %zu},\n"
                 "     \"sign_accuracy\": %.4f, \"value_accuracy\": %.4f, "
                 "\"wrong_perfect_hints\": %zu,\n"
                 "     \"bikz\": %.3f, \"bits\": %.3f}%s\n",
                 r.name.c_str(), r.severity, f.jitter_sigma, f.dropout_rate,
                 f.glitch_count, f.burst_count, f.trigger_misalign,
                 f.clip ? "true" : "false", r.captures, r.segmentation_ok,
                 r.recovered_windows, r.expected_total, r.ok_guesses,
                 r.low_confidence_guesses, r.abstained_guesses, r.perfect_hints,
                 r.approximate_hints, r.sign_only_hints, r.dropped_hints,
                 r.aligned_windows > 0 ? static_cast<double>(r.sign_correct) /
                                             static_cast<double>(r.aligned_windows)
                                       : 0.0,
                 r.aligned_windows > 0 ? static_cast<double>(r.value_correct) /
                                             static_cast<double>(r.aligned_windows)
                                       : 0.0,
                 r.wrong_perfect_hints, r.bikz, r.bits,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"bikz_monotone\": %s,\n  \"wrong_perfect_hints_total\": %zu\n}\n",
               monotone ? "true" : "false", wrong_total);
  std::fclose(out);
  std::printf("wrote %s\n", out_path);

  if (!diag_path.empty()) {
    CampaignDiagnostics merged;
    for (const CampaignDiagnostics& d : level_diags) {
      merged.registry.merge(d.registry);
      merged.tracer.merge(d.tracer);
      merged.confusion.merge(d.confusion);
    }
    obs::write_json_file(merged.report(), diag_path);
    std::printf("wrote %s\n", diag_path.c_str());
  }

  return (monotone && wrong_total == 0) ? 0 : 1;
}
