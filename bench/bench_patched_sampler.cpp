// Defense evaluation (paper §V-A): SEAL v3.6 replaced the if/else-if/else
// sign assignment with a branch-free iterator expression. This bench runs
// the identical attack pipeline against the vulnerable (v3.2) and patched
// (v3.6-style) firmware and reports what survives.
//
// Expected outcome: the control-flow leak (vulnerability 1) and the
// negation leak (vulnerability 3) disappear — zero detection and the
// negative-value advantage collapse — while data-flow leakage
// (vulnerability 2) remains, matching the paper's caution that "SEAL v3.6
// and later versions may have a different vulnerability".

#include <cstdio>

#include "bench_common.hpp"
#include "core/attack.hpp"
#include "sca/report.hpp"

using namespace reveal;
using namespace reveal::core;

namespace {

struct Outcome {
  double sign_accuracy = 0.0;
  double zero_accuracy = 0.0;
  double neg_accuracy = 0.0;  // mean over -6..-1
  double pos_accuracy = 0.0;  // mean over 1..6
};

Outcome evaluate(bool patched, std::size_t profile_runs, std::size_t attack_runs) {
  CampaignConfig cfg = bench::default_campaign(64);
  cfg.patched_firmware = patched;
  SamplerCampaign campaign(cfg);
  RevealAttack attack;
  attack.train(campaign.collect_windows(profile_runs, /*seed_base=*/1));

  sca::ConfusionMatrix cm;
  std::size_t sign_ok = 0, total = 0;
  for (std::uint64_t seed = 90000; seed < 90000 + attack_runs; ++seed) {
    const FullCapture cap = campaign.capture(seed);
    if (cap.segments.size() != cfg.n) continue;
    const auto guesses = attack.attack_capture(cap);
    for (std::size_t i = 0; i < guesses.size(); ++i) {
      cm.add(static_cast<std::int32_t>(cap.noise[i]), guesses[i].value);
      const int truth = cap.noise[i] > 0 ? 1 : (cap.noise[i] < 0 ? -1 : 0);
      sign_ok += (guesses[i].sign == truth);
      ++total;
    }
  }
  Outcome out;
  out.sign_accuracy = 100.0 * static_cast<double>(sign_ok) / static_cast<double>(total);
  out.zero_accuracy = cm.accuracy(0);
  for (int v = 1; v <= 6; ++v) {
    out.neg_accuracy += cm.accuracy(-v) / 6.0;
    out.pos_accuracy += cm.accuracy(v) / 6.0;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::has_flag(argc, argv, "--quick");
  bench::print_header(
      "Defense: SEAL v3.6-style patched sampler",
      "Same attack pipeline against the vulnerable (v3.2) and the\n"
      "branch-free (v3.6-style) firmware.");

  const std::size_t profile_runs = quick ? 80 : 200;
  const std::size_t attack_runs = quick ? 10 : 30;

  std::printf("\nrunning against the vulnerable firmware...\n");
  const Outcome vuln = evaluate(false, profile_runs, attack_runs);
  std::printf("running against the patched firmware...\n");
  const Outcome patched = evaluate(true, profile_runs, attack_runs);

  std::printf("\n%-34s %14s %14s\n", "metric", "v3.2 (vuln)", "v3.6 (patched)");
  std::printf("%-34s %14.1f %14.1f\n", "sign accuracy (%)", vuln.sign_accuracy,
              patched.sign_accuracy);
  std::printf("%-34s %14.1f %14.1f\n", "zero detection (%)", vuln.zero_accuracy,
              patched.zero_accuracy);
  std::printf("%-34s %14.1f %14.1f\n", "value accuracy, negatives (%)",
              vuln.neg_accuracy, patched.neg_accuracy);
  std::printf("%-34s %14.1f %14.1f\n", "value accuracy, positives (%)",
              vuln.pos_accuracy, patched.pos_accuracy);

  std::printf(
      "\nreading: the patch removes the control-flow (branch) and negation\n"
      "leaks; any residual sign/zero recovery on the patched firmware comes\n"
      "from pure data-flow leakage of the stored value — the \"different\n"
      "vulnerability\" the paper leaves for future work. Shuffling or\n"
      "randomization would be needed to close that channel (§V-A).\n");
  (void)argc;
  (void)argv;
  return 0;
}
