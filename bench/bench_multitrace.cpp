// The single-trace premise (paper §II-B): "Since secret and error values
// are freshly computed for each new encryption operation, the adversary has
// to perform the attack with a single power measurement trace."
//
// This bench quantifies that premise on the simulated target:
//   (a) averaging traces of DIFFERENT encryptions is useless — each trace
//       carries different fresh coefficients, so per-coefficient accuracy
//       cannot improve;
//   (b) if the device could be forced to REPLAY the same randomness
//       (hypothetically), averaging k traces would suppress measurement
//       noise by sqrt(k) and the attack would sharpen — which is exactly
//       why masking-style defenses target multi-trace attacks and why they
//       are beside the point here.

#include <cstdio>

#include "bench_common.hpp"
#include "core/attack.hpp"
#include "power/trace_recorder.hpp"

using namespace reveal;
using namespace reveal::core;

int main(int argc, char** argv) {
  const bool quick = bench::has_flag(argc, argv, "--quick");
  bench::print_header(
      "Single-trace premise",
      "Why the attack must work with ONE measurement: fresh randomness per\n"
      "encryption makes cross-trace averaging useless.");

  CampaignConfig cfg = bench::default_campaign(64);
  cfg.leakage.noise_sigma = 0.40;  // noisy regime where averaging would pay
  SamplerCampaign campaign(cfg);
  RevealAttack attack;
  std::printf("\nprofiling (noise sigma = %.2f)...\n", cfg.leakage.noise_sigma);
  attack.train(campaign.collect_windows(quick ? 100 : 300, /*seed_base=*/1));

  // (a) Fresh encryptions: single-trace accuracy is all there is.
  std::size_t ok = 0, total = 0;
  const std::size_t attack_runs = quick ? 10 : 25;
  for (std::uint64_t seed = 30000; seed < 30000 + attack_runs; ++seed) {
    const FullCapture cap = campaign.capture(seed);
    if (cap.segments.size() != cfg.n) continue;
    const auto guesses = attack.attack_capture(cap);
    for (std::size_t i = 0; i < guesses.size(); ++i) {
      ok += (guesses[i].value == cap.noise[i]);
      ++total;
    }
  }
  const double single = 100.0 * static_cast<double>(ok) / static_cast<double>(total);

  // (b) Hypothetical replay: same firmware seed, k independent noise
  // streams, averaged before the attack.
  const VictimProgram prog = build_sampler_firmware(cfg.n, cfg.moduli);
  riscv::Machine machine(prog.memory_bytes);
  const power::LeakageModel model(cfg.leakage);

  std::printf("\n%24s %18s\n", "traces averaged (k)", "value accuracy %");
  std::printf("%24s %18.1f   <- the real setting (fresh randomness)\n", "1 (fresh)",
              single);
  for (const std::size_t k : {1u, 4u, 16u}) {
    std::size_t rok = 0, rtotal = 0;
    for (std::uint64_t run_idx = 0; run_idx < (quick ? 6u : 12u); ++run_idx) {
      const auto fw_seed = static_cast<std::uint32_t>(0xAB0000 + run_idx);
      // Average k replayed traces (identical execution, fresh scope noise).
      std::vector<double> averaged;
      VictimRun run;
      for (std::size_t rep = 0; rep < k; ++rep) {
        power::TraceRecorder recorder(model, 0x5EED0000ULL + run_idx * 64 + rep);
        run = run_victim(prog, machine, fw_seed, &recorder);
        const auto samples = recorder.take_samples();
        if (averaged.empty()) averaged.assign(samples.size(), 0.0);
        for (std::size_t s = 0; s < samples.size(); ++s) averaged[s] += samples[s];
      }
      for (double& v : averaged) v /= static_cast<double>(k);

      auto segments = sca::segment_trace(averaged, cfg.segmentation);
      anchor_windows_at_burst_edge(averaged, segments, cfg.segmentation.threshold);
      if (segments.size() != cfg.n) continue;
      for (std::size_t i = 0; i < cfg.n; ++i) {
        const auto& seg = segments[i];
        std::vector<double> window(
            averaged.begin() + static_cast<std::ptrdiff_t>(seg.window_begin),
            averaged.begin() + static_cast<std::ptrdiff_t>(seg.window_end));
        if (window.size() < 110) continue;
        const auto guess = attack.attack_window(window);
        rok += (guess.value == run.noise[i]);
        ++rtotal;
      }
    }
    std::printf("%14zu (replayed) %18.1f%s\n", k,
                100.0 * static_cast<double>(rok) / static_cast<double>(rtotal),
                k == 1 ? "" : "   <- only possible if randomness were reused");
  }

  std::printf(
      "\nreading: with fresh per-encryption randomness there is nothing to\n"
      "average — the attack succeeds or fails on one trace, which is why the\n"
      "paper targets the sampler with a single measurement and why masking\n"
      "(a multi-trace countermeasure) does not address this threat (§V-A).\n");
  (void)argc;
  (void)argv;
  return 0;
}
