// Cross-device portability (paper §V-B): "We limit our attack to a single
// device, cross-device attacks may need a more complicated, machine-
// learning-based profiling [20]."
//
// Devices differ in their per-bit-line capacitances (the bit_weight_seed of
// our leakage model). Profiling on device A and attacking device B keeps
// everything the devices share — the control flow and the Hamming-weight
// *class* structure — but destroys the per-bit fingerprints the templates
// use to split values inside an HW class. Expectation: sign stays 100%,
// value accuracy drops toward the HW-class ceiling.

#include <cstdio>

#include "bench_common.hpp"
#include "core/attack.hpp"
#include "sca/report.hpp"

using namespace reveal;
using namespace reveal::core;

namespace {

struct Outcome {
  double sign = 0.0;
  double neg = 0.0;
  double pos = 0.0;
};

Outcome attack_device(const RevealAttack& attack, std::uint64_t device_seed,
                      std::size_t attack_runs) {
  // Low-noise acquisition: the regime where per-bit fingerprints dominate
  // the value templates (and where cross-device loss is visible).
  CampaignConfig cfg = bench::lab_campaign(64);
  cfg.leakage.bit_weight_seed = device_seed;
  SamplerCampaign campaign(cfg);
  sca::ConfusionMatrix cm;
  std::size_t sign_ok = 0, total = 0;
  for (std::uint64_t seed = 60000; seed < 60000 + attack_runs; ++seed) {
    const FullCapture cap = campaign.capture(seed);
    if (cap.segments.size() != cfg.n) continue;
    const auto guesses = attack.attack_capture(cap);
    for (std::size_t i = 0; i < guesses.size(); ++i) {
      cm.add(static_cast<std::int32_t>(cap.noise[i]), guesses[i].value);
      const int truth = cap.noise[i] > 0 ? 1 : (cap.noise[i] < 0 ? -1 : 0);
      sign_ok += (guesses[i].sign == truth);
      ++total;
    }
  }
  Outcome out;
  out.sign = 100.0 * static_cast<double>(sign_ok) / static_cast<double>(total);
  for (int v = 1; v <= 6; ++v) {
    out.neg += cm.accuracy(-v) / 6.0;
    out.pos += cm.accuracy(v) / 6.0;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::has_flag(argc, argv, "--quick");
  bench::print_header(
      "Cross-device portability (§V-B)",
      "Templates profiled on device A, attacks on devices with different\n"
      "per-bit-line capacitance fingerprints.");

  const std::size_t profile_runs = quick ? 80 : 200;
  const std::size_t attack_runs = quick ? 10 : 25;

  // Profile on device A (the default fingerprint).
  CampaignConfig profile_cfg = bench::lab_campaign(64);
  SamplerCampaign profile_campaign(profile_cfg);
  RevealAttack attack;
  std::printf("\nprofiling on device A...\n");
  attack.train(profile_campaign.collect_windows(profile_runs, /*seed_base=*/1));

  std::printf("\n%-34s %10s %10s %10s\n", "target device", "sign %", "neg %", "pos %");
  const Outcome same = attack_device(attack, profile_cfg.leakage.bit_weight_seed,
                                     attack_runs);
  std::printf("%-34s %10.1f %10.1f %10.1f\n", "A (same device)", same.sign, same.neg,
              same.pos);
  for (const std::uint64_t device : {0xD0E0BEEFULL, 0x12345678ULL}) {
    const Outcome other = attack_device(attack, device, attack_runs);
    std::printf("%-34s %10.1f %10.1f %10.1f\n", "B (different fingerprint)", other.sign,
                other.neg, other.pos);
  }

  std::printf(
      "\nreading: the sign (control-flow) leak transfers perfectly across\n"
      "devices; value templates lose the per-bit fingerprint and fall back\n"
      "to Hamming-weight-class resolution — consistent with the paper's\n"
      "caveat that cross-device value recovery needs ML-style profiling.\n");
  return 0;
}
