#pragma once
// Shared plumbing for the reproduction harnesses: default campaign
// configurations, a tiny CLI-flag reader, and paper-vs-measured row
// printing. Every bench prints the rows of one of the paper's tables or
// figures next to the values measured on the simulated target.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/acquisition.hpp"

namespace reveal::bench {

/// The acquisition configuration used by the paper-style experiments:
/// SEAL-128 modulus, default leakage model.
inline core::CampaignConfig default_campaign(std::size_t n = 64) {
  core::CampaignConfig cfg;
  cfg.n = n;
  cfg.moduli = {132120577ULL};
  return cfg;
}

/// "Lab-grade" acquisition (low noise, strong per-bit spread): the regime
/// in which per-coefficient posteriors become near-deterministic, like the
/// paper's Table II.
inline core::CampaignConfig lab_campaign(std::size_t n = 64) {
  core::CampaignConfig cfg = default_campaign(n);
  cfg.leakage.noise_sigma = 0.01;
  cfg.leakage.bit_deviation = 0.35;
  return cfg;
}

/// True if the flag (e.g. "--full") is present on the command line.
inline bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

/// String value of "--name=<v>" or "--name <v>", or fallback
/// (e.g. --diag=diag.json, --diag diag.json).
inline std::string flag_string(int argc, char** argv, const char* name,
                               const char* fallback = "") {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
    if (std::strcmp(argv[i], name) == 0 && i + 1 < argc) {
      return argv[i + 1];
    }
  }
  return fallback;
}

/// Value of "--name=<v>" or fallback.
inline long flag_value(int argc, char** argv, const char* name, long fallback) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::strtol(argv[i] + prefix.size(), nullptr, 10);
    }
  }
  return fallback;
}

inline void print_header(const char* experiment, const char* description) {
  std::printf("==============================================================\n");
  std::printf("RevEAL reproduction — %s\n", experiment);
  std::printf("%s\n", description);
  std::printf("==============================================================\n");
}

inline void print_row(const char* label, double paper, double measured,
                      const char* unit = "") {
  std::printf("  %-42s paper: %10.2f   measured: %10.2f %s\n", label, paper, measured,
              unit);
}

inline void print_note(const char* note) { std::printf("  note: %s\n", note); }

}  // namespace reveal::bench
