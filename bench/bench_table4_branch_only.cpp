// Table IV reproduction: cost of the attack when ONLY the branch
// vulnerability is exploited — the adversary learns the sign of every
// coefficient (and which are exactly zero) but not the values.
//
//   zero coefficients  -> perfect hints
//   signed coefficients -> posterior replacement with the one-sided
//                          (half-Gaussian) conditional variance
//   "+ guesses"        -> additionally guess the most likely value of one
//                          signed coefficient (a perfect hint that is only
//                          correct with probability ~P(v = 1 | v > 0)).

#include <cstdio>

#include "bench_common.hpp"
#include "core/attack.hpp"
#include "core/hints.hpp"
#include "lwe/dbdd.hpp"
#include "numeric/distributions.hpp"

using namespace reveal;
using namespace reveal::core;

int main(int argc, char** argv) {
  bench::print_header(
      "Table IV",
      "Cost of attack with hints from ONLY the branch vulnerability\n"
      "(signs + zeros) for SEAL-128. Signs alone must NOT break the scheme.");

  lwe::DbddParams params;
  params.secret_dim = 1024;
  params.error_dim = 1024;
  params.q = 132120577.0;
  params.secret_variance = 3.2 * 3.2;
  params.error_variance = 3.2 * 3.2;

  const lwe::SecurityEstimate baseline = lwe::estimate_lwe_security(params);
  std::printf("\n");
  bench::print_row("attack without hints (bikz)", 382.25, baseline.beta);

  // Sign/zero information measured on the simulated target (the classifier
  // is exact, so the hint counts follow the sampled distribution).
  std::printf("\ncollecting 1024 sign measurements...\n");
  CampaignConfig cfg = bench::default_campaign(64);
  SamplerCampaign campaign(cfg);
  RevealAttack attack;
  attack.train(campaign.collect_windows(150, /*seed_base=*/1));
  std::vector<CoefficientGuess> guesses;
  std::size_t sign_correct = 0;
  for (std::uint64_t seed = 60000; guesses.size() < 1024; ++seed) {
    const FullCapture cap = campaign.capture(seed);
    if (cap.segments.size() != cfg.n) continue;
    const auto batch = attack.attack_capture(cap);
    for (std::size_t i = 0; i < batch.size() && guesses.size() < 1024; ++i) {
      const int truth = cap.noise[i] > 0 ? 1 : (cap.noise[i] < 0 ? -1 : 0);
      sign_correct += (batch[i].sign == truth);
      guesses.push_back(batch[i]);
    }
  }
  bench::print_row("branch (sign) success probability (%)", 100.0,
                   100.0 * static_cast<double>(sign_correct) / 1024.0);

  lwe::DbddEstimator sign_only(params);
  const HintSummary summary = integrate_sign_only_hints(sign_only, guesses, 3.19, 41.0);
  const lwe::SecurityEstimate with_signs = sign_only.estimate();
  std::printf("\n  hint breakdown: %zu zeros (perfect), %zu signs (conditional variance "
              "%.2f)\n",
              summary.perfect, summary.approximate, summary.mean_residual_variance);
  bench::print_row("attack with sign-only hints (bikz)", 253.29, with_signs.beta);
  bench::print_row("attack with sign-only hints (bits)", 84.34, with_signs.bits);

  // "+ guesses": guess the most likely value of one signed coefficient and
  // integrate it as a perfect hint; the guess succeeds with probability
  // P(v = most-likely | sign) of the one-sided rounded Gaussian.
  lwe::DbddEstimator with_guess(params);
  integrate_sign_only_hints(with_guess, guesses, 3.19, 41.0);
  with_guess.integrate_perfect_error_hints(1);
  const lwe::SecurityEstimate with_guesses = with_guess.estimate();
  const double p1 = num::rounded_clipped_normal_pmf(1, 3.19, 41.0);
  double p_pos = 0.0;
  for (int k = 1; k <= 41; ++k) p_pos += num::rounded_clipped_normal_pmf(k, 3.19, 41.0);
  const double guess_success = p1 / p_pos;
  std::printf("\n");
  bench::print_row("attack with hints & 1 guess (bikz)", 252.83, with_guesses.beta);
  bench::print_row("number of guesses", 1.0, 1.0);
  bench::print_row("guess success probability (%)", 20.0, 100.0 * guess_success);

  std::printf("\nconclusion (paper): \"signs alone cannot recover the plaintext\n"
              "message\" — the sign-only bikz stays far above the full-hint cost\n"
              "of Table III, and so it does here: %.1f >> full-hint cost.\n",
              with_signs.beta);
  (void)argc;
  (void)argv;
  return 0;
}
