// Fig. 3 reproduction: (a) a power-trace portion covering three coefficient
// samplings with the distribution-call peaks that delimit them; (b) the
// branch sub-traces of the three sign cases, which are visually and
// statistically distinguishable.

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.hpp"
#include "core/attack.hpp"
#include "sca/classifier.hpp"

using namespace reveal;
using namespace reveal::core;

namespace {

/// ASCII rendering: rows of characters, higher power = taller column.
void render_ascii(const std::vector<double>& samples, std::size_t begin, std::size_t end,
                  const std::vector<sca::Segment>& segments) {
  constexpr int kRows = 12;
  double lo = 1e300, hi = -1e300;
  for (std::size_t i = begin; i < end; ++i) {
    lo = std::min(lo, samples[i]);
    hi = std::max(hi, samples[i]);
  }
  const std::size_t width = end - begin;
  const std::size_t stride = std::max<std::size_t>(1, width / 110);
  std::vector<double> cols;
  for (std::size_t i = begin; i < end; i += stride) {
    double peak = samples[i];
    for (std::size_t j = i; j < std::min(i + stride, end); ++j)
      peak = std::max(peak, samples[j]);
    cols.push_back(peak);
  }
  for (int r = kRows; r >= 1; --r) {
    const double level = lo + (hi - lo) * r / kRows;
    std::printf("  %7.2f |", level);
    for (const double c : cols) std::printf("%c", c >= level ? '#' : ' ');
    std::printf("\n");
  }
  std::printf("          +");
  for (std::size_t c = 0; c < cols.size(); ++c) std::printf("-");
  std::printf("\n          ");
  // Mark the bursts (the paper's double-headed-arrow anchors).
  std::string marks(cols.size(), ' ');
  for (const auto& seg : segments) {
    if (seg.burst_begin < begin || seg.burst_begin >= end) continue;
    const std::size_t pos = (seg.burst_begin - begin) / stride;
    if (pos < marks.size()) marks[pos] = '^';
  }
  std::printf("%s  (^ = detected distribution-call burst)\n", marks.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header(
      "Fig. 3",
      "(a) trace portion with locatable per-coefficient peaks; (b) the\n"
      "three branch sub-traces are distinguishable (control-flow leak).");

  CampaignConfig cfg = bench::default_campaign(64);
  SamplerCampaign campaign(cfg);
  const FullCapture cap = campaign.capture(2022);
  std::printf("\ncaptured %zu samples; segmentation found %zu / %zu coefficient windows\n",
              cap.trace.size(), cap.segments.size(), cfg.n);

  // --- Fig. 3(a): find three consecutive coefficients covering all signs --
  std::size_t start_idx = 0;
  for (std::size_t i = 0; i + 2 < cap.noise.size(); ++i) {
    const bool has_pos = cap.noise[i] > 0 || cap.noise[i + 1] > 0 || cap.noise[i + 2] > 0;
    const bool has_neg = cap.noise[i] < 0 || cap.noise[i + 1] < 0 || cap.noise[i + 2] < 0;
    const bool has_zero = cap.noise[i] == 0 || cap.noise[i + 1] == 0 || cap.noise[i + 2] == 0;
    if (has_pos && has_neg && has_zero) {
      start_idx = i;
      break;
    }
  }
  std::printf("\nFig. 3(a): coefficients %zu..%zu sample values (%lld, %lld, %lld)\n",
              start_idx, start_idx + 2, static_cast<long long>(cap.noise[start_idx]),
              static_cast<long long>(cap.noise[start_idx + 1]),
              static_cast<long long>(cap.noise[start_idx + 2]));
  const std::size_t view_begin = cap.segments[start_idx].burst_begin > 8
                                     ? cap.segments[start_idx].burst_begin - 8
                                     : 0;
  const std::size_t view_end =
      std::min(cap.segments[start_idx + 3].burst_begin + 8, cap.trace.size());
  render_ascii(cap.trace, view_begin, view_end, cap.segments);

  // --- Fig. 3(b): mean branch sub-traces per sign class -----------------
  std::printf("\nFig. 3(b): mean branch sub-trace per sign case (first 40 samples\n"
              "of the window after the distribution burst):\n");
  std::map<int, std::pair<std::vector<double>, std::size_t>> acc;
  const std::size_t sub_len = 40;
  std::size_t runs = 40;
  for (std::uint64_t seed = 3000; seed < 3000 + runs; ++seed) {
    const FullCapture c = campaign.capture(seed);
    if (c.segments.size() != cfg.n) continue;
    const auto windows = windows_from_capture(c);
    for (std::size_t i = 0; i < windows.size(); ++i) {
      if (windows[i].samples.size() < sub_len) continue;
      const int sign = c.noise[i] > 0 ? 1 : (c.noise[i] < 0 ? -1 : 0);
      auto& [sum, count] = acc[sign];
      if (sum.empty()) sum.assign(sub_len, 0.0);
      for (std::size_t k = 0; k < sub_len; ++k) sum[k] += windows[i].samples[k];
      ++count;
    }
  }
  for (auto& [sign, pair] : acc) {
    auto& [sum, count] = pair;
    std::printf("  %-9s |", sign > 0 ? "noise > 0" : (sign < 0 ? "noise < 0" : "noise = 0"));
    for (std::size_t k = 0; k < sub_len; ++k) {
      const double v = sum[k] / static_cast<double>(count);
      std::printf("%c", v > 5.2 ? '#' : (v > 4.4 ? '+' : '.'));
    }
    std::printf("  (%zu windows)\n", count);
  }
  std::printf("  legend: '#' high, '+' medium, '.' low mean power\n");

  // Quantify the claim behind both subfigures.
  std::printf("\nchecks:\n");
  bench::print_row("segmentation success (windows found, %)", 100.0,
                   100.0 * static_cast<double>(cap.segments.size()) /
                       static_cast<double>(cfg.n));

  // Sign classification over fresh traces (paper: 100%).
  RevealAttack attack;
  attack.train(campaign.collect_windows(100, 1));
  std::size_t total = 0, correct = 0;
  for (std::uint64_t seed = 5000; seed < 5020; ++seed) {
    const FullCapture c = campaign.capture(seed);
    if (c.segments.size() != cfg.n) continue;
    const auto guesses = attack.attack_capture(c);
    for (std::size_t i = 0; i < guesses.size(); ++i) {
      const int truth = c.noise[i] > 0 ? 1 : (c.noise[i] < 0 ? -1 : 0);
      correct += (guesses[i].sign == truth);
      ++total;
    }
  }
  bench::print_row("branch (sign) identification accuracy (%)", 100.0,
                   100.0 * static_cast<double>(correct) / static_cast<double>(total));
  (void)argc;
  (void)argv;
  return 0;
}
