// Table III reproduction: cost of the primal attack with/without hints for
// the SEAL-128 parameter set (n = 1024, q = 132120577, sigma = 3.2),
// reported as the BKZ block size ("bikz") of the DBDD-reduced instance.
//
// Two hint-integration methodologies are shown:
//   (paper)   every measurement is integrated as a (near-)perfect hint —
//             the paper observes posterior variances "very close if not
//             equal to 0" and obtains 12.2 bikz;
//   (honest)  hints carry the *measured* posterior variance of our
//             template attack at the default acquisition noise.

#include <cstdio>

#include "bench_common.hpp"
#include "core/attack.hpp"
#include "core/hints.hpp"
#include "lwe/dbdd.hpp"

using namespace reveal;
using namespace reveal::core;

int main(int argc, char** argv) {
  bench::print_header(
      "Table III",
      "Cost of attack with/without hints for SEAL-128 (bikz; bits = bikz/2.986).");

  lwe::DbddParams params;
  params.secret_dim = 1024;
  params.error_dim = 1024;
  params.q = 132120577.0;
  params.secret_variance = 3.2 * 3.2;
  params.error_variance = 3.2 * 3.2;

  // --- row 1: attack without hints ---------------------------------------
  const lwe::SecurityEstimate baseline = lwe::estimate_lwe_security(params);
  std::printf("\n");
  bench::print_row("attack without hints (bikz)", 382.25, baseline.beta);
  bench::print_row("attack without hints (bits)", 128.0, baseline.bits);

  // --- measurements: 1024 coefficient guesses from the simulated target --
  std::printf("\ncollecting 1024 measured coefficient hints (16 captures x 64)...\n");
  CampaignConfig cfg = bench::default_campaign(64);
  SamplerCampaign campaign(cfg);
  RevealAttack attack;
  attack.train(campaign.collect_windows(600, /*seed_base=*/1));
  std::vector<CoefficientGuess> guesses;
  std::size_t value_correct = 0;
  for (std::uint64_t seed = 40000; guesses.size() < 1024; ++seed) {
    const FullCapture cap = campaign.capture(seed);
    if (cap.segments.size() != cfg.n) continue;
    const auto batch = attack.attack_capture(cap);
    for (std::size_t i = 0; i < batch.size() && guesses.size() < 1024; ++i) {
      value_correct += (batch[i].value == cap.noise[i]);
      guesses.push_back(batch[i]);
    }
  }
  std::printf("per-coefficient ML accuracy over the hint set: %.1f%%\n",
              100.0 * static_cast<double>(value_correct) / 1024.0);

  // --- row 2 (paper methodology): all measurements as perfect hints ------
  lwe::DbddEstimator paper_style(params);
  paper_style.integrate_perfect_error_hints(1024);
  const lwe::SecurityEstimate with_hints_paper = paper_style.estimate();
  std::printf("\n");
  bench::print_row("attack with hints, paper methodology (bikz)", 12.2,
                   with_hints_paper.beta);
  bench::print_row("attack with hints, paper methodology (bits)", 4.4,
                   with_hints_paper.bits);
  bench::print_note(
      "paper: measured posterior variances ~0 => all hints perfect;\n"
      "  both numbers land in 'complete break' territory (residual search\n"
      "  over a handful of candidates; see bench_toy_recovery / the\n"
      "  residual_search end-to-end demo).");

  // --- row 3 (honest calibration): measured posterior variances ----------
  lwe::DbddEstimator honest(params);
  const HintSummary summary = integrate_guess_hints(honest, guesses, 1e-6);
  const lwe::SecurityEstimate with_hints_measured = honest.estimate();
  std::printf("\n");
  std::printf("  measured hint quality: %zu perfect, %zu approximate (mean residual "
              "variance %.2f)\n",
              summary.perfect, summary.approximate, summary.mean_residual_variance);
  bench::print_row("attack with measured-variance hints (bikz)", 12.2,
                   with_hints_measured.beta);
  bench::print_row("attack with measured-variance hints (bits)", 4.4,
                   with_hints_measured.bits);
  bench::print_note(
      "honest calibration keeps the positive-value ambiguity (Hamming-weight\n"
      "  collisions, cf. Table I) in the hint variances, so the residual\n"
      "  hardness stays higher than the paper's idealized 12.2 bikz; the\n"
      "  qualitative conclusion (massive security loss from one trace) holds.");
  (void)argc;
  (void)argv;
  return 0;
}
