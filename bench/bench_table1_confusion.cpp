// Table I reproduction: template-attack success percentages per coefficient.
//
// The paper profiles with 220,000 samplings and attacks 25,000; the default
// here is scaled down ~4x for turnaround (pass --full for paper-scale
// counts). Rows = predicted label, columns = true sampled coefficient,
// entries = percent of that true value classified as the row label.

#include <cstdio>

#include "bench_common.hpp"
#include "core/attack.hpp"
#include "sca/metrics.hpp"
#include "sca/report.hpp"

using namespace reveal;
using namespace reveal::core;

int main(int argc, char** argv) {
  const bool full = bench::has_flag(argc, argv, "--full");
  bench::print_header(
      "Table I",
      "Attack success percentages per coefficient (template attack with\n"
      "sign-conditioned templates; negatives benefit from the negation leak).");

  CampaignConfig cfg = bench::default_campaign(64);
  SamplerCampaign campaign(cfg);

  const std::size_t profiling_target = full ? 220000 : 56000;
  const std::size_t attack_target = full ? 25000 : 6400;
  const std::size_t profiling_runs = profiling_target / cfg.n;
  const std::size_t attack_runs = attack_target / cfg.n;

  std::printf("\nprofiling with %zu samplings (paper: 220000)...\n",
              profiling_runs * cfg.n);
  RevealAttack attack;
  attack.train(campaign.collect_windows(profiling_runs, /*seed_base=*/1));

  std::printf("attacking %zu samplings (paper: 25000)...\n", attack_runs * cfg.n);
  sca::ConfusionMatrix cm;
  sca::RankAccumulator ranks;
  std::size_t sign_correct = 0, sign_total = 0;
  for (std::uint64_t seed = 0; seed < attack_runs; ++seed) {
    const FullCapture cap = campaign.capture(900000 + seed);
    if (cap.segments.size() != cfg.n) continue;
    const auto guesses = attack.attack_capture(cap);
    for (std::size_t i = 0; i < guesses.size(); ++i) {
      cm.add(static_cast<std::int32_t>(cap.noise[i]), guesses[i].value);
      ranks.add(sca::rank_of_truth(guesses[i].support, guesses[i].posterior,
                                   static_cast<std::int32_t>(cap.noise[i])));
      const int truth = cap.noise[i] > 0 ? 1 : (cap.noise[i] < 0 ? -1 : 0);
      sign_correct += (guesses[i].sign == truth);
      ++sign_total;
    }
  }

  std::printf("\nconfusion matrix (%% of each true value, columns -7..7, rows -14..14):\n");
  std::printf("%s\n", cm.to_table(-14, 14, -7, 7).c_str());

  std::printf("key comparisons (true value -> %% classified correctly):\n");
  bench::print_row("sign recovery accuracy (%)", 100.0,
                   100.0 * static_cast<double>(sign_correct) /
                       static_cast<double>(sign_total));
  bench::print_row("value  0 accuracy (%)", 100.0, cm.accuracy(0));
  bench::print_row("value -1 accuracy (%)", 95.7, cm.accuracy(-1));
  bench::print_row("value -2 accuracy (%)", 92.5, cm.accuracy(-2));
  bench::print_row("value -3 accuracy (%)", 60.7, cm.accuracy(-3));
  bench::print_row("value -4 accuracy (%)", 91.0, cm.accuracy(-4));
  bench::print_row("value +1 accuracy (%)", 31.8, cm.accuracy(1));
  bench::print_row("value +2 accuracy (%)", 27.7, cm.accuracy(2));
  bench::print_row("value +3 accuracy (%)", 23.5, cm.accuracy(3));

  double neg_mean = 0.0, pos_mean = 0.0;
  int cnt = 0;
  for (int v = 1; v <= 6; ++v) {
    neg_mean += cm.accuracy(-v);
    pos_mean += cm.accuracy(v);
    ++cnt;
  }
  bench::print_row("mean accuracy values -6..-1 (%)", 74.2, neg_mean / cnt);
  bench::print_row("mean accuracy values +1..+6 (%)", 21.6, pos_mean / cnt);

  std::printf("\nextra metrics (not in the paper):\n");
  std::printf("  guessing entropy (mean rank of truth)      : %.2f\n",
              ranks.guessing_entropy());
  std::printf("  success rate at rank 1 / 3 / 5 (%%)         : %.1f / %.1f / %.1f\n",
              100.0 * ranks.success_rate_at(1), 100.0 * ranks.success_rate_at(3),
              100.0 * ranks.success_rate_at(5));
  bench::print_note(
      "shape checks: sign & zero at 100%; negatives well above positives\n"
      "  (vulnerability 3: the negation + modulus-subtract store); positive\n"
      "  values collide within Hamming-weight classes exactly as in the paper.");
  return 0;
}
