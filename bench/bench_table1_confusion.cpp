// Table I reproduction: template-attack success percentages per coefficient.
//
// The paper profiles with 220,000 samplings and attacks 25,000; the default
// here is scaled down ~4x for turnaround (pass --full for paper-scale
// counts). Rows = predicted label, columns = true sampled coefficient,
// entries = percent of that true value classified as the row label.

#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "core/attack.hpp"
#include "obs/diagnostics.hpp"
#include "obs/metrics.hpp"
#include "sca/metrics.hpp"
#include "sca/report.hpp"

using namespace reveal;
using namespace reveal::core;

int main(int argc, char** argv) {
  const bool full = bench::has_flag(argc, argv, "--full");
  bench::print_header(
      "Table I",
      "Attack success percentages per coefficient (template attack with\n"
      "sign-conditioned templates; negatives benefit from the negation leak).");

  CampaignConfig cfg = bench::default_campaign(64);
  SamplerCampaign campaign(cfg);

  const std::size_t profiling_target = full ? 220000 : 56000;
  const std::size_t attack_target = full ? 25000 : 6400;
  const std::size_t profiling_runs = profiling_target / cfg.n;
  const std::size_t attack_runs = attack_target / cfg.n;

  std::printf("\nprofiling with %zu samplings (paper: 220000)...\n",
              profiling_runs * cfg.n);
  RevealAttack attack;
  attack.train(campaign.collect_windows(profiling_runs, /*seed_base=*/1));

  std::printf("attacking %zu samplings (paper: 25000)...\n", attack_runs * cfg.n);
  sca::ConfusionMatrix cm;
  sca::RankAccumulator ranks;
  std::size_t sign_correct = 0, sign_total = 0;
  std::size_t captures = 0, skipped_captures = 0;
  for (std::uint64_t seed = 0; seed < attack_runs; ++seed) {
    const FullCapture cap = campaign.capture(900000 + seed);
    ++captures;
    if (cap.segments.size() != cfg.n) {
      ++skipped_captures;
      continue;
    }
    const auto guesses = attack.attack_capture(cap);
    for (std::size_t i = 0; i < guesses.size(); ++i) {
      cm.add(static_cast<std::int32_t>(cap.noise[i]), guesses[i].value);
      ranks.add(sca::rank_of_truth(guesses[i].support, guesses[i].posterior,
                                   static_cast<std::int32_t>(cap.noise[i])));
      const int truth = cap.noise[i] > 0 ? 1 : (cap.noise[i] < 0 ? -1 : 0);
      sign_correct += (guesses[i].sign == truth);
      ++sign_total;
    }
  }

  std::printf("\nconfusion matrix (%% of each true value, columns -7..7, rows -14..14):\n");
  std::printf("%s\n", cm.to_table(-14, 14, -7, 7).c_str());

  std::printf("key comparisons (true value -> %% classified correctly):\n");
  bench::print_row("sign recovery accuracy (%)", 100.0,
                   100.0 * static_cast<double>(sign_correct) /
                       static_cast<double>(sign_total));
  bench::print_row("value  0 accuracy (%)", 100.0, cm.accuracy(0));
  bench::print_row("value -1 accuracy (%)", 95.7, cm.accuracy(-1));
  bench::print_row("value -2 accuracy (%)", 92.5, cm.accuracy(-2));
  bench::print_row("value -3 accuracy (%)", 60.7, cm.accuracy(-3));
  bench::print_row("value -4 accuracy (%)", 91.0, cm.accuracy(-4));
  bench::print_row("value +1 accuracy (%)", 31.8, cm.accuracy(1));
  bench::print_row("value +2 accuracy (%)", 27.7, cm.accuracy(2));
  bench::print_row("value +3 accuracy (%)", 23.5, cm.accuracy(3));

  double neg_mean = 0.0, pos_mean = 0.0;
  int cnt = 0;
  for (int v = 1; v <= 6; ++v) {
    neg_mean += cm.accuracy(-v);
    pos_mean += cm.accuracy(v);
    ++cnt;
  }
  bench::print_row("mean accuracy values -6..-1 (%)", 74.2, neg_mean / cnt);
  bench::print_row("mean accuracy values +1..+6 (%)", 21.6, pos_mean / cnt);

  std::printf("\nextra metrics (not in the paper):\n");
  std::printf("  guessing entropy (mean rank of truth)      : %.2f\n",
              ranks.guessing_entropy());
  std::printf("  success rate at rank 1 / 3 / 5 (%%)         : %.1f / %.1f / %.1f\n",
              100.0 * ranks.success_rate_at(1), 100.0 * ranks.success_rate_at(3),
              100.0 * ranks.success_rate_at(5));
  bench::print_note(
      "shape checks: sign & zero at 100%; negatives well above positives\n"
      "  (vulnerability 3: the negation + modulus-subtract store); positive\n"
      "  values collide within Hamming-weight classes exactly as in the paper.");

  // --diag=<path>: emit the exact confusion tallies this table was printed
  // from as a DiagnosticsReport — campaign --diag output can be checked
  // against it cell by cell (same seeds => same counts).
  const std::string diag_path = bench::flag_string(argc, argv, "--diag");
  if (!diag_path.empty()) {
    obs::Registry reg;
    reg.add(reg.counter("capture.count"), captures);
    reg.add(reg.counter("capture.skipped"), skipped_captures);
    reg.add(reg.counter("classify.windows"), sign_total);
    reg.add(reg.counter("classify.sign_correct"), sign_correct);
    obs::write_json_file(obs::make_report(reg, nullptr, &cm), diag_path);
    std::printf("wrote %s\n", diag_path.c_str());
  }
  return 0;
}
