// Paper-scale lattice-plane regression harness: the blocked/sparse/batched
// DBDD matrix fast paths, the maintained-GSO BKZ, the BKZ-simulator bikz
// estimator and the WorkerPool hint sweeps, each timed against its
// pre-optimization reference with identity gates.
//
// Modes:
//   * default: one full run with human-readable output;
//   * --json [--smoke]: emit BENCH_lattice.json and exit nonzero if an
//     identity gate fails (always) or a speedup gate fails (full runs
//     only; --smoke shrinks the instances below the regime where the
//     asymptotic wins show). The parallel-sweep speedup gate additionally
//     arms only on machines with >= 4 hardware workers — worker-count
//     INVARIANCE is gated everywhere, wall-clock scaling only where there
//     are cores to scale onto.
//
// Paper anchor (RevEAL section V): n = m = 1024, q = 132120577,
// sigma = 3.2 — the full-attack (Table III) and sign-only (Table IV)
// bikz-vs-hints curves. The paper_curves leg reproduces both end-to-end
// through the simulator fast path and records the wall clock.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <numbers>
#include <random>
#include <string>
#include <vector>

#include "core/hint_sweep.hpp"
#include "core/parallel.hpp"
#include "lattice/bkz_sim.hpp"
#include "lattice/lattice.hpp"
#include "lwe/dbdd.hpp"
#include "lwe/dbdd_matrix.hpp"
#include "numeric/rng.hpp"

using namespace reveal;

namespace {

// Speedup floors, enforced in full (non-smoke) json runs.
constexpr double kMixedIntegrationGate = 5.0;   // blocked/batched vs dense ref
constexpr double kSparseIntegrationGate = 20.0; // coordinate fast path
constexpr double kBkzGsoGate = 1.5;             // maintained-GSO BKZ
constexpr double kSimGate = 5.0;                // bisection sim vs linear scan
constexpr double kSweepGate = 3.0;              // WorkerPool sweep (>=4 cores)
constexpr std::size_t kSweepGateMinWorkers = 4;
constexpr double kCurveWallBudgetMs = 600000.0; // "minutes, not hours"
constexpr double kRelTol = 1e-9;

struct Timer {
  std::chrono::steady_clock::time_point t0 = std::chrono::steady_clock::now();
  [[nodiscard]] double ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
  }
};

bool close_rel(double a, double b, double tol = kRelTol) {
  return std::fabs(a - b) <= tol * std::max({1.0, std::fabs(a), std::fabs(b)});
}

/// Best-of-`passes` wall time of f() in milliseconds (first call doubles as
/// warmup for the cheap, cold-start-sensitive legs).
template <typename F>
double time_best_ms(F&& f, int passes) {
  double best = std::numeric_limits<double>::infinity();
  for (int p = 0; p < passes; ++p) {
    Timer t;
    f();
    best = std::min(best, t.ms());
  }
  return best;
}

/// The paper's LWE instance (n = m = 1024) scaled down by `shrink`.
lwe::DbddParams paper_params(std::size_t shrink = 1) {
  lwe::DbddParams p;
  p.secret_dim = 1024 / shrink;
  p.error_dim = 1024 / shrink;
  p.q = 132120577.0;
  p.secret_variance = 3.2 * 3.2;
  p.error_variance = 3.2 * 3.2;
  return p;
}

/// Mixed hint stream: `coord` coordinate hints interleaved with `dense`
/// unit-norm dense directions, fixed seed.
struct MixedStream {
  std::vector<std::size_t> coords;
  std::vector<std::vector<double>> dirs;
};

MixedStream make_mixed_stream(std::size_t ambient, std::size_t coord,
                              std::size_t dense, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> gauss;
  MixedStream s;
  s.coords.reserve(coord);
  for (std::size_t i = 0; i < coord; ++i)
    s.coords.push_back(rng() % ambient);
  s.dirs.reserve(dense);
  for (std::size_t i = 0; i < dense; ++i) {
    std::vector<double> v(ambient);
    double nsq = 0.0;
    for (double& x : v) {
      x = gauss(rng);
      nsq += x * x;
    }
    const double inv = 1.0 / std::sqrt(nsq);
    for (double& x : v) x *= inv;
    s.dirs.push_back(std::move(v));
  }
  return s;
}

/// Near-diagonal dense-noise basis (the DBDD-embedding shape).
lattice::Basis make_basis(std::size_t n, std::uint64_t seed) {
  num::Xoshiro256StarStar rng(seed);
  lattice::Basis basis(n, std::vector<std::int64_t>(n, 0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) basis[i][j] = rng.uniform_int(-50, 50);
    basis[i][i] += 150;
  }
  return basis;
}

int run_json_harness(bool smoke) {
  const char* out_path = "BENCH_lattice.json";

  // Process warmup: touch every code path once at toy size so the first
  // timed leg does not absorb cold-start costs (page faults, frequency
  // ramp, lazy dynamic linking).
  {
    lwe::DbddParams w = paper_params(16);
    lwe::DbddMatrixEstimator wf(w);
    lwe::DbddMatrixEstimatorReference wr(w);
    const MixedStream ws = make_mixed_stream(w.secret_dim + w.error_dim, 8, 4, 1);
    (void)wf.integrate_perfect_coordinate_hints(ws.coords);
    (void)wf.integrate_perfect_hints(ws.dirs);
    (void)wr.integrate_perfect_coordinate_hints(ws.coords);
    for (const auto& v : ws.dirs) (void)wr.integrate_perfect_hint(v);
    lattice::Basis wb = make_basis(12, 3);
    lattice::BkzParams wp;
    wp.block_size = 6;
    (void)lattice::bkz_reduce(wb, wp);
    wb = make_basis(12, 3);
    (void)lattice::bkz_reduce_reference(wb, wp);
  }

  // ---- leg 1: mixed coordinate+dense hint integration ------------------
  const std::size_t shrink = smoke ? 4 : 1;  // ambient 512 smoke / 2048 full
  const lwe::DbddParams big = paper_params(shrink);
  const std::size_t ambient = big.secret_dim + big.error_dim;
  // The paper's hint stream is per-coefficient (coordinate) hints almost
  // everywhere, with occasional combined directions — keep the mix ~90/10.
  const std::size_t n_coord = smoke ? 56 : 232;
  const std::size_t n_dense = smoke ? 8 : 24;
  const MixedStream mixed = make_mixed_stream(ambient, n_coord, n_dense, 42);

  // Session shape: the per-coefficient hints land in capture-sized runs,
  // the combined (dense-direction) hints are integrated as one batch at
  // the end — identical order on both estimators.
  const int integ_passes = smoke ? 3 : 2;
  const std::size_t coord_chunk = n_coord / 4;

  double mixed_beta_fast = 0.0, mixed_logvol_fast = 0.0;
  std::size_t mixed_dim_fast = 0;
  const double mixed_fast_ms = time_best_ms(
      [&] {
        lwe::DbddMatrixEstimator est(big);
        for (std::size_t ci = 0; ci < n_coord; ci += coord_chunk) {
          std::vector<std::size_t> coords(
              mixed.coords.begin() + static_cast<std::ptrdiff_t>(ci),
              mixed.coords.begin() +
                  static_cast<std::ptrdiff_t>(ci + coord_chunk));
          (void)est.integrate_perfect_coordinate_hints(coords);
        }
        (void)est.integrate_perfect_hints(mixed.dirs);
        mixed_beta_fast = est.estimate().beta;
        mixed_logvol_fast = est.logvol();
        mixed_dim_fast = est.dim();
      },
      integ_passes);

  double mixed_beta_ref = 0.0, mixed_logvol_ref = 0.0;
  std::size_t mixed_dim_ref = 0;
  const double mixed_ref_ms = time_best_ms(
      [&] {
        lwe::DbddMatrixEstimatorReference est(big);
        for (std::size_t ci = 0; ci < n_coord; ci += coord_chunk) {
          std::vector<std::size_t> coords(
              mixed.coords.begin() + static_cast<std::ptrdiff_t>(ci),
              mixed.coords.begin() +
                  static_cast<std::ptrdiff_t>(ci + coord_chunk));
          (void)est.integrate_perfect_coordinate_hints(coords);
        }
        for (const auto& v : mixed.dirs) (void)est.integrate_perfect_hint(v);
        mixed_beta_ref = est.estimate().beta;
        mixed_logvol_ref = est.logvol();
        mixed_dim_ref = est.dim();
      },
      integ_passes);

  const double mixed_speedup =
      mixed_fast_ms > 0.0 ? mixed_ref_ms / mixed_fast_ms : 0.0;
  const bool mixed_identical = close_rel(mixed_logvol_fast, mixed_logvol_ref) &&
                               close_rel(mixed_beta_fast, mixed_beta_ref) &&
                               mixed_dim_fast == mixed_dim_ref;

  // ---- leg 2: coordinate-only fast path (bit-exact) --------------------
  const std::size_t n_sparse = smoke ? 256 : 900;
  std::vector<std::size_t> sparse_coords;
  {
    std::mt19937_64 rng(7);
    for (std::size_t i = 0; i < n_sparse; ++i)
      sparse_coords.push_back(rng() % ambient);
  }
  double sparse_beta_fast = 0.0, sparse_logvol_fast = 0.0;
  std::size_t sparse_rejects_fast = 0;
  const double sparse_fast_ms = time_best_ms(
      [&] {
        lwe::DbddMatrixEstimator est(big);
        (void)est.integrate_perfect_coordinate_hints(sparse_coords);
        sparse_beta_fast = est.estimate().beta;
        sparse_logvol_fast = est.logvol();
        sparse_rejects_fast = est.rejected_hints();
      },
      integ_passes);

  double sparse_beta_ref = 0.0, sparse_logvol_ref = 0.0;
  std::size_t sparse_rejects_ref = 0;
  const double sparse_ref_ms = time_best_ms(
      [&] {
        lwe::DbddMatrixEstimatorReference est(big);
        (void)est.integrate_perfect_coordinate_hints(sparse_coords);
        sparse_beta_ref = est.estimate().beta;
        sparse_logvol_ref = est.logvol();
        sparse_rejects_ref = est.rejected_hints();
      },
      smoke ? 3 : 1);

  const double sparse_speedup =
      sparse_fast_ms > 0.0 ? sparse_ref_ms / sparse_fast_ms : 0.0;
  // Coordinate-only sequences are BIT-identical between the classes.
  const bool sparse_identical = sparse_logvol_fast == sparse_logvol_ref &&
                                sparse_beta_fast == sparse_beta_ref &&
                                sparse_rejects_fast == sparse_rejects_ref;

  // ---- leg 3: maintained-GSO BKZ vs per-position recompute -------------
  const std::size_t bkz_n = smoke ? 18 : 34;
  lattice::BkzParams bkz_params;
  bkz_params.block_size = smoke ? 8 : 12;
  bkz_params.max_tours = 8;
  const lattice::Basis bkz_input = make_basis(bkz_n, 11);

  lattice::Basis bkz_fast_basis;
  std::size_t bkz_fast_ins = 0;
  const double bkz_fast_ms = time_best_ms(
      [&] {
        bkz_fast_basis = bkz_input;
        bkz_fast_ins = lattice::bkz_reduce(bkz_fast_basis, bkz_params);
      },
      3);

  lattice::Basis bkz_ref_basis;
  std::size_t bkz_ref_ins = 0;
  const double bkz_ref_ms = time_best_ms(
      [&] {
        bkz_ref_basis = bkz_input;
        bkz_ref_ins = lattice::bkz_reduce_reference(bkz_ref_basis, bkz_params);
      },
      3);

  const double bkz_speedup = bkz_fast_ms > 0.0 ? bkz_ref_ms / bkz_fast_ms : 0.0;
  const bool bkz_identical =
      bkz_fast_basis == bkz_ref_basis && bkz_fast_ins == bkz_ref_ins;

  // ---- leg 4: BKZ-simulator bisection vs linear-scan anchor ------------
  // Overlapping-dimension anchor: moderate dim so the O(d^2)-per-tour
  // reference scan stays benchmarkable; q small enough that the intersect
  // lands mid-range.
  lwe::DbddParams sim_p;
  sim_p.secret_dim = sim_p.error_dim = smoke ? 64 : 256;
  sim_p.q = 3329.0;
  sim_p.secret_variance = sim_p.error_variance = 2.25;
  lattice::BkzSimParams sim_params;
  sim_params.max_tours = 48;
  const std::vector<double> sim_profile =
      lwe::DbddEstimator(sim_p).normalized_log_profile();

  double sim_beta_fast = 0.0;
  const double sim_fast_ms = time_best_ms(
      [&] {
        sim_beta_fast = lattice::simulated_intersect_beta(sim_profile, sim_params);
      },
      3);

  double sim_beta_ref = 0.0;
  const double sim_ref_ms = time_best_ms(
      [&] {
        sim_beta_ref =
            lattice::simulated_intersect_beta_reference(sim_profile, sim_params);
      },
      smoke ? 2 : 1);

  const double sim_speedup = sim_fast_ms > 0.0 ? sim_ref_ms / sim_fast_ms : 0.0;
  const auto prof_fast = lattice::simulate_bkz_profile(
      sim_profile, static_cast<std::size_t>(sim_beta_fast), sim_params);
  const auto prof_ref = lattice::simulate_bkz_profile_reference(
      sim_profile, static_cast<std::size_t>(sim_beta_fast), sim_params);
  const bool sim_identical =
      sim_beta_fast == sim_beta_ref && prof_fast == prof_ref;

  // ---- leg 5: WorkerPool hint sweep ------------------------------------
  core::HintSweepConfig sweep_cfg;
  sweep_cfg.params.secret_dim = sweep_cfg.params.error_dim = smoke ? 128 : 192;
  sweep_cfg.params.q = 3329.0;
  sweep_cfg.params.secret_variance = sweep_cfg.params.error_variance = 2.25;
  sweep_cfg.counts = smoke ? std::vector<std::size_t>{16, 32}
                           : std::vector<std::size_t>{24, 48, 96};
  sweep_cfg.orders = 8;
  std::vector<core::SweepHint> sweep_pool(sweep_cfg.params.error_dim);
  for (std::size_t i = 0; i < sweep_pool.size(); ++i) {
    sweep_pool[i].kind = i % 2 == 0 ? core::SweepHint::Kind::kPerfect
                                    : core::SweepHint::Kind::kApproximate;
    sweep_pool[i].variance = 0.5 + 0.05 * static_cast<double>(i % 8);
  }

  sweep_cfg.num_workers = 0;  // serial reference
  core::HintSweepResult sweep_serial;
  const double sweep_serial_ms = time_best_ms(
      [&] { sweep_serial = core::run_matrix_hint_sweep(sweep_cfg, sweep_pool); },
      2);

  const std::size_t hw_workers = core::default_num_workers();
  sweep_cfg.num_workers = hw_workers;
  core::HintSweepResult sweep_par;
  const double sweep_par_ms = time_best_ms(
      [&] { sweep_par = core::run_matrix_hint_sweep(sweep_cfg, sweep_pool); }, 2);

  bool sweep_invariant = sweep_serial.betas == sweep_par.betas;
  for (const std::size_t w : {std::size_t{1}, std::size_t{2}}) {
    sweep_cfg.num_workers = w;
    sweep_invariant = sweep_invariant &&
                      core::run_matrix_hint_sweep(sweep_cfg, sweep_pool).betas ==
                          sweep_serial.betas;
  }
  const double sweep_speedup =
      sweep_par_ms > 0.0 ? sweep_serial_ms / sweep_par_ms : 0.0;
  const bool sweep_gate_armed = !smoke && hw_workers >= kSweepGateMinWorkers;

  // ---- leg 6: paper curves (Tables III/IV shape at n = 1024) -----------
  const lwe::DbddParams paper = paper_params(smoke ? 8 : 1);
  const std::vector<std::size_t> curve_counts =
      smoke ? std::vector<std::size_t>{0, 64, 128}
            : std::vector<std::size_t>{0, 128, 256, 512, 768, 900, 1000, 1024};
  // Sign-only hints: posterior replacement by the sign-conditioned
  // half-Gaussian variance sigma^2 * (1 - 2/pi) (paper Table IV).
  const double sign_var = paper.error_variance * (1.0 - 2.0 / std::numbers::pi);

  struct CurvePoint {
    std::size_t count;
    double closed_full, sim_full, closed_sign, sim_sign;
  };
  std::vector<CurvePoint> curve;
  Timer t_curve;
  for (const std::size_t c : curve_counts) {
    lwe::DbddEstimator full_est(paper);
    full_est.integrate_perfect_error_hints(c);
    lwe::DbddEstimator sign_est(paper);
    sign_est.integrate_posterior_error_hints(sign_var, c);
    curve.push_back({c, full_est.estimate().beta,
                     full_est.estimate_simulated().beta,
                     sign_est.estimate().beta,
                     sign_est.estimate_simulated().beta});
  }
  const double curve_wall_ms = t_curve.ms();

  bool curve_sane = curve_wall_ms <= kCurveWallBudgetMs;
  for (std::size_t i = 1; i < curve.size(); ++i) {
    // More hints can only lower (or hold) the attack cost.
    curve_sane = curve_sane && curve[i].sim_full <= curve[i - 1].sim_full &&
                 curve[i].sim_sign <= curve[i - 1].sim_sign + 1e-9;
  }
  // The simulator and the GSA closed form anchor each other at zero hints.
  curve_sane =
      curve_sane && std::fabs(curve.front().sim_full - curve.front().closed_full) <= 60.0;
  // Full knowledge of every error coordinate breaks the instance outright.
  curve_sane = curve_sane && curve.back().sim_full <= 40.0;

  // ---- gates ------------------------------------------------------------
  const bool identity_ok = mixed_identical && sparse_identical &&
                           bkz_identical && sim_identical && sweep_invariant &&
                           curve_sane;
  const bool speedups_ok =
      mixed_speedup >= kMixedIntegrationGate &&
      sparse_speedup >= kSparseIntegrationGate && bkz_speedup >= kBkzGsoGate &&
      sim_speedup >= kSimGate &&
      (!sweep_gate_armed || sweep_speedup >= kSweepGate);
  const bool passed = identity_ok && (smoke || speedups_ok);

  FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path);
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"lattice\",\n  \"smoke\": %s,\n",
               smoke ? "true" : "false");
  std::fprintf(out,
               "  \"hint_integration\": {\"ambient_dim\": %zu, \"coord_hints\": %zu, "
               "\"dense_hints\": %zu, \"fast_ms\": %.2f, \"baseline_ms\": %.2f, "
               "\"speedup\": %.2f, \"identical\": %s},\n",
               ambient, n_coord, n_dense, mixed_fast_ms, mixed_ref_ms,
               mixed_speedup, mixed_identical ? "true" : "false");
  std::fprintf(out,
               "  \"hint_integration_sparse\": {\"ambient_dim\": %zu, \"hints\": %zu, "
               "\"fast_ms\": %.2f, \"baseline_ms\": %.2f, \"speedup\": %.2f, "
               "\"identical\": %s},\n",
               ambient, n_sparse, sparse_fast_ms, sparse_ref_ms, sparse_speedup,
               sparse_identical ? "true" : "false");
  std::fprintf(out,
               "  \"bkz_gso\": {\"n\": %zu, \"block\": %zu, \"insertions\": %zu, "
               "\"fast_ms\": %.2f, \"baseline_ms\": %.2f, \"speedup\": %.2f, "
               "\"identical\": %s},\n",
               bkz_n, bkz_params.block_size, bkz_fast_ins, bkz_fast_ms,
               bkz_ref_ms, bkz_speedup, bkz_identical ? "true" : "false");
  std::fprintf(out,
               "  \"bkz_sim\": {\"profile_dim\": %zu, \"beta\": %.2f, "
               "\"fast_ms\": %.2f, \"baseline_ms\": %.2f, \"speedup\": %.2f, "
               "\"identical\": %s},\n",
               sim_profile.size(), sim_beta_fast, sim_fast_ms, sim_ref_ms,
               sim_speedup, sim_identical ? "true" : "false");
  // The speedup key is only emitted when the gate is armed (>= 4 hardware
  // workers, full run): on small machines the parallel/serial ratio is
  // scheduling noise, and compare_bench.py must not treat it as a gated
  // leg. Worker-count invariance is enforced by this binary's exit code.
  std::fprintf(out,
               "  \"hint_sweep\": {\"grid\": %zu, \"workers\": %zu, "
               "\"serial_ms\": %.2f, \"parallel_ms\": %.2f, \"%s\": %.2f, "
               "\"speedup_gated\": %s, \"identical\": %s},\n",
               sweep_serial.betas.size(), hw_workers, sweep_serial_ms,
               sweep_par_ms, sweep_gate_armed ? "speedup" : "speedup_unarmed",
               sweep_speedup, sweep_gate_armed ? "true" : "false",
               sweep_invariant ? "true" : "false");
  std::fprintf(out, "  \"paper_curves\": {\"dim\": %zu, \"wall_ms\": %.1f, "
               "\"sane\": %s, \"points\": [\n",
               lwe::DbddEstimator(paper).dim(), curve_wall_ms,
               curve_sane ? "true" : "false");
  for (std::size_t i = 0; i < curve.size(); ++i) {
    std::fprintf(out,
                 "    {\"hints\": %zu, \"closed_full\": %.2f, \"sim_full\": %.2f, "
                 "\"closed_sign\": %.2f, \"sim_sign\": %.2f}%s\n",
                 curve[i].count, curve[i].closed_full, curve[i].sim_full,
                 curve[i].closed_sign, curve[i].sim_sign,
                 i + 1 < curve.size() ? "," : "");
  }
  std::fprintf(out, "  ]},\n");
  std::fprintf(out,
               "  \"gates\": {\"mixed_speedup_min\": %.1f, "
               "\"sparse_speedup_min\": %.1f, \"bkz_gso_speedup_min\": %.1f, "
               "\"sim_speedup_min\": %.1f, \"sweep_speedup_min\": %.1f, "
               "\"sweep_gate_armed\": %s, \"enforced\": %s},\n",
               kMixedIntegrationGate, kSparseIntegrationGate, kBkzGsoGate,
               kSimGate, kSweepGate, sweep_gate_armed ? "true" : "false",
               smoke ? "false" : "true");
  std::fprintf(out, "  \"passed\": %s\n}\n", passed ? "true" : "false");
  std::fclose(out);

  std::printf("hint integration (d=%zu, %zu coord + %zu dense): fast %.1f ms  "
              "baseline %.1f ms  speedup %.2fx  identical %d\n",
              ambient, n_coord, n_dense, mixed_fast_ms, mixed_ref_ms,
              mixed_speedup, mixed_identical);
  std::printf("sparse integration (%zu coords): fast %.1f ms  baseline %.1f ms  "
              "speedup %.2fx  bit-identical %d\n",
              n_sparse, sparse_fast_ms, sparse_ref_ms, sparse_speedup,
              sparse_identical);
  std::printf("bkz (n=%zu, b=%zu): fast %.1f ms  baseline %.1f ms  speedup "
              "%.2fx  identical %d\n",
              bkz_n, bkz_params.block_size, bkz_fast_ms, bkz_ref_ms,
              bkz_speedup, bkz_identical);
  std::printf("bkz sim (d=%zu): beta %.0f  fast %.1f ms  baseline %.1f ms  "
              "speedup %.2fx  identical %d\n",
              sim_profile.size(), sim_beta_fast, sim_fast_ms, sim_ref_ms,
              sim_speedup, sim_identical);
  std::printf("hint sweep (%zu tasks, %zu workers): serial %.1f ms  parallel "
              "%.1f ms  speedup %.2fx  invariant %d (gate %s)\n",
              sweep_serial.betas.size(), hw_workers, sweep_serial_ms,
              sweep_par_ms, sweep_speedup, sweep_invariant,
              sweep_gate_armed ? "armed" : "off");
  std::printf("paper curves (dim %zu, %zu points x 2 adversaries): %.1f ms, "
              "sane %d\n",
              lwe::DbddEstimator(paper).dim(), curve.size(), curve_wall_ms,
              curve_sane);
  for (const CurvePoint& pt : curve) {
    std::printf("  hints %4zu: full closed %7.2f sim %7.2f | sign closed "
                "%7.2f sim %7.2f\n",
                pt.count, pt.closed_full, pt.sim_full, pt.closed_sign,
                pt.sim_sign);
  }

  if (!passed) {
    std::fprintf(stderr,
                 "bench_lattice: gate FAILED (identity %s, speedups %s)\n",
                 identity_ok ? "ok" : "violated",
                 speedups_ok ? "ok" : "below threshold");
    return 1;
  }
  std::printf("bench_lattice: all gates passed\n");
  return 0;
}

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) return true;
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  // --json is the only mode; without it, run the full harness anyway so a
  // bare invocation is still useful.
  const bool smoke = has_flag(argc, argv, "--smoke");
  (void)has_flag(argc, argv, "--json");
  return run_json_harness(smoke);
}
