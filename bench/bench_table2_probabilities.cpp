// Table II reproduction: guessing probabilities derived from selected
// measurements — one randomly chosen measurement per true value in
// {-2..2}, showing its posterior over the candidate values plus the
// centered mean and variance (the inputs to the LWE-with-hints framework).

#include <cstdio>

#include "bench_common.hpp"
#include "core/attack.hpp"
#include "numeric/rng.hpp"

using namespace reveal;
using namespace reveal::core;

namespace {

/// Posterior mass a guess assigns to value `v` (0 if outside support).
double mass_at(const CoefficientGuess& g, std::int32_t v) {
  for (std::size_t k = 0; k < g.support.size(); ++k) {
    if (g.support[k] == v) return g.posterior[k];
  }
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool lab = !bench::has_flag(argc, argv, "--default-noise");
  bench::print_header(
      "Table II",
      "Guessing probabilities of selected measurements for secrets -2..2.\n"
      "Lab-grade acquisition by default (the paper's posteriors round to\n"
      "0/1 in floating point); pass --default-noise for the Table-I setup.");

  CampaignConfig cfg = lab ? bench::lab_campaign(64) : bench::default_campaign(64);
  SamplerCampaign campaign(cfg);
  RevealAttack attack;
  std::printf("\nprofiling...\n");
  attack.train(campaign.collect_windows(150, /*seed_base=*/1));

  // Select one measurement per secret value in -2..2 "uniformly at random".
  num::Xoshiro256StarStar pick(42);
  std::printf("\n%6s |%10s%10s%10s%10s%10s |%10s%12s\n", "secret", "-2", "-1", "0", "1",
              "2", "centered", "variance");
  for (const std::int32_t secret : {0, 1, -1, 2, -2}) {
    // Scan captures until we find windows with this true value; choose one
    // at random among the first few.
    std::vector<CoefficientGuess> matches;
    for (std::uint64_t seed = 7000; seed < 7040 && matches.size() < 8; ++seed) {
      const FullCapture cap = campaign.capture(seed);
      if (cap.segments.size() != cfg.n) continue;
      const auto guesses = attack.attack_capture(cap);
      for (std::size_t i = 0; i < guesses.size(); ++i) {
        if (cap.noise[i] == secret) matches.push_back(guesses[i]);
      }
    }
    if (matches.empty()) {
      std::printf("%6d | (no measurement found)\n", secret);
      continue;
    }
    const auto& g = matches[pick.uniform_below(matches.size())];
    std::printf("%6d |", secret);
    for (const std::int32_t col : {-2, -1, 0, 1, 2}) {
      const double p = mass_at(g, col);
      if (p > 0.9999) std::printf("%10s", "~1");
      else if (p < 1e-4) std::printf("%10s", "0");
      else std::printf("%10.4f", p);
    }
    std::printf(" |%10.3f%12.3e\n", g.posterior_mean(), g.posterior_variance());
  }

  std::printf(
      "\npaper Table II: the diagonal probabilities are ~1 and the variances\n"
      "are ~0 (floating-point rounding) -> those measurements enter the DBDD\n"
      "framework as PERFECT hints; lower-confidence ones as approximate hints.\n");
  return 0;
}
