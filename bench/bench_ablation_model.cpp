// Ablation: robustness of the paper's conclusions to the power-model
// parameters. The hardware substitution (DESIGN.md) makes the leakage
// weights knobs; this bench sweeps the ones that could plausibly change the
// story and verifies the *shape* results survive:
//   - sign recovery ~100% across every setting (control flow dominates),
//   - negatives recovered better than positives wherever values leak,
//   - weaker data weights degrade values but never the branch leak.

#include <cstdio>

#include "bench_common.hpp"
#include "core/attack.hpp"
#include "sca/report.hpp"

using namespace reveal;
using namespace reveal::core;

namespace {

struct Row {
  const char* name;
  double w_hw;
  double w_mem;
  double bit_deviation;
};

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::has_flag(argc, argv, "--quick");
  bench::print_header(
      "Ablation: leakage-model parameters",
      "Attack-quality shape vs the power-model knobs (the hardware\n"
      "substitution's free parameters).");

  const Row rows[] = {
      {"default (w_hw .15, w_mem .25, dev .08)", 0.15, 0.25, 0.08},
      {"half data weights", 0.075, 0.125, 0.08},
      {"double data weights", 0.30, 0.50, 0.08},
      {"no per-bit spread (pure HW)", 0.15, 0.25, 0.0},
      {"strong per-bit spread", 0.15, 0.25, 0.25},
      {"memory bus only (w_hw = 0)", 0.0, 0.25, 0.08},
  };

  const std::size_t profile_runs = quick ? 80 : 200;
  const std::size_t attack_runs = quick ? 10 : 25;

  std::printf("\n%-42s %9s %9s %9s %9s\n", "model", "sign %", "zero %", "neg %",
              "pos %");
  for (const Row& row : rows) {
    CampaignConfig cfg = bench::default_campaign(64);
    cfg.leakage.w_hw = row.w_hw;
    cfg.leakage.w_mem = row.w_mem;
    cfg.leakage.bit_deviation = row.bit_deviation;
    SamplerCampaign campaign(cfg);
    RevealAttack attack;
    attack.train(campaign.collect_windows(profile_runs, /*seed_base=*/1));

    sca::ConfusionMatrix cm;
    std::size_t sign_ok = 0, total = 0;
    for (std::uint64_t seed = 50000; seed < 50000 + attack_runs; ++seed) {
      const FullCapture cap = campaign.capture(seed);
      if (cap.segments.size() != cfg.n) continue;
      const auto guesses = attack.attack_capture(cap);
      for (std::size_t i = 0; i < guesses.size(); ++i) {
        cm.add(static_cast<std::int32_t>(cap.noise[i]), guesses[i].value);
        const int truth = cap.noise[i] > 0 ? 1 : (cap.noise[i] < 0 ? -1 : 0);
        sign_ok += (guesses[i].sign == truth);
        ++total;
      }
    }
    double neg = 0.0, pos = 0.0;
    for (int v = 1; v <= 6; ++v) {
      neg += cm.accuracy(-v) / 6.0;
      pos += cm.accuracy(v) / 6.0;
    }
    std::printf("%-42s %9.1f %9.1f %9.1f %9.1f\n", row.name,
                100.0 * static_cast<double>(sign_ok) / static_cast<double>(total),
                cm.accuracy(0), neg, pos);
  }

  std::printf(
      "\nexpected shape (and the paper's conclusions) under every model:\n"
      "  sign/zero ~100%% (control-flow leak needs no data model at all);\n"
      "  negatives >= positives (the negation/store chain offers more\n"
      "  leakage points); value accuracy scales with the data weights and\n"
      "  the per-bit spread, exactly as a physical target's SNR would.\n");
  return 0;
}
