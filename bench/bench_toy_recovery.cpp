// "Explore the remaining search space" at laptop scale: a REAL lattice
// attack (LLL/BKZ, Kannan embedding) on scaled-down LWE instances, with and
// without side-channel hints — demonstrating, not merely estimating, that
// hints make the instance practically solvable.

#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "lwe/dbdd.hpp"
#include "lwe/lwe.hpp"
#include "numeric/rng.hpp"

using namespace reveal;
using namespace reveal::lwe;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::has_flag(argc, argv, "--quick");
  bench::print_header(
      "Toy-scale real recovery (BKZ + hints)",
      "Primal attack with our own LLL/BKZ on small LWE instances; perfect\n"
      "hints turn the lattice problem into linear algebra (paper §III-D).");

  num::Xoshiro256StarStar rng(20220314);

  // --- 1: primal uSVP attack without hints (BKZ does the work) -----------
  std::printf("\n[1] primal attack without hints (Kannan embedding + BKZ):\n");
  std::printf("%6s %6s %8s %10s %12s %10s\n", "n", "m", "beta", "success", "time (s)",
              "est.bikz");
  const std::size_t sizes[] = {6, 8, 10, 12};
  for (const std::size_t n : sizes) {
    if (quick && n > 10) break;
    LweParams params;
    params.n = n;
    params.m = 2 * n;
    params.q = 1009;
    params.sigma = 1.5;
    std::size_t solved = 0;
    const std::size_t trials = 3;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t t = 0; t < trials; ++t) {
      const SampledLwe s = sample_lwe(params, rng);
      const auto recovered = primal_attack(s.instance, /*block_size=*/12, /*max_tours=*/12);
      if (recovered.has_value() && *recovered == s.secret) ++solved;
    }
    DbddParams est;
    est.secret_dim = n;
    est.error_dim = params.m;
    est.q = static_cast<double>(params.q);
    est.secret_variance = 2.0 / 3.0;
    est.error_variance = params.sigma * params.sigma;
    std::printf("%6zu %6zu %8d %9zu/%zu %12.2f %10.1f\n", n, params.m, 12, solved,
                trials, seconds_since(t0), estimate_lwe_security(est).beta);
  }

  // --- 2: with perfect hints the instance collapses to linear algebra ----
  std::printf("\n[2] with perfect hints on every error coordinate (the full\n"
              "    RevEAL measurement), recovery is Gaussian elimination:\n");
  std::printf("%6s %6s %10s %12s\n", "n", "m", "success", "time (ms)");
  for (const std::size_t n : {16, 32, 64, 128}) {
    LweParams params;
    params.n = n;
    params.m = 2 * n;
    params.q = 132120577ULL;  // the paper's modulus
    params.sigma = 3.19;
    const SampledLwe s = sample_lwe(params, rng);
    std::vector<std::optional<std::int64_t>> hints(params.m);
    for (std::size_t i = 0; i < params.m; ++i) hints[i] = s.error[i];
    const auto t0 = std::chrono::steady_clock::now();
    const auto recovered = solve_with_perfect_hints(s.instance, hints);
    const double ms = seconds_since(t0) * 1e3;
    const bool ok = recovered.has_value() && *recovered == s.secret;
    std::printf("%6zu %6zu %10s %12.2f\n", n, params.m, ok ? "yes" : "NO", ms);
  }

  // --- 3: partial hints shrink the measured BKZ effort -------------------
  std::printf("\n[3] partial hints shrink the lattice attack (n = 10, m = 20):\n");
  std::printf("%14s %10s %12s\n", "hinted coords", "success", "time (s)");
  for (const std::size_t hinted : {0ULL, 5ULL, 10ULL, 15ULL}) {
    LweParams params;
    params.n = 10;
    params.m = 20;
    params.q = 1009;
    params.sigma = 1.5;
    const SampledLwe s = sample_lwe(params, rng);
    // Substitute the hinted samples' errors away, keep the rest for BKZ.
    LweInstance reduced = s.instance;
    for (std::size_t i = 0; i < hinted; ++i) {
      const std::int64_t fixed =
          static_cast<std::int64_t>(reduced.b[i]) - s.error[i];
      reduced.b[i] = static_cast<std::uint64_t>(
          ((fixed % static_cast<std::int64_t>(reduced.q)) +
           static_cast<std::int64_t>(reduced.q)) %
          static_cast<std::int64_t>(reduced.q));
    }
    const auto t0 = std::chrono::steady_clock::now();
    // Hinted coordinates now have zero error: the planted vector is shorter
    // and BKZ finds it faster / with smaller blocks.
    const auto recovered = primal_attack(reduced, /*block_size=*/10, /*max_tours=*/10);
    const bool ok = recovered.has_value() && *recovered == s.secret;
    std::printf("%14zu %10s %12.2f\n", hinted, ok ? "yes" : "NO", seconds_since(t0));
  }

  std::printf("\nreading: hints monotonically cheapen the lattice step, and full\n"
              "hints reduce it to exact linear algebra — the laptop-scale analogue\n"
              "of Table III's 382.25 -> 12.2 bikz collapse.\n");
  (void)argc;
  (void)argv;
  return 0;
}
