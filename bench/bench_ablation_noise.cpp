// Ablation (paper §V-B): attack quality vs. measurement noise.
//
// "Since the noise of the platform increases with the operating frequency
// of the device, we set the operating frequency to a constant 1.5 MHz.
// Attacking devices with higher clock frequency may require more advanced
// measurement equipment." — we sweep the scope-noise sigma and report how
// each stage of the attack degrades.

#include <cstdio>

#include "bench_common.hpp"
#include "core/attack.hpp"
#include "core/hints.hpp"
#include "lwe/dbdd.hpp"

using namespace reveal;
using namespace reveal::core;

int main(int argc, char** argv) {
  const bool quick = bench::has_flag(argc, argv, "--quick");
  bench::print_header(
      "Ablation: measurement noise",
      "Sign accuracy, value accuracy and hinted bikz vs. noise sigma\n"
      "(proxy for the operating-frequency discussion of paper §V-B).");

  lwe::DbddParams params;
  params.secret_dim = 1024;
  params.error_dim = 1024;
  params.q = 132120577.0;
  params.secret_variance = 3.2 * 3.2;
  params.error_variance = 3.2 * 3.2;
  const double baseline = lwe::estimate_lwe_security(params).beta;

  std::printf("\n%10s %12s %12s %14s   (no-hint baseline: %.1f bikz)\n", "sigma",
              "sign acc %", "value acc %", "hinted bikz", baseline);

  const double sigmas[] = {0.02, 0.08, 0.15, 0.30, 0.60};
  const std::size_t profile_runs = quick ? 60 : 250;
  const std::size_t attack_runs = quick ? 8 : 16;
  for (const double sigma : sigmas) {
    CampaignConfig cfg = bench::default_campaign(64);
    cfg.leakage.noise_sigma = sigma;
    SamplerCampaign campaign(cfg);
    RevealAttack attack;
    attack.train(campaign.collect_windows(profile_runs, /*seed_base=*/1));

    std::size_t sign_ok = 0, value_ok = 0, total = 0;
    std::vector<CoefficientGuess> guesses;
    for (std::uint64_t seed = 80000; seed < 80000 + attack_runs; ++seed) {
      const FullCapture cap = campaign.capture(seed);
      if (cap.segments.size() != cfg.n) continue;
      const auto batch = attack.attack_capture(cap);
      for (std::size_t i = 0; i < batch.size(); ++i) {
        const int truth = cap.noise[i] > 0 ? 1 : (cap.noise[i] < 0 ? -1 : 0);
        sign_ok += (batch[i].sign == truth);
        value_ok += (batch[i].value == cap.noise[i]);
        ++total;
        if (guesses.size() < 1024) guesses.push_back(batch[i]);
      }
    }
    while (guesses.size() < 1024) guesses.push_back(guesses[guesses.size() % total]);

    lwe::DbddEstimator est(params);
    integrate_guess_hints(est, guesses, 1e-6);
    const double hinted = est.estimate().beta;

    std::printf("%10.2f %12.1f %12.1f %14.1f\n", sigma,
                100.0 * static_cast<double>(sign_ok) / static_cast<double>(total),
                100.0 * static_cast<double>(value_ok) / static_cast<double>(total),
                hinted);
  }
  std::printf("\nexpected shape: accuracy and hint strength degrade monotonically\n"
              "with noise; the sign (control-flow) leak survives far more noise\n"
              "than the value (data-flow) leak.\n");
  return 0;
}
