// Parallel campaign-engine scaling (infrastructure bench): throughput of
// the full recovery campaign (capture -> robust segmentation -> sign/value
// classification -> hint routing) at increasing worker counts, with the
// byte-identity guarantee re-checked at every point.
//
// Speedup is bounded by the physical cores of the measurement host — the
// engine guarantees identical *results* at any worker count, while the
// *throughput* column is hardware-dependent. The JSON therefore records
// hardware_concurrency next to the timings; on a single-core runner every
// speedup is ~1.0 by construction and the bench only proves determinism
// plus the absence of slowdown-by-contention.
//
// Emits BENCH_parallel_scaling.json.

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/attack.hpp"
#include "core/campaign_runner.hpp"
#include "core/hints.hpp"
#include "core/parallel.hpp"
#include "lwe/dbdd.hpp"

using namespace reveal;
using namespace reveal::core;

namespace {

bool reports_identical(const sca::RecoveryReport& a, const sca::RecoveryReport& b) {
  return a.expected_windows == b.expected_windows &&
         a.recovered_windows == b.recovered_windows &&
         a.segmentation_status == b.segmentation_status &&
         a.segmentation_attempts == b.segmentation_attempts &&
         a.burst_consistency == b.burst_consistency &&  // bit-equal, not approx
         a.ok_guesses == b.ok_guesses &&
         a.low_confidence_guesses == b.low_confidence_guesses &&
         a.abstained_guesses == b.abstained_guesses &&
         a.perfect_hints == b.perfect_hints &&
         a.approximate_hints == b.approximate_hints &&
         a.sign_only_hints == b.sign_only_hints &&
         a.dropped_hints == b.dropped_hints && a.bikz == b.bikz && a.bits == b.bits;
}

struct Point {
  std::size_t workers = 0;
  double seconds = 0.0;
  double traces_per_sec = 0.0;
  double speedup = 1.0;
  bool matches_serial = false;
};

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::has_flag(argc, argv, "--full");
  const std::size_t profiling_runs = static_cast<std::size_t>(
      bench::flag_value(argc, argv, "--profiling", full ? 400 : 200));
  const std::size_t captures = static_cast<std::size_t>(
      bench::flag_value(argc, argv, "--captures", full ? 32 : 12));

  bench::print_header(
      "Parallel campaign scaling (infrastructure)",
      "Recovery-campaign throughput vs worker count; results byte-identical.");
  std::printf("\nhardware_concurrency: %u, campaign: %zu captures\n",
              std::thread::hardware_concurrency(), captures);

  CampaignConfig cfg = bench::default_campaign(64);
  cfg.num_workers = 0;  // profiling below times the serial reference too
  AttackConfig acfg;
  acfg.abstain_margin = 0.30;
  acfg.low_confidence_margin = 0.45;
  acfg.value_commit_threshold = 0.05;
  acfg.sign_fit_threshold = 2.5;
  acfg.value_fit_threshold = 4.0;
  RevealAttack attack(acfg);
  {
    SamplerCampaign profiler(cfg);
    std::printf("training on %zu clean profiling runs...\n", profiling_runs);
    attack.train(profiler.collect_windows(profiling_runs, /*seed_base=*/1));
  }

  lwe::DbddParams params;
  params.secret_dim = 1024;
  params.error_dim = 1024;
  params.q = 132120577.0;
  params.secret_variance = 3.2 * 3.2;
  params.error_variance = 3.2 * 3.2;
  const HintPolicy policy;
  const std::vector<std::uint64_t> seeds = CampaignRunner::stream_seeds(90000, captures);

  const std::vector<std::size_t> worker_counts = {0, 1, 2, 4, 8};
  std::vector<Point> points;
  RecoveryCampaignResult serial_result;
  double serial_seconds = 0.0;

  for (const std::size_t workers : worker_counts) {
    CampaignRunner runner(workers);
    const auto t0 = std::chrono::steady_clock::now();
    const RecoveryCampaignResult result =
        runner.run_recovery_campaign(attack, cfg, seeds, policy, params);
    const auto t1 = std::chrono::steady_clock::now();

    Point p;
    p.workers = workers;
    p.seconds = std::chrono::duration<double>(t1 - t0).count();
    p.traces_per_sec = static_cast<double>(captures) / p.seconds;
    if (workers == 0) {
      serial_result = result;
      serial_seconds = p.seconds;
      p.matches_serial = true;
    } else {
      p.matches_serial = reports_identical(result.report, serial_result.report) &&
                         result.hints == serial_result.hints;
    }
    p.speedup = serial_seconds / p.seconds;
    points.push_back(p);
    std::printf("  workers %zu%s: %7.3f s  %6.1f traces/s  speedup %4.2fx  %s\n",
                workers, workers == 0 ? " (serial)" : "        ", p.seconds,
                p.traces_per_sec, p.speedup,
                p.matches_serial ? "results identical" : "RESULTS DIVERGE");
  }

  bool all_match = true;
  for (const Point& p : points) all_match = all_match && p.matches_serial;
  std::printf("\nbyte-identical across all worker counts: %s\n",
              all_match ? "PASS" : "FAIL");
  bench::print_note(
      "speedup is bounded by physical cores; see hardware_concurrency in the JSON.");

  const char* out_path = "BENCH_parallel_scaling.json";
  std::FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path);
    return 1;
  }
  std::fprintf(out,
               "{\n  \"hardware_concurrency\": %u,\n  \"captures\": %zu,\n"
               "  \"serial_seconds\": %.6f,\n  \"points\": [\n",
               std::thread::hardware_concurrency(), captures, serial_seconds);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    std::fprintf(out,
                 "    {\"workers\": %zu, \"seconds\": %.6f, \"traces_per_sec\": %.3f, "
                 "\"speedup\": %.4f, \"matches_serial\": %s}%s\n",
                 p.workers, p.seconds, p.traces_per_sec, p.speedup,
                 p.matches_serial ? "true" : "false", i + 1 < points.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"byte_identical\": %s\n}\n", all_match ? "true" : "false");
  std::fclose(out);
  std::printf("wrote %s\n", out_path);

  return all_match ? 0 : 1;
}
