// Related-work contrast (paper §I): prior single-trace sampler attacks
// target CDT-based Gaussian samplers (Kim et al. [10], Zhang et al. [12])
// and "are not directly applicable on SEAL". This bench runs a CDT sampler
// on the same simulated target and reproduces that literature's result: the
// early-exit table scan leaks every coefficient through pure TIMING, and
// the constant-time scan closes exactly that channel.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/victim.hpp"
#include "power/trace_recorder.hpp"
#include "sca/segmentation.hpp"

using namespace reveal;
using namespace reveal::core;

namespace {

struct TimingOutcome {
  double value_accuracy = 0.0;   ///< coefficients recovered by timing alone
  double duration_spread = 0.0;  ///< max-min window duration (samples)
};

/// Per-coefficient windows for the CDT firmware are delimited by the store
/// bursts of the sign assignment; simpler and equally faithful: use the
/// firmware's deterministic structure — each coefficient starts at the
/// PRNG xorshift triple. We recover per-coefficient *durations* directly
/// from the cycle counts between stores by instrumenting with a pc watch.
TimingOutcome timing_attack(bool constant_time, std::size_t runs) {
  const std::size_t n = 64;
  const VictimProgram prog = build_cdt_firmware(n, {132120577ULL}, constant_time);
  riscv::Machine machine(prog.memory_bytes);
  power::LeakageParams leakage;  // defaults
  const power::LeakageModel model(leakage);

  TimingOutcome out;
  std::size_t correct = 0, total = 0;
  double min_dur = 1e18, max_dur = 0.0;
  for (std::size_t r = 0; r < runs; ++r) {
    power::TraceRecorder recorder(model, 1000 + r);
    recorder.watch_pc(prog.loop_pc, /*tag=*/0, /*increment=*/true);
    const VictimRun run =
        run_victim(prog, machine, static_cast<std::uint32_t>(0xCD7 + r * 7919), &recorder);
    const auto& markers = recorder.markers();
    if (markers.size() < n) continue;

    // Duration of coefficient i = samples between loop-head visits. The
    // leaky scan contributes ~16 cycles per table index, so duration maps
    // affinely to (value + 41); calibrate the affine map per variant from
    // the first run (profiling on the clone).
    static thread_local double slope[2] = {0.0, 0.0};
    static thread_local double intercept[2] = {0.0, 0.0};
    const int variant = constant_time ? 1 : 0;
    std::vector<double> durations(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double next = i + 1 < markers.size()
                              ? static_cast<double>(markers[i + 1].sample_index)
                              : static_cast<double>(recorder.samples().size());
      durations[i] = next - static_cast<double>(markers[i].sample_index);
      min_dur = std::min(min_dur, durations[i]);
      max_dur = std::max(max_dur, durations[i]);
    }
    if (slope[variant] == 0.0) {
      // Least-squares fit duration ~ a * value + b using ground truth
      // (profiling phase on the attacker's own device).
      double sx = 0, sy = 0, sxx = 0, sxy = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const double x = static_cast<double>(run.noise[i]);
        sx += x;
        sy += durations[i];
        sxx += x * x;
        sxy += x * durations[i];
      }
      const double denom = n * sxx - sx * sx;
      slope[variant] = denom != 0.0 ? (n * sxy - sx * sy) / denom : 0.0;
      intercept[variant] = (sy - slope[variant] * sx) / n;
      continue;  // calibration run is not scored
    }
    for (std::size_t i = 0; i < n; ++i) {
      ++total;
      if (std::fabs(slope[variant]) < 1e-9) continue;  // timing carries nothing
      const double est = (durations[i] - intercept[variant]) / slope[variant];
      if (std::llround(est) == run.noise[i]) ++correct;
    }
  }
  out.value_accuracy =
      total > 0 ? 100.0 * static_cast<double>(correct) / static_cast<double>(total) : 0.0;
  out.duration_spread = max_dur - min_dur;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::has_flag(argc, argv, "--quick");
  bench::print_header(
      "Related work: CDT sampler timing leak",
      "The constructions attacked by refs [10]/[12], run on the same target:\n"
      "early-exit CDT scans leak values through pure timing.");

  const std::size_t runs = quick ? 4 : 10;
  const TimingOutcome leaky = timing_attack(false, runs);
  const TimingOutcome ct = timing_attack(true, runs);

  std::printf("\n%-38s %16s %18s\n", "sampler variant", "timing-only acc %",
              "duration spread");
  std::printf("%-38s %16.1f %18.0f\n", "CDT, early-exit scan (leaky)",
              leaky.value_accuracy, leaky.duration_spread);
  std::printf("%-38s %16.1f %18.0f\n", "CDT, constant-time scan", ct.value_accuracy,
              ct.duration_spread);

  std::printf(
      "\nreading: the leaky CDT's per-coefficient duration is an affine\n"
      "function of the sampled value — values fall out of timestamps alone,\n"
      "no power analysis needed (the [10]/[12] result). The constant-time\n"
      "scan flattens timing completely; RevEAL matters precisely because\n"
      "SEAL v3.2 does NOT use a CDT sampler, so those attacks (and their\n"
      "countermeasures) do not transfer — its clipped-normal + sign-branch\n"
      "structure leaks differently (Tables I-IV).\n");
  (void)argc;
  (void)argv;
  return 0;
}
