// Countermeasure evaluation (paper §V-A): "we encourage countermeasures
// based on shuffling". The shuffled firmware samples coefficients in a
// fresh Fisher-Yates order, so each per-window recovery stays as good as
// ever — but the adversary no longer knows WHICH coefficient a window
// belongs to. The multiset of e2 values is useless for Eq. (2)/(3) and
// for positional DBDD hints.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "core/attack.hpp"
#include "lwe/dbdd.hpp"

using namespace reveal;
using namespace reveal::core;

namespace {

/// log2 of the number of orderings consistent with a value multiset:
/// log2(n! / prod count_v!) via lgamma.
double log2_consistent_orderings(const std::vector<std::int64_t>& values) {
  auto log2_factorial = [](double x) { return std::lgamma(x + 1.0) / std::log(2.0); };
  double bits = log2_factorial(static_cast<double>(values.size()));
  std::vector<std::int64_t> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  std::size_t run = 1;
  for (std::size_t i = 1; i <= sorted.size(); ++i) {
    if (i < sorted.size() && sorted[i] == sorted[i - 1]) {
      ++run;
    } else {
      bits -= log2_factorial(static_cast<double>(run));
      run = 1;
    }
  }
  return bits;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header(
      "Countermeasure: shuffling",
      "Fisher-Yates shuffled sampling order (paper §V-A recommendation):\n"
      "per-window leakage unchanged, coefficient positions hidden.");

  constexpr std::size_t kN = 64;

  // The adversary profiles an identical, fully controlled device — they can
  // read the permutation on their OWN device, so labelled windows are
  // available and the templates are as strong as against the unshuffled
  // firmware.
  CampaignConfig cfg = bench::default_campaign(kN);
  cfg.shuffled_firmware = true;
  SamplerCampaign campaign(cfg);
  RevealAttack attack;
  std::printf("\nprofiling on the (attacker-controlled) shuffled clone...\n");
  attack.train(campaign.collect_windows(200, /*seed_base=*/1));

  // Attack fresh shuffled traces: per-window recovery is evaluated against
  // the slot ground truth the real adversary would NOT have.
  std::size_t value_ok = 0, sign_ok = 0, total = 0;
  std::vector<std::int64_t> last_noise;
  for (std::uint64_t seed = 5000; seed < 5016; ++seed) {
    const FullCapture cap = campaign.capture(seed);
    if (cap.segments.size() != kN) continue;
    const auto guesses = attack.attack_capture(cap);
    for (std::size_t s = 0; s < guesses.size(); ++s) {
      const int truth_sign = cap.noise[s] > 0 ? 1 : (cap.noise[s] < 0 ? -1 : 0);
      sign_ok += (guesses[s].sign == truth_sign);
      value_ok += (guesses[s].value == cap.noise[s]);
      ++total;
    }
    last_noise = cap.noise;
  }
  std::printf("\nper-window recovery on shuffled traces (vs slot ground truth):\n");
  std::printf("  sign : %zu/%zu (%.1f%%)   value: %zu/%zu (%.1f%%)\n", sign_ok, total,
              100.0 * static_cast<double>(sign_ok) / static_cast<double>(total), value_ok,
              total, 100.0 * static_cast<double>(value_ok) / static_cast<double>(total));

  // But the adversary does not know the slot -> coefficient map.
  const double order_bits = log2_consistent_orderings(last_noise);
  std::printf("\nassignment ambiguity of one trace's value multiset (n = %zu): "
              "2^%.1f orderings\n",
              kN, order_bits);

  lwe::DbddParams params;
  params.secret_dim = 1024;
  params.error_dim = 1024;
  params.q = 132120577.0;
  params.secret_variance = 3.2 * 3.2;
  params.error_variance = 3.2 * 3.2;
  const double baseline = lwe::estimate_lwe_security(params).beta;

  std::printf("\n%-44s %10s\n", "configuration (SEAL-128 estimator)", "bikz");
  std::printf("%-44s %10.2f\n", "no attack (baseline)", baseline);
  {
    lwe::DbddEstimator est(params);
    est.integrate_perfect_error_hints(1024);
    std::printf("%-44s %10.2f\n", "unshuffled + full positional hints",
                est.estimate().beta);
  }
  std::printf("%-44s %10.2f   (no positional hints available)\n", "shuffled sampler",
              baseline);

  std::printf(
      "\nreading: shuffling leaves the per-window leakage (and hence the\n"
      "value multiset) exposed but destroys the position information the\n"
      "attack needs; at n = 1024 the assignment ambiguity alone is\n"
      "thousands of bits. Caveats: a naive implementation still leaks the\n"
      "permutation indices over the data bus, and the multiset reduces\n"
      "entropy slightly — combine with other randomization (paper §V-A).\n");
  (void)argc;
  (void)argv;
  return 0;
}
