// Countermeasure evaluation (paper §V-A): "We do not recommend
// masking-based defenses as they are known to be susceptible against
// single-trace side-channel attacks."
//
// The masked firmware stores every coefficient as a fresh arithmetic share
// pair, wiping out the store-bus leakage — but the sign branches and the
// pre-store registers still handle the unmasked value, so the single-trace
// attack keeps working: sign recovery stays at 100% and the value templates
// retain most of their power.

#include <cstdio>

#include "bench_common.hpp"
#include "core/attack.hpp"
#include "sca/report.hpp"

using namespace reveal;
using namespace reveal::core;

namespace {

struct Outcome {
  double sign_accuracy = 0.0;
  double zero_accuracy = 0.0;
  double value_accuracy = 0.0;
};

Outcome evaluate(bool masked, std::size_t profile_runs, std::size_t attack_runs) {
  CampaignConfig cfg = bench::default_campaign(64);
  cfg.masked_firmware = masked;
  SamplerCampaign campaign(cfg);
  RevealAttack attack;
  attack.train(campaign.collect_windows(profile_runs, /*seed_base=*/1));

  sca::ConfusionMatrix cm;
  std::size_t sign_ok = 0, value_ok = 0, total = 0;
  for (std::uint64_t seed = 70000; seed < 70000 + attack_runs; ++seed) {
    const FullCapture cap = campaign.capture(seed);
    if (cap.segments.size() != cfg.n) continue;
    const auto guesses = attack.attack_capture(cap);
    for (std::size_t i = 0; i < guesses.size(); ++i) {
      cm.add(static_cast<std::int32_t>(cap.noise[i]), guesses[i].value);
      const int truth = cap.noise[i] > 0 ? 1 : (cap.noise[i] < 0 ? -1 : 0);
      sign_ok += (guesses[i].sign == truth);
      value_ok += (guesses[i].value == cap.noise[i]);
      ++total;
    }
  }
  Outcome out;
  out.sign_accuracy = 100.0 * static_cast<double>(sign_ok) / static_cast<double>(total);
  out.zero_accuracy = cm.accuracy(0);
  out.value_accuracy = 100.0 * static_cast<double>(value_ok) / static_cast<double>(total);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::has_flag(argc, argv, "--quick");
  bench::print_header(
      "Countermeasure: first-order masking",
      "Arithmetic share-masked stores vs the single-trace attack — the\n"
      "paper's warning that masking does not stop this attack, quantified.");

  const std::size_t profile_runs = quick ? 80 : 200;
  const std::size_t attack_runs = quick ? 10 : 30;

  std::printf("\nrunning against the unmasked firmware...\n");
  const Outcome base = evaluate(false, profile_runs, attack_runs);
  std::printf("running against the masked firmware...\n");
  const Outcome masked = evaluate(true, profile_runs, attack_runs);

  std::printf("\n%-30s %14s %14s\n", "metric", "unmasked", "masked stores");
  std::printf("%-30s %14.1f %14.1f\n", "sign accuracy (%)", base.sign_accuracy,
              masked.sign_accuracy);
  std::printf("%-30s %14.1f %14.1f\n", "zero detection (%)", base.zero_accuracy,
              masked.zero_accuracy);
  std::printf("%-30s %14.1f %14.1f\n", "value accuracy (%)", base.value_accuracy,
              masked.value_accuracy);

  std::printf(
      "\nreading: the masked stores remove the strongest data-flow POIs (the\n"
      "memory bus), but the sign branches (vulnerability 1) and the registers\n"
      "computing the pre-share value still leak in the same single trace —\n"
      "sign recovery stays perfect and value recovery degrades but does not\n"
      "die. Masking alone cannot stop this attack (paper §V-A); a masked\n"
      "implementation would additionally need a branch-free, share-domain\n"
      "sign computation AND shuffling.\n");
  return 0;
}
