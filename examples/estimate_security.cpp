// LWE-with-hints security estimator CLI — the C++ counterpart of the
// Dachman-Soled et al. framework as used in paper §IV-C.
//
//   ./estimate_security [n] [log2_q] [sigma] [perfect_hints] [posterior_variance]
//
// Prints the bikz / bit-security of the (hinted) instance. Defaults to the
// paper's SEAL-128 parameter set.

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "lwe/dbdd.hpp"

using namespace reveal::lwe;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 1024;
  const double log2_q = argc > 2 ? std::strtod(argv[2], nullptr) : std::log2(132120577.0);
  const double sigma = argc > 3 ? std::strtod(argv[3], nullptr) : 3.2;
  const std::size_t perfect = argc > 4 ? std::strtoul(argv[4], nullptr, 10) : 0;
  const double post_var = argc > 5 ? std::strtod(argv[5], nullptr) : 0.0;

  DbddParams params;
  params.secret_dim = n;
  params.error_dim = n;
  params.q = std::exp2(log2_q);
  params.secret_variance = sigma * sigma;
  params.error_variance = sigma * sigma;

  std::printf("LWE instance: n = m = %zu, log2(q) = %.2f, sigma = %.2f\n", n, log2_q,
              sigma);

  const SecurityEstimate base = estimate_lwe_security(params);
  std::printf("  no hints      : %8.2f bikz  = %7.2f bits  (dim %zu)\n", base.beta,
              base.bits, base.dim);

  if (perfect > 0 || post_var > 0.0) {
    DbddEstimator est(params);
    if (perfect > 0) est.integrate_perfect_error_hints(perfect);
    if (post_var > 0.0) {
      const std::size_t rest = est.live_error_coords();
      est.integrate_posterior_error_hints(post_var, rest);
    }
    const SecurityEstimate hinted = est.estimate();
    std::printf("  with hints    : %8.2f bikz  = %7.2f bits  (dim %zu; %zu perfect",
                hinted.beta, hinted.bits, hinted.dim, perfect);
    if (post_var > 0.0) std::printf(", rest at variance %.3g", post_var);
    std::printf(")\n");
  } else {
    std::printf("\n  (pass perfect-hint count / posterior variance to add hints, e.g.\n"
                "   ./estimate_security 1024 26.98 3.2 1024 0   -> paper Table III\n"
                "   ./estimate_security 1024 26.98 3.2 128 3.72 -> paper Table IV)\n");
  }
  std::printf("\nconvention: bits = bikz / %.4f (paper footnote 3: 382.25 bikz = 128 bits)\n",
              kBikzPerBit);
  return 0;
}
