// Quickstart: the mini-SEAL BFV library — keygen, encryption, homomorphic
// evaluation and decryption, including the two sampler variants the paper
// compares (vulnerable v3.2 vs patched v3.6-style).
//
//   ./quickstart

#include <cstdio>

#include "seal/decryptor.hpp"
#include "seal/encoder.hpp"
#include "seal/encryption_params.hpp"
#include "seal/encryptor.hpp"
#include "seal/evaluator.hpp"
#include "seal/keys.hpp"

using namespace reveal::seal;

int main() {
  std::printf("== RevEAL quickstart: BFV over R_q = Z_q[x]/(x^n + 1) ==\n\n");

  // The paper's parameter set: n = 1024, q = 132120577 (SEAL-128 smallest).
  const Context ctx(EncryptionParameters::seal_128_1024());
  std::printf("parameters: n = %zu, q = %s, t = %llu, sigma = %.2f\n", ctx.n(),
              ctx.total_coeff_modulus().to_string().c_str(),
              static_cast<unsigned long long>(ctx.plain_modulus().value()),
              ctx.parms().noise_standard_deviation());

  StandardRandomGenerator rng(2022);
  const KeyGenerator keygen(ctx, rng);
  const Encryptor encryptor(ctx, keygen.public_key());  // vulnerable sampler
  const Decryptor decryptor(ctx, keygen.secret_key());
  const Evaluator evaluator(ctx);

  // Encrypt two small polynomials and compute 3*(a + b) homomorphically.
  const Plaintext a(std::vector<std::uint64_t>{1, 2, 3});
  const Plaintext b(std::vector<std::uint64_t>{10, 20, 30});
  Ciphertext ca = encryptor.encrypt(a, rng);
  const Ciphertext cb = encryptor.encrypt(b, rng);
  std::printf("\nfresh noise budget: %d bits\n", decryptor.invariant_noise_budget(ca));

  evaluator.add_inplace(ca, cb);
  evaluator.multiply_plain_inplace(ca, Plaintext(std::uint64_t{3}));
  const Plaintext result = decryptor.decrypt(ca);
  std::printf("3*(a + b) decrypts to: [%llu, %llu, %llu]  (expected [33, 66, 99])\n",
              static_cast<unsigned long long>(result[0]),
              static_cast<unsigned long long>(result[1]),
              static_cast<unsigned long long>(result[2]));
  std::printf("remaining noise budget: %d bits\n", decryptor.invariant_noise_budget(ca));

  // Integer encoding: encrypt 20 + 22 as encoded integers.
  const IntegerEncoder encoder(ctx);
  Ciphertext c20 = encryptor.encrypt(encoder.encode(20), rng);
  const Ciphertext c22 = encryptor.encrypt(encoder.encode(22), rng);
  evaluator.add_inplace(c20, c22);
  std::printf("\ninteger encoding: 20 + 22 = %lld\n",
              static_cast<long long>(encoder.decode(decryptor.decrypt(c20))));

  // Ciphertext-ciphertext multiplication on the multiply-friendly preset.
  const Context mul_ctx(EncryptionParameters::toy_mul_64());
  StandardRandomGenerator mul_rng(7);
  KeyGenerator mul_keygen(mul_ctx, mul_rng);
  const Encryptor mul_enc(mul_ctx, mul_keygen.public_key());
  const Decryptor mul_dec(mul_ctx, mul_keygen.secret_key());
  const Evaluator mul_eval(mul_ctx);
  Ciphertext prod = mul_eval.multiply(mul_enc.encrypt(Plaintext(std::uint64_t{6}), mul_rng),
                                      mul_enc.encrypt(Plaintext(std::uint64_t{7}), mul_rng));
  const RelinKeys rk = mul_keygen.create_relin_keys(8);
  mul_eval.relinearize_inplace(prod, rk);
  std::printf("ciphertext multiply + relinearize: 6 * 7 = %llu\n",
              static_cast<unsigned long long>(mul_dec.decrypt(prod)[0]));

  // The patched (v3.6-style) sampler produces the same ciphertext given the
  // same randomness — the fix changes control flow, not the distribution.
  StandardRandomGenerator r1(99), r2(99);
  const Encryptor enc_vuln(ctx, keygen.public_key(), SamplerVariant::kVulnerableV32);
  const Encryptor enc_patched(ctx, keygen.public_key(), SamplerVariant::kPatchedV36);
  const Ciphertext v1 = enc_vuln.encrypt(a, r1);
  const Ciphertext v2 = enc_patched.encrypt(a, r2);
  std::printf("\nvulnerable vs patched sampler, same seed: ciphertexts %s\n",
              v1[0] == v2[0] && v1[1] == v2[1] ? "IDENTICAL" : "differ");
  std::printf("\n(see full_attack_demo for what the v3.2 sampler leaks)\n");
  return 0;
}
