// The headline demo: single-trace plaintext recovery.
//
// A victim device (simulated PicoRV32 running the SEAL v3.2 sampler)
// encrypts a secret message. The adversary sees ONLY the public key, the
// ciphertext and ONE power trace of the encryption's e2 sampling — and
// recovers the plaintext:
//   1. profile the device (adversary owns an identical one),
//   2. segment the trace, classify branches, run the template attack,
//   3. residual search with the public-value consistency oracle,
//   4. u = (c1 - e2)/p1, m = round(t(c0 - p0 u)/q)   (paper Eq. 2-3).
//
//   ./full_attack_demo

#include <cstdio>
#include <string>

#include "core/acquisition.hpp"
#include "core/attack.hpp"
#include "core/message_recovery.hpp"
#include "core/residual_search.hpp"
#include "seal/encryptor.hpp"
#include "seal/sampler.hpp"

using namespace reveal;
using namespace reveal::core;

int main() {
  std::printf("== RevEAL single-trace attack demo ==\n\n");

  // --- the victim's BFV world -------------------------------------------
  constexpr std::size_t kN = 64;  // scaled-down ring for a fast demo
  seal::EncryptionParameters parms;
  parms.set_poly_modulus_degree(kN);
  parms.set_coeff_modulus({seal::Modulus(132120577ULL)});
  parms.set_plain_modulus(256);
  const seal::Context ctx(parms);
  seal::StandardRandomGenerator rng(20260706);
  const seal::KeyGenerator keygen(ctx, rng);
  const seal::Encryptor encryptor(ctx, keygen.public_key());

  const std::string secret_text = "ATTACK AT DAWN! (RevEAL demo message.....)";
  std::vector<std::uint64_t> msg(kN, 0);
  for (std::size_t i = 0; i < secret_text.size() && i < kN; ++i) {
    msg[i] = static_cast<unsigned char>(secret_text[i]);
  }
  const seal::Plaintext plaintext(msg);

  // --- adversary: profile an identical device ----------------------------
  CampaignConfig cfg;
  cfg.n = kN;
  cfg.moduli = {132120577ULL};
  cfg.leakage.noise_sigma = 0.01;   // lab-grade probe (paper Table II regime)
  cfg.leakage.bit_deviation = 0.35;
  SamplerCampaign campaign(cfg);
  std::printf("[profiling] running the sampler on the clone device...\n");
  RevealAttack attack;
  attack.train(campaign.collect_windows(150, /*seed_base=*/1));
  std::printf("[profiling] templates built (POIs: %zu positive-side, %zu negative-side)\n",
              attack.positive_pois().size(), attack.negative_pois().size());

  // --- the victim encrypts (one power trace captured) --------------------
  // With the lab-grade acquisition nearly every trace is within the
  // residual-search budget; the loop retries on the rare exception.
  for (std::uint64_t trace_seed = 424202; ; ++trace_seed) {
    const FullCapture capture = campaign.capture(trace_seed);
    if (capture.segments.size() != kN) continue;

    seal::EncryptionWitness witness;
    seal::sample_poly_ternary(witness.u, rng, ctx);
    (void)seal::sample_error_poly(rng, ctx, &witness.e1);
    witness.e2 = capture.noise;  // e2 was sampled on the victim device
    const seal::Ciphertext ct = encryptor.encrypt_with_witness(plaintext, witness);

    std::printf("\n[victim] encrypted %zu-coefficient message; trace: %zu samples\n",
                kN, capture.trace.size());

    // --- the attack ------------------------------------------------------
    std::printf("[attack] segmentation: %zu/%zu coefficient windows found\n",
                capture.segments.size(), kN);
    const auto guesses = attack.attack_capture(capture);

    std::size_t sign_ok = 0, value_ok = 0;
    for (std::size_t i = 0; i < kN; ++i) {
      const int truth = capture.noise[i] > 0 ? 1 : (capture.noise[i] < 0 ? -1 : 0);
      sign_ok += (guesses[i].sign == truth);
      value_ok += (guesses[i].value == capture.noise[i]);
    }
    std::printf("[attack] sign recovery: %zu/%zu; template value recovery: %zu/%zu\n",
                sign_ok, kN, value_ok, kN);

    ResidualSearchConfig rs_cfg;
    rs_cfg.max_tries = 1000000;
    const ResidualSearchResult search =
        residual_search(ctx, keygen.public_key(), ct, guesses, rs_cfg);
    std::printf("[attack] residual search: %zu uncertain coefficients, %zu candidates "
                "tested, %s\n",
                search.uncertain_count, search.tried,
                search.found ? "CONSISTENT e2 FOUND" : "budget exhausted");
    if (!search.found) {
      std::printf("[attack] this trace needs a deeper search; capturing another...\n");
      continue;
    }

    const auto recovered = recover_message(ctx, keygen.public_key(), ct, search.e2);
    if (!recovered.has_value()) {
      std::printf("[attack] consistency check failed unexpectedly\n");
      return 1;
    }
    std::string recovered_text;
    for (std::size_t i = 0; i < kN; ++i) {
      const auto c = static_cast<char>((*recovered)[i]);
      if (c == 0) break;
      recovered_text.push_back(c);
    }
    std::printf("\n[attack] RECOVERED PLAINTEXT: \"%s\"\n", recovered_text.c_str());
    std::printf("[check ] original  plaintext: \"%s\"\n", secret_text.c_str());
    std::printf("[check ] %s\n",
                *recovered == plaintext ? "exact match — full break from one trace"
                                        : "MISMATCH");
    return *recovered == plaintext ? 0 : 1;
  }
}
