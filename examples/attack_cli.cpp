// attack_cli — file-based attack workflow, like an offline engagement:
//
//   attack_cli capture <dir>   victim encrypts; writes pk.bin, ct.bin and
//                              trace.bin (TraceSet with one trace) to <dir>
//   attack_cli attack  <dir>   profiles a clone, loads pk/ct/trace from
//                              <dir>, recovers and prints the plaintext
//   attack_cli both    <dir>   capture then attack (default)
//
// Demonstrates the serialization layer (seal/serialization.hpp, sca::TraceSet
// I/O) and that the attack needs nothing but the public artifacts.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "core/acquisition.hpp"
#include "core/attack.hpp"
#include "core/message_recovery.hpp"
#include "core/residual_search.hpp"
#include "sca/trace.hpp"
#include "seal/encryptor.hpp"
#include "seal/sampler.hpp"
#include "seal/serialization.hpp"

using namespace reveal;
using namespace reveal::core;

namespace {

constexpr std::size_t kN = 64;
constexpr std::uint64_t kQ = 132120577ULL;

seal::EncryptionParameters make_params() {
  seal::EncryptionParameters parms;
  parms.set_poly_modulus_degree(kN);
  parms.set_coeff_modulus({seal::Modulus(kQ)});
  parms.set_plain_modulus(256);
  return parms;
}

CampaignConfig lab_config() {
  CampaignConfig cfg;
  cfg.n = kN;
  cfg.moduli = {kQ};
  cfg.leakage.noise_sigma = 0.01;
  cfg.leakage.bit_deviation = 0.35;
  return cfg;
}

int do_capture(const std::string& dir, std::uint64_t seed) {
  std::filesystem::create_directories(dir);
  const seal::Context ctx(make_params());
  seal::StandardRandomGenerator rng(seed);
  const seal::KeyGenerator keygen(ctx, rng);
  const seal::Encryptor encryptor(ctx, keygen.public_key());

  SamplerCampaign campaign(lab_config());
  const FullCapture cap = campaign.capture(seed + 7);
  if (cap.segments.size() != kN) {
    std::fprintf(stderr, "capture: segmentation failed (%zu windows)\n",
                 cap.segments.size());
    return 1;
  }

  // The victim message (kept out of the artifact directory, of course).
  const std::string message = "files-only attack: nothing but pk, ct, trace";
  std::vector<std::uint64_t> msg(kN, 0);
  for (std::size_t i = 0; i < message.size() && i < kN; ++i) {
    msg[i] = static_cast<unsigned char>(message[i]);
  }
  seal::EncryptionWitness witness;
  seal::sample_poly_ternary(witness.u, rng, ctx);
  (void)seal::sample_error_poly(rng, ctx, &witness.e1);
  witness.e2 = cap.noise;
  const seal::Ciphertext ct =
      encryptor.encrypt_with_witness(seal::Plaintext(msg), witness);

  seal::save_public_key_file(keygen.public_key(), dir + "/pk.bin");
  seal::save_ciphertext_file(ct, dir + "/ct.bin");
  sca::TraceSet traces;
  sca::Trace t;
  t.samples = cap.trace;
  traces.add(std::move(t));
  traces.save(dir + "/trace.bin");

  std::printf("capture: wrote %s/{pk.bin, ct.bin, trace.bin} (%zu samples)\n",
              dir.c_str(), cap.trace.size());
  std::printf("capture: victim message was: \"%s\"\n", message.c_str());
  return 0;
}

int do_attack(const std::string& dir) {
  const seal::Context ctx(make_params());
  const seal::PublicKey pk = seal::load_public_key_file(dir + "/pk.bin");
  const seal::Ciphertext ct = seal::load_ciphertext_file(dir + "/ct.bin");
  const sca::TraceSet traces = sca::TraceSet::load(dir + "/trace.bin");
  if (traces.empty()) {
    std::fprintf(stderr, "attack: no trace in %s\n", dir.c_str());
    return 1;
  }
  if (!seal::conforms_to(pk.p1, ctx)) {
    std::fprintf(stderr, "attack: public key does not match the parameters\n");
    return 1;
  }

  std::printf("attack: profiling a clone device...\n");
  const CampaignConfig cfg = lab_config();
  SamplerCampaign campaign(cfg);
  RevealAttack attack;
  attack.train(campaign.collect_windows(150, /*seed_base=*/1));

  std::printf("attack: segmenting the captured trace...\n");
  std::vector<double> trace = traces[0].samples;
  auto segments = sca::segment_trace(trace, cfg.segmentation);
  anchor_windows_at_burst_edge(trace, segments, cfg.segmentation.threshold);
  if (segments.size() != kN) {
    std::fprintf(stderr, "attack: expected %zu windows, found %zu\n", kN,
                 segments.size());
    return 1;
  }

  std::vector<CoefficientGuess> guesses;
  for (const auto& seg : segments) {
    std::vector<double> window(trace.begin() + static_cast<std::ptrdiff_t>(seg.window_begin),
                               trace.begin() + static_cast<std::ptrdiff_t>(seg.window_end));
    guesses.push_back(attack.attack_window(window));
  }

  ResidualSearchConfig rs;
  rs.max_tries = 1000000;
  const ResidualSearchResult search = residual_search(ctx, pk, ct, guesses, rs);
  if (!search.found) {
    std::printf("attack: residual search exhausted (%zu tried) — capture another trace\n",
                search.tried);
    return 2;
  }
  const auto plain = recover_message(ctx, pk, ct, search.e2);
  if (!plain.has_value()) {
    std::fprintf(stderr, "attack: recovery inconsistency\n");
    return 1;
  }
  std::string message;
  for (std::size_t i = 0; i < kN; ++i) {
    const auto c = static_cast<char>((*plain)[i]);
    if (c == 0) break;
    message.push_back(c);
  }
  std::printf("attack: RECOVERED MESSAGE: \"%s\"\n", message.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string mode = argc > 1 ? argv[1] : "both";
  const std::string dir =
      argc > 2 ? argv[2]
               : (std::filesystem::temp_directory_path() / "reveal_attack").string();

  if (mode == "capture") return do_capture(dir, 20260706);
  if (mode == "attack") return do_attack(dir);
  if (mode == "both") {
    // Retry with fresh captures until the residual search lands (roughly
    // one in two lab-grade traces is within budget).
    for (std::uint64_t seed = 20260706; seed < 20260712; ++seed) {
      if (do_capture(dir, seed) != 0) continue;
      const int rc = do_attack(dir);
      if (rc != 2) return rc;
      std::printf("(trace too noisy for the budget; trying another capture)\n\n");
    }
    return 1;
  }
  std::fprintf(stderr, "usage: %s [capture|attack|both] [dir]\n", argv[0]);
  return 64;
}
