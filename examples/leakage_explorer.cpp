// Leakage explorer: visualize what the simulated target leaks.
//
// Renders a trace portion in ASCII, overlays the detected segmentation,
// shows the per-sign mean windows, and prints the SOSD curve with the
// selected POIs — the raw material of paper §III-C/D.
//
//   ./leakage_explorer [n] [noise_sigma]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "core/acquisition.hpp"
#include "sca/poi.hpp"

using namespace reveal;
using namespace reveal::core;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 16;
  const double sigma = argc > 2 ? std::strtod(argv[2], nullptr) : 0.15;

  CampaignConfig cfg;
  cfg.n = n;
  cfg.leakage.noise_sigma = sigma;
  SamplerCampaign campaign(cfg);

  std::printf("== leakage explorer: n = %zu coefficients, noise sigma = %.2f ==\n\n", n,
              sigma);
  const FullCapture cap = campaign.capture(1);
  std::printf("trace: %zu samples, %zu/%zu windows segmented\n", cap.trace.size(),
              cap.segments.size(), n);
  std::printf("sampled coefficients:");
  for (const auto v : cap.noise) std::printf(" %lld", static_cast<long long>(v));
  std::printf("\n\n");

  // Render the first three windows.
  const std::size_t begin = cap.segments.front().burst_begin > 4
                                ? cap.segments.front().burst_begin - 4
                                : 0;
  const std::size_t end = std::min(cap.segments[std::min<std::size_t>(3, n - 1)].burst_begin + 4,
                                   cap.trace.size());
  double lo = 1e300, hi = -1e300;
  for (std::size_t i = begin; i < end; ++i) {
    lo = std::min(lo, cap.trace[i]);
    hi = std::max(hi, cap.trace[i]);
  }
  constexpr int kRows = 10;
  const std::size_t stride = std::max<std::size_t>(1, (end - begin) / 100);
  for (int r = kRows; r >= 1; --r) {
    const double level = lo + (hi - lo) * r / kRows;
    std::printf("%8.2f |", level);
    for (std::size_t i = begin; i < end; i += stride) {
      double peak = cap.trace[i];
      for (std::size_t j = i; j < std::min(i + stride, end); ++j)
        peak = std::max(peak, cap.trace[j]);
      std::printf("%c", peak >= level ? '#' : ' ');
    }
    std::printf("\n");
  }
  std::printf("          (first windows; tall 35-cycle blocks = sequential multiply\n"
              "           of the distribution call -> the segmentation anchors)\n\n");

  // Per-sign mean windows + SOSD.
  std::printf("collecting labelled windows for the POI analysis...\n");
  const auto windows = campaign.collect_windows(200, /*seed_base=*/10);
  sca::TraceSet by_sign;
  sca::TraceSet negatives;
  for (const auto& w : windows) {
    if (w.samples.size() < 110) continue;
    sca::Trace t;
    t.samples.assign(w.samples.begin(), w.samples.begin() + 110);
    t.label = w.true_value > 0 ? 1 : (w.true_value < 0 ? -1 : 0);
    by_sign.add(t);
    if (w.true_value < 0) {
      t.label = w.true_value;
      negatives.add(std::move(t));
    }
  }
  const auto sign_means = sca::class_means(by_sign);
  std::printf("\nmean window per sign (110 samples, '#' >5.5, '+' >4.5, '.' else):\n");
  for (const auto& [label, mean] : sign_means) {
    std::printf("  %+d |", label);
    for (const double v : mean) std::printf("%c", v > 5.5 ? '#' : (v > 4.5 ? '+' : '.'));
    std::printf("\n");
  }

  const auto neg_means = sca::class_means(negatives);
  const auto sosd = sca::sosd_curve(neg_means);
  const auto pois = sca::select_pois(sosd, 12, 2);
  const double sosd_max = *std::max_element(sosd.begin(), sosd.end());
  std::printf("\nSOSD curve across the negative-value classes (x = POI):\n  ");
  for (std::size_t i = 0; i < sosd.size(); ++i) {
    const bool is_poi = std::find(pois.begin(), pois.end(), i) != pois.end();
    const double rel = sosd[i] / sosd_max;
    std::printf("%c", is_poi ? 'X' : (rel > 0.5 ? '#' : (rel > 0.1 ? '+' : '.')));
  }
  std::printf("\n  POIs at samples:");
  for (const auto p : pois) std::printf(" %zu", p);
  std::printf("\n\nreading: the leakage concentrates right after the burst (the\n"
              "srai writing the sampled value) and at the negation/store of the\n"
              "negative branch — vulnerabilities 2 and 3 of the paper.\n");
  return 0;
}
