#pragma once
// First-order CMOS power model.
//
// Each executed instruction contributes `cycles` samples. The sample at the
// instruction's "execute" cycle carries the data-dependent component:
//
//   p = base(class)
//     + w_hd * HD(rd_old, rd_new)          (register file update toggles)
//     + w_hw * WHW(rd_new)                 (result bus weight)
//     + w_mem * WHW(mem_data)              (data memory bus)
//     + N(0, sigma_noise)                  (measurement noise)
//
// WHW is a *weighted* Hamming weight: each bit line has capacitance
// 1 + epsilon_b with small fixed per-bit deviations — this is what makes
// values inside one Hamming-weight class weakly distinguishable, matching
// the structure of the paper's Table I (e.g. template "1" preferred over
// "2" for true value 1 even though HW(1)=HW(2)).
//
// Remaining cycles of a multi-cycle instruction emit base-level samples
// (plus noise), which preserves the timing structure the segmentation step
// relies on (Fig. 3a).

#include <array>
#include <cstdint>

#include "numeric/rng.hpp"
#include "riscv/machine.hpp"

namespace reveal::power {

struct LeakageParams {
  // Data-dependent modulation is a small signal riding on the much larger
  // instruction-level power (realistic SNR; the template attack needs many
  // profiling traces exactly as on the SAKURA-G target).
  double w_hd = 0.06;         ///< weight of register Hamming distance
  double w_hw = 0.15;         ///< weight of result weighted Hamming weight
  double w_mem = 0.25;        ///< weight of memory-bus weighted Hamming weight
  double w_serial = 0.10;     ///< per-cycle operand activity of the serial mul/div
  double bit_deviation = 0.08;///< relative per-bit capacitance spread
  double noise_sigma = 0.15;  ///< additive Gaussian measurement noise (std)
  /// Random-walk step of the slow baseline wander (supply/temperature
  /// drift); 0 disables. Applied per sample by the TraceRecorder.
  double drift_sigma = 0.0;
  std::uint64_t bit_weight_seed = 0xB17C0FFEEULL;  ///< fixes the bit weights

  /// Per-class static/base power (fetch + control activity). The bit-serial
  /// multiplier/divider datapath keeps toggling every cycle, which is what
  /// makes the distribution call a visible burst (paper Fig. 3a).
  double base_alu = 4.0;
  double base_alu_imm = 4.0;
  double base_load = 5.0;
  double base_store = 5.5;
  double base_branch = 4.5;
  double base_jump = 5.0;
  double base_mul = 12.0;
  double base_div = 12.0;
  double base_system = 3.0;
};

/// Computes noiseless and noisy per-cycle power values for instruction
/// events. Stateless w.r.t. traces; the noise RNG is supplied per call so
/// campaigns control determinism.
class LeakageModel {
 public:
  explicit LeakageModel(LeakageParams params = LeakageParams{});

  [[nodiscard]] const LeakageParams& params() const noexcept { return params_; }

  /// Weighted Hamming weight with the model's per-bit capacitances.
  [[nodiscard]] double weighted_hw(std::uint32_t value) const noexcept;

  /// Base power of an instruction class.
  [[nodiscard]] double base_power(riscv::InstrClass klass) const noexcept;

  /// Noiseless data-dependent power of the execute cycle of `event`.
  [[nodiscard]] double execute_cycle_power(const riscv::InstrEvent& event) const noexcept;

  /// Appends all `event.cycles` samples (noisy) to `out`.
  void append_samples(const riscv::InstrEvent& event, num::Xoshiro256StarStar& noise_rng,
                      std::vector<double>& out) const;

 private:
  LeakageParams params_;
  std::array<double, 32> bit_weights_{};  // 1 + deviation per bus line
};

}  // namespace reveal::power
