#include "power/fault_injector.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace reveal::power {

bool FaultSpec::any() const noexcept {
  return jitter_sigma > 0.0 || dropout_rate > 0.0 || glitch_count > 0 ||
         burst_count > 0 || drift_sigma > 0.0 || clip || trigger_misalign > 0;
}

double FaultSpec::severity() const noexcept {
  // Each term is roughly "1.0 = enough to visibly hurt the attack"; the sum
  // orders sweep levels for reporting, nothing more.
  double s = 0.0;
  s += jitter_sigma;
  s += dropout_rate * 20.0;
  s += static_cast<double>(glitch_count) / 4.0;
  s += static_cast<double>(burst_count) * burst_sigma / 3.0;
  s += drift_sigma * 100.0;
  s += clip ? 0.5 : 0.0;
  s += static_cast<double>(trigger_misalign) / 50.0;
  return s;
}

std::vector<double> FaultInjector::time_warp(const std::vector<double>& trace,
                                             double jitter_sigma,
                                             num::Xoshiro256StarStar& rng) {
  if (jitter_sigma <= 0.0 || trace.size() < 2) return trace;
  std::vector<double> out;
  out.reserve(trace.size());
  const double last = static_cast<double>(trace.size() - 1);
  double pos = 0.0;
  while (pos <= last) {
    const std::size_t i = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(i);
    const double a = trace[i];
    const double b = i + 1 < trace.size() ? trace[i + 1] : trace[i];
    out.push_back(a + frac * (b - a));
    // The effective period never reverses: clamp to a tenth of a cycle.
    pos += std::max(0.1, 1.0 + rng.gaussian(0.0, jitter_sigma));
  }
  return out;
}

std::size_t FaultInjector::drop_samples(std::vector<double>& trace, double rate,
                                        num::Xoshiro256StarStar& rng) {
  if (rate <= 0.0) return 0;
  if (rate >= 1.0) throw std::invalid_argument("FaultInjector: dropout_rate must be < 1");
  std::size_t dropped = 0;
  for (std::size_t i = 1; i < trace.size(); ++i) {
    if (rng.bernoulli(rate)) {
      trace[i] = trace[i - 1];
      ++dropped;
    }
  }
  return dropped;
}

std::vector<double> FaultInjector::misalign_trigger(const std::vector<double>& trace,
                                                    std::size_t max_shift,
                                                    num::Xoshiro256StarStar& rng,
                                                    std::int64_t* shift_out) {
  if (shift_out != nullptr) *shift_out = 0;
  if (max_shift == 0 || trace.empty()) return trace;
  const auto bound = static_cast<std::int64_t>(std::min(max_shift, trace.size() - 1));
  const std::int64_t shift = rng.uniform_int(-bound, bound);
  if (shift_out != nullptr) *shift_out = shift;
  if (shift == 0) return trace;
  if (shift > 0) {
    // Late trigger: the head of the trace was never captured.
    return {trace.begin() + shift, trace.end()};
  }
  // Early trigger: pre-trigger floor-level samples precede the real signal.
  // Estimate the floor from the lower half of the head of the trace.
  const std::size_t probe = std::min<std::size_t>(trace.size(), 256);
  std::vector<double> head(trace.begin(), trace.begin() + static_cast<std::ptrdiff_t>(probe));
  std::nth_element(head.begin(), head.begin() + static_cast<std::ptrdiff_t>(probe / 4),
                   head.end());
  const double floor_level = head[probe / 4];
  std::vector<double> out;
  out.reserve(trace.size() + static_cast<std::size_t>(-shift));
  for (std::int64_t i = 0; i < -shift; ++i) {
    out.push_back(floor_level + rng.gaussian(0.0, 0.05));
  }
  out.insert(out.end(), trace.begin(), trace.end());
  return out;
}

void FaultInjector::add_glitches(std::vector<double>& trace, std::size_t count,
                                 double amplitude, num::Xoshiro256StarStar& rng) {
  if (count == 0 || trace.empty()) return;
  for (std::size_t g = 0; g < count; ++g) {
    const std::size_t i = rng.uniform_below(trace.size());
    trace[i] += rng.bernoulli(0.5) ? amplitude : -amplitude;
  }
}

void FaultInjector::add_burst_noise(std::vector<double>& trace, std::size_t count,
                                    std::size_t length, double sigma,
                                    num::Xoshiro256StarStar& rng) {
  if (count == 0 || length == 0 || sigma <= 0.0 || trace.empty()) return;
  for (std::size_t b = 0; b < count; ++b) {
    const std::size_t start = rng.uniform_below(trace.size());
    const std::size_t end = std::min(trace.size(), start + length);
    for (std::size_t i = start; i < end; ++i) trace[i] += rng.gaussian(0.0, sigma);
  }
}

void FaultInjector::add_drift(std::vector<double>& trace, double sigma,
                              num::Xoshiro256StarStar& rng) {
  if (sigma <= 0.0) return;
  double walk = 0.0;
  for (double& v : trace) {
    walk += rng.gaussian(0.0, sigma);
    v += walk;
  }
}

std::size_t FaultInjector::clip_samples(std::vector<double>& trace, double lo, double hi) {
  if (!(hi > lo)) throw std::invalid_argument("FaultInjector: empty clip range");
  std::size_t clipped = 0;
  for (double& v : trace) {
    if (v < lo || v > hi) ++clipped;
    v = std::clamp(v, lo, hi);
  }
  return clipped;
}

void FaultStats::merge(const FaultStats& other) noexcept {
  captures += other.captures;
  dropped_samples += other.dropped_samples;
  glitch_samples += other.glitch_samples;
  burst_windows += other.burst_windows;
  drifted_captures += other.drifted_captures;
  clipped_samples += other.clipped_samples;
  misaligned_captures += other.misaligned_captures;
  warped_captures += other.warped_captures;
}

std::vector<double> FaultInjector::apply(std::vector<double> trace,
                                         std::uint64_t capture_seed,
                                         FaultStats* stats) const {
  if (!spec_.any()) return trace;
  if (stats != nullptr) ++stats->captures;
  // One stream per capture; stage order is fixed so a spec + seed pair
  // always produces the same corruption. Stats recording is observation
  // only: it reads counts the stages produce anyway and never adds RNG
  // draws, so a traced run corrupts bit-identically to an untraced one.
  std::uint64_t mix = spec_.seed;
  mix ^= capture_seed + 0x9E3779B97F4A7C15ULL + (mix << 6) + (mix >> 2);
  num::Xoshiro256StarStar rng(mix);
  if (spec_.jitter_sigma > 0.0) {
    trace = time_warp(trace, spec_.jitter_sigma, rng);
    if (stats != nullptr) ++stats->warped_captures;
  }
  const std::size_t dropped = drop_samples(trace, spec_.dropout_rate, rng);
  if (stats != nullptr) stats->dropped_samples += dropped;
  if (spec_.trigger_misalign > 0) {
    std::int64_t shift = 0;
    trace = misalign_trigger(trace, spec_.trigger_misalign, rng, &shift);
    if (stats != nullptr && shift != 0) ++stats->misaligned_captures;
  }
  add_glitches(trace, spec_.glitch_count, spec_.glitch_amplitude, rng);
  if (stats != nullptr && spec_.glitch_count > 0 && !trace.empty())
    stats->glitch_samples += spec_.glitch_count;
  add_burst_noise(trace, spec_.burst_count, spec_.burst_length, spec_.burst_sigma, rng);
  if (stats != nullptr && spec_.burst_count > 0 && spec_.burst_length > 0 &&
      spec_.burst_sigma > 0.0 && !trace.empty())
    stats->burst_windows += spec_.burst_count;
  add_drift(trace, spec_.drift_sigma, rng);
  if (stats != nullptr && spec_.drift_sigma > 0.0 && !trace.empty())
    ++stats->drifted_captures;
  if (spec_.clip) {
    const std::size_t clipped = clip_samples(trace, spec_.clip_lo, spec_.clip_hi);
    if (stats != nullptr) stats->clipped_samples += clipped;
  }
  return trace;
}

}  // namespace reveal::power
