#pragma once
// Acquisition fault-injection harness.
//
// The paper's 100% single-trace numbers assume clean, well-triggered
// captures. Real scope campaigns are messier: the sampling clock jitters
// against the core clock, ADC conversions drop out or clip at the rails,
// EM pickup injects glitches and burst noise, the supply wanders, and the
// trigger fires early or late. The FaultInjector reproduces those
// degradations as a composable post-processing stage applied to the raw
// per-cycle trace (between the leakage model and the analysis pipeline).
// Every fault stream is derived deterministically from (spec.seed,
// capture_seed), so a degraded campaign is exactly reproducible.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "numeric/rng.hpp"

namespace reveal::power {

/// Which faults to inject, and how hard. All defaults are "off": a default
/// FaultSpec leaves traces untouched (bit-identical pass-through).
struct FaultSpec {
  /// Sampling-clock jitter: the effective sample period is 1 + N(0, sigma)
  /// core cycles; the trace is re-sampled along the warped time axis
  /// (linear interpolation), so window positions drift within a trace.
  double jitter_sigma = 0.0;

  /// Per-sample dropout probability: a dropped ADC conversion repeats the
  /// previous value (sample-and-hold), destroying amplitude information
  /// without shifting time.
  double dropout_rate = 0.0;

  /// Isolated amplitude glitches: this many random samples get a +/-
  /// `glitch_amplitude` spike (sign random per glitch).
  std::size_t glitch_count = 0;
  double glitch_amplitude = 25.0;

  /// Burst noise: this many windows of `burst_length` samples receive
  /// additive Gaussian noise of std `burst_sigma` (EM pickup, comms
  /// interference).
  std::size_t burst_count = 0;
  std::size_t burst_length = 48;
  double burst_sigma = 1.5;

  /// Baseline drift: a per-sample random walk of step std `drift_sigma`
  /// rides on the whole trace (supply/temperature wander at the scope).
  double drift_sigma = 0.0;

  /// ADC rail clipping: clamp every sample to [clip_lo, clip_hi].
  bool clip = false;
  double clip_lo = 0.0;
  double clip_hi = 16.0;

  /// Trigger misalignment: the capture starts up to this many samples
  /// early (floor-level padding is prepended) or late (head truncated);
  /// the shift is uniform in [-trigger_misalign, +trigger_misalign].
  std::size_t trigger_misalign = 0;

  /// Base seed of the fault streams (combined with the capture seed).
  std::uint64_t seed = 0xFA017;

  /// True if any fault is active.
  [[nodiscard]] bool any() const noexcept;

  /// Heuristic scalar severity for reports/sweeps (0 = clean). Not used by
  /// the injector itself.
  [[nodiscard]] double severity() const noexcept;
};

/// What the injector actually did to the traces it processed — integer
/// activation counts per fault class, accumulated across captures. Every
/// count is a pure function of (spec, capture seeds), so per-worker
/// partials merged in any order equal the sequential tally (the campaign
/// worker-count-invariance contract); the campaign surfaces them as
/// "faults.*" obs counters.
struct FaultStats {
  std::uint64_t captures = 0;             ///< traces run through apply()
  std::uint64_t dropped_samples = 0;      ///< sample-and-hold repeats
  std::uint64_t glitch_samples = 0;       ///< isolated amplitude spikes
  std::uint64_t burst_windows = 0;        ///< burst-noise windows injected
  std::uint64_t drifted_captures = 0;     ///< captures with baseline drift
  std::uint64_t clipped_samples = 0;      ///< samples clamped at a rail
  std::uint64_t misaligned_captures = 0;  ///< captures with a nonzero shift
  std::uint64_t warped_captures = 0;      ///< captures with clock jitter

  void merge(const FaultStats& other) noexcept;

  friend bool operator==(const FaultStats&, const FaultStats&) = default;
};

/// Applies a FaultSpec to traces. Stateless across captures: the fault
/// randomness for one capture depends only on (spec.seed, capture_seed).
class FaultInjector {
 public:
  explicit FaultInjector(FaultSpec spec) : spec_(spec) {}

  [[nodiscard]] const FaultSpec& spec() const noexcept { return spec_; }

  /// Applies every enabled fault, in acquisition order (time warp, dropout,
  /// trigger misalignment, glitches, burst noise, drift, clipping). A
  /// disabled spec returns the input bit-identically. `stats` (optional)
  /// accumulates the activation counts; recording never changes the trace
  /// or the random streams.
  [[nodiscard]] std::vector<double> apply(std::vector<double> trace,
                                          std::uint64_t capture_seed,
                                          FaultStats* stats = nullptr) const;

  // Individual stages, exposed for unit tests. Each draws from `rng`; the
  // in-place stages return how many samples they touched.
  [[nodiscard]] static std::vector<double> time_warp(const std::vector<double>& trace,
                                                     double jitter_sigma,
                                                     num::Xoshiro256StarStar& rng);
  static std::size_t drop_samples(std::vector<double>& trace, double rate,
                                  num::Xoshiro256StarStar& rng);
  /// `shift_out` (optional) receives the drawn trigger shift (0 = aligned).
  [[nodiscard]] static std::vector<double> misalign_trigger(const std::vector<double>& trace,
                                                            std::size_t max_shift,
                                                            num::Xoshiro256StarStar& rng,
                                                            std::int64_t* shift_out = nullptr);
  static void add_glitches(std::vector<double>& trace, std::size_t count, double amplitude,
                           num::Xoshiro256StarStar& rng);
  static void add_burst_noise(std::vector<double>& trace, std::size_t count,
                              std::size_t length, double sigma,
                              num::Xoshiro256StarStar& rng);
  static void add_drift(std::vector<double>& trace, double sigma,
                        num::Xoshiro256StarStar& rng);
  static std::size_t clip_samples(std::vector<double>& trace, double lo, double hi);

 private:
  FaultSpec spec_;
};

}  // namespace reveal::power
