#pragma once
// Glues the ISS observer interface to the leakage model, producing a power
// trace (one sample per core cycle), plus an optional marker stream used by
// tests and by ground-truth-aided debugging (never by the attack itself).
//
// A recorder is reusable across captures: begin_capture(noise_seed) reseeds
// the noise stream and resets the per-capture state while keeping buffer
// capacities (and registered watches), so a campaign runs an arbitrary
// number of captures through one recorder without reallocating. A fresh
// recorder and a reused one given the same seed produce bit-identical
// traces.

#include <cstdint>
#include <vector>

#include "numeric/rng.hpp"
#include "power/leakage_model.hpp"
#include "riscv/machine.hpp"

namespace reveal::power {

/// A labelled position in a recorded trace (host-side ground truth).
struct TraceMarker {
  std::uint64_t sample_index = 0;
  std::uint32_t pc = 0;
  std::uint32_t tag = 0;  ///< victim-defined (e.g. coefficient index)
};

class TraceRecorder final : public riscv::ExecutionObserver {
 public:
  /// `noise_seed` controls the measurement-noise stream for this capture.
  TraceRecorder(const LeakageModel& model, std::uint64_t noise_seed);

  void on_instruction(const riscv::InstrEvent& event) override;

  [[nodiscard]] const std::vector<double>& samples() const noexcept { return samples_; }

  /// Moves the recorded trace out. The recorder is left in a documented
  /// reusable state: samples and markers empty, drift reset to zero,
  /// watches retained. The noise RNG keeps its advanced position — call
  /// begin_capture() to reseed before recording a new trace whose noise
  /// must be reproducible.
  [[nodiscard]] std::vector<double> take_samples() noexcept;

  /// Rearms the recorder for a new capture: clears samples and markers
  /// (keeping their capacity), zeroes the drift walk and reseeds the noise
  /// stream. Registered watches are preserved.
  void begin_capture(std::uint64_t noise_seed);

  /// Pre-sizes the internal buffers (e.g. from an instruction budget) so a
  /// capture appends without reallocating.
  void reserve(std::size_t samples, std::size_t markers = 0);

  /// Registers a pc to mark: whenever an instruction at `pc` retires, a
  /// marker with `tag` is appended (tag auto-increments if `increment`).
  void watch_pc(std::uint32_t pc, std::uint32_t tag, bool increment = false);
  [[nodiscard]] const std::vector<TraceMarker>& markers() const noexcept { return markers_; }

  void clear();

 private:
  struct Watch {
    std::uint32_t pc;
    std::uint32_t tag;
    std::uint32_t initial_tag;  ///< begin_capture() rewinds auto-increment tags
    bool increment;
  };

  const LeakageModel& model_;
  num::Xoshiro256StarStar noise_rng_;
  double drift_ = 0.0;  ///< accumulated baseline wander (random walk)
  std::vector<double> samples_;
  std::vector<Watch> watches_;
  std::vector<TraceMarker> markers_;
};

}  // namespace reveal::power
