#include "power/trace_recorder.hpp"

namespace reveal::power {

TraceRecorder::TraceRecorder(const LeakageModel& model, std::uint64_t noise_seed)
    : model_(model), noise_rng_(noise_seed) {}

void TraceRecorder::on_instruction(const riscv::InstrEvent& event) {
  for (Watch& w : watches_) {
    if (w.pc == event.pc) {
      markers_.push_back({samples_.size(), event.pc, w.tag});
      if (w.increment) ++w.tag;
    }
  }
  const std::size_t first = samples_.size();
  model_.append_samples(event, noise_rng_, samples_);
  const double drift_sigma = model_.params().drift_sigma;
  if (drift_sigma > 0.0) {
    // Slow supply/temperature wander: a per-sample random walk riding on
    // top of the instruction-level power.
    for (std::size_t i = first; i < samples_.size(); ++i) {
      drift_ += noise_rng_.gaussian(0.0, drift_sigma);
      samples_[i] += drift_;
    }
  }
}

std::vector<double> TraceRecorder::take_samples() noexcept {
  std::vector<double> out = std::move(samples_);
  // Leave the recorder reusable instead of holding stale markers/drift from
  // the capture that was just moved out: a subsequent capture must not see
  // the previous run's marker stream or start mid-way through its drift
  // walk. (The noise RNG deliberately keeps advancing; begin_capture()
  // reseeds it for reproducible reuse.)
  samples_.clear();
  markers_.clear();
  drift_ = 0.0;
  return out;
}

void TraceRecorder::begin_capture(std::uint64_t noise_seed) {
  samples_.clear();
  markers_.clear();
  drift_ = 0.0;
  noise_rng_ = num::Xoshiro256StarStar(noise_seed);
  for (Watch& w : watches_) w.tag = w.initial_tag;
}

void TraceRecorder::reserve(std::size_t samples, std::size_t markers) {
  samples_.reserve(samples);
  markers_.reserve(markers);
}

void TraceRecorder::watch_pc(std::uint32_t pc, std::uint32_t tag, bool increment) {
  watches_.push_back({pc, tag, tag, increment});
}

void TraceRecorder::clear() {
  samples_.clear();
  markers_.clear();
  drift_ = 0.0;
}

}  // namespace reveal::power
