#include "power/trace_recorder.hpp"

namespace reveal::power {

TraceRecorder::TraceRecorder(const LeakageModel& model, std::uint64_t noise_seed)
    : model_(model), noise_rng_(noise_seed) {}

void TraceRecorder::on_instruction(const riscv::InstrEvent& event) {
  for (Watch& w : watches_) {
    if (w.pc == event.pc) {
      markers_.push_back({samples_.size(), event.pc, w.tag});
      if (w.increment) ++w.tag;
    }
  }
  const std::size_t first = samples_.size();
  model_.append_samples(event, noise_rng_, samples_);
  const double drift_sigma = model_.params().drift_sigma;
  if (drift_sigma > 0.0) {
    // Slow supply/temperature wander: a per-sample random walk riding on
    // top of the instruction-level power.
    for (std::size_t i = first; i < samples_.size(); ++i) {
      drift_ += noise_rng_.gaussian(0.0, drift_sigma);
      samples_[i] += drift_;
    }
  }
}

void TraceRecorder::watch_pc(std::uint32_t pc, std::uint32_t tag, bool increment) {
  watches_.push_back({pc, tag, increment});
}

void TraceRecorder::clear() {
  samples_.clear();
  markers_.clear();
  drift_ = 0.0;
}

}  // namespace reveal::power
