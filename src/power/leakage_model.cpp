#include "power/leakage_model.hpp"

#include "numeric/bits.hpp"

namespace reveal::power {

LeakageModel::LeakageModel(LeakageParams params) : params_(params) {
  // Fixed pseudo-random per-bit capacitance deviations: the same physical
  // device is used for profiling and attack, so these are constant.
  num::Xoshiro256StarStar rng(params_.bit_weight_seed);
  for (double& w : bit_weights_) {
    w = 1.0 + params_.bit_deviation * (2.0 * rng.uniform_double() - 1.0);
  }
}

double LeakageModel::weighted_hw(std::uint32_t value) const noexcept {
  double acc = 0.0;
  while (value != 0) {
    const int b = std::countr_zero(value);
    acc += bit_weights_[static_cast<std::size_t>(b)];
    value &= value - 1;
  }
  return acc;
}

double LeakageModel::base_power(riscv::InstrClass klass) const noexcept {
  using riscv::InstrClass;
  switch (klass) {
    case InstrClass::kAlu: return params_.base_alu;
    case InstrClass::kAluImm: return params_.base_alu_imm;
    case InstrClass::kLoad: return params_.base_load;
    case InstrClass::kStore: return params_.base_store;
    case InstrClass::kBranch: return params_.base_branch;
    case InstrClass::kJump: return params_.base_jump;
    case InstrClass::kMul: return params_.base_mul;
    case InstrClass::kDiv: return params_.base_div;
    case InstrClass::kSystem: return params_.base_system;
  }
  return params_.base_system;
}

double LeakageModel::execute_cycle_power(const riscv::InstrEvent& event) const noexcept {
  double p = base_power(event.klass);
  if (event.rd_written) {
    p += params_.w_hd * num::hamming_distance(event.rd_old, event.rd_new);
    p += params_.w_hw * weighted_hw(event.rd_new);
  }
  if (event.is_mem_read || event.is_mem_write) {
    p += params_.w_mem * weighted_hw(event.mem_data);
  }
  return p;
}

void LeakageModel::append_samples(const riscv::InstrEvent& event,
                                  num::Xoshiro256StarStar& noise_rng,
                                  std::vector<double>& out) const {
  double level = base_power(event.klass);
  if (event.klass == riscv::InstrClass::kMul || event.klass == riscv::InstrClass::kDiv) {
    // Bit-serial datapath: the operands circulate through the
    // shift/accumulate registers on every one of the ~35 cycles.
    level += params_.w_serial * 0.5 *
             (weighted_hw(event.rs1_val) + weighted_hw(event.rs2_val));
  }
  const double exec = execute_cycle_power(event) + level - base_power(event.klass);
  // The result/bus write-back activity lands on the last cycle; earlier
  // cycles carry the fetch/decode/datapath level.
  for (std::uint32_t c = 0; c + 1 < event.cycles; ++c) {
    out.push_back(level + noise_rng.gaussian(0.0, params_.noise_sigma));
  }
  out.push_back(exec + noise_rng.gaussian(0.0, params_.noise_sigma));
}

}  // namespace reveal::power
