#pragma once
// Oscilloscope front-end model.
//
// The paper measures the shunt voltage with a PicoScope 6424E at 1 GS/s
// while the core runs at 1.5 MHz — hundreds of scope samples per core
// cycle, later aligned per cycle. We model the acquisition chain that
// matters for the attack: analog gain/offset, optional moving-average
// bandwidth limit, decimation to one sample per cycle, and 8-bit
// quantization of the ADC.

#include <cstdint>
#include <vector>

namespace reveal::power {

struct ScopeParams {
  double gain = 1.0;
  double offset = 0.0;
  /// Moving-average window (samples) modelling the analog bandwidth; 1 = off.
  std::size_t bandwidth_window = 1;
  /// Keep every k-th sample; 1 = no decimation.
  std::size_t decimation = 1;
  /// If true, quantize to 8-bit codes over [range_lo, range_hi].
  bool quantize_8bit = false;
  double range_lo = 0.0;
  double range_hi = 64.0;
};

/// Applies the acquisition chain to a raw per-cycle power trace. When
/// `clipped_samples` is non-null it receives the number of samples the
/// 8-bit quantizer clamped at a rail (0 when quantization is off) — rail
/// hits are otherwise indistinguishable from in-range codes downstream,
/// which silently corrupts template observations; campaigns surface the
/// count as an obs counter.
[[nodiscard]] std::vector<double> acquire(const std::vector<double>& raw,
                                          const ScopeParams& params,
                                          std::size_t* clipped_samples = nullptr);

/// The raw ADC code for one conversion: the input is clamped to [lo, hi]
/// (a real scope clips at the rails instead of wrapping codes) and snapped
/// to the nearest of the 256 levels spanning the range. `range_hi` maps to
/// code 255 exactly — the top-of-range conversion can never wrap to a
/// 256-overflowed code 0. `clipped` (optional) reports whether the input
/// hit a rail. Requires hi > lo.
[[nodiscard]] std::uint8_t quantize_8bit_code(double v, double lo, double hi,
                                              bool* clipped = nullptr);

/// One 8-bit ADC conversion reconstructed to volts: the value of
/// quantize_8bit_code's level, i.e. lo + code/255 * (hi - lo).
[[nodiscard]] double quantize_8bit_sample(double v, double lo, double hi);

}  // namespace reveal::power
