#include "power/scope.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace reveal::power {

std::vector<double> acquire(const std::vector<double>& raw, const ScopeParams& params,
                            std::size_t* clipped_samples) {
  if (clipped_samples != nullptr) *clipped_samples = 0;
  if (params.bandwidth_window == 0 || params.decimation == 0)
    throw std::invalid_argument("scope::acquire: window/decimation must be >= 1");
  if (params.quantize_8bit && !(params.range_hi > params.range_lo))
    throw std::invalid_argument("scope::acquire: empty quantization range");

  // Analog chain: gain/offset then moving average.
  std::vector<double> stage(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    stage[i] = raw[i] * params.gain + params.offset;
  }
  if (params.bandwidth_window > 1) {
    std::vector<double> filtered(stage.size());
    double acc = 0.0;
    const std::size_t w = params.bandwidth_window;
    for (std::size_t i = 0; i < stage.size(); ++i) {
      acc += stage[i];
      if (i >= w) acc -= stage[i - w];
      const std::size_t denom = std::min(i + 1, w);
      filtered[i] = acc / static_cast<double>(denom);
    }
    stage = std::move(filtered);
  }

  // Decimation.
  std::vector<double> out;
  out.reserve(stage.size() / params.decimation + 1);
  for (std::size_t i = 0; i < stage.size(); i += params.decimation) {
    out.push_back(stage[i]);
  }

  // ADC quantization.
  if (params.quantize_8bit) {
    std::size_t clips = 0;
    for (double& v : out) {
      bool clipped = false;
      const std::uint8_t code =
          quantize_8bit_code(v, params.range_lo, params.range_hi, &clipped);
      clips += clipped ? 1 : 0;
      v = params.range_lo + static_cast<double>(code) / 255.0 *
                                (params.range_hi - params.range_lo);
    }
    if (clipped_samples != nullptr) *clipped_samples = clips;
  }
  return out;
}

std::uint8_t quantize_8bit_code(double v, double lo, double hi, bool* clipped) {
  if (!(hi > lo)) throw std::invalid_argument("quantize_8bit_code: empty range");
  const bool rail = v < lo || v > hi;
  if (clipped != nullptr) *clipped = rail;
  const double clamped = std::clamp(v, lo, hi);  // rail clipping before conversion
  const double span = hi - lo;
  // (hi - lo) / span == 1 exactly, so the top of the range scales to 255.0
  // and rounds to 255; the min() is a belt-and-braces guard that pins any
  // conceivable last-ulp spill to the top code instead of letting the
  // uint8 cast wrap 256 to code 0.
  const double code = std::min(255.0, std::round((clamped - lo) / span * 255.0));
  return static_cast<std::uint8_t>(code);
}

double quantize_8bit_sample(double v, double lo, double hi) {
  if (!(hi > lo)) throw std::invalid_argument("quantize_8bit_sample: empty range");
  const double clipped = std::clamp(v, lo, hi);  // rail clipping before conversion
  const double span = hi - lo;
  return lo + std::round((clipped - lo) / span * 255.0) / 255.0 * span;
}

}  // namespace reveal::power
