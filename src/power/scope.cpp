#include "power/scope.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace reveal::power {

std::vector<double> acquire(const std::vector<double>& raw, const ScopeParams& params) {
  if (params.bandwidth_window == 0 || params.decimation == 0)
    throw std::invalid_argument("scope::acquire: window/decimation must be >= 1");
  if (params.quantize_8bit && !(params.range_hi > params.range_lo))
    throw std::invalid_argument("scope::acquire: empty quantization range");

  // Analog chain: gain/offset then moving average.
  std::vector<double> stage(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    stage[i] = raw[i] * params.gain + params.offset;
  }
  if (params.bandwidth_window > 1) {
    std::vector<double> filtered(stage.size());
    double acc = 0.0;
    const std::size_t w = params.bandwidth_window;
    for (std::size_t i = 0; i < stage.size(); ++i) {
      acc += stage[i];
      if (i >= w) acc -= stage[i - w];
      const std::size_t denom = std::min(i + 1, w);
      filtered[i] = acc / static_cast<double>(denom);
    }
    stage = std::move(filtered);
  }

  // Decimation.
  std::vector<double> out;
  out.reserve(stage.size() / params.decimation + 1);
  for (std::size_t i = 0; i < stage.size(); i += params.decimation) {
    out.push_back(stage[i]);
  }

  // ADC quantization.
  if (params.quantize_8bit) {
    for (double& v : out) v = quantize_8bit_sample(v, params.range_lo, params.range_hi);
  }
  return out;
}

double quantize_8bit_sample(double v, double lo, double hi) {
  if (!(hi > lo)) throw std::invalid_argument("quantize_8bit_sample: empty range");
  const double clipped = std::clamp(v, lo, hi);  // rail clipping before conversion
  const double span = hi - lo;
  return lo + std::round((clipped - lo) / span * 255.0) / 255.0 * span;
}

}  // namespace reveal::power
