#include "lattice/lattice.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace reveal::lattice {

namespace {
__extension__ typedef __int128 i128;

void check_rectangular(const Basis& basis) {
  if (basis.empty()) throw std::invalid_argument("lattice: empty basis");
  const std::size_t cols = basis.front().size();
  for (const auto& row : basis) {
    if (row.size() != cols) throw std::invalid_argument("lattice: ragged basis");
  }
}

long double dot_ll(const std::vector<std::int64_t>& a, const std::vector<std::int64_t>& b) {
  i128 acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += static_cast<i128>(a[i]) * b[i];
  return static_cast<long double>(acc);
}

/// a -= k * b over the integers.
void axpy(std::vector<std::int64_t>& a, std::int64_t k, const std::vector<std::int64_t>& b) {
  if (k == 0) return;
  for (std::size_t i = 0; i < a.size(); ++i) a[i] -= k * b[i];
}

bool is_zero_row(const std::vector<std::int64_t>& row) {
  for (const std::int64_t v : row) {
    if (v != 0) return false;
  }
  return true;
}

/// LLL loop shared by the public lll_reduce, the dependency-removing
/// variant used inside BKZ, and the GSO-maintaining BKZ fast path (which
/// passes its long-lived FlatGso). Returns the number of swaps. If
/// `remove_dependencies` is set, rows that reduce to zero are erased.
std::size_t lll_core(Basis& basis, double delta, bool remove_dependencies,
                     FlatGso& gso) {
  std::size_t swaps = 0;
  std::size_t k = 1;
  while (k < basis.size()) {
    gso.ensure(k, basis);
    // Size-reduce b_k against b_{k-1} ... b_0, refreshing only GSO row k
    // after every subtraction (rows < k are untouched; rows > k are stale
    // either way and recompute when the sweep reaches them).
    for (std::size_t j = k; j-- > 0;) {
      const long double mu = gso.mu(k, j);
      if (fabsl(mu) > 0.5L) {
        axpy(basis[k], static_cast<std::int64_t>(llroundl(mu)), basis[j]);
        gso.invalidate_from(k);
        gso.ensure(k, basis);
      }
    }

    if (remove_dependencies && is_zero_row(basis[k])) {
      basis.erase(basis.begin() + static_cast<std::ptrdiff_t>(k));
      gso.invalidate_from(k);
      k = std::max<std::size_t>(k, 1);
      if (k >= basis.size()) break;
      continue;
    }

    const long double lhs = gso.norms_sq(k);
    const long double rhs =
        (static_cast<long double>(delta) - gso.mu(k, k - 1) * gso.mu(k, k - 1)) *
        gso.norms_sq(k - 1);
    if (lhs >= rhs) {
      ++k;
    } else {
      std::swap(basis[k], basis[k - 1]);
      gso.invalidate_from(k - 1);
      ++swaps;
      k = k > 1 ? k - 1 : 1;
    }
  }
  return swaps;
}

std::size_t lll_core(Basis& basis, double delta, bool remove_dependencies) {
  FlatGso gso(basis);
  return lll_core(basis, delta, remove_dependencies, gso);
}

/// The pre-optimization loop: full compute_gso after every perturbation.
std::size_t lll_core_reference(Basis& basis, double delta, bool remove_dependencies) {
  std::size_t swaps = 0;
  Gso gso = compute_gso(basis);
  std::size_t k = 1;
  while (k < basis.size()) {
    // Size-reduce b_k against b_{k-1} ... b_0, refreshing the GSO after
    // every subtraction (reducing with b_j only perturbs mu[k][j'] for
    // j' <= j, so one downward pass reaches a fixed point).
    for (std::size_t j = k; j-- > 0;) {
      const long double mu = gso.mu[k][j];
      if (fabsl(mu) > 0.5L) {
        axpy(basis[k], static_cast<std::int64_t>(llroundl(mu)), basis[j]);
        gso = compute_gso(basis);
      }
    }

    if (remove_dependencies && is_zero_row(basis[k])) {
      basis.erase(basis.begin() + static_cast<std::ptrdiff_t>(k));
      gso = compute_gso(basis);
      k = std::max<std::size_t>(k, 1);
      if (k >= basis.size()) break;
      continue;
    }

    const long double lhs = gso.norms_sq[k];
    const long double rhs =
        (static_cast<long double>(delta) - gso.mu[k][k - 1] * gso.mu[k][k - 1]) *
        gso.norms_sq[k - 1];
    if (lhs >= rhs) {
      ++k;
    } else {
      std::swap(basis[k], basis[k - 1]);
      gso = compute_gso(basis);
      ++swaps;
      k = k > 1 ? k - 1 : 1;
    }
  }
  return swaps;
}

/// Uniform GSO accessors so the enumeration core runs unchanged — with
/// identical long double arithmetic — over Gso and FlatGso.
inline long double gso_norm_sq(const Gso& g, std::size_t i) { return g.norms_sq[i]; }
inline long double gso_norm_sq(const FlatGso& g, std::size_t i) { return g.norms_sq(i); }
inline long double gso_mu(const Gso& g, std::size_t i, std::size_t j) {
  return g.mu[i][j];
}
inline long double gso_mu(const FlatGso& g, std::size_t i, std::size_t j) {
  return g.mu(i, j);
}

/// Recursive Fincke-Pohst / Schnorr-Euchner style search.
template <typename GsoT>
struct EnumState {
  const GsoT* gso;
  std::size_t begin;
  std::size_t dim;
  std::vector<std::int64_t> x;
  std::vector<std::int64_t> best;
  long double best_norm;
  bool found;
};

template <typename GsoT>
void enum_dfs(EnumState<GsoT>& st, std::size_t level_plus1, long double rho) {
  if (level_plus1 == 0) {
    if (rho >= st.best_norm) return;
    bool nonzero = false;
    for (const std::int64_t v : st.x) {
      if (v != 0) {
        nonzero = true;
        break;
      }
    }
    if (nonzero) {
      st.best_norm = rho;
      st.best = st.x;
      st.found = true;
    }
    return;
  }
  const std::size_t i = level_plus1 - 1;
  const long double bi = gso_norm_sq(*st.gso, st.begin + i);
  if (bi <= 0.0L) return;  // degenerate direction: nothing to gain
  // Projection center from already-fixed higher coordinates.
  long double c = 0.0L;
  for (std::size_t j = i + 1; j < st.dim; ++j) {
    c -= static_cast<long double>(st.x[j]) * gso_mu(*st.gso, st.begin + j, st.begin + i);
  }
  // Admissible interval from the current bound (a superset once best_norm
  // shrinks during recursion; the per-candidate check below stays exact).
  const long double r = sqrtl((st.best_norm - rho) / bi);
  const auto lo = static_cast<std::int64_t>(ceill(c - r));
  const auto hi = static_cast<std::int64_t>(floorl(c + r));
  for (std::int64_t xi = lo; xi <= hi; ++xi) {
    const long double d = static_cast<long double>(xi) - c;
    const long double contrib = d * d * bi;
    if (rho + contrib >= st.best_norm) continue;
    st.x[i] = xi;
    enum_dfs(st, i, rho + contrib);
  }
  st.x[i] = 0;
}

template <typename GsoT>
EnumResult enumerate_shortest_impl(const GsoT& gso, std::size_t begin,
                                   std::size_t end, long double radius_sq) {
  EnumResult result;
  if (begin >= end)
    throw std::invalid_argument("enumerate_shortest: bad block bounds");
  const std::size_t dim = end - begin;
  if (radius_sq <= 0.0L) radius_sq = gso_norm_sq(gso, begin) * (1.0L - 1e-12L);
  if (radius_sq <= 0.0L) return result;

  EnumState<GsoT> st;
  st.gso = &gso;
  st.begin = begin;
  st.dim = dim;
  st.x.assign(dim, 0);
  st.best.assign(dim, 0);
  st.best_norm = radius_sq;
  st.found = false;
  enum_dfs(st, dim, 0.0L);

  if (st.found) {
    result.found = true;
    result.coefficients = std::move(st.best);
    result.norm_sq = st.best_norm;
  }
  return result;
}

}  // namespace

long double norm_sq(const std::vector<std::int64_t>& v) { return dot_ll(v, v); }

Gso compute_gso(const Basis& basis) {
  check_rectangular(basis);
  const std::size_t n = basis.size();
  Gso gso;
  gso.mu.assign(n, {});
  gso.norms_sq.assign(n, 0.0L);
  std::vector<std::vector<long double>> star(
      n, std::vector<long double>(basis.front().size(), 0.0L));
  for (std::size_t i = 0; i < n; ++i) {
    gso.mu[i].assign(i, 0.0L);
    for (std::size_t c = 0; c < basis[i].size(); ++c) {
      star[i][c] = static_cast<long double>(basis[i][c]);
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (gso.norms_sq[j] <= 0.0L) {
        gso.mu[i][j] = 0.0L;
        continue;
      }
      long double proj = 0.0L;
      for (std::size_t c = 0; c < basis[i].size(); ++c) {
        proj += static_cast<long double>(basis[i][c]) * star[j][c];
      }
      const long double mu = proj / gso.norms_sq[j];
      gso.mu[i][j] = mu;
      for (std::size_t c = 0; c < star[i].size(); ++c) star[i][c] -= mu * star[j][c];
    }
    long double ns = 0.0L;
    for (const long double v : star[i]) ns += v * v;
    gso.norms_sq[i] = ns;
  }
  return gso;
}

FlatGso::FlatGso(const Basis& basis)
    : FlatGso(basis.size(), basis.front().size()) {}

FlatGso::FlatGso(std::size_t rows_capacity, std::size_t cols)
    : rows_(rows_capacity), cols_(cols) {
  star_.assign(rows_ * cols_, 0.0L);
  mu_.assign(rows_ * rows_, 0.0L);
  norms_sq_.assign(rows_, 0.0L);
}

void FlatGso::ensure(std::size_t i, const Basis& basis) {
  if (basis.size() > rows_) {
    // Defensive growth (BKZ pre-sizes capacity, so this is cold): restride
    // the buffers and recompute from scratch.
    rows_ = basis.size();
    star_.assign(rows_ * cols_, 0.0L);
    mu_.assign(rows_ * rows_, 0.0L);
    norms_sq_.assign(rows_, 0.0L);
    valid_ = 0;
  }
  while (valid_ <= i) {
    const std::size_t r = valid_;
    long double* star_r = star_.data() + r * cols_;
    long double* mu_r = mu_.data() + r * rows_;
    for (std::size_t c = 0; c < cols_; ++c) {
      star_r[c] = static_cast<long double>(basis[r][c]);
    }
    for (std::size_t j = 0; j < r; ++j) {
      if (norms_sq_[j] <= 0.0L) {
        mu_r[j] = 0.0L;
        continue;
      }
      const long double* star_j = star_.data() + j * cols_;
      long double proj = 0.0L;
      for (std::size_t c = 0; c < cols_; ++c) {
        proj += static_cast<long double>(basis[r][c]) * star_j[c];
      }
      const long double m = proj / norms_sq_[j];
      mu_r[j] = m;
      for (std::size_t c = 0; c < cols_; ++c) star_r[c] -= m * star_j[c];
    }
    long double ns = 0.0L;
    for (std::size_t c = 0; c < cols_; ++c) ns += star_r[c] * star_r[c];
    norms_sq_[r] = ns;
    ++valid_;
  }
}

std::size_t lll_reduce(Basis& basis, const LllParams& params) {
  check_rectangular(basis);
  if (!(params.delta > 0.25 && params.delta <= 1.0))
    throw std::invalid_argument("lll_reduce: delta must be in (1/4, 1]");
  if (basis.size() < 2) return 0;
  return lll_core(basis, params.delta, /*remove_dependencies=*/false);
}

std::size_t lll_reduce_reference(Basis& basis, const LllParams& params) {
  check_rectangular(basis);
  if (!(params.delta > 0.25 && params.delta <= 1.0))
    throw std::invalid_argument("lll_reduce: delta must be in (1/4, 1]");
  if (basis.size() < 2) return 0;
  return lll_core_reference(basis, params.delta, /*remove_dependencies=*/false);
}

bool is_lll_reduced(const Basis& basis, double delta, double tolerance) {
  const Gso gso = compute_gso(basis);
  const std::size_t n = basis.size();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      if (fabsl(gso.mu[i][j]) > 0.5L + static_cast<long double>(tolerance))
        return false;
    }
  }
  for (std::size_t k = 1; k < n; ++k) {
    const long double lhs = gso.norms_sq[k];
    const long double rhs =
        (static_cast<long double>(delta) - gso.mu[k][k - 1] * gso.mu[k][k - 1]) *
        gso.norms_sq[k - 1];
    if (lhs < rhs * (1.0L - static_cast<long double>(tolerance))) return false;
  }
  return true;
}

EnumResult enumerate_shortest(const Gso& gso, std::size_t begin, std::size_t end,
                              long double radius_sq) {
  if (end > gso.norms_sq.size())
    throw std::invalid_argument("enumerate_shortest: bad block bounds");
  return enumerate_shortest_impl(gso, begin, end, radius_sq);
}

EnumResult enumerate_shortest(const FlatGso& gso, std::size_t begin, std::size_t end,
                              long double radius_sq) {
  return enumerate_shortest_impl(gso, begin, end, radius_sq);
}

std::size_t bkz_reduce(Basis& basis, const BkzParams& params) {
  check_rectangular(basis);
  if (params.block_size < 2) throw std::invalid_argument("bkz_reduce: block size < 2");
  if (!(params.delta > 0.25 && params.delta <= 1.0))
    throw std::invalid_argument("lll_reduce: delta must be in (1/4, 1]");
  // One GSO for the whole reduction: block positions whose prefix did not
  // change since the last visit re-read valid rows for free, and an
  // insertion at k recomputes rows >= k only. Capacity +1 covers the
  // transient row that insertion adds before dependency removal drops one.
  FlatGso gso(basis.size() + 1, basis.front().size());
  if (basis.size() >= 2) lll_core(basis, params.delta, /*remove_dependencies=*/false, gso);
  std::size_t insertions = 0;

  for (std::size_t tour = 0; tour < params.max_tours; ++tour) {
    bool changed = false;
    for (std::size_t k = 0; k + 1 < basis.size(); ++k) {
      const std::size_t end = std::min(k + params.block_size, basis.size());
      gso.ensure(end - 1, basis);
      const EnumResult best = enumerate_shortest(gso, k, end);
      if (!best.found) continue;
      if (best.norm_sq >= gso.norms_sq(k) * (1.0L - 1e-9L)) continue;
      // Form v = sum_j c_j b_{k+j}, insert before position k, and let LLL
      // with dependency removal restore a proper basis.
      std::vector<std::int64_t> new_row(basis.front().size(), 0);
      for (std::size_t j = 0; j < best.coefficients.size(); ++j) {
        axpy(new_row, -best.coefficients[j], basis[k + j]);
      }
      basis.insert(basis.begin() + static_cast<std::ptrdiff_t>(k), std::move(new_row));
      gso.invalidate_from(k);
      lll_core(basis, params.delta, /*remove_dependencies=*/true, gso);
      ++insertions;
      changed = true;
    }
    if (!changed) break;
  }
  return insertions;
}

std::size_t bkz_reduce_reference(Basis& basis, const BkzParams& params) {
  check_rectangular(basis);
  if (params.block_size < 2) throw std::invalid_argument("bkz_reduce: block size < 2");
  lll_reduce(basis, {params.delta});
  std::size_t insertions = 0;

  for (std::size_t tour = 0; tour < params.max_tours; ++tour) {
    bool changed = false;
    for (std::size_t k = 0; k + 1 < basis.size(); ++k) {
      const std::size_t end = std::min(k + params.block_size, basis.size());
      const Gso gso = compute_gso(basis);
      const EnumResult best = enumerate_shortest(gso, k, end);
      if (!best.found) continue;
      if (best.norm_sq >= gso.norms_sq[k] * (1.0L - 1e-9L)) continue;
      std::vector<std::int64_t> new_row(basis.front().size(), 0);
      for (std::size_t j = 0; j < best.coefficients.size(); ++j) {
        axpy(new_row, -best.coefficients[j], basis[k + j]);
      }
      basis.insert(basis.begin() + static_cast<std::ptrdiff_t>(k), std::move(new_row));
      lll_core(basis, params.delta, /*remove_dependencies=*/true);
      ++insertions;
      changed = true;
    }
    if (!changed) break;
  }
  return insertions;
}

std::vector<std::int64_t> babai_nearest_plane(const Basis& basis,
                                              const std::vector<std::int64_t>& target) {
  check_rectangular(basis);
  if (target.size() != basis.front().size())
    throw std::invalid_argument("babai_nearest_plane: target dimension mismatch");
  const Gso gso = compute_gso(basis);

  // Track the residual in long double; subtract the rounded projection onto
  // each b*_i from last to first, accumulating the lattice point exactly in
  // integers.
  std::vector<long double> residual(target.size());
  for (std::size_t c = 0; c < target.size(); ++c) {
    residual[c] = static_cast<long double>(target[c]);
  }
  // Recompute b* once (compute_gso gives mu and norms; rebuild star vectors).
  std::vector<std::vector<long double>> star(
      basis.size(), std::vector<long double>(target.size(), 0.0L));
  for (std::size_t i = 0; i < basis.size(); ++i) {
    for (std::size_t c = 0; c < target.size(); ++c) {
      star[i][c] = static_cast<long double>(basis[i][c]);
    }
    for (std::size_t j = 0; j < i; ++j) {
      for (std::size_t c = 0; c < target.size(); ++c) {
        star[i][c] -= gso.mu[i][j] * star[j][c];
      }
    }
  }

  std::vector<std::int64_t> lattice_point(target.size(), 0);
  for (std::size_t ii = basis.size(); ii-- > 0;) {
    if (gso.norms_sq[ii] <= 0.0L) continue;
    long double proj = 0.0L;
    for (std::size_t c = 0; c < target.size(); ++c) proj += residual[c] * star[ii][c];
    const auto coeff = static_cast<std::int64_t>(llroundl(proj / gso.norms_sq[ii]));
    if (coeff != 0) {
      for (std::size_t c = 0; c < target.size(); ++c) {
        lattice_point[c] += coeff * basis[ii][c];
        residual[c] -= static_cast<long double>(coeff * basis[ii][c]);
      }
    }
  }
  return lattice_point;
}

std::vector<std::int64_t> shortest_row(const Basis& basis) {
  check_rectangular(basis);
  std::size_t best = 0;
  long double best_norm = std::numeric_limits<long double>::max();
  for (std::size_t i = 0; i < basis.size(); ++i) {
    const long double ns = norm_sq(basis[i]);
    if (ns > 0.0L && ns < best_norm) {
      best_norm = ns;
      best = i;
    }
  }
  return basis[best];
}

}  // namespace reveal::lattice
