#pragma once
// Chen-Nguyen-style BKZ profile simulation (CN11, "BKZ 2.0" simulator)
// over log Gram-Schmidt norms, and the "2016 estimate" intersect search
// built on it.
//
// The closed-form GSA estimator in src/lwe/dbdd.cpp assumes a perfectly
// geometric profile; the simulator instead evolves an explicit profile
// l_i = ln ||b*_i|| tour by tour: position k is replaced by the Gaussian
// heuristic log-radius of the projected block [k, k+b) whose volume is
// what remains after the already-fixed prefix (so total log-volume is
// conserved), the final position absorbing the exact remainder. The fast
// path keeps per-tour prefix sums — O(d) per tour — and finds the smallest
// successful block size by bisection with a walk-down verification; the
// reference path recomputes every block volume naively and scans block
// sizes linearly. Both share the same per-position update rule, so their
// profiles agree to ~1e-12 and the returned block sizes match (fuzzed).
//
// Success predicate (primal uSVP "2016 estimate", profile normalized so
// the target has unit per-coordinate norm): BKZ-beta succeeds iff
//     0.5*ln(beta) <= l_{d-beta}   (0-indexed, post-simulation profile).

#include <cstddef>
#include <vector>

namespace reveal::lattice {

struct BkzSimParams {
  /// Tour budget per block size. Smooth profiles converge (and break out)
  /// within tens of tours; the cliff-shaped profiles produced by many
  /// perfect hints need ~1000 tours for the reduction wave to cross the
  /// cliff, hence the generous default.
  std::size_t max_tours = 2048;
  double convergence = 1e-12;     ///< stop tours when no l_i moves more
};

/// Root-Hermite factor delta(beta). Uses the asymptotic formula
/// ((pi*beta)^(1/beta) * beta / (2*pi*e))^(1/(2*(beta-1))) for beta >= 36
/// and a log-linear interpolation down to delta(2) = 1.0219 below (the
/// experimental root-Hermite factor of LLL-ish reduction). This is the
/// single definition; lwe::bkz_delta forwards here.
[[nodiscard]] double root_hermite_delta(double beta);

/// Natural-log Gaussian-heuristic radius of a rank-`b` lattice with
/// log-volume `log_vol`: ln( (Gamma(b/2+1) e^{log_vol})^{1/b} / sqrt(pi) ).
[[nodiscard]] double log_gaussian_heuristic(std::size_t b, double log_vol);

/// Expected log-norm of the first vector of a (BKZ-)reduced rank-`b` block
/// of log-volume `log_vol` — the simulator's per-position update. Blocks of
/// rank >= 45 follow the Gaussian heuristic (the CN11 regime); smaller
/// blocks follow the root-Hermite model (b-1)*ln(delta(b)) + log_vol/b,
/// where the GH constant is known to overshoot badly (the two models agree
/// to ~1% at the b = 45 crossover).
[[nodiscard]] double log_block_head(std::size_t b, double log_vol);

/// Simulates `params.max_tours` BKZ-`beta` tours on `log_profile`
/// (l_i = ln ||b*_i||). Fast path: prefix-summed block volumes.
[[nodiscard]] std::vector<double> simulate_bkz_profile(
    std::vector<double> log_profile, std::size_t beta,
    const BkzSimParams& params = {});

/// The pre-optimization simulation: naive per-position block-volume sums.
/// Differential anchor for simulate_bkz_profile.
[[nodiscard]] std::vector<double> simulate_bkz_profile_reference(
    std::vector<double> log_profile, std::size_t beta,
    const BkzSimParams& params = {});

/// Smallest integer block size beta in [2, d] whose simulated profile
/// satisfies the success predicate above; returns d if none does. Fast
/// path: bisection over beta plus a bounded walk-down re-verification.
[[nodiscard]] double simulated_intersect_beta(
    const std::vector<double>& log_profile, const BkzSimParams& params = {});

/// Linear-scan anchor for simulated_intersect_beta (first successful beta
/// counting up from 2, reference simulation per candidate).
[[nodiscard]] double simulated_intersect_beta_reference(
    const std::vector<double>& log_profile, const BkzSimParams& params = {});

}  // namespace reveal::lattice
