#include "lattice/bkz_sim.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace reveal::lattice {

namespace {

constexpr double kTwoPiE = 2.0 * std::numbers::pi * std::numbers::e;
constexpr double kSmallBeta = 2.0;
constexpr double kSmallBetaDelta = 1.0219;  // experimental rhf of LLL-ish reduction
constexpr double kFormulaFloor = 36.0;
/// Below this block rank the Gaussian heuristic overstates reduction power
/// (tiny blocks "win" far too much per tour and flatten the profile); the
/// simulator switches to the root-Hermite model there. 45 is the CN11
/// choice of where GH behaviour sets in.
constexpr std::size_t kGhMinRank = 45;

double delta_formula(double beta) {
  return std::pow(std::pow(std::numbers::pi * beta, 1.0 / beta) * beta / kTwoPiE,
                  1.0 / (2.0 * (beta - 1.0)));
}

/// Shared per-tour update rule. The fast path carries the old-profile
/// prefix sums and the running new-prefix accumulator; the reference path
/// re-sums both naively at every position. Both accumulate in index order,
/// so every intermediate value — and therefore the whole simulation — is
/// bit-identical between the two.
std::vector<double> simulate_impl(std::vector<double> l, std::size_t beta,
                                  const BkzSimParams& params, bool fast) {
  const std::size_t d = l.size();
  if (d == 0) throw std::invalid_argument("bkz_sim: empty profile");
  if (beta < 2 || d < 2) return l;

  std::vector<double> next(d, 0.0);
  std::vector<double> prefix(d + 1, 0.0);
  for (std::size_t tour = 0; tour < params.max_tours; ++tour) {
    if (fast) {
      for (std::size_t j = 0; j < d; ++j) prefix[j + 1] = prefix[j] + l[j];
    }
    double new_acc = 0.0;
    bool untouched = true;  // CN11's phi: no position improved yet this tour
    double max_delta = 0.0;
    for (std::size_t k = 0; k < d; ++k) {
      const std::size_t b = std::min(beta, d - k);
      // Volume of the projected block [k, k+b): what the first k+b old
      // positions held, minus what the already-fixed new prefix consumed.
      double log_vol;
      if (fast) {
        log_vol = prefix[k + b] - new_acc;
      } else {
        double po = 0.0;
        for (std::size_t j = 0; j < k + b; ++j) po += l[j];
        double pn = 0.0;
        for (std::size_t j = 0; j < k; ++j) pn += next[j];
        log_vol = po - pn;
      }
      double val;
      if (b == 1) {
        val = log_vol;  // last position absorbs the exact remainder
      } else {
        const double g = log_block_head(b, log_vol);
        if (untouched) {
          if (g < l[k]) {
            val = g;
            untouched = false;
          } else {
            val = l[k];
          }
        } else {
          val = g;
        }
      }
      max_delta = std::max(max_delta, std::fabs(val - l[k]));
      next[k] = val;
      if (fast) new_acc += val;
    }
    l.swap(next);
    if (max_delta <= params.convergence) break;
  }
  return l;
}

bool intersect_predicate(const std::vector<double>& profile, std::size_t beta,
                         const BkzSimParams& params, bool fast) {
  const std::size_t d = profile.size();
  const std::vector<double> sim = simulate_impl(profile, beta, params, fast);
  return 0.5 * std::log(static_cast<double>(beta)) <= sim[d - beta];
}

}  // namespace

double root_hermite_delta(double beta) {
  if (beta < kSmallBeta) beta = kSmallBeta;
  if (beta >= kFormulaFloor) return delta_formula(beta);
  // Log-linear interpolation between (2, 1.0219) and (36, formula(36)).
  const double lo = std::log(kSmallBetaDelta);
  const double hi = std::log(delta_formula(kFormulaFloor));
  const double t = (beta - kSmallBeta) / (kFormulaFloor - kSmallBeta);
  return std::exp(lo + t * (hi - lo));
}

double log_gaussian_heuristic(std::size_t b, double log_vol) {
  const double bd = static_cast<double>(b);
  return (std::lgamma(0.5 * bd + 1.0) + log_vol) / bd -
         0.5 * std::log(std::numbers::pi);
}

double log_block_head(std::size_t b, double log_vol) {
  if (b >= kGhMinRank) return log_gaussian_heuristic(b, log_vol);
  const double bd = static_cast<double>(b);
  return (bd - 1.0) * std::log(root_hermite_delta(bd)) + log_vol / bd;
}

std::vector<double> simulate_bkz_profile(std::vector<double> log_profile,
                                         std::size_t beta,
                                         const BkzSimParams& params) {
  return simulate_impl(std::move(log_profile), beta, params, /*fast=*/true);
}

std::vector<double> simulate_bkz_profile_reference(std::vector<double> log_profile,
                                                   std::size_t beta,
                                                   const BkzSimParams& params) {
  return simulate_impl(std::move(log_profile), beta, params, /*fast=*/false);
}

double simulated_intersect_beta(const std::vector<double>& log_profile,
                                const BkzSimParams& params) {
  const std::size_t d = log_profile.size();
  if (d < 2)
    throw std::invalid_argument("simulated_intersect_beta: profile too small");
  const auto pred = [&](std::size_t beta) {
    return intersect_predicate(log_profile, beta, params, /*fast=*/true);
  };
  if (pred(2)) return 2.0;
  if (!pred(d)) return static_cast<double>(d);
  // Bisection on the (empirically monotone) predicate, then a walk-down
  // re-verification so a locally non-monotone boundary still lands on the
  // bottom of the successful run.
  std::size_t lo = 2;  // pred(lo) == false
  std::size_t hi = d;  // pred(hi) == true
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (pred(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  while (hi > 2 && pred(hi - 1)) --hi;
  return static_cast<double>(hi);
}

double simulated_intersect_beta_reference(const std::vector<double>& log_profile,
                                          const BkzSimParams& params) {
  const std::size_t d = log_profile.size();
  if (d < 2)
    throw std::invalid_argument("simulated_intersect_beta: profile too small");
  for (std::size_t beta = 2; beta <= d; ++beta) {
    if (intersect_predicate(log_profile, beta, params, /*fast=*/false))
      return static_cast<double>(beta);
  }
  return static_cast<double>(d);
}

}  // namespace reveal::lattice
