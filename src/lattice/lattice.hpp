#pragma once
// Integer lattice reduction: Gram-Schmidt, size reduction, LLL,
// Fincke-Pohst enumeration (SVP oracle) and BKZ.
//
// The paper uses BKZ block size ("bikz") as its security metric and relies
// on lattice reduction to "explore the remaining search space". This module
// provides a real (laptop-scale) implementation so the hint-reduced toy
// instances can actually be solved, complementing the analytic estimator in
// src/lwe/.

#include <cstdint>
#include <vector>

namespace reveal::lattice {

/// Row-major integer basis; each inner vector is one basis row.
using Basis = std::vector<std::vector<std::int64_t>>;

/// Gram-Schmidt data over long double.
struct Gso {
  std::vector<std::vector<long double>> mu;      ///< mu[i][j], j < i
  std::vector<long double> norms_sq;             ///< ||b*_i||^2
};

/// Computes the GSO of `basis` from scratch.
[[nodiscard]] Gso compute_gso(const Basis& basis);

/// Flat row-major GSO state with lazy row validity.
///
/// GSO row i (star_i, mu[i][0..i), ||b*_i||^2) is a pure function of basis
/// rows 0..i, evaluated here with exactly the arithmetic of compute_gso's
/// row loop. A perturbation of basis row k invalidates the GSO from row k
/// on; rows past the high-water mark are recomputed on arrival. Reads
/// therefore always observe the same long double values a full compute_gso
/// of the current basis would produce — which is what makes lll_reduce and
/// bkz_reduce byte-identical to their reference loops — while a
/// size-reduction subtraction costs one O(k*d) row refresh instead of a
/// full O(n^2*d) recompute, and an untouched block position costs nothing.
///
/// BKZ maintains ONE FlatGso across block positions and tours (PR 4 only
/// kept it alive inside a single LLL call): construct with capacity
/// basis.size() + 1 so the insert-then-remove-dependencies cycle fits
/// without reallocation.
class FlatGso {
 public:
  explicit FlatGso(const Basis& basis);
  /// Capacity form: room for `rows_capacity` basis rows of `cols` columns.
  FlatGso(std::size_t rows_capacity, std::size_t cols);

  [[nodiscard]] long double mu(std::size_t i, std::size_t j) const noexcept {
    return mu_[i * rows_ + j];
  }
  [[nodiscard]] long double norms_sq(std::size_t i) const noexcept {
    return norms_sq_[i];
  }

  /// Marks GSO rows >= row as stale (basis row `row` was just modified,
  /// inserted, swapped, or erased).
  void invalidate_from(std::size_t row) noexcept {
    valid_ = valid_ < row ? valid_ : row;
  }

  /// Recomputes stale rows up to and including `i` from the current basis.
  /// `basis.size()` may differ from the constructed capacity (BKZ inserts
  /// a row, dependency removal erases one); the flat buffers keep their
  /// stride and grow only if the basis outgrows them.
  void ensure(std::size_t i, const Basis& basis);

 private:
  std::size_t rows_;  ///< buffer stride (the constructed row capacity)
  std::size_t cols_;
  std::size_t valid_ = 0;  ///< rows [0, valid_) agree with the current basis
  std::vector<long double> star_;
  std::vector<long double> mu_;
  std::vector<long double> norms_sq_;
};

/// Squared Euclidean norm of an integer vector (128-bit accumulation).
[[nodiscard]] long double norm_sq(const std::vector<std::int64_t>& v);

struct LllParams {
  double delta = 0.99;  ///< Lovász parameter in (1/4, 1]
};

/// In-place LLL reduction; returns the number of swaps performed.
///
/// Runs the flat-storage kernel: GSO rows live in row-major long double
/// buffers with a validity high-water mark, and a perturbation of basis row
/// k (size-reduction subtraction, swap, erase) invalidates only rows >= k —
/// invalid rows are recomputed on arrival. Every GSO row is a pure function
/// of the basis prefix computed with the same arithmetic as compute_gso, so
/// the reduced basis and swap count are byte-identical to
/// lll_reduce_reference for every input.
std::size_t lll_reduce(Basis& basis, const LllParams& params = {});

/// The pre-optimization LLL loop that recomputes the full GSO from scratch
/// after every perturbation. Kept as the differential anchor for
/// lll_reduce's flat incremental kernel.
std::size_t lll_reduce_reference(Basis& basis, const LllParams& params = {});

/// True if `basis` is (delta-)LLL-reduced (size-reduced + Lovász).
[[nodiscard]] bool is_lll_reduced(const Basis& basis, double delta = 0.99,
                                  double tolerance = 1e-6);

/// Result of an SVP enumeration call.
struct EnumResult {
  bool found = false;
  std::vector<std::int64_t> coefficients;  ///< w.r.t. the (projected) block
  long double norm_sq = 0.0;
};

/// Schnorr-Euchner enumeration of the projected block [begin, end) of the
/// GSO: finds the shortest nonzero vector in that projected sublattice with
/// squared norm below `radius_sq` (pass <= 0 to use ||b*_begin||^2).
[[nodiscard]] EnumResult enumerate_shortest(const Gso& gso, std::size_t begin,
                                            std::size_t end, long double radius_sq = 0.0);

/// Same search over a maintained FlatGso (rows [0, end) must be ensured).
/// Identical long double arithmetic, so the result is byte-identical to
/// the Gso overload on equal GSO values.
[[nodiscard]] EnumResult enumerate_shortest(const FlatGso& gso, std::size_t begin,
                                            std::size_t end, long double radius_sq = 0.0);

struct BkzParams {
  std::size_t block_size = 20;
  std::size_t max_tours = 16;
  double delta = 0.99;
};

/// In-place BKZ reduction; returns the number of block insertions.
///
/// Maintains a single FlatGso across block positions and tours: an
/// insertion at position k invalidates rows >= k only, and converged tours
/// re-read valid rows without recomputing anything — against the
/// reference's full compute_gso per position. Every GSO value read equals
/// the reference's, so basis and insertion count are byte-identical to
/// bkz_reduce_reference (fuzzed + gated in bench_lattice).
std::size_t bkz_reduce(Basis& basis, const BkzParams& params);

/// The pre-optimization BKZ loop (full GSO recompute at every block
/// position, per-call LLL GSO state). Differential anchor for bkz_reduce.
std::size_t bkz_reduce_reference(Basis& basis, const BkzParams& params);

/// Shortest basis row after reduction (by Euclidean norm).
[[nodiscard]] std::vector<std::int64_t> shortest_row(const Basis& basis);

/// Babai's nearest-plane algorithm: the lattice vector close to `target`
/// found by rounding along the (ideally LLL-reduced) basis's Gram-Schmidt
/// directions. Succeeds exactly when the offset lies in the fundamental
/// parallelepiped of the GSO — i.e. for errors below ~min ||b*_i||/2.
[[nodiscard]] std::vector<std::int64_t> babai_nearest_plane(
    const Basis& basis, const std::vector<std::int64_t>& target);

}  // namespace reveal::lattice
