#pragma once
// Power-trace containers and binary I/O.

#include <cstdint>
#include <string>
#include <vector>

namespace reveal::sca {

/// One power measurement: samples plus an optional integer label
/// (the profiled secret value; kNoLabel for attack traces).
struct Trace {
  static constexpr std::int32_t kNoLabel = INT32_MIN;

  std::vector<double> samples;
  std::int32_t label = kNoLabel;

  [[nodiscard]] std::size_t size() const noexcept { return samples.size(); }
};

/// A set of traces (not necessarily equal length).
class TraceSet {
 public:
  TraceSet() = default;

  void add(Trace trace) { traces_.push_back(std::move(trace)); }
  [[nodiscard]] std::size_t size() const noexcept { return traces_.size(); }
  [[nodiscard]] bool empty() const noexcept { return traces_.empty(); }
  [[nodiscard]] const Trace& operator[](std::size_t i) const noexcept { return traces_[i]; }
  [[nodiscard]] Trace& operator[](std::size_t i) noexcept { return traces_[i]; }
  [[nodiscard]] auto begin() const noexcept { return traces_.begin(); }
  [[nodiscard]] auto end() const noexcept { return traces_.end(); }
  void clear() noexcept { traces_.clear(); }

  /// Minimum sample count across traces (0 if empty).
  [[nodiscard]] std::size_t min_length() const noexcept;

  /// Binary round-trip (throws std::runtime_error on I/O or format errors).
  void save(const std::string& path) const;
  [[nodiscard]] static TraceSet load(const std::string& path);

 private:
  std::vector<Trace> traces_;
};

/// Z-normalizes samples in place (zero mean, unit variance; no-op for
/// constant traces).
void normalize(Trace& trace) noexcept;

/// Mean trace of all traces in `set` truncated to the common length;
/// throws std::invalid_argument if the set is empty.
[[nodiscard]] std::vector<double> mean_trace(const TraceSet& set);

}  // namespace reveal::sca
