#include "sca/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace reveal::sca {

std::size_t rank_of_truth(const std::vector<std::int32_t>& support,
                          const std::vector<double>& posterior, std::int32_t truth) {
  if (support.size() != posterior.size())
    throw std::invalid_argument("rank_of_truth: support/posterior size mismatch");
  double truth_prob = -1.0;
  for (std::size_t i = 0; i < support.size(); ++i) {
    if (support[i] == truth) {
      truth_prob = posterior[i];
      break;
    }
  }
  if (truth_prob < 0.0) return support.size() + 1;
  std::size_t rank = 1;
  for (const double p : posterior) {
    if (p > truth_prob) ++rank;
  }
  return rank;
}

void RankAccumulator::add(std::size_t rank) {
  if (rank == 0) throw std::invalid_argument("RankAccumulator: ranks are 1-based");
  ranks_.push_back(rank);
}

void RankAccumulator::merge(const RankAccumulator& other) {
  ranks_.insert(ranks_.end(), other.ranks_.begin(), other.ranks_.end());
}

double RankAccumulator::guessing_entropy() const {
  if (ranks_.empty()) return 0.0;
  double acc = 0.0;
  for (const std::size_t r : ranks_) acc += static_cast<double>(r);
  return acc / static_cast<double>(ranks_.size());
}

double RankAccumulator::success_rate_at(std::size_t k) const {
  if (ranks_.empty()) return 0.0;
  std::size_t hits = 0;
  for (const std::size_t r : ranks_) hits += (r <= k);
  return static_cast<double>(hits) / static_cast<double>(ranks_.size());
}

std::size_t RankAccumulator::median_rank() const {
  if (ranks_.empty()) return 0;
  std::vector<std::size_t> sorted = ranks_;
  std::sort(sorted.begin(), sorted.end());
  return sorted[sorted.size() / 2];
}

}  // namespace reveal::sca
