#include "sca/report.hpp"

#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "numeric/binary_io.hpp"

namespace reveal::sca {

namespace {
constexpr std::uint32_t kConfusionMarker = 0x43'4D'41'54;  // "TAMC"
// Classifier labels are sampler coefficient values (tens of classes), so a
// corrupt cell count beyond a few million is never legitimate.
constexpr std::uint64_t kMaxSerializedCells = std::uint64_t{1} << 22;
}  // namespace

void ConfusionMatrix::add(std::int32_t truth, std::int32_t predicted) {
  ++counts_[{truth, predicted}];
  ++truth_totals_[truth];
  ++pred_totals_[predicted];
  ++total_;
}

void ConfusionMatrix::merge(const ConfusionMatrix& other) {
  for (const auto& [key, c] : other.counts_) counts_[key] += c;
  for (const auto& [t, c] : other.truth_totals_) truth_totals_[t] += c;
  for (const auto& [p, c] : other.pred_totals_) pred_totals_[p] += c;
  total_ += other.total_;
}

std::size_t ConfusionMatrix::count(std::int32_t truth, std::int32_t predicted) const {
  const auto it = counts_.find({truth, predicted});
  return it == counts_.end() ? 0 : it->second;
}

std::size_t ConfusionMatrix::truth_count(std::int32_t truth) const {
  const auto it = truth_totals_.find(truth);
  return it == truth_totals_.end() ? 0 : it->second;
}

double ConfusionMatrix::percent(std::int32_t truth, std::int32_t predicted) const {
  const std::size_t denom = truth_count(truth);
  if (denom == 0) return 0.0;
  return 100.0 * static_cast<double>(count(truth, predicted)) / static_cast<double>(denom);
}

double ConfusionMatrix::overall_accuracy() const {
  if (total_ == 0) return 0.0;
  std::size_t correct = 0;
  for (const auto& [key, c] : counts_) {
    if (key.first == key.second) correct += c;
  }
  return 100.0 * static_cast<double>(correct) / static_cast<double>(total_);
}

std::vector<std::int32_t> ConfusionMatrix::truths() const {
  std::vector<std::int32_t> out;
  out.reserve(truth_totals_.size());
  for (const auto& [t, c] : truth_totals_) out.push_back(t);
  return out;
}

std::vector<std::int32_t> ConfusionMatrix::predictions() const {
  std::vector<std::int32_t> out;
  out.reserve(pred_totals_.size());
  for (const auto& [p, c] : pred_totals_) out.push_back(p);
  return out;
}

void ConfusionMatrix::save(std::ostream& out) const {
  num::io::write_pod<std::uint32_t>(out, kConfusionMarker);
  num::io::write_pod<std::uint64_t>(out, counts_.size());
  for (const auto& [key, c] : counts_) {
    num::io::write_pod<std::int32_t>(out, key.first);
    num::io::write_pod<std::int32_t>(out, key.second);
    num::io::write_pod<std::uint64_t>(out, c);
  }
}

ConfusionMatrix ConfusionMatrix::load(std::istream& in) {
  num::io::expect_marker(in, kConfusionMarker, "ConfusionMatrix");
  const auto cells = num::io::read_pod<std::uint64_t>(in);
  if (cells > kMaxSerializedCells)
    throw std::runtime_error("ConfusionMatrix::load: implausible cell count");
  ConfusionMatrix m;
  for (std::uint64_t i = 0; i < cells; ++i) {
    const auto truth = num::io::read_pod<std::int32_t>(in);
    const auto predicted = num::io::read_pod<std::int32_t>(in);
    const auto c = num::io::read_pod<std::uint64_t>(in);
    if (c == 0) throw std::runtime_error("ConfusionMatrix::load: empty cell");
    if (!m.counts_.emplace(std::make_pair(truth, predicted), c).second)
      throw std::runtime_error("ConfusionMatrix::load: duplicate cell");
    m.truth_totals_[truth] += c;
    m.pred_totals_[predicted] += c;
    m.total_ += c;
  }
  return m;
}

std::string ConfusionMatrix::to_table(std::int32_t row_lo, std::int32_t row_hi,
                                      std::int32_t col_lo, std::int32_t col_hi) const {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1);
  os << std::setw(5) << "pred\\";
  for (std::int32_t c = col_lo; c <= col_hi; ++c) os << std::setw(7) << c;
  os << '\n';
  for (std::int32_t r = row_lo; r <= row_hi; ++r) {
    os << std::setw(5) << r;
    for (std::int32_t c = col_lo; c <= col_hi; ++c) {
      os << std::setw(7) << percent(c, r);
    }
    os << '\n';
  }
  return os.str();
}

const char* to_string(SegmentationStatus status) {
  switch (status) {
    case SegmentationStatus::kOk: return "ok";
    case SegmentationStatus::kRecovered: return "recovered";
    case SegmentationStatus::kDegraded: return "degraded";
    case SegmentationStatus::kFailed: return "failed";
  }
  return "?";
}

std::string RecoveryReport::to_string() const {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2);
  os << "segmentation: " << reveal::sca::to_string(segmentation_status) << " ("
     << recovered_windows << "/" << expected_windows << " windows, "
     << segmentation_attempts << " attempt" << (segmentation_attempts == 1 ? "" : "s")
     << ", burst consistency " << burst_consistency << ")\n";
  os << "guesses:      " << ok_guesses << " ok, " << low_confidence_guesses
     << " low-confidence, " << abstained_guesses << " abstained\n";
  os << "hints:        " << perfect_hints << " perfect, " << approximate_hints
     << " approximate, " << sign_only_hints << " sign-only, " << dropped_hints
     << " dropped\n";
  os << "residual:     " << bikz << " bikz (" << bits << " bits)";
  return os.str();
}

}  // namespace reveal::sca
