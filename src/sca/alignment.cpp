#include "sca/alignment.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace reveal::sca {

namespace {

/// Pearson correlation of reference[i] vs trace[i + delay] over the valid
/// overlap; returns -2 if the overlap is shorter than `min_overlap`.
double correlation_at_delay(const std::vector<double>& reference,
                            const std::vector<double>& trace, std::ptrdiff_t delay,
                            std::size_t min_overlap) {
  const std::ptrdiff_t ref_n = static_cast<std::ptrdiff_t>(reference.size());
  const std::ptrdiff_t trace_n = static_cast<std::ptrdiff_t>(trace.size());
  const std::ptrdiff_t begin = std::max<std::ptrdiff_t>(0, -delay);
  const std::ptrdiff_t end = std::min(ref_n, trace_n - delay);
  if (end - begin < static_cast<std::ptrdiff_t>(min_overlap)) return -2.0;

  const auto len = static_cast<double>(end - begin);
  double mr = 0.0, mt = 0.0;
  for (std::ptrdiff_t i = begin; i < end; ++i) {
    mr += reference[static_cast<std::size_t>(i)];
    mt += trace[static_cast<std::size_t>(i + delay)];
  }
  mr /= len;
  mt /= len;
  double num = 0.0, dr = 0.0, dt = 0.0;
  for (std::ptrdiff_t i = begin; i < end; ++i) {
    const double xr = reference[static_cast<std::size_t>(i)] - mr;
    const double xt = trace[static_cast<std::size_t>(i + delay)] - mt;
    num += xr * xt;
    dr += xr * xr;
    dt += xt * xt;
  }
  const double denom = std::sqrt(dr * dt);
  return denom > 0.0 ? num / denom : 0.0;
}

}  // namespace

AlignmentResult find_alignment(const std::vector<double>& reference,
                               const std::vector<double>& trace,
                               std::size_t max_shift) {
  if (reference.empty() || trace.empty())
    throw std::invalid_argument("find_alignment: empty input");
  const std::size_t min_overlap =
      std::max<std::size_t>(8, std::min(reference.size(), trace.size()) / 4);

  AlignmentResult best;
  best.correlation = -2.0;
  bool any = false;
  for (std::ptrdiff_t delay = -static_cast<std::ptrdiff_t>(max_shift);
       delay <= static_cast<std::ptrdiff_t>(max_shift); ++delay) {
    const double corr = correlation_at_delay(reference, trace, delay, min_overlap);
    if (corr <= -2.0) continue;
    any = true;
    if (corr > best.correlation) {
      best.correlation = corr;
      // trace[i + delay] matches reference[i]: shifting the trace content
      // by -delay puts it on the reference time base.
      best.shift = -delay;
    }
  }
  if (!any) throw std::invalid_argument("find_alignment: max_shift leaves no overlap");
  return best;
}

std::vector<double> apply_shift(const std::vector<double>& samples, std::ptrdiff_t shift) {
  std::vector<double> out(samples.size());
  const auto n = static_cast<std::ptrdiff_t>(samples.size());
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    std::ptrdiff_t src = i - shift;
    if (src < 0) src = 0;
    if (src >= n) src = n - 1;
    out[static_cast<std::size_t>(i)] = samples[static_cast<std::size_t>(src)];
  }
  return out;
}

std::vector<AlignmentResult> align_set(TraceSet& set, const std::vector<double>& reference,
                                       std::size_t max_shift) {
  std::vector<AlignmentResult> results;
  results.reserve(set.size());
  for (std::size_t i = 0; i < set.size(); ++i) {
    const AlignmentResult r = find_alignment(reference, set[i].samples, max_shift);
    set[i].samples = apply_shift(set[i].samples, r.shift);
    results.push_back(r);
  }
  return results;
}

}  // namespace reveal::sca
