#include "sca/alignment.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "numeric/fft.hpp"

namespace reveal::sca {

namespace {

/// Pearson correlation of reference[i] vs trace[i + delay] over the valid
/// overlap; returns -2 if the overlap is shorter than `min_overlap`. This is
/// the exact kernel: the FFT path below only *screens* delays and re-scores
/// its candidates through this function, so both paths emit identical bits.
double correlation_at_delay(const std::vector<double>& reference,
                            const std::vector<double>& trace, std::ptrdiff_t delay,
                            std::size_t min_overlap) {
  const std::ptrdiff_t ref_n = static_cast<std::ptrdiff_t>(reference.size());
  const std::ptrdiff_t trace_n = static_cast<std::ptrdiff_t>(trace.size());
  const std::ptrdiff_t begin = std::max<std::ptrdiff_t>(0, -delay);
  const std::ptrdiff_t end = std::min(ref_n, trace_n - delay);
  if (end - begin < static_cast<std::ptrdiff_t>(min_overlap)) return -2.0;

  const auto len = static_cast<double>(end - begin);
  double mr = 0.0, mt = 0.0;
  for (std::ptrdiff_t i = begin; i < end; ++i) {
    mr += reference[static_cast<std::size_t>(i)];
    mt += trace[static_cast<std::size_t>(i + delay)];
  }
  mr /= len;
  mt /= len;
  double num = 0.0, dr = 0.0, dt = 0.0;
  for (std::ptrdiff_t i = begin; i < end; ++i) {
    const double xr = reference[static_cast<std::size_t>(i)] - mr;
    const double xt = trace[static_cast<std::size_t>(i + delay)] - mt;
    num += xr * xt;
    dr += xr * xr;
    dt += xt * xt;
  }
  const double denom = std::sqrt(dr * dt);
  return denom > 0.0 ? num / denom : 0.0;
}

std::size_t overlap_min(const std::vector<double>& reference,
                        const std::vector<double>& trace) {
  return std::max<std::size_t>(8, std::min(reference.size(), trace.size()) / 4);
}

/// The reference selection rule applied to an explicit delay list (which must
/// be in increasing delay order): first strict maximum wins — identical to
/// scanning every delay when the list contains every exact-maximum delay.
AlignmentResult select_best(const std::vector<double>& reference,
                            const std::vector<double>& trace,
                            const std::vector<std::ptrdiff_t>& delays,
                            std::size_t min_overlap, bool& any) {
  AlignmentResult best;
  best.correlation = -2.0;
  for (const std::ptrdiff_t delay : delays) {
    const double corr = correlation_at_delay(reference, trace, delay, min_overlap);
    if (corr <= -2.0) continue;
    any = true;
    if (corr > best.correlation) {
      best.correlation = corr;
      // trace[i + delay] matches reference[i]: shifting the trace content
      // by -delay puts it on the reference time base.
      best.shift = -delay;
    }
  }
  return best;
}

}  // namespace

AlignmentResult find_alignment_reference(const std::vector<double>& reference,
                                         const std::vector<double>& trace,
                                         std::size_t max_shift) {
  if (reference.empty() || trace.empty())
    throw std::invalid_argument("find_alignment: empty input");
  const std::size_t min_overlap = overlap_min(reference, trace);
  std::vector<std::ptrdiff_t> delays;
  delays.reserve(2 * max_shift + 1);
  for (std::ptrdiff_t delay = -static_cast<std::ptrdiff_t>(max_shift);
       delay <= static_cast<std::ptrdiff_t>(max_shift); ++delay) {
    delays.push_back(delay);
  }
  bool any = false;
  const AlignmentResult best = select_best(reference, trace, delays, min_overlap, any);
  if (!any) throw std::invalid_argument("find_alignment: max_shift leaves no overlap");
  return best;
}

AlignmentResult find_alignment(const std::vector<double>& reference,
                               const std::vector<double>& trace,
                               std::size_t max_shift) {
  if (reference.empty() || trace.empty())
    throw std::invalid_argument("find_alignment: empty input");

  // Below this work estimate the O(L * lag) scan beats three FFT passes plus
  // prefix sums; both paths produce identical bits, so this is purely a
  // crossover heuristic.
  const std::size_t scan_work =
      (2 * max_shift + 1) * std::min(reference.size(), trace.size());
  if (scan_work < (std::size_t{1} << 16))
    return find_alignment_reference(reference, trace, max_shift);

  const std::size_t min_overlap = overlap_min(reference, trace);
  const auto ref_n = static_cast<std::ptrdiff_t>(reference.size());
  const auto trace_n = static_cast<std::ptrdiff_t>(trace.size());

  // Raw cross term sum_i r[i] * t[i+d] for every lag, via one FFT pass.
  const std::vector<double> cross = num::cross_correlation(reference, trace);

  // Inclusive prefix sums (long double: keeps the screening error itself
  // from needing its own error analysis at multi-million-sample lengths).
  auto prefix = [](const std::vector<double>& v, bool squared) {
    std::vector<long double> p(v.size() + 1, 0.0L);
    for (std::size_t i = 0; i < v.size(); ++i) {
      const long double x = v[i];
      p[i + 1] = p[i] + (squared ? x * x : x);
    }
    return p;
  };
  const std::vector<long double> pr = prefix(reference, false);
  const std::vector<long double> prr = prefix(reference, true);
  const std::vector<long double> pt = prefix(trace, false);
  const std::vector<long double> ptt = prefix(trace, true);

  const double ref_norm = std::sqrt(static_cast<double>(prr[reference.size()]));
  const double trace_norm = std::sqrt(static_cast<double>(ptt[trace.size()]));
  // Conservative absolute error bound on the screened correlation's
  // numerator/denominator scale: FFT roundoff grows ~ eps * log2(n) * scale;
  // the factor below leaves two orders of magnitude of headroom.
  const double err_scale =
      1e3 * std::numeric_limits<double>::epsilon() *
      static_cast<double>(num::Fft::next_pow2(reference.size() + trace.size())) *
      (1.0 + ref_norm * trace_norm);

  struct Screened {
    std::ptrdiff_t delay;
    double corr;
    double tol;
  };
  std::vector<Screened> screened;
  screened.reserve(2 * max_shift + 1);
  bool any_valid = false;
  double best_lower = -std::numeric_limits<double>::infinity();
  for (std::ptrdiff_t delay = -static_cast<std::ptrdiff_t>(max_shift);
       delay <= static_cast<std::ptrdiff_t>(max_shift); ++delay) {
    const std::ptrdiff_t begin = std::max<std::ptrdiff_t>(0, -delay);
    const std::ptrdiff_t end = std::min(ref_n, trace_n - delay);
    if (end - begin < static_cast<std::ptrdiff_t>(min_overlap)) continue;
    any_valid = true;
    const std::ptrdiff_t cross_idx = delay + (ref_n - 1);
    if (cross_idx < 0 || cross_idx >= static_cast<std::ptrdiff_t>(cross.size()))
      continue;  // unreachable given the overlap check; guards indexing
    const auto len = static_cast<double>(end - begin);
    const auto b = static_cast<std::size_t>(begin);
    const auto e = static_cast<std::size_t>(end);
    const auto tb = static_cast<std::size_t>(begin + delay);
    const auto te = static_cast<std::size_t>(end + delay);
    const double sr = static_cast<double>(pr[e] - pr[b]);
    const double st = static_cast<double>(pt[te] - pt[tb]);
    const double srr = static_cast<double>(prr[e] - prr[b]);
    const double stt = static_cast<double>(ptt[te] - ptt[tb]);
    const double num = cross[static_cast<std::size_t>(cross_idx)] - sr * st / len;
    const double dr = srr - sr * sr / len;
    const double dt = stt - st * st / len;
    const double denom_sq = dr * dt;
    const double denom = denom_sq > 0.0 ? std::sqrt(denom_sq) : 0.0;
    // Degenerate overlaps (denom ~ 0) get an unbounded tolerance, which
    // forces them into the exact re-score set rather than trusting the
    // screen. The exact kernel then reproduces the reference's 0.0 result.
    const double tol = err_scale / std::max(denom, err_scale);
    const double corr = denom > err_scale ? num / denom : 0.0;
    screened.push_back({delay, corr, tol});
    best_lower = std::max(best_lower, corr - tol);
  }
  if (!any_valid)
    throw std::invalid_argument("find_alignment: max_shift leaves no overlap");

  // Every delay whose screened value could still reach the lower bound of
  // the maximum is re-scored exactly; all others are provably below the true
  // maximum. The candidate list is in increasing delay order, so the first
  // strict maximum matches the reference scan's winner tie-for-tie.
  std::vector<std::ptrdiff_t> candidates;
  for (const Screened& s : screened) {
    if (s.corr + s.tol >= best_lower) candidates.push_back(s.delay);
  }
  bool any = false;
  const AlignmentResult best = select_best(reference, trace, candidates, min_overlap, any);
  if (!any) throw std::invalid_argument("find_alignment: max_shift leaves no overlap");
  return best;
}

std::vector<double> apply_shift(const std::vector<double>& samples, std::ptrdiff_t shift) {
  std::vector<double> out(samples.size());
  const auto n = static_cast<std::ptrdiff_t>(samples.size());
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    std::ptrdiff_t src = i - shift;
    if (src < 0) src = 0;
    if (src >= n) src = n - 1;
    out[static_cast<std::size_t>(i)] = samples[static_cast<std::size_t>(src)];
  }
  return out;
}

std::vector<AlignmentResult> align_set(TraceSet& set, const std::vector<double>& reference,
                                       std::size_t max_shift) {
  std::vector<AlignmentResult> results;
  results.reserve(set.size());
  for (std::size_t i = 0; i < set.size(); ++i) {
    const AlignmentResult r = find_alignment(reference, set[i].samples, max_shift);
    set[i].samples = apply_shift(set[i].samples, r.shift);
    results.push_back(r);
  }
  return results;
}

}  // namespace reveal::sca
