#pragma once
// TVLA-style leakage assessment (Welch's t-test) and first-order CPA
// (correlation power analysis).
//
// The t-test is the standard certification methodology: split traces into
// two populations (e.g. fixed vs random input, or here: positive vs
// negative sampled coefficient) and flag every sample point where
// |t| > 4.5 — evidence of first-order leakage. CPA correlates a leakage
// hypothesis (e.g. the Hamming weight of the stored value) against every
// sample point; peaks locate the leaking instructions, which is an
// alternative to SOSD for point-of-interest selection.

#include <cstddef>
#include <vector>

#include "sca/trace.hpp"

namespace reveal::sca {

/// The conventional TVLA pass/fail threshold.
inline constexpr double kTvlaThreshold = 4.5;

/// Welch's t statistic per sample point between two trace populations
/// (truncated to the common minimum length). Throws std::invalid_argument
/// if either population has fewer than 2 traces.
[[nodiscard]] std::vector<double> welch_t_test(const TraceSet& population_a,
                                               const TraceSet& population_b);

struct TvlaReport {
  std::vector<double> t_values;
  double max_abs_t = 0.0;
  std::size_t max_index = 0;
  std::size_t leaking_points = 0;  ///< samples with |t| > kTvlaThreshold
  [[nodiscard]] bool leaks() const noexcept { return max_abs_t > kTvlaThreshold; }
};

/// Runs the t-test and summarizes it.
[[nodiscard]] TvlaReport tvla_assess(const TraceSet& population_a,
                                     const TraceSet& population_b);

/// First-order CPA: Pearson correlation between a per-trace hypothesis
/// value (e.g. HW of an intermediate) and each sample point. `hypotheses`
/// must align with `traces`; returns one correlation per sample point of
/// the common length. Throws on size mismatch or fewer than 3 traces.
[[nodiscard]] std::vector<double> cpa_correlation(const TraceSet& traces,
                                                  const std::vector<double>& hypotheses);

/// Second-order (univariate) t-test: each population's traces are centered
/// per sample point with the population mean and squared before the Welch
/// test — detects leakage hidden in the variance (e.g. a share-masked value
/// processed at one point).
[[nodiscard]] std::vector<double> welch_t_test_second_order(const TraceSet& population_a,
                                                            const TraceSet& population_b);

struct CpaPeak {
  std::size_t index = 0;
  double correlation = 0.0;
};

/// The `count` highest |correlation| sample points, at least `min_spacing`
/// apart, ordered by decreasing magnitude.
[[nodiscard]] std::vector<CpaPeak> cpa_peaks(const std::vector<double>& correlations,
                                             std::size_t count,
                                             std::size_t min_spacing = 1);

}  // namespace reveal::sca
