#include "sca/segmentation.hpp"

#include <algorithm>
#include <stdexcept>

namespace reveal::sca {

std::vector<double> smooth(const std::vector<double>& samples, std::size_t window) {
  if (window == 0) throw std::invalid_argument("smooth: window must be >= 1");
  if (window == 1) return samples;
  std::vector<double> out(samples.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    acc += samples[i];
    if (i >= window) acc -= samples[i - window];
    out[i] = acc / static_cast<double>(std::min(i + 1, window));
  }
  return out;
}

double auto_threshold(const std::vector<double>& samples) {
  if (samples.empty()) throw std::invalid_argument("auto_threshold: empty trace");
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  const double lo = sorted[sorted.size() * 20 / 100];
  const double hi = sorted[std::min(sorted.size() - 1, sorted.size() * 95 / 100)];
  return 0.5 * (lo + hi);
}

std::vector<Segment> segment_trace(const std::vector<double>& samples,
                                   const SegmentationConfig& config) {
  if (samples.empty()) return {};
  const std::vector<double> s = smooth(samples, config.smooth_window);
  const double threshold = config.threshold > 0.0 ? config.threshold : auto_threshold(s);

  // Find bursts: maximal runs above threshold of sufficient length.
  struct Burst {
    std::size_t begin, end;
  };
  std::vector<Burst> bursts;
  std::size_t run_start = 0;
  bool in_run = false;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    const bool above = i < s.size() && s[i] > threshold;
    if (above && !in_run) {
      run_start = i;
      in_run = true;
    } else if (!above && in_run) {
      if (i - run_start >= config.min_burst_length) bursts.push_back({run_start, i});
      in_run = false;
    }
  }

  std::vector<Segment> segments;
  segments.reserve(bursts.size());
  for (std::size_t b = 0; b < bursts.size(); ++b) {
    Segment seg;
    seg.burst_begin = bursts[b].begin;
    seg.burst_end = bursts[b].end;
    seg.window_begin = bursts[b].end;
    seg.window_end = b + 1 < bursts.size() ? bursts[b + 1].begin : samples.size();
    segments.push_back(seg);
  }
  return segments;
}

}  // namespace reveal::sca
