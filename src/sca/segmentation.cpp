#include "sca/segmentation.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace reveal::sca {

std::vector<double> smooth(const std::vector<double>& samples, std::size_t window) {
  if (window == 0) throw std::invalid_argument("smooth: window must be >= 1");
  if (window == 1) return samples;
  std::vector<double> out(samples.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    acc += samples[i];
    if (i >= window) acc -= samples[i - window];
    out[i] = acc / static_cast<double>(std::min(i + 1, window));
  }
  return out;
}

double auto_threshold(const std::vector<double>& samples) {
  if (samples.empty()) throw std::invalid_argument("auto_threshold: empty trace");
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  const double lo = sorted[sorted.size() * 20 / 100];
  const double hi = sorted[std::min(sorted.size() - 1, sorted.size() * 95 / 100)];
  // Flat / near-constant trace: the percentile midpoint would sit inside
  // the numerical-noise band and turn the whole trace into one bogus
  // burst. Signal "no separable burst level" instead.
  if (hi - lo < 1e-9 * std::max(1.0, std::abs(hi)))
    return std::numeric_limits<double>::infinity();
  return 0.5 * (lo + hi);
}

std::vector<Segment> segment_trace(const std::vector<double>& samples,
                                   const SegmentationConfig& config) {
  if (samples.empty()) return {};
  const std::vector<double> s = smooth(samples, config.smooth_window);
  const double threshold = config.threshold > 0.0 ? config.threshold : auto_threshold(s);

  // Find bursts: maximal runs above threshold of sufficient length.
  struct Burst {
    std::size_t begin, end;
  };
  std::vector<Burst> bursts;
  std::size_t run_start = 0;
  bool in_run = false;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    const bool above = i < s.size() && s[i] > threshold;
    if (above && !in_run) {
      run_start = i;
      in_run = true;
    } else if (!above && in_run) {
      if (i - run_start >= config.min_burst_length) bursts.push_back({run_start, i});
      in_run = false;
    }
  }

  std::vector<Segment> segments;
  segments.reserve(bursts.size());
  for (std::size_t b = 0; b < bursts.size(); ++b) {
    Segment seg;
    seg.burst_begin = bursts[b].begin;
    seg.burst_end = bursts[b].end;
    seg.window_begin = bursts[b].end;
    seg.window_end = b + 1 < bursts.size() ? bursts[b + 1].begin : samples.size();
    segments.push_back(seg);
  }
  return segments;
}

double burst_length_consistency(const std::vector<Segment>& segments) {
  if (segments.size() < 2) return segments.empty() ? 0.0 : 1.0;
  double mean = 0.0;
  for (const Segment& s : segments)
    mean += static_cast<double>(s.burst_end - s.burst_begin);
  mean /= static_cast<double>(segments.size());
  if (mean <= 0.0) return 0.0;
  double var = 0.0;
  for (const Segment& s : segments) {
    const double d = static_cast<double>(s.burst_end - s.burst_begin) - mean;
    var += d * d;
  }
  var /= static_cast<double>(segments.size());
  return std::clamp(1.0 - std::sqrt(var) / mean, 0.0, 1.0);
}

namespace {

double median_of(std::vector<double> v) {
  if (v.empty()) return 0.0;
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid), v.end());
  return v[mid];
}

}  // namespace

std::vector<double> score_windows(const std::vector<Segment>& segments) {
  std::vector<double> quality(segments.size(), 1.0);
  if (segments.empty()) return quality;
  std::vector<double> burst_lens, window_lens;
  burst_lens.reserve(segments.size());
  window_lens.reserve(segments.size());
  for (const Segment& s : segments) {
    burst_lens.push_back(static_cast<double>(s.burst_end - s.burst_begin));
    window_lens.push_back(static_cast<double>(s.window_end - s.window_begin));
  }
  const double burst_med = std::max(1.0, median_of(burst_lens));
  const double window_med = std::max(1.0, median_of(window_lens));
  for (std::size_t i = 0; i < segments.size(); ++i) {
    // Genuine distribution-call bursts share the multiplier's length;
    // glitch-split or merged segments deviate strongly from the median.
    const double q_burst = std::exp(-std::abs(burst_lens[i] - burst_med) / burst_med);
    // Windows vary legitimately (time-variant rejection loop), so only
    // windows much shorter than typical are suspect.
    const double q_window = std::clamp(window_lens[i] / (0.5 * window_med), 0.0, 1.0);
    quality[i] = std::min(q_burst, q_window);
  }
  return quality;
}

SegmentationResult segment_trace_robust(const std::vector<double>& samples,
                                        std::size_t expected_windows,
                                        const SegmentationConfig& base,
                                        double degraded_consistency) {
  SegmentationResult result;
  if (samples.empty() || expected_windows == 0) return result;

  auto finish = [&](std::vector<Segment> segments, const SegmentationConfig& cfg,
                    SegmentationStatus status) {
    result.segments = std::move(segments);
    result.config = cfg;
    result.burst_consistency = burst_length_consistency(result.segments);
    if (status != SegmentationStatus::kFailed &&
        result.burst_consistency < degraded_consistency)
      status = SegmentationStatus::kDegraded;
    result.status = status;
    result.window_quality = score_windows(result.segments);
    return result;
  };

  // Pass 1: the caller's config, untouched — when the capture is clean this
  // reproduces segment_trace bit-for-bit.
  std::vector<Segment> first = segment_trace(samples, base);
  ++result.attempts;
  if (first.size() == expected_windows)
    return finish(std::move(first), base, SegmentationStatus::kOk);

  // Pass 2: adaptive sweep. Threshold scaling reconnects bursts split by
  // dropout (lower) or suppresses glitch bursts (higher); wider smoothing
  // bridges jitter-torn bursts; shorter min-burst recovers time-warped
  // (compressed) bursts.
  const double base_threshold =
      base.threshold > 0.0 ? base.threshold
                           : auto_threshold(smooth(samples, base.smooth_window));
  const double threshold_scales[] = {1.0, 0.85, 1.15, 0.7, 1.3};
  const std::size_t smooth_windows[] = {
      base.smooth_window, base.smooth_window + 2,
      base.smooth_window > 2 ? base.smooth_window - 2 : 1,
      2 * base.smooth_window + 1};
  const std::size_t min_bursts[] = {base.min_burst_length,
                                    std::max<std::size_t>(4, 3 * base.min_burst_length / 4),
                                    std::max<std::size_t>(4, base.min_burst_length / 2)};

  std::vector<Segment> best = std::move(first);
  SegmentationConfig best_cfg = base;
  bool best_match = false;
  double best_consistency = burst_length_consistency(best);
  auto count_err = [&](const std::vector<Segment>& segs) {
    return segs.size() > expected_windows ? segs.size() - expected_windows
                                          : expected_windows - segs.size();
  };
  std::size_t best_err = count_err(best);

  for (const std::size_t sw : smooth_windows) {
    for (const double scale : threshold_scales) {
      for (const std::size_t mb : min_bursts) {
        SegmentationConfig cfg = base;
        cfg.smooth_window = sw;
        cfg.threshold = std::isfinite(base_threshold) ? base_threshold * scale : 0.0;
        cfg.min_burst_length = mb;
        if (sw == base.smooth_window && scale == 1.0 && mb == base.min_burst_length)
          continue;  // already tried as pass 1 (modulo auto-threshold pinning)
        std::vector<Segment> candidate = segment_trace(samples, cfg);
        ++result.attempts;
        const std::size_t err = count_err(candidate);
        const double consistency = burst_length_consistency(candidate);
        const bool match = err == 0;
        const bool better = match != best_match
                                ? match
                                : (err != best_err ? err < best_err
                                                   : consistency > best_consistency);
        if (better) {
          best = std::move(candidate);
          best_cfg = cfg;
          best_match = match;
          best_err = err;
          best_consistency = consistency;
        }
      }
    }
  }

  return finish(std::move(best), best_cfg,
                best_match ? SegmentationStatus::kRecovered : SegmentationStatus::kFailed);
}

}  // namespace reveal::sca
