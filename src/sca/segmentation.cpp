#include "sca/segmentation.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace reveal::sca {

namespace {

/// Maximal runs of smoothed samples strictly above `threshold`, with no
/// minimum-length filter. Shared by segment_trace and the sweep kernel so a
/// single O(L) scan per (smoothing, threshold) pair serves every
/// min_burst_length candidate.
struct Run {
  std::size_t begin, end;
};

std::vector<Run> runs_above(const std::vector<double>& s, double threshold) {
  std::vector<Run> runs;
  std::size_t run_start = 0;
  bool in_run = false;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    const bool above = i < s.size() && s[i] > threshold;
    if (above && !in_run) {
      run_start = i;
      in_run = true;
    } else if (!above && in_run) {
      runs.push_back({run_start, i});
      in_run = false;
    }
  }
  return runs;
}

/// Keeps runs of at least `min_burst_length` samples and turns them into
/// segments (window = gap to the next burst; the final window extends to the
/// trace end). Filtering here is equivalent to filtering during the scan.
std::vector<Segment> segments_from_runs(const std::vector<Run>& runs,
                                        std::size_t min_burst_length,
                                        std::size_t trace_size) {
  std::vector<Segment> segments;
  segments.reserve(runs.size());
  for (const Run& r : runs) {
    if (r.end - r.begin < min_burst_length) continue;
    if (!segments.empty()) segments.back().window_end = r.begin;
    Segment seg;
    seg.burst_begin = r.begin;
    seg.burst_end = r.end;
    seg.window_begin = r.end;
    seg.window_end = trace_size;  // provisional; fixed up by the next burst
    segments.push_back(seg);
  }
  return segments;
}

}  // namespace

std::vector<double> smooth(const std::vector<double>& samples, std::size_t window) {
  if (window == 0) throw std::invalid_argument("smooth: window must be >= 1");
  if (window == 1) return samples;
  std::vector<double> out(samples.size());
  // Neumaier-compensated sliding sum: the compensation term captures the
  // low-order bits lost by each add/subtract, so the error per output is
  // bounded by the window content, not by how many samples have streamed
  // through the accumulator.
  double acc = 0.0;
  double comp = 0.0;
  const auto accumulate = [&](double v) noexcept {
    const double t = acc + v;
    if (std::abs(acc) >= std::abs(v))
      comp += (acc - t) + v;
    else
      comp += (v - t) + acc;
    acc = t;
  };
  for (std::size_t i = 0; i < samples.size(); ++i) {
    accumulate(samples[i]);
    if (i >= window) accumulate(-samples[i - window]);
    out[i] = (acc + comp) / static_cast<double>(std::min(i + 1, window));
  }
  return out;
}

std::vector<double> smooth_reference(const std::vector<double>& samples,
                                     std::size_t window) {
  if (window == 0) throw std::invalid_argument("smooth: window must be >= 1");
  if (window == 1) return samples;
  std::vector<double> out(samples.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    acc += samples[i];
    if (i >= window) acc -= samples[i - window];
    out[i] = acc / static_cast<double>(std::min(i + 1, window));
  }
  return out;
}

double auto_threshold(const std::vector<double>& samples) {
  if (samples.empty()) throw std::invalid_argument("auto_threshold: empty trace");
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  const double lo = sorted[sorted.size() * 20 / 100];
  const double hi = sorted[std::min(sorted.size() - 1, sorted.size() * 95 / 100)];
  // Flat / near-constant trace: the percentile midpoint would sit inside
  // the numerical-noise band and turn the whole trace into one bogus
  // burst. Signal "no separable burst level" instead.
  if (hi - lo < 1e-9 * std::max(1.0, std::abs(hi)))
    return std::numeric_limits<double>::infinity();
  return 0.5 * (lo + hi);
}

std::vector<Segment> segment_trace(const std::vector<double>& samples,
                                   const SegmentationConfig& config) {
  if (samples.empty()) return {};
  const std::vector<double> s = smooth(samples, config.smooth_window);
  const double threshold = config.threshold > 0.0 ? config.threshold : auto_threshold(s);
  return segments_from_runs(runs_above(s, threshold), config.min_burst_length,
                            samples.size());
}

double burst_length_consistency(const std::vector<Segment>& segments) {
  if (segments.size() < 2) return segments.empty() ? 0.0 : 1.0;
  double mean = 0.0;
  for (const Segment& s : segments)
    mean += static_cast<double>(s.burst_end - s.burst_begin);
  mean /= static_cast<double>(segments.size());
  if (mean <= 0.0) return 0.0;
  double var = 0.0;
  for (const Segment& s : segments) {
    const double d = static_cast<double>(s.burst_end - s.burst_begin) - mean;
    var += d * d;
  }
  var /= static_cast<double>(segments.size());
  return std::clamp(1.0 - std::sqrt(var) / mean, 0.0, 1.0);
}

namespace {

double median_of(std::vector<double> v) {
  if (v.empty()) return 0.0;
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid), v.end());
  return v[mid];
}

}  // namespace

std::vector<double> score_windows(const std::vector<Segment>& segments) {
  std::vector<double> quality(segments.size(), 1.0);
  if (segments.empty()) return quality;
  std::vector<double> burst_lens, window_lens;
  burst_lens.reserve(segments.size());
  window_lens.reserve(segments.size());
  for (const Segment& s : segments) {
    burst_lens.push_back(static_cast<double>(s.burst_end - s.burst_begin));
    window_lens.push_back(static_cast<double>(s.window_end - s.window_begin));
  }
  const double burst_med = std::max(1.0, median_of(burst_lens));
  const double window_med = std::max(1.0, median_of(window_lens));
  for (std::size_t i = 0; i < segments.size(); ++i) {
    // Genuine distribution-call bursts share the multiplier's length;
    // glitch-split or merged segments deviate strongly from the median.
    const double q_burst = std::exp(-std::abs(burst_lens[i] - burst_med) / burst_med);
    // Windows vary legitimately (time-variant rejection loop), so only
    // windows much shorter than typical are suspect.
    const double q_window = std::clamp(window_lens[i] / (0.5 * window_med), 0.0, 1.0);
    quality[i] = std::min(q_burst, q_window);
  }
  return quality;
}

namespace {

/// The sweep grid shared by the fast and reference robust paths. Threshold
/// scaling reconnects bursts split by dropout (lower) or suppresses glitch
/// bursts (higher); wider smoothing bridges jitter-torn bursts; shorter
/// min-burst recovers time-warped (compressed) bursts.
struct SweepGrid {
  double threshold_scales[5];
  std::size_t smooth_windows[4];
  std::size_t min_bursts[3];
};

SweepGrid sweep_grid(const SegmentationConfig& base) {
  return SweepGrid{
      {1.0, 0.85, 1.15, 0.7, 1.3},
      {base.smooth_window, base.smooth_window + 2,
       base.smooth_window > 2 ? base.smooth_window - 2 : 1,
       2 * base.smooth_window + 1},
      {base.min_burst_length, std::max<std::size_t>(4, 3 * base.min_burst_length / 4),
       std::max<std::size_t>(4, base.min_burst_length / 2)}};
}

/// Shared candidate-selection state: keeps whichever segmentation is closest
/// to the expected count (ties broken by burst-length consistency), exactly
/// the predicate of the original sweep.
struct BestCandidate {
  std::vector<Segment> segments;
  SegmentationConfig config;
  bool match = false;
  std::size_t err = 0;
  double consistency = 0.0;

  static std::size_t count_err(const std::vector<Segment>& segs,
                               std::size_t expected_windows) {
    return segs.size() > expected_windows ? segs.size() - expected_windows
                                          : expected_windows - segs.size();
  }

  void consider(std::vector<Segment>&& candidate, const SegmentationConfig& cfg,
                std::size_t expected_windows) {
    const std::size_t e = count_err(candidate, expected_windows);
    const double c = burst_length_consistency(candidate);
    const bool m = e == 0;
    const bool better =
        m != match ? m : (e != err ? e < err : c > consistency);
    if (better) {
      segments = std::move(candidate);
      config = cfg;
      match = m;
      err = e;
      consistency = c;
    }
  }
};

SegmentationResult finish_robust(SegmentationResult& result, std::vector<Segment> segments,
                                 const SegmentationConfig& cfg, SegmentationStatus status,
                                 double degraded_consistency) {
  result.segments = std::move(segments);
  result.config = cfg;
  result.burst_consistency = burst_length_consistency(result.segments);
  if (status != SegmentationStatus::kFailed &&
      result.burst_consistency < degraded_consistency)
    status = SegmentationStatus::kDegraded;
  result.status = status;
  result.window_quality = score_windows(result.segments);
  return result;
}

}  // namespace

SegmentationResult segment_trace_robust(const std::vector<double>& samples,
                                        std::size_t expected_windows,
                                        const SegmentationConfig& base,
                                        double degraded_consistency) {
  SegmentationResult result;
  if (samples.empty() || expected_windows == 0) return result;

  // Pass 1: the caller's config, untouched — when the capture is clean this
  // reproduces segment_trace bit-for-bit. The smoothed trace is kept: the
  // sweep reuses it for every candidate that shares the base window.
  std::vector<double> base_smoothed = smooth(samples, base.smooth_window);
  const double pass1_threshold =
      base.threshold > 0.0 ? base.threshold : auto_threshold(base_smoothed);
  std::vector<Segment> first = segments_from_runs(
      runs_above(base_smoothed, pass1_threshold), base.min_burst_length, samples.size());
  ++result.attempts;
  if (first.size() == expected_windows)
    return finish_robust(result, std::move(first), base, SegmentationStatus::kOk,
                         degraded_consistency);

  // Pass 2: adaptive sweep over {smooth_window, threshold_scale,
  // min_burst_length}. All the per-candidate O(L) work is shared:
  //   * each distinct smooth_window is smoothed exactly once;
  //   * each distinct (smoothing, threshold) pair is scanned for
  //     above-threshold runs exactly once;
  //   * min_burst_length candidates reuse those runs through an O(#runs)
  //     filter instead of re-segmenting the trace.
  // Candidates that normalize to an identical effective configuration
  // (duplicate window/min-burst grid entries, or every threshold scale when
  // the auto threshold is degenerate) are evaluated once and skipped on
  // repeat — a duplicate can never beat the identical earlier candidate, so
  // skipping preserves the reference selection bit-for-bit.
  const double base_threshold = pass1_threshold;
  const SweepGrid grid = sweep_grid(base);

  BestCandidate best;
  best.segments = std::move(first);
  best.config = base;
  best.err = BestCandidate::count_err(best.segments, expected_windows);
  best.consistency = burst_length_consistency(best.segments);

  struct SmoothedEntry {
    std::size_t window = 0;
    std::vector<double> values;
    double auto_thr = 0.0;  // auto_threshold of this smoothing (degenerate sweeps)
    bool auto_thr_known = false;
  };
  std::vector<SmoothedEntry> smoothed;
  struct RunsEntry {
    std::size_t window;
    double threshold;
    std::vector<Run> runs;
  };
  std::vector<RunsEntry> run_cache;
  struct SeenConfig {
    std::size_t window;
    double threshold;  // effective threshold actually compared against
    std::size_t min_burst;
  };
  std::vector<SeenConfig> seen;
  // Pass 1 occupies the (base window, base threshold, base min-burst) slot.
  seen.push_back({base.smooth_window, pass1_threshold, base.min_burst_length});

  for (const std::size_t sw : grid.smooth_windows) {
    SmoothedEntry* sm = nullptr;
    for (SmoothedEntry& e : smoothed) {
      if (e.window == sw) {
        sm = &e;
        break;
      }
    }
    if (sm == nullptr) {
      SmoothedEntry e;
      e.window = sw;
      e.values = sw == base.smooth_window ? base_smoothed : smooth(samples, sw);
      smoothed.push_back(std::move(e));
      sm = &smoothed.back();
    }
    for (const double scale : grid.threshold_scales) {
      // The config handed to segment_trace by the reference sweep: a pinned
      // scaled threshold, or 0 (auto, re-derived per smoothing) when the
      // base trace had no separable burst level.
      const bool pinned = std::isfinite(base_threshold);
      double effective = pinned ? base_threshold * scale : 0.0;
      if (!pinned) {
        if (!sm->auto_thr_known) {
          sm->auto_thr = auto_threshold(sm->values);
          sm->auto_thr_known = true;
        }
        effective = sm->auto_thr;
      }
      for (const std::size_t mb : grid.min_bursts) {
        if (sw == base.smooth_window && scale == 1.0 && mb == base.min_burst_length)
          continue;  // already tried as pass 1 (modulo auto-threshold pinning)
        bool duplicate = false;
        for (const SeenConfig& s : seen) {
          if (s.window == sw && s.threshold == effective && s.min_burst == mb) {
            duplicate = true;
            break;
          }
        }
        if (duplicate) continue;
        seen.push_back({sw, effective, mb});

        RunsEntry* re = nullptr;
        for (RunsEntry& e : run_cache) {
          if (e.window == sw && e.threshold == effective) {
            re = &e;
            break;
          }
        }
        if (re == nullptr) {
          RunsEntry e;
          e.window = sw;
          e.threshold = effective;
          e.runs = runs_above(sm->values, effective);
          run_cache.push_back(std::move(e));
          re = &run_cache.back();
        }

        SegmentationConfig cfg = base;
        cfg.smooth_window = sw;
        cfg.threshold = pinned ? base_threshold * scale : 0.0;
        cfg.min_burst_length = mb;
        ++result.attempts;

        // Count the surviving bursts without materializing segments; a
        // candidate whose (match, count-error) is strictly worse than the
        // incumbent's can never win under the selection predicate, so only
        // potential winners pay for segment construction and the
        // consistency pass.
        std::size_t count = 0;
        for (const Run& r : re->runs) count += (r.end - r.begin >= mb);
        const std::size_t e = count > expected_windows ? count - expected_windows
                                                       : expected_windows - count;
        const bool m = e == 0;
        const bool maybe_better = m != best.match ? m : e <= best.err;
        if (!maybe_better) continue;
        best.consider(segments_from_runs(re->runs, mb, samples.size()), cfg,
                      expected_windows);
      }
    }
  }

  return finish_robust(result, std::move(best.segments), best.config,
                       best.match ? SegmentationStatus::kRecovered
                                  : SegmentationStatus::kFailed,
                       degraded_consistency);
}

SegmentationResult segment_trace_robust_reference(const std::vector<double>& samples,
                                                  std::size_t expected_windows,
                                                  const SegmentationConfig& base,
                                                  double degraded_consistency) {
  SegmentationResult result;
  if (samples.empty() || expected_windows == 0) return result;

  // Pass 1: identical to the fast path.
  std::vector<Segment> first = segment_trace(samples, base);
  ++result.attempts;
  if (first.size() == expected_windows)
    return finish_robust(result, std::move(first), base, SegmentationStatus::kOk,
                         degraded_consistency);

  // Pass 2: the pre-optimization sweep — every candidate re-smooths and
  // re-segments the full trace, duplicates included. Kept verbatim as the
  // differential anchor for the shared-work sweep above.
  const double base_threshold =
      base.threshold > 0.0 ? base.threshold
                           : auto_threshold(smooth(samples, base.smooth_window));
  const SweepGrid grid = sweep_grid(base);

  BestCandidate best;
  best.segments = std::move(first);
  best.config = base;
  best.err = BestCandidate::count_err(best.segments, expected_windows);
  best.consistency = burst_length_consistency(best.segments);

  for (const std::size_t sw : grid.smooth_windows) {
    for (const double scale : grid.threshold_scales) {
      for (const std::size_t mb : grid.min_bursts) {
        SegmentationConfig cfg = base;
        cfg.smooth_window = sw;
        cfg.threshold = std::isfinite(base_threshold) ? base_threshold * scale : 0.0;
        cfg.min_burst_length = mb;
        if (sw == base.smooth_window && scale == 1.0 && mb == base.min_burst_length)
          continue;  // already tried as pass 1 (modulo auto-threshold pinning)
        std::vector<Segment> candidate = segment_trace(samples, cfg);
        ++result.attempts;
        best.consider(std::move(candidate), cfg, expected_windows);
      }
    }
  }

  return finish_robust(result, std::move(best.segments), best.config,
                       best.match ? SegmentationStatus::kRecovered
                                  : SegmentationStatus::kFailed,
                       degraded_consistency);
}

}  // namespace reveal::sca
