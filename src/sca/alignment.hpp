#pragma once
// Static trace alignment.
//
// Real acquisitions start at a jittery trigger; before any per-sample
// statistic (t-tests, templates) traces must be shifted onto a common time
// base. Cross-correlation against a reference pattern is the standard
// first-order fix; our segmentation is per-trace and therefore robust to a
// global offset, but the tooling is provided (and tested) for workflows
// that operate on raw trace sets.

#include <cstddef>
#include <vector>

#include "sca/trace.hpp"

namespace reveal::sca {

struct AlignmentResult {
  std::ptrdiff_t shift = 0;    ///< samples the trace was moved by (+ = right)
  double correlation = 0.0;    ///< normalized correlation at the best shift
};

/// Finds the shift of `trace` (within ±max_shift) that maximizes the
/// normalized cross-correlation with `reference`, comparing over the
/// overlapping region. Throws std::invalid_argument on empty inputs or if
/// max_shift leaves no overlap.
///
/// Large inputs run an O(L log L) FFT cross-correlation screen (numeric/fft)
/// plus prefix-sum normalization; the few delays whose screened score could
/// still reach the maximum are re-scored with the exact time-domain kernel,
/// so the returned shift and correlation are byte-identical to
/// find_alignment_reference for every input.
[[nodiscard]] AlignmentResult find_alignment(const std::vector<double>& reference,
                                             const std::vector<double>& trace,
                                             std::size_t max_shift);

/// The pre-optimization O(L * max_shift) scan over every delay. Kept as the
/// differential anchor for find_alignment's FFT path.
[[nodiscard]] AlignmentResult find_alignment_reference(
    const std::vector<double>& reference, const std::vector<double>& trace,
    std::size_t max_shift);

/// Applies a shift: positive moves content right (prepends edge padding),
/// negative moves left; output has the same length as the input.
[[nodiscard]] std::vector<double> apply_shift(const std::vector<double>& samples,
                                              std::ptrdiff_t shift);

/// Aligns every trace of `set` to `reference` in place; returns the
/// per-trace results.
std::vector<AlignmentResult> align_set(TraceSet& set,
                                       const std::vector<double>& reference,
                                       std::size_t max_shift);

}  // namespace reveal::sca
