#pragma once
// Multivariate-Gaussian template attack (Chari et al., paper §III-D).
//
// TemplateBuilder accumulates POI vectors per class; build() produces a
// TemplateSet with per-class means and a pooled covariance (pooling keeps
// the estimate well-conditioned with modest profiling counts; a ridge term
// guards against degenerate POIs). TemplateSet::log_scores returns the
// per-class log-likelihoods of an observation; posterior() turns them into
// probabilities — the raw material for the "LWE with hints" integration.
//
// Scoring is factored for the single-trace hot path: with A = Σ⁻¹ the
// squared Mahalanobis distance expands to
//
//   (x-μ_c)ᵀ A (x-μ_c) = xᵀy - 2 u_cᵀx + t_c,   y = A x,
//
// where u_c = A μ_c and t_c = μ_cᵀ u_c are precomputed per class at
// construction. One O(d²) matvec (y) is shared by all classes; each class
// then scores in O(d) instead of O(d²). log_scores / mahalanobis /
// posterior / classify all route through this single kernel (scratch is
// thread-local, so concurrent scoring from campaign workers stays safe and
// allocation-free in steady state). The pre-factorization per-class loops
// survive only as *_reference — the anchor for the equivalence tests and
// the benchmark baseline.

#include <cstdint>
#include <iosfwd>
#include <map>
#include <vector>

#include "numeric/matrix.hpp"
#include "numeric/stats.hpp"
#include "sca/trace.hpp"

namespace reveal::sca {

class TemplateSet {
 public:
  struct ClassTemplate {
    std::int32_t label = 0;
    std::vector<double> mean;
    std::size_t count = 0;
  };

  TemplateSet(std::vector<ClassTemplate> classes, num::Matrix pooled_covariance);

  [[nodiscard]] const std::vector<ClassTemplate>& classes() const noexcept {
    return classes_;
  }
  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }

  /// Log-likelihood of `observation` under each class template (same order
  /// as classes()).
  [[nodiscard]] std::vector<double> log_scores(const std::vector<double>& observation) const;

  /// Squared Mahalanobis distance of `observation` to each class mean under
  /// the pooled covariance (same order as classes()). Unlike the posterior —
  /// which only compares classes against each other — the absolute distance
  /// is a goodness-of-fit statistic: an observation far from *every*
  /// template (misaligned or corrupted window) is an outlier even when the
  /// posterior looks confident.
  [[nodiscard]] std::vector<double> mahalanobis(const std::vector<double>& observation) const;

  /// Posterior probabilities (uniform prior) aligned with classes().
  [[nodiscard]] std::vector<double> posterior(const std::vector<double>& observation) const;

  /// Label with maximal likelihood.
  [[nodiscard]] std::int32_t classify(const std::vector<double>& observation) const;

  /// Labels in template order.
  [[nodiscard]] std::vector<std::int32_t> labels() const;

  /// Pre-factorization O(d²)-per-class scoring (diff-then-quadratic-form,
  /// bit-for-bit the seed implementation). Kept as the differential-test
  /// anchor and the bench_perf baseline — not for production paths.
  [[nodiscard]] std::vector<double> mahalanobis_reference(
      const std::vector<double>& observation) const;
  [[nodiscard]] std::vector<double> log_scores_reference(
      const std::vector<double>& observation) const;

 private:
  /// The one shared scoring kernel: writes the squared Mahalanobis distance
  /// of `observation` to every class into `out` via the factored form above.
  void mahalanobis_into(const std::vector<double>& observation,
                        std::vector<double>& out) const;
  /// Shared kernel of the *_reference entry points (the seed loops).
  void mahalanobis_reference_into(const std::vector<double>& observation,
                                  std::vector<double>& out) const;

  std::vector<ClassTemplate> classes_;
  num::Matrix inv_covariance_;
  std::vector<double> sigma_inv_mu_;     ///< classes() x dim, row-major: u_c
  std::vector<double> mu_sigma_inv_mu_;  ///< per class: t_c
  double log_det_ = 0.0;
  std::size_t dim_ = 0;
};

class TemplateBuilder {
 public:
  /// `dim` = POI count of every observation.
  explicit TemplateBuilder(std::size_t dim);

  /// Adds one profiling observation for `label`.
  void add(std::int32_t label, const std::vector<double>& observation);

  [[nodiscard]] std::size_t total_count() const noexcept { return total_; }

  /// Merges another builder's per-class accumulators into this one (Chan
  /// covariance merge per class). Exact up to floating-point rounding but
  /// not bit-identical to a single streaming pass, so the byte-identical
  /// campaign path replays add() in window order instead; merge() is for
  /// throughput-oriented profiling reductions where last-ulp drift is fine.
  void merge(const TemplateBuilder& other);

  /// Builds the template set; `ridge` is added to the pooled covariance
  /// diagonal. Throws std::runtime_error if any class has < 2 observations.
  [[nodiscard]] TemplateSet build(double ridge = 1e-6) const;

  /// Exact binary snapshot of every per-class accumulator. load() restores
  /// a bit-identical builder (same floating-point trajectory on further
  /// add() calls) — the checkpoint/resume path of the recovery campaign.
  void save(std::ostream& out) const;
  [[nodiscard]] static TemplateBuilder load(std::istream& in);

  friend bool operator==(const TemplateBuilder& a, const TemplateBuilder& b) {
    return a.dim_ == b.dim_ && a.total_ == b.total_ && a.per_class_ == b.per_class_;
  }

 private:
  std::size_t dim_;
  std::size_t total_ = 0;
  std::map<std::int32_t, num::RunningCovariance> per_class_;
};

}  // namespace reveal::sca
