#include "sca/class_stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace reveal::sca {

ClassStats::ClassStats(std::size_t length) : length_(length) {
  if (length == 0) throw std::invalid_argument("ClassStats: length must be >= 1");
}

std::vector<std::int32_t> ClassStats::labels() const {
  std::vector<std::int32_t> out;
  out.reserve(classes_.size());
  for (const PerClass& c : classes_) out.push_back(c.label);
  return out;
}

std::size_t ClassStats::class_count(std::int32_t label) const {
  const PerClass* c = find(label);
  return c != nullptr ? c->count : 0;
}

ClassStats::PerClass& ClassStats::slot(std::int32_t label) {
  const auto it = std::lower_bound(
      classes_.begin(), classes_.end(), label,
      [](const PerClass& c, std::int32_t l) { return c.label < l; });
  if (it != classes_.end() && it->label == label) return *it;
  PerClass fresh;
  fresh.label = label;
  fresh.sum.assign(length_, 0.0);
  fresh.mean.assign(length_, 0.0);
  fresh.m2.assign(length_, 0.0);
  return *classes_.insert(it, std::move(fresh));
}

const ClassStats::PerClass* ClassStats::find(std::int32_t label) const noexcept {
  const auto it = std::lower_bound(
      classes_.begin(), classes_.end(), label,
      [](const PerClass& c, std::int32_t l) { return c.label < l; });
  return it != classes_.end() && it->label == label ? &*it : nullptr;
}

void ClassStats::add(std::int32_t label, const std::vector<double>& samples) {
  if (label == Trace::kNoLabel)
    throw std::invalid_argument("ClassStats::add: unlabelled trace");
  if (samples.size() < length_)
    throw std::invalid_argument("ClassStats::add: trace shorter than window");
  PerClass& c = slot(label);
  ++c.count;
  ++total_;
  const double inv_n = 1.0 / static_cast<double>(c.count);
  double* sum = c.sum.data();
  double* mean = c.mean.data();
  double* m2 = c.m2.data();
  const double* x = samples.data();
  for (std::size_t i = 0; i < length_; ++i) {
    sum[i] += x[i];
    const double delta = x[i] - mean[i];
    mean[i] += delta * inv_n;  // inv_n hoisted: no per-point divide
    m2[i] += delta * (x[i] - mean[i]);
  }
}

void ClassStats::add_all(const TraceSet& set) {
  for (const Trace& t : set) add(t.label, t.samples);
}

void ClassStats::merge(const ClassStats& other) {
  if (other.length_ != length_)
    throw std::invalid_argument("ClassStats::merge: length mismatch");
  for (const PerClass& o : other.classes_) {
    if (o.count == 0) continue;
    PerClass& c = slot(o.label);
    if (c.count == 0) {
      const std::int32_t label = c.label;
      c = o;
      c.label = label;
      total_ += o.count;
      continue;
    }
    const auto na = static_cast<double>(c.count);
    const auto nb = static_cast<double>(o.count);
    const double total = na + nb;
    for (std::size_t i = 0; i < length_; ++i) {
      c.sum[i] += o.sum[i];
      const double delta = o.mean[i] - c.mean[i];
      c.mean[i] += delta * nb / total;
      c.m2[i] += o.m2[i] + delta * delta * na * nb / total;
    }
    c.count += o.count;
    total_ += o.count;
  }
}

ClassMeans ClassStats::means() const {
  ClassMeans out;
  for (const PerClass& c : classes_) {
    if (c.count == 0) continue;
    std::vector<double> m = c.sum;
    for (double& v : m) v /= static_cast<double>(c.count);
    out.emplace(c.label, std::move(m));
  }
  return out;
}

std::vector<double> ClassStats::sosd() const {
  // Delegates to the reference pair loop over means() so the two paths can
  // never drift: the mean curves are bit-identical (see means()) and the
  // accumulation order over class pairs is literally the same code.
  return sosd_curve(means());
}

std::vector<double> ClassStats::variance(std::int32_t label) const {
  const PerClass* c = find(label);
  if (c == nullptr) throw std::invalid_argument("ClassStats::variance: unknown label");
  std::vector<double> out(length_, 0.0);
  if (c->count < 2) return out;
  const double denom = static_cast<double>(c->count - 1);
  for (std::size_t i = 0; i < length_; ++i) out[i] = c->m2[i] / denom;
  return out;
}

std::vector<double> ClassStats::welch_t(std::int32_t label_a,
                                        std::int32_t label_b) const {
  const PerClass* a = find(label_a);
  const PerClass* b = find(label_b);
  if (a == nullptr || b == nullptr || a->count < 2 || b->count < 2)
    throw std::invalid_argument("ClassStats::welch_t: each class needs >= 2 traces");
  const auto na = static_cast<double>(a->count);
  const auto nb = static_cast<double>(b->count);
  std::vector<double> t(length_, 0.0);
  for (std::size_t i = 0; i < length_; ++i) {
    // Means from the exact sum track (matching welch_t_test's sum/divide);
    // variances from the Welford track.
    const double ma = a->sum[i] / na;
    const double mb = b->sum[i] / nb;
    const double va = a->m2[i] / (na - 1.0);
    const double vb = b->m2[i] / (nb - 1.0);
    const double denom = std::sqrt(va / na + vb / nb);
    t[i] = denom > 0.0 ? (ma - mb) / denom : 0.0;
  }
  return t;
}

TvlaReport ClassStats::tvla(std::int32_t label_a, std::int32_t label_b) const {
  TvlaReport report;
  report.t_values = welch_t(label_a, label_b);
  for (std::size_t i = 0; i < report.t_values.size(); ++i) {
    const double abs_t = std::fabs(report.t_values[i]);
    if (abs_t > report.max_abs_t) {
      report.max_abs_t = abs_t;
      report.max_index = i;
    }
    if (abs_t > kTvlaThreshold) ++report.leaking_points;
  }
  return report;
}

}  // namespace reveal::sca
