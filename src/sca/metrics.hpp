#pragma once
// Standard side-channel evaluation metrics: ranks, guessing entropy and
// success rate at rank k — the vocabulary used to compare attacks beyond a
// plain top-1 confusion matrix.

#include <cstdint>
#include <vector>

namespace reveal::sca {

/// 1-based rank of the true value within a posterior: 1 = the attack's top
/// guess is correct. Ties count in favour of the attacker (lowest rank).
/// Returns support.size() + 1 if the truth is not in the support at all.
[[nodiscard]] std::size_t rank_of_truth(const std::vector<std::int32_t>& support,
                                        const std::vector<double>& posterior,
                                        std::int32_t truth);

/// Accumulates ranks over many attacked measurements.
class RankAccumulator {
 public:
  void add(std::size_t rank);

  /// Appends another accumulator's ranks in its insertion order. Per-block
  /// partials merged in block order reproduce the sequential accumulator's
  /// rank list (and therefore every derived metric) exactly — ranks are
  /// integers, so only the list order matters for the float reductions.
  void merge(const RankAccumulator& other);

  [[nodiscard]] std::size_t count() const noexcept { return ranks_.size(); }
  /// Guessing entropy: the mean rank of the correct value.
  [[nodiscard]] double guessing_entropy() const;
  /// Fraction (0..1) of measurements whose true value ranked <= k.
  [[nodiscard]] double success_rate_at(std::size_t k) const;
  /// Median rank.
  [[nodiscard]] std::size_t median_rank() const;

 private:
  std::vector<std::size_t> ranks_;
};

}  // namespace reveal::sca
