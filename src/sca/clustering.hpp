#pragma once
// Unsupervised clustering for non-profiled horizontal attacks.
//
// The paper's attack is a template attack (requires a profiling device,
// §II-B). k-means over the per-coefficient windows removes that
// requirement for the *sign* leak: the three branch patterns are so
// separable that they form clean clusters without any labels — a stronger
// threat model worth quantifying (and the basis of classic horizontal
// attacks the paper cites, e.g. Aysu et al. [19]).

#include <cstddef>
#include <cstdint>
#include <vector>

namespace reveal::sca {

struct KMeansResult {
  std::vector<std::size_t> assignment;        ///< per-point cluster index
  std::vector<std::vector<double>> centroids; ///< k centroids
  double inertia = 0.0;                       ///< sum of squared distances
  std::size_t iterations = 0;
};

/// Lloyd's k-means with k-means++-style farthest-point seeding, fixed seed
/// for determinism. Throws std::invalid_argument on empty input, k = 0,
/// k > points, or ragged point dimensions.
[[nodiscard]] KMeansResult kmeans(const std::vector<std::vector<double>>& points,
                                  std::size_t k, std::size_t max_iterations = 50,
                                  std::uint64_t seed = 1);

/// Clustering purity against ground-truth labels: for each cluster take its
/// majority label; purity = fraction of points matching their cluster's
/// majority. 1.0 = perfect separation.
[[nodiscard]] double cluster_purity(const std::vector<std::size_t>& assignment,
                                    const std::vector<int>& labels);

}  // namespace reveal::sca
