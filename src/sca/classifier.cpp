#include "sca/classifier.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace reveal::sca {

void PatternClassifier::fit(const TraceSet& labelled_windows, std::size_t prefix_length) {
  if (labelled_windows.empty())
    throw std::invalid_argument("PatternClassifier::fit: empty training set");
  const std::size_t common = labelled_windows.min_length();
  prefix_ = prefix_length == 0 ? common : prefix_length;
  if (prefix_ == 0 || prefix_ > common)
    throw std::invalid_argument("PatternClassifier::fit: prefix longer than windows");

  // Pass 1: per-class means.
  std::map<std::int32_t, std::pair<std::vector<double>, std::size_t>> acc;
  for (const Trace& t : labelled_windows) {
    if (t.label == Trace::kNoLabel)
      throw std::invalid_argument("PatternClassifier::fit: unlabelled window");
    auto& [sum, count] = acc[t.label];
    if (sum.empty()) sum.assign(prefix_, 0.0);
    for (std::size_t i = 0; i < prefix_; ++i) sum[i] += t.samples[i];
    ++count;
  }
  patterns_.clear();
  for (auto& [label, pair] : acc) {
    auto& [sum, count] = pair;
    for (double& v : sum) v /= static_cast<double>(count);
    patterns_.emplace(label, std::move(sum));
  }

  // Pass 2: pooled within-class variance per sample point.
  std::vector<double> var(prefix_, 0.0);
  std::size_t total = 0;
  for (const Trace& t : labelled_windows) {
    const auto& mean = patterns_.at(t.label);
    for (std::size_t i = 0; i < prefix_; ++i) {
      const double d = t.samples[i] - mean[i];
      var[i] += d * d;
    }
    ++total;
  }
  inv_variance_.assign(prefix_, 0.0);
  const double denom = static_cast<double>(total > patterns_.size()
                                               ? total - patterns_.size()
                                               : 1);
  for (std::size_t i = 0; i < prefix_; ++i) {
    const double v = var[i] / denom;
    inv_variance_[i] = 1.0 / (v + 1e-9);
  }
}

std::map<std::int32_t, double> PatternClassifier::distances(
    const std::vector<double>& window) const {
  if (patterns_.empty()) throw std::logic_error("PatternClassifier: not fitted");
  if (window.size() < prefix_)
    throw std::invalid_argument("PatternClassifier: window shorter than prefix");
  std::map<std::int32_t, double> out;
  for (const auto& [label, mean] : patterns_) {
    double acc = 0.0;
    for (std::size_t i = 0; i < prefix_; ++i) {
      const double d = window[i] - mean[i];
      acc += d * d * inv_variance_[i];
    }
    out.emplace(label, std::sqrt(acc));
  }
  return out;
}

std::int32_t PatternClassifier::classify(const std::vector<double>& window) const {
  const auto dists = distances(window);
  std::int32_t best_label = 0;
  double best = std::numeric_limits<double>::infinity();
  for (const auto& [label, d] : dists) {
    if (d < best) {
      best = d;
      best_label = label;
    }
  }
  return best_label;
}

}  // namespace reveal::sca
