#pragma once
// Streaming per-class trace statistics: one pass over a labelled trace set
// produces everything the analysis plane derives from it — per-class mean
// curves, per-class variance curves, the SOSD POI criterion, and Welch
// t-statistics — where the reference path (class_means + sosd_curve +
// welch_t_test) re-reads every trace three to four times.
//
// Identity contract:
//   * means() and sosd() are bit-identical to class_means()/sosd_curve()
//     fed the same traces in the same order: the mean track accumulates
//     plain per-point sums in arrival order and divides once at the end,
//     exactly like the reference.
//   * variance()/welch_t() use a per-point Welford recurrence (one pass,
//     no cancellation); they agree with the reference's two-pass variance
//     to the last few ulps and are tolerance-gated, not bit-gated.
//
// merge() combines two accumulators with per-point Chan updates —
// statistically exact, but (like RunningCovariance::merge) not bit-identical
// to streaming the union through one accumulator, because floating-point
// addition is not associative. CampaignRunner::class_stats builds partials
// over fixed index blocks and merges them in block order, which makes the
// parallel result independent of both the scheduling and the worker count.

#include <cstdint>
#include <vector>

#include "sca/poi.hpp"
#include "sca/trace.hpp"
#include "sca/tvla.hpp"

namespace reveal::sca {

class ClassStats {
 public:
  /// Accumulates the first `length` samples of every added trace
  /// (length >= 1; throws std::invalid_argument otherwise).
  explicit ClassStats(std::size_t length);

  [[nodiscard]] std::size_t length() const noexcept { return length_; }
  [[nodiscard]] std::size_t num_classes() const noexcept { return classes_.size(); }
  [[nodiscard]] std::size_t total_count() const noexcept { return total_; }
  /// Labels in increasing order (the iteration order of every per-class
  /// output, matching ClassMeans' map order).
  [[nodiscard]] std::vector<std::int32_t> labels() const;
  [[nodiscard]] std::size_t class_count(std::int32_t label) const;

  /// Adds one labelled observation. Throws std::invalid_argument if the
  /// trace is shorter than length() or the label is Trace::kNoLabel.
  void add(std::int32_t label, const std::vector<double>& samples);

  /// Adds every trace of `set` in set order (all must be labelled).
  void add_all(const TraceSet& set);

  /// Merges `other` into this accumulator (per-point Chan update of the
  /// Welford track, plain addition of the sum track). Lengths must match.
  void merge(const ClassStats& other);

  /// Per-class mean curves; bit-identical to class_means() over the same
  /// traces in the same arrival order.
  [[nodiscard]] ClassMeans means() const;

  /// SOSD curve over the class means; bit-identical to
  /// sosd_curve(class_means(...)). Throws if fewer than 2 classes.
  [[nodiscard]] std::vector<double> sosd() const;

  /// Per-point sample variance of one class (n-1 denominator; zeros for
  /// fewer than 2 observations). Throws if the label was never added.
  [[nodiscard]] std::vector<double> variance(std::int32_t label) const;

  /// Welch t statistic per sample point between two accumulated classes —
  /// the streaming counterpart of welch_t_test on the two populations.
  /// Throws std::invalid_argument unless both classes hold >= 2 traces.
  [[nodiscard]] std::vector<double> welch_t(std::int32_t label_a,
                                            std::int32_t label_b) const;

  /// TVLA summary of welch_t(label_a, label_b), mirroring tvla_assess.
  [[nodiscard]] TvlaReport tvla(std::int32_t label_a, std::int32_t label_b) const;

 private:
  struct PerClass {
    std::int32_t label = 0;
    std::size_t count = 0;
    std::vector<double> sum;   // plain per-point sums: exact means / SOSD
    std::vector<double> mean;  // Welford running mean
    std::vector<double> m2;    // Welford accumulated squared deviations
  };

  [[nodiscard]] PerClass& slot(std::int32_t label);
  [[nodiscard]] const PerClass* find(std::int32_t label) const noexcept;

  std::size_t length_ = 0;
  std::size_t total_ = 0;
  std::vector<PerClass> classes_;  // sorted by label
};

}  // namespace reveal::sca
