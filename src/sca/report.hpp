#pragma once
// Attack evaluation reports: confusion matrices and success-rate tables in
// the format of the paper's Table I.

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "sca/segmentation.hpp"

namespace reveal::sca {

/// Confusion counts between true values (columns in the paper's Table I)
/// and predicted values (rows).
class ConfusionMatrix {
 public:
  void add(std::int32_t truth, std::int32_t predicted);

  /// Adds another matrix's counts into this one. Counts are integers, so
  /// merging per-worker partials in any order equals the sequential tally
  /// — the same worker-count-invariance contract as HintTally.
  void merge(const ConfusionMatrix& other);

  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t count(std::int32_t truth, std::int32_t predicted) const;
  [[nodiscard]] std::size_t truth_count(std::int32_t truth) const;

  /// Percentage of `truth` classified as `predicted` (0 if unseen truth).
  [[nodiscard]] double percent(std::int32_t truth, std::int32_t predicted) const;
  /// Diagonal accuracy for one truth value.
  [[nodiscard]] double accuracy(std::int32_t truth) const { return percent(truth, truth); }
  /// Overall diagonal accuracy.
  [[nodiscard]] double overall_accuracy() const;

  /// All truth values seen, sorted.
  [[nodiscard]] std::vector<std::int32_t> truths() const;
  /// All predicted values seen, sorted.
  [[nodiscard]] std::vector<std::int32_t> predictions() const;

  /// Renders a Table-I style matrix restricted to columns in
  /// [col_lo, col_hi] and rows in [row_lo, row_hi].
  [[nodiscard]] std::string to_table(std::int32_t row_lo, std::int32_t row_hi,
                                     std::int32_t col_lo, std::int32_t col_hi) const;

  /// Binary snapshot of the (truth, predicted) counts; load() rebuilds the
  /// marginals from them and bounds-checks the cell count before allocating.
  void save(std::ostream& out) const;
  [[nodiscard]] static ConfusionMatrix load(std::istream& in);

 private:
  std::map<std::pair<std::int32_t, std::int32_t>, std::size_t> counts_;  // (truth, pred)
  std::map<std::int32_t, std::size_t> truth_totals_;
  std::map<std::int32_t, std::size_t> pred_totals_;
  std::size_t total_ = 0;

  friend bool operator==(const ConfusionMatrix&, const ConfusionMatrix&) = default;
};

/// Human-readable name of a segmentation status.
[[nodiscard]] const char* to_string(SegmentationStatus status);

/// Summary of a degradation-aware recovery run: how much information each
/// pipeline stage lost (segmentation -> classification -> hint routing) and
/// what residual attack cost (bikz/bits) the surviving hints imply.
struct RecoveryReport {
  // Segmentation stage.
  std::size_t expected_windows = 0;
  std::size_t recovered_windows = 0;
  SegmentationStatus segmentation_status = SegmentationStatus::kFailed;
  std::size_t segmentation_attempts = 0;
  double burst_consistency = 0.0;

  // Classification stage (guess-quality mix).
  std::size_t ok_guesses = 0;
  std::size_t low_confidence_guesses = 0;
  std::size_t abstained_guesses = 0;

  // Hint-routing stage.
  std::size_t perfect_hints = 0;
  std::size_t approximate_hints = 0;
  std::size_t sign_only_hints = 0;
  std::size_t dropped_hints = 0;

  // Residual security of the hinted instance.
  double bikz = 0.0;
  double bits = 0.0;

  [[nodiscard]] std::string to_string() const;

  /// Field-wise equality (bitwise for the doubles): the oracle the
  /// checkpoint/resume and shard-merge byte-identity tests compare against.
  friend bool operator==(const RecoveryReport&, const RecoveryReport&) = default;
};

}  // namespace reveal::sca
