#include "sca/tvla.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace reveal::sca {

namespace {

/// Per-sample mean and variance of a population over the first `len` points.
void population_stats(const TraceSet& set, std::size_t len, std::vector<double>& mean,
                      std::vector<double>& var) {
  mean.assign(len, 0.0);
  var.assign(len, 0.0);
  const auto n = static_cast<double>(set.size());
  for (const Trace& t : set) {
    for (std::size_t i = 0; i < len; ++i) mean[i] += t.samples[i];
  }
  for (double& m : mean) m /= n;
  for (const Trace& t : set) {
    for (std::size_t i = 0; i < len; ++i) {
      const double d = t.samples[i] - mean[i];
      var[i] += d * d;
    }
  }
  for (double& v : var) v /= (n - 1.0);
}

}  // namespace

std::vector<double> welch_t_test(const TraceSet& a, const TraceSet& b) {
  if (a.size() < 2 || b.size() < 2)
    throw std::invalid_argument("welch_t_test: each population needs >= 2 traces");
  const std::size_t len = std::min(a.min_length(), b.min_length());
  if (len == 0) throw std::invalid_argument("welch_t_test: empty traces");

  std::vector<double> mean_a, var_a, mean_b, var_b;
  population_stats(a, len, mean_a, var_a);
  population_stats(b, len, mean_b, var_b);

  const auto na = static_cast<double>(a.size());
  const auto nb = static_cast<double>(b.size());
  std::vector<double> t(len, 0.0);
  for (std::size_t i = 0; i < len; ++i) {
    const double denom = std::sqrt(var_a[i] / na + var_b[i] / nb);
    t[i] = denom > 0.0 ? (mean_a[i] - mean_b[i]) / denom : 0.0;
  }
  return t;
}

TvlaReport tvla_assess(const TraceSet& a, const TraceSet& b) {
  TvlaReport report;
  report.t_values = welch_t_test(a, b);
  for (std::size_t i = 0; i < report.t_values.size(); ++i) {
    const double abs_t = std::fabs(report.t_values[i]);
    if (abs_t > report.max_abs_t) {
      report.max_abs_t = abs_t;
      report.max_index = i;
    }
    if (abs_t > kTvlaThreshold) ++report.leaking_points;
  }
  return report;
}

std::vector<double> welch_t_test_second_order(const TraceSet& a, const TraceSet& b) {
  if (a.size() < 2 || b.size() < 2)
    throw std::invalid_argument("welch_t_test_second_order: each population needs >= 2 traces");
  const std::size_t len = std::min(a.min_length(), b.min_length());
  if (len == 0) throw std::invalid_argument("welch_t_test_second_order: empty traces");

  auto squared_centered = [len](const TraceSet& set) {
    std::vector<double> mean, var;
    population_stats(set, len, mean, var);
    TraceSet out;
    for (const Trace& t : set) {
      Trace s;
      s.samples.resize(len);
      for (std::size_t i = 0; i < len; ++i) {
        const double d = t.samples[i] - mean[i];
        s.samples[i] = d * d;
      }
      out.add(std::move(s));
    }
    return out;
  };
  const TraceSet sa = squared_centered(a);
  const TraceSet sb = squared_centered(b);
  return welch_t_test(sa, sb);
}

std::vector<double> cpa_correlation(const TraceSet& traces,
                                    const std::vector<double>& hypotheses) {
  if (traces.size() != hypotheses.size())
    throw std::invalid_argument("cpa_correlation: trace/hypothesis count mismatch");
  if (traces.size() < 3)
    throw std::invalid_argument("cpa_correlation: need >= 3 traces");
  const std::size_t len = traces.min_length();
  if (len == 0) throw std::invalid_argument("cpa_correlation: empty traces");

  const auto n = static_cast<double>(traces.size());
  const double h_mean =
      std::accumulate(hypotheses.begin(), hypotheses.end(), 0.0) / n;
  double h_var = 0.0;
  for (const double h : hypotheses) h_var += (h - h_mean) * (h - h_mean);

  std::vector<double> t_mean(len, 0.0);
  for (const Trace& t : traces) {
    for (std::size_t i = 0; i < len; ++i) t_mean[i] += t.samples[i];
  }
  for (double& m : t_mean) m /= n;

  std::vector<double> cov(len, 0.0);
  std::vector<double> t_var(len, 0.0);
  for (std::size_t k = 0; k < traces.size(); ++k) {
    const double hd = hypotheses[k] - h_mean;
    const Trace& t = traces[k];
    for (std::size_t i = 0; i < len; ++i) {
      const double td = t.samples[i] - t_mean[i];
      cov[i] += hd * td;
      t_var[i] += td * td;
    }
  }
  std::vector<double> rho(len, 0.0);
  for (std::size_t i = 0; i < len; ++i) {
    const double denom = std::sqrt(h_var * t_var[i]);
    rho[i] = denom > 0.0 ? cov[i] / denom : 0.0;
  }
  return rho;
}

std::vector<CpaPeak> cpa_peaks(const std::vector<double>& correlations, std::size_t count,
                               std::size_t min_spacing) {
  if (min_spacing == 0) min_spacing = 1;
  std::vector<std::size_t> order(correlations.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&correlations](std::size_t x, std::size_t y) {
    return std::fabs(correlations[x]) > std::fabs(correlations[y]);
  });
  std::vector<CpaPeak> peaks;
  for (const std::size_t idx : order) {
    if (peaks.size() >= count) break;
    if (correlations[idx] == 0.0) break;  // order is by magnitude: all zero from here
    bool ok = true;
    for (const CpaPeak& p : peaks) {
      const std::size_t gap = idx > p.index ? idx - p.index : p.index - idx;
      if (gap < min_spacing) {
        ok = false;
        break;
      }
    }
    if (ok) peaks.push_back({idx, correlations[idx]});
  }
  return peaks;
}

}  // namespace reveal::sca
