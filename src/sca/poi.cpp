#include "sca/poi.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace reveal::sca {

ClassMeans class_means(const TraceSet& traces, std::size_t min_length) {
  if (traces.empty()) throw std::invalid_argument("class_means: empty trace set");
  const std::size_t len = traces.min_length();
  if (len == 0 || (min_length > 0 && len < min_length))
    throw std::invalid_argument("class_means: traces shorter than required window");

  std::map<std::int32_t, std::pair<std::vector<double>, std::size_t>> acc;
  for (const Trace& t : traces) {
    if (t.label == Trace::kNoLabel)
      throw std::invalid_argument("class_means: unlabelled trace in profiling set");
    auto& [sum, count] = acc[t.label];
    if (sum.empty()) sum.assign(len, 0.0);
    for (std::size_t i = 0; i < len; ++i) sum[i] += t.samples[i];
    ++count;
  }
  ClassMeans means;
  for (auto& [label, pair] : acc) {
    auto& [sum, count] = pair;
    for (double& v : sum) v /= static_cast<double>(count);
    means.emplace(label, std::move(sum));
  }
  return means;
}

std::vector<double> sosd_curve(const ClassMeans& means) {
  if (means.size() < 2) throw std::invalid_argument("sosd_curve: need >= 2 classes");
  const std::size_t len = means.begin()->second.size();
  std::vector<double> sosd(len, 0.0);
  for (auto a = means.begin(); a != means.end(); ++a) {
    for (auto b = std::next(a); b != means.end(); ++b) {
      if (a->second.size() != len || b->second.size() != len)
        throw std::invalid_argument("sosd_curve: inconsistent mean lengths");
      for (std::size_t t = 0; t < len; ++t) {
        const double d = a->second[t] - b->second[t];
        sosd[t] += d * d;
      }
    }
  }
  return sosd;
}

std::vector<std::size_t> select_pois(const std::vector<double>& sosd, std::size_t count,
                                     std::size_t min_spacing) {
  if (min_spacing == 0) min_spacing = 1;
  std::vector<std::size_t> order(sosd.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&sosd](std::size_t a, std::size_t b) { return sosd[a] > sosd[b]; });

  std::vector<std::size_t> chosen;
  for (std::size_t idx : order) {
    if (chosen.size() >= count) break;
    bool ok = true;
    for (std::size_t c : chosen) {
      const std::size_t gap = idx > c ? idx - c : c - idx;
      if (gap < min_spacing) {
        ok = false;
        break;
      }
    }
    if (ok) chosen.push_back(idx);
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

std::vector<double> extract_pois(const std::vector<double>& samples,
                                 const std::vector<std::size_t>& pois) {
  std::vector<double> out;
  out.reserve(pois.size());
  for (std::size_t p : pois) {
    if (p >= samples.size()) throw std::invalid_argument("extract_pois: trace too short");
    out.push_back(samples[p]);
  }
  return out;
}

}  // namespace reveal::sca
