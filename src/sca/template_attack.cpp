#include "sca/template_attack.hpp"

#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "numeric/binary_io.hpp"
#include "numeric/distributions.hpp"

namespace reveal::sca {

namespace {
constexpr std::uint32_t kTemplateBuilderMarker = 0x54'42'4C'44;  // "DLBT"
// Class labels are sampler coefficient values (tens of classes); the POI
// dimension is of the same order. One generous shared cap.
constexpr std::uint64_t kMaxSerializedClasses = std::uint64_t{1} << 12;
}  // namespace

TemplateSet::TemplateSet(std::vector<ClassTemplate> classes, num::Matrix pooled_covariance)
    : classes_(std::move(classes)) {
  if (classes_.empty()) throw std::invalid_argument("TemplateSet: no classes");
  dim_ = classes_.front().mean.size();
  for (const auto& c : classes_) {
    if (c.mean.size() != dim_)
      throw std::invalid_argument("TemplateSet: inconsistent template dimensions");
  }
  if (pooled_covariance.rows() != dim_ || pooled_covariance.cols() != dim_)
    throw std::invalid_argument("TemplateSet: covariance shape mismatch");
  log_det_ = num::log_det_spd(pooled_covariance);  // throws if not SPD
  inv_covariance_ = num::invert_spd(pooled_covariance);

  // Shared-work factorization: u_c = Sigma^{-1} mu_c and t_c = mu_c^T u_c,
  // fixed at construction. The matvec uses the same i-major/j-inner loop
  // order as mahalanobis_into's y = Sigma^{-1} x, and t_c accumulates
  // left-to-right — the exact-equality tests mirror this order.
  sigma_inv_mu_.assign(classes_.size() * dim_, 0.0);
  mu_sigma_inv_mu_.assign(classes_.size(), 0.0);
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    const std::vector<double>& mean = classes_[c].mean;
    double* u = sigma_inv_mu_.data() + c * dim_;
    for (std::size_t i = 0; i < dim_; ++i) {
      double row = 0.0;
      for (std::size_t j = 0; j < dim_; ++j) row += inv_covariance_(i, j) * mean[j];
      u[i] = row;
    }
    double t = 0.0;
    for (std::size_t i = 0; i < dim_; ++i) t += mean[i] * u[i];
    mu_sigma_inv_mu_[c] = t;
  }
}

void TemplateSet::mahalanobis_into(const std::vector<double>& observation,
                                   std::vector<double>& out) const {
  if (observation.size() != dim_)
    throw std::invalid_argument("TemplateSet: observation dimension mismatch");
  // y = Sigma^{-1} x once per observation (the only O(d^2) work), then each
  // class in O(d):  (x-mu)^T Sigma^{-1} (x-mu) = x^T y - 2 u_c^T x + t_c
  // (valid because Sigma^{-1} is symmetric). Scratch is thread-local so
  // concurrent campaign workers scoring through one shared TemplateSet
  // neither race nor allocate in steady state.
  static thread_local std::vector<double> y;
  y.resize(dim_);
  double xy = 0.0;
  for (std::size_t i = 0; i < dim_; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < dim_; ++j) row += inv_covariance_(i, j) * observation[j];
    y[i] = row;
    xy += observation[i] * row;
  }
  out.resize(classes_.size());
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    const double* u = sigma_inv_mu_.data() + c * dim_;
    double ux = 0.0;
    for (std::size_t i = 0; i < dim_; ++i) ux += u[i] * observation[i];
    out[c] = xy - 2.0 * ux + mu_sigma_inv_mu_[c];
  }
}

void TemplateSet::mahalanobis_reference_into(const std::vector<double>& observation,
                                             std::vector<double>& out) const {
  if (observation.size() != dim_)
    throw std::invalid_argument("TemplateSet: observation dimension mismatch");
  out.clear();
  out.reserve(classes_.size());
  std::vector<double> diff(dim_);
  for (const auto& c : classes_) {
    for (std::size_t i = 0; i < dim_; ++i) diff[i] = observation[i] - c.mean[i];
    double maha = 0.0;
    for (std::size_t i = 0; i < dim_; ++i) {
      double row = 0.0;
      for (std::size_t j = 0; j < dim_; ++j) row += inv_covariance_(i, j) * diff[j];
      maha += diff[i] * row;
    }
    out.push_back(maha);
  }
}

std::vector<double> TemplateSet::log_scores(const std::vector<double>& observation) const {
  std::vector<double> scores;
  mahalanobis_into(observation, scores);
  // -1/2 (x-mu)^T Sigma^{-1} (x-mu) - 1/2 log det Sigma (+ const dropped).
  for (double& s : scores) s = -0.5 * s - 0.5 * log_det_;
  return scores;
}

std::vector<double> TemplateSet::mahalanobis(const std::vector<double>& observation) const {
  std::vector<double> out;
  mahalanobis_into(observation, out);
  return out;
}

std::vector<double> TemplateSet::posterior(const std::vector<double>& observation) const {
  return num::log_scores_to_posterior(log_scores(observation));
}

std::int32_t TemplateSet::classify(const std::vector<double>& observation) const {
  // Argmax over the same affine map of the shared kernel that log_scores
  // applies, so classify stays consistent with posterior/log_scores even
  // where the affine map collapses nearly-equal distances in FP.
  static thread_local std::vector<double> scores;
  mahalanobis_into(observation, scores);
  for (double& s : scores) s = -0.5 * s - 0.5 * log_det_;
  std::size_t best = 0;
  for (std::size_t i = 1; i < scores.size(); ++i) {
    if (scores[i] > scores[best]) best = i;
  }
  return classes_[best].label;
}

std::vector<double> TemplateSet::mahalanobis_reference(
    const std::vector<double>& observation) const {
  std::vector<double> out;
  mahalanobis_reference_into(observation, out);
  return out;
}

std::vector<double> TemplateSet::log_scores_reference(
    const std::vector<double>& observation) const {
  std::vector<double> scores;
  mahalanobis_reference_into(observation, scores);
  for (double& s : scores) s = -0.5 * s - 0.5 * log_det_;
  return scores;
}

std::vector<std::int32_t> TemplateSet::labels() const {
  std::vector<std::int32_t> out;
  out.reserve(classes_.size());
  for (const auto& c : classes_) out.push_back(c.label);
  return out;
}

TemplateBuilder::TemplateBuilder(std::size_t dim) : dim_(dim) {
  if (dim == 0) throw std::invalid_argument("TemplateBuilder: dim must be >= 1");
}

void TemplateBuilder::add(std::int32_t label, const std::vector<double>& observation) {
  if (observation.size() != dim_)
    throw std::invalid_argument("TemplateBuilder::add: dimension mismatch");
  auto [it, inserted] = per_class_.try_emplace(label, dim_);
  it->second.add(observation);
  ++total_;
}

void TemplateBuilder::merge(const TemplateBuilder& other) {
  if (other.dim_ != dim_)
    throw std::invalid_argument("TemplateBuilder::merge: dimension mismatch");
  for (const auto& [label, cov] : other.per_class_) {
    auto [it, inserted] = per_class_.try_emplace(label, dim_);
    it->second.merge(cov);
  }
  total_ += other.total_;
}

void TemplateBuilder::save(std::ostream& out) const {
  num::io::write_pod<std::uint32_t>(out, kTemplateBuilderMarker);
  num::io::write_pod<std::uint64_t>(out, dim_);
  num::io::write_pod<std::uint64_t>(out, total_);
  num::io::write_pod<std::uint64_t>(out, per_class_.size());
  for (const auto& [label, cov] : per_class_) {
    num::io::write_pod<std::int32_t>(out, label);
    cov.save(out);
  }
}

TemplateBuilder TemplateBuilder::load(std::istream& in) {
  num::io::expect_marker(in, kTemplateBuilderMarker, "TemplateBuilder");
  const auto dim = num::io::read_pod<std::uint64_t>(in);
  if (dim == 0 || dim > kMaxSerializedClasses)
    throw std::runtime_error("TemplateBuilder::load: implausible dimension");
  TemplateBuilder builder(static_cast<std::size_t>(dim));
  builder.total_ = static_cast<std::size_t>(num::io::read_pod<std::uint64_t>(in));
  const auto classes = num::io::read_pod<std::uint64_t>(in);
  if (classes > kMaxSerializedClasses)
    throw std::runtime_error("TemplateBuilder::load: implausible class count");
  for (std::uint64_t c = 0; c < classes; ++c) {
    const auto label = num::io::read_pod<std::int32_t>(in);
    auto cov = num::RunningCovariance::load(in);
    if (cov.dim() != dim)
      throw std::runtime_error("TemplateBuilder::load: class dimension mismatch");
    if (!builder.per_class_.emplace(label, std::move(cov)).second)
      throw std::runtime_error("TemplateBuilder::load: duplicate class label");
  }
  return builder;
}

TemplateSet TemplateBuilder::build(double ridge) const {
  if (per_class_.size() < 2)
    throw std::runtime_error("TemplateBuilder::build: need at least 2 classes");
  std::vector<TemplateSet::ClassTemplate> classes;
  num::Matrix pooled(dim_, dim_);
  std::size_t dof = 0;
  for (const auto& [label, cov] : per_class_) {
    if (cov.count() < 2)
      throw std::runtime_error("TemplateBuilder::build: class with < 2 observations");
    classes.push_back({label, cov.mean(), cov.count()});
    pooled = pooled + cov.scatter();
    dof += cov.count() - 1;
  }
  pooled *= 1.0 / static_cast<double>(dof);
  num::add_ridge(pooled, ridge);
  return TemplateSet(std::move(classes), std::move(pooled));
}

}  // namespace reveal::sca
