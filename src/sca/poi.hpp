#pragma once
// Point-of-interest selection for template attacks.
//
// Implements the sum-of-squared-differences (SOSD) criterion the paper uses
// (§III-D, ref [30]): sosd(t) = sum over class pairs of
// (mean_a(t) - mean_b(t))^2. The top-k samples (with a minimum spacing so a
// single wide peak does not consume every slot) become the template POIs.

#include <cstddef>
#include <map>
#include <vector>

#include "sca/trace.hpp"

namespace reveal::sca {

/// Per-class mean traces over a fixed window length.
using ClassMeans = std::map<std::int32_t, std::vector<double>>;

/// Computes per-class means of the labelled traces, truncated to the
/// shortest trace; throws std::invalid_argument on empty input or traces
/// shorter than `min_length` (pass 0 to accept any).
[[nodiscard]] ClassMeans class_means(const TraceSet& traces, std::size_t min_length = 0);

/// SOSD curve across all sample points of the class means.
[[nodiscard]] std::vector<double> sosd_curve(const ClassMeans& means);

/// Selects up to `count` POIs: highest-SOSD samples at least `min_spacing`
/// apart, returned in increasing index order.
[[nodiscard]] std::vector<std::size_t> select_pois(const std::vector<double>& sosd,
                                                   std::size_t count,
                                                   std::size_t min_spacing = 1);

/// Extracts the POI samples of one trace (throws if the trace is too short).
[[nodiscard]] std::vector<double> extract_pois(const std::vector<double>& samples,
                                               const std::vector<std::size_t>& pois);

}  // namespace reveal::sca
