#include "sca/clustering.hpp"

#include <cmath>
#include <limits>
#include <map>
#include <stdexcept>

#include "numeric/rng.hpp"

namespace reveal::sca {

namespace {

double distance_sq(const std::vector<double>& a, const std::vector<double>& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

}  // namespace

KMeansResult kmeans(const std::vector<std::vector<double>>& points, std::size_t k,
                    std::size_t max_iterations, std::uint64_t seed) {
  if (points.empty() || k == 0 || k > points.size())
    throw std::invalid_argument("kmeans: bad point count or k");
  const std::size_t dim = points.front().size();
  for (const auto& p : points) {
    if (p.size() != dim) throw std::invalid_argument("kmeans: ragged points");
  }

  // Farthest-point (k-means++-flavoured) seeding, deterministic.
  num::Xoshiro256StarStar rng(seed);
  KMeansResult result;
  result.centroids.push_back(points[rng.uniform_below(points.size())]);
  while (result.centroids.size() < k) {
    std::size_t best_point = 0;
    double best_dist = -1.0;
    for (std::size_t p = 0; p < points.size(); ++p) {
      double nearest = std::numeric_limits<double>::max();
      for (const auto& c : result.centroids) {
        nearest = std::min(nearest, distance_sq(points[p], c));
      }
      if (nearest > best_dist) {
        best_dist = nearest;
        best_point = p;
      }
    }
    result.centroids.push_back(points[best_point]);
  }

  result.assignment.assign(points.size(), 0);
  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    ++result.iterations;
    // Assign.
    bool changed = false;
    for (std::size_t p = 0; p < points.size(); ++p) {
      std::size_t best = 0;
      double best_dist = std::numeric_limits<double>::max();
      for (std::size_t c = 0; c < k; ++c) {
        const double d = distance_sq(points[p], result.centroids[c]);
        if (d < best_dist) {
          best_dist = d;
          best = c;
        }
      }
      if (result.assignment[p] != best) {
        result.assignment[p] = best;
        changed = true;
      }
    }
    // Update.
    std::vector<std::vector<double>> sums(k, std::vector<double>(dim, 0.0));
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t p = 0; p < points.size(); ++p) {
      const std::size_t c = result.assignment[p];
      for (std::size_t i = 0; i < dim; ++i) sums[c][i] += points[p][i];
      ++counts[c];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // keep the old centroid for empty clusters
      for (std::size_t i = 0; i < dim; ++i) {
        result.centroids[c][i] = sums[c][i] / static_cast<double>(counts[c]);
      }
    }
    if (!changed) break;
  }

  result.inertia = 0.0;
  for (std::size_t p = 0; p < points.size(); ++p) {
    result.inertia += distance_sq(points[p], result.centroids[result.assignment[p]]);
  }
  return result;
}

double cluster_purity(const std::vector<std::size_t>& assignment,
                      const std::vector<int>& labels) {
  if (assignment.size() != labels.size() || assignment.empty())
    throw std::invalid_argument("cluster_purity: size mismatch or empty");
  std::map<std::size_t, std::map<int, std::size_t>> counts;
  for (std::size_t p = 0; p < assignment.size(); ++p) {
    ++counts[assignment[p]][labels[p]];
  }
  std::size_t matched = 0;
  for (const auto& [cluster, label_counts] : counts) {
    std::size_t majority = 0;
    for (const auto& [label, count] : label_counts) majority = std::max(majority, count);
    matched += majority;
  }
  return static_cast<double>(matched) / static_cast<double>(assignment.size());
}

}  // namespace reveal::sca
