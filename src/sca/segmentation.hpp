#pragma once
// Trace segmentation (paper §III-C, Fig. 3a).
//
// The distribution-function call of every coefficient contains a long
// high-activity burst (on the real target: soft-float arithmetic; on our
// victim: the 35-cycle sequential multiply of the scaling step). These
// bursts are "distinguishable and visible peaks" that delimit each
// coefficient's sampling window. Because the distribution call is
// time-variant, windows must be found per trace — no fixed stride works.

#include <cstddef>
#include <vector>

namespace reveal::sca {

struct SegmentationConfig {
  std::size_t smooth_window = 5;   ///< moving-average width before detection
  double threshold = 0.0;          ///< power level splitting burst/non-burst;
                                   ///< <= 0 selects automatic (midrange)
  std::size_t min_burst_length = 16;  ///< shortest run accepted as a burst
};

/// One per-coefficient window: [begin, end) sample indices of the region
/// between the end of this coefficient's distribution burst and the start
/// of the next one (i.e. the sign-assignment code the attack targets),
/// plus the burst's own extent.
struct Segment {
  std::size_t burst_begin = 0;
  std::size_t burst_end = 0;   ///< one past the last burst sample
  std::size_t window_begin = 0;
  std::size_t window_end = 0;
};

/// Locates all sampling windows in a single power trace. Returns segments
/// in trace order; the final window extends to the trace end.
[[nodiscard]] std::vector<Segment> segment_trace(const std::vector<double>& samples,
                                                 const SegmentationConfig& config = {});

/// Moving average smoothing (window >= 1; window 1 copies).
[[nodiscard]] std::vector<double> smooth(const std::vector<double>& samples,
                                         std::size_t window);

/// Midpoint between the 20th and 95th percentile — the automatic threshold.
[[nodiscard]] double auto_threshold(const std::vector<double>& samples);

}  // namespace reveal::sca
