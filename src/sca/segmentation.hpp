#pragma once
// Trace segmentation (paper §III-C, Fig. 3a).
//
// The distribution-function call of every coefficient contains a long
// high-activity burst (on the real target: soft-float arithmetic; on our
// victim: the 35-cycle sequential multiply of the scaling step). These
// bursts are "distinguishable and visible peaks" that delimit each
// coefficient's sampling window. Because the distribution call is
// time-variant, windows must be found per trace — no fixed stride works.

#include <cstddef>
#include <vector>

namespace reveal::sca {

struct SegmentationConfig {
  std::size_t smooth_window = 5;   ///< moving-average width before detection
  double threshold = 0.0;          ///< power level splitting burst/non-burst;
                                   ///< <= 0 selects automatic (midrange)
  std::size_t min_burst_length = 16;  ///< shortest run accepted as a burst
};

/// One per-coefficient window: [begin, end) sample indices of the region
/// between the end of this coefficient's distribution burst and the start
/// of the next one (i.e. the sign-assignment code the attack targets),
/// plus the burst's own extent.
struct Segment {
  std::size_t burst_begin = 0;
  std::size_t burst_end = 0;   ///< one past the last burst sample
  std::size_t window_begin = 0;
  std::size_t window_end = 0;
};

/// Locates all sampling windows in a single power trace. Returns segments
/// in trace order; the final window extends to the trace end.
[[nodiscard]] std::vector<Segment> segment_trace(const std::vector<double>& samples,
                                                 const SegmentationConfig& config = {});

/// Moving average smoothing (window >= 1; window 1 copies). Uses a
/// Neumaier-compensated sliding accumulator, so the rounding error per
/// output stays O(window * eps) instead of growing with the trace length
/// (the plain add/subtract accumulator drifts O(length * eps) on traces of
/// millions of samples — see smooth_reference).
[[nodiscard]] std::vector<double> smooth(const std::vector<double>& samples,
                                         std::size_t window);

/// The pre-hardening smoothing kernel: a plain (uncompensated) sliding
/// accumulator. Kept as the differential anchor for the drift regression
/// tests; new code should call smooth().
[[nodiscard]] std::vector<double> smooth_reference(const std::vector<double>& samples,
                                                   std::size_t window);

/// Midpoint between the 20th and 95th percentile — the automatic threshold.
/// Degenerate (flat or near-constant) traces have no burst/floor separation
/// to threshold between; they return +infinity as a sentinel, which makes
/// segment_trace find no bursts instead of one bogus whole-trace burst.
[[nodiscard]] double auto_threshold(const std::vector<double>& samples);

// ---------------------------------------------------------------------------
// Robust segmentation: degraded captures (jitter, dropout, glitches,
// clipping, misalignment) make a single fixed-config pass either miss
// windows or invent spurious ones. segment_trace_robust validates the
// window count the caller expects and, on mismatch, retries across an
// adaptive sweep of {threshold, smooth_window, min_burst_length},
// scoring candidates by burst-length consistency (the distribution-call
// burst is a fixed-length multiply, so genuine bursts are near-identical
// in length while glitch-induced ones are not).

enum class SegmentationStatus {
  kOk,         ///< base config matched the expected window count
  kRecovered,  ///< a retry config matched the expected window count
  kDegraded,   ///< count matches but burst consistency is poor: windows suspect
  kFailed,     ///< no candidate reached the expected count (best effort returned)
};

struct SegmentationResult {
  SegmentationStatus status = SegmentationStatus::kFailed;
  std::vector<Segment> segments;      ///< best segmentation found
  std::vector<double> window_quality; ///< per-segment score in [0,1], aligned
  SegmentationConfig config;          ///< the config that produced `segments`
  std::size_t attempts = 0;           ///< distinct segmentations evaluated
  double burst_consistency = 0.0;     ///< 1 - cv(burst lengths), clamped to [0,1]
};

/// Burst-length consistency of a segmentation: 1 - coefficient of variation
/// of the burst lengths, clamped to [0,1] (1 = identical bursts; 0 = wild).
[[nodiscard]] double burst_length_consistency(const std::vector<Segment>& segments);

/// Per-segment quality scores in [0,1]: penalizes bursts whose length
/// deviates from the median burst and windows much shorter than the median
/// window (both symptoms of glitch-split or merged segments).
[[nodiscard]] std::vector<double> score_windows(const std::vector<Segment>& segments);

/// Segments `samples` expecting exactly `expected_windows` windows. Tries
/// `base` first (bit-identical to segment_trace when it already yields the
/// expected count), then sweeps threshold/smooth/min-burst variations.
/// Never throws on bad data: a hopeless trace comes back as kFailed with
/// the closest candidate attached for diagnostics.
///
/// The sweep shares all per-candidate O(L) work: each distinct smoothing
/// window is smoothed once, each (smoothing, threshold) pair is scanned for
/// bursts once, and min-burst variants reuse those runs. Candidates that
/// normalize to an identical effective configuration are evaluated once
/// (`attempts` counts distinct evaluations). The selected segmentation,
/// config, status and scores are bit-identical to
/// segment_trace_robust_reference; only `attempts` may be lower.
[[nodiscard]] SegmentationResult segment_trace_robust(
    const std::vector<double>& samples, std::size_t expected_windows,
    const SegmentationConfig& base = {}, double degraded_consistency = 0.75);

/// The pre-optimization sweep: re-smooths and re-segments the full trace for
/// every candidate, duplicates included (`attempts` counts every candidate).
/// Kept as the differential anchor for segment_trace_robust.
[[nodiscard]] SegmentationResult segment_trace_robust_reference(
    const std::vector<double>& samples, std::size_t expected_windows,
    const SegmentationConfig& base = {}, double degraded_consistency = 0.75);

}  // namespace reveal::sca
