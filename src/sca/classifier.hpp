#pragma once
// Control-flow (branch) classifier — paper vulnerability 1 / Fig. 3b.
//
// The three sign branches execute different instruction sequences, so their
// sub-traces exhibit distinct power patterns. Classification is by
// variance-weighted (Fisher) distance to per-class mean patterns over a
// fixed-length window prefix: samples whose within-class variance is high
// (value-dependent leakage, PRNG activity) are down-weighted, while the
// control-flow-divergent samples dominate — enough for the 100% sign
// recovery the paper reports.

#include <cstdint>
#include <map>
#include <vector>

#include "sca/trace.hpp"

namespace reveal::sca {

class PatternClassifier {
 public:
  /// Fits mean patterns and the pooled per-sample within-class variance
  /// from labelled windows, using the first `prefix_length` samples
  /// (0 = common minimum length).
  void fit(const TraceSet& labelled_windows, std::size_t prefix_length = 0);

  [[nodiscard]] bool fitted() const noexcept { return !patterns_.empty(); }
  [[nodiscard]] std::size_t prefix_length() const noexcept { return prefix_; }

  /// Classifies a window by minimal variance-weighted distance to the class
  /// means; throws std::logic_error if not fitted, std::invalid_argument if
  /// the window is shorter than the prefix.
  [[nodiscard]] std::int32_t classify(const std::vector<double>& window) const;

  /// Weighted distances to every class mean (diagnostics / separation).
  [[nodiscard]] std::map<std::int32_t, double> distances(
      const std::vector<double>& window) const;

 private:
  std::size_t prefix_ = 0;
  std::map<std::int32_t, std::vector<double>> patterns_;
  std::vector<double> inv_variance_;  // pooled within-class, per sample
};

}  // namespace reveal::sca
