#include "sca/trace.hpp"

#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>
#include <stdexcept>

namespace reveal::sca {

std::size_t TraceSet::min_length() const noexcept {
  if (traces_.empty()) return 0;
  std::size_t m = std::numeric_limits<std::size_t>::max();
  for (const Trace& t : traces_) m = std::min(m, t.size());
  return m;
}

namespace {
constexpr char kMagic[4] = {'R', 'V', 'L', 'T'};

// Plausibility caps for on-disk counts, mirroring the kMaxElements guard in
// seal/serialization.cpp: a corrupt or hostile file must produce a clean
// parse error, never an unbounded allocation. Both caps are far above any
// corpus this toolkit produces (captures run ~64 windows of ~34k samples).
constexpr std::uint64_t kMaxTraceSamples = std::uint64_t{1} << 28;  // 2 GiB of doubles
// Every serialized trace costs at least its record header (label + count),
// so a declared trace count beyond remaining_bytes / kMinTraceRecordBytes
// cannot possibly be backed by file data.
constexpr std::uint64_t kMinTraceRecordBytes =
    sizeof(std::int32_t) + sizeof(std::uint64_t);
}

void TraceSet::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("TraceSet::save: cannot open " + path);
  out.write(kMagic, 4);
  const std::uint64_t count = traces_.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const Trace& t : traces_) {
    out.write(reinterpret_cast<const char*>(&t.label), sizeof(t.label));
    const std::uint64_t n = t.samples.size();
    out.write(reinterpret_cast<const char*>(&n), sizeof(n));
    out.write(reinterpret_cast<const char*>(t.samples.data()),
              static_cast<std::streamsize>(n * sizeof(double)));
  }
  if (!out) throw std::runtime_error("TraceSet::save: write failed for " + path);
}

TraceSet TraceSet::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("TraceSet::load: cannot open " + path);
  in.seekg(0, std::ios::end);
  const auto end_pos = in.tellg();
  if (end_pos < 0) throw std::runtime_error("TraceSet::load: cannot stat " + path);
  const auto file_bytes = static_cast<std::uint64_t>(end_pos);
  in.seekg(0, std::ios::beg);
  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kMagic, 4) != 0)
    throw std::runtime_error("TraceSet::load: bad magic in " + path);
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in) throw std::runtime_error("TraceSet::load: truncated file " + path);
  // Declared counts are validated against the bytes actually present before
  // any allocation sized by them (division avoids the overflow a
  // `count * record_bytes` comparison would reintroduce).
  std::uint64_t remaining = file_bytes - (sizeof(kMagic) + sizeof(count));
  if (count > remaining / kMinTraceRecordBytes)
    throw std::runtime_error("TraceSet::load: truncated file " + path);
  TraceSet set;
  for (std::uint64_t i = 0; i < count; ++i) {
    Trace t;
    in.read(reinterpret_cast<char*>(&t.label), sizeof(t.label));
    std::uint64_t n = 0;
    in.read(reinterpret_cast<char*>(&n), sizeof(n));
    if (!in) throw std::runtime_error("TraceSet::load: truncated file " + path);
    remaining -= kMinTraceRecordBytes;
    if (n > kMaxTraceSamples || n > remaining / sizeof(double))
      throw std::runtime_error("TraceSet::load: truncated file " + path);
    t.samples.resize(n);
    // n <= kMaxTraceSamples (2^28), so n * sizeof(double) <= 2^31 fits the
    // signed streamsize without wrapping.
    in.read(reinterpret_cast<char*>(t.samples.data()),
            static_cast<std::streamsize>(n * sizeof(double)));
    if (!in) throw std::runtime_error("TraceSet::load: truncated file " + path);
    remaining -= n * sizeof(double);
    set.add(std::move(t));
  }
  return set;
}

void normalize(Trace& trace) noexcept {
  if (trace.samples.empty()) return;
  double mean = 0.0;
  for (double v : trace.samples) mean += v;
  mean /= static_cast<double>(trace.samples.size());
  double var = 0.0;
  for (double v : trace.samples) var += (v - mean) * (v - mean);
  var /= static_cast<double>(trace.samples.size());
  const double sd = std::sqrt(var);
  if (sd == 0.0) return;
  for (double& v : trace.samples) v = (v - mean) / sd;
}

std::vector<double> mean_trace(const TraceSet& set) {
  if (set.empty()) throw std::invalid_argument("mean_trace: empty trace set");
  const std::size_t len = set.min_length();
  std::vector<double> mean(len, 0.0);
  for (const Trace& t : set) {
    for (std::size_t i = 0; i < len; ++i) mean[i] += t.samples[i];
  }
  for (double& v : mean) v /= static_cast<double>(set.size());
  return mean;
}

}  // namespace reveal::sca
