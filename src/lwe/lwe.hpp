#pragma once
// LWE instances, the Kannan-style primal embedding, and exact solving with
// perfect hints — the "explore the remaining search space" part of the
// attack at laptop scale.

#include <cstdint>
#include <optional>
#include <vector>

#include "numeric/rng.hpp"
#include "seal/modulus.hpp"

namespace reveal::lwe {

/// b = A s + e (mod q); A is m x n, row-major.
struct LweInstance {
  std::size_t n = 0;  ///< secret dimension
  std::size_t m = 0;  ///< number of samples
  std::uint64_t q = 0;
  std::vector<std::uint64_t> a;  ///< m*n entries, a[i*n + j]
  std::vector<std::uint64_t> b;  ///< m entries

  [[nodiscard]] std::uint64_t at(std::size_t row, std::size_t col) const noexcept {
    return a[row * n + col];
  }
};

/// Distribution of the secret coordinates.
enum class SecretDist {
  kTernary,   ///< uniform {-1, 0, 1} (BFV's R_2)
  kGaussian,  ///< rounded Gaussian with sigma
};

struct LweParams {
  std::size_t n = 16;
  std::size_t m = 32;
  std::uint64_t q = 3329;
  double sigma = 3.0;
  SecretDist secret = SecretDist::kTernary;
};

/// Samples an instance together with its ground-truth secret and error
/// (both centered representations).
struct SampledLwe {
  LweInstance instance;
  std::vector<std::int64_t> secret;
  std::vector<std::int64_t> error;
};
[[nodiscard]] SampledLwe sample_lwe(const LweParams& params, num::Xoshiro256StarStar& rng);

/// Primal (Kannan) embedding: basis of the (m+n+1)-dimensional lattice
/// containing the short vector (e | -s | 1)·? (row convention documented in
/// lwe.cpp). Entries are centered mod q to keep magnitudes small.
[[nodiscard]] std::vector<std::vector<std::int64_t>> kannan_embedding(
    const LweInstance& instance);

/// Recovers the secret from >= n linearly independent *exact* equations
/// a_i·s = b_i - e_i (mod q) by Gaussian elimination (q must be prime).
/// `known_error` holds the hinted error value per sample (std::nullopt =
/// unknown sample, skipped). Returns std::nullopt if the hinted equations
/// do not determine s uniquely.
[[nodiscard]] std::optional<std::vector<std::int64_t>> solve_with_perfect_hints(
    const LweInstance& instance,
    const std::vector<std::optional<std::int64_t>>& known_error);

/// Runs the primal attack (embedding + BKZ) and extracts the secret from
/// the shortest vector. Returns std::nullopt on failure. Practical only for
/// toy dimensions (n <= ~24).
[[nodiscard]] std::optional<std::vector<std::int64_t>> primal_attack(
    const LweInstance& instance, std::size_t block_size, std::size_t max_tours = 16);

/// Decoding (BDD) attack: reduce the q-ary lattice {(x, y) : x ≡ y·A (mod q)}
/// and run Babai's nearest-plane against the target (b | 0); the closest
/// lattice point reveals s in its last n coordinates. Cheaper than the
/// uSVP embedding when the reduction quality suffices.
[[nodiscard]] std::optional<std::vector<std::int64_t>> bdd_attack(
    const LweInstance& instance, std::size_t block_size, std::size_t max_tours = 8);

}  // namespace reveal::lwe
