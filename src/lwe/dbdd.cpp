#include "lwe/dbdd.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numbers>
#include <stdexcept>

namespace reveal::lwe {

namespace {
constexpr double kSmallBeta = 2.0;
}  // namespace

double bkz_delta(double beta) {
  // Single definition lives with the profile simulator (the two must agree
  // on the root-Hermite model for its small-block regime).
  return lattice::root_hermite_delta(beta);
}

DbddEstimator::DbddEstimator(const DbddParams& params) {
  if (params.secret_dim == 0 || params.error_dim == 0 || params.q <= 1.0 ||
      params.secret_variance <= 0.0 || params.error_variance <= 0.0)
    throw std::invalid_argument("DbddEstimator: invalid parameters");
  log_vol_lattice_ = static_cast<double>(params.error_dim) * std::log(params.q);
  secret_vars_.assign(params.secret_dim, params.secret_variance);
  error_vars_.assign(params.error_dim, params.error_variance);
}

std::size_t DbddEstimator::dim() const noexcept {
  return secret_vars_.size() + error_vars_.size() + 1;  // + homogenization
}

double DbddEstimator::logvol() const noexcept {
  double half_log_det = 0.0;
  for (const double v : secret_vars_) half_log_det += 0.5 * std::log(v);
  for (const double v : error_vars_) half_log_det += 0.5 * std::log(v);
  return log_vol_lattice_ - half_log_det;
}

std::size_t DbddEstimator::live_error_coords() const noexcept { return error_vars_.size(); }
std::size_t DbddEstimator::live_secret_coords() const noexcept { return secret_vars_.size(); }

double DbddEstimator::pop_error_variance() {
  if (error_vars_.empty())
    throw std::logic_error("DbddEstimator: no error coordinates left to hint");
  const double v = error_vars_.back();
  error_vars_.pop_back();
  return v;
}

void DbddEstimator::integrate_perfect_error_hints(std::size_t count) {
  // A perfect hint on coordinate i: Vol(Lambda ∩ e_i^⊥) = Vol(Lambda) for
  // e_i in the dual, and the coordinate's 1/2 ln(var) leaves the det term —
  // realized here simply by dropping the live coordinate.
  for (std::size_t k = 0; k < count; ++k) (void)pop_error_variance();
}

void DbddEstimator::integrate_perfect_secret_hints(std::size_t count) {
  for (std::size_t k = 0; k < count; ++k) {
    if (secret_vars_.empty())
      throw std::logic_error("DbddEstimator: no secret coordinates left to hint");
    secret_vars_.pop_back();
  }
}

void DbddEstimator::integrate_approximate_error_hints(double eps_variance,
                                                      std::size_t count) {
  if (eps_variance <= 0.0)
    throw std::invalid_argument(
        "DbddEstimator: approximate hint needs positive measurement variance "
        "(use a perfect hint for exact knowledge)");
  if (count > error_vars_.size())
    throw std::logic_error("DbddEstimator: not enough error coordinates for hints");
  for (std::size_t k = 0; k < count; ++k) {
    double& v = error_vars_[error_vars_.size() - 1 - k];  // distinct coordinates
    v = v * eps_variance / (v + eps_variance);            // Gaussian conditioning
  }
}

void DbddEstimator::integrate_posterior_error_hints(double new_variance,
                                                    std::size_t count) {
  if (new_variance <= 0.0)
    throw std::invalid_argument("DbddEstimator: posterior variance must be positive");
  std::size_t updated = 0;
  for (double& v : error_vars_) {
    if (updated == count) break;
    // Replace the first `count` still-at-prior coordinates.
    v = new_variance;
    ++updated;
  }
  if (updated < count)
    throw std::logic_error("DbddEstimator: not enough error coordinates for hints");
}

void DbddEstimator::integrate_modular_error_hints(double k, std::size_t count) {
  if (k < 2.0)
    throw std::invalid_argument("DbddEstimator: modular hint needs k >= 2");
  if (count > error_vars_.size())
    throw std::logic_error("DbddEstimator: not enough error coordinates for hints");
  // Lambda' = Lambda ∩ {x : x_i ≡ l (mod k)}: Vol' = Vol * k; the prior
  // variance is (approximately, for k below a few sigma) unchanged.
  log_vol_lattice_ += static_cast<double>(count) * std::log(k);
}

SecurityEstimate estimate_from_dim_logvol(std::size_t dim, double logvol) {
  const auto d = static_cast<double>(dim);
  const double nu = logvol;

  // f(beta) >= 0 iff BKZ-beta succeeds:
  //   f = (2*beta - d - 1)*ln(delta) + nu/d - 0.5*ln(beta)
  const auto f = [d, nu](double beta) {
    return (2.0 * beta - d - 1.0) * std::log(bkz_delta(beta)) + nu / d -
           0.5 * std::log(beta);
  };

  SecurityEstimate out;
  out.dim = dim;
  double lo = kSmallBeta;
  double hi = d;
  if (f(lo) >= 0.0) {
    out.beta = lo;  // complete break: even (near-)LLL succeeds
  } else if (f(hi) < 0.0) {
    out.beta = hi;  // beyond full enumeration of the instance
  } else {
    for (int iter = 0; iter < 200 && hi - lo > 1e-3; ++iter) {
      const double mid = 0.5 * (lo + hi);
      if (f(mid) >= 0.0) hi = mid;
      else lo = mid;
    }
    out.beta = 0.5 * (lo + hi);
  }
  out.delta = bkz_delta(out.beta);
  out.bits = out.beta / kBikzPerBit;
  return out;
}

SecurityEstimate DbddEstimator::estimate() const {
  return estimate_from_dim_logvol(dim(), logvol());
}

std::vector<double> DbddEstimator::normalized_log_profile() const {
  std::vector<double> profile;
  profile.reserve(dim());
  if (!error_vars_.empty()) {
    const double vol_share =
        log_vol_lattice_ / static_cast<double>(error_vars_.size());
    for (const double v : error_vars_) {
      profile.push_back(vol_share - 0.5 * std::log(v));
    }
    for (const double v : secret_vars_) profile.push_back(-0.5 * std::log(v));
    profile.push_back(0.0);  // homogenization row
  } else {
    // Degenerate: every error coordinate eliminated — spread the lattice
    // volume evenly so the profile still sums to logvol().
    const double vol_share =
        log_vol_lattice_ / static_cast<double>(secret_vars_.size() + 1);
    for (const double v : secret_vars_) {
      profile.push_back(vol_share - 0.5 * std::log(v));
    }
    profile.push_back(vol_share);
  }
  std::sort(profile.begin(), profile.end(), std::greater<double>());
  return profile;
}

SecurityEstimate DbddEstimator::estimate_simulated(
    const lattice::BkzSimParams& params) const {
  const double beta =
      lattice::simulated_intersect_beta(normalized_log_profile(), params);
  SecurityEstimate out;
  out.dim = dim();
  out.beta = beta;
  out.delta = bkz_delta(beta);
  out.bits = beta / kBikzPerBit;
  return out;
}

SecurityEstimate DbddEstimator::estimate_simulated_reference(
    const lattice::BkzSimParams& params) const {
  const double beta = lattice::simulated_intersect_beta_reference(
      normalized_log_profile(), params);
  SecurityEstimate out;
  out.dim = dim();
  out.beta = beta;
  out.delta = bkz_delta(beta);
  out.bits = beta / kBikzPerBit;
  return out;
}

SecurityEstimate estimate_lwe_security(const DbddParams& params) {
  return DbddEstimator(params).estimate();
}

}  // namespace reveal::lwe
