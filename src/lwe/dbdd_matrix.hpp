#pragma once
// Full-covariance DBDD estimator (the "full Sigma" companion of the
// lightweight dim/log-vol tracker in dbdd.hpp).
//
// Maintains the ellipsoid covariance Sigma over all secret+error
// coordinates explicitly, so hints along ARBITRARY directions v — not just
// coordinates — can be integrated with the DDGR20 update rules:
//
//   perfect hint <s, v> = l:
//     nu    += 1/2 ln(v^T Sigma v)        (normalized log-volume)
//     Sigma -= Sigma v v^T Sigma / (v^T Sigma v);  dim -= 1
//   approximate hint <s, v> = l + e,  e ~ N(0, eps):
//     nu    += 1/2 ln((v^T Sigma v + eps) / eps)
//     Sigma -= Sigma v v^T Sigma / (v^T Sigma v + eps)
//
// Paper-scale fast path: Sigma lives in a flat row-major buffer whose upper
// triangle is canonical — rank-1 downdates touch only row tails and are
// mirrored into the lower triangle at flush boundaries (the periodic
// re-symmetrization). Hints are applied lazily: each integrate call records
// its (Sigma v, denom) pair in a pending block and the accumulated rank-k
// downdate is flushed in one fused, t-in-order pass, so k hints cost one
// traversal of Sigma instead of k. Coordinate and few-nonzero directions
// skip the dense matvec entirely and read Sigma rows directly (rows equal
// columns by symmetry), and a flush whose pending scales vanish on a row
// skips that row — a run of coordinate hints is O(k*d), not O(k*d^2).
//
// DbddMatrixEstimatorReference keeps the original per-hint dense
// implementation as the differential anchor. Coordinate-hint-only
// sequences are bit-identical between the two (the live block of Sigma
// stays exactly diagonal, every per-element update replays the reference's
// arithmetic); arbitrary directions agree to 1e-9 (tested).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "lwe/dbdd.hpp"
#include "numeric/matrix.hpp"
#include "numeric/stats.hpp"

namespace reveal::lwe {

/// Typed result of a hint integration (mirrors the HintPolicy routing
/// idea from core/hints.hpp: degrade gracefully instead of aborting a
/// paper-scale sweep on a redundant hint).
enum class HintOutcome : std::uint8_t {
  kApplied,     ///< integrated; dim/log-volume updated
  kDegenerate,  ///< direction already (numerically) determined — rejected
  kExhausted,   ///< would eliminate the last live coordinate — rejected
};

class DbddMatrixEstimator {
 public:
  explicit DbddMatrixEstimator(const DbddParams& params);

  /// Coordinate layout: [error_0 .. error_{m-1} | secret_0 .. secret_{n-1}].
  [[nodiscard]] std::size_t ambient_dim() const noexcept { return d_; }
  /// DBDD dimension (live coordinates + homogenization).
  [[nodiscard]] std::size_t dim() const noexcept { return d_ - removed_ + 1; }
  [[nodiscard]] double logvol() const noexcept { return logvol_.value(); }
  /// Hints rejected as kDegenerate or kExhausted so far.
  [[nodiscard]] std::size_t rejected_hints() const noexcept { return rejected_; }

  /// Materializes the current Sigma (pending downdates applied; the
  /// internal state is not mutated).
  [[nodiscard]] num::Matrix sigma() const;

  /// Perfect hint along direction `v` (ambient_dim entries).
  HintOutcome integrate_perfect_hint(const std::vector<double>& v);

  /// Approximate hint with measurement variance `eps` > 0.
  HintOutcome integrate_approximate_hint(const std::vector<double>& v, double eps);

  /// Convenience: perfect hint on error coordinate i (sparse fast path).
  HintOutcome integrate_perfect_error_hint(std::size_t i);

  /// Batched perfect hints along arbitrary directions: all matvecs share
  /// one blocked pass over Sigma and the downdates land as a single fused
  /// rank-k flush. Results match the one-at-a-time sequence to 1e-9.
  std::vector<HintOutcome> integrate_perfect_hints(
      const std::vector<std::vector<double>>& dirs);

  /// Batched perfect hints on ambient coordinates (error or secret index
  /// into the layout above). Bit-identical to the one-at-a-time sequence.
  std::vector<HintOutcome> integrate_perfect_coordinate_hints(
      const std::vector<std::size_t>& coords);

  [[nodiscard]] SecurityEstimate estimate() const;

 private:
  struct PendingHint {
    std::vector<double> sigma_v;  ///< Sigma v at integration time
    double denom = 0.0;           ///< v^T Sigma v (+ eps)
  };

  /// Sigma v under the logical Sigma (stored buffer minus pending
  /// downdates); returns v^T Sigma v.
  double apply_logical(const std::vector<double>& v, std::vector<double>& out) const;
  HintOutcome integrate_direction(const std::vector<double>& v, bool perfect,
                                  double eps);
  HintOutcome admit(std::vector<double> sigma_v, double q, bool perfect, double eps);
  void flush();

  std::size_t error_dim_;
  std::size_t d_;
  std::size_t removed_ = 0;
  std::size_t rejected_ = 0;
  num::NeumaierSum logvol_;  // normalized: ln Vol(Lambda) - 1/2 ln det Sigma
  std::vector<double> sigma_;  ///< flat row-major d_*d_, canonical upper triangle
  std::vector<PendingHint> pending_;
};

/// The pre-optimization implementation: one dense matvec and one full-row
/// rank-1 downdate per hint on a num::Matrix. Kept as the differential
/// anchor for the blocked/sparse/batched fast paths above (same public
/// surface, so fuzz drivers run both classes through identical sequences).
class DbddMatrixEstimatorReference {
 public:
  explicit DbddMatrixEstimatorReference(const DbddParams& params);

  [[nodiscard]] std::size_t ambient_dim() const noexcept { return sigma_.rows(); }
  [[nodiscard]] std::size_t dim() const noexcept { return sigma_.rows() - removed_ + 1; }
  [[nodiscard]] double logvol() const noexcept { return logvol_.value(); }
  [[nodiscard]] std::size_t rejected_hints() const noexcept { return rejected_; }
  [[nodiscard]] num::Matrix sigma() const { return sigma_; }

  HintOutcome integrate_perfect_hint(const std::vector<double>& v);
  HintOutcome integrate_approximate_hint(const std::vector<double>& v, double eps);
  HintOutcome integrate_perfect_error_hint(std::size_t i);
  std::vector<HintOutcome> integrate_perfect_hints(
      const std::vector<std::vector<double>>& dirs);
  std::vector<HintOutcome> integrate_perfect_coordinate_hints(
      const std::vector<std::size_t>& coords);

  [[nodiscard]] SecurityEstimate estimate() const;

 private:
  double quadratic_form(const std::vector<double>& v,
                        std::vector<double>& sigma_v) const;
  void rank_one_downdate(const std::vector<double>& sigma_v, double denom);

  std::size_t error_dim_;
  std::size_t removed_ = 0;
  std::size_t rejected_ = 0;
  num::NeumaierSum logvol_;
  num::Matrix sigma_;
};

}  // namespace reveal::lwe
