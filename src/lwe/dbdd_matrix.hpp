#pragma once
// Full-covariance DBDD estimator (the "full Sigma" companion of the
// lightweight dim/log-vol tracker in dbdd.hpp).
//
// Maintains the ellipsoid covariance Sigma over all secret+error
// coordinates explicitly, so hints along ARBITRARY directions v — not just
// coordinates — can be integrated with the DDGR20 update rules:
//
//   perfect hint <s, v> = l:
//     nu    += 1/2 ln(v^T Sigma v)        (normalized log-volume)
//     Sigma -= Sigma v v^T Sigma / (v^T Sigma v);  dim -= 1
//   approximate hint <s, v> = l + e,  e ~ N(0, eps):
//     nu    += 1/2 ln((v^T Sigma v + eps) / eps)
//     Sigma -= Sigma v v^T Sigma / (v^T Sigma v + eps)
//
// Practical for dimensions up to a few hundred (O(d^2) per hint); the
// lightweight estimator remains the tool for the n = 1024 paper instance,
// and the two must agree on coordinate hints (tested).

#include <cstddef>
#include <vector>

#include "lwe/dbdd.hpp"
#include "numeric/matrix.hpp"

namespace reveal::lwe {

class DbddMatrixEstimator {
 public:
  explicit DbddMatrixEstimator(const DbddParams& params);

  /// Coordinate layout: [error_0 .. error_{m-1} | secret_0 .. secret_{n-1}].
  [[nodiscard]] std::size_t ambient_dim() const noexcept { return sigma_.rows(); }
  /// DBDD dimension (live coordinates + homogenization).
  [[nodiscard]] std::size_t dim() const noexcept;
  [[nodiscard]] double logvol() const noexcept { return logvol_; }
  [[nodiscard]] const num::Matrix& sigma() const noexcept { return sigma_; }

  /// Perfect hint along direction `v` (ambient_dim entries). Throws if the
  /// direction already has (numerically) zero variance.
  void integrate_perfect_hint(const std::vector<double>& v);

  /// Approximate hint with measurement variance `eps` > 0.
  void integrate_approximate_hint(const std::vector<double>& v, double eps);

  /// Convenience: perfect hint on error coordinate i.
  void integrate_perfect_error_hint(std::size_t i);

  [[nodiscard]] SecurityEstimate estimate() const;

 private:
  [[nodiscard]] double quadratic_form(const std::vector<double>& v,
                                      std::vector<double>& sigma_v) const;
  void rank_one_downdate(const std::vector<double>& sigma_v, double denom);

  std::size_t error_dim_;
  std::size_t removed_ = 0;
  double logvol_;  // normalized: ln Vol(Lambda) - 1/2 ln det Sigma, updated per hint
  num::Matrix sigma_;
};

}  // namespace reveal::lwe
