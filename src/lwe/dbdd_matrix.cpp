#include "lwe/dbdd_matrix.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace reveal::lwe {

namespace {
constexpr double kDegenerate = 1e-12;
/// Pending rank-1 downdates are flushed in fused blocks of this size.
constexpr std::size_t kMaxPending = 32;
/// Directions with at most this many nonzeros take the row-read path.
constexpr std::size_t kSparseMax = 8;

/// Mirrors the canonical upper triangle into the lower one, tile-blocked so
/// the strided writes stay cache-resident.
void mirror_full(double* sig, std::size_t d) {
  constexpr std::size_t kTile = 64;
  for (std::size_t ib = 0; ib < d; ib += kTile) {
    const std::size_t ie = std::min(ib + kTile, d);
    for (std::size_t jb = ib; jb < d; jb += kTile) {
      const std::size_t je = std::min(jb + kTile, d);
      for (std::size_t i = ib; i < ie; ++i) {
        const double* row = sig + i * d;
        for (std::size_t j = std::max(jb, i + 1); j < je; ++j) {
          sig[j * d + i] = row[j];
        }
      }
    }
  }
}

double init_logvol(const DbddParams& params, std::size_t d) {
  double half_log_det = 0.0;
  for (std::size_t i = 0; i < d; ++i) {
    const double var =
        i < params.error_dim ? params.error_variance : params.secret_variance;
    half_log_det += 0.5 * std::log(var);
  }
  return static_cast<double>(params.error_dim) * std::log(params.q) - half_log_det;
}

void validate_params(const DbddParams& params) {
  if (params.secret_dim == 0 || params.error_dim == 0 || params.q <= 1.0 ||
      params.secret_variance <= 0.0 || params.error_variance <= 0.0)
    throw std::invalid_argument("DbddMatrixEstimator: invalid parameters");
}
}  // namespace

// ---------------------------------------------------------------------------
// Fast path
// ---------------------------------------------------------------------------

DbddMatrixEstimator::DbddMatrixEstimator(const DbddParams& params)
    : error_dim_(params.error_dim),
      d_(params.error_dim + params.secret_dim),
      logvol_(0.0) {
  validate_params(params);
  sigma_.assign(d_ * d_, 0.0);
  for (std::size_t i = 0; i < d_; ++i) {
    sigma_[i * d_ + i] =
        i < params.error_dim ? params.error_variance : params.secret_variance;
  }
  logvol_ = num::NeumaierSum(init_logvol(params, d_));
  pending_.reserve(kMaxPending);
}

double DbddMatrixEstimator::apply_logical(const std::vector<double>& v,
                                          std::vector<double>& out) const {
  if (v.size() != d_)
    throw std::invalid_argument("DbddMatrixEstimator: direction dimension mismatch");
  // Sparse screen: few-nonzero directions read Sigma rows directly (rows
  // equal columns — the lower triangle is mirrored at every flush).
  std::size_t nnz_idx[kSparseMax];
  std::size_t nnz = 0;
  bool sparse = true;
  for (std::size_t i = 0; i < d_; ++i) {
    if (v[i] == 0.0) continue;
    if (nnz == kSparseMax) {
      sparse = false;
      break;
    }
    nnz_idx[nnz++] = i;
  }
  out.assign(d_, 0.0);
  if (sparse) {
    for (std::size_t k = 0; k < nnz; ++k) {
      const std::size_t m = nnz_idx[k];
      const double c = v[m];
      const double* row = sigma_.data() + m * d_;
      if (c == 1.0) {
        // Unit coordinate: a plain row copy is bit-identical to the dense
        // matvec (every other term of the reference's dot is a signed zero).
        if (nnz == 1) {
          std::copy(row, row + d_, out.begin());
        } else {
          for (std::size_t i = 0; i < d_; ++i) out[i] += row[i];
        }
      } else {
        for (std::size_t i = 0; i < d_; ++i) out[i] += c * row[i];
      }
    }
  } else {
    for (std::size_t i = 0; i < d_; ++i) {
      const double* row = sigma_.data() + i * d_;
      double acc = 0.0;
      for (std::size_t j = 0; j < d_; ++j) acc += row[j] * v[j];
      out[i] = acc;
    }
  }
  // Deferred downdates: Sigma_logical = Sigma_stored - sum_s u_s u_s^T / c_s,
  // so Sigma v picks up -(u_s^T v / c_s) u_s per pending hint, applied in
  // hint order with the reference's scale == 0 skip (preserves signed
  // zeros, and makes coordinate-hint corrections O(live) per pending row).
  for (const auto& p : pending_) {
    double w;
    if (sparse) {
      w = 0.0;
      for (std::size_t k = 0; k < nnz; ++k) {
        w += p.sigma_v[nnz_idx[k]] * v[nnz_idx[k]];
      }
    } else {
      w = 0.0;
      for (std::size_t j = 0; j < d_; ++j) w += p.sigma_v[j] * v[j];
    }
    for (std::size_t i = 0; i < d_; ++i) {
      const double s = p.sigma_v[i] / p.denom;
      if (s == 0.0) continue;
      out[i] -= s * w;
    }
  }
  if (sparse) {
    double q = 0.0;
    for (std::size_t k = 0; k < nnz; ++k) q += v[nnz_idx[k]] * out[nnz_idx[k]];
    return q;
  }
  double q = 0.0;
  for (std::size_t i = 0; i < d_; ++i) q += v[i] * out[i];
  return q;
}

HintOutcome DbddMatrixEstimator::admit(std::vector<double> sigma_v, double q,
                                       bool perfect, double eps) {
  if (q <= kDegenerate) {
    ++rejected_;
    return HintOutcome::kDegenerate;
  }
  if (perfect) {
    if (removed_ + 1 >= d_) {
      ++rejected_;
      return HintOutcome::kExhausted;
    }
    logvol_.add(0.5 * std::log(q));
    pending_.push_back({std::move(sigma_v), q});
    ++removed_;
  } else {
    logvol_.add(0.5 * std::log((q + eps) / eps));
    pending_.push_back({std::move(sigma_v), q + eps});
  }
  if (pending_.size() >= kMaxPending) flush();
  return HintOutcome::kApplied;
}

HintOutcome DbddMatrixEstimator::integrate_direction(const std::vector<double>& v,
                                                     bool perfect, double eps) {
  std::vector<double> sigma_v;
  const double q = apply_logical(v, sigma_v);
  return admit(std::move(sigma_v), q, perfect, eps);
}

HintOutcome DbddMatrixEstimator::integrate_perfect_hint(const std::vector<double>& v) {
  return integrate_direction(v, /*perfect=*/true, 0.0);
}

HintOutcome DbddMatrixEstimator::integrate_approximate_hint(
    const std::vector<double>& v, double eps) {
  if (eps <= 0.0)
    throw std::invalid_argument("DbddMatrixEstimator: eps must be positive");
  return integrate_direction(v, /*perfect=*/false, eps);
}

HintOutcome DbddMatrixEstimator::integrate_perfect_error_hint(std::size_t i) {
  if (i >= error_dim_)
    throw std::invalid_argument("DbddMatrixEstimator: error coordinate out of range");
  std::vector<double> v(d_, 0.0);
  v[i] = 1.0;
  return integrate_perfect_hint(v);
}

std::vector<HintOutcome> DbddMatrixEstimator::integrate_perfect_coordinate_hints(
    const std::vector<std::size_t>& coords) {
  std::vector<HintOutcome> out;
  out.reserve(coords.size());
  std::vector<double> v(d_, 0.0);
  for (const std::size_t c : coords) {
    if (c >= d_)
      throw std::invalid_argument("DbddMatrixEstimator: coordinate out of range");
    v[c] = 1.0;
    out.push_back(integrate_perfect_hint(v));
    v[c] = 0.0;
  }
  return out;
}

std::vector<HintOutcome> DbddMatrixEstimator::integrate_perfect_hints(
    const std::vector<std::vector<double>>& dirs) {
  std::vector<HintOutcome> out;
  out.reserve(dirs.size());
  std::vector<std::vector<double>> raws;
  for (std::size_t base = 0; base < dirs.size(); base += kMaxPending) {
    const std::size_t chunk = std::min(kMaxPending, dirs.size() - base);
    // The shared matvec pass below reads the stored buffer, so it must hold
    // every previously admitted downdate.
    flush();
    for (std::size_t t = 0; t < chunk; ++t) {
      if (dirs[base + t].size() != d_)
        throw std::invalid_argument(
            "DbddMatrixEstimator: direction dimension mismatch");
    }
    // One blocked pass over Sigma serves every direction in the chunk:
    // directions are tiled in groups of four so each row of Sigma streams
    // through once per group instead of once per hint.
    raws.assign(chunk, std::vector<double>(d_, 0.0));
    for (std::size_t t0 = 0; t0 < chunk; t0 += 4) {
      const std::size_t tn = std::min<std::size_t>(4, chunk - t0);
      const double* v0 = dirs[base + t0].data();
      const double* v1 = tn > 1 ? dirs[base + t0 + 1].data() : v0;
      const double* v2 = tn > 2 ? dirs[base + t0 + 2].data() : v0;
      const double* v3 = tn > 3 ? dirs[base + t0 + 3].data() : v0;
      for (std::size_t i = 0; i < d_; ++i) {
        const double* row = sigma_.data() + i * d_;
        double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
        for (std::size_t j = 0; j < d_; ++j) {
          const double r = row[j];
          a0 += r * v0[j];
          a1 += r * v1[j];
          a2 += r * v2[j];
          a3 += r * v3[j];
        }
        raws[t0][i] = a0;
        if (tn > 1) raws[t0 + 1][i] = a1;
        if (tn > 2) raws[t0 + 2][i] = a2;
        if (tn > 3) raws[t0 + 3][i] = a3;
      }
    }
    // Sequential admission: hint t sees the in-chunk downdates of hints
    // s < t through the pending corrections (apply_logical's rule, inlined
    // here against the precomputed raw matvecs).
    for (std::size_t t = 0; t < chunk; ++t) {
      const std::vector<double>& v = dirs[base + t];
      std::vector<double>& sv = raws[t];
      for (const auto& p : pending_) {
        double w = 0.0;
        for (std::size_t j = 0; j < d_; ++j) w += p.sigma_v[j] * v[j];
        for (std::size_t i = 0; i < d_; ++i) {
          const double s = p.sigma_v[i] / p.denom;
          if (s == 0.0) continue;
          sv[i] -= s * w;
        }
      }
      double q = 0.0;
      for (std::size_t i = 0; i < d_; ++i) q += v[i] * sv[i];
      out.push_back(admit(std::move(sv), q, /*perfect=*/true, 0.0));
    }
    flush();
  }
  return out;
}

void DbddMatrixEstimator::flush() {
  const std::size_t k = pending_.size();
  if (k == 0) return;
  // Fused rank-k pass over the upper triangle. The per-row/per-hint scale
  // and its == 0 skip replay the reference downdate's row loop; running the
  // active hints t-outer over the row tail keeps every element's update
  // sequence in hint order, so per-element arithmetic matches a sequence of
  // reference downdates exactly. Rows with no active hint are untouched —
  // a flush of coordinate hints costs O(k*d), not O(k*d^2).
  std::vector<double> scales(k);
  std::vector<std::size_t> active(k);
  std::vector<std::size_t> touched;
  touched.reserve(std::min(d_, std::size_t{256}));
  for (std::size_t i = 0; i < d_; ++i) {
    std::size_t na = 0;
    for (std::size_t t = 0; t < k; ++t) {
      const double s = pending_[t].sigma_v[i] / pending_[t].denom;
      if (s == 0.0) continue;
      scales[na] = s;
      active[na] = t;
      ++na;
    }
    if (na == 0) continue;
    touched.push_back(i);
    double* row = sigma_.data() + i * d_;
    for (std::size_t a = 0; a < na; ++a) {
      const double s = scales[a];
      const double* u = pending_[active[a]].sigma_v.data();
      for (std::size_t j = i; j < d_; ++j) row[j] -= s * u[j];
    }
  }
  // Periodic re-symmetrization: the lower triangle is refreshed from the
  // canonical upper one at every flush boundary.
  if (touched.size() * 8 >= d_) {
    mirror_full(sigma_.data(), d_);
  } else {
    for (const std::size_t i : touched) {
      const double* row = sigma_.data() + i * d_;
      for (std::size_t j = i + 1; j < d_; ++j) sigma_[j * d_ + i] = row[j];
    }
  }
  pending_.clear();
}

num::Matrix DbddMatrixEstimator::sigma() const {
  num::Matrix m(d_, d_);
  m.data() = sigma_;
  if (!pending_.empty()) {
    // Replay flush() on the copy (same per-element arithmetic) without
    // mutating the estimator.
    double* sig = m.data().data();
    for (std::size_t i = 0; i < d_; ++i) {
      double* row = sig + i * d_;
      bool any = false;
      for (const auto& p : pending_) {
        const double s = p.sigma_v[i] / p.denom;
        if (s == 0.0) continue;
        any = true;
        const double* u = p.sigma_v.data();
        for (std::size_t j = i; j < d_; ++j) row[j] -= s * u[j];
      }
      (void)any;
    }
    mirror_full(sig, d_);
  }
  return m;
}

SecurityEstimate DbddMatrixEstimator::estimate() const {
  return estimate_from_dim_logvol(dim(), logvol());
}

// ---------------------------------------------------------------------------
// Reference path (the pre-optimization implementation)
// ---------------------------------------------------------------------------

DbddMatrixEstimatorReference::DbddMatrixEstimatorReference(const DbddParams& params)
    : error_dim_(params.error_dim), logvol_(0.0) {
  validate_params(params);
  const std::size_t d = params.error_dim + params.secret_dim;
  sigma_ = num::Matrix(d, d);
  for (std::size_t i = 0; i < d; ++i) {
    sigma_(i, i) =
        i < params.error_dim ? params.error_variance : params.secret_variance;
  }
  logvol_ = num::NeumaierSum(init_logvol(params, d));
}

double DbddMatrixEstimatorReference::quadratic_form(const std::vector<double>& v,
                                                    std::vector<double>& sigma_v) const {
  if (v.size() != sigma_.rows())
    throw std::invalid_argument("DbddMatrixEstimator: direction dimension mismatch");
  sigma_v = sigma_.apply(v);
  double q = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i) q += v[i] * sigma_v[i];
  return q;
}

void DbddMatrixEstimatorReference::rank_one_downdate(const std::vector<double>& sigma_v,
                                                     double denom) {
  const std::size_t d = sigma_.rows();
  for (std::size_t i = 0; i < d; ++i) {
    const double scale = sigma_v[i] / denom;
    if (scale == 0.0) continue;
    for (std::size_t j = 0; j < d; ++j) {
      sigma_(i, j) -= scale * sigma_v[j];
    }
  }
}

HintOutcome DbddMatrixEstimatorReference::integrate_perfect_hint(
    const std::vector<double>& v) {
  std::vector<double> sigma_v;
  const double q = quadratic_form(v, sigma_v);
  if (q <= kDegenerate) {
    ++rejected_;
    return HintOutcome::kDegenerate;
  }
  if (removed_ + 1 >= sigma_.rows()) {
    ++rejected_;
    return HintOutcome::kExhausted;
  }
  logvol_.add(0.5 * std::log(q));
  rank_one_downdate(sigma_v, q);
  ++removed_;
  return HintOutcome::kApplied;
}

HintOutcome DbddMatrixEstimatorReference::integrate_approximate_hint(
    const std::vector<double>& v, double eps) {
  if (eps <= 0.0)
    throw std::invalid_argument("DbddMatrixEstimator: eps must be positive");
  std::vector<double> sigma_v;
  const double q = quadratic_form(v, sigma_v);
  if (q <= kDegenerate) {
    ++rejected_;
    return HintOutcome::kDegenerate;  // nothing left to learn along v
  }
  logvol_.add(0.5 * std::log((q + eps) / eps));
  rank_one_downdate(sigma_v, q + eps);
  return HintOutcome::kApplied;
}

HintOutcome DbddMatrixEstimatorReference::integrate_perfect_error_hint(std::size_t i) {
  if (i >= error_dim_)
    throw std::invalid_argument("DbddMatrixEstimator: error coordinate out of range");
  std::vector<double> v(sigma_.rows(), 0.0);
  v[i] = 1.0;
  return integrate_perfect_hint(v);
}

std::vector<HintOutcome> DbddMatrixEstimatorReference::integrate_perfect_hints(
    const std::vector<std::vector<double>>& dirs) {
  std::vector<HintOutcome> out;
  out.reserve(dirs.size());
  for (const auto& v : dirs) out.push_back(integrate_perfect_hint(v));
  return out;
}

std::vector<HintOutcome>
DbddMatrixEstimatorReference::integrate_perfect_coordinate_hints(
    const std::vector<std::size_t>& coords) {
  std::vector<HintOutcome> out;
  out.reserve(coords.size());
  std::vector<double> v(sigma_.rows(), 0.0);
  for (const std::size_t c : coords) {
    if (c >= sigma_.rows())
      throw std::invalid_argument("DbddMatrixEstimator: coordinate out of range");
    v[c] = 1.0;
    out.push_back(integrate_perfect_hint(v));
    v[c] = 0.0;
  }
  return out;
}

SecurityEstimate DbddMatrixEstimatorReference::estimate() const {
  return estimate_from_dim_logvol(dim(), logvol());
}

}  // namespace reveal::lwe
