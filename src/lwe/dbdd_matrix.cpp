#include "lwe/dbdd_matrix.hpp"

#include <cmath>
#include <stdexcept>

namespace reveal::lwe {

namespace {
constexpr double kDegenerate = 1e-12;
}

DbddMatrixEstimator::DbddMatrixEstimator(const DbddParams& params)
    : error_dim_(params.error_dim) {
  if (params.secret_dim == 0 || params.error_dim == 0 || params.q <= 1.0 ||
      params.secret_variance <= 0.0 || params.error_variance <= 0.0)
    throw std::invalid_argument("DbddMatrixEstimator: invalid parameters");
  const std::size_t d = params.error_dim + params.secret_dim;
  sigma_ = num::Matrix(d, d);
  double half_log_det = 0.0;
  for (std::size_t i = 0; i < d; ++i) {
    const double var = i < params.error_dim ? params.error_variance
                                            : params.secret_variance;
    sigma_(i, i) = var;
    half_log_det += 0.5 * std::log(var);
  }
  logvol_ = static_cast<double>(params.error_dim) * std::log(params.q) - half_log_det;
}

std::size_t DbddMatrixEstimator::dim() const noexcept {
  return sigma_.rows() - removed_ + 1;  // + homogenization
}

double DbddMatrixEstimator::quadratic_form(const std::vector<double>& v,
                                           std::vector<double>& sigma_v) const {
  if (v.size() != sigma_.rows())
    throw std::invalid_argument("DbddMatrixEstimator: direction dimension mismatch");
  sigma_v = sigma_.apply(v);
  double q = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i) q += v[i] * sigma_v[i];
  return q;
}

void DbddMatrixEstimator::rank_one_downdate(const std::vector<double>& sigma_v,
                                            double denom) {
  const std::size_t d = sigma_.rows();
  for (std::size_t i = 0; i < d; ++i) {
    const double scale = sigma_v[i] / denom;
    if (scale == 0.0) continue;
    for (std::size_t j = 0; j < d; ++j) {
      sigma_(i, j) -= scale * sigma_v[j];
    }
  }
}

void DbddMatrixEstimator::integrate_perfect_hint(const std::vector<double>& v) {
  std::vector<double> sigma_v;
  const double q = quadratic_form(v, sigma_v);
  if (q <= kDegenerate)
    throw std::logic_error(
        "DbddMatrixEstimator: direction already determined (zero variance)");
  logvol_ += 0.5 * std::log(q);
  rank_one_downdate(sigma_v, q);
  ++removed_;
  if (removed_ >= sigma_.rows())
    throw std::logic_error("DbddMatrixEstimator: all coordinates eliminated");
}

void DbddMatrixEstimator::integrate_approximate_hint(const std::vector<double>& v,
                                                     double eps) {
  if (eps <= 0.0)
    throw std::invalid_argument("DbddMatrixEstimator: eps must be positive");
  std::vector<double> sigma_v;
  const double q = quadratic_form(v, sigma_v);
  if (q <= kDegenerate) return;  // nothing left to learn along v
  logvol_ += 0.5 * std::log((q + eps) / eps);
  rank_one_downdate(sigma_v, q + eps);
}

void DbddMatrixEstimator::integrate_perfect_error_hint(std::size_t i) {
  if (i >= error_dim_)
    throw std::invalid_argument("DbddMatrixEstimator: error coordinate out of range");
  std::vector<double> v(sigma_.rows(), 0.0);
  v[i] = 1.0;
  integrate_perfect_hint(v);
}

SecurityEstimate DbddMatrixEstimator::estimate() const {
  const auto d = static_cast<double>(dim());
  const double nu = logvol_;
  const auto f = [d, nu](double beta) {
    return (2.0 * beta - d - 1.0) * std::log(bkz_delta(beta)) + nu / d -
           0.5 * std::log(beta);
  };
  SecurityEstimate out;
  out.dim = dim();
  double lo = 2.0;
  double hi = d;
  if (f(lo) >= 0.0) {
    out.beta = lo;
  } else if (f(hi) < 0.0) {
    out.beta = hi;
  } else {
    for (int iter = 0; iter < 200 && hi - lo > 1e-3; ++iter) {
      const double mid = 0.5 * (lo + hi);
      if (f(mid) >= 0.0) hi = mid;
      else lo = mid;
    }
    out.beta = 0.5 * (lo + hi);
  }
  out.delta = bkz_delta(out.beta);
  out.bits = out.beta / kBikzPerBit;
  return out;
}

}  // namespace reveal::lwe
