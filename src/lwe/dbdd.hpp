#pragma once
// Lightweight DBDD security estimator — the C++ equivalent of the
// "LWE with side information" framework of Dachman-Soled, Ducas, Gong &
// Rossi (CRYPTO 2020) that the paper applies to its measurements
// (§IV-C, Tables II-IV).
//
// The estimator embeds the LWE instance into a Distorted Bounded Distance
// Decoding (DBDD) instance described by a lattice volume and a per-
// coordinate variance profile, integrates hints by updating (dim, volume,
// variances), and reports the BKZ block size beta ("bikz") at which the
// GSA-intersect condition predicts the primal uSVP attack succeeds:
//
//     sqrt(beta) <= delta(beta)^(2*beta - dim - 1) * Vol^(1/dim)
//
// with Vol the Sigma-normalized volume. Hint rules (DDGR20 §4, specialized
// to coordinate hints v = e_i, which is all the side-channel produces):
//   perfect hint      : coordinate removed; dim -= 1; volume gains
//                       sqrt(var_i) (normalization loses the coordinate)
//   approximate hint  : conditioning with measurement variance eps:
//                       var_i -> var_i*eps/(var_i + eps)
//   posterior hint    : distribution replacement var_i -> new_var
//                       (used for sign-only information: the half-Gaussian
//                        conditional variance)
//
// bikz -> bits uses the paper's footnote 3 anchor: 382.25 bikz = 128 bits.

#include <cstddef>
#include <vector>

#include "lattice/bkz_sim.hpp"

namespace reveal::lwe {

/// bikz per bit of security (382.25 / 128, paper footnote 3).
inline constexpr double kBikzPerBit = 382.25 / 128.0;

/// Root-Hermite factor delta(beta). Uses the asymptotic formula
/// ((pi*beta)^(1/beta) * beta / (2*pi*e))^(1/(2*(beta-1))) for beta >= 36
/// and a log-linear interpolation down to delta(2) = 1.0219 below.
[[nodiscard]] double bkz_delta(double beta);

struct DbddParams {
  std::size_t secret_dim = 0;   ///< n
  std::size_t error_dim = 0;    ///< m (samples)
  double q = 0.0;
  double secret_variance = 0.0; ///< per-coordinate prior variance of s
  double error_variance = 0.0;  ///< per-coordinate prior variance of e
};

struct SecurityEstimate {
  double beta = 0.0;   ///< bikz
  double delta = 0.0;  ///< delta(beta)
  double bits = 0.0;   ///< beta / kBikzPerBit
  std::size_t dim = 0; ///< dimension of the estimated uSVP instance
};

/// GSA-intersect bisection shared by the estimators: the smallest beta with
/// (2*beta - dim - 1)*ln(delta(beta)) + logvol/dim - 0.5*ln(beta) >= 0.
[[nodiscard]] SecurityEstimate estimate_from_dim_logvol(std::size_t dim,
                                                        double logvol);

class DbddEstimator {
 public:
  explicit DbddEstimator(const DbddParams& params);

  /// Current DBDD dimension (live coordinates + homogenization).
  [[nodiscard]] std::size_t dim() const noexcept;
  /// Normalized log-volume ln Vol - 1/2 ln det Sigma over live coordinates.
  [[nodiscard]] double logvol() const noexcept;

  /// Number of error/secret coordinates not yet eliminated.
  [[nodiscard]] std::size_t live_error_coords() const noexcept;
  [[nodiscard]] std::size_t live_secret_coords() const noexcept;

  /// Integrates `count` perfect hints on error coordinates (e_i known).
  void integrate_perfect_error_hints(std::size_t count);
  /// Perfect hints on secret coordinates.
  void integrate_perfect_secret_hints(std::size_t count);
  /// Approximate hints: e_i measured with additive noise variance `eps`.
  void integrate_approximate_error_hints(double eps_variance, std::size_t count);
  /// A-posteriori replacement: e_i's distribution replaced by one with
  /// variance `new_variance` (e.g. sign-conditioned half-Gaussian).
  void integrate_posterior_error_hints(double new_variance, std::size_t count);

  /// Modular hints (paper §IV-C list): e_i known mod k. Following DDGR20,
  /// the sub-lattice volume grows by k per hint while dimension and (for
  /// k ≲ sigma) the variance profile stay unchanged. k must be >= 2.
  void integrate_modular_error_hints(double k, std::size_t count);

  /// Solves the GSA-intersect condition for the smallest viable beta.
  [[nodiscard]] SecurityEstimate estimate() const;

  /// Sigma-normalized per-coordinate log profile (sorted descending) of the
  /// current DBDD instance — the BKZ simulator's input. Live error
  /// coordinates carry an even share of the lattice log-volume on top of
  /// their -1/2 ln(var) normalization, secret coordinates carry
  /// -1/2 ln(var), the homogenization row is 0; the entries sum to
  /// logvol(), so the simulated and closed-form estimates see the same
  /// normalized volume.
  [[nodiscard]] std::vector<double> normalized_log_profile() const;

  /// BKZ-simulator bikz estimate (CN11 profile simulation + 2016-estimate
  /// intersect) — the fast path for full paper-scale hint curves. The
  /// closed-form estimate() and estimate_simulated_reference() are its
  /// anchors.
  [[nodiscard]] SecurityEstimate estimate_simulated(
      const lattice::BkzSimParams& params = {}) const;

  /// Same predicate through the naive-summation simulator and a linear
  /// block-size scan (differential anchor for estimate_simulated).
  [[nodiscard]] SecurityEstimate estimate_simulated_reference(
      const lattice::BkzSimParams& params = {}) const;

 private:
  double pop_error_variance();

  double log_vol_lattice_;              // ln Vol(Lambda) = m ln q (+ modular hints)
  std::vector<double> secret_vars_;     // live secret coordinate variances
  std::vector<double> error_vars_;      // live error coordinate variances
};

/// Convenience: estimate for a fresh (hint-free) LWE instance.
[[nodiscard]] SecurityEstimate estimate_lwe_security(const DbddParams& params);

}  // namespace reveal::lwe
