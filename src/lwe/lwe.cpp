#include "lwe/lwe.hpp"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "lattice/lattice.hpp"
#include "seal/modarith.hpp"

namespace reveal::lwe {

namespace {

std::int64_t center(std::uint64_t x, std::uint64_t q) noexcept {
  return x > q / 2 ? static_cast<std::int64_t>(x) - static_cast<std::int64_t>(q)
                   : static_cast<std::int64_t>(x);
}

std::uint64_t reduce_signed(std::int64_t x, std::uint64_t q) noexcept {
  const auto qi = static_cast<std::int64_t>(q);
  std::int64_t r = x % qi;
  if (r < 0) r += qi;
  return static_cast<std::uint64_t>(r);
}

}  // namespace

SampledLwe sample_lwe(const LweParams& params, num::Xoshiro256StarStar& rng) {
  if (params.q < 2) throw std::invalid_argument("sample_lwe: q must be >= 2");
  SampledLwe out;
  out.instance.n = params.n;
  out.instance.m = params.m;
  out.instance.q = params.q;
  out.instance.a.resize(params.m * params.n);
  out.instance.b.resize(params.m);
  out.secret.resize(params.n);
  out.error.resize(params.m);

  for (auto& v : out.instance.a) v = rng.uniform_below(params.q);
  for (std::size_t j = 0; j < params.n; ++j) {
    if (params.secret == SecretDist::kTernary) {
      out.secret[j] = rng.uniform_int(-1, 1);
    } else {
      out.secret[j] = std::llround(rng.gaussian(0.0, params.sigma));
    }
  }
  for (std::size_t i = 0; i < params.m; ++i) {
    out.error[i] = std::llround(rng.gaussian(0.0, params.sigma));
    std::int64_t acc = 0;
    for (std::size_t j = 0; j < params.n; ++j) {
      acc += center(out.instance.at(i, j), params.q) * out.secret[j];
      acc %= static_cast<std::int64_t>(params.q);
    }
    out.instance.b[i] = reduce_signed(acc + out.error[i], params.q);
  }
  return out;
}

std::vector<std::vector<std::int64_t>> kannan_embedding(const LweInstance& inst) {
  // Rows (d = m + n + 1 of them, d columns):
  //   [ q*I_m   |  0    | 0 ]   (modular reductions of the samples)
  //   [ A_col_j |  e_j  | 0 ]   (one row per secret coordinate)
  //   [ b       |  0    | 1 ]   (the target row)
  // Then b_row - sum_j s_j*A_rows - k*q_rows = (e | -s | 1): the planted
  // short vector.
  const std::size_t d = inst.m + inst.n + 1;
  std::vector<std::vector<std::int64_t>> basis(d, std::vector<std::int64_t>(d, 0));
  for (std::size_t i = 0; i < inst.m; ++i) {
    basis[i][i] = static_cast<std::int64_t>(inst.q);
  }
  for (std::size_t j = 0; j < inst.n; ++j) {
    auto& row = basis[inst.m + j];
    for (std::size_t i = 0; i < inst.m; ++i) {
      row[i] = center(inst.at(i, j), inst.q);
    }
    row[inst.m + j] = 1;
  }
  auto& target = basis[inst.m + inst.n];
  for (std::size_t i = 0; i < inst.m; ++i) target[i] = center(inst.b[i], inst.q);
  target[d - 1] = 1;
  return basis;
}

std::optional<std::vector<std::int64_t>> solve_with_perfect_hints(
    const LweInstance& inst, const std::vector<std::optional<std::int64_t>>& known_error) {
  if (known_error.size() != inst.m)
    throw std::invalid_argument("solve_with_perfect_hints: hint vector size mismatch");
  const seal::Modulus q(inst.q);
  if (!q.is_prime())
    throw std::invalid_argument("solve_with_perfect_hints: q must be prime");

  // Build the exact system rows: a_i · s = b_i - e_i (mod q).
  std::vector<std::vector<std::uint64_t>> rows;  // n coefficients + rhs
  for (std::size_t i = 0; i < inst.m; ++i) {
    if (!known_error[i].has_value()) continue;
    std::vector<std::uint64_t> row(inst.n + 1);
    for (std::size_t j = 0; j < inst.n; ++j) row[j] = inst.at(i, j);
    const std::int64_t rhs =
        static_cast<std::int64_t>(inst.b[i]) - *known_error[i];
    row[inst.n] = reduce_signed(rhs, inst.q);
    rows.push_back(std::move(row));
  }
  if (rows.size() < inst.n) return std::nullopt;

  // Gaussian elimination mod q.
  std::size_t rank = 0;
  for (std::size_t col = 0; col < inst.n && rank < rows.size(); ++col) {
    std::size_t pivot = rank;
    while (pivot < rows.size() && rows[pivot][col] == 0) ++pivot;
    if (pivot == rows.size()) continue;  // free column -> underdetermined
    std::swap(rows[rank], rows[pivot]);
    const std::uint64_t inv = seal::inverse_mod(rows[rank][col], q);
    for (auto& v : rows[rank]) v = seal::mul_mod(v, inv, q);
    for (std::size_t r = 0; r < rows.size(); ++r) {
      if (r == rank || rows[r][col] == 0) continue;
      const std::uint64_t factor = rows[r][col];
      for (std::size_t c = col; c <= inst.n; ++c) {
        rows[r][c] = seal::sub_mod(rows[r][c], seal::mul_mod(factor, rows[rank][c], q), q);
      }
    }
    ++rank;
  }
  if (rank < inst.n) return std::nullopt;

  std::vector<std::int64_t> secret(inst.n, 0);
  for (std::size_t r = 0; r < rank; ++r) {
    // After full elimination each of the first n pivot rows is e_col = rhs.
    std::size_t col = 0;
    while (col < inst.n && rows[r][col] == 0) ++col;
    if (col == inst.n) continue;
    secret[col] = center(rows[r][inst.n], inst.q);
  }
  return secret;
}

std::optional<std::vector<std::int64_t>> primal_attack(const LweInstance& inst,
                                                       std::size_t block_size,
                                                       std::size_t max_tours) {
  auto basis = kannan_embedding(inst);
  lattice::BkzParams params;
  params.block_size = block_size;
  params.max_tours = max_tours;
  lattice::bkz_reduce(basis, params);

  // Look for a row of the form +-(e | -s | 1).
  const std::size_t d = inst.m + inst.n + 1;
  for (const auto& row : basis) {
    if (row.size() != d) continue;
    const std::int64_t last = row[d - 1];
    if (last != 1 && last != -1) continue;
    std::vector<std::int64_t> secret(inst.n);
    for (std::size_t j = 0; j < inst.n; ++j) {
      secret[j] = -row[inst.m + j] * last;  // undo global sign
    }
    // Verify: b - A s must be small (the error part of the row).
    bool consistent = true;
    for (std::size_t i = 0; i < inst.m && consistent; ++i) {
      std::int64_t acc = 0;
      for (std::size_t j = 0; j < inst.n; ++j) {
        acc += center(inst.at(i, j), inst.q) * secret[j];
        acc %= static_cast<std::int64_t>(inst.q);
      }
      const std::uint64_t residual = reduce_signed(
          static_cast<std::int64_t>(inst.b[i]) - acc, inst.q);
      const std::int64_t centered = center(residual, inst.q);
      if (std::llabs(centered) > static_cast<std::int64_t>(inst.q / 4)) consistent = false;
    }
    if (consistent) return secret;
  }
  return std::nullopt;
}

std::optional<std::vector<std::int64_t>> bdd_attack(const LweInstance& inst,
                                                    std::size_t block_size,
                                                    std::size_t max_tours) {
  // q-ary lattice basis (d = m + n rows):
  //   [ q I_m   | 0   ]
  //   [ A_col_j | e_j ]
  // The point closest to (b | 0) is (A s + q k | s) at distance ||(e | -s)||.
  const std::size_t d = inst.m + inst.n;
  lattice::Basis basis(d, std::vector<std::int64_t>(d, 0));
  for (std::size_t i = 0; i < inst.m; ++i) basis[i][i] = static_cast<std::int64_t>(inst.q);
  for (std::size_t j = 0; j < inst.n; ++j) {
    auto& row = basis[inst.m + j];
    for (std::size_t i = 0; i < inst.m; ++i) row[i] = center(inst.at(i, j), inst.q);
    row[inst.m + j] = 1;
  }
  lattice::BkzParams params;
  params.block_size = block_size;
  params.max_tours = max_tours;
  lattice::bkz_reduce(basis, params);

  std::vector<std::int64_t> target(d, 0);
  for (std::size_t i = 0; i < inst.m; ++i) target[i] = center(inst.b[i], inst.q);
  const auto point = lattice::babai_nearest_plane(basis, target);

  std::vector<std::int64_t> secret(point.begin() + static_cast<std::ptrdiff_t>(inst.m),
                                   point.end());
  // Verify: residuals b - A s must be small mod q.
  for (std::size_t i = 0; i < inst.m; ++i) {
    std::int64_t acc = 0;
    for (std::size_t j = 0; j < inst.n; ++j) {
      acc += center(inst.at(i, j), inst.q) * secret[j];
      acc %= static_cast<std::int64_t>(inst.q);
    }
    const std::int64_t residual =
        center(reduce_signed(static_cast<std::int64_t>(inst.b[i]) - acc, inst.q), inst.q);
    if (std::llabs(residual) > static_cast<std::int64_t>(inst.q / 4)) return std::nullopt;
  }
  return secret;
}

}  // namespace reveal::lwe
