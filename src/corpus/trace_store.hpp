#pragma once
// Memory-mapped, chunked, append-only trace corpus (DESIGN.md §8).
//
// CorpusWriter buffers appended traces into chunks and commits each chunk
// with the dual-slot commit pointer of corpus_format.hpp: a crash or kill
// mid-append can never corrupt previously committed chunks — reopening
// either sees the corpus as of the last commit (reader) or truncates the
// torn tail and resumes from it (appender).
//
// CorpusReader maps the file once and serves zero-copy TraceViews: the
// per-trace sample data is read in place from the mapping (8-byte aligned
// by format), so iterating 10^6 traces touches no allocator and copies no
// sample bytes. Structural validation (chunk bounds, header CRCs, record
// bounds, plausibility caps) always runs at open; payload CRC verification
// is on by default and can be skipped for bulk re-reads of trusted local
// files.
//
// The writer is deterministic: the bytes of a corpus file are a pure
// function of the appended trace sequence and the chunking options (no
// timestamps, no padding junk) — merging per-shard corpora in shard order
// therefore yields a byte-identical file for every shard count.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "corpus/corpus_format.hpp"
#include "corpus/mmap_file.hpp"
#include "sca/trace.hpp"

namespace reveal::corpus {

/// Zero-copy view of one stored trace; `samples` points into the reader's
/// mapping and stays valid for the reader's lifetime.
struct TraceView {
  std::int32_t label = 0;
  std::span<const double> samples;
};

struct WriterOptions {
  /// Traces buffered per chunk before an automatic commit.
  std::size_t traces_per_chunk = 1024;
  /// Early-commit threshold on buffered payload bytes (long traces).
  std::size_t chunk_payload_budget = std::size_t{8} << 20;
  /// fsync the data and the commit slot around every commit. Off by
  /// default: the format is already safe against process kills (the page
  /// cache is coherent for readers); fsync only adds power-loss ordering
  /// at a large throughput cost.
  bool fsync_commits = false;
};

class CorpusWriter {
 public:
  /// Creates (truncates) a fresh corpus at `path`.
  static CorpusWriter create(const std::string& path, WriterOptions options = {});

  /// Opens an existing corpus for appending: validates the header, selects
  /// the live commit record, and truncates any torn tail past it.
  static CorpusWriter append(const std::string& path, WriterOptions options = {});

  CorpusWriter(CorpusWriter&&) noexcept;
  CorpusWriter& operator=(CorpusWriter&&) noexcept;
  CorpusWriter(const CorpusWriter&) = delete;
  CorpusWriter& operator=(const CorpusWriter&) = delete;
  ~CorpusWriter();

  void add(std::int32_t label, std::span<const double> samples);
  void add(const sca::Trace& trace) { add(trace.label, trace.samples); }

  /// Commits buffered traces as one chunk (no-op when the buffer is empty).
  void commit();

  /// commit() + close the descriptor. Called by the destructor; call
  /// explicitly to observe errors.
  void close();

  [[nodiscard]] std::uint64_t trace_count() const noexcept {
    return committed_.trace_count + buffered_count_;
  }
  [[nodiscard]] std::uint64_t committed_traces() const noexcept {
    return committed_.trace_count;
  }
  [[nodiscard]] std::uint64_t committed_chunks() const noexcept {
    return committed_.chunk_count;
  }
  [[nodiscard]] std::uint64_t committed_bytes() const noexcept {
    return committed_.committed_bytes;
  }

 private:
  CorpusWriter(int fd, std::string path, WriterOptions options, CommitRecord committed);

  void write_at(std::uint64_t offset, const void* data, std::size_t bytes);

  int fd_ = -1;
  std::string path_;
  WriterOptions options_;
  CommitRecord committed_;  ///< last durable commit (seq, bytes, counts)
  std::vector<std::uint8_t> records_;   ///< buffered record bytes
  std::vector<std::uint64_t> offsets_;  ///< buffered per-trace payload offsets (placeholders)
  std::uint32_t buffered_count_ = 0;
};

struct ReaderOptions {
  /// Verify every chunk's payload CRC at open (bit-flip detection). The
  /// structural walk (bounds, header CRCs, caps) runs unconditionally.
  bool verify_payload_crc = true;
};

class CorpusReader {
 public:
  explicit CorpusReader(const std::string& path, ReaderOptions options = {});

  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  [[nodiscard]] bool empty() const noexcept { return records_.empty(); }
  [[nodiscard]] std::uint64_t chunk_count() const noexcept { return chunk_count_; }
  [[nodiscard]] std::uint64_t committed_bytes() const noexcept { return committed_bytes_; }

  /// Zero-copy view of trace `i`; valid for the reader's lifetime.
  [[nodiscard]] TraceView operator[](std::size_t i) const noexcept;
  [[nodiscard]] TraceView at(std::size_t i) const;

  /// Copies trace `i` into an owning sca::Trace (bridge to the analysis
  /// APIs that take vectors).
  [[nodiscard]] sca::Trace materialize(std::size_t i) const;

 private:
  MmapFile map_;
  std::vector<const std::uint8_t*> records_;  ///< per-trace record pointers
  std::uint64_t chunk_count_ = 0;
  std::uint64_t committed_bytes_ = 0;
};

/// Appends every trace of `sources` (in the given order) into a fresh
/// corpus at `dest`. Deterministic: the merged file's bytes depend only on
/// the concatenated trace sequence and `options` — shard corpora covering
/// contiguous ranges merge to the same file for every shard count.
void merge_corpora(const std::string& dest, const std::vector<std::string>& sources,
                   WriterOptions options = {});

}  // namespace reveal::corpus
