#include "corpus/corpus_format.hpp"

#include <array>

namespace reveal::corpus {

namespace {

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrcTable = make_crc32_table();

}  // namespace

std::uint32_t crc32(const void* data, std::size_t bytes, std::uint32_t seed) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < bytes; ++i) c = kCrcTable[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

}  // namespace reveal::corpus
