#include "corpus/trace_store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace reveal::corpus {

namespace {

[[noreturn]] void fail(const std::string& what) { throw std::runtime_error("corpus: " + what); }

[[noreturn]] void fail_errno(const std::string& what, const std::string& path) {
  throw std::runtime_error("corpus: " + what + " " + path + ": " + std::strerror(errno));
}

/// The live commit record: the CRC-valid slot with the highest seq. A torn
/// slot write invalidates that slot's CRC, so this always lands on the
/// last *completed* commit. Throws when neither slot validates.
CommitRecord select_commit(const FileHeader& header, const std::string& path) {
  const CommitRecord* live = nullptr;
  for (const CommitRecord& slot : header.slots) {
    if (slot.seq == 0) continue;
    if (commit_record_crc(slot) != slot.crc) continue;
    if (live == nullptr || slot.seq > live->seq) live = &slot;
  }
  if (live == nullptr) fail("no valid commit record in " + path);
  if (live->committed_bytes < kFileHeaderBytes || live->committed_bytes % 8 != 0)
    fail("implausible commit pointer in " + path);
  if (live->chunk_count > kMaxChunks) fail("implausible chunk count in " + path);
  return *live;
}

FileHeader parse_file_header(const std::uint8_t* data, std::size_t size,
                             const std::string& path) {
  if (size < kFileHeaderBytes) fail("file too small for header: " + path);
  FileHeader header;
  std::memcpy(&header, data, sizeof(header));
  if (std::memcmp(header.magic, kFileMagic, sizeof(kFileMagic)) != 0)
    fail("bad magic in " + path);
  if (header.version != kFormatVersion) fail("unsupported version in " + path);
  return header;
}

}  // namespace

// --- CorpusWriter ----------------------------------------------------------

CorpusWriter::CorpusWriter(int fd, std::string path, WriterOptions options,
                           CommitRecord committed)
    : fd_(fd), path_(std::move(path)), options_(options), committed_(committed) {
  if (options_.traces_per_chunk == 0) options_.traces_per_chunk = 1;
}

CorpusWriter CorpusWriter::create(const std::string& path, WriterOptions options) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) fail_errno("cannot create", path);

  FileHeader header{};
  std::memcpy(header.magic, kFileMagic, sizeof(kFileMagic));
  header.version = kFormatVersion;
  CommitRecord initial{};
  initial.seq = 1;
  initial.committed_bytes = kFileHeaderBytes;
  initial.crc = commit_record_crc(initial);
  header.slots[initial.seq % 2] = initial;

  CorpusWriter writer(fd, path, options, initial);
  writer.write_at(0, &header, sizeof(header));
  return writer;
}

CorpusWriter CorpusWriter::append(const std::string& path, WriterOptions options) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CLOEXEC);
  if (fd < 0) fail_errno("cannot open for append", path);

  std::uint8_t raw[kFileHeaderBytes];
  const ssize_t got = ::pread(fd, raw, sizeof(raw), 0);
  if (got != static_cast<ssize_t>(sizeof(raw))) {
    ::close(fd);
    fail("file too small for header: " + path);
  }
  CommitRecord committed{};
  try {
    const FileHeader header = parse_file_header(raw, sizeof(raw), path);
    committed = select_commit(header, path);
  } catch (...) {
    ::close(fd);
    throw;
  }

  const off_t end = ::lseek(fd, 0, SEEK_END);
  if (end < 0 || static_cast<std::uint64_t>(end) < committed.committed_bytes) {
    ::close(fd);
    fail("commit pointer past end of file: " + path);
  }
  // Drop any torn tail from an interrupted append: bytes past the commit
  // pointer were never visible to readers and are about to be overwritten.
  if (::ftruncate(fd, static_cast<off_t>(committed.committed_bytes)) != 0) {
    ::close(fd);
    fail_errno("cannot truncate torn tail of", path);
  }
  return CorpusWriter(fd, path, options, committed);
}

CorpusWriter::CorpusWriter(CorpusWriter&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      path_(std::move(other.path_)),
      options_(other.options_),
      committed_(other.committed_),
      records_(std::move(other.records_)),
      offsets_(std::move(other.offsets_)),
      buffered_count_(std::exchange(other.buffered_count_, 0)) {}

CorpusWriter& CorpusWriter::operator=(CorpusWriter&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
    options_ = other.options_;
    committed_ = other.committed_;
    records_ = std::move(other.records_);
    offsets_ = std::move(other.offsets_);
    buffered_count_ = std::exchange(other.buffered_count_, 0);
  }
  return *this;
}

CorpusWriter::~CorpusWriter() {
  try {
    close();
  } catch (...) {
    // Destructors must not throw; an explicit close() observes errors.
  }
}

void CorpusWriter::write_at(std::uint64_t offset, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (bytes > 0) {
    const ssize_t wrote = ::pwrite(fd_, p, bytes, static_cast<off_t>(offset));
    if (wrote < 0) {
      if (errno == EINTR) continue;
      fail_errno("write failed for", path_);
    }
    p += wrote;
    offset += static_cast<std::uint64_t>(wrote);
    bytes -= static_cast<std::size_t>(wrote);
  }
}

void CorpusWriter::add(std::int32_t label, std::span<const double> samples) {
  if (fd_ < 0) fail("writer is closed: " + path_);
  if (samples.size() > kMaxSamplesPerTrace) fail("trace exceeds sample cap");
  offsets_.push_back(records_.size());
  TraceRecordHeader rec{};
  rec.label = label;
  rec.sample_count = samples.size();
  const std::size_t base = records_.size();
  records_.resize(base + kTraceRecordHeaderBytes + samples.size_bytes());
  std::memcpy(records_.data() + base, &rec, sizeof(rec));
  if (!samples.empty()) {  // empty spans carry a null data()
    std::memcpy(records_.data() + base + kTraceRecordHeaderBytes, samples.data(),
                samples.size_bytes());
  }
  ++buffered_count_;
  if (buffered_count_ >= options_.traces_per_chunk ||
      records_.size() + 8 * buffered_count_ >= options_.chunk_payload_budget) {
    commit();
  }
}

void CorpusWriter::commit() {
  if (fd_ < 0) fail("writer is closed: " + path_);
  if (buffered_count_ == 0) return;

  const std::uint64_t table_bytes = std::uint64_t{8} * buffered_count_;
  const std::uint64_t payload_bytes = table_bytes + records_.size();

  ChunkHeader hdr{};
  hdr.trace_count = buffered_count_;
  hdr.payload_bytes = payload_bytes;
  hdr.first_trace_index = committed_.trace_count;

  // Offsets are relative to the payload start (the table itself comes
  // first, so every record offset is >= table_bytes).
  std::vector<std::uint64_t> table(offsets_.size());
  for (std::size_t i = 0; i < offsets_.size(); ++i) table[i] = table_bytes + offsets_[i];

  hdr.payload_crc = crc32(records_.data(), records_.size(),
                          crc32(table.data(), table.size() * sizeof(std::uint64_t)));
  hdr.header_crc = chunk_header_crc(hdr);

  // Append the chunk past the committed prefix; readers cannot see it yet.
  const std::uint64_t chunk_at = committed_.committed_bytes;
  write_at(chunk_at, &hdr, sizeof(hdr));
  write_at(chunk_at + kChunkHeaderBytes, table.data(), table.size() * sizeof(std::uint64_t));
  write_at(chunk_at + kChunkHeaderBytes + table_bytes, records_.data(), records_.size());
  if (options_.fsync_commits && ::fdatasync(fd_) != 0) fail_errno("fsync failed for", path_);

  // Publish: rewrite the *other* commit slot. A kill between the chunk
  // write and here leaves the old commit live (chunk invisible); a torn
  // slot write fails its CRC and readers fall back to the old slot.
  CommitRecord next{};
  next.seq = committed_.seq + 1;
  next.committed_bytes = chunk_at + kChunkHeaderBytes + payload_bytes;
  next.chunk_count = committed_.chunk_count + 1;
  next.trace_count = committed_.trace_count + buffered_count_;
  next.crc = commit_record_crc(next);
  const std::uint64_t slot_offset =
      offsetof(FileHeader, slots) + (next.seq % 2) * sizeof(CommitRecord);
  write_at(slot_offset, &next, sizeof(next));
  if (options_.fsync_commits && ::fdatasync(fd_) != 0) fail_errno("fsync failed for", path_);

  committed_ = next;
  records_.clear();
  offsets_.clear();
  buffered_count_ = 0;
}

void CorpusWriter::close() {
  if (fd_ < 0) return;
  commit();
  const int rc = ::close(fd_);
  fd_ = -1;
  if (rc != 0) fail_errno("close failed for", path_);
}

// --- CorpusReader ----------------------------------------------------------

CorpusReader::CorpusReader(const std::string& path, ReaderOptions options)
    : map_(path) {
  const FileHeader header = parse_file_header(map_.data(), map_.size(), path);
  const CommitRecord commit = select_commit(header, path);
  if (commit.committed_bytes > map_.size())
    fail("commit pointer past end of file: " + path);
  committed_bytes_ = commit.committed_bytes;
  chunk_count_ = commit.chunk_count;
  // Each chunk costs >= 48 header bytes and each trace >= 8 (offset table)
  // + 16 (record header) payload bytes, so the committed prefix bounds both
  // counts — a corrupt record cannot size the reserve below.
  const std::uint64_t body_bytes = committed_bytes_ - kFileHeaderBytes;
  if (commit.chunk_count > body_bytes / kChunkHeaderBytes)
    fail("implausible chunk count in " + path);
  if (commit.trace_count > body_bytes / (8 + kTraceRecordHeaderBytes))
    fail("implausible trace count in " + path);
  records_.reserve(static_cast<std::size_t>(commit.trace_count));

  // Structural walk over the committed chunks. Every offset and count is
  // validated against the committed prefix before it is dereferenced.
  std::uint64_t off = kFileHeaderBytes;
  std::uint64_t traces_seen = 0;
  for (std::uint64_t c = 0; c < commit.chunk_count; ++c) {
    if (off + kChunkHeaderBytes > committed_bytes_)
      fail("chunk header past commit pointer in " + path);
    ChunkHeader hdr;
    std::memcpy(&hdr, map_.data() + off, sizeof(hdr));
    if (hdr.magic != kChunkMagic) fail("bad chunk magic in " + path);
    if (chunk_header_crc(hdr) != hdr.header_crc)
      fail("chunk header CRC mismatch in " + path);
    if (hdr.trace_count == 0 || hdr.trace_count > kMaxTracesPerChunk)
      fail("implausible chunk trace count in " + path);
    if (hdr.first_trace_index != traces_seen)
      fail("chunk trace indexing inconsistent in " + path);
    const std::uint64_t payload_at = off + kChunkHeaderBytes;
    if (hdr.payload_bytes > committed_bytes_ - payload_at)
      fail("chunk payload past commit pointer in " + path);
    const std::uint64_t table_bytes = std::uint64_t{8} * hdr.trace_count;
    if (table_bytes > hdr.payload_bytes) fail("chunk offset table truncated in " + path);
    if (options.verify_payload_crc &&
        crc32(map_.data() + payload_at, static_cast<std::size_t>(hdr.payload_bytes)) !=
            hdr.payload_crc) {
      fail("chunk payload CRC mismatch in " + path);
    }
    const std::uint8_t* payload = map_.data() + payload_at;
    for (std::uint32_t t = 0; t < hdr.trace_count; ++t) {
      std::uint64_t rel;
      std::memcpy(&rel, payload + std::uint64_t{8} * t, sizeof(rel));
      if (rel < table_bytes || rel % 8 != 0 ||
          rel + kTraceRecordHeaderBytes > hdr.payload_bytes)
        fail("trace record offset out of bounds in " + path);
      TraceRecordHeader rec;
      std::memcpy(&rec, payload + rel, sizeof(rec));
      if (rec.sample_count > kMaxSamplesPerTrace ||
          rec.sample_count * sizeof(double) >
              hdr.payload_bytes - rel - kTraceRecordHeaderBytes)
        fail("trace record overruns chunk in " + path);
      records_.push_back(payload + rel);
    }
    traces_seen += hdr.trace_count;
    off = payload_at + hdr.payload_bytes;
  }
  if (off != committed_bytes_) fail("committed bytes not covered by chunks in " + path);
  if (traces_seen != commit.trace_count) fail("trace count mismatch in " + path);
}

TraceView CorpusReader::operator[](std::size_t i) const noexcept {
  const std::uint8_t* rec = records_[i];
  TraceRecordHeader hdr;
  std::memcpy(&hdr, rec, sizeof(hdr));
  // Record starts are 8-aligned by format, so the sample area after the
  // 16-byte header is a naturally aligned double array in the mapping.
  const auto* samples =
      reinterpret_cast<const double*>(rec + kTraceRecordHeaderBytes);
  return TraceView{hdr.label,
                   std::span<const double>(samples, static_cast<std::size_t>(hdr.sample_count))};
}

TraceView CorpusReader::at(std::size_t i) const {
  if (i >= records_.size()) throw std::out_of_range("CorpusReader::at: index out of range");
  return (*this)[i];
}

sca::Trace CorpusReader::materialize(std::size_t i) const {
  const TraceView view = at(i);
  sca::Trace t;
  t.label = view.label;
  t.samples.assign(view.samples.begin(), view.samples.end());
  return t;
}

// --- merge -----------------------------------------------------------------

void merge_corpora(const std::string& dest, const std::vector<std::string>& sources,
                   WriterOptions options) {
  CorpusWriter writer = CorpusWriter::create(dest, options);
  for (const std::string& source : sources) {
    const CorpusReader reader(source);
    for (std::size_t i = 0; i < reader.size(); ++i) {
      const TraceView view = reader[i];
      writer.add(view.label, view.samples);
    }
  }
  writer.close();
}

}  // namespace reveal::corpus
