#include "corpus/mmap_file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace reveal::corpus {

namespace {
[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error("MmapFile: " + what + " " + path + ": " +
                           std::strerror(errno));
}
}  // namespace

MmapFile::MmapFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) fail("cannot open", path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    fail("cannot stat", path);
  }
  const auto bytes = static_cast<std::size_t>(st.st_size);
  if (bytes > 0) {
    void* map = ::mmap(nullptr, bytes, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map == MAP_FAILED) {
      ::close(fd);
      fail("cannot mmap", path);
    }
    data_ = static_cast<const std::uint8_t*>(map);
    size_ = bytes;
  }
  // The mapping keeps the pages alive; the descriptor is not needed past
  // mmap and holding it would only leak fds across long campaign runs.
  ::close(fd);
}

MmapFile::~MmapFile() { reset(); }

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)), size_(std::exchange(other.size_, 0)) {}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    reset();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

void MmapFile::reset() noexcept {
  if (data_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(data_), size_);
    data_ = nullptr;
    size_ = 0;
  }
}

}  // namespace reveal::corpus
