#pragma once
// On-disk layout of the mmap trace corpus (DESIGN.md §8).
//
// A corpus file is a 96-byte file header followed by a sequence of chunks.
// All offsets and record sizes are multiples of 8, so a memory-mapped file
// serves sample data as naturally aligned doubles — reads are zero-copy
// views into the mapping. The format is little-endian (the only hosts this
// toolkit targets); every multi-byte field is read/written through memcpy,
// never by dereferencing the mapping at a struct type.
//
//   FileHeader   { magic "RVLCORP\x01", version, flags, CommitRecord[2] }
//   Chunk        { ChunkHeader, u64 offsets[trace_count], records... }
//   TraceRecord  { i32 label, u32 reserved, u64 sample_count, f64 samples[] }
//
// Crash safety: chunks are append-only and a chunk becomes visible only
// when one of the two commit slots is rewritten to cover it. The slots
// alternate (seq, CRC-protected); a torn slot write invalidates its CRC and
// readers fall back to the other slot — i.e. to the corpus as of the
// previous commit. A torn chunk write sits past `committed_bytes` and is
// invisible to readers; the appender truncates it away on reopen.

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace reveal::corpus {

inline constexpr char kFileMagic[8] = {'R', 'V', 'L', 'C', 'O', 'R', 'P', '\x01'};
inline constexpr std::uint32_t kFormatVersion = 1;
inline constexpr std::uint32_t kChunkMagic = 0x4B'43'56'52;  // "RVCK"

/// Plausibility caps mirroring seal/serialization's kMaxElements: corrupt
/// headers must fail cleanly, never size an allocation or a scan.
inline constexpr std::uint64_t kMaxTracesPerChunk = std::uint64_t{1} << 24;
inline constexpr std::uint64_t kMaxSamplesPerTrace = std::uint64_t{1} << 28;
inline constexpr std::uint64_t kMaxChunks = std::uint64_t{1} << 32;

/// One commit-pointer slot. The pair of slots at fixed offsets in the file
/// header is the only mutable region of a corpus file.
struct CommitRecord {
  std::uint64_t seq = 0;              ///< monotonically increasing commit number
  std::uint64_t committed_bytes = 0;  ///< file prefix covered by this commit
  std::uint64_t chunk_count = 0;
  std::uint64_t trace_count = 0;
  std::uint32_t crc = 0;  ///< CRC-32 of the 32 bytes above
  std::uint32_t pad = 0;
};
static_assert(sizeof(CommitRecord) == 40);

struct FileHeader {
  char magic[8];
  std::uint32_t version = kFormatVersion;
  std::uint32_t flags = 0;
  CommitRecord slots[2];
};
static_assert(sizeof(FileHeader) == 96);

inline constexpr std::uint64_t kFileHeaderBytes = sizeof(FileHeader);

struct ChunkHeader {
  std::uint32_t magic = kChunkMagic;
  std::uint32_t trace_count = 0;
  std::uint64_t payload_bytes = 0;       ///< offset table + records
  std::uint64_t first_trace_index = 0;   ///< global index of the first record
  std::uint64_t reserved0 = 0;           ///< pads the header to 48 bytes so the
  std::uint64_t reserved1 = 0;           ///< payload stays 8-aligned
  std::uint32_t payload_crc = 0;  ///< CRC-32 of the payload_bytes after this header
  std::uint32_t header_crc = 0;   ///< CRC-32 of the 44 bytes above
};
static_assert(sizeof(ChunkHeader) == 48);

inline constexpr std::uint64_t kChunkHeaderBytes = sizeof(ChunkHeader);

/// Per-trace record header inside a chunk's record area.
struct TraceRecordHeader {
  std::int32_t label = 0;
  std::uint32_t reserved = 0;
  std::uint64_t sample_count = 0;
};
static_assert(sizeof(TraceRecordHeader) == 16);

inline constexpr std::uint64_t kTraceRecordHeaderBytes = sizeof(TraceRecordHeader);

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320), the checksum guarding chunk
/// headers, chunk payloads and commit slots.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t bytes,
                                  std::uint32_t seed = 0) noexcept;

[[nodiscard]] inline std::uint32_t commit_record_crc(const CommitRecord& rec) noexcept {
  return crc32(&rec, offsetof(CommitRecord, crc));
}

[[nodiscard]] inline std::uint32_t chunk_header_crc(const ChunkHeader& hdr) noexcept {
  return crc32(&hdr, offsetof(ChunkHeader, header_crc));
}

}  // namespace reveal::corpus
