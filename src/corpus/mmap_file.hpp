#pragma once
// Read-only memory-mapped file (RAII over POSIX open/mmap).
//
// The corpus reader serves zero-copy TraceViews straight out of the
// mapping; the wrapper owns the fd and mapping lifetime and nothing else.
// Mapping an empty file yields a valid object with size() == 0 and a null
// base pointer (an empty corpus is header-only and never empty in
// practice, but the degenerate case must not UB).

#include <cstddef>
#include <cstdint>
#include <string>

namespace reveal::corpus {

class MmapFile {
 public:
  MmapFile() = default;
  /// Maps `path` read-only. Throws std::runtime_error when the file cannot
  /// be opened, stat'ed, or mapped.
  explicit MmapFile(const std::string& path);
  ~MmapFile();

  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  [[nodiscard]] const std::uint8_t* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool mapped() const noexcept { return data_ != nullptr; }

 private:
  void reset() noexcept;

  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace reveal::corpus
