#pragma once
// Scoped pipeline-stage tracing.
//
// SpanTracer times the attack pipeline's stages (capture -> segmentation
// -> classification -> hint routing -> DBDD estimation) with RAII spans:
// per-stage aggregate timings (count / total / min / max) plus a bounded
// ring buffer of the most recent raw SpanEvents for postmortems. Like
// every campaign accumulator, workers fill private tracers that the
// campaign merges in worker-index order.
//
// The zero-cost-off half of the design mirrors riscv's
// NullExecutionObserver: pipeline code is templated over a TracerT and
// instantiated once with SpanTracer and once with NullSpanTracer. The
// null tracer's span() returns an empty object, so the instrumented
// statements compile to nothing — the untraced instantiation *is* the
// pre-observability code, which is how the byte-identical-output
// guarantee holds by construction (timings are observations; no pipeline
// decision may read them).

#include <array>
#include <cstdint>
#include <vector>

namespace reveal::obs {

/// Pipeline stages in execution order.
enum class Stage : std::uint8_t {
  kCapture = 0,
  kSegmentation,
  kClassification,
  kHints,
  kEstimation,
};

inline constexpr std::size_t kStageCount = 5;

[[nodiscard]] const char* to_string(Stage stage);

/// One closed span: which stage, which pipeline item (capture index), and
/// the monotonic-clock interval.
struct SpanEvent {
  Stage stage = Stage::kCapture;
  std::uint32_t index = 0;
  std::uint64_t begin_ns = 0;
  std::uint64_t end_ns = 0;

  friend bool operator==(const SpanEvent&, const SpanEvent&) = default;
};

/// Aggregate timing of one stage.
struct StageTiming {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t min_ns = 0;
  std::uint64_t max_ns = 0;

  void add(std::uint64_t duration_ns) noexcept;
  void merge(const StageTiming& other) noexcept;

  friend bool operator==(const StageTiming&, const StageTiming&) = default;
};

class SpanTracer {
 public:
  static constexpr bool kEnabled = true;

  /// `ring_capacity` bounds the raw-event log; once full, the oldest
  /// events are overwritten (dropped() counts the overwrites). Aggregate
  /// timings are unaffected by the ring size.
  explicit SpanTracer(std::size_t ring_capacity = kDefaultRingCapacity);

  static constexpr std::size_t kDefaultRingCapacity = 1024;

  /// RAII span: records on destruction. Move-only; moving transfers the
  /// pending record.
  class Span {
   public:
    Span(Span&& other) noexcept;
    Span& operator=(Span&& other) noexcept;
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span();

   private:
    friend class SpanTracer;
    Span(SpanTracer* tracer, Stage stage, std::uint32_t index) noexcept;
    SpanTracer* tracer_;
    Stage stage_;
    std::uint32_t index_;
    std::uint64_t begin_ns_;
  };

  [[nodiscard]] Span span(Stage stage, std::uint32_t index = 0) noexcept {
    return Span(this, stage, index);
  }

  /// Records one closed interval directly (what an expiring Span does).
  void record(Stage stage, std::uint32_t index, std::uint64_t begin_ns,
              std::uint64_t end_ns);

  [[nodiscard]] const std::array<StageTiming, kStageCount>& timings() const noexcept {
    return timings_;
  }
  [[nodiscard]] const StageTiming& timing(Stage stage) const {
    return timings_.at(static_cast<std::size_t>(stage));
  }

  /// Events still in the ring, oldest first.
  [[nodiscard]] std::vector<SpanEvent> events() const;
  [[nodiscard]] std::size_t ring_capacity() const noexcept { return ring_.size(); }
  /// Events overwritten because the ring was full.
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

  /// Folds another tracer in: stage timings merge (count/total add,
  /// min/max combine) and the other ring's surviving events replay into
  /// this ring in their recorded order.
  void merge(const SpanTracer& other);

  /// Monotonic nanosecond clock used by spans.
  [[nodiscard]] static std::uint64_t now_ns() noexcept;

 private:
  void push_event(const SpanEvent& e);

  std::array<StageTiming, kStageCount> timings_{};
  std::vector<SpanEvent> ring_;
  std::size_t next_ = 0;      ///< ring slot the next event lands in
  std::size_t filled_ = 0;    ///< events currently held (<= ring size)
  std::uint64_t dropped_ = 0;
};

/// Compile-time-off tracer: span() returns an empty object, so templated
/// pipeline code instantiated with NullSpanTracer carries no tracing
/// residue (no clock reads, no stores) — the PR 3 NullExecutionObserver
/// pattern applied to the attack pipeline.
struct NullSpanTracer {
  static constexpr bool kEnabled = false;
  struct Span {};
  Span span(Stage, std::uint32_t = 0) const noexcept { return {}; }
};

}  // namespace reveal::obs
