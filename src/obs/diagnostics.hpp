#pragma once
// Campaign diagnostics report: a plain-struct snapshot of everything the
// observability layer collected (per-stage timings, counters, gauges,
// histograms, per-class confusion tallies) with a JSON emitter for the
// bench `--diag <path>` flag and a strict parser for round-trip tests.
//
// The report is *derived* data: building one reads the registry / tracer /
// confusion matrix and never feeds anything back into the pipeline, so a
// campaign's outputs are identical whether or not a report is produced.
// Doubles are printed with %.17g and parsed with strtod, which round-trips
// every finite IEEE double bit-exactly — report equality is well-defined
// across a serialize/parse cycle.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span_tracer.hpp"
#include "sca/report.hpp"

namespace reveal::obs {

struct DiagnosticsReport {
  struct StageRow {
    std::string stage;
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t min_ns = 0;
    std::uint64_t max_ns = 0;
    friend bool operator==(const StageRow&, const StageRow&) = default;
  };
  struct CounterRow {
    std::string name;
    std::uint64_t value = 0;
    friend bool operator==(const CounterRow&, const CounterRow&) = default;
  };
  struct GaugeRow {
    std::string name;
    double value = 0.0;
    friend bool operator==(const GaugeRow&, const GaugeRow&) = default;
  };
  struct HistogramRow {
    std::string name;
    double lo = 0.0;
    double hi = 1.0;
    std::vector<std::uint64_t> counts;
    double sum = 0.0;
    friend bool operator==(const HistogramRow&, const HistogramRow&) = default;
  };
  struct ConfusionRow {
    std::int32_t truth = 0;
    std::int32_t predicted = 0;
    std::uint64_t count = 0;
    friend bool operator==(const ConfusionRow&, const ConfusionRow&) = default;
  };

  std::vector<StageRow> stages;        ///< pipeline-stage order
  std::vector<CounterRow> counters;    ///< name order
  std::vector<GaugeRow> gauges;        ///< name order
  std::vector<HistogramRow> histograms;  ///< name order
  std::vector<ConfusionRow> confusion;   ///< (truth, predicted) order
  std::uint64_t dropped_events = 0;    ///< tracer ring overwrites

  friend bool operator==(const DiagnosticsReport&, const DiagnosticsReport&) = default;

  /// Serializes the full report as a deterministic JSON document.
  [[nodiscard]] std::string to_json() const;

  /// Parses a document produced by to_json(). Throws std::runtime_error on
  /// malformed input or unknown keys (strict: the schema *is* the test).
  [[nodiscard]] static DiagnosticsReport from_json(const std::string& json);
};

/// Assembles a report from the merged campaign accumulators. `tracer` and
/// `confusion` may be null (the corresponding sections stay empty).
[[nodiscard]] DiagnosticsReport make_report(const Registry& registry,
                                            const SpanTracer* tracer,
                                            const sca::ConfusionMatrix* confusion);

/// Writes `report.to_json()` to `path`. Throws std::runtime_error when the
/// file cannot be written.
void write_json_file(const DiagnosticsReport& report, const std::string& path);

}  // namespace reveal::obs
