#include "obs/diagnostics.hpp"

#include <cctype>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace reveal::obs {

namespace {

void append_double(std::string& out, double v) {
  char buf[64];
  // %.17g round-trips every finite IEEE-754 double through strtod exactly.
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

void append_i32(std::string& out, std::int32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%" PRId32, v);
  out += buf;
}

void append_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  out += '"';
}

/// Strict recursive-descent parser for the document shape to_json emits
/// (objects, arrays, strings, numbers — no null/bool, no nested extras).
class Parser {
 public:
  explicit Parser(const std::string& text) : p_(text.c_str()), end_(p_ + text.size()) {}

  [[nodiscard]] DiagnosticsReport parse() {
    DiagnosticsReport report;
    expect('{');
    bool first = true;
    while (!peek_is('}')) {
      if (!first) expect(',');
      first = false;
      const std::string key = parse_string();
      expect(':');
      if (key == "dropped_events") {
        report.dropped_events = parse_u64();
      } else if (key == "stages") {
        parse_array([&] { report.stages.push_back(parse_stage_row()); });
      } else if (key == "counters") {
        parse_array([&] { report.counters.push_back(parse_counter_row()); });
      } else if (key == "gauges") {
        parse_array([&] { report.gauges.push_back(parse_gauge_row()); });
      } else if (key == "histograms") {
        parse_array([&] { report.histograms.push_back(parse_histogram_row()); });
      } else if (key == "confusion") {
        parse_array([&] { report.confusion.push_back(parse_confusion_row()); });
      } else {
        fail("unknown top-level key '" + key + "'");
      }
    }
    expect('}');
    skip_ws();
    if (p_ != end_) fail("trailing characters after document");
    return report;
  }

 private:
  template <typename RowFn>
  void parse_array(RowFn&& row) {
    expect('[');
    bool first = true;
    while (!peek_is(']')) {
      if (!first) expect(',');
      first = false;
      row();
    }
    expect(']');
  }

  /// Parses `{"k": v, ...}` dispatching each key through `field`.
  template <typename FieldFn>
  void parse_object(FieldFn&& field) {
    expect('{');
    bool first = true;
    while (!peek_is('}')) {
      if (!first) expect(',');
      first = false;
      const std::string key = parse_string();
      expect(':');
      field(key);
    }
    expect('}');
  }

  DiagnosticsReport::StageRow parse_stage_row() {
    DiagnosticsReport::StageRow row;
    parse_object([&](const std::string& key) {
      if (key == "stage") row.stage = parse_string();
      else if (key == "count") row.count = parse_u64();
      else if (key == "total_ns") row.total_ns = parse_u64();
      else if (key == "min_ns") row.min_ns = parse_u64();
      else if (key == "max_ns") row.max_ns = parse_u64();
      else fail("unknown stage-row key '" + key + "'");
    });
    return row;
  }

  DiagnosticsReport::CounterRow parse_counter_row() {
    DiagnosticsReport::CounterRow row;
    parse_object([&](const std::string& key) {
      if (key == "name") row.name = parse_string();
      else if (key == "value") row.value = parse_u64();
      else fail("unknown counter-row key '" + key + "'");
    });
    return row;
  }

  DiagnosticsReport::GaugeRow parse_gauge_row() {
    DiagnosticsReport::GaugeRow row;
    parse_object([&](const std::string& key) {
      if (key == "name") row.name = parse_string();
      else if (key == "value") row.value = parse_double();
      else fail("unknown gauge-row key '" + key + "'");
    });
    return row;
  }

  DiagnosticsReport::HistogramRow parse_histogram_row() {
    DiagnosticsReport::HistogramRow row;
    parse_object([&](const std::string& key) {
      if (key == "name") row.name = parse_string();
      else if (key == "lo") row.lo = parse_double();
      else if (key == "hi") row.hi = parse_double();
      else if (key == "sum") row.sum = parse_double();
      else if (key == "counts") parse_array([&] { row.counts.push_back(parse_u64()); });
      else fail("unknown histogram-row key '" + key + "'");
    });
    return row;
  }

  DiagnosticsReport::ConfusionRow parse_confusion_row() {
    DiagnosticsReport::ConfusionRow row;
    parse_object([&](const std::string& key) {
      if (key == "truth") row.truth = parse_i32();
      else if (key == "predicted") row.predicted = parse_i32();
      else if (key == "count") row.count = parse_u64();
      else fail("unknown confusion-row key '" + key + "'");
    });
    return row;
  }

  std::string parse_string() {
    skip_ws();
    if (p_ == end_ || *p_ != '"') fail("expected string");
    ++p_;
    std::string out;
    while (p_ != end_ && *p_ != '"') {
      if (*p_ == '\\') {
        ++p_;
        if (p_ == end_) fail("unterminated escape");
        switch (*p_) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          default: fail("unsupported escape");
        }
        ++p_;
      } else {
        out += *p_++;
      }
    }
    if (p_ == end_) fail("unterminated string");
    ++p_;
    return out;
  }

  const char* number_start() {
    skip_ws();
    if (p_ == end_) fail("expected number");
    return p_;
  }

  double parse_double() {
    const char* start = number_start();
    char* after = nullptr;
    errno = 0;
    const double v = std::strtod(start, &after);
    if (after == start) fail("expected number");
    p_ = after;
    return v;
  }

  std::uint64_t parse_u64() {
    const char* start = number_start();
    if (*start == '-') fail("expected unsigned integer");
    char* after = nullptr;
    errno = 0;
    const std::uint64_t v = std::strtoull(start, &after, 10);
    if (after == start || errno == ERANGE) fail("expected unsigned integer");
    p_ = after;
    return v;
  }

  std::int32_t parse_i32() {
    const char* start = number_start();
    char* after = nullptr;
    errno = 0;
    const long v = std::strtol(start, &after, 10);
    if (after == start || errno == ERANGE || v < INT32_MIN || v > INT32_MAX)
      fail("expected 32-bit integer");
    p_ = after;
    return static_cast<std::int32_t>(v);
  }

  void skip_ws() {
    while (p_ != end_ && std::isspace(static_cast<unsigned char>(*p_))) ++p_;
  }

  bool peek_is(char c) {
    skip_ws();
    return p_ != end_ && *p_ == c;
  }

  void expect(char c) {
    skip_ws();
    if (p_ == end_ || *p_ != c)
      fail(std::string("expected '") + c + "'");
    ++p_;
  }

  [[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error("DiagnosticsReport::from_json: " + what);
  }

  const char* p_;
  const char* end_;
};

}  // namespace

std::string DiagnosticsReport::to_json() const {
  std::string out;
  out.reserve(1024);
  out += "{\n  \"dropped_events\": ";
  append_u64(out, dropped_events);
  out += ",\n  \"stages\": [";
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const StageRow& r = stages[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"stage\": ";
    append_string(out, r.stage);
    out += ", \"count\": ";
    append_u64(out, r.count);
    out += ", \"total_ns\": ";
    append_u64(out, r.total_ns);
    out += ", \"min_ns\": ";
    append_u64(out, r.min_ns);
    out += ", \"max_ns\": ";
    append_u64(out, r.max_ns);
    out += "}";
  }
  out += stages.empty() ? "]" : "\n  ]";
  out += ",\n  \"counters\": [";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": ";
    append_string(out, counters[i].name);
    out += ", \"value\": ";
    append_u64(out, counters[i].value);
    out += "}";
  }
  out += counters.empty() ? "]" : "\n  ]";
  out += ",\n  \"gauges\": [";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": ";
    append_string(out, gauges[i].name);
    out += ", \"value\": ";
    append_double(out, gauges[i].value);
    out += "}";
  }
  out += gauges.empty() ? "]" : "\n  ]";
  out += ",\n  \"histograms\": [";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const HistogramRow& r = histograms[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": ";
    append_string(out, r.name);
    out += ", \"lo\": ";
    append_double(out, r.lo);
    out += ", \"hi\": ";
    append_double(out, r.hi);
    out += ", \"counts\": [";
    for (std::size_t b = 0; b < r.counts.size(); ++b) {
      if (b != 0) out += ", ";
      append_u64(out, r.counts[b]);
    }
    out += "], \"sum\": ";
    append_double(out, r.sum);
    out += "}";
  }
  out += histograms.empty() ? "]" : "\n  ]";
  out += ",\n  \"confusion\": [";
  for (std::size_t i = 0; i < confusion.size(); ++i) {
    const ConfusionRow& r = confusion[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"truth\": ";
    append_i32(out, r.truth);
    out += ", \"predicted\": ";
    append_i32(out, r.predicted);
    out += ", \"count\": ";
    append_u64(out, r.count);
    out += "}";
  }
  out += confusion.empty() ? "]" : "\n  ]";
  out += "\n}\n";
  return out;
}

DiagnosticsReport DiagnosticsReport::from_json(const std::string& json) {
  return Parser(json).parse();
}

DiagnosticsReport make_report(const Registry& registry, const SpanTracer* tracer,
                              const sca::ConfusionMatrix* confusion) {
  DiagnosticsReport report;
  if (tracer != nullptr) {
    for (std::size_t s = 0; s < kStageCount; ++s) {
      const StageTiming& t = tracer->timings()[s];
      if (t.count == 0) continue;  // untouched stages do not pad the report
      report.stages.push_back({to_string(static_cast<Stage>(s)), t.count, t.total_ns,
                               t.min_ns, t.max_ns});
    }
    report.dropped_events = tracer->dropped();
  }
  for (const std::string& name : registry.names(MetricKind::kCounter)) {
    report.counters.push_back({name, registry.counter_value(name)});
  }
  for (const std::string& name : registry.names(MetricKind::kGauge)) {
    report.gauges.push_back({name, registry.gauge_value(name)});
  }
  for (const std::string& name : registry.names(MetricKind::kHistogram)) {
    const LatencyHistogram& h = registry.histogram_values(name);
    report.histograms.push_back({name, h.lo(), h.hi(), h.counts(), h.sum()});
  }
  if (confusion != nullptr) {
    for (const std::int32_t truth : confusion->truths()) {
      for (const std::int32_t predicted : confusion->predictions()) {
        const std::size_t c = confusion->count(truth, predicted);
        if (c == 0) continue;
        report.confusion.push_back(
            {truth, predicted, static_cast<std::uint64_t>(c)});
      }
    }
  }
  return report;
}

void write_json_file(const DiagnosticsReport& report, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr)
    throw std::runtime_error("obs::write_json_file: cannot open " + path);
  const std::string json = report.to_json();
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const int closed = std::fclose(f);
  if (written != json.size() || closed != 0)
    throw std::runtime_error("obs::write_json_file: short write to " + path);
}

}  // namespace reveal::obs
