#pragma once
// Campaign metrics registry.
//
// The observability layer follows the same determinism contract as every
// other campaign accumulator (HintTally, RunningCovariance,
// sca::ClassStats): each worker owns a private Registry, fills it while
// processing its captures, and the campaign merges the per-worker partials
// in worker-index order on the calling thread. Counters and histogram
// bucket counts are integers, so the merged totals are *worker-count
// invariant* — the same campaign yields identical values for any pool
// size. Gauges carry max-merge semantics (the only order-independent
// float reduction that needs no compensation), and histogram value sums
// accumulate exactly through ExactSum, so they share the invariance.
//
// Metrics are identified by name; an Id is a cheap handle resolved once
// (per worker) so hot loops do no string lookups. merge() matches entries
// by *name*, never by Id, so two registries that registered the same
// metrics in different orders still merge correctly.

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace reveal::obs {

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// Human-readable name of a metric kind.
[[nodiscard]] const char* to_string(MetricKind kind);

/// Order-invariant exact accumulator for doubles.
///
/// A plain `sum += x` reduction is not associative: per-worker partial
/// sums regroup with the pool size and the merged total drifts in the last
/// ulps, breaking the worker-count invariance the rest of the registry
/// guarantees. The campaign summary dodges the same trap by recounting
/// hints in capture order, but a histogram cannot recount (the raw
/// observations are gone), so the sum lives in a fixed-point long
/// accumulator instead: each double is split exactly into 32-bit limbs of
/// a 2^-1152-based integer, limb additions are exact integer adds (which
/// commute), and merge() is a limb-wise add. The rendered double is a
/// function of the *exact* sum only — identical for every accumulation
/// order, partition, and worker count. Non-finite observations are
/// excluded (a single NaN would otherwise poison the total).
class ExactSum {
 public:
  void add(double x) noexcept;
  /// Limb-wise integer add; exact and commutative.
  void merge(const ExactSum& other) noexcept;
  /// The exact sum rendered to double (deterministic: depends only on the
  /// set of added values, never on their order or grouping).
  [[nodiscard]] double value() const noexcept;

  [[nodiscard]] friend bool operator==(const ExactSum& a, const ExactSum& b) noexcept {
    return a.normalized().limbs_ == b.normalized().limbs_;
  }

  /// Serializes the *normalized* limb vector: two accumulators holding the
  /// same exact sum (by any add/merge history) save identical bytes, which
  /// is what makes checkpoint and shard-merge outputs byte-comparable.
  void save(std::ostream& out) const;
  [[nodiscard]] static ExactSum load(std::istream& in);

 private:
  // 70 x 32-bit limbs span weights 2^-1152 .. 2^1088: every finite double
  // (denormal lsb 2^-1126 .. DBL_MAX msb 2^1023) plus carry headroom.
  static constexpr int kBaseExp = -1152;
  static constexpr std::size_t kLimbs = 70;
  static constexpr std::uint32_t kNormalizeEvery = 1u << 27;

  void normalize() noexcept;
  [[nodiscard]] ExactSum normalized() const noexcept;

  std::array<std::int64_t, kLimbs> limbs_{};
  std::uint32_t pending_ = 0;  ///< adds since last normalize (overflow guard)
};

/// Fixed-bucket histogram with integer bucket counts (the latency/quality
/// companion of num::Histogram, extended with exact merging and a value
/// sum). Out-of-range observations clamp into the first/last bucket, so
/// every observation is counted.
class LatencyHistogram {
 public:
  LatencyHistogram() = default;
  LatencyHistogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  [[nodiscard]] double lo() const noexcept { return lo_; }
  [[nodiscard]] double hi() const noexcept { return hi_; }
  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const noexcept {
    return counts_;
  }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  /// Sum of every observed finite value (clamping applies to the bucket
  /// choice only, not to the sum; NaN/inf observations are counted in the
  /// buckets but excluded here). Worker-count invariant — see ExactSum.
  [[nodiscard]] double sum() const noexcept { return sum_.value(); }

  /// True when `other` has the same [lo, hi) range and bucket count.
  [[nodiscard]] bool compatible(const LatencyHistogram& other) const noexcept;

  /// Adds `other`'s bucket counts and sum. Throws std::invalid_argument on
  /// incompatible bucket layouts.
  void merge(const LatencyHistogram& other);

  /// Binary snapshot (layout, counts, exact sum); load() bounds-checks the
  /// bucket count and cross-checks total() against the bucket counts.
  void save(std::ostream& out) const;
  [[nodiscard]] static LatencyHistogram load(std::istream& in);

  friend bool operator==(const LatencyHistogram&, const LatencyHistogram&) = default;

 private:
  double lo_ = 0.0;
  double hi_ = 1.0;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  ExactSum sum_;
};

/// Typed metric store. Register returns a stable Id for the hot path;
/// value updates through an Id are branch-free array accesses.
class Registry {
 public:
  using Id = std::size_t;

  /// Get-or-register. Re-registering an existing name with the same kind
  /// returns the existing Id; a kind conflict throws std::logic_error.
  Id counter(std::string_view name);
  Id gauge(std::string_view name);
  Id histogram(std::string_view name, double lo, double hi, std::size_t bins);

  void add(Id id, std::uint64_t delta = 1);
  /// Gauge update with max semantics: the stored value only grows.
  void set_max(Id id, double value);
  void observe(Id id, double value);

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool contains(std::string_view name) const;
  [[nodiscard]] MetricKind kind(std::string_view name) const;

  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;
  [[nodiscard]] double gauge_value(std::string_view name) const;
  [[nodiscard]] const LatencyHistogram& histogram_values(std::string_view name) const;

  /// Names of all registered metrics of `kind`, sorted (deterministic
  /// report order regardless of registration order).
  [[nodiscard]] std::vector<std::string> names(MetricKind kind) const;

  /// Adds `other`'s metrics into this registry, matching by name
  /// (registering names this registry has not seen). Counter values and
  /// histogram buckets add exactly; gauges take the max. A name registered
  /// with different kinds (or incompatible histogram layouts) throws.
  void merge(const Registry& other);

  /// Binary snapshot of every entry, written in sorted-name order so the
  /// bytes are independent of registration order (merge() matches by name,
  /// so a reload round-trips exactly). Reads are bounds-checked.
  void save(std::ostream& out) const;
  [[nodiscard]] static Registry load(std::istream& in);

  /// Same metrics with same values (by name; Ids may differ).
  [[nodiscard]] bool same_metrics(const Registry& other) const;

 private:
  struct Entry {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    std::uint64_t counter = 0;
    double gauge = 0.0;
    bool gauge_set = false;  ///< distinguishes "never set" from max==0
    LatencyHistogram hist;
  };

  [[nodiscard]] Id find_or_create(std::string_view name, MetricKind kind);
  [[nodiscard]] const Entry& at(std::string_view name, MetricKind kind) const;

  std::vector<Entry> entries_;
  std::map<std::string, Id, std::less<>> index_;
};

}  // namespace reveal::obs
