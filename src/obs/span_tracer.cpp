#include "obs/span_tracer.hpp"

#include <chrono>
#include <stdexcept>

namespace reveal::obs {

const char* to_string(Stage stage) {
  switch (stage) {
    case Stage::kCapture: return "capture";
    case Stage::kSegmentation: return "segmentation";
    case Stage::kClassification: return "classification";
    case Stage::kHints: return "hints";
    case Stage::kEstimation: return "estimation";
  }
  return "?";
}

void StageTiming::add(std::uint64_t duration_ns) noexcept {
  if (count == 0) {
    min_ns = duration_ns;
    max_ns = duration_ns;
  } else {
    if (duration_ns < min_ns) min_ns = duration_ns;
    if (duration_ns > max_ns) max_ns = duration_ns;
  }
  ++count;
  total_ns += duration_ns;
}

void StageTiming::merge(const StageTiming& other) noexcept {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  count += other.count;
  total_ns += other.total_ns;
  if (other.min_ns < min_ns) min_ns = other.min_ns;
  if (other.max_ns > max_ns) max_ns = other.max_ns;
}

SpanTracer::SpanTracer(std::size_t ring_capacity) : ring_(ring_capacity) {
  if (ring_capacity == 0)
    throw std::invalid_argument("SpanTracer: ring capacity must be >= 1");
}

SpanTracer::Span::Span(SpanTracer* tracer, Stage stage, std::uint32_t index) noexcept
    : tracer_(tracer), stage_(stage), index_(index), begin_ns_(now_ns()) {}

SpanTracer::Span::Span(Span&& other) noexcept
    : tracer_(other.tracer_),
      stage_(other.stage_),
      index_(other.index_),
      begin_ns_(other.begin_ns_) {
  other.tracer_ = nullptr;
}

SpanTracer::Span& SpanTracer::Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    if (tracer_ != nullptr) tracer_->record(stage_, index_, begin_ns_, now_ns());
    tracer_ = other.tracer_;
    stage_ = other.stage_;
    index_ = other.index_;
    begin_ns_ = other.begin_ns_;
    other.tracer_ = nullptr;
  }
  return *this;
}

SpanTracer::Span::~Span() {
  if (tracer_ != nullptr) tracer_->record(stage_, index_, begin_ns_, now_ns());
}

void SpanTracer::record(Stage stage, std::uint32_t index, std::uint64_t begin_ns,
                        std::uint64_t end_ns) {
  const std::uint64_t duration = end_ns >= begin_ns ? end_ns - begin_ns : 0;
  timings_.at(static_cast<std::size_t>(stage)).add(duration);
  push_event(SpanEvent{stage, index, begin_ns, end_ns});
}

void SpanTracer::push_event(const SpanEvent& e) {
  if (filled_ == ring_.size()) ++dropped_;  // overwriting the oldest event
  ring_[next_] = e;
  next_ = (next_ + 1) % ring_.size();
  if (filled_ < ring_.size()) ++filled_;
}

std::vector<SpanEvent> SpanTracer::events() const {
  std::vector<SpanEvent> out;
  out.reserve(filled_);
  // Oldest event sits at next_ when the ring has wrapped, at 0 otherwise.
  const std::size_t start = filled_ == ring_.size() ? next_ : 0;
  for (std::size_t i = 0; i < filled_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void SpanTracer::merge(const SpanTracer& other) {
  for (std::size_t s = 0; s < kStageCount; ++s) timings_[s].merge(other.timings_[s]);
  dropped_ += other.dropped_;
  for (const SpanEvent& e : other.events()) push_event(e);
}

std::uint64_t SpanTracer::now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace reveal::obs
