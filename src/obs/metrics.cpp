#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <numeric>
#include <ostream>
#include <stdexcept>

#include "numeric/binary_io.hpp"

namespace reveal::obs {

namespace {
constexpr std::uint32_t kExactSumMarker = 0x58'53'55'4D;   // "MUSX"
constexpr std::uint32_t kHistogramMarker = 0x4C'48'53'54;  // "TSHL"
constexpr std::uint32_t kRegistryMarker = 0x4D'52'45'47;   // "GERM"
constexpr std::uint64_t kMaxSerializedBins = std::uint64_t{1} << 20;
constexpr std::uint64_t kMaxSerializedMetrics = std::uint64_t{1} << 20;
}  // namespace

const char* to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

void ExactSum::add(double x) noexcept {
  if (x == 0.0 || !std::isfinite(x)) return;
  int exp = 0;
  const double m = std::frexp(x, &exp);  // x = m * 2^exp, |m| in [0.5, 1)
  // ldexp is exact here: m carries at most 53 significant bits, so m * 2^53
  // is an integer below 2^53.
  const auto mi = static_cast<std::int64_t>(std::ldexp(m, 53));
  const std::uint64_t mag = static_cast<std::uint64_t>(mi < 0 ? -mi : mi);
  const std::int64_t sign = mi < 0 ? -1 : 1;
  const int shift = exp - 53 - kBaseExp;  // >= 0 for every finite double
  const std::size_t limb = static_cast<std::size_t>(shift) >> 5;
  const int off = shift & 31;
  // mag * 2^off spans at most 85 bits: deposit it as three 32-bit chunks.
  const std::uint64_t lo_part = (mag & 0xffffffffull) << off;  // < 2^63
  const std::uint64_t hi_part = (mag >> 32) << off;            // < 2^52, weight 2^32
  limbs_[limb] += sign * static_cast<std::int64_t>(lo_part & 0xffffffffull);
  limbs_[limb + 1] +=
      sign * static_cast<std::int64_t>((lo_part >> 32) + (hi_part & 0xffffffffull));
  limbs_[limb + 2] += sign * static_cast<std::int64_t>(hi_part >> 32);
  if (++pending_ >= kNormalizeEvery) normalize();
}

void ExactSum::normalize() noexcept {
  // Canonical form: lower limbs reduced into [0, 2^32), the top limb keeps
  // the sign. Unique per exact value, so normalized limb comparison is
  // exact-sum comparison.
  std::int64_t carry = 0;
  for (std::size_t i = 0; i + 1 < kLimbs; ++i) {
    const std::int64_t v = limbs_[i] + carry;
    limbs_[i] = v & 0xffffffffll;  // non-negative residue mod 2^32
    carry = v >> 32;               // arithmetic shift: floor division
  }
  limbs_[kLimbs - 1] += carry;
  pending_ = 0;
}

ExactSum ExactSum::normalized() const noexcept {
  ExactSum c = *this;
  c.normalize();
  return c;
}

void ExactSum::merge(const ExactSum& other) noexcept {
  // Each side's limbs are bounded by its pending budget (< 2^60), so the
  // raw limb add cannot overflow; fold the budgets and renormalize early.
  for (std::size_t i = 0; i < kLimbs; ++i) limbs_[i] += other.limbs_[i];
  const std::uint64_t pending =
      static_cast<std::uint64_t>(pending_) + other.pending_;
  if (pending >= kNormalizeEvery) {
    normalize();
  } else {
    pending_ = static_cast<std::uint32_t>(pending);
  }
}

double ExactSum::value() const noexcept {
  const ExactSum c = normalized();
  // Fixed-order (most-significant first) rendering of the canonical limbs:
  // deterministic because the limbs are a pure function of the exact sum.
  double out = 0.0;
  for (std::size_t i = kLimbs; i-- > 0;) {
    if (c.limbs_[i] != 0) {
      out += std::ldexp(static_cast<double>(c.limbs_[i]),
                        static_cast<int>(i) * 32 + kBaseExp);
    }
  }
  return out;
}

void ExactSum::save(std::ostream& out) const {
  num::io::write_pod<std::uint32_t>(out, kExactSumMarker);
  const ExactSum c = normalized();
  for (const std::int64_t limb : c.limbs_) num::io::write_pod(out, limb);
}

ExactSum ExactSum::load(std::istream& in) {
  num::io::expect_marker(in, kExactSumMarker, "ExactSum");
  ExactSum s;
  for (std::int64_t& limb : s.limbs_) limb = num::io::read_pod<std::int64_t>(in);
  // Canonical form: every lower limb in [0, 2^32). Anything else cannot
  // have been written by save() and would skew the overflow accounting.
  for (std::size_t i = 0; i + 1 < kLimbs; ++i) {
    if (s.limbs_[i] < 0 || s.limbs_[i] > 0xffffffffll)
      throw std::runtime_error("ExactSum::load: limb out of canonical range");
  }
  return s;
}

LatencyHistogram::LatencyHistogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(hi > lo) || bins == 0)
    throw std::invalid_argument("LatencyHistogram: empty range or zero bins");
}

void LatencyHistogram::add(double x) noexcept {
  if (counts_.empty()) return;
  const double scaled =
      (x - lo_) / (hi_ - lo_) * static_cast<double>(counts_.size());
  std::size_t bin = 0;
  if (std::isnan(scaled)) {
    bin = 0;  // a NaN observation still counts; pin it to the first bucket
  } else if (scaled >= static_cast<double>(counts_.size())) {
    bin = counts_.size() - 1;
  } else if (scaled > 0.0) {
    bin = static_cast<std::size_t>(scaled);
    if (bin >= counts_.size()) bin = counts_.size() - 1;
  }
  ++counts_[bin];
  ++total_;
  sum_.add(x);
}

bool LatencyHistogram::compatible(const LatencyHistogram& other) const noexcept {
  return lo_ == other.lo_ && hi_ == other.hi_ && counts_.size() == other.counts_.size();
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (other.counts_.empty()) return;
  if (counts_.empty()) {
    *this = other;
    return;
  }
  if (!compatible(other))
    throw std::invalid_argument("LatencyHistogram::merge: incompatible bucket layout");
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
  sum_.merge(other.sum_);
}

void LatencyHistogram::save(std::ostream& out) const {
  num::io::write_pod<std::uint32_t>(out, kHistogramMarker);
  num::io::write_pod(out, lo_);
  num::io::write_pod(out, hi_);
  num::io::write_vec(out, counts_);
  num::io::write_pod<std::uint64_t>(out, total_);
  sum_.save(out);
}

LatencyHistogram LatencyHistogram::load(std::istream& in) {
  num::io::expect_marker(in, kHistogramMarker, "LatencyHistogram");
  LatencyHistogram h;
  h.lo_ = num::io::read_pod<double>(in);
  h.hi_ = num::io::read_pod<double>(in);
  h.counts_ = num::io::read_vec<std::uint64_t>(in, kMaxSerializedBins);
  h.total_ = num::io::read_pod<std::uint64_t>(in);
  h.sum_ = ExactSum::load(in);
  if (!h.counts_.empty() && !(h.hi_ > h.lo_))
    throw std::runtime_error("LatencyHistogram::load: empty bucket range");
  if (h.total_ != std::accumulate(h.counts_.begin(), h.counts_.end(), std::uint64_t{0}))
    throw std::runtime_error("LatencyHistogram::load: total/bucket mismatch");
  return h;
}

Registry::Id Registry::find_or_create(std::string_view name, MetricKind kind) {
  if (const auto it = index_.find(name); it != index_.end()) {
    const Entry& e = entries_[it->second];
    if (e.kind != kind)
      throw std::logic_error("obs::Registry: metric '" + e.name + "' registered as " +
                             to_string(e.kind) + ", requested as " + to_string(kind));
    return it->second;
  }
  Entry e;
  e.name = std::string(name);
  e.kind = kind;
  entries_.push_back(std::move(e));
  const Id id = entries_.size() - 1;
  index_.emplace(entries_.back().name, id);
  return id;
}

Registry::Id Registry::counter(std::string_view name) {
  return find_or_create(name, MetricKind::kCounter);
}

Registry::Id Registry::gauge(std::string_view name) {
  return find_or_create(name, MetricKind::kGauge);
}

Registry::Id Registry::histogram(std::string_view name, double lo, double hi,
                                 std::size_t bins) {
  const Id id = find_or_create(name, MetricKind::kHistogram);
  Entry& e = entries_[id];
  if (e.hist.bin_count() == 0) {
    e.hist = LatencyHistogram(lo, hi, bins);
  } else if (!e.hist.compatible(LatencyHistogram(lo, hi, bins))) {
    throw std::logic_error("obs::Registry: histogram '" + e.name +
                           "' re-registered with a different bucket layout");
  }
  return id;
}

void Registry::add(Id id, std::uint64_t delta) { entries_.at(id).counter += delta; }

void Registry::set_max(Id id, double value) {
  Entry& e = entries_.at(id);
  if (!e.gauge_set || value > e.gauge) e.gauge = value;
  e.gauge_set = true;
}

void Registry::observe(Id id, double value) { entries_.at(id).hist.add(value); }

bool Registry::contains(std::string_view name) const {
  return index_.find(name) != index_.end();
}

MetricKind Registry::kind(std::string_view name) const {
  const auto it = index_.find(name);
  if (it == index_.end())
    throw std::out_of_range("obs::Registry: unknown metric '" + std::string(name) + "'");
  return entries_[it->second].kind;
}

const Registry::Entry& Registry::at(std::string_view name, MetricKind kind) const {
  const auto it = index_.find(name);
  if (it == index_.end())
    throw std::out_of_range("obs::Registry: unknown metric '" + std::string(name) + "'");
  const Entry& e = entries_[it->second];
  if (e.kind != kind)
    throw std::logic_error("obs::Registry: metric '" + e.name + "' is a " +
                           to_string(e.kind) + ", not a " + to_string(kind));
  return e;
}

std::uint64_t Registry::counter_value(std::string_view name) const {
  return at(name, MetricKind::kCounter).counter;
}

double Registry::gauge_value(std::string_view name) const {
  return at(name, MetricKind::kGauge).gauge;
}

const LatencyHistogram& Registry::histogram_values(std::string_view name) const {
  return at(name, MetricKind::kHistogram).hist;
}

std::vector<std::string> Registry::names(MetricKind kind) const {
  std::vector<std::string> out;
  // index_ iterates in name order, so the report order is deterministic
  // regardless of the registration order.
  for (const auto& [name, id] : index_) {
    if (entries_[id].kind == kind) out.push_back(name);
  }
  return out;
}

void Registry::merge(const Registry& other) {
  // Iterate the other registry's index (name order) so that any metrics
  // newly created here land in a registration order that depends only on
  // the merged *names*, not on the other side's registration history.
  for (const auto& [name, other_id] : other.index_) {
    const Entry& src = other.entries_[other_id];
    switch (src.kind) {
      case MetricKind::kCounter: {
        const Id id = counter(name);
        entries_[id].counter += src.counter;
        break;
      }
      case MetricKind::kGauge: {
        const Id id = gauge(name);
        if (src.gauge_set) set_max(id, src.gauge);
        break;
      }
      case MetricKind::kHistogram: {
        const Id id = find_or_create(name, MetricKind::kHistogram);
        entries_[id].hist.merge(src.hist);
        break;
      }
    }
  }
}

void Registry::save(std::ostream& out) const {
  num::io::write_pod<std::uint32_t>(out, kRegistryMarker);
  num::io::write_pod<std::uint64_t>(out, index_.size());
  // index_ iterates in name order: the bytes depend only on the metric
  // contents, never on registration history.
  for (const auto& [name, id] : index_) {
    const Entry& e = entries_[id];
    num::io::write_string(out, e.name);
    num::io::write_pod<std::uint8_t>(out, static_cast<std::uint8_t>(e.kind));
    num::io::write_pod<std::uint64_t>(out, e.counter);
    num::io::write_pod(out, e.gauge);
    num::io::write_pod<std::uint8_t>(out, e.gauge_set ? 1 : 0);
    e.hist.save(out);
  }
}

Registry Registry::load(std::istream& in) {
  num::io::expect_marker(in, kRegistryMarker, "Registry");
  const auto count = num::io::read_pod<std::uint64_t>(in);
  if (count > kMaxSerializedMetrics)
    throw std::runtime_error("Registry::load: implausible metric count");
  Registry reg;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::string name = num::io::read_string(in);
    const auto kind_raw = num::io::read_pod<std::uint8_t>(in);
    if (kind_raw > static_cast<std::uint8_t>(MetricKind::kHistogram))
      throw std::runtime_error("Registry::load: unknown metric kind");
    if (reg.contains(name)) throw std::runtime_error("Registry::load: duplicate metric");
    const Id id = reg.find_or_create(name, static_cast<MetricKind>(kind_raw));
    Entry& e = reg.entries_[id];
    e.counter = num::io::read_pod<std::uint64_t>(in);
    e.gauge = num::io::read_pod<double>(in);
    e.gauge_set = num::io::read_pod<std::uint8_t>(in) != 0;
    e.hist = LatencyHistogram::load(in);
  }
  return reg;
}

bool Registry::same_metrics(const Registry& other) const {
  if (index_.size() != other.index_.size()) return false;
  for (const auto& [name, id] : index_) {
    const auto it = other.index_.find(name);
    if (it == other.index_.end()) return false;
    const Entry& a = entries_[id];
    const Entry& b = other.entries_[it->second];
    if (a.kind != b.kind || a.counter != b.counter || a.gauge_set != b.gauge_set ||
        (a.gauge_set && a.gauge != b.gauge) || !(a.hist == b.hist)) {
      return false;
    }
  }
  return true;
}

}  // namespace reveal::obs
