#include "core/attack.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "numeric/distributions.hpp"
#include "sca/poi.hpp"

namespace reveal::core {

namespace {

int sign_of(std::int32_t v) { return v > 0 ? 1 : (v < 0 ? -1 : 0); }

}  // namespace

double CoefficientGuess::posterior_mean() const {
  double acc = 0.0;
  for (std::size_t i = 0; i < support.size(); ++i) acc += posterior[i] * support[i];
  return acc;
}

double CoefficientGuess::posterior_variance() const {
  const double mu = posterior_mean();
  double acc = 0.0;
  for (std::size_t i = 0; i < support.size(); ++i) {
    const double d = support[i] - mu;
    acc += posterior[i] * d * d;
  }
  return acc;
}

RevealAttack::RevealAttack(AttackConfig config) : config_(config) {
  if (config_.sign_prefix == 0 || config_.value_prefix == 0 || config_.poi_count == 0)
    throw std::invalid_argument("RevealAttack: zero-sized configuration");
}

void RevealAttack::train(const std::vector<WindowRecord>& profiling) {
  if (profiling.empty()) throw std::invalid_argument("RevealAttack::train: no windows");

  // --- sign classifier (vulnerability 1) ---
  sca::TraceSet sign_set;
  for (const auto& w : profiling) {
    if (w.samples.size() < config_.value_prefix)
      throw std::invalid_argument("RevealAttack::train: window shorter than value_prefix");
    sca::Trace t;
    t.samples = w.samples;
    t.label = sign_of(w.true_value);
    sign_set.add(std::move(t));
  }
  sign_classifier_.fit(sign_set, config_.sign_prefix);

  // --- sign-conditioned value templates (vulnerabilities 2 + 3) ---
  auto build_side = [this, &profiling](int sign, std::vector<std::size_t>& pois_out)
      -> std::optional<sca::TemplateSet> {
    // Drop values too rare to template (outside the observed range).
    std::map<std::int32_t, std::size_t> counts;
    for (const auto& w : profiling) {
      if (sign_of(w.true_value) == sign) ++counts[w.true_value];
    }
    sca::TraceSet side;
    for (const auto& w : profiling) {
      if (sign_of(w.true_value) != sign) continue;
      if (counts[w.true_value] < std::max<std::size_t>(config_.min_class_count, 2))
        continue;
      sca::Trace t;
      t.samples.assign(w.samples.begin(),
                       w.samples.begin() + static_cast<std::ptrdiff_t>(config_.value_prefix));
      t.label = w.true_value;
      side.add(std::move(t));
    }
    if (side.empty()) return std::nullopt;
    const sca::ClassMeans means = sca::class_means(side);
    if (means.size() < 2) return std::nullopt;  // a lone value: nothing to template
    const std::vector<double> sosd = sca::sosd_curve(means);
    pois_out = sca::select_pois(sosd, config_.poi_count, config_.poi_min_spacing);

    sca::TemplateBuilder builder(pois_out.size());
    for (const auto& t : side) {
      builder.add(t.label, sca::extract_pois(t.samples, pois_out));
    }
    return builder.build();
  };

  pos_templates_ = build_side(+1, pos_pois_);
  neg_templates_ = build_side(-1, neg_pois_);
  if (!pos_templates_ || !neg_templates_)
    throw std::runtime_error(
        "RevealAttack::train: profiling set lacks positive or negative examples");
}

CoefficientGuess RevealAttack::attack_window(const std::vector<double>& window) const {
  if (!trained()) throw std::logic_error("RevealAttack: train() first");
  CoefficientGuess guess;
  guess.sign = static_cast<int>(sign_classifier_.classify(window));
  if (guess.sign == 0) {
    guess.value = 0;
    guess.support = {0};
    guess.posterior = {1.0};
    return guess;
  }
  const sca::TemplateSet& templates = guess.sign > 0 ? *pos_templates_ : *neg_templates_;
  const std::vector<std::size_t>& pois = guess.sign > 0 ? pos_pois_ : neg_pois_;
  const std::vector<double> observation = sca::extract_pois(window, pois);
  guess.support = templates.labels();
  guess.posterior = templates.posterior(observation);
  std::size_t best = 0;
  for (std::size_t i = 1; i < guess.posterior.size(); ++i) {
    if (guess.posterior[i] > guess.posterior[best]) best = i;
  }
  guess.value = guess.support[best];
  return guess;
}

std::vector<CoefficientGuess> RevealAttack::attack_capture(const FullCapture& capture) const {
  std::vector<CoefficientGuess> out;
  out.reserve(capture.segments.size());
  const std::vector<WindowRecord> windows = windows_from_capture(capture);
  for (const auto& w : windows) out.push_back(attack_window(w.samples));
  return out;
}

}  // namespace reveal::core
