#include "core/attack.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <stdexcept>

#include "numeric/distributions.hpp"
#include "sca/poi.hpp"

namespace reveal::core {

namespace {

int sign_of(std::int32_t v) { return v > 0 ? 1 : (v < 0 ? -1 : 0); }

}  // namespace

double CoefficientGuess::posterior_mean() const {
  double acc = 0.0;
  for (std::size_t i = 0; i < support.size(); ++i) acc += posterior[i] * support[i];
  return acc;
}

double CoefficientGuess::posterior_variance() const {
  const double mu = posterior_mean();
  double acc = 0.0;
  for (std::size_t i = 0; i < support.size(); ++i) {
    const double d = support[i] - mu;
    acc += posterior[i] * d * d;
  }
  return acc;
}

RevealAttack::RevealAttack(AttackConfig config) : config_(config) {
  if (config_.sign_prefix == 0 || config_.value_prefix == 0 || config_.poi_count == 0)
    throw std::invalid_argument("RevealAttack: zero-sized configuration");
}

void RevealAttack::train(const std::vector<WindowRecord>& profiling, WorkerPool* pool) {
  if (profiling.empty()) throw std::invalid_argument("RevealAttack::train: no windows");
  const bool parallel = pool != nullptr && !pool->serial();

  // --- sign classifier (vulnerability 1) ---
  sca::TraceSet sign_set;
  for (const auto& w : profiling) {
    if (w.samples.size() < config_.value_prefix)
      throw std::invalid_argument("RevealAttack::train: window shorter than value_prefix");
    sca::Trace t;
    t.samples = w.samples;
    t.label = sign_of(w.true_value);
    sign_set.add(std::move(t));
  }
  sign_classifier_.fit(sign_set, config_.sign_prefix);

  // --- sign-conditioned value templates (vulnerabilities 2 + 3) ---
  auto build_side = [this, &profiling, pool, parallel](
                        int sign, std::vector<std::size_t>& pois_out)
      -> std::optional<sca::TemplateSet> {
    // Drop values too rare to template (outside the observed range).
    std::map<std::int32_t, std::size_t> counts;
    for (const auto& w : profiling) {
      if (sign_of(w.true_value) == sign) ++counts[w.true_value];
    }
    sca::TraceSet side;
    for (const auto& w : profiling) {
      if (sign_of(w.true_value) != sign) continue;
      if (counts[w.true_value] < std::max<std::size_t>(config_.min_class_count, 2))
        continue;
      sca::Trace t;
      t.samples.assign(w.samples.begin(),
                       w.samples.begin() + static_cast<std::ptrdiff_t>(config_.value_prefix));
      t.label = w.true_value;
      side.add(std::move(t));
    }
    if (side.empty()) return std::nullopt;
    const sca::ClassMeans means = sca::class_means(side);
    if (means.size() < 2) return std::nullopt;  // a lone value: nothing to template
    const std::vector<double> sosd = sca::sosd_curve(means);
    pois_out = sca::select_pois(sosd, config_.poi_count, config_.poi_min_spacing);

    sca::TemplateBuilder builder(pois_out.size());
    if (parallel) {
      // Fan the POI extraction out; each worker fills the slots of the
      // window indices it ran. The pooled-covariance accumulation itself is
      // then replayed in index order, which keeps the (order-sensitive)
      // floating-point updates bit-identical to the serial fold below — an
      // accumulator merged in any other order would drift in the last ulps
      // and break the byte-identical equivalence guarantee.
      std::vector<std::vector<double>> observations(side.size());
      pool->run_indexed(side.size(), [&](std::size_t i, std::size_t) {
        observations[i] = sca::extract_pois(side[i].samples, pois_out);
      });
      for (std::size_t i = 0; i < side.size(); ++i) {
        builder.add(side[i].label, observations[i]);
      }
    } else {
      for (const auto& t : side) {
        builder.add(t.label, sca::extract_pois(t.samples, pois_out));
      }
    }
    return builder.build();
  };

  pos_templates_ = build_side(+1, pos_pois_);
  neg_templates_ = build_side(-1, neg_pois_);
  if (!pos_templates_ || !neg_templates_)
    throw std::runtime_error(
        "RevealAttack::train: profiling set lacks positive or negative examples");
}

CoefficientGuess RevealAttack::attack_window(const std::vector<double>& window,
                                             double window_quality) const {
  if (!trained()) throw std::logic_error("RevealAttack: train() first");
  CoefficientGuess guess;

  // A window the classifier cannot even read is a total loss, not an error.
  if (window.size() < config_.sign_prefix) {
    guess.quality = GuessQuality::kAbstained;
    guess.sign_trusted = false;
    return guess;
  }

  // Sign decision with its decision margin: distance gap between the two
  // closest branch patterns, relative to the winner.
  const std::map<std::int32_t, double> dists = sign_classifier_.distances(window);
  std::int32_t best_label = 0;
  double d1 = std::numeric_limits<double>::infinity();
  double d2 = std::numeric_limits<double>::infinity();
  for (const auto& [label, d] : dists) {
    if (d < d1) {
      d2 = d1;
      d1 = d;
      best_label = label;
    } else if (d < d2) {
      d2 = d;
    }
  }
  guess.sign = static_cast<int>(best_label);
  guess.sign_margin = std::isinf(d2) ? d2 : (d2 - d1) / std::max(d1, 1e-12);

  if (config_.abstain_margin > 0.0 && guess.sign_margin < config_.abstain_margin) {
    guess.quality = GuessQuality::kAbstained;
    guess.sign_trusted = false;
    return guess;
  }
  // Absolute fit: a window far from *every* branch pattern is corrupted,
  // however clear the relative margin looks.
  if (config_.sign_fit_threshold > 0.0 &&
      d1 * d1 > config_.sign_fit_threshold * static_cast<double>(config_.sign_prefix)) {
    guess.quality = GuessQuality::kAbstained;
    guess.sign_trusted = false;
    return guess;
  }
  if (config_.low_confidence_margin > 0.0 &&
      guess.sign_margin < config_.low_confidence_margin)
    guess.quality = GuessQuality::kLowConfidence;

  // Segmentation quality gates (only bite when the robust pipeline passes a
  // score below 1): a suspect window cannot carry a full-confidence hint,
  // and a junk window cannot be trusted at all.
  if (window_quality < 0.5 * config_.min_window_quality) {
    guess.quality = GuessQuality::kAbstained;
    guess.sign_trusted = false;
    return guess;
  }
  if (window_quality < config_.min_window_quality &&
      guess.quality == GuessQuality::kOk)
    guess.quality = GuessQuality::kLowConfidence;

  if (guess.sign == 0) {
    guess.value = 0;
    guess.support = {0};
    guess.posterior = {1.0};
    return guess;
  }
  const sca::TemplateSet& templates = guess.sign > 0 ? *pos_templates_ : *neg_templates_;
  const std::vector<std::size_t>& pois = guess.sign > 0 ? pos_pois_ : neg_pois_;
  // Truncated windows that no longer cover the POIs keep the (trusted) sign
  // but cannot support a value guess.
  for (const std::size_t p : pois) {
    if (p >= window.size()) {
      guess.quality = GuessQuality::kAbstained;
      return guess;
    }
  }
  const std::vector<double> observation = sca::extract_pois(window, pois);
  if (config_.value_fit_threshold > 0.0) {
    const std::vector<double> maha = templates.mahalanobis(observation);
    double best_fit = std::numeric_limits<double>::infinity();
    for (const double m : maha) best_fit = std::min(best_fit, m);
    if (best_fit > config_.value_fit_threshold * static_cast<double>(pois.size())) {
      // The observation matches no template: any posterior computed from it
      // would be an overconfident artifact of the softmax. Keep the sign.
      guess.quality = GuessQuality::kAbstained;
      return guess;
    }
  }
  guess.support = templates.labels();
  guess.posterior = templates.posterior(observation);
  std::size_t best = 0;
  for (std::size_t i = 1; i < guess.posterior.size(); ++i) {
    if (guess.posterior[i] > guess.posterior[best]) best = i;
  }
  guess.value = guess.support[best];
  if (config_.value_commit_threshold > 0.0 &&
      guess.posterior[best] < config_.value_commit_threshold)
    guess.quality = GuessQuality::kAbstained;  // sign stays trusted
  return guess;
}

RobustCaptureResult RevealAttack::attack_capture_robust(
    const std::vector<double>& trace, std::size_t expected_windows,
    const sca::SegmentationConfig& seg_config, WorkerPool* pool) const {
  obs::NullSpanTracer null_tracer;
  return attack_capture_robust_traced(trace, expected_windows, seg_config, null_tracer,
                                      0, pool);
}

std::vector<CoefficientGuess> RevealAttack::attack_capture(const FullCapture& capture,
                                                           WorkerPool* pool) const {
  const std::vector<WindowRecord> windows = windows_from_capture(capture);
  std::vector<CoefficientGuess> out;
  if (pool != nullptr && !pool->serial()) {
    out.resize(windows.size());
    pool->run_indexed(windows.size(), [&](std::size_t i, std::size_t) {
      out[i] = attack_window(windows[i].samples);
    });
  } else {
    out.reserve(windows.size());
    for (const auto& w : windows) out.push_back(attack_window(w.samples));
  }
  return out;
}

}  // namespace reveal::core
