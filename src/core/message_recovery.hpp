#pragma once
// Message recovery from recovered error coefficients (paper Eq. 2-3):
//   u = (c1 - e2) / p1            (mod q)
//   m = round( t * (c0 - p0*u) / q ) mod t
// Recovering e2 alone suffices: once u is known, e1 (|e1| <= 41) is far
// below Delta/2 and is absorbed by the rounding.

#include <optional>
#include <vector>

#include "seal/ciphertext.hpp"
#include "seal/encryption_params.hpp"
#include "seal/keys.hpp"

namespace reveal::core {

/// Computes u = (c1 - e2) * p1^{-1} in the NTT domain. Returns std::nullopt
/// if p1 is not invertible or the result is not ternary (which signals a
/// wrong e2 — a built-in consistency check for the attack).
[[nodiscard]] std::optional<seal::Poly> recover_u(const seal::Context& context,
                                                  const seal::PublicKey& pk,
                                                  const seal::Ciphertext& ct,
                                                  const std::vector<std::int64_t>& e2);

/// Full message recovery via Eq. (3). Returns std::nullopt when e2 is
/// inconsistent with the ciphertext.
[[nodiscard]] std::optional<seal::Plaintext> recover_message(
    const seal::Context& context, const seal::PublicKey& pk, const seal::Ciphertext& ct,
    const std::vector<std::int64_t>& e2);

}  // namespace reveal::core
