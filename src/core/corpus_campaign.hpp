#pragma once
// Bridges the mmap trace corpus (corpus/trace_store.hpp) into the campaign
// engine: capture campaigns append their traces to a corpus, and recovery
// campaigns replay straight off a corpus instead of re-running acquisition.
//
// Determinism: a capture's trace is a pure function of (config, seed), the
// appended labels are the global capture indices, and CorpusWriter's bytes
// are a pure function of the appended sequence — so two corpora built over
// the same schedule are byte-identical files, regardless of worker count or
// batching (the shard driver leans on this for its merge contract).

#include <cstdint>
#include <span>
#include <vector>

#include "core/campaign_runner.hpp"
#include "corpus/trace_store.hpp"

namespace reveal::core {

/// Captures `seeds` (in parallel over the runner's pool) and appends each
/// capture's trace in seed order, labelled with its global capture index
/// `index_base + i`. Batched internally, so an arbitrarily long schedule
/// needs memory for one batch of captures, not the whole campaign.
void append_campaign_captures(corpus::CorpusWriter& writer, CampaignRunner& runner,
                              const CampaignConfig& config,
                              std::span<const std::uint64_t> seeds,
                              std::uint64_t index_base = 0);

/// The recovery campaign's attack stages over stored traces: per-trace
/// robust segmentation -> classification -> hint routing on the workers
/// (reading zero-copy views, copying each trace only into a per-worker
/// scratch buffer), then ordered hint integration and the security estimate
/// on the calling thread. Byte-identical for every worker count, same
/// contract (and same tally cross-check) as run_recovery_campaign; the
/// `captures` field of the result is index-aligned with the corpus.
[[nodiscard]] RecoveryCampaignResult run_recovery_campaign_on_corpus(
    CampaignRunner& runner, const RevealAttack& attack,
    const corpus::CorpusReader& corpus, std::size_t expected_windows,
    const sca::SegmentationConfig& seg_config, const HintPolicy& policy,
    const lwe::DbddParams& params);

}  // namespace reveal::core
