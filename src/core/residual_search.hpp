#pragma once
// Residual search-space exploration (paper §III-D / §IV-C).
//
// The template attack leaves a handful of coefficients uncertain. The paper
// quantifies the remainder with BKZ/DBDD; at laptop scale we can *solve* it:
// enumerate joint e2 assignments in decreasing posterior probability
// (best-first over the per-coefficient posteriors) and accept the first one
// consistent with the public values — u = (c1 - e2)/p1 must be ternary and
// the implied e1 = c0 - Delta*m - p0*u must be within the sampler's clip
// bound. The consistency check is the lattice constraint that makes the
// hinted instance easy (12.2 bikz ~ a 2^4.4 search).

#include <cstdint>
#include <optional>
#include <vector>

#include "core/attack.hpp"
#include "seal/ciphertext.hpp"
#include "seal/encryption_params.hpp"
#include "seal/keys.hpp"

namespace reveal::core {

struct ResidualSearchConfig {
  std::size_t max_tries = 2000000;      ///< consistency checks budget
  std::size_t max_candidates_per_coeff = 6;
  /// Coefficients whose top posterior exceeds this are pinned to their ML
  /// value (not searched).
  double certain_threshold = 0.9999;
  std::size_t max_uncertain = 48;       ///< search width cap (least certain first)
};

struct ResidualSearchResult {
  bool found = false;
  std::vector<std::int64_t> e2;     ///< consistent error vector (if found)
  std::size_t tried = 0;            ///< assignments tested
  std::size_t uncertain_count = 0;  ///< coefficients actually searched
};

/// Searches for the e2 consistent with (pk, ct), guided by the attack's
/// posteriors. Works on fresh 2-component ciphertexts.
[[nodiscard]] ResidualSearchResult residual_search(
    const seal::Context& context, const seal::PublicKey& pk, const seal::Ciphertext& ct,
    const std::vector<CoefficientGuess>& guesses, const ResidualSearchConfig& config = {});

}  // namespace reveal::core
