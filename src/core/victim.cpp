#include "core/victim.hpp"

#include <stdexcept>

#include "riscv/assembler.hpp"

namespace reveal::core {

namespace {

using namespace reveal::riscv;  // register names

bool is_power_of_two(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }

int log2_exact(std::size_t v) {
  int l = 0;
  while ((std::size_t{1} << l) < v) ++l;
  return l;
}

// Integer Gaussian constants (see header): 12 uniforms below kUniformBound,
// centered by kCltMean, scaled by kScale / 2^24 => sigma = 3.19.
constexpr std::int32_t kUniformBound = 48000;
constexpr std::int32_t kCltMean = 6 * (kUniformBound - 1);  // 287994
constexpr std::int32_t kScale = 1115;
constexpr std::int32_t kClip = 41;  // paper: coefficients in [-41, 41]

}  // namespace

namespace {
VictimProgram build_firmware(std::size_t n, const std::vector<std::uint64_t>& moduli,
                             bool patched, bool shuffled, bool masked,
                             std::size_t poly_count = 1);
}

VictimProgram build_sampler_firmware(std::size_t n,
                                     const std::vector<std::uint64_t>& moduli) {
  return build_firmware(n, moduli, /*patched=*/false, /*shuffled=*/false,
                        /*masked=*/false);
}

VictimProgram build_patched_firmware(std::size_t n,
                                     const std::vector<std::uint64_t>& moduli) {
  return build_firmware(n, moduli, /*patched=*/true, /*shuffled=*/false,
                        /*masked=*/false);
}

VictimProgram build_shuffled_firmware(std::size_t n,
                                      const std::vector<std::uint64_t>& moduli) {
  return build_firmware(n, moduli, /*patched=*/false, /*shuffled=*/true,
                        /*masked=*/false);
}

std::vector<std::uint32_t> read_permutation(const VictimProgram& program,
                                            const riscv::Machine& machine) {
  if (!program.shuffled)
    throw std::invalid_argument("read_permutation: firmware is not shuffled");
  std::vector<std::uint32_t> perm(program.n);
  for (std::size_t i = 0; i < program.n; ++i) {
    perm[i] = machine.load_word(program.layout.perm_base +
                                static_cast<std::uint32_t>(4 * i));
  }
  return perm;
}

VictimProgram build_masked_firmware(std::size_t n,
                                    const std::vector<std::uint64_t>& moduli) {
  return build_firmware(n, moduli, /*patched=*/false, /*shuffled=*/false,
                        /*masked=*/true);
}

VictimProgram build_encryption_firmware(std::size_t n,
                                        const std::vector<std::uint64_t>& moduli) {
  return build_firmware(n, moduli, /*patched=*/false, /*shuffled=*/false,
                        /*masked=*/false, /*poly_count=*/2);
}

namespace {
VictimProgram build_firmware(std::size_t n, const std::vector<std::uint64_t>& moduli,
                             bool patched, bool shuffled, bool masked,
                             std::size_t poly_count) {
  if (!is_power_of_two(n)) throw std::invalid_argument("victim: n must be a power of two");
  if (moduli.empty()) throw std::invalid_argument("victim: need at least one modulus");
  for (const std::uint64_t q : moduli) {
    if (q == 0 || q >= (std::uint64_t{1} << 31))
      throw std::invalid_argument("victim: moduli must fit in 31 bits");
  }

  if (poly_count < 1 || poly_count > 4)
    throw std::invalid_argument("victim: poly_count must be in [1, 4]");
  VictimProgram prog;
  prog.n = n;
  prog.poly_count = poly_count;
  prog.coeff_mod_count = moduli.size();
  prog.moduli = moduli;
  prog.shuffled = shuffled;
  prog.masked = masked;
  prog.layout.perm_base =
      prog.layout.poly_base +
      static_cast<std::uint32_t>(4 * n * moduli.size() * poly_count);
  prog.layout.mask_base =
      prog.layout.perm_base + static_cast<std::uint32_t>(4 * n);
  prog.memory_bytes =
      prog.layout.mask_base + 4 * n * moduli.size() + 4096;

  const int row_shift = log2_exact(n) + 2;  // byte stride of one RNS row

  Assembler as(prog.layout.code_base);

  // Register plan:
  //   s0 = i             s1 = n               s2 = &poly[0] (current poly)
  //   s3 = rng state     s4 = coeff_mod_count s5 = &qtable[0]
  //   s6 = uniform bound s7 = scale           s8 = clip bound
  //   s9 = &perm[0] (shuffled)   s10 = share-array offset (masked)
  //   s11 = polys remaining      a0 = noise   t0..t6 = scratch
  as.j("start");
  as.label("qtable");
  for (const std::uint64_t q : moduli) as.word(static_cast<std::uint32_t>(q));

  as.label("start");
  as.li(s1, static_cast<std::int32_t>(n));
  as.li(s2, static_cast<std::int32_t>(prog.layout.poly_base));
  as.li(t0, static_cast<std::int32_t>(prog.layout.seed_addr));
  as.lw(s3, 0, t0);  // host-provided PRNG seed
  as.li(s4, static_cast<std::int32_t>(moduli.size()));
  as.la(s5, "qtable");
  as.li(s6, kUniformBound);
  as.li(s7, kScale);
  as.li(s8, kClip);
  if (masked) {
    // Offset from a coefficient's poly slot to its second-share slot.
    as.li(s10, static_cast<std::int32_t>(prog.layout.mask_base -
                                         prog.layout.poly_base));
  }
  if (shuffled) {
    // Fisher-Yates permutation over the coefficient indices, drawn from the
    // same on-device PRNG. Happens before the first sampling window.
    as.li(s9, static_cast<std::int32_t>(prog.layout.perm_base));
    as.li(t1, 0);
    as.label("perm_init");
    as.bge(t1, s1, "perm_fy");
    as.slli(t2, t1, 2);
    as.add(t2, t2, s9);
    as.sw(t1, 0, t2);
    as.addi(t1, t1, 1);
    as.j("perm_init");
    as.label("perm_fy");
    as.addi(t1, s1, -1);  // i = n-1
    as.label("perm_loop");
    as.bge(zero, t1, "perm_done");  // while i > 0
    // xorshift32 step
    as.slli(t2, s3, 13);
    as.xor_(s3, s3, t2);
    as.srli(t2, s3, 17);
    as.xor_(s3, s3, t2);
    as.slli(t2, s3, 5);
    as.xor_(s3, s3, t2);
    // j = rand % (i+1)  (the remu's long division is pre-window activity)
    as.addi(t2, t1, 1);
    as.remu(t3, s3, t2);
    // swap perm[i] <-> perm[j]
    as.slli(t4, t1, 2);
    as.add(t4, t4, s9);
    as.lw(t5, 0, t4);
    as.slli(t6, t3, 2);
    as.add(t6, t6, s9);
    as.lw(t0, 0, t6);
    as.sw(t0, 0, t4);
    as.sw(t5, 0, t6);
    as.addi(t1, t1, -1);
    as.j("perm_loop");
    as.label("perm_done");
  }
  as.li(s11, static_cast<std::int32_t>(poly_count));
  as.li(s0, 0);

  prog.loop_pc = as.here();
  as.label("loop_i");
  as.bge(s0, s1, "done");

  // ---- dist(engine): integer clipped Gaussian --------------------------
  as.label("gauss");
  as.li(t0, 0);   // acc
  as.li(t1, 12);  // CLT draw counter
  as.label("draw");
  // xorshift32 PRNG
  as.slli(t2, s3, 13);
  as.xor_(s3, s3, t2);
  as.srli(t2, s3, 17);
  as.xor_(s3, s3, t2);
  as.slli(t2, s3, 5);
  as.xor_(s3, s3, t2);
  // candidate = state & 0xFFFF; reject >= bound (time-variant, like the
  // resample loop in ClippedNormalDistribution)
  as.lui(t3, 0x10);
  as.addi(t3, t3, -1);  // 0xFFFF
  as.and_(t2, s3, t3);
  as.bgeu(t2, s6, "draw");
  as.add(t0, t0, t2);
  as.addi(t1, t1, -1);
  as.bnez(t1, "draw");
  // centered = acc - mean
  as.li(t4, kCltMean);
  as.sub(t0, t0, t4);
  // noise = (centered * scale + 2^23) >> 24   -- the 35-cycle burst
  prog.mul_pc = as.here();
  as.mul(t5, t0, s7);
  as.lui(t6, 0x800);  // 2^23 rounding bias
  as.add(t5, t5, t6);
  as.srai(a0, t5, 24);
  // clip: resample if |noise| > 41 (branch-free abs, faithful to the
  // max_deviation check; never taken with these constants)
  as.srai(t2, a0, 31);
  as.xor_(t3, a0, t2);
  as.sub(t3, t3, t2);  // |noise|
  as.blt(s8, t3, "gauss");

  // ---- sign-bit assignment ---------------------------------------------
  if (shuffled) {
    // The slot's target coefficient index comes from the permutation table.
    as.slli(t0, s0, 2);
    as.add(t0, t0, s9);
    as.lw(t0, 0, t0);   // perm[slot]
    as.slli(t0, t0, 2);
    as.add(t0, t0, s2); // &poly[perm[slot]] (row 0)
  } else {
    as.slli(t0, s0, 2);
    as.add(t0, t0, s2);  // &poly[i] (row 0)
  }
  if (patched) {
    // v3.6-style branch-free select: every sign case runs these exact
    // instructions; the stored value is noise + (sign_mask & q_j).
    as.srai(t2, a0, 31);  // all-ones iff noise < 0
    as.li(t1, 0);
    as.label("patched_j");
    as.bge(t1, s4, "end_i");
    as.slli(t3, t1, 2);
    as.add(t3, t3, s5);
    as.lw(t4, 0, t3);         // q_j
    as.and_(t5, t2, t4);      // mask & q_j
    as.add(t5, t5, a0);       // noise (+ q_j if negative)
    as.slli(t3, t1, static_cast<std::uint32_t>(row_shift));
    as.add(t3, t3, t0);
    as.sw(t5, 0, t3);
    as.addi(t1, t1, 1);
    as.j("patched_j");
    as.j("end_i");  // unreachable; keeps the layout obvious
  }
  if (!patched) {
  as.bgtz(a0, "branch_pos");   // if (noise > 0)
  as.bltz(a0, "branch_neg");   // else if (noise < 0)
  // else: zero branch
  as.li(t1, 0);
  as.label("zero_j");
  as.bge(t1, s4, "end_i");
  as.slli(t2, t1, static_cast<std::uint32_t>(row_shift));
  as.add(t2, t2, t0);
  if (masked) {
    as.slli(t3, s3, 13);
    as.xor_(s3, s3, t3);
    as.srli(t3, s3, 17);
    as.xor_(s3, s3, t3);
    as.slli(t3, s3, 5);
    as.xor_(s3, s3, t3);
    as.sub(t4, zero, s3);      // share2 = -r
    as.sw(s3, 0, t2);
    as.add(t3, t2, s10);
    as.sw(t4, 0, t3);
  } else {
    as.sw(zero, 0, t2);          // poly[i + j*n] = 0
  }
  as.addi(t1, t1, 1);
  as.j("zero_j");

  as.label("branch_pos");
  as.li(t1, 0);
  as.label("pos_j");
  as.bge(t1, s4, "end_i");
  as.slli(t2, t1, static_cast<std::uint32_t>(row_shift));
  as.add(t2, t2, t0);
  if (masked) {
    // Fresh mask r; store (r, noise - r).
    as.slli(t3, s3, 13);
    as.xor_(s3, s3, t3);
    as.srli(t3, s3, 17);
    as.xor_(s3, s3, t3);
    as.slli(t3, s3, 5);
    as.xor_(s3, s3, t3);
    as.sub(t4, a0, s3);        // share2 = noise - r (mod 2^32)
    as.sw(s3, 0, t2);          // poly slot holds the mask
    as.add(t3, t2, s10);
    as.sw(t4, 0, t3);          // shadow array holds the other share
  } else {
    as.sw(a0, 0, t2);          // poly[i + j*n] = noise
  }
  as.addi(t1, t1, 1);
  as.j("pos_j");

  as.label("branch_neg");
  as.neg(a0, a0);              // noise = -noise  (vulnerability 3)
  as.li(t1, 0);
  as.label("neg_j");
  as.bge(t1, s4, "end_i");
  as.slli(t3, t1, 2);
  as.add(t3, t3, s5);
  as.lw(t4, 0, t3);            // q_j
  as.sub(t5, t4, a0);          // q_j - noise
  as.slli(t2, t1, static_cast<std::uint32_t>(row_shift));
  as.add(t2, t2, t0);
  if (masked) {
    as.slli(t3, s3, 13);
    as.xor_(s3, s3, t3);
    as.srli(t3, s3, 17);
    as.xor_(s3, s3, t3);
    as.slli(t3, s3, 5);
    as.xor_(s3, s3, t3);
    as.sub(t4, t5, s3);        // share2 = (q_j - noise) - r
    as.sw(s3, 0, t2);
    as.add(t3, t2, s10);
    as.sw(t4, 0, t3);
  } else {
    as.sw(t5, 0, t2);            // poly[i + j*n] = q_j - noise
  }
  as.addi(t1, t1, 1);
  as.j("neg_j");
  }  // !patched

  as.label("end_i");
  as.addi(s0, s0, 1);
  as.j("loop_i");

  as.label("done");
  // Next error polynomial (SEAL's Encryptor samples e1 then e2): advance
  // the poly base and restart the coefficient loop.
  as.addi(s11, s11, -1);
  as.beqz(s11, "coda");
  as.li(t0, static_cast<std::int32_t>(4 * n * moduli.size()));
  as.add(s2, s2, t0);
  as.li(s0, 0);
  as.j("loop_i");

  as.label("coda");
  // Coda: on the real target execution continues after the sampler (the
  // encryptor's next step), so the final coefficient's window is not
  // truncated. Mirror the uniform-draw activity without a multiply so the
  // segmentation still sees exactly n bursts.
  as.li(t0, 0);
  as.li(t1, 12);
  as.label("coda_draw");
  as.slli(t2, s3, 13);
  as.xor_(s3, s3, t2);
  as.srli(t2, s3, 17);
  as.xor_(s3, s3, t2);
  as.slli(t2, s3, 5);
  as.xor_(s3, s3, t2);
  as.lui(t3, 0x10);
  as.addi(t3, t3, -1);
  as.and_(t2, s3, t3);
  as.bgeu(t2, s6, "coda_draw");
  as.add(t0, t0, t2);
  as.addi(t1, t1, -1);
  as.bnez(t1, "coda_draw");
  as.ebreak();

  prog.words = as.assemble();
  return prog;
}
}  // namespace

namespace detail {

std::uint64_t victim_instruction_limit(const VictimProgram& program) noexcept {
  return 2000ULL * program.n * program.poly_count + 10000ULL;
}

void prepare_victim_run(const VictimProgram& program, riscv::Machine& machine,
                        std::uint32_t seed) {
  if (seed == 0) throw std::invalid_argument("run_victim: xorshift seed must be nonzero");
  machine.reset();
  machine.load_program(program.words, program.layout.code_base);
  machine.store_word(program.layout.seed_addr, seed);
}

VictimRun finish_victim_run(const VictimProgram& program, const riscv::Machine& machine,
                            riscv::Machine::StopReason reason) {
  if (reason == riscv::Machine::StopReason::kTrap)
    throw std::runtime_error("run_victim: machine trapped: " + machine.trap_message());
  if (reason == riscv::Machine::StopReason::kInstrLimit)
    throw std::runtime_error("run_victim: instruction limit exceeded");

  VictimRun out;
  out.cycles = machine.cycle_count();
  out.instructions = machine.retired_count();
  out.noise.resize(program.n * program.poly_count);
  const std::uint64_t q0 = program.moduli[0];
  const std::size_t poly_stride = program.n * program.coeff_mod_count;
  std::size_t i = 0;
  for (std::size_t p = 0; p < program.poly_count; ++p) {    // error polynomial
    for (std::size_t c = 0; c < program.n; ++c, ++i) {      // coefficient
      std::uint32_t raw = machine.load_word(
          program.layout.poly_base +
          static_cast<std::uint32_t>(4 * (p * poly_stride + c)));
      if (program.masked) {
        // Recombine the arithmetic shares (host-side ground truth only).
        const std::uint32_t share2 = machine.load_word(
            program.layout.mask_base + static_cast<std::uint32_t>(4 * i));
        raw += share2;  // mod 2^32
      }
      if (raw == 0) out.noise[i] = 0;
      else if (raw <= static_cast<std::uint32_t>(kClip)) out.noise[i] = raw;
      else out.noise[i] = -static_cast<std::int64_t>(q0 - raw);
    }
  }
  return out;
}

}  // namespace detail

VictimRun run_victim(const VictimProgram& program, riscv::Machine& machine,
                     std::uint32_t seed, riscv::ExecutionObserver* observer) {
  detail::prepare_victim_run(program, machine, seed);
  const auto reason = machine.run(detail::victim_instruction_limit(program), observer);
  return detail::finish_victim_run(program, machine, reason);
}

void configure_victim_tier(riscv::Machine& machine, VictimTier tier) noexcept {
  switch (tier) {
    case VictimTier::kReference:
      machine.set_predecode(false);
      machine.set_block_tier(false);
      break;
    case VictimTier::kPredecode:
      machine.set_predecode(true);
      machine.set_block_tier(false);
      break;
    case VictimTier::kBlock:
      machine.set_predecode(true);
      machine.set_block_tier(true);
      break;
  }
}

VictimRun run_victim_tier(const VictimProgram& program, riscv::Machine& machine,
                          std::uint32_t seed, VictimTier tier,
                          riscv::ExecutionObserver* observer) {
  configure_victim_tier(machine, tier);
  if (tier == VictimTier::kReference) {
    detail::prepare_victim_run(program, machine, seed);
    const auto reason =
        machine.run_reference(detail::victim_instruction_limit(program), observer);
    return detail::finish_victim_run(program, machine, reason);
  }
  return run_victim(program, machine, seed, observer);
}

}  // namespace reveal::core
