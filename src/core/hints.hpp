#pragma once
// Bridges the side-channel results into the "LWE with hints" estimator:
// per-coefficient posteriors become perfect or approximate hints exactly as
// in paper §IV-C (near-deterministic posteriors -> perfect hints; the rest
// -> approximate/posterior hints with the measured variance).

#include <cstddef>
#include <vector>

#include "core/attack.hpp"
#include "lwe/dbdd.hpp"
#include "sca/report.hpp"

namespace reveal::core {

struct HintSummary {
  std::size_t perfect = 0;      ///< coefficients integrated as perfect hints
  std::size_t approximate = 0;  ///< integrated with residual variance
  double mean_residual_variance = 0.0;  ///< over the approximate ones
  std::size_t sign_only = 0;  ///< abstained values demoted to sign-only hints
  std::size_t skipped = 0;    ///< abstained without a trusted sign: no hint
};

/// Integrates full-attack guesses (sign + value posteriors) for the error
/// coordinates of `estimator`. `perfect_threshold` is the posterior-variance
/// cutoff below which a guess counts as a perfect hint. Ignores guess
/// quality flags (the seed pipeline's behaviour; suitable only for clean
/// captures).
HintSummary integrate_guess_hints(lwe::DbddEstimator& estimator,
                                  const std::vector<CoefficientGuess>& guesses,
                                  double perfect_threshold);

/// Degradation-aware hint routing (paper §IV-C's perfect/approximate split,
/// extended with fallbacks for degraded captures). Perfect hints require a
/// full-confidence guess AND a near-zero posterior variance — a corrupted
/// window can therefore never poison the estimator with a wrong "exact"
/// coefficient; it degrades into a wider approximate hint, a sign-only
/// hint, or no hint at all, raising bikz instead of breaking correctness.
struct HintPolicy {
  /// Posterior-variance cutoff for perfect hints (full-confidence only).
  double perfect_threshold = 1e-6;
  /// Low-confidence guesses keep their posterior but the hint variance is
  /// inflated: max(variance * inflation, min_inflated_variance).
  double low_confidence_inflation = 4.0;
  double min_inflated_variance = 0.25;
  /// Sampler parameters for the sign-only fallback (half-Gaussian variance).
  double sigma = 3.19;
  double max_deviation = 41.0;
  /// Residual variance of an abstained-value "zero" detection (the branch
  /// said zero but the window was degraded: close to exact, never perfect).
  double abstained_zero_variance = 0.25;
  /// Variance assigned to full-confidence zero detections. Zeros are decided
  /// by the branch classifier alone — the template stage (whose absolute
  /// Mahalanobis fit exposes corrupted windows) never sees them — so under
  /// acquisition faults a time-warped +-1 window can classify as zero while
  /// passing every margin and fit gate. The robust policy therefore never
  /// grants zeros perfect status: they integrate at this (small) variance,
  /// which covers an off-by-one truth at two sigma. Set to 0 to restore the
  /// clean-pipeline behaviour where zero detections are exact (Table III).
  double zero_hint_variance = 0.25;
};

/// One routed hint: what a single coefficient guess contributes to the
/// estimator under a HintPolicy. Routing is a pure function of the guess —
/// no estimator, no shared state — so campaign workers can route their
/// captures concurrently and the (ordered) records are the ground truth the
/// equivalence suite compares byte-for-byte.
struct HintRecord {
  enum class Kind : std::uint8_t {
    kPerfect,      ///< integrate_perfect_error_hints(1)
    kApproximate,  ///< integrate_posterior_error_hints(variance, 1)
    kSignOnly,     ///< posterior replacement by the sign-conditioned variance
    kSkipped,      ///< no trusted information: no hint
  };
  Kind kind = Kind::kSkipped;
  double variance = 0.0;  ///< hint variance (0 for perfect/skipped)

  friend bool operator==(const HintRecord&, const HintRecord&) = default;
};

/// Routes one guess under `policy`. integrate_guess_hints is exactly
/// route_guess + apply_hint over the guesses in order.
[[nodiscard]] HintRecord route_guess(const CoefficientGuess& g, const HintPolicy& policy);

/// Applies a routed hint to the estimator (no-op for kSkipped).
void apply_hint(lwe::DbddEstimator& estimator, const HintRecord& record);

/// Hint counters that accumulate per worker and merge exactly.
///
/// HintSummary's counters must never be mutated from several workers at
/// once (lost updates under contention); instead each worker owns a
/// HintTally and the campaign merges them in worker-index order. The tally
/// keeps the *raw* variance sum rather than the mean so that merging is
/// associative and exact for the integer counters; the final
/// mean_residual_variance is computed once at summary() time.
struct HintTally {
  std::size_t perfect = 0;
  std::size_t approximate = 0;
  std::size_t sign_only = 0;
  std::size_t skipped = 0;
  double approximate_variance_sum = 0.0;

  void add(const HintRecord& record);
  void merge(const HintTally& other) noexcept;
  [[nodiscard]] HintSummary summary() const;

  friend bool operator==(const HintTally&, const HintTally&) = default;
};

/// True if `g` would be integrated as a *perfect* hint under `policy` —
/// the exact predicate used by integrate_guess_hints, exported so tests and
/// benches can count (and cross-check) perfect hints without duplicating
/// the routing rules.
[[nodiscard]] bool routes_as_perfect(const CoefficientGuess& g, const HintPolicy& policy);

HintSummary integrate_guess_hints(lwe::DbddEstimator& estimator,
                                  const std::vector<CoefficientGuess>& guesses,
                                  const HintPolicy& policy);

/// Collates one robust capture attack + its hint integration + the
/// resulting security estimate into a per-stage RecoveryReport.
[[nodiscard]] sca::RecoveryReport summarize_recovery(
    const RobustCaptureResult& result, std::size_t expected_windows,
    const HintSummary& hints, const lwe::SecurityEstimate& estimate);

/// Branch-only adversary (paper Table IV): only the sign / zero information
/// is used. Zero coefficients become perfect hints; signed ones are
/// replaced by the sign-conditioned (half-Gaussian) distribution whose
/// variance is computed from the sampler parameters.
HintSummary integrate_sign_only_hints(lwe::DbddEstimator& estimator,
                                      const std::vector<CoefficientGuess>& guesses,
                                      double sigma, double max_deviation);

}  // namespace reveal::core
