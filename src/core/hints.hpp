#pragma once
// Bridges the side-channel results into the "LWE with hints" estimator:
// per-coefficient posteriors become perfect or approximate hints exactly as
// in paper §IV-C (near-deterministic posteriors -> perfect hints; the rest
// -> approximate/posterior hints with the measured variance).

#include <cstddef>
#include <vector>

#include "core/attack.hpp"
#include "lwe/dbdd.hpp"

namespace reveal::core {

struct HintSummary {
  std::size_t perfect = 0;      ///< coefficients integrated as perfect hints
  std::size_t approximate = 0;  ///< integrated with residual variance
  double mean_residual_variance = 0.0;  ///< over the approximate ones
};

/// Integrates full-attack guesses (sign + value posteriors) for the error
/// coordinates of `estimator`. `perfect_threshold` is the posterior-variance
/// cutoff below which a guess counts as a perfect hint.
HintSummary integrate_guess_hints(lwe::DbddEstimator& estimator,
                                  const std::vector<CoefficientGuess>& guesses,
                                  double perfect_threshold);

/// Branch-only adversary (paper Table IV): only the sign / zero information
/// is used. Zero coefficients become perfect hints; signed ones are
/// replaced by the sign-conditioned (half-Gaussian) distribution whose
/// variance is computed from the sampler parameters.
HintSummary integrate_sign_only_hints(lwe::DbddEstimator& estimator,
                                      const std::vector<CoefficientGuess>& guesses,
                                      double sigma, double max_deviation);

}  // namespace reveal::core
