#pragma once
// Bridges the side-channel results into the "LWE with hints" estimator:
// per-coefficient posteriors become perfect or approximate hints exactly as
// in paper §IV-C (near-deterministic posteriors -> perfect hints; the rest
// -> approximate/posterior hints with the measured variance).

#include <cstddef>
#include <vector>

#include "core/attack.hpp"
#include "lwe/dbdd.hpp"
#include "sca/report.hpp"

namespace reveal::core {

struct HintSummary {
  std::size_t perfect = 0;      ///< coefficients integrated as perfect hints
  std::size_t approximate = 0;  ///< integrated with residual variance
  double mean_residual_variance = 0.0;  ///< over the approximate ones
  std::size_t sign_only = 0;  ///< abstained values demoted to sign-only hints
  std::size_t skipped = 0;    ///< abstained without a trusted sign: no hint
};

/// Integrates full-attack guesses (sign + value posteriors) for the error
/// coordinates of `estimator`. `perfect_threshold` is the posterior-variance
/// cutoff below which a guess counts as a perfect hint. Ignores guess
/// quality flags (the seed pipeline's behaviour; suitable only for clean
/// captures).
HintSummary integrate_guess_hints(lwe::DbddEstimator& estimator,
                                  const std::vector<CoefficientGuess>& guesses,
                                  double perfect_threshold);

/// Degradation-aware hint routing (paper §IV-C's perfect/approximate split,
/// extended with fallbacks for degraded captures). Perfect hints require a
/// full-confidence guess AND a near-zero posterior variance — a corrupted
/// window can therefore never poison the estimator with a wrong "exact"
/// coefficient; it degrades into a wider approximate hint, a sign-only
/// hint, or no hint at all, raising bikz instead of breaking correctness.
struct HintPolicy {
  /// Posterior-variance cutoff for perfect hints (full-confidence only).
  double perfect_threshold = 1e-6;
  /// Low-confidence guesses keep their posterior but the hint variance is
  /// inflated: max(variance * inflation, min_inflated_variance).
  double low_confidence_inflation = 4.0;
  double min_inflated_variance = 0.25;
  /// Sampler parameters for the sign-only fallback (half-Gaussian variance).
  double sigma = 3.19;
  double max_deviation = 41.0;
  /// Residual variance of an abstained-value "zero" detection (the branch
  /// said zero but the window was degraded: close to exact, never perfect).
  double abstained_zero_variance = 0.25;
  /// Variance assigned to full-confidence zero detections. Zeros are decided
  /// by the branch classifier alone — the template stage (whose absolute
  /// Mahalanobis fit exposes corrupted windows) never sees them — so under
  /// acquisition faults a time-warped +-1 window can classify as zero while
  /// passing every margin and fit gate. The robust policy therefore never
  /// grants zeros perfect status: they integrate at this (small) variance,
  /// which covers an off-by-one truth at two sigma. Set to 0 to restore the
  /// clean-pipeline behaviour where zero detections are exact (Table III).
  double zero_hint_variance = 0.25;
};

/// True if `g` would be integrated as a *perfect* hint under `policy` —
/// the exact predicate used by integrate_guess_hints, exported so tests and
/// benches can count (and cross-check) perfect hints without duplicating
/// the routing rules.
[[nodiscard]] bool routes_as_perfect(const CoefficientGuess& g, const HintPolicy& policy);

HintSummary integrate_guess_hints(lwe::DbddEstimator& estimator,
                                  const std::vector<CoefficientGuess>& guesses,
                                  const HintPolicy& policy);

/// Collates one robust capture attack + its hint integration + the
/// resulting security estimate into a per-stage RecoveryReport.
[[nodiscard]] sca::RecoveryReport summarize_recovery(
    const RobustCaptureResult& result, std::size_t expected_windows,
    const HintSummary& hints, const lwe::SecurityEstimate& estimate);

/// Branch-only adversary (paper Table IV): only the sign / zero information
/// is used. Zero coefficients become perfect hints; signed ones are
/// replaced by the sign-conditioned (half-Gaussian) distribution whose
/// variance is computed from the sampler parameters.
HintSummary integrate_sign_only_hints(lwe::DbddEstimator& estimator,
                                      const std::vector<CoefficientGuess>& guesses,
                                      double sigma, double max_deviation);

}  // namespace reveal::core
