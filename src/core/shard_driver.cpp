#include "core/shard_driver.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <exception>
#include <fstream>
#include <functional>
#include <stdexcept>
#include <utility>

#include "core/corpus_campaign.hpp"
#include "numeric/binary_io.hpp"

namespace reveal::core {

namespace {

constexpr std::uint32_t kShardMarker = 0x52'56'53'48;  // "HSVR"
constexpr std::uint32_t kShardVersion = 1;

void save_partial(const std::string& path, std::uint64_t digest, std::size_t shard,
                  std::size_t shards, std::uint64_t begin, std::uint64_t end,
                  const CampaignAccumulator& acc) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("shard driver: cannot write " + path);
  num::io::write_pod<std::uint32_t>(out, kShardMarker);
  num::io::write_pod<std::uint32_t>(out, kShardVersion);
  num::io::write_pod<std::uint64_t>(out, digest);
  num::io::write_pod<std::uint64_t>(out, shard);
  num::io::write_pod<std::uint64_t>(out, shards);
  num::io::write_pod<std::uint64_t>(out, begin);
  num::io::write_pod<std::uint64_t>(out, end);
  acc.save(out);
  out.flush();
  if (!out) throw std::runtime_error("shard driver: write failed for " + path);
}

CampaignAccumulator load_partial(const std::string& path, std::uint64_t digest,
                                 std::size_t shard, std::size_t shards,
                                 std::uint64_t begin, std::uint64_t end) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("shard driver: missing partial " + path);
  num::io::expect_marker(in, kShardMarker, "shard partial");
  if (num::io::read_pod<std::uint32_t>(in) != kShardVersion)
    throw std::runtime_error("shard driver: unsupported partial version in " + path);
  if (num::io::read_pod<std::uint64_t>(in) != digest)
    throw std::runtime_error("shard driver: campaign digest mismatch in " + path);
  if (num::io::read_pod<std::uint64_t>(in) != shard ||
      num::io::read_pod<std::uint64_t>(in) != shards)
    throw std::runtime_error("shard driver: shard identity mismatch in " + path);
  if (num::io::read_pod<std::uint64_t>(in) != begin ||
      num::io::read_pod<std::uint64_t>(in) != end)
    throw std::runtime_error("shard driver: schedule range mismatch in " + path);
  CampaignAccumulator acc = CampaignAccumulator::load(in);
  if (acc.next_index != end - begin)
    throw std::runtime_error("shard driver: partial covers wrong capture count in " +
                             path);
  return acc;
}

/// Runs `work(shard)` once per shard — in fork()ed children, or serially in
/// this process when options.in_process is set. Each child communicates
/// only through its partial file and its exit status; a nonzero status (or
/// abnormal termination) surfaces as a runtime_error after every child has
/// been reaped.
void run_shards(const ShardOptions& options,
                const std::function<void(std::size_t)>& work) {
  if (options.shards == 0)
    throw std::invalid_argument("shard driver: zero shards");
  if (options.in_process) {
    for (std::size_t s = 0; s < options.shards; ++s) work(s);
    return;
  }
  // Flush before forking so buffered stdio is not emitted once per child.
  std::fflush(nullptr);
  std::vector<pid_t> children;
  children.reserve(options.shards);
  for (std::size_t s = 0; s < options.shards; ++s) {
    const pid_t pid = fork();
    if (pid < 0) {
      for (const pid_t c : children) waitpid(c, nullptr, 0);
      throw std::runtime_error("shard driver: fork failed");
    }
    if (pid == 0) {
      // Child: all state travels through the partial file. _exit skips
      // atexit/static destructors inherited from the parent.
      try {
        work(s);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "shard %zu failed: %s\n", s, e.what());
        std::fflush(stderr);
        _exit(1);
      } catch (...) {
        std::fprintf(stderr, "shard %zu failed: unknown exception\n", s);
        std::fflush(stderr);
        _exit(1);
      }
      _exit(0);
    }
    children.push_back(pid);
  }
  std::size_t failures = 0;
  for (std::size_t s = 0; s < children.size(); ++s) {
    int status = 0;
    if (waitpid(children[s], &status, 0) < 0 || !WIFEXITED(status) ||
        WEXITSTATUS(status) != 0) {
      ++failures;
    }
  }
  if (failures > 0)
    throw std::runtime_error("shard driver: " + std::to_string(failures) +
                             " shard process(es) failed");
}

std::string corpus_shard_path(const std::string& work_dir, std::size_t shard) {
  return work_dir + "/corpus_shard_" + std::to_string(shard) + ".rvlc";
}

}  // namespace

std::pair<std::uint64_t, std::uint64_t> shard_range(std::uint64_t total,
                                                    std::size_t shards,
                                                    std::size_t shard) {
  if (shards == 0) throw std::invalid_argument("shard_range: zero shards");
  if (shard >= shards) throw std::out_of_range("shard_range: shard index");
  const std::uint64_t per = (total + shards - 1) / shards;  // ceil split
  const std::uint64_t begin = std::min<std::uint64_t>(per * shard, total);
  const std::uint64_t end = std::min<std::uint64_t>(begin + per, total);
  return {begin, end};
}

std::string shard_partial_path(const std::string& work_dir, std::size_t shard) {
  return work_dir + "/campaign_shard_" + std::to_string(shard) + ".partial";
}

ShardedCampaignResult run_sharded_campaign(
    const RevealAttack& attack, const CampaignConfig& config,
    std::uint64_t base_seed, std::size_t total_captures, const HintPolicy& policy,
    const lwe::DbddParams& params, const ShardOptions& options) {
  if (options.work_dir.empty())
    throw std::invalid_argument("run_sharded_campaign: empty work_dir");
  const std::uint64_t digest = campaign_digest(base_seed, total_captures, config);

  run_shards(options, [&](std::size_t shard) {
    const auto [begin, end] = shard_range(total_captures, options.shards, shard);
    CampaignRunner runner(options.workers_per_shard);
    CampaignAccumulator acc;
    accumulate_campaign_range(runner.pool(), attack, config, base_seed, begin, end,
                              policy, acc);
    save_partial(shard_partial_path(options.work_dir, shard), digest, shard,
                 options.shards, begin, end, acc);
  });

  // Fixed shard-order merge: ranges are contiguous by construction, so the
  // concatenated hints/consistency sequences are exactly the capture-order
  // sequences of an unsharded run.
  CampaignAccumulator global;
  for (std::size_t shard = 0; shard < options.shards; ++shard) {
    const auto [begin, end] = shard_range(total_captures, options.shards, shard);
    if (global.next_index != begin)
      throw std::logic_error("run_sharded_campaign: non-contiguous shard ranges");
    global.append(load_partial(shard_partial_path(options.work_dir, shard), digest,
                               shard, options.shards, begin, end));
  }
  if (global.next_index != total_captures)
    throw std::logic_error("run_sharded_campaign: merged partials do not cover the "
                           "schedule");

  ShardedCampaignResult result;
  CampaignFinalization fin = finalize_campaign(global, config.n, params);
  result.report = fin.report;
  result.hint_totals = fin.hint_totals;
  result.hints = std::move(global.hints);
  result.diagnostics.registry = std::move(global.registry);
  result.diagnostics.confusion = std::move(global.confusion);
  if (!options.keep_partials) {
    for (std::size_t shard = 0; shard < options.shards; ++shard)
      std::remove(shard_partial_path(options.work_dir, shard).c_str());
  }
  return result;
}

void build_sharded_corpus(const std::string& dest_path, const CampaignConfig& config,
                          std::uint64_t base_seed, std::size_t total_captures,
                          const ShardOptions& options,
                          const corpus::WriterOptions& writer_options) {
  if (options.work_dir.empty())
    throw std::invalid_argument("build_sharded_corpus: empty work_dir");

  run_shards(options, [&](std::size_t shard) {
    const auto [begin, end] = shard_range(total_captures, options.shards, shard);
    CampaignRunner runner(options.workers_per_shard);
    std::vector<std::uint64_t> seeds(static_cast<std::size_t>(end - begin));
    for (std::size_t i = 0; i < seeds.size(); ++i)
      seeds[i] = stream_seed(base_seed, static_cast<std::size_t>(begin) + i);
    corpus::CorpusWriter writer = corpus::CorpusWriter::create(
        corpus_shard_path(options.work_dir, shard), writer_options);
    append_campaign_captures(writer, runner, config, seeds, begin);
    writer.close();
  });

  std::vector<std::string> sources;
  sources.reserve(options.shards);
  for (std::size_t shard = 0; shard < options.shards; ++shard)
    sources.push_back(corpus_shard_path(options.work_dir, shard));
  corpus::merge_corpora(dest_path, sources, writer_options);
  if (!options.keep_partials) {
    for (const std::string& s : sources) std::remove(s.c_str());
  }
}

}  // namespace reveal::core
