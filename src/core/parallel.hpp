#pragma once
// Deterministic worker pool for attack campaigns.
//
// Large profiling sweeps (hundreds of captures, each a full firmware
// simulation) are embarrassingly parallel, but a naive parallelization of a
// seeded pipeline silently breaks reproducibility: results start to depend
// on how the OS schedules worker threads. The two primitives here are
// designed so that parallel campaigns are *bit-identical* to serial ones:
//
//   * stream_seed: counter-based seed splitting. Every trace index gets its
//     own RNG stream derived from (base_seed, index) alone — never from
//     which worker ran it or in what order. For a fixed base the map
//     index -> seed is a bijection on uint64, so distinct trace indices can
//     never collide.
//
//   * WorkerPool: a fixed-size pool with per-worker work-stealing queues.
//     Tasks are addressed by index; a task may only write to its own index
//     slot (or to per-worker state that the caller later merges in a fixed
//     order), so the output is independent of the stealing schedule.
//
// A pool constructed with 0 workers runs every task inline on the calling
// thread in index order — the serial reference path.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

namespace reveal::core {

/// Hardware concurrency clamped to at least 1 (the value used when a
/// CampaignConfig leaves num_workers at "auto").
[[nodiscard]] std::size_t default_num_workers() noexcept;

/// Counter-based seed splitting (SplitMix64 finalizer over an odd-stride
/// counter). For a fixed `base_seed` the map `stream_index -> seed` is a
/// bijection on uint64: the stride 0x9E3779B97F4A7C15 is odd, so
/// base + stride*(index+1) is injective mod 2^64, and the SplitMix64
/// output function is a bijection. Distinct trace indices therefore never
/// yield colliding RNG streams, and the derived stream depends only on
/// (base_seed, index) — not on worker count or submission order.
[[nodiscard]] std::uint64_t stream_seed(std::uint64_t base_seed,
                                        std::uint64_t stream_index) noexcept;

class WorkerPool {
 public:
  /// `num_workers == 0`: no threads are spawned; run_indexed executes
  /// inline, sequentially, in index order (the serial path).
  explicit WorkerPool(std::size_t num_workers);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  [[nodiscard]] std::size_t num_workers() const noexcept { return workers_.size(); }
  [[nodiscard]] bool serial() const noexcept { return workers_.empty(); }

  /// Runs `task(index, worker)` for every index in [0, count), distributing
  /// the indices over the pool (work-stealing) and blocking until all are
  /// done. `worker` is in [0, num_workers()) — or 0 in serial mode — and
  /// identifies the executing worker for per-worker accumulators.
  ///
  /// Determinism contract: a task must write only to state addressed by its
  /// `index` (or to per-worker state merged afterwards in a fixed order);
  /// under that contract the result is independent of scheduling.
  ///
  /// If tasks throw, the first recorded exception is rethrown on the
  /// calling thread after every worker has drained; the remaining blocks of
  /// a failed job are skipped, not executed.
  ///
  /// Must not be called from inside a task running on the same pool.
  void run_indexed(std::size_t count,
                   const std::function<void(std::size_t, std::size_t)>& task);

 private:
  struct Shared;
  void worker_loop(std::size_t worker);

  std::unique_ptr<Shared> shared_;
  std::vector<std::thread> workers_;
};

}  // namespace reveal::core
