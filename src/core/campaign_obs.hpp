#pragma once
// Shared internals of the campaign engines (runner, checkpoint, sharding).
//
// The per-capture worker stage — acquisition, robust attack, hint routing,
// per-worker observability — was originally private to campaign_runner.cpp.
// The checkpointed and sharded campaign drivers must execute the *same*
// stage over arbitrary seed subranges to keep their byte-identity contracts
// with run_recovery_campaign, so the pieces live here under core::detail:
// one definition, three drivers. Everything in this header preserves the
// campaign determinism contract: per-capture work is a pure function of
// (config, seed), all outputs land in index slots, and per-worker partials
// are merged in worker-index order by the caller.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/acquisition.hpp"
#include "core/attack.hpp"
#include "core/hints.hpp"
#include "core/parallel.hpp"
#include "obs/metrics.hpp"
#include "obs/span_tracer.hpp"
#include "sca/report.hpp"

namespace reveal::core::detail {

/// Lazily constructed per-worker SamplerCampaign replicas. Captures are
/// history-independent (run_victim resets the machine and reloads the
/// firmware), so a replica produces bit-identical captures to a shared
/// sequential campaign; each worker touches only its own slot.
class CampaignReplicas {
 public:
  CampaignReplicas(const CampaignConfig& config, std::size_t workers)
      : config_(config),
        replicas_(std::max<std::size_t>(workers, 1)),
        scratch_(replicas_.size()) {}

  SamplerCampaign& for_worker(std::size_t w) {
    if (!replicas_[w]) replicas_[w] = std::make_unique<SamplerCampaign>(config_);
    return *replicas_[w];
  }

  /// Per-worker capture scratch: capture_into() reuses its buffers, so a
  /// worker's acquisition stops allocating after its first few captures.
  FullCapture& scratch_for(std::size_t w) { return scratch_[w]; }

  [[nodiscard]] std::size_t slots() const noexcept { return replicas_.size(); }
  /// The worker's replica, or null if that worker never captured.
  [[nodiscard]] const SamplerCampaign* replica(std::size_t w) const noexcept {
    return replicas_[w].get();
  }

  /// Replica-level fault activation counts folded in worker-index order.
  [[nodiscard]] power::FaultStats merged_fault_stats() const noexcept {
    power::FaultStats faults;
    for (const auto& replica : replicas_) {
      if (replica) faults.merge(replica->fault_stats());
    }
    return faults;
  }

 private:
  CampaignConfig config_;
  std::vector<std::unique_ptr<SamplerCampaign>> replicas_;
  std::vector<FullCapture> scratch_;
};

/// Metric handles for one worker's registry, resolved once so the capture
/// loop never does string lookups. Constructing this registers the full
/// counter schema, so even idle workers contribute stable (zero-valued)
/// names to the merged report.
struct CampaignCounters {
  explicit CampaignCounters(obs::Registry& reg)
      : capture_count(reg.counter("capture.count")),
        capture_faulted(reg.counter("capture.faulted")),
        seg_attempts(reg.counter("segmentation.attempts")),
        seg_retries(reg.counter("segmentation.retries")),
        seg_ok(reg.counter("segmentation.ok")),
        seg_recovered(reg.counter("segmentation.recovered")),
        seg_degraded(reg.counter("segmentation.degraded")),
        seg_failed(reg.counter("segmentation.failed")),
        guess_ok(reg.counter("classify.ok")),
        guess_low(reg.counter("classify.low_confidence")),
        guess_abstained(reg.counter("classify.abstained")),
        hints_perfect(reg.counter("hints.perfect")),
        hints_approximate(reg.counter("hints.approximate")),
        hints_sign_only(reg.counter("hints.sign_only")),
        hints_skipped(reg.counter("hints.skipped")),
        trace_samples_max(reg.gauge("capture.trace_samples.max")),
        window_quality(reg.histogram("segmentation.window_quality", 0.0, 1.0, 20)) {}

  obs::Registry::Id capture_count, capture_faulted;
  obs::Registry::Id seg_attempts, seg_retries, seg_ok, seg_recovered, seg_degraded,
      seg_failed;
  obs::Registry::Id guess_ok, guess_low, guess_abstained;
  obs::Registry::Id hints_perfect, hints_approximate, hints_sign_only, hints_skipped;
  obs::Registry::Id trace_samples_max;
  obs::Registry::Id window_quality;
};

/// One worker's private observability partial (merged in worker order).
struct WorkerObs {
  obs::Registry registry;
  obs::SpanTracer tracer;
  sca::ConfusionMatrix confusion;
  CampaignCounters ids{registry};
};

/// Folds one finished capture's outcome into the worker's counters.
inline void count_capture(WorkerObs& o, const CampaignConfig& config,
                          const FullCapture& cap, const RobustCaptureResult& res,
                          const std::vector<HintRecord>& records) {
  obs::Registry& reg = o.registry;
  const CampaignCounters& ids = o.ids;
  reg.add(ids.capture_count);
  if (config.faults.any()) reg.add(ids.capture_faulted);
  reg.set_max(ids.trace_samples_max, static_cast<double>(cap.trace.size()));

  reg.add(ids.seg_attempts, res.segmentation.attempts);
  if (res.segmentation.attempts > 1)
    reg.add(ids.seg_retries, res.segmentation.attempts - 1);
  switch (res.segmentation.status) {
    case sca::SegmentationStatus::kOk: reg.add(ids.seg_ok); break;
    case sca::SegmentationStatus::kRecovered: reg.add(ids.seg_recovered); break;
    case sca::SegmentationStatus::kDegraded: reg.add(ids.seg_degraded); break;
    case sca::SegmentationStatus::kFailed: reg.add(ids.seg_failed); break;
  }
  for (const double q : res.segmentation.window_quality) reg.observe(ids.window_quality, q);

  for (const CoefficientGuess& g : res.guesses) {
    switch (g.quality) {
      case GuessQuality::kOk: reg.add(ids.guess_ok); break;
      case GuessQuality::kLowConfidence: reg.add(ids.guess_low); break;
      case GuessQuality::kAbstained: reg.add(ids.guess_abstained); break;
    }
  }
  for (const HintRecord& r : records) {
    switch (r.kind) {
      case HintRecord::Kind::kPerfect: reg.add(ids.hints_perfect); break;
      case HintRecord::Kind::kApproximate: reg.add(ids.hints_approximate); break;
      case HintRecord::Kind::kSignOnly: reg.add(ids.hints_sign_only); break;
      case HintRecord::Kind::kSkipped: reg.add(ids.hints_skipped); break;
    }
  }

  // Ground truth travels with the capture, so the per-class confusion of
  // the paper's Table I falls out of the campaign for free — but only when
  // every window produced a guess (a shorted segmentation loses the
  // window <-> coefficient correspondence).
  if (!res.guesses.empty() && res.guesses.size() == cap.noise.size()) {
    for (std::size_t j = 0; j < res.guesses.size(); ++j) {
      o.confusion.add(static_cast<std::int32_t>(cap.noise[j]), res.guesses[j].value);
    }
  }
}

/// The per-capture worker stage over one contiguous seed range: capture ->
/// robust attack -> hint routing, with results landing in index slots.
/// `captures`/`hints` must be pre-sized to seeds.size(); `tallies` to the
/// pool's worker-slot count; `worker_obs` likewise when kDiag (the span
/// indices recorded are `span_index_base + i`, the campaign-global capture
/// index). The caller owns all ordered merges afterwards.
template <bool kDiag>
void run_capture_stage(WorkerPool& pool, const RevealAttack& attack,
                       const CampaignConfig& config,
                       std::span<const std::uint64_t> seeds, const HintPolicy& policy,
                       CampaignReplicas& replicas,
                       std::vector<RobustCaptureResult>& captures,
                       std::vector<std::vector<HintRecord>>& hints,
                       std::vector<HintTally>& tallies,
                       std::vector<WorkerObs>* worker_obs,
                       std::size_t span_index_base = 0) {
  pool.run_indexed(seeds.size(), [&](std::size_t i, std::size_t w) {
    FullCapture& cap = replicas.scratch_for(w);
    RobustCaptureResult res;
    std::vector<HintRecord> records;
    auto route_records = [&] {
      if (res.segmentation.status != sca::SegmentationStatus::kFailed) {
        records.reserve(res.guesses.size());
        for (const CoefficientGuess& g : res.guesses) {
          records.push_back(route_guess(g, policy));
          tallies[w].add(records.back());
        }
      }
    };
    if constexpr (kDiag) {
      WorkerObs& o = (*worker_obs)[w];
      const auto index = static_cast<std::uint32_t>(span_index_base + i);
      {
        auto span = o.tracer.span(obs::Stage::kCapture, index);
        replicas.for_worker(w).capture_into(seeds[i], cap);
      }
      res = attack.attack_capture_robust_traced(cap.trace, config.n,
                                                config.segmentation, o.tracer, index);
      {
        auto span = o.tracer.span(obs::Stage::kHints, index);
        route_records();
      }
      count_capture(o, config, cap, res, records);
    } else {
      replicas.for_worker(w).capture_into(seeds[i], cap);
      res = attack.attack_capture_robust(cap.trace, config.n, config.segmentation);
      route_records();
    }
    captures[i] = std::move(res);
    hints[i] = std::move(records);
  });
}

}  // namespace reveal::core::detail
