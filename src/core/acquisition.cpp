#include "core/acquisition.hpp"

#include <stdexcept>

#include "core/campaign_runner.hpp"
#include "core/parallel.hpp"

namespace reveal::core {

namespace {

VictimProgram build_campaign_firmware(const CampaignConfig& config) {
  const int variants = static_cast<int>(config.patched_firmware) +
                       static_cast<int>(config.shuffled_firmware) +
                       static_cast<int>(config.masked_firmware);
  if (variants > 1)
    throw std::invalid_argument(
        "SamplerCampaign: firmware variant combinations not implemented");
  if (config.shuffled_firmware) return build_shuffled_firmware(config.n, config.moduli);
  if (config.patched_firmware) return build_patched_firmware(config.n, config.moduli);
  if (config.masked_firmware) return build_masked_firmware(config.n, config.moduli);
  return build_sampler_firmware(config.n, config.moduli);
}

}  // namespace

std::size_t resolved_num_workers(const CampaignConfig& config) noexcept {
  return config.num_workers == CampaignConfig::kAutoWorkers ? default_num_workers()
                                                            : config.num_workers;
}

SamplerCampaign::SamplerCampaign(CampaignConfig config)
    : config_(std::move(config)),
      program_(build_campaign_firmware(config_)),
      model_(config_.leakage),
      machine_(program_.memory_bytes),
      recorder_(model_, /*noise_seed=*/0),  // begin_capture() reseeds per capture
      fault_injector_(config_.faults) {
  // The firmware's instruction budget bounds the retired-instruction count
  // and most instructions contribute a handful of samples, so reserving one
  // budget's worth of samples up front makes even the very first capture
  // append mostly without reallocating; later captures reuse the high-water
  // capacity.
  recorder_.reserve(detail::victim_instruction_limit(program_));
  configure_victim_tier(machine_, config_.victim_tier);
}

FullCapture SamplerCampaign::capture(std::uint64_t seed) {
  FullCapture cap;
  capture_into(seed, cap);
  return cap;
}

void SamplerCampaign::capture_into(std::uint64_t seed, FullCapture& out) {
  // Derive the firmware PRNG seed and the measurement-noise seed from the
  // campaign seed; both change per capture, like fresh encryptions observed
  // through a new acquisition.
  num::Xoshiro256StarStar derive(seed);
  auto prng_seed = static_cast<std::uint32_t>(derive() | 1u);  // nonzero
  const std::uint64_t noise_seed = derive();

  recorder_.begin_capture(noise_seed);
  const VictimRun run = run_victim_with(program_, machine_, prng_seed, recorder_);

  // Copy (not move) out of the persistent recorder so both buffers keep
  // their capacity for the next capture.
  out.trace.assign(recorder_.samples().begin(), recorder_.samples().end());
  if (config_.faults.any()) {
    out.trace = fault_injector_.apply(std::move(out.trace), seed, &fault_stats_);
  }
  out.noise = run.noise;
  out.segments = sca::segment_trace(out.trace, config_.segmentation);
  const double threshold = config_.segmentation.threshold > 0.0
                               ? config_.segmentation.threshold
                               : sca::auto_threshold(out.trace);
  anchor_windows_at_burst_edge(out.trace, out.segments, threshold);

  out.permutation.clear();
  if (program_.shuffled) {
    // The Fisher-Yates divisions create n-1 extra bursts before the
    // sampling loop: the sampling windows are the last n segments. Reorder
    // the ground truth into slot (time) order.
    out.permutation = read_permutation(program_, machine_);
    if (out.segments.size() == 2 * config_.n - 1) {
      out.segments.erase(out.segments.begin(),
                         out.segments.end() - static_cast<std::ptrdiff_t>(config_.n));
    } else {
      out.segments.clear();  // unexpected burst count: reject the capture
    }
    std::vector<std::int64_t> slot_noise(config_.n, 0);
    for (std::size_t slot = 0; slot < config_.n; ++slot) {
      slot_noise[slot] = run.noise[out.permutation[slot]];
    }
    out.noise = std::move(slot_noise);
  }
}

std::vector<WindowRecord> SamplerCampaign::collect_windows(std::size_t runs,
                                                           std::uint64_t seed_base,
                                                           std::size_t* rejected) {
  if (resolved_num_workers(config_) > 0) {
    CampaignRunner runner(resolved_num_workers(config_));
    return runner.collect_windows(config_, runs, seed_base, rejected);
  }
  std::vector<WindowRecord> out;
  out.reserve(runs * config_.n);
  std::size_t skipped = 0;
  FullCapture cap;
  std::vector<WindowRecord> windows;
  for (std::size_t r = 0; r < runs; ++r) {
    capture_into(seed_base + r, cap);
    if (cap.segments.size() != config_.n) {
      ++skipped;
      continue;
    }
    windows_from_capture(cap, windows);
    for (auto& w : windows) out.push_back(std::move(w));
  }
  if (rejected != nullptr) *rejected = skipped;
  return out;
}

void anchor_windows_at_burst_edge(const std::vector<double>& trace,
                                  std::vector<sca::Segment>& segments, double threshold) {
  for (auto& seg : segments) {
    // Smoothing delays the detected falling edge by up to the smoothing
    // window; scan a slightly extended raw range for the true last sample
    // above threshold (the multiplier's final cycle).
    const std::size_t lo = seg.burst_begin;
    const std::size_t hi = std::min(seg.burst_end + 6, trace.size());
    if (lo >= hi) continue;
    std::size_t last_above = lo;
    for (std::size_t i = lo; i < hi; ++i) {
      if (trace[i] > threshold) last_above = i;
    }
    seg.window_begin = last_above + 1;
    if (seg.window_begin > seg.window_end) seg.window_end = seg.window_begin;
  }
}

std::vector<WindowRecord> windows_from_capture(const FullCapture& capture) {
  std::vector<WindowRecord> out;
  windows_from_capture(capture, out);
  return out;
}

void windows_from_capture(const FullCapture& capture, std::vector<WindowRecord>& out) {
  if (capture.segments.size() != capture.noise.size())
    throw std::invalid_argument(
        "windows_from_capture: segment count does not match coefficient count");
  out.resize(capture.segments.size());
  for (std::size_t i = 0; i < capture.segments.size(); ++i) {
    const auto& seg = capture.segments[i];
    out[i].samples.assign(
        capture.trace.begin() + static_cast<std::ptrdiff_t>(seg.window_begin),
        capture.trace.begin() + static_cast<std::ptrdiff_t>(seg.window_end));
    out[i].true_value = static_cast<std::int32_t>(capture.noise[i]);
  }
}

}  // namespace reveal::core
