#include "core/acquisition.hpp"

#include <stdexcept>

#include "core/campaign_runner.hpp"
#include "core/parallel.hpp"
#include "power/trace_recorder.hpp"

namespace reveal::core {

namespace {

VictimProgram build_campaign_firmware(const CampaignConfig& config) {
  const int variants = static_cast<int>(config.patched_firmware) +
                       static_cast<int>(config.shuffled_firmware) +
                       static_cast<int>(config.masked_firmware);
  if (variants > 1)
    throw std::invalid_argument(
        "SamplerCampaign: firmware variant combinations not implemented");
  if (config.shuffled_firmware) return build_shuffled_firmware(config.n, config.moduli);
  if (config.patched_firmware) return build_patched_firmware(config.n, config.moduli);
  if (config.masked_firmware) return build_masked_firmware(config.n, config.moduli);
  return build_sampler_firmware(config.n, config.moduli);
}

}  // namespace

std::size_t resolved_num_workers(const CampaignConfig& config) noexcept {
  return config.num_workers == CampaignConfig::kAutoWorkers ? default_num_workers()
                                                            : config.num_workers;
}

SamplerCampaign::SamplerCampaign(CampaignConfig config)
    : config_(std::move(config)),
      program_(build_campaign_firmware(config_)),
      model_(config_.leakage),
      machine_(program_.memory_bytes) {}

FullCapture SamplerCampaign::capture(std::uint64_t seed) {
  // Derive the firmware PRNG seed and the measurement-noise seed from the
  // campaign seed; both change per capture, like fresh encryptions observed
  // through a new acquisition.
  num::Xoshiro256StarStar derive(seed);
  auto prng_seed = static_cast<std::uint32_t>(derive() | 1u);  // nonzero
  const std::uint64_t noise_seed = derive();

  power::TraceRecorder recorder(model_, noise_seed);
  const VictimRun run = run_victim(program_, machine_, prng_seed, &recorder);

  FullCapture cap;
  cap.trace = recorder.take_samples();
  if (config_.faults.any()) {
    const power::FaultInjector injector(config_.faults);
    cap.trace = injector.apply(std::move(cap.trace), seed);
  }
  cap.noise = run.noise;
  cap.segments = sca::segment_trace(cap.trace, config_.segmentation);
  const double threshold = config_.segmentation.threshold > 0.0
                               ? config_.segmentation.threshold
                               : sca::auto_threshold(cap.trace);
  anchor_windows_at_burst_edge(cap.trace, cap.segments, threshold);

  if (program_.shuffled) {
    // The Fisher-Yates divisions create n-1 extra bursts before the
    // sampling loop: the sampling windows are the last n segments. Reorder
    // the ground truth into slot (time) order.
    cap.permutation = read_permutation(program_, machine_);
    if (cap.segments.size() == 2 * config_.n - 1) {
      cap.segments.erase(cap.segments.begin(),
                         cap.segments.end() - static_cast<std::ptrdiff_t>(config_.n));
    } else {
      cap.segments.clear();  // unexpected burst count: reject the capture
    }
    std::vector<std::int64_t> slot_noise(config_.n, 0);
    for (std::size_t slot = 0; slot < config_.n; ++slot) {
      slot_noise[slot] = run.noise[cap.permutation[slot]];
    }
    cap.noise = std::move(slot_noise);
  }
  return cap;
}

std::vector<WindowRecord> SamplerCampaign::collect_windows(std::size_t runs,
                                                           std::uint64_t seed_base,
                                                           std::size_t* rejected) {
  if (resolved_num_workers(config_) > 0) {
    CampaignRunner runner(resolved_num_workers(config_));
    return runner.collect_windows(config_, runs, seed_base, rejected);
  }
  std::vector<WindowRecord> out;
  out.reserve(runs * config_.n);
  std::size_t skipped = 0;
  for (std::size_t r = 0; r < runs; ++r) {
    const FullCapture cap = capture(seed_base + r);
    if (cap.segments.size() != config_.n) {
      ++skipped;
      continue;
    }
    std::vector<WindowRecord> windows = windows_from_capture(cap);
    for (auto& w : windows) out.push_back(std::move(w));
  }
  if (rejected != nullptr) *rejected = skipped;
  return out;
}

void anchor_windows_at_burst_edge(const std::vector<double>& trace,
                                  std::vector<sca::Segment>& segments, double threshold) {
  for (auto& seg : segments) {
    // Smoothing delays the detected falling edge by up to the smoothing
    // window; scan a slightly extended raw range for the true last sample
    // above threshold (the multiplier's final cycle).
    const std::size_t lo = seg.burst_begin;
    const std::size_t hi = std::min(seg.burst_end + 6, trace.size());
    if (lo >= hi) continue;
    std::size_t last_above = lo;
    for (std::size_t i = lo; i < hi; ++i) {
      if (trace[i] > threshold) last_above = i;
    }
    seg.window_begin = last_above + 1;
    if (seg.window_begin > seg.window_end) seg.window_end = seg.window_begin;
  }
}

std::vector<WindowRecord> windows_from_capture(const FullCapture& capture) {
  if (capture.segments.size() != capture.noise.size())
    throw std::invalid_argument(
        "windows_from_capture: segment count does not match coefficient count");
  std::vector<WindowRecord> out;
  out.reserve(capture.segments.size());
  for (std::size_t i = 0; i < capture.segments.size(); ++i) {
    const auto& seg = capture.segments[i];
    WindowRecord rec;
    rec.samples.assign(capture.trace.begin() + static_cast<std::ptrdiff_t>(seg.window_begin),
                       capture.trace.begin() + static_cast<std::ptrdiff_t>(seg.window_end));
    rec.true_value = static_cast<std::int32_t>(capture.noise[i]);
    out.push_back(std::move(rec));
  }
  return out;
}

}  // namespace reveal::core
