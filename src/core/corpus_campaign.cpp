#include "core/corpus_campaign.hpp"

#include <algorithm>
#include <stdexcept>

namespace reveal::core {

void append_campaign_captures(corpus::CorpusWriter& writer, CampaignRunner& runner,
                              const CampaignConfig& config,
                              std::span<const std::uint64_t> seeds,
                              std::uint64_t index_base) {
  // One batch of captures in flight at a time: capture_many materializes
  // its batch, the append drains it in seed order, and the next batch
  // reuses the freed memory.
  constexpr std::size_t kBatch = 256;
  std::vector<std::uint64_t> batch;
  for (std::size_t begin = 0; begin < seeds.size(); begin += kBatch) {
    const std::size_t count = std::min(kBatch, seeds.size() - begin);
    batch.assign(seeds.begin() + static_cast<std::ptrdiff_t>(begin),
                 seeds.begin() + static_cast<std::ptrdiff_t>(begin + count));
    const std::vector<FullCapture> captures = runner.capture_many(config, batch);
    for (std::size_t i = 0; i < captures.size(); ++i) {
      writer.add(static_cast<std::int32_t>(index_base + begin + i),
                 std::span<const double>(captures[i].trace));
    }
  }
}

RecoveryCampaignResult run_recovery_campaign_on_corpus(
    CampaignRunner& runner, const RevealAttack& attack,
    const corpus::CorpusReader& corpus, std::size_t expected_windows,
    const sca::SegmentationConfig& seg_config, const HintPolicy& policy,
    const lwe::DbddParams& params) {
  const std::size_t n = corpus.size();
  RecoveryCampaignResult out;
  out.captures.resize(n);
  out.hints.resize(n);

  WorkerPool& pool = runner.pool();
  const std::size_t worker_slots = std::max<std::size_t>(pool.num_workers(), 1);
  std::vector<HintTally> tallies(worker_slots);
  // Per-worker trace scratch: the zero-copy view is copied once into a
  // reusable buffer because the analysis APIs take vectors; steady-state
  // reads off the corpus allocate nothing.
  std::vector<std::vector<double>> scratch(worker_slots);
  pool.run_indexed(n, [&](std::size_t i, std::size_t w) {
    const corpus::TraceView view = corpus[i];
    std::vector<double>& trace = scratch[w];
    trace.assign(view.samples.begin(), view.samples.end());
    RobustCaptureResult res =
        attack.attack_capture_robust(trace, expected_windows, seg_config);
    std::vector<HintRecord> records;
    if (res.segmentation.status != sca::SegmentationStatus::kFailed) {
      records.reserve(res.guesses.size());
      for (const CoefficientGuess& g : res.guesses) {
        records.push_back(route_guess(g, policy));
        tallies[w].add(records.back());
      }
    }
    out.captures[i] = std::move(res);
    out.hints[i] = std::move(records);
  });

  // Identical tail to run_recovery_campaign: worker tallies merged in
  // worker order, cross-checked against the capture-order recount; the
  // estimator replays the routed hints in capture order on this thread.
  HintTally merged;
  for (const HintTally& t : tallies) merged.merge(t);
  HintTally recount;
  for (const auto& records : out.hints) {
    for (const HintRecord& r : records) recount.add(r);
  }
  if (merged.perfect != recount.perfect || merged.approximate != recount.approximate ||
      merged.sign_only != recount.sign_only || merged.skipped != recount.skipped) {
    throw std::logic_error(
        "run_recovery_campaign_on_corpus: per-worker hint tallies diverge from the "
        "ordered recount (lost update in shared accumulation)");
  }
  out.hint_totals = recount.summary();

  lwe::DbddEstimator estimator(params);
  for (const auto& records : out.hints) {
    for (const HintRecord& r : records) apply_hint(estimator, r);
  }
  const lwe::SecurityEstimate estimate = estimator.estimate();

  sca::RecoveryReport& rep = out.report;
  rep.expected_windows = n * expected_windows;
  rep.segmentation_status = sca::SegmentationStatus::kOk;
  double consistency_sum = 0.0;
  for (const RobustCaptureResult& res : out.captures) {
    rep.recovered_windows += res.segmentation.segments.size();
    rep.segmentation_attempts += res.segmentation.attempts;
    consistency_sum += res.segmentation.burst_consistency;
    rep.segmentation_status = std::max(rep.segmentation_status, res.segmentation.status);
    for (const CoefficientGuess& g : res.guesses) {
      switch (g.quality) {
        case GuessQuality::kOk: ++rep.ok_guesses; break;
        case GuessQuality::kLowConfidence: ++rep.low_confidence_guesses; break;
        case GuessQuality::kAbstained: ++rep.abstained_guesses; break;
      }
    }
  }
  if (n > 0) rep.burst_consistency = consistency_sum / static_cast<double>(n);
  rep.perfect_hints = out.hint_totals.perfect;
  rep.approximate_hints = out.hint_totals.approximate;
  rep.sign_only_hints = out.hint_totals.sign_only;
  rep.dropped_hints = out.hint_totals.skipped;
  rep.bikz = estimate.beta;
  rep.bits = estimate.bits;
  return out;
}

}  // namespace reveal::core
