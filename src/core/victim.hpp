#pragma once
// The victim firmware: SEAL v3.2's set_poly_coeffs_normal re-authored as
// RV32IM machine code running on the simulated PicoRV32 target.
//
// Structure per coefficient (mirrors paper Fig. 2 line-for-line):
//   1. dist(engine): an integer clipped-Gaussian — sum of 12 uniforms drawn
//      by rejection (time-variant, like the resampling loop in SEAL's
//      ClippedNormalDistribution), scaled by a 35-cycle sequential multiply
//      (the "distinguishable and visible peak" of Fig. 3a) and rounded;
//      sigma = 3.19, values clipped to |v| <= 41 by a resample loop.
//   2. if (noise > 0)       -> store noise into every RNS component
//      else if (noise < 0)  -> negate, store modulus - noise
//      else                 -> store 0
//      (three distinct control-flow paths: vulnerability 1; the value
//      assignment: vulnerability 2; the negation: vulnerability 3).
//
// The host seeds the firmware's xorshift32 PRNG through a memory word and
// reads the produced polynomial back from memory after the run.

#include <cstdint>
#include <vector>

#include "riscv/machine.hpp"

namespace reveal::core {

struct VictimLayout {
  std::uint32_t code_base = 0x0000;
  std::uint32_t seed_addr = 0x7FF0;   ///< host writes the PRNG seed here
  std::uint32_t poly_base = 0x8000;   ///< n * coeff_mod_count words
  std::uint32_t perm_base = 0;        ///< shuffled firmware: n permutation words
  std::uint32_t mask_base = 0;        ///< masked firmware: second-share array
};

struct VictimProgram {
  std::vector<std::uint32_t> words;   ///< assembled firmware
  VictimLayout layout;
  std::size_t n = 0;                  ///< coefficients per polynomial
  std::size_t poly_count = 1;         ///< error polynomials sampled per run
  std::size_t coeff_mod_count = 0;
  std::vector<std::uint64_t> moduli;  ///< q_j values (must fit in 31 bits)
  std::uint32_t loop_pc = 0;          ///< address of the per-coefficient loop head
  std::uint32_t mul_pc = 0;           ///< address of the scaling multiply (burst)
  std::size_t memory_bytes = 0;       ///< required machine memory
  bool shuffled = false;              ///< processes coefficients in random order
  bool masked = false;                ///< stores arithmetic shares instead of values
};

/// Builds the sampler firmware for `n` coefficients over `moduli`.
/// n must be a power of two; every modulus must be < 2^31.
[[nodiscard]] VictimProgram build_sampler_firmware(std::size_t n,
                                                   const std::vector<std::uint64_t>& moduli);

/// SEAL v3.6-style patched firmware: identical sampling, but the sign
/// handling is branch-free (mask = noise >> 31; store noise + (mask & q_j)),
/// so all three sign cases execute the same instruction sequence — the
/// control-flow leak (vulnerability 1) and the negation (vulnerability 3)
/// are gone; only data-flow leakage remains (paper §V-A: "SEAL v3.6 and
/// later versions may have a different vulnerability").
[[nodiscard]] VictimProgram build_patched_firmware(std::size_t n,
                                                   const std::vector<std::uint64_t>& moduli);

/// Shuffling countermeasure (paper §V-A: "such defenses may involve
/// shuffling"): the firmware draws a Fisher-Yates permutation first, then
/// processes the coefficients in that random order. The per-window leakage
/// is unchanged, but the adversary no longer knows WHICH coefficient each
/// window belongs to — recovering only the multiset of e2 values, which
/// defeats Eq. (2)/(3) message recovery and positional DBDD hints.
[[nodiscard]] VictimProgram build_shuffled_firmware(std::size_t n,
                                                    const std::vector<std::uint64_t>& moduli);

/// Full-encryption firmware: samples BOTH error polynomials (e1 then e2)
/// back to back, like SEAL's Encryptor which calls set_poly_coeffs_normal
/// twice per encryption — one power trace covers 2n coefficient windows.
/// `VictimRun::noise` holds e1's n values followed by e2's.
[[nodiscard]] VictimProgram build_encryption_firmware(std::size_t n,
                                                      const std::vector<std::uint64_t>& moduli);

/// First-order masking "defense": every store writes a fresh arithmetic
/// share pair (r, value - r mod 2^32) instead of the value. The paper warns
/// masking is "susceptible against single-trace side-channel attacks"
/// (§V-A): the sign branches and the pre-store registers still process the
/// unmasked noise, so the control-flow leak is untouched and the
/// multivariate templates remain (weakly) effective against the shares.
[[nodiscard]] VictimProgram build_masked_firmware(std::size_t n,
                                                  const std::vector<std::uint64_t>& moduli);

/// CDT-sampler firmware (the related-work construction of refs [10]/[12]):
/// one PRNG draw per coefficient, then a cumulative-table scan. The leaky
/// variant's early-exit scan leaks the sampled value through pure timing;
/// the constant-time variant scans the whole table branchlessly. The
/// clip bound must stay at 41 for the shared ground-truth decoding.
[[nodiscard]] VictimProgram build_cdt_firmware(std::size_t n,
                                               const std::vector<std::uint64_t>& moduli,
                                               bool constant_time = false,
                                               double sigma = 3.19,
                                               double max_deviation = 41.0);

/// Ground-truth permutation of a completed shuffled run: slot -> coefficient
/// index (host-side only; the attacker never sees this). Throws if the
/// program is not a shuffled firmware.
[[nodiscard]] std::vector<std::uint32_t> read_permutation(const VictimProgram& program,
                                                          const riscv::Machine& machine);

/// Result of one firmware execution.
struct VictimRun {
  std::vector<std::int64_t> noise;  ///< ground-truth sampled values (signed)
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
};

namespace detail {
/// Instruction budget of one firmware run (generous: ~400 per coefficient).
[[nodiscard]] std::uint64_t victim_instruction_limit(const VictimProgram& program) noexcept;
/// Resets the machine, loads the firmware and writes the PRNG seed.
void prepare_victim_run(const VictimProgram& program, riscv::Machine& machine,
                        std::uint32_t seed);
/// Validates the stop reason and decodes the produced polynomial.
[[nodiscard]] VictimRun finish_victim_run(const VictimProgram& program,
                                          const riscv::Machine& machine,
                                          riscv::Machine::StopReason reason);
}  // namespace detail

/// Loads the firmware into `machine`, writes `seed`, runs to completion and
/// decodes the produced polynomial back into signed noise values.
/// Throws std::runtime_error on trap or instruction-limit overrun.
VictimRun run_victim(const VictimProgram& program, riscv::Machine& machine,
                     std::uint32_t seed, riscv::ExecutionObserver* observer = nullptr);

/// The victim simulator's execution ladder (DESIGN.md §6f). Every tier
/// produces byte-identical InstrEvent streams and machine state; only the
/// dispatch cost differs.
enum class VictimTier : std::uint8_t {
  kReference,  ///< decode-per-step (Machine::run_reference, the anchor)
  kPredecode,  ///< predecoded-instruction cache, per-step dispatch
  kBlock,      ///< basic-block translation, threaded dispatch (default)
};

/// Configures `machine`'s caches for `tier` (idempotent and cheap — safe to
/// call before every run; warm caches are kept when already in the right
/// mode).
void configure_victim_tier(riscv::Machine& machine, VictimTier tier) noexcept;

/// run_victim pinned to an execution tier: kReference runs the
/// decode-per-step anchor loop, the other tiers run the corresponding cache
/// configuration. Used by the bench tier ladder and the differential tests.
VictimRun run_victim_tier(const VictimProgram& program, riscv::Machine& machine,
                          std::uint32_t seed, VictimTier tier,
                          riscv::ExecutionObserver* observer = nullptr);

/// run_victim with a statically-bound observer: the capture hot path —
/// Machine::run_with fuses the observer callback into the execute loop, so
/// per-instruction virtual dispatch disappears. Byte-identical results.
template <typename ObserverT>
VictimRun run_victim_with(const VictimProgram& program, riscv::Machine& machine,
                          std::uint32_t seed, ObserverT& observer) {
  detail::prepare_victim_run(program, machine, seed);
  const auto reason = machine.run_with(detail::victim_instruction_limit(program), observer);
  return detail::finish_victim_run(program, machine, reason);
}

}  // namespace reveal::core
