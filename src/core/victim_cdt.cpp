// CDT-sampler firmware — the *related-work* attack surface (paper §I cites
// Kim et al. [10] and Zhang et al. [12], which attack cumulative-
// distribution-table samplers; those attacks "are not directly applicable
// on SEAL" because SEAL uses the clipped normal — this firmware exists to
// reproduce that contrast on the same simulated target).
//
// Per coefficient: one 32-bit PRNG draw r, then a table scan for the first
// cumulative threshold >= r.
//   - leaky variant: early-exit scan — the scan LENGTH equals the sampled
//     value's index, a pure timing leak;
//   - constant-time variant: full-table branchless scan (the [10]/[12]
//     countermeasure) — flat timing, only data-flow leakage remains.
// The sign-assignment code afterwards is the same Fig. 2 port as the main
// victim, so the poly memory encoding and ground-truth decoding are shared.

#include <stdexcept>

#include "core/victim.hpp"
#include "riscv/assembler.hpp"
#include "seal/dgauss.hpp"

namespace reveal::core {

namespace {

using namespace reveal::riscv;

bool is_power_of_two_(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }

int log2_exact_(std::size_t v) {
  int l = 0;
  while ((std::size_t{1} << l) < v) ++l;
  return l;
}

}  // namespace

VictimProgram build_cdt_firmware(std::size_t n, const std::vector<std::uint64_t>& moduli,
                                 bool constant_time, double sigma, double max_deviation) {
  if (!is_power_of_two_(n)) throw std::invalid_argument("cdt victim: n must be a power of two");
  if (moduli.empty()) throw std::invalid_argument("cdt victim: need at least one modulus");
  for (const std::uint64_t q : moduli) {
    if (q == 0 || q >= (std::uint64_t{1} << 31))
      throw std::invalid_argument("cdt victim: moduli must fit in 31 bits");
  }

  // 32-bit cumulative thresholds from the exact sampler table.
  const seal::CdtSampler sampler(sigma, max_deviation);
  std::vector<std::uint32_t> cdt32;
  cdt32.reserve(sampler.table().size());
  for (const std::uint64_t threshold : sampler.table()) {
    cdt32.push_back(static_cast<std::uint32_t>(threshold >> 32));
  }
  cdt32.back() = 0xFFFFFFFFu;
  const auto table_size = static_cast<std::int32_t>(cdt32.size());
  const std::int32_t bias = sampler.max_value();  // value = index - bias

  VictimProgram prog;
  prog.n = n;
  prog.coeff_mod_count = moduli.size();
  prog.moduli = moduli;
  prog.layout.perm_base =
      prog.layout.poly_base + static_cast<std::uint32_t>(4 * n * moduli.size());
  prog.layout.mask_base = prog.layout.perm_base + static_cast<std::uint32_t>(4 * n);
  prog.memory_bytes = prog.layout.mask_base + 4 * n * moduli.size() + 4096;

  const int row_shift = log2_exact_(n) + 2;

  Assembler as(prog.layout.code_base);
  // Register plan: s0 = i, s1 = n, s2 = &poly, s3 = rng, s4 = k,
  // s5 = &qtable, s6 = &cdt, s7 = table size, s8 = bias. a0 = value.
  as.j("start");
  as.label("qtable");
  for (const std::uint64_t q : moduli) as.word(static_cast<std::uint32_t>(q));
  as.label("cdt");
  for (const std::uint32_t t : cdt32) as.word(t);

  as.label("start");
  as.li(s1, static_cast<std::int32_t>(n));
  as.li(s2, static_cast<std::int32_t>(prog.layout.poly_base));
  as.li(t0, static_cast<std::int32_t>(prog.layout.seed_addr));
  as.lw(s3, 0, t0);
  as.li(s4, static_cast<std::int32_t>(moduli.size()));
  as.la(s5, "qtable");
  as.la(s6, "cdt");
  as.li(s7, table_size);
  as.li(s8, bias);
  as.li(s0, 0);

  prog.loop_pc = as.here();
  as.label("loop_i");
  as.bge(s0, s1, "done");

  // One PRNG draw.
  as.slli(t2, s3, 13);
  as.xor_(s3, s3, t2);
  as.srli(t2, s3, 17);
  as.xor_(s3, s3, t2);
  as.slli(t2, s3, 5);
  as.xor_(s3, s3, t2);
  // r = state (full 32 bits), unsigned comparisons against the table.

  as.li(t1, 0);  // idx
  if (!constant_time) {
    // Early-exit scan: duration = idx * (load + compare + inc + jump) — the
    // timing side channel of the CDT construction.
    as.label("scan");
    as.slli(t2, t1, 2);
    as.add(t2, t2, s6);
    as.lw(t3, 0, t2);           // cdt[idx]
    as.bgeu(t3, s3, "found");   // threshold >= r: stop
    as.addi(t1, t1, 1);
    as.blt(t1, s7, "scan");
    as.addi(t1, s7, -1);        // clamp (r above the last threshold)
    as.label("found");
  } else {
    // Constant-time scan: every entry touched; idx += (cdt[k] < r).
    as.li(t4, 0);  // k
    as.label("ct_scan");
    as.bge(t4, s7, "ct_done");
    as.slli(t2, t4, 2);
    as.add(t2, t2, s6);
    as.lw(t3, 0, t2);
    as.sltu(t5, t3, s3);        // cdt[k] < r
    as.add(t1, t1, t5);
    as.addi(t4, t4, 1);
    as.j("ct_scan");
    as.label("ct_done");
  }
  as.sub(a0, t1, s8);  // value = idx - bias

  // ---- the same Fig. 2 sign assignment as the main victim ---------------
  as.slli(t0, s0, 2);
  as.add(t0, t0, s2);
  as.bgtz(a0, "branch_pos");
  as.bltz(a0, "branch_neg");
  as.li(t1, 0);
  as.label("zero_j");
  as.bge(t1, s4, "end_i");
  as.slli(t2, t1, static_cast<std::uint32_t>(row_shift));
  as.add(t2, t2, t0);
  as.sw(zero, 0, t2);
  as.addi(t1, t1, 1);
  as.j("zero_j");

  as.label("branch_pos");
  as.li(t1, 0);
  as.label("pos_j");
  as.bge(t1, s4, "end_i");
  as.slli(t2, t1, static_cast<std::uint32_t>(row_shift));
  as.add(t2, t2, t0);
  as.sw(a0, 0, t2);
  as.addi(t1, t1, 1);
  as.j("pos_j");

  as.label("branch_neg");
  as.neg(a0, a0);
  as.li(t1, 0);
  as.label("neg_j");
  as.bge(t1, s4, "end_i");
  as.slli(t3, t1, 2);
  as.add(t3, t3, s5);
  as.lw(t4, 0, t3);
  as.sub(t5, t4, a0);
  as.slli(t2, t1, static_cast<std::uint32_t>(row_shift));
  as.add(t2, t2, t0);
  as.sw(t5, 0, t2);
  as.addi(t1, t1, 1);
  as.j("neg_j");

  as.label("end_i");
  as.addi(s0, s0, 1);
  as.j("loop_i");

  as.label("done");
  as.ebreak();

  prog.words = as.assemble();
  return prog;
}

}  // namespace reveal::core
