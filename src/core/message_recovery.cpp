#include "core/message_recovery.hpp"

#include <stdexcept>

#include "seal/biguint.hpp"
#include "seal/crt.hpp"
#include "seal/modarith.hpp"
#include "seal/poly.hpp"
#include "seal/sampler.hpp"

namespace reveal::core {

std::optional<seal::Poly> recover_u(const seal::Context& context, const seal::PublicKey& pk,
                                    const seal::Ciphertext& ct,
                                    const std::vector<std::int64_t>& e2) {
  using namespace reveal::seal;
  if (ct.size() != 2) throw std::invalid_argument("recover_u: need a fresh 2-part ciphertext");
  if (e2.size() != context.n())
    throw std::invalid_argument("recover_u: e2 size does not match context");

  const auto& tables = context.fast_ntt_tables();
  const auto& moduli = context.coeff_modulus();

  Poly e2_poly;
  encode_noise_values(e2, context, e2_poly);

  // numerator = c1 - e2, then divide by p1 pointwise in the NTT domain.
  Poly numerator;
  polyops::sub(ct[1], e2_poly, moduli, numerator);
  polyops::ntt_forward(numerator, tables);

  Poly p1 = pk.p1;
  polyops::ntt_forward(p1, tables);

  Poly u(context.n(), context.coeff_mod_count());
  for (std::size_t j = 0; j < moduli.size(); ++j) {
    for (std::size_t i = 0; i < context.n(); ++i) {
      const std::uint64_t denom = p1.at(i, j);
      if (denom == 0) return std::nullopt;  // p1 not invertible
      u.at(i, j) = mul_mod(numerator.at(i, j), inverse_mod(denom, moduli[j]), moduli[j]);
    }
  }
  polyops::ntt_inverse(u, tables);

  // Consistency: u must be ternary in every RNS component.
  for (std::size_t i = 0; i < context.n(); ++i) {
    const std::uint64_t v0 = u.at(i, 0);
    const std::int64_t centered = center_mod(v0, moduli[0]);
    if (centered < -1 || centered > 1) return std::nullopt;
    for (std::size_t j = 1; j < moduli.size(); ++j) {
      if (center_mod(u.at(i, j), moduli[j]) != centered) return std::nullopt;
    }
  }
  return u;
}

std::optional<seal::Plaintext> recover_message(const seal::Context& context,
                                               const seal::PublicKey& pk,
                                               const seal::Ciphertext& ct,
                                               const std::vector<std::int64_t>& e2) {
  using namespace reveal::seal;
  const std::optional<Poly> u = recover_u(context, pk, ct, e2);
  if (!u.has_value()) return std::nullopt;

  const auto& tables = context.fast_ntt_tables();
  const auto& moduli = context.coeff_modulus();

  // x = c0 - p0*u = Delta*m + e1 (mod q).
  Poly p0u;
  polyops::multiply_ntt(pk.p0, *u, tables, p0u);
  Poly x;
  polyops::sub(ct[0], p0u, moduli, x);

  // CRT-compose and round: m_i = floor((t*x_i + q/2) / q) mod t.
  const BigUInt& q = context.total_coeff_modulus();
  BigUInt half_q = q;
  half_q >>= 1;
  const std::uint64_t t = context.plain_modulus().value();
  const CrtComposer crt(moduli);

  std::vector<std::uint64_t> message(context.n(), 0);
  for (std::size_t i = 0; i < context.n(); ++i) {
    const BigUInt xi = crt.compose(x, i);
    const BigUInt numerator = xi * t + half_q;
    message[i] = BigUInt::divmod(numerator, q).quotient.mod_word(t);
  }
  while (!message.empty() && message.back() == 0) message.pop_back();
  return Plaintext(std::move(message));
}

}  // namespace reveal::core
