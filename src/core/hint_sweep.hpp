#pragma once
// Parallel hint-count / hint-order sweeps over the DBDD estimators.
//
// The paper's Tables III/IV are bikz-vs-hint-count curves; reproducing them
// at n = 1024 means estimating security for every (hint count, hint order)
// grid point — embarrassingly parallel, but only worth parallelizing if the
// sweep stays bit-identical across worker counts. The sweep follows the
// determinism contract of core/parallel:
//
//   * every grid point derives its RNG from stream_seed(base_seed, index)
//     alone — never from the executing worker or completion order;
//   * each task writes only its own index slot of the result grid;
//   * summary statistics are reduced AFTER the parallel phase, in fixed
//     index order, with RunningStats Chan merges across fixed per-count
//     blocks. (Per-worker accumulators are deliberately NOT used: the pool
//     steals work, so which indices a worker ran is schedule-dependent and
//     any per-worker partial would be too.)
//
// Two planes share the grid logic: the lightweight dim/log-vol estimator
// (paper-scale curves, microseconds per point) and the full-Sigma matrix
// estimator (real O(d^2)-per-hint work, the parallel benchmark workload).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "lattice/bkz_sim.hpp"
#include "lwe/dbdd.hpp"
#include "numeric/stats.hpp"

namespace reveal::core {

/// One available hint in the sweep pool (what the side channel would yield
/// for one error coordinate).
struct SweepHint {
  enum class Kind : std::uint8_t {
    kPerfect,      ///< exact coefficient knowledge
    kApproximate,  ///< noisy measurement, Gaussian conditioning
    kPosterior,    ///< posterior replacement at `variance`
  };
  Kind kind = Kind::kPerfect;
  double variance = 0.0;  ///< measurement / posterior variance (unused for perfect)
};

struct HintSweepConfig {
  /// Sentinel for num_workers: resolve to hardware concurrency at use.
  static constexpr std::size_t kAutoWorkers = static_cast<std::size_t>(-1);

  lwe::DbddParams params;            ///< base LWE instance
  std::vector<std::size_t> counts;   ///< hint-count grid (one curve point each)
  std::size_t orders = 8;            ///< random hint subsets/orders per count
  std::uint64_t base_seed = 0x5eed5eedULL;
  std::size_t num_workers = kAutoWorkers;

  /// Use the BKZ-simulator estimate instead of the GSA closed form
  /// (lightweight sweep only).
  bool simulated = false;
  lattice::BkzSimParams sim_params;
};

/// Per-count summary (over the `orders` random orders of that count).
struct HintSweepCell {
  std::size_t count = 0;
  num::RunningStats beta;  ///< bikz across orders
  num::RunningStats bits;  ///< security bits across orders
};

struct HintSweepResult {
  /// Flat grid, betas[count_index * orders + order_index]; the raw
  /// per-task outputs (what worker-count invariance is asserted on).
  std::vector<double> betas;
  /// One cell per entry of config.counts, same order.
  std::vector<HintSweepCell> cells;
  /// Chan merge of every cell's beta stats, merged in count order.
  num::RunningStats overall_beta;
};

/// Lightweight-estimator sweep: grid point (count c, order o) draws a
/// random permutation of `pool` from its stream seed, integrates the first
/// c hints into a fresh DbddEstimator in permutation order, and records the
/// closed-form (or simulated) bikz. Requires every count <= pool size and
/// pool size <= params.error_dim.
[[nodiscard]] HintSweepResult run_hint_sweep(const HintSweepConfig& config,
                                             const std::vector<SweepHint>& pool);

/// Matrix-estimator sweep: same grid, but each task integrates its hints
/// into a full-Sigma DbddMatrixEstimator as directional hints — perfect
/// hints become coordinate hints on the permuted error coordinate, the
/// noisy kinds become approximate hints along a random dense unit direction
/// (seeded per task). Real O(d^2) work per grid point; the workload behind
/// bench_lattice's parallel-sweep gate.
[[nodiscard]] HintSweepResult run_matrix_hint_sweep(
    const HintSweepConfig& config, const std::vector<SweepHint>& pool);

}  // namespace reveal::core
