#pragma once
// Measurement campaigns against the simulated target: run the victim
// firmware, capture power traces, segment them into per-coefficient
// windows, and (for profiling) attach the ground-truth sampled values —
// the adversary "can profile the target device" and "configure the device
// with all possible secrets" (paper §II-B, §III-D).

#include <cstdint>
#include <vector>

#include "core/victim.hpp"
#include "power/fault_injector.hpp"
#include "power/leakage_model.hpp"
#include "power/trace_recorder.hpp"
#include "sca/segmentation.hpp"
#include "sca/trace.hpp"

namespace reveal::core {

struct CampaignConfig {
  /// Sentinel for num_workers: resolve to hardware_concurrency at use.
  static constexpr std::size_t kAutoWorkers = static_cast<std::size_t>(-1);

  std::size_t n = 64;  ///< coefficients sampled per firmware run
  std::vector<std::uint64_t> moduli = {132120577ULL};
  bool patched_firmware = false;   ///< run the v3.6-style branch-free victim
  bool shuffled_firmware = false;  ///< run the shuffling-countermeasure victim
  bool masked_firmware = false;    ///< run the share-masked-store victim
  power::LeakageParams leakage{};
  /// Acquisition faults injected into every captured trace (default: none —
  /// bit-identical to the clean pipeline). Fault randomness derives from
  /// (faults.seed, capture seed), so degraded campaigns stay reproducible.
  power::FaultSpec faults{};
  sca::SegmentationConfig segmentation{
      .smooth_window = 5,
      // Between the worst-case smoothed normal-code level (~8) and the
      // sustained multiplier-burst level (~12.7).
      .threshold = 10.0,
      .min_burst_length = 20,
  };
  /// Worker threads for campaign-shaped sweeps (multi-trace acquisition,
  /// template building, classification fan-out). kAutoWorkers resolves to
  /// hardware_concurrency; 0 forces the single-threaded reference path.
  /// Any setting produces bit-identical results — per-trace RNG streams are
  /// derived from the capture seed alone, and all accumulations merge in
  /// index order (pinned by tests/test_campaign_equivalence.cpp).
  std::size_t num_workers = kAutoWorkers;
  /// Victim-simulator cache configuration used for every capture (DESIGN.md
  /// §6f). All tiers capture bit-identical traces — kReference here means
  /// decode-per-step dispatch (the observer still binds statically); pinned
  /// by the golden-fixture and campaign-equivalence tests.
  VictimTier victim_tier = VictimTier::kBlock;
};

/// `config.num_workers` with the auto sentinel resolved.
[[nodiscard]] std::size_t resolved_num_workers(const CampaignConfig& config) noexcept;

/// One per-coefficient window cut out of a full trace.
struct WindowRecord {
  std::vector<double> samples;
  std::int32_t true_value = 0;  ///< ground truth (profiling only)
};

/// A complete capture of one encryption-noise sampling run.
/// For shuffled firmware, `segments`/`noise` are in *slot* (time) order —
/// noise[s] is the value sampled in window s — and `permutation` holds the
/// host-side ground truth slot -> coefficient map (empty otherwise).
struct FullCapture {
  std::vector<double> trace;
  std::vector<std::int64_t> noise;      ///< ground truth per window
  std::vector<sca::Segment> segments;   ///< one per coefficient if OK
  std::vector<std::uint32_t> permutation;
};

class SamplerCampaign {
 public:
  explicit SamplerCampaign(CampaignConfig config);

  [[nodiscard]] const CampaignConfig& config() const noexcept { return config_; }
  [[nodiscard]] const VictimProgram& program() const noexcept { return program_; }

  /// Runs the firmware once with the given PRNG seed and a fresh
  /// measurement-noise stream; segments the captured trace.
  [[nodiscard]] FullCapture capture(std::uint64_t seed);

  /// capture() into caller-provided storage: every FullCapture field is
  /// overwritten (bit-identical to capture()), reusing the vectors'
  /// capacity. Passing the same FullCapture across a campaign's captures
  /// makes acquisition allocation-free in steady state — the internal
  /// recorder is persistent and pre-reserved from the firmware's
  /// instruction budget.
  void capture_into(std::uint64_t seed, FullCapture& out);

  /// Collects labelled windows from `runs` captures (profiling phase).
  /// Captures whose segmentation does not yield exactly n windows are
  /// skipped (counted in `rejected` if non-null). With a resolved
  /// `config.num_workers > 0` the captures fan out over a CampaignRunner
  /// worker pool (capture r keeps seed `seed_base + r`, so the collected
  /// windows are bit-identical to the serial path in any configuration).
  [[nodiscard]] std::vector<WindowRecord> collect_windows(std::size_t runs,
                                                          std::uint64_t seed_base,
                                                          std::size_t* rejected = nullptr);

  /// Fault-injector activation counts accumulated over every capture this
  /// campaign ran (all zero when config().faults is empty). Each count is a
  /// pure function of (spec, capture seeds), so per-worker campaign
  /// replicas merged in worker order reproduce the sequential tally.
  [[nodiscard]] const power::FaultStats& fault_stats() const noexcept {
    return fault_stats_;
  }

 private:
  CampaignConfig config_;
  VictimProgram program_;
  power::LeakageModel model_;
  riscv::Machine machine_;
  power::TraceRecorder recorder_;       ///< persistent; rearmed per capture
  power::FaultInjector fault_injector_; ///< no-op when config_.faults is empty
  power::FaultStats fault_stats_;       ///< accumulated across captures
};

/// Refines segment boundaries: anchors each window at the burst's falling
/// edge in the *raw* trace (the multiplier's last cycle is the last sample
/// above threshold — a >8-sigma margin), so window prefixes align exactly
/// across coefficients and traces even though smoothing blurs the detected
/// edges by a few samples.
void anchor_windows_at_burst_edge(const std::vector<double>& trace,
                                  std::vector<sca::Segment>& segments, double threshold);

/// Cuts the (anchored) windows out of a capture.
[[nodiscard]] std::vector<WindowRecord> windows_from_capture(const FullCapture& capture);

/// windows_from_capture into caller-provided storage: `out` is resized to
/// the segment count and each record's sample buffer is overwritten in
/// place, so a profiling loop that passes the same vector every capture
/// stops allocating once the element buffers have grown to steady state.
/// Results are bit-identical to the returning overload.
void windows_from_capture(const FullCapture& capture, std::vector<WindowRecord>& out);

}  // namespace reveal::core
