#include "core/hints.hpp"

#include <algorithm>

#include "numeric/distributions.hpp"

namespace reveal::core {

HintSummary integrate_guess_hints(lwe::DbddEstimator& estimator,
                                  const std::vector<CoefficientGuess>& guesses,
                                  double perfect_threshold) {
  HintSummary summary;
  double var_acc = 0.0;
  for (const auto& g : guesses) {
    const double variance = g.posterior_variance();
    if (variance <= perfect_threshold) {
      estimator.integrate_perfect_error_hints(1);
      ++summary.perfect;
    } else {
      estimator.integrate_posterior_error_hints(variance, 1);
      ++summary.approximate;
      var_acc += variance;
    }
  }
  if (summary.approximate > 0)
    summary.mean_residual_variance = var_acc / static_cast<double>(summary.approximate);
  return summary;
}

HintRecord route_guess(const CoefficientGuess& g, const HintPolicy& policy) {
  switch (g.quality) {
    case GuessQuality::kOk: {
      if (g.sign == 0 && policy.zero_hint_variance > 0.0)
        return {HintRecord::Kind::kApproximate, policy.zero_hint_variance};
      const double variance = g.posterior_variance();
      if (variance <= policy.perfect_threshold) return {HintRecord::Kind::kPerfect, 0.0};
      return {HintRecord::Kind::kApproximate, variance};
    }
    case GuessQuality::kLowConfidence: {
      const double variance =
          std::max(g.posterior_variance() * policy.low_confidence_inflation,
                   policy.min_inflated_variance);
      return {HintRecord::Kind::kApproximate, variance};
    }
    case GuessQuality::kAbstained: {
      if (!g.sign_trusted) return {HintRecord::Kind::kSkipped, 0.0};
      const double variance =
          g.sign == 0 ? policy.abstained_zero_variance
                      : num::positive_tail_variance(policy.sigma, policy.max_deviation);
      return {HintRecord::Kind::kSignOnly, variance};
    }
  }
  return {HintRecord::Kind::kSkipped, 0.0};  // unreachable
}

void apply_hint(lwe::DbddEstimator& estimator, const HintRecord& record) {
  switch (record.kind) {
    case HintRecord::Kind::kPerfect:
      estimator.integrate_perfect_error_hints(1);
      break;
    case HintRecord::Kind::kApproximate:
    case HintRecord::Kind::kSignOnly:
      estimator.integrate_posterior_error_hints(record.variance, 1);
      break;
    case HintRecord::Kind::kSkipped:
      break;
  }
}

void HintTally::add(const HintRecord& record) {
  switch (record.kind) {
    case HintRecord::Kind::kPerfect: ++perfect; break;
    case HintRecord::Kind::kApproximate:
      ++approximate;
      approximate_variance_sum += record.variance;
      break;
    case HintRecord::Kind::kSignOnly: ++sign_only; break;
    case HintRecord::Kind::kSkipped: ++skipped; break;
  }
}

void HintTally::merge(const HintTally& other) noexcept {
  perfect += other.perfect;
  approximate += other.approximate;
  sign_only += other.sign_only;
  skipped += other.skipped;
  approximate_variance_sum += other.approximate_variance_sum;
}

HintSummary HintTally::summary() const {
  HintSummary s;
  s.perfect = perfect;
  s.approximate = approximate;
  s.sign_only = sign_only;
  s.skipped = skipped;
  if (approximate > 0)
    s.mean_residual_variance = approximate_variance_sum / static_cast<double>(approximate);
  return s;
}

bool routes_as_perfect(const CoefficientGuess& g, const HintPolicy& policy) {
  return route_guess(g, policy).kind == HintRecord::Kind::kPerfect;
}

HintSummary integrate_guess_hints(lwe::DbddEstimator& estimator,
                                  const std::vector<CoefficientGuess>& guesses,
                                  const HintPolicy& policy) {
  HintTally tally;
  for (const auto& g : guesses) {
    const HintRecord record = route_guess(g, policy);
    apply_hint(estimator, record);
    tally.add(record);
  }
  return tally.summary();
}

HintSummary integrate_sign_only_hints(lwe::DbddEstimator& estimator,
                                      const std::vector<CoefficientGuess>& guesses,
                                      double sigma, double max_deviation) {
  // Knowing only the sign, the adversary's belief about a nonzero
  // coefficient is the one-sided rounded clipped Gaussian; its variance is
  // what remains to be searched. Zero detections are exact.
  const double side_variance = num::positive_tail_variance(sigma, max_deviation);
  HintSummary summary;
  for (const auto& g : guesses) {
    if (g.sign == 0) {
      estimator.integrate_perfect_error_hints(1);
      ++summary.perfect;
    } else {
      estimator.integrate_posterior_error_hints(side_variance, 1);
      ++summary.approximate;
    }
  }
  summary.mean_residual_variance = summary.approximate > 0 ? side_variance : 0.0;
  return summary;
}

sca::RecoveryReport summarize_recovery(const RobustCaptureResult& result,
                                       std::size_t expected_windows,
                                       const HintSummary& hints,
                                       const lwe::SecurityEstimate& estimate) {
  sca::RecoveryReport report;
  report.expected_windows = expected_windows;
  report.recovered_windows = result.segmentation.segments.size();
  report.segmentation_status = result.segmentation.status;
  report.segmentation_attempts = result.segmentation.attempts;
  report.burst_consistency = result.segmentation.burst_consistency;
  for (const CoefficientGuess& g : result.guesses) {
    switch (g.quality) {
      case GuessQuality::kOk: ++report.ok_guesses; break;
      case GuessQuality::kLowConfidence: ++report.low_confidence_guesses; break;
      case GuessQuality::kAbstained: ++report.abstained_guesses; break;
    }
  }
  report.perfect_hints = hints.perfect;
  report.approximate_hints = hints.approximate;
  report.sign_only_hints = hints.sign_only;
  report.dropped_hints = hints.skipped;
  report.bikz = estimate.beta;
  report.bits = estimate.bits;
  return report;
}

}  // namespace reveal::core
