#include "core/hints.hpp"

#include <algorithm>

#include "numeric/distributions.hpp"

namespace reveal::core {

HintSummary integrate_guess_hints(lwe::DbddEstimator& estimator,
                                  const std::vector<CoefficientGuess>& guesses,
                                  double perfect_threshold) {
  HintSummary summary;
  double var_acc = 0.0;
  for (const auto& g : guesses) {
    const double variance = g.posterior_variance();
    if (variance <= perfect_threshold) {
      estimator.integrate_perfect_error_hints(1);
      ++summary.perfect;
    } else {
      estimator.integrate_posterior_error_hints(variance, 1);
      ++summary.approximate;
      var_acc += variance;
    }
  }
  if (summary.approximate > 0)
    summary.mean_residual_variance = var_acc / static_cast<double>(summary.approximate);
  return summary;
}

bool routes_as_perfect(const CoefficientGuess& g, const HintPolicy& policy) {
  if (g.quality != GuessQuality::kOk) return false;
  if (g.sign == 0 && policy.zero_hint_variance > 0.0) return false;
  return g.posterior_variance() <= policy.perfect_threshold;
}

HintSummary integrate_guess_hints(lwe::DbddEstimator& estimator,
                                  const std::vector<CoefficientGuess>& guesses,
                                  const HintPolicy& policy) {
  const double side_variance =
      num::positive_tail_variance(policy.sigma, policy.max_deviation);
  HintSummary summary;
  double var_acc = 0.0;
  for (const auto& g : guesses) {
    switch (g.quality) {
      case GuessQuality::kOk: {
        if (g.sign == 0 && policy.zero_hint_variance > 0.0) {
          estimator.integrate_posterior_error_hints(policy.zero_hint_variance, 1);
          ++summary.approximate;
          var_acc += policy.zero_hint_variance;
          break;
        }
        const double variance = g.posterior_variance();
        if (variance <= policy.perfect_threshold) {
          estimator.integrate_perfect_error_hints(1);
          ++summary.perfect;
        } else {
          estimator.integrate_posterior_error_hints(variance, 1);
          ++summary.approximate;
          var_acc += variance;
        }
        break;
      }
      case GuessQuality::kLowConfidence: {
        const double variance =
            std::max(g.posterior_variance() * policy.low_confidence_inflation,
                     policy.min_inflated_variance);
        estimator.integrate_posterior_error_hints(variance, 1);
        ++summary.approximate;
        var_acc += variance;
        break;
      }
      case GuessQuality::kAbstained: {
        if (!g.sign_trusted) {
          ++summary.skipped;
          break;
        }
        estimator.integrate_posterior_error_hints(
            g.sign == 0 ? policy.abstained_zero_variance : side_variance, 1);
        ++summary.sign_only;
        break;
      }
    }
  }
  if (summary.approximate > 0)
    summary.mean_residual_variance = var_acc / static_cast<double>(summary.approximate);
  return summary;
}

HintSummary integrate_sign_only_hints(lwe::DbddEstimator& estimator,
                                      const std::vector<CoefficientGuess>& guesses,
                                      double sigma, double max_deviation) {
  // Knowing only the sign, the adversary's belief about a nonzero
  // coefficient is the one-sided rounded clipped Gaussian; its variance is
  // what remains to be searched. Zero detections are exact.
  const double side_variance = num::positive_tail_variance(sigma, max_deviation);
  HintSummary summary;
  for (const auto& g : guesses) {
    if (g.sign == 0) {
      estimator.integrate_perfect_error_hints(1);
      ++summary.perfect;
    } else {
      estimator.integrate_posterior_error_hints(side_variance, 1);
      ++summary.approximate;
    }
  }
  summary.mean_residual_variance = summary.approximate > 0 ? side_variance : 0.0;
  return summary;
}

sca::RecoveryReport summarize_recovery(const RobustCaptureResult& result,
                                       std::size_t expected_windows,
                                       const HintSummary& hints,
                                       const lwe::SecurityEstimate& estimate) {
  sca::RecoveryReport report;
  report.expected_windows = expected_windows;
  report.recovered_windows = result.segmentation.segments.size();
  report.segmentation_status = result.segmentation.status;
  report.segmentation_attempts = result.segmentation.attempts;
  report.burst_consistency = result.segmentation.burst_consistency;
  for (const CoefficientGuess& g : result.guesses) {
    switch (g.quality) {
      case GuessQuality::kOk: ++report.ok_guesses; break;
      case GuessQuality::kLowConfidence: ++report.low_confidence_guesses; break;
      case GuessQuality::kAbstained: ++report.abstained_guesses; break;
    }
  }
  report.perfect_hints = hints.perfect;
  report.approximate_hints = hints.approximate;
  report.sign_only_hints = hints.sign_only;
  report.dropped_hints = hints.skipped;
  report.bikz = estimate.beta;
  report.bits = estimate.bits;
  return report;
}

}  // namespace reveal::core
