#include "core/hints.hpp"

#include "numeric/distributions.hpp"

namespace reveal::core {

HintSummary integrate_guess_hints(lwe::DbddEstimator& estimator,
                                  const std::vector<CoefficientGuess>& guesses,
                                  double perfect_threshold) {
  HintSummary summary;
  double var_acc = 0.0;
  for (const auto& g : guesses) {
    const double variance = g.posterior_variance();
    if (variance <= perfect_threshold) {
      estimator.integrate_perfect_error_hints(1);
      ++summary.perfect;
    } else {
      estimator.integrate_posterior_error_hints(variance, 1);
      ++summary.approximate;
      var_acc += variance;
    }
  }
  if (summary.approximate > 0)
    summary.mean_residual_variance = var_acc / static_cast<double>(summary.approximate);
  return summary;
}

HintSummary integrate_sign_only_hints(lwe::DbddEstimator& estimator,
                                      const std::vector<CoefficientGuess>& guesses,
                                      double sigma, double max_deviation) {
  // Knowing only the sign, the adversary's belief about a nonzero
  // coefficient is the one-sided rounded clipped Gaussian; its variance is
  // what remains to be searched. Zero detections are exact.
  const double side_variance = num::positive_tail_variance(sigma, max_deviation);
  HintSummary summary;
  for (const auto& g : guesses) {
    if (g.sign == 0) {
      estimator.integrate_perfect_error_hints(1);
      ++summary.perfect;
    } else {
      estimator.integrate_posterior_error_hints(side_variance, 1);
      ++summary.approximate;
    }
  }
  summary.mean_residual_variance = summary.approximate > 0 ? side_variance : 0.0;
  return summary;
}

}  // namespace reveal::core
