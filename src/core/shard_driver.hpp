#pragma once
// Multi-process campaign sharding (DESIGN.md §8).
//
// The seed schedule {stream_seed(base_seed, i) : i < total} splits into
// `shards` contiguous index ranges. Each shard — a fork()ed child process,
// or an in-process pass when ShardOptions::in_process is set — runs
// accumulate_campaign_range over its range with its own CampaignRunner and
// serializes the resulting CampaignAccumulator to a partial file in
// `work_dir`. The parent loads the partials in fixed shard order, folds
// them with CampaignAccumulator::append, and finalizes.
//
// Byte-identity for every shard count falls out of the checkpoint
// determinism ledger (campaign_checkpoint.hpp): per-capture outputs are
// pure functions of (config, seed); the accumulator keeps order-sensitive
// float state per capture (hints verbatim, consistency per capture) so the
// shard-order concatenation reconstructs the exact capture-order sequences;
// integer counters are associative; histogram value sums travel as
// obs::ExactSum limbs. finalize_campaign then replays the one canonical
// capture-order reduction — so a 1-, 2- and 4-shard run of the same
// schedule produce byte-identical reports, hint sets, and diagnostics, and
// all match run_recovery_campaign_checkpointed over the same schedule.
//
// Partial files carry the campaign digest plus their (shard, range) so a
// stale file from a different campaign or a mis-assembled work_dir fails
// loudly at merge time instead of corrupting the result.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/campaign_checkpoint.hpp"
#include "corpus/trace_store.hpp"

namespace reveal::core {

struct ShardOptions {
  std::size_t shards = 2;      ///< number of schedule partitions (>= 1)
  std::string work_dir;        ///< partial files land here (must exist)
  /// Worker threads per shard runner (0 = the serial reference path).
  /// Does not change a single output byte — only shard wall-clock.
  std::size_t workers_per_shard = 0;
  /// Run the shards sequentially in this process instead of fork()ing.
  /// Outputs are byte-identical either way (each in-process shard still
  /// serializes and reloads its partial, exercising the same path); this
  /// mode exists for sanitizers that do not follow multi-process runs.
  bool in_process = false;
  /// Keep the per-shard partial files after a successful merge.
  bool keep_partials = false;
};

struct ShardedCampaignResult {
  sca::RecoveryReport report;
  HintSummary hint_totals;
  std::vector<std::vector<HintRecord>> hints;  ///< per capture, capture order
  CampaignDiagnostics diagnostics;  ///< registry + confusion; tracer empty
};

/// Contiguous index range [first, second) of shard `shard` out of `shards`
/// over a `total`-capture schedule: ceil-split, earlier shards no smaller
/// than later ones, empty tail ranges allowed when shards > total.
[[nodiscard]] std::pair<std::uint64_t, std::uint64_t> shard_range(
    std::uint64_t total, std::size_t shards, std::size_t shard);

/// Partial-file path for shard `shard` inside `work_dir`.
[[nodiscard]] std::string shard_partial_path(const std::string& work_dir,
                                             std::size_t shard);

/// Runs the schedule across `options.shards` processes (or in-process
/// passes) and merges the partials in shard order. The attack must already
/// be trained; children inherit it by fork (or share it in-process) and
/// never mutate it. Throws std::runtime_error when a shard fails or a
/// partial does not match the expected (digest, shard, range).
[[nodiscard]] ShardedCampaignResult run_sharded_campaign(
    const RevealAttack& attack, const CampaignConfig& config,
    std::uint64_t base_seed, std::size_t total_captures, const HintPolicy& policy,
    const lwe::DbddParams& params, const ShardOptions& options);

/// Sharded corpus construction: each shard captures its schedule range into
/// its own corpus file (labels = global capture indices), and the parent
/// merges them in shard order into `dest_path`. Because CorpusWriter bytes
/// are a pure function of the appended sequence and `writer_options`, the
/// merged corpus is byte-identical for every shard count.
void build_sharded_corpus(const std::string& dest_path, const CampaignConfig& config,
                          std::uint64_t base_seed, std::size_t total_captures,
                          const ShardOptions& options,
                          const corpus::WriterOptions& writer_options = {});

}  // namespace reveal::core
