#pragma once
// The RevEAL attack pipeline (paper §III):
//   1. segment the single trace into per-coefficient windows (Fig. 3a)
//   2. classify the taken branch -> sign / zero (vulnerability 1, Fig. 3b)
//   3. template attack on the value within the sign class, combining the
//      assignment leakage (vulnerability 2) with the negation/store leakage
//      (vulnerability 3) — realized as sign-conditioned template sets
//   4. emit per-coefficient posteriors, which become perfect/approximate
//      hints for the DBDD estimator (src/lwe/dbdd.hpp).

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/acquisition.hpp"
#include "sca/classifier.hpp"
#include "sca/template_attack.hpp"

namespace reveal::core {

struct AttackConfig {
  std::size_t sign_prefix = 60;   ///< samples used by the branch classifier (must end
                                  ///< before the loop-exit branch diverges)
  std::size_t value_prefix = 110; ///< window region searched for value POIs
                                  ///< (covers the whole negative branch body)
  std::size_t poi_count = 12;
  std::size_t poi_min_spacing = 2;
  /// Values seen fewer than this many times during profiling get no
  /// template (they fall outside the observed range, like the paper's
  /// "values between -14 and 14 with 220,000 tests").
  std::size_t min_class_count = 5;
  /// Posterior variance below this counts as a perfect hint (paper Table II:
  /// probabilities that "rounded up to 1 ... because of floating-point
  /// precision" are used as perfect hints).
  double perfect_hint_threshold = 1e-6;
};

/// Outcome for one coefficient window.
struct CoefficientGuess {
  int sign = 0;                       ///< -1 / 0 / +1 from the branch classifier
  std::int32_t value = 0;             ///< maximum-likelihood value
  std::vector<std::int32_t> support;  ///< candidate values (empty if sign==0)
  std::vector<double> posterior;      ///< probabilities aligned with support
  [[nodiscard]] double posterior_variance() const;
  [[nodiscard]] double posterior_mean() const;
};

class RevealAttack {
 public:
  explicit RevealAttack(AttackConfig config = {});

  /// Trains the sign classifier and the sign-conditioned template sets from
  /// labelled profiling windows. Throws if a sign class is missing or too
  /// small.
  void train(const std::vector<WindowRecord>& profiling);

  [[nodiscard]] bool trained() const noexcept { return sign_classifier_.fitted(); }
  [[nodiscard]] const AttackConfig& config() const noexcept { return config_; }
  [[nodiscard]] const std::vector<std::size_t>& positive_pois() const noexcept {
    return pos_pois_;
  }
  [[nodiscard]] const std::vector<std::size_t>& negative_pois() const noexcept {
    return neg_pois_;
  }

  /// Attacks one window.
  [[nodiscard]] CoefficientGuess attack_window(const std::vector<double>& window) const;

  /// Attacks every window of a capture (single-trace attack).
  [[nodiscard]] std::vector<CoefficientGuess> attack_capture(
      const FullCapture& capture) const;

 private:
  AttackConfig config_;
  sca::PatternClassifier sign_classifier_;
  std::optional<sca::TemplateSet> pos_templates_;
  std::optional<sca::TemplateSet> neg_templates_;
  std::vector<std::size_t> pos_pois_;
  std::vector<std::size_t> neg_pois_;
};

}  // namespace reveal::core
