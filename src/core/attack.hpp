#pragma once
// The RevEAL attack pipeline (paper §III):
//   1. segment the single trace into per-coefficient windows (Fig. 3a)
//   2. classify the taken branch -> sign / zero (vulnerability 1, Fig. 3b)
//   3. template attack on the value within the sign class, combining the
//      assignment leakage (vulnerability 2) with the negation/store leakage
//      (vulnerability 3) — realized as sign-conditioned template sets
//   4. emit per-coefficient posteriors, which become perfect/approximate
//      hints for the DBDD estimator (src/lwe/dbdd.hpp).

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/acquisition.hpp"
#include "core/parallel.hpp"
#include "obs/span_tracer.hpp"
#include "sca/classifier.hpp"
#include "sca/template_attack.hpp"

namespace reveal::core {

struct AttackConfig {
  std::size_t sign_prefix = 60;   ///< samples used by the branch classifier (must end
                                  ///< before the loop-exit branch diverges)
  std::size_t value_prefix = 110; ///< window region searched for value POIs
                                  ///< (covers the whole negative branch body)
  std::size_t poi_count = 12;
  std::size_t poi_min_spacing = 2;
  /// Values seen fewer than this many times during profiling get no
  /// template (they fall outside the observed range, like the paper's
  /// "values between -14 and 14 with 220,000 tests").
  std::size_t min_class_count = 5;
  /// Posterior variance below this counts as a perfect hint (paper Table II:
  /// probabilities that "rounded up to 1 ... because of floating-point
  /// precision" are used as perfect hints).
  double perfect_hint_threshold = 1e-6;

  // --- degradation awareness (all 0 = disabled: exact seed behaviour) ---
  /// Relative Fisher-distance margin (d2 - d1) / d1 between the two closest
  /// sign patterns below which the branch classifier abstains entirely
  /// (the guess carries no trusted information).
  double abstain_margin = 0.0;
  /// Margin below which a committed guess is flagged low-confidence (its
  /// hint variance gets inflated instead of trusted verbatim).
  double low_confidence_margin = 0.0;
  /// Maximum-posterior probability below which the value stage abstains;
  /// the sign remains trusted (sign-only hint fallback).
  double value_commit_threshold = 0.0;
  /// Segmentation window quality below which a guess is capped at
  /// low-confidence; below half of it the window is abstained untrusted.
  /// Only consulted when a quality score is supplied (robust pipeline).
  double min_window_quality = 0.5;
  /// Absolute goodness-of-fit gates. The margin gates above are *relative*
  /// (distance gap between the two closest classes) and miss corrupted
  /// windows that drift far from every class but closer to a wrong one —
  /// the overconfident-posterior failure mode. These gates bound how far an
  /// observation may sit from its best-matching class at all.
  /// Sign stage: abstain (untrusted) when the squared Fisher distance to the
  /// closest branch pattern exceeds `sign_fit_threshold` per prefix sample
  /// (clean windows score ~1, the within-class expectation).
  double sign_fit_threshold = 0.0;
  /// Value stage: abstain the value (sign stays trusted) when the best
  /// template's squared Mahalanobis distance exceeds `value_fit_threshold`
  /// per POI (clean observations score ~1 by the chi-square law).
  double value_fit_threshold = 0.0;
};

/// How much of a coefficient guess survives acquisition degradation.
enum class GuessQuality {
  kOk,             ///< full-confidence guess (seed-pipeline behaviour)
  kLowConfidence,  ///< committed, but hint variance must be inflated
  kAbstained,      ///< no committed value; sign-only or no information
};

/// Outcome for one coefficient window.
struct CoefficientGuess {
  int sign = 0;                       ///< -1 / 0 / +1 from the branch classifier
  std::int32_t value = 0;             ///< maximum-likelihood value
  std::vector<std::int32_t> support;  ///< candidate values (empty if sign==0)
  std::vector<double> posterior;      ///< probabilities aligned with support
  GuessQuality quality = GuessQuality::kOk;
  bool sign_trusted = true;  ///< false: even the sign is unreliable (no hint)
  double sign_margin = 0.0;  ///< relative margin of the sign decision
  [[nodiscard]] double posterior_variance() const;
  [[nodiscard]] double posterior_mean() const;
};

/// Robust single-capture attack outcome: the segmentation diagnosis plus
/// the per-window guesses (empty when segmentation failed outright).
struct RobustCaptureResult {
  sca::SegmentationResult segmentation;
  std::vector<CoefficientGuess> guesses;
};

class RevealAttack {
 public:
  explicit RevealAttack(AttackConfig config = {});

  /// Trains the sign classifier and the sign-conditioned template sets from
  /// labelled profiling windows. Throws if a sign class is missing or too
  /// small.
  ///
  /// With a non-serial `pool`, the per-window POI extraction fans out over
  /// the workers into per-worker partial accumulators; the partials are then
  /// folded into the pooled-covariance builder in window-index order, so the
  /// built templates are bit-identical to the serial path regardless of
  /// worker count or stealing schedule.
  void train(const std::vector<WindowRecord>& profiling, WorkerPool* pool = nullptr);

  [[nodiscard]] bool trained() const noexcept { return sign_classifier_.fitted(); }
  [[nodiscard]] const AttackConfig& config() const noexcept { return config_; }
  [[nodiscard]] const std::vector<std::size_t>& positive_pois() const noexcept {
    return pos_pois_;
  }
  [[nodiscard]] const std::vector<std::size_t>& negative_pois() const noexcept {
    return neg_pois_;
  }

  /// Attacks one window. `window_quality` (from robust segmentation) caps
  /// the guess quality; 1.0 means "trust the window fully". Degraded
  /// windows (too short for the classifier or the POIs) abstain instead of
  /// throwing.
  [[nodiscard]] CoefficientGuess attack_window(const std::vector<double>& window,
                                               double window_quality = 1.0) const;

  /// Attacks every window of a capture (single-trace attack). A non-serial
  /// `pool` fans the per-window classifications out over the workers; each
  /// guess is written to its window-index slot, so the result is identical
  /// for any worker count.
  [[nodiscard]] std::vector<CoefficientGuess> attack_capture(
      const FullCapture& capture, WorkerPool* pool = nullptr) const;

  /// Degradation-aware single-trace attack: robust segmentation with the
  /// expected window count, burst-edge anchoring, then per-window attacks
  /// gated by the segmentation quality scores. Never throws on a bad trace;
  /// a failed segmentation returns zero guesses with the diagnosis attached.
  /// `pool` parallelizes the per-window stage exactly as in attack_capture.
  [[nodiscard]] RobustCaptureResult attack_capture_robust(
      const std::vector<double>& trace, std::size_t expected_windows,
      const sca::SegmentationConfig& seg_config, WorkerPool* pool = nullptr) const;

  /// attack_capture_robust with pipeline-stage spans (segmentation /
  /// classification) recorded into `tracer`, tagged with `capture_index`.
  /// Templated on the tracer so the untraced entry point above — which
  /// delegates here with obs::NullSpanTracer — compiles the instrumentation
  /// away entirely: one body, two instantiations, byte-identical results
  /// by construction (spans observe; no decision reads them).
  template <typename TracerT>
  [[nodiscard]] RobustCaptureResult attack_capture_robust_traced(
      const std::vector<double>& trace, std::size_t expected_windows,
      const sca::SegmentationConfig& seg_config, TracerT& tracer,
      std::uint32_t capture_index = 0, WorkerPool* pool = nullptr) const;

 private:
  AttackConfig config_;
  sca::PatternClassifier sign_classifier_;
  std::optional<sca::TemplateSet> pos_templates_;
  std::optional<sca::TemplateSet> neg_templates_;
  std::vector<std::size_t> pos_pois_;
  std::vector<std::size_t> neg_pois_;
};

template <typename TracerT>
RobustCaptureResult RevealAttack::attack_capture_robust_traced(
    const std::vector<double>& trace, std::size_t expected_windows,
    const sca::SegmentationConfig& seg_config, TracerT& tracer,
    std::uint32_t capture_index, WorkerPool* pool) const {
  if (!trained()) throw std::logic_error("RevealAttack: train() first");
  RobustCaptureResult out;
  {
    auto span = tracer.span(obs::Stage::kSegmentation, capture_index);
    out.segmentation = sca::segment_trace_robust(trace, expected_windows, seg_config);
    if (out.segmentation.status != sca::SegmentationStatus::kFailed) {
      const double threshold = out.segmentation.config.threshold > 0.0
                                   ? out.segmentation.config.threshold
                                   : sca::auto_threshold(trace);
      anchor_windows_at_burst_edge(trace, out.segmentation.segments, threshold);
    }
  }
  if (out.segmentation.status == sca::SegmentationStatus::kFailed) return out;

  auto span = tracer.span(obs::Stage::kClassification, capture_index);
  auto window_guess = [&](std::size_t i) {
    const sca::Segment& seg = out.segmentation.segments[i];
    const std::vector<double> window(
        trace.begin() + static_cast<std::ptrdiff_t>(seg.window_begin),
        trace.begin() + static_cast<std::ptrdiff_t>(seg.window_end));
    return attack_window(window, out.segmentation.window_quality[i]);
  };
  if (pool != nullptr && !pool->serial()) {
    out.guesses.resize(out.segmentation.segments.size());
    pool->run_indexed(out.guesses.size(),
                      [&](std::size_t i, std::size_t) { out.guesses[i] = window_guess(i); });
  } else {
    out.guesses.reserve(out.segmentation.segments.size());
    for (std::size_t i = 0; i < out.segmentation.segments.size(); ++i) {
      out.guesses.push_back(window_guess(i));
    }
  }
  return out;
}

}  // namespace reveal::core
