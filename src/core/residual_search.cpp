#include "core/residual_search.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

#include "core/message_recovery.hpp"
#include "seal/modarith.hpp"
#include "seal/poly.hpp"
#include "seal/sampler.hpp"

namespace reveal::core {

namespace {

/// Per-coefficient candidate list sorted by decreasing posterior.
struct CandidateList {
  std::size_t coeff_index = 0;
  std::vector<std::int64_t> values;
  std::vector<double> log_probs;  // aligned, non-increasing
};

/// Search node in the lazy best-first enumeration. A node represents one
/// rank assignment; `fresh` marks whether the assignment still needs its
/// consistency check. Children are generated lazily (two per pop) so the
/// heap stays proportional to the try budget even at large search widths:
///   A: increment the rank at `frontier` (new assignment, fresh)
///   B: advance `frontier` by one, same assignment (virtual, not re-checked)
/// Together these cover the duplicate-free child set
/// { ranks + e_j : j >= frontier } of the canonical-parent scheme.
struct Node {
  std::vector<std::uint8_t> ranks;
  std::size_t frontier = 0;
  double log_prob = 0.0;
  bool fresh = true;
};

struct NodeOrder {
  bool operator()(const Node& a, const Node& b) const { return a.log_prob < b.log_prob; }
};

}  // namespace

ResidualSearchResult residual_search(const seal::Context& context, const seal::PublicKey& pk,
                                     const seal::Ciphertext& ct,
                                     const std::vector<CoefficientGuess>& guesses,
                                     const ResidualSearchConfig& config) {
  using namespace reveal::seal;
  if (guesses.size() != context.n())
    throw std::invalid_argument("residual_search: guess count does not match context");
  if (ct.size() != 2)
    throw std::invalid_argument("residual_search: need a fresh 2-part ciphertext");

  ResidualSearchResult result;

  // Maximum-likelihood baseline assignment.
  std::vector<std::int64_t> e2(context.n());
  for (std::size_t i = 0; i < context.n(); ++i) e2[i] = guesses[i].value;

  // Rank coefficients by certainty; collect candidate lists for the
  // uncertain ones.
  std::vector<CandidateList> lists;
  for (std::size_t i = 0; i < context.n(); ++i) {
    const auto& g = guesses[i];
    if (g.support.size() < 2) continue;
    double top = 0.0;
    for (const double p : g.posterior) top = std::max(top, p);
    if (top >= config.certain_threshold) continue;

    CandidateList list;
    list.coeff_index = i;
    std::vector<std::size_t> order(g.support.size());
    for (std::size_t k = 0; k < order.size(); ++k) order[k] = k;
    std::sort(order.begin(), order.end(), [&g](std::size_t a, std::size_t b) {
      return g.posterior[a] > g.posterior[b];
    });
    const std::size_t keep = std::min(order.size(), config.max_candidates_per_coeff);
    for (std::size_t k = 0; k < keep; ++k) {
      const double p = std::max(g.posterior[order[k]], 1e-30);
      list.values.push_back(g.support[order[k]]);
      list.log_probs.push_back(std::log(p));
    }
    lists.push_back(std::move(list));
  }
  // Search the least certain coefficients; pin the rest to their ML value.
  std::sort(lists.begin(), lists.end(), [](const CandidateList& a, const CandidateList& b) {
    return a.log_probs[0] < b.log_probs[0];
  });
  if (lists.size() > config.max_uncertain) lists.resize(config.max_uncertain);
  result.uncertain_count = lists.size();

  // Consistency oracle. Precompute everything that does not depend on the
  // candidate: NTT(c1), the NTT-domain inverse of p1, and NTT(p0) — each
  // check is then one forward + one inverse transform.
  const double max_dev = context.parms().noise_max_deviation();
  const auto& tables = context.fast_ntt_tables();
  const auto& moduli = context.coeff_modulus();
  const std::size_t n = context.n();

  Poly c1_ntt = ct[1];
  polyops::ntt_forward(c1_ntt, tables);
  Poly p1_ntt = pk.p1;
  polyops::ntt_forward(p1_ntt, tables);
  Poly p1_inv_ntt(n, moduli.size());
  bool p1_invertible = true;
  for (std::size_t j = 0; j < moduli.size() && p1_invertible; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t denom = p1_ntt.at(i, j);
      if (denom == 0) {
        p1_invertible = false;
        break;
      }
      p1_inv_ntt.at(i, j) = inverse_mod(denom, moduli[j]);
    }
  }
  if (!p1_invertible) return result;  // no unique u: cannot search
  Poly p0_ntt = pk.p0;
  polyops::ntt_forward(p0_ntt, tables);

  const std::uint64_t delta = context.delta().low_word();
  const std::uint64_t t = context.plain_modulus().value();
  const std::uint64_t q0 = moduli[0].value();
  const double slack = max_dev + static_cast<double>(q0 % t) + 1.0;

  Poly scratch(n, moduli.size());
  Poly u_ntt(n, moduli.size());
  auto consistent = [&](const std::vector<std::int64_t>& candidate_e2) -> bool {
    // u = (c1 - e2) * p1^{-1}: ternary check first (the cheap, powerful
    // filter), then the e1-bound check on survivors.
    encode_noise_values(candidate_e2, context, scratch);
    polyops::ntt_forward(scratch, tables);
    for (std::size_t j = 0; j < moduli.size(); ++j) {
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t num = seal::sub_mod(c1_ntt.at(i, j), scratch.at(i, j), moduli[j]);
        u_ntt.at(i, j) = seal::mul_mod(num, p1_inv_ntt.at(i, j), moduli[j]);
      }
    }
    Poly u = u_ntt;
    polyops::ntt_inverse(u, tables);
    for (std::size_t i = 0; i < n; ++i) {
      const std::int64_t centered = seal::center_mod(u.at(i, 0), moduli[0]);
      if (centered < -1 || centered > 1) return false;
      for (std::size_t j = 1; j < moduli.size(); ++j) {
        if (seal::center_mod(u.at(i, j), moduli[j]) != centered) return false;
      }
    }
    // e1 bound: x = c0 - p0*u must sit near a multiple of Delta.
    Poly p0u = u_ntt;
    polyops::dyadic_product(p0u, p0_ntt, moduli, p0u);
    polyops::ntt_inverse(p0u, tables);
    Poly x;
    polyops::sub(ct[0], p0u, moduli, x);
    if (context.coeff_mod_count() == 1) {
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t rem = x.at(i, 0) % delta;
        const std::uint64_t dist = rem > delta / 2 ? delta - rem : rem;
        if (static_cast<double>(dist) > slack) return false;
      }
    }
    return true;
  };

  // Try the ML assignment first.
  ++result.tried;
  if (consistent(e2)) {
    result.found = true;
    result.e2 = e2;
    return result;
  }
  if (lists.empty()) return result;

  // Lazy best-first enumeration over candidate ranks (two pushes per pop).
  std::priority_queue<Node, std::vector<Node>, NodeOrder> heap;
  Node root;
  root.ranks.assign(lists.size(), 0);
  root.frontier = 0;
  root.log_prob = 0.0;
  root.fresh = false;  // the ML assignment was already checked above
  for (const auto& l : lists) root.log_prob += l.log_probs[0];
  heap.push(std::move(root));

  auto push_increment = [&heap, &lists](const Node& node) {
    const std::size_t j = node.frontier;
    const std::size_t next_rank = node.ranks[j] + 1u;
    if (next_rank >= lists[j].values.size()) return;
    Node child = node;
    child.ranks[j] = static_cast<std::uint8_t>(next_rank);
    child.log_prob += lists[j].log_probs[next_rank] - lists[j].log_probs[next_rank - 1];
    child.fresh = true;
    heap.push(std::move(child));
  };
  auto push_advance = [&heap, &lists](const Node& node) {
    if (node.frontier + 1 >= lists.size()) return;
    Node sibling = node;
    ++sibling.frontier;
    sibling.fresh = false;
    heap.push(std::move(sibling));
  };

  std::vector<std::int64_t> candidate = e2;
  while (!heap.empty() && result.tried < config.max_tries) {
    const Node node = heap.top();
    heap.pop();
    if (node.fresh) {
      for (std::size_t j = 0; j < lists.size(); ++j) {
        candidate[lists[j].coeff_index] = lists[j].values[node.ranks[j]];
      }
      ++result.tried;
      if (consistent(candidate)) {
        result.found = true;
        result.e2 = candidate;
        return result;
      }
    }
    push_increment(node);
    push_advance(node);
  }
  return result;
}

}  // namespace reveal::core
