#include "core/campaign_checkpoint.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <span>
#include <stdexcept>
#include <utility>

#include "core/campaign_obs.hpp"
#include "numeric/binary_io.hpp"

namespace reveal::core {

namespace {

constexpr std::uint32_t kCheckpointMarker = 0x52'56'43'50;  // "PCVR"
constexpr std::uint32_t kCheckpointEndMarker = 0x50'43'56'52;
constexpr std::uint32_t kCheckpointVersion = 1;
constexpr std::uint64_t kMaxCheckpointCaptures = std::uint64_t{1} << 32;
constexpr std::uint64_t kMaxHintsPerCapture = std::uint64_t{1} << 20;

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 0x100000001B3ull;
  }
  return h;
}

std::uint64_t fnv1a(std::uint64_t h, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return fnv1a(h, bits);
}

void write_tally(std::ostream& out, const HintTally& t) {
  num::io::write_pod<std::uint64_t>(out, t.perfect);
  num::io::write_pod<std::uint64_t>(out, t.approximate);
  num::io::write_pod<std::uint64_t>(out, t.sign_only);
  num::io::write_pod<std::uint64_t>(out, t.skipped);
  num::io::write_pod(out, t.approximate_variance_sum);
}

HintTally read_tally(std::istream& in) {
  HintTally t;
  t.perfect = static_cast<std::size_t>(num::io::read_pod<std::uint64_t>(in));
  t.approximate = static_cast<std::size_t>(num::io::read_pod<std::uint64_t>(in));
  t.sign_only = static_cast<std::size_t>(num::io::read_pod<std::uint64_t>(in));
  t.skipped = static_cast<std::size_t>(num::io::read_pod<std::uint64_t>(in));
  t.approximate_variance_sum = num::io::read_pod<double>(in);
  return t;
}

// HintRecord is written field-wise (kind byte + variance), never as a raw
// struct: the padding bytes of the in-memory layout are indeterminate and
// would make checkpoint bytes nondeterministic.
void write_hint(std::ostream& out, const HintRecord& r) {
  num::io::write_pod<std::uint8_t>(out, static_cast<std::uint8_t>(r.kind));
  num::io::write_pod(out, r.variance);
}

HintRecord read_hint(std::istream& in) {
  HintRecord r;
  const auto kind = num::io::read_pod<std::uint8_t>(in);
  if (kind > static_cast<std::uint8_t>(HintRecord::Kind::kSkipped))
    throw std::runtime_error("campaign checkpoint: unknown hint kind");
  r.kind = static_cast<HintRecord::Kind>(kind);
  r.variance = num::io::read_pod<double>(in);
  return r;
}

}  // namespace

std::uint64_t campaign_digest(std::uint64_t base_seed, std::uint64_t total_captures,
                              const CampaignConfig& config) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  h = fnv1a(h, base_seed);
  h = fnv1a(h, total_captures);
  h = fnv1a(h, config.n);
  h = fnv1a(h, std::uint64_t{(config.patched_firmware ? 1u : 0u) |
                             (config.shuffled_firmware ? 2u : 0u) |
                             (config.masked_firmware ? 4u : 0u) |
                             (config.faults.clip ? 8u : 0u)});
  h = fnv1a(h, static_cast<std::uint64_t>(config.victim_tier));
  // Every fault knob shapes every capture, so each one feeds the digest —
  // a resumed run with any acquisition difference must fail loudly.
  const power::FaultSpec& f = config.faults;
  h = fnv1a(h, f.jitter_sigma);
  h = fnv1a(h, f.dropout_rate);
  h = fnv1a(h, static_cast<std::uint64_t>(f.glitch_count));
  h = fnv1a(h, f.glitch_amplitude);
  h = fnv1a(h, static_cast<std::uint64_t>(f.burst_count));
  h = fnv1a(h, static_cast<std::uint64_t>(f.burst_length));
  h = fnv1a(h, f.burst_sigma);
  h = fnv1a(h, f.drift_sigma);
  h = fnv1a(h, f.clip_lo);
  h = fnv1a(h, f.clip_hi);
  h = fnv1a(h, static_cast<std::uint64_t>(f.trigger_misalign));
  h = fnv1a(h, f.seed);
  for (const std::uint64_t m : config.moduli) h = fnv1a(h, m);
  return h;
}

void CampaignAccumulator::fold_capture(const RobustCaptureResult& res) {
  recovered_windows += res.segmentation.segments.size();
  segmentation_attempts += res.segmentation.attempts;
  capture_consistency.push_back(res.segmentation.burst_consistency);
  worst_status = std::max(worst_status, res.segmentation.status);
  for (const CoefficientGuess& g : res.guesses) {
    switch (g.quality) {
      case GuessQuality::kOk: ++ok_guesses; break;
      case GuessQuality::kLowConfidence: ++low_confidence_guesses; break;
      case GuessQuality::kAbstained: ++abstained_guesses; break;
    }
  }
}

void CampaignAccumulator::append(CampaignAccumulator&& next) {
  next_index += next.next_index;
  for (auto& records : next.hints) hints.push_back(std::move(records));
  capture_consistency.insert(capture_consistency.end(),
                             next.capture_consistency.begin(),
                             next.capture_consistency.end());
  worker_tally.merge(next.worker_tally);
  recovered_windows += next.recovered_windows;
  segmentation_attempts += next.segmentation_attempts;
  worst_status = std::max(worst_status, next.worst_status);
  ok_guesses += next.ok_guesses;
  low_confidence_guesses += next.low_confidence_guesses;
  abstained_guesses += next.abstained_guesses;
  registry.merge(next.registry);
  confusion.merge(next.confusion);
}

void CampaignAccumulator::save(std::ostream& out) const {
  num::io::write_pod<std::uint32_t>(out, kCheckpointMarker);
  num::io::write_pod<std::uint32_t>(out, kCheckpointVersion);
  num::io::write_pod<std::uint64_t>(out, next_index);
  num::io::write_pod<std::uint64_t>(out, recovered_windows);
  num::io::write_pod<std::uint64_t>(out, segmentation_attempts);
  num::io::write_pod<std::uint8_t>(out, static_cast<std::uint8_t>(worst_status));
  num::io::write_vec(out, capture_consistency);
  num::io::write_pod<std::uint64_t>(out, ok_guesses);
  num::io::write_pod<std::uint64_t>(out, low_confidence_guesses);
  num::io::write_pod<std::uint64_t>(out, abstained_guesses);
  write_tally(out, worker_tally);
  num::io::write_pod<std::uint64_t>(out, hints.size());
  for (const auto& records : hints) {
    num::io::write_pod<std::uint64_t>(out, records.size());
    for (const HintRecord& r : records) write_hint(out, r);
  }
  registry.save(out);
  confusion.save(out);
  num::io::write_pod<std::uint32_t>(out, kCheckpointEndMarker);
}

CampaignAccumulator CampaignAccumulator::load(std::istream& in) {
  num::io::expect_marker(in, kCheckpointMarker, "CampaignAccumulator");
  if (num::io::read_pod<std::uint32_t>(in) != kCheckpointVersion)
    throw std::runtime_error("campaign checkpoint: unsupported version");
  CampaignAccumulator acc;
  acc.next_index = num::io::read_pod<std::uint64_t>(in);
  acc.recovered_windows = num::io::read_pod<std::uint64_t>(in);
  acc.segmentation_attempts = num::io::read_pod<std::uint64_t>(in);
  const auto status = num::io::read_pod<std::uint8_t>(in);
  if (status > static_cast<std::uint8_t>(sca::SegmentationStatus::kFailed))
    throw std::runtime_error("campaign checkpoint: unknown segmentation status");
  acc.worst_status = static_cast<sca::SegmentationStatus>(status);
  acc.capture_consistency = num::io::read_vec<double>(in, kMaxCheckpointCaptures);
  acc.ok_guesses = num::io::read_pod<std::uint64_t>(in);
  acc.low_confidence_guesses = num::io::read_pod<std::uint64_t>(in);
  acc.abstained_guesses = num::io::read_pod<std::uint64_t>(in);
  acc.worker_tally = read_tally(in);
  const auto captures = num::io::read_pod<std::uint64_t>(in);
  if (captures > kMaxCheckpointCaptures)
    throw std::runtime_error("campaign checkpoint: implausible capture count");
  if (captures != acc.next_index || acc.capture_consistency.size() != acc.next_index)
    throw std::runtime_error("campaign checkpoint: cursor/hint-count mismatch");
  acc.hints.reserve(static_cast<std::size_t>(captures));
  for (std::uint64_t i = 0; i < captures; ++i) {
    const auto count = num::io::read_pod<std::uint64_t>(in);
    if (count > kMaxHintsPerCapture)
      throw std::runtime_error("campaign checkpoint: implausible hint count");
    std::vector<HintRecord> records;
    records.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t r = 0; r < count; ++r) records.push_back(read_hint(in));
    acc.hints.push_back(std::move(records));
  }
  acc.registry = obs::Registry::load(in);
  acc.confusion = sca::ConfusionMatrix::load(in);
  num::io::expect_marker(in, kCheckpointEndMarker, "CampaignAccumulator end");
  return acc;
}

void accumulate_campaign_range(WorkerPool& pool, const RevealAttack& attack,
                               const CampaignConfig& config, std::uint64_t base_seed,
                               std::uint64_t begin, std::uint64_t end,
                               const HintPolicy& policy, CampaignAccumulator& acc) {
  if (end < begin)
    throw std::invalid_argument("accumulate_campaign_range: inverted range");
  const std::size_t count = static_cast<std::size_t>(end - begin);
  if (count == 0) return;
  std::vector<std::uint64_t> seeds(count);
  for (std::size_t i = 0; i < count; ++i)
    seeds[i] = stream_seed(base_seed, static_cast<std::size_t>(begin) + i);

  const std::size_t worker_slots = std::max<std::size_t>(pool.num_workers(), 1);
  std::vector<RobustCaptureResult> captures(count);
  std::vector<std::vector<HintRecord>> batch_hints(count);
  std::vector<HintTally> tallies(worker_slots);
  std::vector<detail::WorkerObs> worker_obs(worker_slots);
  // Fresh replicas per range: their fault stats then cover exactly these
  // captures, so the fold below is resume- and shard-correct (a replica
  // reused across ranges would double-count on every fold).
  detail::CampaignReplicas replicas(config, pool.num_workers());
  detail::run_capture_stage<true>(pool, attack, config, seeds, policy, replicas,
                                  captures, batch_hints, tallies, &worker_obs,
                                  static_cast<std::size_t>(begin));

  // Ordered folds — capture order for the report partials and hints,
  // worker order for tallies and observability. The tracer is never
  // merged: spans are wall-clock and would break resume determinism.
  for (std::size_t i = 0; i < count; ++i) {
    acc.fold_capture(captures[i]);
    acc.hints.push_back(std::move(batch_hints[i]));
  }
  for (const HintTally& t : tallies) acc.worker_tally.merge(t);
  for (const detail::WorkerObs& o : worker_obs) {
    acc.registry.merge(o.registry);
    acc.confusion.merge(o.confusion);
  }
  const power::FaultStats faults = replicas.merged_fault_stats();
  obs::Registry& reg = acc.registry;
  reg.add(reg.counter("faults.captures"), faults.captures);
  reg.add(reg.counter("faults.dropped_samples"), faults.dropped_samples);
  reg.add(reg.counter("faults.glitch_samples"), faults.glitch_samples);
  reg.add(reg.counter("faults.burst_windows"), faults.burst_windows);
  reg.add(reg.counter("faults.drifted_captures"), faults.drifted_captures);
  reg.add(reg.counter("faults.clipped_samples"), faults.clipped_samples);
  reg.add(reg.counter("faults.misaligned_captures"), faults.misaligned_captures);
  reg.add(reg.counter("faults.warped_captures"), faults.warped_captures);
  acc.next_index += count;
}

CampaignFinalization finalize_campaign(const CampaignAccumulator& acc,
                                       std::size_t windows_per_capture,
                                       const lwe::DbddParams& params) {
  CampaignFinalization fin;
  HintTally recount;
  for (const auto& records : acc.hints) {
    for (const HintRecord& r : records) recount.add(r);
  }
  if (recount.perfect != acc.worker_tally.perfect ||
      recount.approximate != acc.worker_tally.approximate ||
      recount.sign_only != acc.worker_tally.sign_only ||
      recount.skipped != acc.worker_tally.skipped) {
    throw std::logic_error(
        "finalize_campaign: accumulated tallies diverge from the ordered recount "
        "(lost update in shared accumulation)");
  }
  fin.hint_totals = recount.summary();

  lwe::DbddEstimator estimator(params);
  for (const auto& records : acc.hints) {
    for (const HintRecord& r : records) apply_hint(estimator, r);
  }
  const lwe::SecurityEstimate estimate = estimator.estimate();

  // Capture-order float sum: the one reduction order that exists for every
  // batch size, worker count, and shard partition.
  double consistency_sum = 0.0;
  for (const double c : acc.capture_consistency) consistency_sum += c;

  sca::RecoveryReport& rep = fin.report;
  const std::uint64_t total = acc.next_index;
  rep.expected_windows = static_cast<std::size_t>(total) * windows_per_capture;
  rep.recovered_windows = acc.recovered_windows;
  rep.segmentation_status = acc.worst_status;
  rep.segmentation_attempts = acc.segmentation_attempts;
  if (total > 0) rep.burst_consistency = consistency_sum / static_cast<double>(total);
  rep.ok_guesses = acc.ok_guesses;
  rep.low_confidence_guesses = acc.low_confidence_guesses;
  rep.abstained_guesses = acc.abstained_guesses;
  rep.perfect_hints = fin.hint_totals.perfect;
  rep.approximate_hints = fin.hint_totals.approximate;
  rep.sign_only_hints = fin.hint_totals.sign_only;
  rep.dropped_hints = fin.hint_totals.skipped;
  rep.bikz = estimate.beta;
  rep.bits = estimate.bits;
  return fin;
}

namespace {

/// Atomic checkpoint write: the old checkpoint stays intact until the new
/// bytes are fully on disk (rename is atomic within a filesystem), so a
/// kill mid-save loses at most one batch of progress.
void save_checkpoint(const std::string& path, std::uint64_t digest,
                     std::uint64_t total, const CampaignAccumulator& acc) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("campaign checkpoint: cannot write " + tmp);
    num::io::write_pod<std::uint64_t>(out, digest);
    num::io::write_pod<std::uint64_t>(out, total);
    acc.save(out);
    out.flush();
    if (!out) throw std::runtime_error("campaign checkpoint: write failed for " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    throw std::runtime_error("campaign checkpoint: cannot rename " + tmp);
}

/// Loads and validates an existing checkpoint; false when none exists.
bool load_checkpoint(const std::string& path, std::uint64_t digest,
                     std::uint64_t total, CampaignAccumulator& acc) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  if (num::io::read_pod<std::uint64_t>(in) != digest)
    throw std::runtime_error("campaign checkpoint: schedule digest mismatch in " + path);
  if (num::io::read_pod<std::uint64_t>(in) != total)
    throw std::runtime_error("campaign checkpoint: capture count mismatch in " + path);
  acc = CampaignAccumulator::load(in);
  if (acc.next_index > total)
    throw std::runtime_error("campaign checkpoint: cursor past schedule in " + path);
  return true;
}

}  // namespace

CheckpointedCampaignResult run_recovery_campaign_checkpointed(
    CampaignRunner& runner, const RevealAttack& attack, const CampaignConfig& config,
    std::uint64_t base_seed, std::size_t total_captures, const HintPolicy& policy,
    const lwe::DbddParams& params, const CheckpointOptions& options) {
  if (options.path.empty())
    throw std::invalid_argument("run_recovery_campaign_checkpointed: empty path");
  if (options.batch_size == 0)
    throw std::invalid_argument("run_recovery_campaign_checkpointed: zero batch size");

  const std::uint64_t digest = campaign_digest(base_seed, total_captures, config);
  CheckpointedCampaignResult result;
  CampaignAccumulator acc;
  result.resumed = load_checkpoint(options.path, digest, total_captures, acc);

  WorkerPool& pool = runner.pool();
  std::size_t batches = 0;
  while (acc.next_index < total_captures &&
         (options.max_batches_per_call == 0 || batches < options.max_batches_per_call)) {
    const std::uint64_t begin = acc.next_index;
    const std::uint64_t end =
        std::min<std::uint64_t>(begin + options.batch_size, total_captures);
    accumulate_campaign_range(pool, attack, config, base_seed, begin, end, policy, acc);
    result.processed_this_call += end - begin;
    save_checkpoint(options.path, digest, total_captures, acc);
    ++batches;
  }

  result.next_index = acc.next_index;
  if (acc.next_index < total_captures) return result;  // interrupted run

  CampaignFinalization fin = finalize_campaign(acc, config.n, params);
  result.report = fin.report;
  result.hint_totals = fin.hint_totals;
  result.hints = std::move(acc.hints);
  result.diagnostics.registry = std::move(acc.registry);
  result.diagnostics.confusion = std::move(acc.confusion);
  result.complete = true;
  if (!options.keep_checkpoint) std::remove(options.path.c_str());
  return result;
}

}  // namespace reveal::core
