#pragma once
// Parallel attack-campaign engine.
//
// A "campaign" is the unit of every Table I/III-style experiment: many
// seeded firmware captures, template building over the collected windows,
// per-window classification, and hint integration into the DBDD estimator.
// CampaignRunner drives all four stages through one WorkerPool
// (core/parallel.hpp) while guaranteeing results that are *byte-identical*
// to the single-threaded pipeline for every worker count:
//
//   * acquisition: capture i is a pure function of (config, seeds[i]) — the
//     firmware PRNG, measurement-noise, and fault streams all derive from
//     the capture seed. Each worker runs its own SamplerCampaign replica
//     (captures are history-independent), and results land in index slots.
//   * template building: POI extraction fans out; the pooled-covariance
//     accumulation replays in window-index order (see RevealAttack::train).
//   * classification: per-window fan-out, guesses written by window index.
//   * hints: workers *route* their captures' guesses into HintRecord lists
//     (a pure function); the estimator integration — whose floating-point
//     state is order-sensitive — replays those records in capture order on
//     the calling thread. Counters accumulate in per-worker HintTally
//     partials merged in worker-index order, then are cross-checked against
//     an ordered recount: a data race that loses an update is detected, not
//     silently reported.
//
// The serial path (num_workers == 0) spawns no threads and executes the
// pre-existing single-threaded code; tests/test_campaign_equivalence.cpp
// pins workers ∈ {0, 1, 4} to byte-identical RecoveryReports and hint sets.

#include <cstdint>
#include <vector>

#include "core/acquisition.hpp"
#include "core/attack.hpp"
#include "core/hints.hpp"
#include "core/parallel.hpp"
#include "lwe/dbdd.hpp"
#include "obs/diagnostics.hpp"
#include "obs/metrics.hpp"
#include "obs/span_tracer.hpp"
#include "sca/class_stats.hpp"
#include "sca/report.hpp"

namespace reveal::core {

/// Everything a recovery campaign produced, in deterministic order.
struct RecoveryCampaignResult {
  std::vector<RobustCaptureResult> captures;   ///< one per seed, in seed order
  std::vector<std::vector<HintRecord>> hints;  ///< per capture, in window order
  HintSummary hint_totals;                     ///< over all captures
  sca::RecoveryReport report;  ///< aggregate stage counters + residual estimate
};

/// Observability sink for run_recovery_campaign. Passing one enables the
/// instrumented pipeline instantiation: per-stage spans land in `tracer`,
/// retry/abstention/downgrade/fault counters in `registry`, and — when the
/// ground-truth noise is available — per-class confusion tallies in
/// `confusion` (the same (truth, predicted-value) tally bench_table1_
/// confusion prints). Everything here is *derived* from the campaign's
/// outputs: the RecoveryCampaignResult is byte-identical with or without a
/// sink, enforced by tests/test_campaign_equivalence.cpp. Counters,
/// histogram buckets and confusion counts are integers accumulated per
/// worker and merged in worker-index order, so they are worker-count
/// invariant; span timings are wall-clock observations and are not.
struct CampaignDiagnostics {
  obs::Registry registry;
  obs::SpanTracer tracer;
  sca::ConfusionMatrix confusion;

  [[nodiscard]] obs::DiagnosticsReport report() const {
    return obs::make_report(registry, &tracer, &confusion);
  }
};

class CampaignRunner {
 public:
  /// `num_workers == 0` is the single-threaded reference path; the default
  /// uses every hardware thread.
  explicit CampaignRunner(std::size_t num_workers = default_num_workers());

  [[nodiscard]] std::size_t num_workers() const noexcept { return pool_.num_workers(); }
  [[nodiscard]] bool serial() const noexcept { return pool_.serial(); }
  [[nodiscard]] WorkerPool& pool() noexcept { return pool_; }

  /// Counter-split per-capture seeds: {stream_seed(base_seed, 0..count)}.
  [[nodiscard]] static std::vector<std::uint64_t> stream_seeds(std::uint64_t base_seed,
                                                               std::size_t count);

  // --- (a) multi-trace acquisition ---------------------------------------

  /// Captures seeds[i] for every i, in parallel; out[i] corresponds to
  /// seeds[i] regardless of scheduling.
  [[nodiscard]] std::vector<FullCapture> capture_many(const CampaignConfig& config,
                                                      const std::vector<std::uint64_t>& seeds);

  /// Parallel counterpart of SamplerCampaign::collect_windows: capture r
  /// uses seed `seed_base + r` (the legacy profiling schedule), captures
  /// fan out over the pool, and windows are appended in capture order.
  [[nodiscard]] std::vector<WindowRecord> collect_windows(const CampaignConfig& config,
                                                          std::size_t runs,
                                                          std::uint64_t seed_base,
                                                          std::size_t* rejected = nullptr);

  // --- (b) template building / (c) classification fan-out ----------------

  void train(RevealAttack& attack, const std::vector<WindowRecord>& profiling);

  [[nodiscard]] std::vector<CoefficientGuess> attack_capture(const RevealAttack& attack,
                                                             const FullCapture& capture);

  [[nodiscard]] RobustCaptureResult attack_capture_robust(
      const RevealAttack& attack, const std::vector<double>& trace,
      std::size_t expected_windows, const sca::SegmentationConfig& seg_config);

  // --- (d) streaming per-class statistics ---------------------------------

  /// Traces per class_stats partial. Fixed (not derived from the worker
  /// count) so the floating-point association of the merged result is the
  /// same for every pool size, including the serial path.
  static constexpr std::size_t kClassStatsBlock = 32;

  /// Accumulates `set` into a ClassStats over the first `length` samples:
  /// each fixed 32-trace index block fills its own partial on the workers
  /// (traces added in index order), and the partials are Chan-merged in
  /// block order on the calling thread. Byte-identical for every worker
  /// count; not byte-identical to one streaming accumulator (merge fixes a
  /// different — but schedule-independent — summation tree).
  [[nodiscard]] sca::ClassStats class_stats(const sca::TraceSet& set, std::size_t length);

  // --- full campaign ------------------------------------------------------

  /// Runs the complete degradation-aware campaign over `seeds`: capture ->
  /// robust segmentation -> classification -> hint routing per capture on
  /// the workers, then ordered hint integration and the security estimate
  /// on the calling thread. Throws std::logic_error if the merged per-worker
  /// tallies disagree with the ordered recount (a lost-update symptom).
  ///
  /// `diag` (optional) collects observability data — spans, counters,
  /// confusion — without changing a single output byte; when null, the
  /// pipeline runs the NullSpanTracer instantiation and no instrumentation
  /// code executes at all.
  [[nodiscard]] RecoveryCampaignResult run_recovery_campaign(
      const RevealAttack& attack, const CampaignConfig& config,
      const std::vector<std::uint64_t>& seeds, const HintPolicy& policy,
      const lwe::DbddParams& params, CampaignDiagnostics* diag = nullptr);

 private:
  WorkerPool pool_;
};

}  // namespace reveal::core
