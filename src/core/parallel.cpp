#include "core/parallel.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>

#include "numeric/rng.hpp"

namespace reveal::core {

std::size_t default_num_workers() noexcept {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<std::size_t>(hc);
}

std::uint64_t stream_seed(std::uint64_t base_seed, std::uint64_t stream_index) noexcept {
  // Odd-stride counter keeps the pre-image injective in the index; the
  // SplitMix64 output function then bijectively scrambles it. `index + 1`
  // decorrelates stream 0 from the raw base seed.
  std::uint64_t state = base_seed + 0x9E3779B97F4A7C15ULL * (stream_index + 1);
  return num::splitmix64(state);
}

namespace {

/// Half-open index range; the unit of work stealing. Owners pop from the
/// front of their deque, thieves from the back, so an owner works through
/// its contiguous range cache-friendly while thieves take the far end.
struct Block {
  std::size_t begin = 0;
  std::size_t end = 0;
  [[nodiscard]] std::size_t size() const noexcept { return end - begin; }
};

}  // namespace

struct WorkerPool::Shared {
  std::mutex mu;                    // guards everything below; tasks run unlocked
  std::condition_variable work_cv;  // workers: a new job or shutdown
  std::condition_variable done_cv;  // caller: remaining reached zero
  std::uint64_t generation = 0;
  bool shutdown = false;

  const std::function<void(std::size_t, std::size_t)>* task = nullptr;
  std::vector<std::deque<Block>> queues;  // one per worker
  std::size_t remaining = 0;              // indices not yet finished
  std::exception_ptr error;
};

WorkerPool::WorkerPool(std::size_t num_workers) : shared_(std::make_unique<Shared>()) {
  shared_->queues.resize(std::max<std::size_t>(num_workers, 1));
  workers_.reserve(num_workers);
  for (std::size_t w = 0; w < num_workers; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(shared_->mu);
    shared_->shutdown = true;
  }
  shared_->work_cv.notify_all();
  for (std::thread& t : workers_) t.join();
}

void WorkerPool::worker_loop(std::size_t worker) {
  Shared& s = *shared_;
  std::uint64_t seen = 0;
  for (;;) {
    std::unique_lock<std::mutex> lock(s.mu);
    s.work_cv.wait(lock, [&] { return s.shutdown || s.generation != seen; });
    if (s.shutdown) return;
    seen = s.generation;

    for (;;) {
      // Own queue first (front), then steal from the back of the others.
      Block block;
      if (!s.queues[worker].empty()) {
        block = s.queues[worker].front();
        s.queues[worker].pop_front();
      } else {
        bool stolen = false;
        for (std::size_t off = 1; off < s.queues.size() && !stolen; ++off) {
          auto& victim = s.queues[(worker + off) % s.queues.size()];
          if (!victim.empty()) {
            block = victim.back();
            victim.pop_back();
            stolen = true;
          }
        }
        if (!stolen) break;  // job drained (for this worker)
      }

      const bool skip = s.error != nullptr;  // failed job: drain without running
      lock.unlock();
      if (!skip) {
        try {
          for (std::size_t i = block.begin; i < block.end; ++i) (*s.task)(i, worker);
        } catch (...) {
          std::lock_guard<std::mutex> elock(s.mu);
          if (!s.error) s.error = std::current_exception();
        }
      }
      lock.lock();
      s.remaining -= block.size();
      if (s.remaining == 0) s.done_cv.notify_all();
    }
  }
}

void WorkerPool::run_indexed(std::size_t count,
                             const std::function<void(std::size_t, std::size_t)>& task) {
  if (count == 0) return;
  if (serial()) {
    for (std::size_t i = 0; i < count; ++i) task(i, 0);
    return;
  }

  Shared& s = *shared_;
  std::unique_lock<std::mutex> lock(s.mu);
  s.task = &task;
  s.remaining = count;
  s.error = nullptr;
  // Contiguous per-worker ranges, each subdivided so idle workers have
  // something to steal without the owner taking the lock per index.
  const std::size_t workers = workers_.size();
  const std::size_t per_worker = (count + workers - 1) / workers;
  const std::size_t block_size = std::max<std::size_t>(1, per_worker / 4);
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t lo = std::min(w * per_worker, count);
    const std::size_t hi = std::min(lo + per_worker, count);
    for (std::size_t b = lo; b < hi; b += block_size) {
      s.queues[w].push_back({b, std::min(b + block_size, hi)});
    }
  }
  ++s.generation;
  s.work_cv.notify_all();
  s.done_cv.wait(lock, [&] { return s.remaining == 0; });
  s.task = nullptr;
  std::exception_ptr error = s.error;
  s.error = nullptr;
  lock.unlock();
  if (error) std::rethrow_exception(error);
}

}  // namespace reveal::core
