#include "core/hint_sweep.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

#include "core/parallel.hpp"
#include "lwe/dbdd_matrix.hpp"

namespace reveal::core {

namespace {

std::size_t resolve_workers(const HintSweepConfig& config) {
  if (config.num_workers == HintSweepConfig::kAutoWorkers)
    return default_num_workers();
  return config.num_workers;
}

void validate(const HintSweepConfig& config, const std::vector<SweepHint>& pool) {
  if (config.counts.empty())
    throw std::invalid_argument("hint_sweep: empty count grid");
  if (config.orders == 0)
    throw std::invalid_argument("hint_sweep: orders must be >= 1");
  if (pool.empty()) throw std::invalid_argument("hint_sweep: empty hint pool");
  if (pool.size() > config.params.error_dim)
    throw std::invalid_argument("hint_sweep: pool larger than error_dim");
  for (const std::size_t c : config.counts)
    if (c > pool.size())
      throw std::invalid_argument("hint_sweep: count exceeds hint pool");
}

/// First `count` entries of a seeded Fisher-Yates permutation of
/// [0, pool_size). Depends only on (seed, pool_size) — the determinism
/// anchor of the whole sweep.
std::vector<std::size_t> hint_order(std::uint64_t seed, std::size_t pool_size,
                                    std::size_t count) {
  std::vector<std::size_t> perm(pool_size);
  for (std::size_t i = 0; i < pool_size; ++i) perm[i] = i;
  std::mt19937_64 rng(seed);
  for (std::size_t i = 0; i < pool_size; ++i) {
    std::uniform_int_distribution<std::size_t> pick(i, pool_size - 1);
    std::swap(perm[i], perm[pick(rng)]);
  }
  perm.resize(count);
  return perm;
}

/// Shared grid driver: runs `point(count, stream seed) -> beta` for every
/// (count, order) pair over the pool, then reduces in fixed index order.
template <typename PointFn>
HintSweepResult sweep_grid(const HintSweepConfig& config, const PointFn& point) {
  const std::size_t orders = config.orders;
  const std::size_t total = config.counts.size() * orders;

  HintSweepResult result;
  result.betas.assign(total, 0.0);

  WorkerPool pool_threads(resolve_workers(config));
  pool_threads.run_indexed(total, [&](std::size_t index, std::size_t) {
    const std::size_t count = config.counts[index / orders];
    result.betas[index] = point(count, stream_seed(config.base_seed, index));
  });

  // Serial reduction, fixed order: per-count Welford blocks, then one Chan
  // merge chain across counts. Identical for every worker count by
  // construction (the parallel phase only filled index slots).
  result.cells.reserve(config.counts.size());
  for (std::size_t ci = 0; ci < config.counts.size(); ++ci) {
    HintSweepCell cell;
    cell.count = config.counts[ci];
    for (std::size_t oi = 0; oi < orders; ++oi) {
      const double beta = result.betas[ci * orders + oi];
      cell.beta.add(beta);
      cell.bits.add(beta / lwe::kBikzPerBit);
    }
    result.overall_beta.merge(cell.beta);
    result.cells.push_back(std::move(cell));
  }
  return result;
}

}  // namespace

HintSweepResult run_hint_sweep(const HintSweepConfig& config,
                               const std::vector<SweepHint>& pool) {
  validate(config, pool);
  return sweep_grid(config, [&](std::size_t count, std::uint64_t seed) {
    const auto order = hint_order(seed, pool.size(), count);
    lwe::DbddEstimator est(config.params);
    for (const std::size_t idx : order) {
      const SweepHint& h = pool[idx];
      switch (h.kind) {
        case SweepHint::Kind::kPerfect:
          est.integrate_perfect_error_hints(1);
          break;
        case SweepHint::Kind::kApproximate:
          est.integrate_approximate_error_hints(h.variance, 1);
          break;
        case SweepHint::Kind::kPosterior:
          est.integrate_posterior_error_hints(h.variance, 1);
          break;
      }
    }
    return config.simulated ? est.estimate_simulated(config.sim_params).beta
                            : est.estimate().beta;
  });
}

HintSweepResult run_matrix_hint_sweep(const HintSweepConfig& config,
                                      const std::vector<SweepHint>& pool) {
  validate(config, pool);
  const std::size_t ambient =
      config.params.secret_dim + config.params.error_dim;
  return sweep_grid(config, [&](std::size_t count, std::uint64_t seed) {
    const auto order = hint_order(seed, pool.size(), count);
    std::mt19937_64 rng(stream_seed(seed, 1));  // direction stream, task-local
    std::normal_distribution<double> gauss;
    lwe::DbddMatrixEstimator est(config.params);
    std::vector<double> dir(ambient);
    for (const std::size_t idx : order) {
      const SweepHint& h = pool[idx];
      if (h.kind == SweepHint::Kind::kPerfect) {
        (void)est.integrate_perfect_error_hint(idx);
        continue;
      }
      // Noisy hint along a random dense unit direction touching the hinted
      // coordinate: the O(d^2) leg of the workload.
      double norm_sq = 0.0;
      for (double& x : dir) {
        x = gauss(rng);
        norm_sq += x * x;
      }
      const double inv = 1.0 / std::sqrt(norm_sq);
      for (double& x : dir) x *= inv;
      (void)est.integrate_approximate_hint(dir, std::max(h.variance, 1e-6));
    }
    return est.estimate().beta;
  });
}

}  // namespace reveal::core
