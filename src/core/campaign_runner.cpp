#include "core/campaign_runner.hpp"

#include <algorithm>
#include <memory>
#include <span>
#include <stdexcept>
#include <utility>

#include "core/campaign_obs.hpp"

namespace reveal::core {

using detail::CampaignReplicas;
using detail::WorkerObs;

CampaignRunner::CampaignRunner(std::size_t num_workers) : pool_(num_workers) {}

std::vector<std::uint64_t> CampaignRunner::stream_seeds(std::uint64_t base_seed,
                                                        std::size_t count) {
  std::vector<std::uint64_t> seeds(count);
  for (std::size_t i = 0; i < count; ++i) seeds[i] = stream_seed(base_seed, i);
  return seeds;
}

std::vector<FullCapture> CampaignRunner::capture_many(
    const CampaignConfig& config, const std::vector<std::uint64_t>& seeds) {
  std::vector<FullCapture> out(seeds.size());
  CampaignReplicas replicas(config, pool_.num_workers());
  pool_.run_indexed(seeds.size(), [&](std::size_t i, std::size_t w) {
    // out[i] is the caller-owned slot — capture straight into it.
    replicas.for_worker(w).capture_into(seeds[i], out[i]);
  });
  return out;
}

std::vector<WindowRecord> CampaignRunner::collect_windows(const CampaignConfig& config,
                                                          std::size_t runs,
                                                          std::uint64_t seed_base,
                                                          std::size_t* rejected) {
  // Each slot holds one capture's windows (empty + !ok when the
  // segmentation missed the expected count); the windows of accepted
  // captures are appended in capture order afterwards, exactly like the
  // sequential loop in SamplerCampaign::collect_windows.
  struct Slot {
    std::vector<WindowRecord> windows;
    bool ok = false;
  };
  std::vector<Slot> slots(runs);
  CampaignReplicas replicas(config, pool_.num_workers());
  pool_.run_indexed(runs, [&](std::size_t r, std::size_t w) {
    FullCapture& cap = replicas.scratch_for(w);
    replicas.for_worker(w).capture_into(seed_base + r, cap);
    if (cap.segments.size() != config.n) return;
    windows_from_capture(cap, slots[r].windows);
    slots[r].ok = true;
  });

  std::vector<WindowRecord> out;
  out.reserve(runs * config.n);
  std::size_t skipped = 0;
  for (Slot& slot : slots) {
    if (!slot.ok) {
      ++skipped;
      continue;
    }
    for (WindowRecord& w : slot.windows) out.push_back(std::move(w));
  }
  if (rejected != nullptr) *rejected = skipped;
  return out;
}

void CampaignRunner::train(RevealAttack& attack,
                           const std::vector<WindowRecord>& profiling) {
  attack.train(profiling, &pool_);
}

std::vector<CoefficientGuess> CampaignRunner::attack_capture(const RevealAttack& attack,
                                                             const FullCapture& capture) {
  return attack.attack_capture(capture, &pool_);
}

RobustCaptureResult CampaignRunner::attack_capture_robust(
    const RevealAttack& attack, const std::vector<double>& trace,
    std::size_t expected_windows, const sca::SegmentationConfig& seg_config) {
  return attack.attack_capture_robust(trace, expected_windows, seg_config, &pool_);
}

sca::ClassStats CampaignRunner::class_stats(const sca::TraceSet& set,
                                            std::size_t length) {
  sca::ClassStats out(length);
  const std::size_t n = set.size();
  if (n == 0) return out;
  const std::size_t blocks = (n + kClassStatsBlock - 1) / kClassStatsBlock;
  std::vector<sca::ClassStats> partials(blocks, sca::ClassStats(length));
  pool_.run_indexed(blocks, [&](std::size_t b, std::size_t) {
    const std::size_t begin = b * kClassStatsBlock;
    const std::size_t end = std::min(begin + kClassStatsBlock, n);
    for (std::size_t i = begin; i < end; ++i)
      partials[b].add(set[i].label, set[i].samples);
  });
  for (const sca::ClassStats& p : partials) out.merge(p);
  return out;
}

namespace {

/// The one campaign body, templated on whether a diagnostics sink is
/// attached. kDiag=false instantiates with obs::NullSpanTracer and no
/// counter code at all — it *is* the pre-observability pipeline, which is
/// how "observability off changes nothing" holds by construction; the
/// kDiag=true instantiation only ever reads pipeline outputs, so the two
/// return byte-identical results (pinned by the equivalence suite).
template <bool kDiag>
RecoveryCampaignResult run_campaign_impl(WorkerPool& pool, const RevealAttack& attack,
                                         const CampaignConfig& config,
                                         const std::vector<std::uint64_t>& seeds,
                                         const HintPolicy& policy,
                                         const lwe::DbddParams& params,
                                         CampaignDiagnostics* diag) {
  RecoveryCampaignResult out;
  out.captures.resize(seeds.size());
  out.hints.resize(seeds.size());

  // Per-capture stage on the workers. Each capture is one task: the inner
  // per-window attack stays sequential here (nesting run_indexed on the
  // same pool is not allowed), which is the right granularity anyway —
  // captures outnumber workers in every campaign-shaped sweep.
  const std::size_t worker_slots = std::max<std::size_t>(pool.num_workers(), 1);
  std::vector<HintTally> tallies(worker_slots);
  CampaignReplicas replicas(config, pool.num_workers());
  std::vector<WorkerObs> worker_obs(kDiag ? worker_slots : 0);
  detail::run_capture_stage<kDiag>(pool, attack, config,
                                   std::span<const std::uint64_t>(seeds), policy,
                                   replicas, out.captures, out.hints, tallies,
                                   kDiag ? &worker_obs : nullptr);

  if constexpr (kDiag) {
    // Fold the per-worker partials in worker-index order (the campaign
    // merge contract) and the replica-level fault stats the same way.
    for (const WorkerObs& o : worker_obs) {
      diag->registry.merge(o.registry);
      diag->tracer.merge(o.tracer);
      diag->confusion.merge(o.confusion);
    }
    const power::FaultStats faults = replicas.merged_fault_stats();
    obs::Registry& reg = diag->registry;
    reg.add(reg.counter("faults.captures"), faults.captures);
    reg.add(reg.counter("faults.dropped_samples"), faults.dropped_samples);
    reg.add(reg.counter("faults.glitch_samples"), faults.glitch_samples);
    reg.add(reg.counter("faults.burst_windows"), faults.burst_windows);
    reg.add(reg.counter("faults.drifted_captures"), faults.drifted_captures);
    reg.add(reg.counter("faults.clipped_samples"), faults.clipped_samples);
    reg.add(reg.counter("faults.misaligned_captures"), faults.misaligned_captures);
    reg.add(reg.counter("faults.warped_captures"), faults.warped_captures);
  }

  // Merge the per-worker counter partials in worker-index order, then
  // cross-check them against an ordered recount. The integer counters of
  // both paths must agree exactly; a mismatch means some accumulation was
  // shared across workers and lost updates.
  HintTally merged;
  for (const HintTally& t : tallies) merged.merge(t);
  HintTally recount;
  for (const auto& records : out.hints) {
    for (const HintRecord& r : records) recount.add(r);
  }
  if (merged.perfect != recount.perfect || merged.approximate != recount.approximate ||
      merged.sign_only != recount.sign_only || merged.skipped != recount.skipped) {
    throw std::logic_error(
        "run_recovery_campaign: per-worker hint tallies diverge from the ordered "
        "recount (lost update in shared accumulation)");
  }
  // The float sum is taken from the recount: capture order is the one order
  // that exists for every worker count, so the summary stays byte-identical.
  out.hint_totals = recount.summary();

  // Estimator integration replays the routed hints in capture order on this
  // thread — its state update is floating-point order-sensitive, so this is
  // the only scheduling-independent way to integrate.
  lwe::DbddEstimator estimator(params);
  lwe::SecurityEstimate estimate;
  {
    auto integrate = [&] {
      for (const auto& records : out.hints) {
        for (const HintRecord& r : records) apply_hint(estimator, r);
      }
      estimate = estimator.estimate();
    };
    if constexpr (kDiag) {
      auto span = diag->tracer.span(obs::Stage::kEstimation);
      integrate();
    } else {
      integrate();
    }
  }

  sca::RecoveryReport& rep = out.report;
  rep.expected_windows = seeds.size() * config.n;
  rep.segmentation_status = sca::SegmentationStatus::kOk;
  double consistency_sum = 0.0;
  for (const RobustCaptureResult& res : out.captures) {
    rep.recovered_windows += res.segmentation.segments.size();
    rep.segmentation_attempts += res.segmentation.attempts;
    consistency_sum += res.segmentation.burst_consistency;
    rep.segmentation_status =
        std::max(rep.segmentation_status, res.segmentation.status);  // worst wins
    for (const CoefficientGuess& g : res.guesses) {
      switch (g.quality) {
        case GuessQuality::kOk: ++rep.ok_guesses; break;
        case GuessQuality::kLowConfidence: ++rep.low_confidence_guesses; break;
        case GuessQuality::kAbstained: ++rep.abstained_guesses; break;
      }
    }
  }
  if (!out.captures.empty())
    rep.burst_consistency = consistency_sum / static_cast<double>(out.captures.size());
  rep.perfect_hints = out.hint_totals.perfect;
  rep.approximate_hints = out.hint_totals.approximate;
  rep.sign_only_hints = out.hint_totals.sign_only;
  rep.dropped_hints = out.hint_totals.skipped;
  rep.bikz = estimate.beta;
  rep.bits = estimate.bits;
  return out;
}

}  // namespace

RecoveryCampaignResult CampaignRunner::run_recovery_campaign(
    const RevealAttack& attack, const CampaignConfig& config,
    const std::vector<std::uint64_t>& seeds, const HintPolicy& policy,
    const lwe::DbddParams& params, CampaignDiagnostics* diag) {
  if (diag != nullptr) {
    return run_campaign_impl<true>(pool_, attack, config, seeds, policy, params, diag);
  }
  return run_campaign_impl<false>(pool_, attack, config, seeds, policy, params, nullptr);
}

}  // namespace reveal::core
