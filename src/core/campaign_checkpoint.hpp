#pragma once
// Checkpoint/resume for recovery campaigns (DESIGN.md §8).
//
// run_recovery_campaign_checkpointed processes the seed schedule
// stream_seed(base_seed, 0..total) in batches, persisting a
// CampaignAccumulator snapshot after every batch with an atomic
// write-to-temp + rename. A killed campaign restarts from the last
// completed batch and finishes with a *byte-identical* final
// RecoveryReport, hint set, and diagnostics JSON — identical both to an
// uninterrupted checkpointed run and to plain
// CampaignRunner::run_recovery_campaign over the same schedule.
//
// Why this works (the determinism ledger):
//   * Every per-capture output is a pure function of (config, seed); batch
//     boundaries only group work, they never reorder it.
//   * All floating-point accumulations that feed the report (hint-variance
//     recount, burst-consistency sum, estimator integration) replay in
//     capture order on the calling thread — the one order that exists for
//     every batch size and worker count.
//   * Integer counters (registry, confusion, tallies) are associative, and
//     histogram value sums accumulate through obs::ExactSum, whose
//     serialized normalized form makes save/load exact. Hence the final
//     diagnostics are batch-partition invariant too.
//   * Wall-clock spans are the one non-deterministic observation, so the
//     checkpointed driver never merges worker tracers: the resulting
//     diagnostics carry an empty stages section by construction.
//
// The accumulator and its binary snapshot are exposed because the
// multi-process shard driver (core/shard_driver.hpp) serializes the same
// state per shard and folds the partials in shard order.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/campaign_runner.hpp"

namespace reveal::core {

/// Running partial state of a batched campaign: everything needed to
/// continue from capture `next_index` and later finalize a report that is
/// byte-identical to an unbroken run.
struct CampaignAccumulator {
  std::uint64_t next_index = 0;  ///< captures [0, next_index) are folded in

  /// Routed hint records per capture, in capture order. Kept verbatim
  /// because estimator integration is floating-point order-sensitive: it
  /// replays the full sequence once, at finalize.
  std::vector<std::vector<HintRecord>> hints;

  /// Per-worker tallies merged in worker order (integer cross-check against
  /// the finalize-time recount; the float sum is taken from the recount).
  HintTally worker_tally;

  // Report partials, accumulated in capture order. The burst-consistency
  // values stay per-capture (not pre-summed): finalize sums them in capture
  // order, so the one float reduction in the report is identical for every
  // batch size *and* every shard partition of the schedule.
  std::uint64_t recovered_windows = 0;
  std::uint64_t segmentation_attempts = 0;
  sca::SegmentationStatus worst_status = sca::SegmentationStatus::kOk;
  std::vector<double> capture_consistency;  ///< one per capture, capture order
  std::uint64_t ok_guesses = 0;
  std::uint64_t low_confidence_guesses = 0;
  std::uint64_t abstained_guesses = 0;

  // Deterministic observability partials (no spans — see header comment).
  obs::Registry registry;
  sca::ConfusionMatrix confusion;

  /// Folds one capture's report-feeding outcome (call in capture order).
  void fold_capture(const RobustCaptureResult& res);

  /// Concatenates another accumulator covering the captures immediately
  /// after this one (fixed shard-order merge): hints and consistency values
  /// append, integer partials add, statuses max, observability merges.
  void append(CampaignAccumulator&& next);

  /// Bounds-checked binary snapshot (numeric/binary_io framing).
  void save(std::ostream& out) const;
  [[nodiscard]] static CampaignAccumulator load(std::istream& in);
};

/// Runs the capture stage over schedule indices [begin, end) of
/// {stream_seed(base_seed, i)} and folds every output into `acc` in capture
/// order (diagnostics without spans). Shared by the checkpointed driver
/// (one call per persisted batch) and the shard driver (one call per shard
/// range). Increments acc.next_index by end - begin.
void accumulate_campaign_range(WorkerPool& pool, const RevealAttack& attack,
                               const CampaignConfig& config, std::uint64_t base_seed,
                               std::uint64_t begin, std::uint64_t end,
                               const HintPolicy& policy, CampaignAccumulator& acc);

struct CampaignFinalization {
  sca::RecoveryReport report;
  HintSummary hint_totals;
};

/// The deterministic campaign tail over a complete accumulator: recounts
/// the stored hints in capture order (cross-checking the merged worker
/// tallies), replays estimator integration in capture order, and assembles
/// the RecoveryReport — byte-identical to run_recovery_campaign's tail for
/// the same capture outcomes. `windows_per_capture` is config.n.
[[nodiscard]] CampaignFinalization finalize_campaign(const CampaignAccumulator& acc,
                                                     std::size_t windows_per_capture,
                                                     const lwe::DbddParams& params);

struct CheckpointOptions {
  std::string path;  ///< checkpoint file (written atomically via path + ".tmp")
  /// Captures per batch. The final outputs are batch-size invariant; the
  /// batch size only trades checkpoint granularity against save overhead.
  std::size_t batch_size = 64;
  /// Stop after this many batches in one call (0 = run to completion).
  /// The test suite uses this to simulate a kill at a batch boundary; an
  /// interrupted call returns complete == false with the checkpoint saved.
  std::size_t max_batches_per_call = 0;
  /// Keep the checkpoint file after successful completion.
  bool keep_checkpoint = false;
};

struct CheckpointedCampaignResult {
  bool complete = false;  ///< false when max_batches_per_call stopped the run
  bool resumed = false;   ///< true when an existing checkpoint was loaded
  std::uint64_t processed_this_call = 0;  ///< captures executed in this call
  std::uint64_t next_index = 0;           ///< schedule cursor after this call

  // Valid only when complete:
  sca::RecoveryReport report;
  HintSummary hint_totals;
  std::vector<std::vector<HintRecord>> hints;  ///< per capture, capture order
  CampaignDiagnostics diagnostics;  ///< registry + confusion; tracer empty
};

/// Batched, checkpointed counterpart of CampaignRunner::run_recovery_campaign
/// over the schedule {stream_seed(base_seed, i) : i < total_captures}.
/// Resumes from `options.path` when it exists (throws std::runtime_error if
/// that checkpoint belongs to a different schedule); deletes the file after
/// completion unless options.keep_checkpoint.
[[nodiscard]] CheckpointedCampaignResult run_recovery_campaign_checkpointed(
    CampaignRunner& runner, const RevealAttack& attack, const CampaignConfig& config,
    std::uint64_t base_seed, std::size_t total_captures, const HintPolicy& policy,
    const lwe::DbddParams& params, const CheckpointOptions& options);

/// The schedule digest stored in checkpoint files: mixes base_seed,
/// total_captures and the capture-shaping config fields so a stale file
/// from a different campaign fails loudly instead of corrupting a resume.
[[nodiscard]] std::uint64_t campaign_digest(std::uint64_t base_seed,
                                            std::uint64_t total_captures,
                                            const CampaignConfig& config);

}  // namespace reveal::core
