#pragma once
// Probability-distribution helpers used by the samplers, the template
// attack posterior computation, and the DBDD hint integration.

#include <cstddef>
#include <vector>

namespace reveal::num {

/// Standard normal probability density at x.
double normal_pdf(double x) noexcept;

/// Normal density with mean mu and standard deviation sigma.
double normal_pdf(double x, double mu, double sigma) noexcept;

/// Standard normal cumulative distribution function.
double normal_cdf(double x) noexcept;

/// Probability mass function of the *rounded clipped* normal used by SEAL:
/// X = round(clip(N(0, sigma), +-max_dev)) evaluated at integer k.
/// Matches ClippedNormalDistribution followed by rounding to nearest int.
double rounded_clipped_normal_pmf(int k, double sigma, double max_dev) noexcept;

/// Mean of the distribution of |X| conditioned on X > 0 for the rounded
/// clipped normal (used to model sign-only hints).
double positive_tail_mean(double sigma, double max_dev) noexcept;

/// Variance of X conditioned on X > 0 for the rounded clipped normal.
double positive_tail_variance(double sigma, double max_dev) noexcept;

/// Probability that the rounded clipped normal equals zero.
double zero_probability(double sigma, double max_dev) noexcept;

/// Normalizes a vector of non-negative scores into probabilities.
/// All-zero input yields the uniform distribution.
std::vector<double> normalize_probabilities(std::vector<double> scores);

/// Converts log-likelihood scores to posterior probabilities with a
/// numerically stable softmax (uniform prior).
std::vector<double> log_scores_to_posterior(const std::vector<double>& log_scores);

/// Shannon entropy (bits) of a probability vector.
double entropy_bits(const std::vector<double>& probs) noexcept;

/// Variance of an integer-supported distribution given probabilities
/// aligned with `support`.
double distribution_variance(const std::vector<int>& support,
                             const std::vector<double>& probs);

/// Mean of an integer-supported distribution.
double distribution_mean(const std::vector<int>& support,
                         const std::vector<double>& probs);

}  // namespace reveal::num
