#pragma once
// Bit-level helpers shared by the power model and the SCA toolkit.

#include <bit>
#include <cstdint>

namespace reveal::num {

/// Hamming weight (population count) of a 32-bit word.
[[nodiscard]] constexpr int hamming_weight(std::uint32_t v) noexcept {
  return std::popcount(v);
}

/// Hamming weight of a 64-bit word.
[[nodiscard]] constexpr int hamming_weight(std::uint64_t v) noexcept {
  return std::popcount(v);
}

/// Hamming distance between two 32-bit words (number of toggled bits).
[[nodiscard]] constexpr int hamming_distance(std::uint32_t a, std::uint32_t b) noexcept {
  return std::popcount(a ^ b);
}

/// Hamming distance between two 64-bit words.
[[nodiscard]] constexpr int hamming_distance(std::uint64_t a, std::uint64_t b) noexcept {
  return std::popcount(a ^ b);
}

}  // namespace reveal::num
