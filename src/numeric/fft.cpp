#include "numeric/fft.hpp"

#include <cmath>
#include <stdexcept>

namespace reveal::num {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

}  // namespace

Fft::Fft(std::size_t n) : n_(n) {
  if (!is_pow2(n)) throw std::invalid_argument("Fft: size must be a power of two");
  rev_.resize(n);
  int log_n = 0;
  while ((std::size_t{1} << log_n) < n) ++log_n;
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t r = 0;
    for (int b = 0; b < log_n; ++b) r |= ((i >> b) & 1u) << (log_n - 1 - b);
    rev_[i] = r;
  }
  twiddles_.resize(n / 2);
  for (std::size_t k = 0; k < n / 2; ++k) {
    const double angle = -kTwoPi * static_cast<double>(k) / static_cast<double>(n);
    twiddles_[k] = {std::cos(angle), std::sin(angle)};
  }
}

void Fft::transform(std::complex<double>* data, bool invert) const noexcept {
  for (std::size_t i = 0; i < n_; ++i) {
    if (i < rev_[i]) std::swap(data[i], data[rev_[i]]);
  }
  for (std::size_t len = 2; len <= n_; len <<= 1) {
    const std::size_t half = len >> 1;
    const std::size_t step = n_ / len;  // twiddle stride for this stage
    for (std::size_t block = 0; block < n_; block += len) {
      for (std::size_t j = 0; j < half; ++j) {
        std::complex<double> w = twiddles_[j * step];
        if (invert) w = std::conj(w);
        const std::complex<double> u = data[block + j];
        const std::complex<double> v = data[block + j + half] * w;
        data[block + j] = u + v;
        data[block + j + half] = u - v;
      }
    }
  }
  if (invert) {
    const double inv_n = 1.0 / static_cast<double>(n_);
    for (std::size_t i = 0; i < n_; ++i) data[i] *= inv_n;
  }
}

void Fft::forward(std::complex<double>* data) const noexcept { transform(data, false); }

void Fft::inverse(std::complex<double>* data) const noexcept { transform(data, true); }

std::size_t Fft::next_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::vector<double> cross_correlation(const std::vector<double>& a,
                                      const std::vector<double>& b) {
  if (a.empty() || b.empty())
    throw std::invalid_argument("cross_correlation: empty input");
  const std::size_t out_len = a.size() + b.size() - 1;
  const std::size_t n = Fft::next_pow2(a.size() + b.size());
  const Fft fft(n);

  // Pack both real sequences into one complex transform: with x = a + i*b,
  // the spectra separate through Hermitian symmetry, saving one forward FFT.
  std::vector<std::complex<double>> x(n, {0.0, 0.0});
  for (std::size_t i = 0; i < a.size(); ++i) x[i] = {a[i], 0.0};
  for (std::size_t i = 0; i < b.size(); ++i) x[i] += std::complex<double>{0.0, b[i]};
  fft.forward(x.data());

  // A[k] = (X[k] + conj(X[n-k]))/2, B[k] = (X[k] - conj(X[n-k]))/(2i);
  // the correlation spectrum is conj(A[k]) * B[k].
  std::vector<std::complex<double>> z(n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::complex<double> xk = x[k];
    const std::complex<double> xnk = std::conj(x[(n - k) & (n - 1)]);
    const std::complex<double> ak = 0.5 * (xk + xnk);
    const std::complex<double> bk = std::complex<double>{0.0, -0.5} * (xk - xnk);
    z[k] = std::conj(ak) * bk;
  }
  fft.inverse(z.data());

  // z[k] = sum_i a[i] * b[(i + k) mod n]; zero padding to n >= n_a + n_b
  // keeps positive lags (k = d) and negative lags (k = n + d) from aliasing.
  std::vector<double> out(out_len);
  const auto a_n = static_cast<std::ptrdiff_t>(a.size());
  const auto b_n = static_cast<std::ptrdiff_t>(b.size());
  for (std::ptrdiff_t d = -(a_n - 1); d < b_n; ++d) {
    const std::size_t src = d >= 0 ? static_cast<std::size_t>(d)
                                   : n - static_cast<std::size_t>(-d);
    out[static_cast<std::size_t>(d + a_n - 1)] = z[src].real();
  }
  return out;
}

std::vector<double> cross_correlation_reference(const std::vector<double>& a,
                                                const std::vector<double>& b) {
  if (a.empty() || b.empty())
    throw std::invalid_argument("cross_correlation: empty input");
  const auto a_n = static_cast<std::ptrdiff_t>(a.size());
  const auto b_n = static_cast<std::ptrdiff_t>(b.size());
  std::vector<double> out(a.size() + b.size() - 1, 0.0);
  for (std::ptrdiff_t d = -(a_n - 1); d < b_n; ++d) {
    const std::ptrdiff_t begin = std::max<std::ptrdiff_t>(0, -d);
    const std::ptrdiff_t end = std::min(a_n, b_n - d);
    double acc = 0.0;
    for (std::ptrdiff_t i = begin; i < end; ++i) {
      acc += a[static_cast<std::size_t>(i)] * b[static_cast<std::size_t>(i + d)];
    }
    out[static_cast<std::size_t>(d + a_n - 1)] = acc;
  }
  return out;
}

}  // namespace reveal::num
