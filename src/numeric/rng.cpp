#include "numeric/rng.hpp"

#include <bit>
#include <cmath>
#include <numbers>

namespace reveal::num {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Xoshiro256StarStar::Xoshiro256StarStar(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
  // All-zero state is invalid for xoshiro; SplitMix64 cannot produce four
  // zero outputs in a row for any seed, but guard anyway.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

Xoshiro256StarStar::result_type Xoshiro256StarStar::operator()() noexcept {
  const std::uint64_t result = std::rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = std::rotl(state_[3], 45);
  return result;
}

std::uint64_t Xoshiro256StarStar::uniform_below(std::uint64_t bound) noexcept {
  // Lemire-style rejection to avoid modulo bias.
  if (bound <= 1) return 0;
  const std::uint64_t threshold = (~bound + 1) % bound;  // (2^64 - bound) mod bound
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Xoshiro256StarStar::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_below(span));
}

double Xoshiro256StarStar::uniform_double() noexcept {
  // 53 high bits -> [0,1) with full double precision.
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Xoshiro256StarStar::gaussian() noexcept {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; u1 in (0,1] so log() is finite.
  double u1 = 0.0;
  do {
    u1 = uniform_double();
  } while (u1 <= 0.0);
  const double u2 = uniform_double();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

double Xoshiro256StarStar::gaussian(double mean, double stddev) noexcept {
  return mean + stddev * gaussian();
}

bool Xoshiro256StarStar::bernoulli(double p) noexcept {
  return uniform_double() < p;
}

void Xoshiro256StarStar::jump() noexcept {
  static constexpr std::array<std::uint64_t, 4> kJump = {
      0x180EC6D33CFD0ABAULL, 0xD5A61266F0C9392CULL,
      0xA9582618E03FC9AAULL, 0x39ABDC4529B1661CULL};
  std::array<std::uint64_t, 4> acc{};
  for (const std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (std::uint64_t{1} << b)) {
        for (std::size_t i = 0; i < acc.size(); ++i) acc[i] ^= state_[i];
      }
      (*this)();
    }
  }
  state_ = acc;
  has_cached_gaussian_ = false;
}

Xoshiro256StarStar Xoshiro256StarStar::fork() noexcept {
  return Xoshiro256StarStar{(*this)()};
}

}  // namespace reveal::num
