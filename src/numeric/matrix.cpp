#include "numeric/matrix.hpp"

#include <cmath>
#include <stdexcept>

namespace reveal::num {

double& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at index out of range");
  return data_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at index out of range");
  return data_[r * cols_ + c];
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::diagonal(const std::vector<double>& diag) {
  Matrix m(diag.size(), diag.size());
  for (std::size_t i = 0; i < diag.size(); ++i) m(i, i) = diag[i];
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  if (cols_ != rhs.rows_) throw std::invalid_argument("Matrix multiply: shape mismatch");
  Matrix out(rows_, rhs.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double v = (*this)(r, k);
      if (v == 0.0) continue;
      for (std::size_t c = 0; c < rhs.cols_; ++c) out(r, c) += v * rhs(k, c);
    }
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
    throw std::invalid_argument("Matrix add: shape mismatch");
  Matrix out = *this;
  for (std::size_t i = 0; i < out.data_.size(); ++i) out.data_[i] += rhs.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
    throw std::invalid_argument("Matrix sub: shape mismatch");
  Matrix out = *this;
  for (std::size_t i = 0; i < out.data_.size(); ++i) out.data_[i] -= rhs.data_[i];
  return out;
}

Matrix& Matrix::operator*=(double scalar) {
  for (double& v : data_) v *= scalar;
  return *this;
}

std::vector<double> Matrix::apply(const std::vector<double>& v) const {
  if (v.size() != cols_) throw std::invalid_argument("Matrix::apply: size mismatch");
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += (*this)(r, c) * v[c];
    out[r] = acc;
  }
  return out;
}

CholeskyResult cholesky(const Matrix& a) {
  CholeskyResult result;
  if (a.rows() != a.cols()) return result;
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) return result;  // not SPD
    l(j, j) = std::sqrt(diag);
    for (std::size_t i = j + 1; i < n; ++i) {
      double v = a(i, j);
      for (std::size_t k = 0; k < j; ++k) v -= l(i, k) * l(j, k);
      l(i, j) = v / l(j, j);
    }
  }
  result.lower = std::move(l);
  result.ok = true;
  return result;
}

std::vector<double> cholesky_solve(const Matrix& lower, const std::vector<double>& b) {
  const std::size_t n = lower.rows();
  if (b.size() != n) throw std::invalid_argument("cholesky_solve: size mismatch");
  // Forward substitution L y = b.
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double v = b[i];
    for (std::size_t k = 0; k < i; ++k) v -= lower(i, k) * y[k];
    y[i] = v / lower(i, i);
  }
  // Back substitution L^T x = y.
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double v = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) v -= lower(k, ii) * x[k];
    x[ii] = v / lower(ii, ii);
  }
  return x;
}

double log_det_spd(const Matrix& a) {
  const CholeskyResult c = cholesky(a);
  if (!c.ok) throw std::domain_error("log_det_spd: matrix not positive definite");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) acc += std::log(c.lower(i, i));
  return 2.0 * acc;
}

Matrix invert_spd(const Matrix& a) {
  const CholeskyResult c = cholesky(a);
  if (!c.ok) throw std::domain_error("invert_spd: matrix not positive definite");
  const std::size_t n = a.rows();
  Matrix inv(n, n);
  std::vector<double> e(n, 0.0);
  for (std::size_t col = 0; col < n; ++col) {
    e[col] = 1.0;
    const std::vector<double> x = cholesky_solve(c.lower, e);
    for (std::size_t r = 0; r < n; ++r) inv(r, col) = x[r];
    e[col] = 0.0;
  }
  return inv;
}

void add_ridge(Matrix& a, double value) {
  const std::size_t n = a.rows() < a.cols() ? a.rows() : a.cols();
  for (std::size_t i = 0; i < n; ++i) a(i, i) += value;
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) throw std::invalid_argument("dot: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double norm(const std::vector<double>& a) { return std::sqrt(dot(a, a)); }

}  // namespace reveal::num
