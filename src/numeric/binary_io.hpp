#pragma once
// Bounds-checked binary stream primitives shared by every on-disk format in
// the toolkit (checkpoint partials, metric registries, template builders).
//
// The contract mirrors the hardened seal/serialization loaders: a reader
// never sizes an allocation from an unvalidated on-disk count — every
// vector read takes an explicit plausibility cap and throws
// std::runtime_error on implausible counts or a short stream, so corrupt
// or hostile input produces a clean parse error instead of an OOM.

#include <cstdint>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace reveal::num::io {

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
[[nodiscard]] T read_pod(std::istream& in) {
  static_assert(std::is_trivially_copyable_v<T>);
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("binary_io: unexpected end of stream");
  return value;
}

/// Writes a length-prefixed vector of trivially copyable elements.
template <typename T>
void write_vec(std::ostream& out, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  write_pod<std::uint64_t>(out, v.size());
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
}

/// Bytes left before EOF, or UINT64_MAX when the stream is not seekable
/// (pipes). Used to reject declared counts no stream suffix could back
/// before they size an allocation.
[[nodiscard]] inline std::uint64_t remaining_bytes(std::istream& in) {
  const std::istream::pos_type pos = in.tellg();
  if (pos == std::istream::pos_type(-1)) return UINT64_MAX;
  in.seekg(0, std::ios::end);
  const std::istream::pos_type end = in.tellg();
  in.seekg(pos);
  if (end == std::istream::pos_type(-1) || end < pos) return UINT64_MAX;
  return static_cast<std::uint64_t>(end - pos);
}

/// Reads a length-prefixed vector, rejecting counts above `max_count` — or
/// beyond what the stream's remaining bytes could hold — before any
/// allocation. Callers pass a cap appropriate for the field (dimensions,
/// bucket counts, ...) — never "unbounded".
template <typename T>
[[nodiscard]] std::vector<T> read_vec(std::istream& in, std::uint64_t max_count) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto count = read_pod<std::uint64_t>(in);
  if (count > max_count || count > remaining_bytes(in) / sizeof(T))
    throw std::runtime_error("binary_io: implausible element count");
  std::vector<T> v(count);
  // count <= max_count, and every cap used in this codebase keeps
  // count * sizeof(T) far below the signed streamsize range.
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(count * sizeof(T)));
  if (!in) throw std::runtime_error("binary_io: unexpected end of stream");
  return v;
}

/// Length-prefixed string (cap guards against hostile lengths).
inline void write_string(std::ostream& out, const std::string& s) {
  write_pod<std::uint64_t>(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

[[nodiscard]] inline std::string read_string(std::istream& in,
                                             std::uint64_t max_length = 1u << 16) {
  const auto length = read_pod<std::uint64_t>(in);
  if (length > max_length || length > remaining_bytes(in))
    throw std::runtime_error("binary_io: implausible string length");
  std::string s(length, '\0');
  in.read(s.data(), static_cast<std::streamsize>(length));
  if (!in) throw std::runtime_error("binary_io: unexpected end of stream");
  return s;
}

/// Reads and checks a fixed marker (section framing in checkpoint files).
inline void expect_marker(std::istream& in, std::uint32_t marker, const char* what) {
  if (read_pod<std::uint32_t>(in) != marker)
    throw std::runtime_error(std::string("binary_io: bad section marker for ") + what);
}

}  // namespace reveal::num::io
