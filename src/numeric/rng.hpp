#pragma once
// Deterministic, fast pseudo-random generation for the whole project.
//
// All randomness in the reproduction flows through Xoshiro256StarStar so
// every experiment is reproducible from a single seed. The class satisfies
// the C++ UniformRandomBitGenerator requirements, so it can also drive
// <random> distributions where convenient.

#include <array>
#include <cstdint>

namespace reveal::num {

/// xoshiro256** by Blackman & Vigna — small, fast, high-quality PRNG.
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  /// Seeds the state from a single 64-bit seed via SplitMix64 expansion.
  explicit Xoshiro256StarStar(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  /// Next 64 uniformly random bits.
  result_type operator()() noexcept;

  /// Uniform integer in [0, bound) without modulo bias (bound > 0).
  std::uint64_t uniform_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform_double() noexcept;

  /// Standard normal variate (Box-Muller, cached second value).
  double gaussian() noexcept;

  /// Normal variate with the given mean and standard deviation.
  double gaussian(double mean, double stddev) noexcept;

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept;

  /// Jump function: advances the state by 2^128 steps (for parallel streams).
  void jump() noexcept;

  /// Derives an independent child generator (seeded from this stream).
  Xoshiro256StarStar fork() noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

/// SplitMix64 step — used for seed expansion; exposed for tests.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

}  // namespace reveal::num
