#include "numeric/distributions.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

namespace reveal::num {

namespace {

constexpr double kInvSqrt2Pi = 0.3989422804014327;  // 1/sqrt(2*pi)

/// P(lo < N(0,sigma) <= hi).
double normal_interval(double lo, double hi, double sigma) noexcept {
  return normal_cdf(hi / sigma) - normal_cdf(lo / sigma);
}

/// Total mass of the clipped (pre-rounding) normal: P(|X| <= max_dev).
double clip_mass(double sigma, double max_dev) noexcept {
  return normal_interval(-max_dev, max_dev, sigma);
}

}  // namespace

double normal_pdf(double x) noexcept { return kInvSqrt2Pi * std::exp(-0.5 * x * x); }

double normal_pdf(double x, double mu, double sigma) noexcept {
  const double z = (x - mu) / sigma;
  return kInvSqrt2Pi / sigma * std::exp(-0.5 * z * z);
}

double normal_cdf(double x) noexcept {
  return 0.5 * std::erfc(-x * std::numbers::sqrt2 / 2.0);
}

double rounded_clipped_normal_pmf(int k, double sigma, double max_dev) noexcept {
  // SEAL rejects |x| > max_dev before rounding, so the support after
  // rounding is [-round(max_dev), round(max_dev)] and the mass of integer k
  // is the clipped-normal mass of the interval (k-1/2, k+1/2].
  const double kk = static_cast<double>(k);
  if (std::abs(kk) > max_dev + 0.5) return 0.0;
  const double lo = std::max(kk - 0.5, -max_dev);
  const double hi = std::min(kk + 0.5, max_dev);
  if (hi <= lo) return 0.0;
  return normal_interval(lo, hi, sigma) / clip_mass(sigma, max_dev);
}

double positive_tail_mean(double sigma, double max_dev) noexcept {
  double mass = 0.0;
  double acc = 0.0;
  const int kmax = static_cast<int>(std::ceil(max_dev));
  for (int k = 1; k <= kmax; ++k) {
    const double p = rounded_clipped_normal_pmf(k, sigma, max_dev);
    mass += p;
    acc += p * k;
  }
  return mass > 0.0 ? acc / mass : 0.0;
}

double positive_tail_variance(double sigma, double max_dev) noexcept {
  const double mu = positive_tail_mean(sigma, max_dev);
  double mass = 0.0;
  double acc = 0.0;
  const int kmax = static_cast<int>(std::ceil(max_dev));
  for (int k = 1; k <= kmax; ++k) {
    const double p = rounded_clipped_normal_pmf(k, sigma, max_dev);
    mass += p;
    acc += p * (k - mu) * (k - mu);
  }
  return mass > 0.0 ? acc / mass : 0.0;
}

double zero_probability(double sigma, double max_dev) noexcept {
  return rounded_clipped_normal_pmf(0, sigma, max_dev);
}

std::vector<double> normalize_probabilities(std::vector<double> scores) {
  double total = 0.0;
  for (double s : scores) {
    if (s < 0.0) throw std::invalid_argument("normalize_probabilities: negative score");
    total += s;
  }
  if (total <= 0.0) {
    const double u = scores.empty() ? 0.0 : 1.0 / static_cast<double>(scores.size());
    std::fill(scores.begin(), scores.end(), u);
    return scores;
  }
  for (double& s : scores) s /= total;
  return scores;
}

std::vector<double> log_scores_to_posterior(const std::vector<double>& log_scores) {
  if (log_scores.empty()) return {};
  // Max-subtracted softmax. NaN scores (inf - inf in an upstream factored
  // quadratic form at extreme Mahalanobis distances) carry no usable mass
  // and are excluded from the max, so one poisoned class cannot NaN the
  // whole posterior.
  double max_score = -std::numeric_limits<double>::infinity();
  for (const double s : log_scores) {
    if (!std::isnan(s) && s > max_score) max_score = s;
  }
  if (!std::isfinite(max_score)) {
    // +inf best score: certainty concentrated on the (tied) +inf classes.
    // All scores -inf or NaN: every class underflowed — no information,
    // which is a uniform posterior, not the NaN that exp(-inf - -inf)
    // would produce.
    std::vector<double> probs(log_scores.size(), 0.0);
    std::size_t hits = 0;
    for (std::size_t i = 0; i < log_scores.size(); ++i) {
      if (log_scores[i] == max_score) ++hits;
    }
    if (hits == 0) {
      std::fill(probs.begin(), probs.end(),
                1.0 / static_cast<double>(log_scores.size()));
      return probs;
    }
    const double p = 1.0 / static_cast<double>(hits);
    for (std::size_t i = 0; i < log_scores.size(); ++i) {
      if (log_scores[i] == max_score) probs[i] = p;
    }
    return probs;
  }
  std::vector<double> probs(log_scores.size());
  double total = 0.0;
  for (std::size_t i = 0; i < log_scores.size(); ++i) {
    probs[i] = std::isnan(log_scores[i]) ? 0.0 : std::exp(log_scores[i] - max_score);
    total += probs[i];
  }
  // total >= exp(0) = 1 (the max survives the subtraction), so the divide
  // can never be 0/0 here.
  for (double& p : probs) p /= total;
  return probs;
}

double entropy_bits(const std::vector<double>& probs) noexcept {
  double h = 0.0;
  for (double p : probs) {
    if (p > 0.0) h -= p * std::log2(p);
  }
  return h;
}

double distribution_variance(const std::vector<int>& support,
                             const std::vector<double>& probs) {
  const double mu = distribution_mean(support, probs);
  double acc = 0.0;
  for (std::size_t i = 0; i < support.size(); ++i) {
    const double d = support[i] - mu;
    acc += probs[i] * d * d;
  }
  return acc;
}

double distribution_mean(const std::vector<int>& support,
                         const std::vector<double>& probs) {
  if (support.size() != probs.size())
    throw std::invalid_argument("distribution_mean: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < support.size(); ++i) acc += probs[i] * support[i];
  return acc;
}

}  // namespace reveal::num
