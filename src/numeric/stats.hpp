#pragma once
// Streaming and batch statistics used across the SCA toolkit.

#include <cmath>
#include <cstddef>
#include <iosfwd>
#include <vector>

#include "numeric/matrix.hpp"

namespace reveal::num {

/// Neumaier-compensated scalar accumulator: the compensation idiom of the
/// smoothing kernel in sca::smooth, packaged for reuse wherever a long
/// running sum must not drift (e.g. the DBDD log-volume over 10k+ hint
/// contributions). The running error term absorbs whichever addend loses
/// low bits; value() folds it back in.
class NeumaierSum {
 public:
  NeumaierSum() = default;
  explicit NeumaierSum(double initial) noexcept : sum_(initial) {}

  void add(double v) noexcept {
    const double t = sum_ + v;
    if (std::fabs(sum_) >= std::fabs(v)) {
      comp_ += (sum_ - t) + v;
    } else {
      comp_ += (v - t) + sum_;
    }
    sum_ = t;
  }

  [[nodiscard]] double value() const noexcept { return sum_ + comp_; }

 private:
  double sum_ = 0.0;
  double comp_ = 0.0;
};

/// Numerically stable streaming mean/variance (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Merges another accumulator into this one (parallel Welford).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Streaming per-dimension mean plus full covariance accumulation.
/// Feed vectors of identical dimension; query mean vector and the sample
/// covariance matrix at the end. Used to build power-trace templates.
class RunningCovariance {
 public:
  explicit RunningCovariance(std::size_t dim);

  void add(const std::vector<double>& x);

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] std::size_t dim() const noexcept { return mean_.size(); }
  [[nodiscard]] const std::vector<double>& mean() const noexcept { return mean_; }
  /// Sample covariance (n-1 denominator); zero matrix for < 2 samples.
  [[nodiscard]] Matrix covariance() const;
  /// Sum of outer products of deviations (useful for pooled covariance).
  [[nodiscard]] const Matrix& scatter() const noexcept { return scatter_; }

  /// Merges another accumulator into this one (pairwise/Chan update of mean
  /// and scatter). Statistically exact, but *not* bit-identical to streaming
  /// the same samples through add() — floating-point addition is not
  /// associative — so merge() suits throughput-oriented reductions while the
  /// byte-identical campaign paths replay add() in index order instead.
  void merge(const RunningCovariance& other);

  /// Exact binary snapshot of the accumulator state (count, mean, scatter).
  /// load() restores a bit-identical accumulator: resuming a checkpointed
  /// campaign continues the same floating-point trajectory as an unbroken
  /// run. Reads are bounds-checked (see numeric/binary_io.hpp).
  void save(std::ostream& out) const;
  [[nodiscard]] static RunningCovariance load(std::istream& in);

  friend bool operator==(const RunningCovariance& a, const RunningCovariance& b) {
    return a.count_ == b.count_ && a.mean_ == b.mean_ &&
           a.scatter_.data() == b.scatter_.data();
  }

 private:
  std::size_t count_ = 0;
  std::vector<double> mean_;
  Matrix scatter_;
  std::vector<double> delta_;  // scratch
};

/// Mean of a vector (0 for empty input).
double mean_of(const std::vector<double>& xs) noexcept;

/// Sample variance of a vector (0 for fewer than 2 samples).
double variance_of(const std::vector<double>& xs) noexcept;

/// Pearson correlation of two equally sized vectors; 0 if degenerate.
double pearson_correlation(const std::vector<double>& a, const std::vector<double>& b);

/// Fixed-width histogram over [lo, hi) with `bins` buckets; out-of-range
/// samples clamp into the first/last bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] double bin_center(std::size_t bin) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace reveal::num
