#pragma once
// Small dense linear-algebra substrate.
//
// Used by the template attack (pooled covariance, Mahalanobis/log-likelihood
// scoring) and by the full-matrix DBDD estimator. Row-major, double only —
// the dimensions involved (POI counts ~10-40, DBDD toy dims ~100) do not
// justify an external BLAS.

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace reveal::num {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// rows x cols matrix filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  /// Checked element access (throws std::out_of_range).
  [[nodiscard]] double& at(std::size_t r, std::size_t c);
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;

  [[nodiscard]] const std::vector<double>& data() const noexcept { return data_; }
  [[nodiscard]] std::vector<double>& data() noexcept { return data_; }

  /// n x n identity.
  static Matrix identity(std::size_t n);

  /// Square matrix with `diag` on the diagonal.
  static Matrix diagonal(const std::vector<double>& diag);

  Matrix transposed() const;
  Matrix operator*(const Matrix& rhs) const;
  Matrix operator+(const Matrix& rhs) const;
  Matrix operator-(const Matrix& rhs) const;
  Matrix& operator*=(double scalar);

  /// Matrix-vector product (v.size() must equal cols()).
  std::vector<double> apply(const std::vector<double>& v) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Result of a Cholesky factorization attempt.
struct CholeskyResult {
  Matrix lower;    ///< L with A = L * L^T (valid only if ok).
  bool ok = false; ///< false if A was not (numerically) positive definite.
};

/// Cholesky factorization of a symmetric positive-definite matrix.
CholeskyResult cholesky(const Matrix& a);

/// Solves A x = b given the Cholesky factor L of A.
std::vector<double> cholesky_solve(const Matrix& lower, const std::vector<double>& b);

/// log(det(A)) for SPD A via its Cholesky factor (throws if not SPD).
double log_det_spd(const Matrix& a);

/// Inverse of an SPD matrix via Cholesky (throws if not SPD).
Matrix invert_spd(const Matrix& a);

/// Adds `value` to every diagonal entry — ridge regularization for nearly
/// singular pooled covariance matrices.
void add_ridge(Matrix& a, double value);

/// Dot product (sizes must match).
double dot(const std::vector<double>& a, const std::vector<double>& b);

/// Euclidean norm.
double norm(const std::vector<double>& a);

}  // namespace reveal::num
