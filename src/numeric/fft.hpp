#pragma once
// Small radix-2 complex FFT over doubles, plus the linear cross-correlation
// built on it.
//
// The SEAL layer's NTTs (seal/ntt_fast) are modular transforms and cannot
// serve floating-point signal processing, so the analysis plane gets its own
// iterative Cooley-Tukey machinery: precomputed bit-reversal permutation and
// twiddle table, in-place butterflies, O(n log n). Used by sca/alignment to
// replace the O(L * lag) time-domain cross-correlation scan.

#include <complex>
#include <cstddef>
#include <vector>

namespace reveal::num {

/// Iterative radix-2 decimation-in-time FFT with precomputed twiddles.
/// One instance serves any number of transforms of the same size.
class Fft {
 public:
  /// `n` must be a power of two >= 1; throws std::invalid_argument otherwise.
  explicit Fft(std::size_t n);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  /// In-place forward DFT: X[k] = sum_j x[j] exp(-2*pi*i*j*k/n).
  void forward(std::complex<double>* data) const noexcept;
  /// In-place inverse DFT, including the 1/n scaling.
  void inverse(std::complex<double>* data) const noexcept;

  /// Smallest power of two >= n (and >= 1).
  [[nodiscard]] static std::size_t next_pow2(std::size_t n) noexcept;

 private:
  void transform(std::complex<double>* data, bool invert) const noexcept;

  std::size_t n_ = 0;
  std::vector<std::size_t> rev_;                 // bit-reversal permutation
  std::vector<std::complex<double>> twiddles_;   // exp(-2*pi*i*k/n), k < n/2
};

/// Full linear cross-correlation of two real sequences via zero-padded FFT:
/// out[d + (a.size() - 1)] = sum_i a[i] * b[i + d]
/// for every lag d in [-(a.size()-1), b.size()-1]. O((n_a+n_b) log(n_a+n_b)).
[[nodiscard]] std::vector<double> cross_correlation(const std::vector<double>& a,
                                                    const std::vector<double>& b);

/// The O(n_a * n_b) time-domain evaluation of the same quantity — the
/// differential anchor for cross_correlation's FFT path.
[[nodiscard]] std::vector<double> cross_correlation_reference(
    const std::vector<double>& a, const std::vector<double>& b);

}  // namespace reveal::num
