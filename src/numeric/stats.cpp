#include "numeric/stats.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "numeric/binary_io.hpp"

namespace reveal::num {

namespace {
// Section marker + plausibility cap for serialized accumulators. POI vectors
// are tens of dimensions; 2^12 leaves ample slack while keeping a corrupt
// dim field from sizing a dim^2 scatter allocation (<= 128 MiB of doubles).
constexpr std::uint32_t kRunningCovarianceMarker = 0x52'43'4F'56;  // "VOCR"
constexpr std::uint64_t kMaxSerializedDim = std::uint64_t{1} << 12;
}  // namespace

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(count_);
  const auto nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

RunningCovariance::RunningCovariance(std::size_t dim)
    : mean_(dim, 0.0), scatter_(dim, dim), delta_(dim, 0.0) {}

void RunningCovariance::add(const std::vector<double>& x) {
  if (x.size() != mean_.size())
    throw std::invalid_argument("RunningCovariance::add: dimension mismatch");
  ++count_;
  const double inv_n = 1.0 / static_cast<double>(count_);
  for (std::size_t i = 0; i < x.size(); ++i) {
    delta_[i] = x[i] - mean_[i];
    mean_[i] += delta_[i] * inv_n;
  }
  // scatter += delta_before * delta_after^T (Welford outer-product update).
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double after_i = x[i] - mean_[i];
    for (std::size_t j = 0; j < x.size(); ++j) {
      scatter_(i, j) += delta_[j] * after_i;
    }
  }
}

void RunningCovariance::merge(const RunningCovariance& other) {
  if (other.dim() != dim())
    throw std::invalid_argument("RunningCovariance::merge: dimension mismatch");
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(count_);
  const auto nb = static_cast<double>(other.count_);
  const double total = na + nb;
  // delta = mean_b - mean_a; scatter += scatter_b + (na*nb/total) delta delta^T
  for (std::size_t i = 0; i < mean_.size(); ++i) delta_[i] = other.mean_[i] - mean_[i];
  const double weight = na * nb / total;
  for (std::size_t i = 0; i < mean_.size(); ++i) {
    for (std::size_t j = 0; j < mean_.size(); ++j) {
      scatter_(i, j) += other.scatter_(i, j) + weight * delta_[i] * delta_[j];
    }
  }
  for (std::size_t i = 0; i < mean_.size(); ++i) mean_[i] += delta_[i] * nb / total;
  count_ += other.count_;
}

void RunningCovariance::save(std::ostream& out) const {
  io::write_pod<std::uint32_t>(out, kRunningCovarianceMarker);
  io::write_pod<std::uint64_t>(out, mean_.size());
  io::write_pod<std::uint64_t>(out, count_);
  io::write_vec(out, mean_);
  io::write_vec(out, scatter_.data());
}

RunningCovariance RunningCovariance::load(std::istream& in) {
  io::expect_marker(in, kRunningCovarianceMarker, "RunningCovariance");
  const auto dim = io::read_pod<std::uint64_t>(in);
  if (dim > kMaxSerializedDim)
    throw std::runtime_error("RunningCovariance::load: implausible dimension");
  RunningCovariance acc(static_cast<std::size_t>(dim));
  acc.count_ = static_cast<std::size_t>(io::read_pod<std::uint64_t>(in));
  acc.mean_ = io::read_vec<double>(in, dim);
  if (acc.mean_.size() != dim)
    throw std::runtime_error("RunningCovariance::load: mean size mismatch");
  acc.scatter_.data() = io::read_vec<double>(in, dim * dim);
  if (acc.scatter_.data().size() != dim * dim)
    throw std::runtime_error("RunningCovariance::load: scatter size mismatch");
  return acc;
}

Matrix RunningCovariance::covariance() const {
  Matrix cov = scatter_;
  if (count_ >= 2) cov *= 1.0 / static_cast<double>(count_ - 1);
  else cov *= 0.0;
  return cov;
}

double mean_of(const std::vector<double>& xs) noexcept {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double variance_of(const std::vector<double>& xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean_of(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double pearson_correlation(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size() || a.size() < 2)
    throw std::invalid_argument("pearson_correlation: size mismatch or too short");
  const double ma = mean_of(a);
  const double mb = mean_of(b);
  double num = 0.0, da = 0.0, db = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double xa = a[i] - ma;
    const double xb = b[i] - mb;
    num += xa * xb;
    da += xa * xa;
    db += xb * xb;
  }
  const double denom = std::sqrt(da * db);
  return denom > 0.0 ? num / denom : 0.0;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(hi > lo) || bins == 0)
    throw std::invalid_argument("Histogram: invalid range or zero bins");
}

void Histogram::add(double x) noexcept {
  const double t = (x - lo_) / (hi_ - lo_) * static_cast<double>(counts_.size());
  auto idx = static_cast<std::ptrdiff_t>(std::floor(t));
  idx = std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_center(std::size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(bin) + 0.5) * width;
}

}  // namespace reveal::num
