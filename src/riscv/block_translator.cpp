#include "riscv/block_translator.hpp"

#include <cstring>

#include "riscv/machine.hpp"

namespace reveal::riscv {

namespace {

/// Control transfers and halting instructions end a straight-line block.
/// (kFence and kCsrrs stay mid-block: they fall through, and a CSR trap
/// exits the block executor like any other faulting micro-op.)
[[nodiscard]] constexpr bool is_terminator(Op op) noexcept {
  switch (op) {
    case Op::kJal:
    case Op::kJalr:
    case Op::kBeq:
    case Op::kBne:
    case Op::kBlt:
    case Op::kBge:
    case Op::kBltu:
    case Op::kBgeu:
    case Op::kEcall:
    case Op::kEbreak:
      return true;
    default:
      return false;
  }
}

/// Pool size below which the cache never compacts (typical firmware
/// translates to well under this; only self-modification churn grows it).
constexpr std::size_t kCollectMinPool = 16384;

/// Fused-pair handler for two consecutive micro-ops of one block, or 0
/// (== Op::kLui, never a fused id) when the pair stays unfused. The fused
/// handlers forward a.rd's value in a register, so a.rd must be a real
/// destination; every pattern's second micro-op is branch- or ALU-class
/// (no memory access, no trap mid-pair).
[[nodiscard]] std::uint8_t fused_pair(const BlockInstr& a, const BlockInstr& b) noexcept {
  if (a.rd == 0) return 0;
  switch (a.op) {
    case Op::kLui:
      if (b.op == Op::kAddi) return kFuseLuiAddi;
      if (b.op == Op::kAdd) return kFuseLuiAdd;
      return 0;
    case Op::kAddi:
      if (b.op == Op::kAnd) return kFuseAddiAnd;
      if (b.op == Op::kAddi) return kFuseAddiAddi;
      if (b.op == Op::kBne) return kFuseAddiBne;
      return 0;
    case Op::kAdd:
      return b.op == Op::kAddi ? kFuseAddAddi : 0;
    case Op::kSub:
      return b.op == Op::kMul ? kFuseSubMul : 0;
    case Op::kSrai:
      return b.op == Op::kSrai ? kFuseSraiSrai : 0;
    case Op::kSlli:
      if (b.op == Op::kXor) return kFuseSlliXor;
      if (b.op == Op::kAdd) return kFuseSlliAdd;
      return 0;
    case Op::kSrli:
      return b.op == Op::kXor ? kFuseSrliXor : 0;
    case Op::kXor:
      if (b.op == Op::kSlli) return kFuseXorSlli;
      if (b.op == Op::kSrli) return kFuseXorSrli;
      if (b.op == Op::kSub) return kFuseXorSub;
      return 0;
    case Op::kAnd:
      return b.op == Op::kBgeu ? kFuseAndBgeu : 0;
    default:
      return 0;
  }
}

/// Canonical-dataflow check for kFuseXorshiftMask: that handler computes
/// the whole value chain in locals, so the register pattern of the classic
/// xorshift32 (t = s << a; s ^= t; ...) followed by li-mask-and-reject must
/// hold exactly, with the state, temp, mask and bound registers pairwise
/// compatible. Any other assignment falls back to the generic forwarding
/// idioms, which stay exact for arbitrary registers.
[[nodiscard]] bool xorshift_mask_canonical(const BlockInstr* o) noexcept {
  const std::uint8_t t = o[0].rd, s = o[1].rd, m = o[6].rd, x = o[8].rd;
  if (t == s || m == s) return false;
  if (o[0].rs1 != s) return false;
  if (o[1].rs1 != s || o[1].rs2 != t) return false;
  if (o[2].rd != t || o[2].rs1 != s) return false;
  if (o[3].rd != s || o[3].rs1 != s || o[3].rs2 != t) return false;
  if (o[4].rd != t || o[4].rs1 != s) return false;
  if (o[5].rd != s || o[5].rs1 != s || o[5].rs2 != t) return false;
  if (o[7].rd != m || o[7].rs1 != m) return false;
  if (o[8].rs1 != s || o[8].rs2 != m) return false;
  if (o[9].rs1 != x) return false;
  const std::uint8_t b = o[9].rs2;
  return b != t && b != s && b != m && b != x;
}

/// Canonical-dataflow check for kFuseAccBne (acc += x; i += step; bne i):
/// the loop counter must be self-incremented and distinct from the
/// accumulator, and the loop bound untouched by either.
[[nodiscard]] bool acc_bne_canonical(const BlockInstr* o) noexcept {
  const std::uint8_t a = o[0].rd, i = o[1].rd;
  if (i == a || o[1].rs1 != i) return false;
  if (o[2].rs1 != i) return false;
  return o[2].rs2 != a && o[2].rs2 != i;
}

/// Opcode-shape match for the multi-op idiom starting at ops[i] (with
/// count - i slots available), or 0. Every micro-op but the last must have
/// a real destination (the idiom handlers write through unconditionally).
[[nodiscard]] std::uint8_t fused_idiom(const BlockInstr* ops, std::uint32_t avail) noexcept {
  static constexpr Op kXorshiftMask[10] = {Op::kSlli, Op::kXor,  Op::kSrli, Op::kXor,
                                           Op::kSlli, Op::kXor,  Op::kLui,  Op::kAddi,
                                           Op::kAnd,  Op::kBgeu};
  static constexpr Op kXorshift[6] = {Op::kSlli, Op::kXor,  Op::kSrli,
                                      Op::kXor,  Op::kSlli, Op::kXor};
  static constexpr Op kMaskBgeu[4] = {Op::kLui, Op::kAddi, Op::kAnd, Op::kBgeu};
  static constexpr Op kAccBne[3] = {Op::kAdd, Op::kAddi, Op::kBne};
  static constexpr Op kSignFold[11] = {Op::kLui,  Op::kAddi, Op::kSub, Op::kMul,
                                       Op::kLui,  Op::kAdd,  Op::kSrai, Op::kSrai,
                                       Op::kXor,  Op::kSub,  Op::kBlt};
  static constexpr Op kSlliAddBlt[3] = {Op::kSlli, Op::kAdd, Op::kBlt};
  const auto matches = [ops, avail](const Op* shape, std::uint32_t len, bool last_writes) {
    if (avail < len) return false;
    for (std::uint32_t k = 0; k < len; ++k) {
      if (ops[k].op != shape[k]) return false;
      if ((last_writes || k + 1 < len) && ops[k].rd == 0) return false;
    }
    return true;
  };
  if (matches(kSignFold, 11, false)) return kFuseSignFold;
  if (matches(kXorshiftMask, 10, false) && xorshift_mask_canonical(ops)) {
    return kFuseXorshiftMask;
  }
  if (matches(kXorshift, 6, true)) return kFuseXorshift;
  if (matches(kMaskBgeu, 4, false)) return kFuseMaskBgeu;
  if (matches(kAccBne, 3, false) && acc_bne_canonical(ops)) return kFuseAccBne;
  if (matches(kSlliAddBlt, 3, false)) return kFuseSlliAddBlt;
  return 0;
}

/// Pool-slot footprint of a fused idiom id.
[[nodiscard]] constexpr std::uint32_t idiom_len(std::uint8_t idiom) noexcept {
  switch (idiom) {
    case kFuseSignFold: return 11;
    case kFuseXorshiftMask: return 10;
    case kFuseXorshift: return 6;
    case kFuseMaskBgeu: return 4;
    default: return 3;  // kFuseAccBne, kFuseSlliAddBlt
  }
}

[[nodiscard]] constexpr std::uint64_t pack_entry(std::size_t id, std::uint32_t first,
                                                 std::uint32_t count) noexcept {
  return (static_cast<std::uint64_t>(id) << 40) |
         (static_cast<std::uint64_t>(first) << 10) | count;
}

}  // namespace

void BlockCache::reset(std::uint32_t base, std::uint32_t end) {
  base_ = base;
  end_ = end;
  entry_.assign(end > base ? (end - base) >> 2 : 0, kNoBlock);
  pool_.clear();
  blocks_.clear();
  live_blocks_ = 0;
  dead_ops_ = 0;
}

void BlockCache::clear() noexcept {
  entry_.assign(entry_.size(), kNoBlock);
  pool_.clear();
  blocks_.clear();
  live_blocks_ = 0;
  dead_ops_ = 0;
}

void BlockCache::maybe_collect() noexcept {
  // Dropped blocks orphan their pool slots; flush everything once dead
  // micro-ops dominate a pool worth compacting. Never called while a block
  // executes (only from translate()), so no live BlockInstr pointer can
  // dangle.
  if (pool_.size() >= kCollectMinPool && dead_ops_ * 2 >= pool_.size()) clear();
}

std::uint64_t BlockCache::lookup_packed(std::uint32_t pc, const std::uint8_t* memory,
                                        const TimingModel& timing) {
  const std::uint64_t e = entry_[(pc - base_) >> 2];
  if (e != kNoBlock) return e;
  if (translate(pc, memory, timing) == nullptr) return kNoBlock;
  return entry_[(pc - base_) >> 2];
}

const TranslatedBlock* BlockCache::lookup(std::uint32_t pc, const std::uint8_t* memory,
                                          const TimingModel& timing) {
  const std::uint64_t e = entry_[(pc - base_) >> 2];
  if (e != kNoBlock) return &blocks_[static_cast<std::size_t>(e >> 40)];
  return translate(pc, memory, timing);
}

const TranslatedBlock* BlockCache::translate(std::uint32_t pc, const std::uint8_t* memory,
                                             const TimingModel& timing) {
  maybe_collect();
  const auto first = static_cast<std::uint32_t>(pool_.size());
  std::uint32_t count = 0;
  std::uint32_t cursor = pc;
  bool terminated = false;
  while (cursor < end_ && count < kMaxBlockLen) {
    std::uint32_t word;
    std::memcpy(&word, memory + cursor, 4);
    const Instruction ins = decode(word);
    if (ins.op == Op::kInvalid) break;  // undecodable word: block ends before it
    BlockInstr u;
    u.pc = cursor;
    u.imm = ins.imm;
    u.op = ins.op;
    u.klass = classify(ins.op);
    u.cycles_taken = timing.cycles_for(u.klass, true);
    u.cycles_not_taken = timing.cycles_for(u.klass, false);
    u.rd = ins.rd;
    u.rs1 = ins.rs1;
    u.rs2 = ins.rs2;
    u.h = static_cast<std::uint8_t>(ins.op);
    pool_.push_back(u);
    ++count;
    cursor += 4;
    if (is_terminator(ins.op)) {
      terminated = true;
      break;
    }
  }
  if (count == 0) {
    // The first word does not decode: no block starts here; the dispatcher
    // falls back to a single predecode-tier step, which raises the same
    // "illegal instruction" trap as the reference.
    return nullptr;
  }
  if (!terminated) {
    // Synthetic fallthrough exit: hands the pc back to the dispatcher at
    // the region boundary, an undecodable word, or the kMaxBlockLen cap.
    BlockInstr exit_op;
    exit_op.pc = cursor;
    pool_.push_back(exit_op);
  }
  // Peephole pass: greedily fuse multi-op idioms, then consecutive
  // dependent pairs (left to right, non-overlapping) by retargeting the
  // first slot's handler. The terminator may end a fused run; the exit
  // sentinel never does.
  if (count >= 2) {
    BlockInstr* ops = pool_.data() + first;
    for (std::uint32_t i = 0; i + 1 < count;) {
      if (const std::uint8_t idiom = fused_idiom(ops + i, count - i); idiom != 0) {
        const std::uint32_t len = idiom_len(idiom);
        ops[i].h = idiom;
        // Pre-sum the run's straight-line cost (all but the final micro-op)
        // into the first slot's otherwise-unused taken cost; see BlockInstr.
        std::uint32_t prefix = 0;
        for (std::uint32_t k = 0; k + 1 < len; ++k) prefix += ops[i + k].cycles_not_taken;
        ops[i].cycles_taken = prefix;
        i += len;
        continue;
      }
      const std::uint8_t fused = fused_pair(ops[i], ops[i + 1]);
      if (fused != 0) {
        ops[i].h = fused;
        i += 2;
      } else {
        ++i;
      }
    }
  }
  TranslatedBlock block;
  block.start_pc = pc;
  block.end_pc = cursor;
  block.first = first;
  block.count = count;
  block.valid = true;
  entry_[(pc - base_) >> 2] = pack_entry(blocks_.size(), first, count);
  blocks_.push_back(block);
  ++live_blocks_;
  return &blocks_.back();
}

void BlockCache::invalidate_word(std::uint32_t address) noexcept {
  if (live_blocks_ == 0 || address < base_ || address >= end_) return;
  for (TranslatedBlock& block : blocks_) {
    if (!block.valid || address < block.start_pc || address >= block.end_pc) continue;
    block.valid = false;
    entry_[(block.start_pc - base_) >> 2] = kNoBlock;
    --live_blocks_;
    dead_ops_ += block.count + 1;
  }
}

}  // namespace reveal::riscv
