#pragma once
// Basic-block translation cache: the top tier of the victim simulator's
// execution ladder (reference -> predecode -> block, DESIGN.md §6f).
//
// A translated block is a maximal straight-line instruction run starting at
// a jump/branch target and ending at the first control-transfer or system
// instruction (or the predecode-region boundary / the first undecodable
// word). Each block is translated once — decode, classify and both timing
// costs are resolved at translation time into a flat array of BlockInstr
// micro-ops — and then executed by Machine::exec_block's threaded dispatch
// loop without any per-instruction fetch, decode, cache-probe or budget
// checks. Stores into a block's word range drop the block (and the
// underlying predecode entry) back to the lower tiers; the next dispatch at
// its entry retranslates from current memory, so self-modifying code stays
// byte-identical to the decode-per-step reference.

#include <cstdint>
#include <vector>

#include "riscv/isa.hpp"

namespace reveal::riscv {

struct TimingModel;

/// Handler indices for the block executor's dispatch table: the Op value
/// itself for plain micro-ops, then translate-time fused instruction pairs
/// appended after the Op range. A fused pair occupies two pool slots (both
/// original BlockInstr records stay intact; only the first slot's handler
/// changes), so invalidation, instruction budgets, observer event streams
/// and the fallthrough-exit sentinel are untouched — one dispatch simply
/// retires two micro-ops, forwarding the first result to the second's
/// operands in a register. The patterns cover the dominant dependent pairs
/// of the sampler firmware (xorshift's shift->xor chain, li's lui->addi,
/// and the CLT loop's mask/accumulate/branch sequences).
enum : std::uint8_t {
  kHandlerFusedBase = static_cast<std::uint8_t>(Op::kInvalid) + 1,
  kFuseLuiAddi = kHandlerFusedBase,
  kFuseAddiAnd,
  kFuseAddiAddi,
  kFuseAddiBne,
  kFuseAddAddi,
  kFuseSlliXor,
  kFuseSrliXor,
  kFuseXorSlli,
  kFuseXorSrli,
  kFuseAndBgeu,
  kFuseSubMul,
  kFuseLuiAdd,
  kFuseSraiSrai,
  kFuseXorSub,
  kFuseSlliAdd,
  /// Multi-op idiom handlers (3-6 pool slots each): the xorshift32 step
  /// (slli,xor,srli,xor,slli,xor), the load-mask-and-reject sequence
  /// (lui,addi,and,bgeu) and the accumulate-and-loop back edge
  /// (add,addi,bne). Matched on opcode shape alone — register forwarding
  /// inside the handlers is index-checked, so any register assignment is
  /// executed exactly.
  kFuseXorshift,
  kFuseMaskBgeu,
  kFuseAccBne,
  /// The sampler's full rejection step — xorshift32 followed immediately by
  /// load-mask-and-reject (10 micro-ops, one dispatch). Dominates the
  /// victim instruction stream, so it gets its own handler rather than two
  /// chained idiom dispatches.
  kFuseXorshiftMask,
  /// The sampler's sign-fold epilogue (lui,addi,sub,mul,lui,add,srai,srai,
  /// xor,sub,blt) and its store-pointer advance (slli,add,blt): write-through
  /// straight-line runs with exact per-op events for any register pattern.
  kFuseSignFold,
  kFuseSlliAddBlt,
  kHandlerCount,
};

/// One translated micro-op: every field the block executor needs, resolved
/// at translation time so the dispatch loop does no decode/classify/timing
/// work per retirement.
struct BlockInstr {
  std::uint32_t pc = 0;
  std::int32_t imm = 0;
  /// For branch micro-ops, the taken-path cost. For the first slot of a
  /// multi-op idiom run (h >= kFuseXorshift), repurposed at translation
  /// time as the summed not-taken cost of every micro-op in the run except
  /// the last — non-branch ops never read their taken cost, so the idiom
  /// handlers accumulate the whole straight-line prefix with one load.
  std::uint32_t cycles_taken = 0;
  std::uint32_t cycles_not_taken = 0;
  /// Op::kInvalid marks the synthetic fallthrough-exit micro-op appended
  /// when a block ends at the region boundary or before an undecodable
  /// word (translated blocks never contain a real invalid instruction, so
  /// the slot is free); its pc is the next fetch address.
  Op op = Op::kInvalid;
  InstrClass klass = InstrClass::kSystem;
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  /// Dispatch-table index: == op for plain micro-ops, a kFuse* id when this
  /// slot starts a fused pair (the pair's second micro-op is the next slot).
  std::uint8_t h = static_cast<std::uint8_t>(Op::kInvalid);
};

/// One discovered straight-line block: a [first, first+count) run of
/// micro-ops in the cache's pool (count excludes the exit sentinel).
struct TranslatedBlock {
  std::uint32_t start_pc = 0;
  std::uint32_t end_pc = 0;  ///< one past the last translated program word
  std::uint32_t first = 0;   ///< pool index of the first micro-op
  std::uint32_t count = 0;   ///< executable micro-ops (sentinel excluded)
  bool valid = false;        ///< false once a store hit the block's range
};

class BlockCache {
 public:
  /// Longest straight-line run translated into one block; longer runs are
  /// chained through fallthrough-exit sentinels.
  static constexpr std::uint32_t kMaxBlockLen = 512;

  /// entry_packed() value meaning "no live block enters at this word".
  static constexpr std::uint64_t kNoBlock = ~0ULL;

  /// (Re)covers a word-aligned program region, dropping every block.
  void reset(std::uint32_t base, std::uint32_t end);

  /// Drops all blocks; the covered region is kept.
  void clear() noexcept;

  /// Packed descriptor of the live block entered at `pc` (word-aligned,
  /// inside the covered region), or kNoBlock: micro-op count in bits
  /// [0,10), pool index in bits [10,40), block id in bits [40,64). One
  /// inline load — the chain fast path of Machine::run_translated reaches
  /// the block's micro-ops without touching the TranslatedBlock record.
  [[nodiscard]] std::uint64_t entry_packed(std::uint32_t pc) const noexcept {
    return entry_[(pc - base_) >> 2];
  }
  [[nodiscard]] static constexpr std::uint64_t packed_count(std::uint64_t e) noexcept {
    return e & 0x3FFu;
  }
  [[nodiscard]] static constexpr std::uint64_t packed_first(std::uint64_t e) noexcept {
    return (e >> 10) & 0x3FFFFFFFu;
  }

  /// entry_packed(), translating the block from `memory` on first use.
  /// Returns kNoBlock when no block can start at pc (the first word does
  /// not decode). May reallocate the pool: re-fetch pool_data() after.
  [[nodiscard]] std::uint64_t lookup_packed(std::uint32_t pc, const std::uint8_t* memory,
                                            const TimingModel& timing);

  /// Base of the micro-op pool; stable until the next lookup_packed()/
  /// reset()/clear().
  [[nodiscard]] const BlockInstr* pool_data() const noexcept { return pool_.data(); }

  /// Base of the packed-entry table (indexed by (pc - base) >> 2); stable
  /// until the next reset() — invalidation and collection only overwrite
  /// entries in place, so a run loop can keep this pointer in a register.
  [[nodiscard]] const std::uint64_t* entry_data() const noexcept { return entry_.data(); }

  /// Already-translated block entered at `pc`, or nullptr (observability).
  [[nodiscard]] const TranslatedBlock* find(std::uint32_t pc) const noexcept {
    const std::uint64_t e = entry_[(pc - base_) >> 2];
    return e != kNoBlock ? blocks_.data() + (e >> 40) : nullptr;
  }

  /// The block entered at `pc` (word-aligned, inside the covered region),
  /// translating it from `memory` on first use. Returns nullptr when no
  /// block can start at pc (the first word does not decode). The pointer
  /// is invalidated by the next lookup()/reset()/clear().
  [[nodiscard]] const TranslatedBlock* lookup(std::uint32_t pc, const std::uint8_t* memory,
                                              const TimingModel& timing);

  [[nodiscard]] const BlockInstr* instrs(const TranslatedBlock& block) const noexcept {
    return pool_.data() + block.first;
  }

  /// Drops every block whose translated word range covers `address`
  /// (word-aligned store target). No-op outside the covered region.
  void invalidate_word(std::uint32_t address) noexcept;

  [[nodiscard]] bool covers(std::uint32_t pc) const noexcept {
    return pc >= base_ && pc < end_;
  }

  /// Live translated blocks (observability/tests).
  [[nodiscard]] std::size_t block_count() const noexcept { return live_blocks_; }

 private:
  const TranslatedBlock* translate(std::uint32_t pc, const std::uint8_t* memory,
                                   const TimingModel& timing);
  void maybe_collect() noexcept;

  std::uint32_t base_ = 0;
  std::uint32_t end_ = 0;
  std::vector<BlockInstr> pool_;
  std::vector<TranslatedBlock> blocks_;
  /// Per program word: packed {id, first, count} of the block *entered* at
  /// that word, or kNoBlock. Invalidation clears the entry, orphaning the
  /// pool slots until maybe_collect() flushes the cache.
  std::vector<std::uint64_t> entry_;
  std::size_t live_blocks_ = 0;
  std::size_t dead_ops_ = 0;
};

}  // namespace reveal::riscv
