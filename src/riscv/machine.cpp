#include "riscv/machine.hpp"

#include <cstring>
#include <stdexcept>

namespace reveal::riscv {

std::uint32_t TimingModel::cycles_for(InstrClass klass, bool taken) const noexcept {
  switch (klass) {
    case InstrClass::kAlu: return alu;
    case InstrClass::kAluImm: return alu_imm;
    case InstrClass::kLoad: return load;
    case InstrClass::kStore: return store;
    case InstrClass::kBranch: return taken ? branch_taken : branch_not_taken;
    case InstrClass::kJump: return jump;
    case InstrClass::kMul: return mul;
    case InstrClass::kDiv: return div;
    case InstrClass::kSystem: return system;
  }
  return system;
}

Machine::Machine(std::size_t memory_bytes, TimingModel timing)
    : memory_(memory_bytes, 0), timing_(timing) {}

void Machine::load_program(const std::vector<std::uint32_t>& words, std::uint32_t address) {
  if (!in_bounds(address, static_cast<std::uint32_t>(words.size() * 4)))
    throw std::out_of_range("Machine::load_program: program does not fit in memory");
  const auto bytes = static_cast<std::uint32_t>(words.size() * 4);
  // Unchanged reload: captures reload the same firmware before every run,
  // so when the exact program bytes already cover the cached region the
  // warm predecode entries and translated blocks stay valid (stores always
  // invalidate, so a valid entry can only describe current memory) — just
  // reset the pc instead of recopying and retranslating.
  if ((address & 3u) == 0 && !words.empty() && address == icache_base_ &&
      address + bytes == icache_end_ &&
      std::memcmp(memory_.data() + address, words.data(), bytes) == 0) {
    pc_ = address;
    return;
  }
  for (std::size_t i = 0; i < words.size(); ++i) {
    std::memcpy(memory_.data() + address + i * 4, &words[i], 4);
  }
  pc_ = address;
  // Cover the program region with the predecode cache. An unaligned base
  // cannot be word-indexed; execution there traps on fetch anyway.
  if ((address & 3u) == 0 && !words.empty()) {
    icache_base_ = address;
    icache_end_ = address + bytes;
    icache_.assign(words.size(), DecodedInstr{});
    if (predecode_) rebuild_icache();
  } else {
    icache_.clear();
    icache_base_ = icache_end_ = 0;
  }
  // Blocks translate lazily on first dispatch into the new region.
  block_cache_.reset(icache_base_, icache_end_);
}

void Machine::rebuild_icache() {
  for (std::size_t i = 0; i < icache_.size(); ++i) {
    std::uint32_t word;
    std::memcpy(&word, memory_.data() + icache_base_ + i * 4, 4);
    icache_[i] = make_entry(word);
  }
}

void Machine::set_predecode(bool enabled) {
  // Stores invalidate affected entries regardless of the current mode
  // (both predecode words and translated blocks), so a cached entry can
  // only ever be invalid or describe current memory — toggling tiers
  // mid-lifetime never executes stale decodes (pinned by the tier-toggle
  // regression tests in tests/test_fast_path.cpp). Rebuilding eagerly on
  // the off->on transition just front-loads the lazy refills; re-enabling
  // an already-enabled cache is free, so per-capture callers can set the
  // tier unconditionally.
  if (enabled && !predecode_ && !icache_.empty()) rebuild_icache();
  predecode_ = enabled;
}

std::uint32_t Machine::load_word(std::uint32_t address) const {
  if ((address & 3u) != 0 || !in_bounds(address, 4))
    throw std::out_of_range("Machine::load_word: bad address");
  std::uint32_t value;
  std::memcpy(&value, memory_.data() + address, 4);
  return value;
}

void Machine::store_word(std::uint32_t address, std::uint32_t value) {
  if ((address & 3u) != 0 || !in_bounds(address, 4))
    throw std::out_of_range("Machine::store_word: bad address");
  std::memcpy(memory_.data() + address, &value, 4);
  invalidate_icache_word(address);
}

void Machine::reset() noexcept {
  std::memset(regs_, 0, sizeof(regs_));
  pc_ = 0;
  cycles_ = 0;
  retired_ = 0;
  halted_ = false;
  trapped_ = false;
  trap_message_.clear();
}

bool Machine::trap(const std::string& message) {
  trapped_ = true;
  trap_message_ = message;
  return false;
}

Machine::StopReason Machine::run(std::uint64_t max_instructions,
                                 ExecutionObserver* observer) {
  if (observer == nullptr) {
    NullExecutionObserver null_observer;
    return run_with(max_instructions, null_observer);
  }
  return run_with(max_instructions, *observer);
}

Machine::StopReason Machine::run_reference(std::uint64_t max_instructions,
                                           ExecutionObserver* observer) {
  halted_ = false;
  trapped_ = false;
  for (std::uint64_t i = 0; i < max_instructions; ++i) {
    if (!step_impl<ExecutionObserver, /*kUseCache=*/false>(observer)) {
      return trapped_ ? StopReason::kTrap : StopReason::kHalt;
    }
  }
  return StopReason::kInstrLimit;
}

}  // namespace reveal::riscv
