#include "riscv/machine.hpp"

#include <cstring>
#include <stdexcept>

namespace reveal::riscv {

namespace {
__extension__ typedef __int128 i128;
__extension__ typedef unsigned __int128 u128;
}  // namespace

std::uint32_t TimingModel::cycles_for(InstrClass klass, bool taken) const noexcept {
  switch (klass) {
    case InstrClass::kAlu: return alu;
    case InstrClass::kAluImm: return alu_imm;
    case InstrClass::kLoad: return load;
    case InstrClass::kStore: return store;
    case InstrClass::kBranch: return taken ? branch_taken : branch_not_taken;
    case InstrClass::kJump: return jump;
    case InstrClass::kMul: return mul;
    case InstrClass::kDiv: return div;
    case InstrClass::kSystem: return system;
  }
  return system;
}

Machine::Machine(std::size_t memory_bytes, TimingModel timing)
    : memory_(memory_bytes, 0), timing_(timing) {}

void Machine::load_program(const std::vector<std::uint32_t>& words, std::uint32_t address) {
  if (!in_bounds(address, static_cast<std::uint32_t>(words.size() * 4)))
    throw std::out_of_range("Machine::load_program: program does not fit in memory");
  for (std::size_t i = 0; i < words.size(); ++i) {
    std::memcpy(memory_.data() + address + i * 4, &words[i], 4);
  }
  pc_ = address;
}

std::uint32_t Machine::load_word(std::uint32_t address) const {
  if ((address & 3u) != 0 || !in_bounds(address, 4))
    throw std::out_of_range("Machine::load_word: bad address");
  std::uint32_t value;
  std::memcpy(&value, memory_.data() + address, 4);
  return value;
}

void Machine::store_word(std::uint32_t address, std::uint32_t value) {
  if ((address & 3u) != 0 || !in_bounds(address, 4))
    throw std::out_of_range("Machine::store_word: bad address");
  std::memcpy(memory_.data() + address, &value, 4);
}

void Machine::reset() noexcept {
  std::memset(regs_, 0, sizeof(regs_));
  pc_ = 0;
  cycles_ = 0;
  retired_ = 0;
  halted_ = false;
  trapped_ = false;
  trap_message_.clear();
}

bool Machine::trap(const std::string& message) {
  trapped_ = true;
  trap_message_ = message;
  return false;
}

Machine::StopReason Machine::run(std::uint64_t max_instructions,
                                 ExecutionObserver* observer) {
  halted_ = false;
  trapped_ = false;
  for (std::uint64_t i = 0; i < max_instructions; ++i) {
    if (!step(observer)) {
      return trapped_ ? StopReason::kTrap : StopReason::kHalt;
    }
  }
  return StopReason::kInstrLimit;
}

bool Machine::step(ExecutionObserver* observer) {
  if ((pc_ & 3u) != 0 || !in_bounds(pc_, 4)) return trap("instruction fetch fault");
  std::uint32_t word;
  std::memcpy(&word, memory_.data() + pc_, 4);
  const Instruction ins = decode(word);
  if (ins.op == Op::kInvalid) return trap("illegal instruction");

  InstrEvent ev;
  ev.pc = pc_;
  ev.op = ins.op;
  ev.klass = classify(ins.op);
  ev.rd = ins.rd;
  ev.rs1_val = regs_[ins.rs1];
  ev.rs2_val = regs_[ins.rs2];

  const std::uint32_t rs1 = ev.rs1_val;
  const std::uint32_t rs2 = ev.rs2_val;
  const auto srs1 = static_cast<std::int32_t>(rs1);
  const auto srs2 = static_cast<std::int32_t>(rs2);
  std::uint32_t next_pc = pc_ + 4;
  std::uint32_t rd_value = 0;
  bool write_rd = false;

  auto mem_load = [&](std::uint32_t addr, std::uint32_t size, bool sign) -> bool {
    if (!in_bounds(addr, size) || (size > 1 && (addr & (size - 1)) != 0)) {
      trap("load access fault");
      return false;
    }
    std::uint32_t raw = 0;
    std::memcpy(&raw, memory_.data() + addr, size);
    if (sign) {
      if (size == 1) raw = static_cast<std::uint32_t>(static_cast<std::int8_t>(raw));
      else if (size == 2) raw = static_cast<std::uint32_t>(static_cast<std::int16_t>(raw));
    }
    rd_value = raw;
    write_rd = true;
    ev.mem_addr = addr;
    ev.mem_data = raw;
    ev.is_mem_read = true;
    return true;
  };

  auto mem_store = [&](std::uint32_t addr, std::uint32_t size) -> bool {
    if (!in_bounds(addr, size) || (size > 1 && (addr & (size - 1)) != 0)) {
      trap("store access fault");
      return false;
    }
    std::memcpy(memory_.data() + addr, &rs2, size);
    ev.mem_addr = addr;
    ev.mem_data = size == 4 ? rs2 : (rs2 & ((1u << (size * 8)) - 1u));
    ev.is_mem_write = true;
    return true;
  };

  switch (ins.op) {
    case Op::kLui: rd_value = static_cast<std::uint32_t>(ins.imm); write_rd = true; break;
    case Op::kAuipc:
      rd_value = pc_ + static_cast<std::uint32_t>(ins.imm);
      write_rd = true;
      break;
    case Op::kJal:
      rd_value = pc_ + 4;
      write_rd = true;
      next_pc = pc_ + static_cast<std::uint32_t>(ins.imm);
      break;
    case Op::kJalr:
      rd_value = pc_ + 4;
      write_rd = true;
      next_pc = (rs1 + static_cast<std::uint32_t>(ins.imm)) & ~1u;
      break;
    case Op::kBeq: ev.branch_taken = rs1 == rs2; break;
    case Op::kBne: ev.branch_taken = rs1 != rs2; break;
    case Op::kBlt: ev.branch_taken = srs1 < srs2; break;
    case Op::kBge: ev.branch_taken = srs1 >= srs2; break;
    case Op::kBltu: ev.branch_taken = rs1 < rs2; break;
    case Op::kBgeu: ev.branch_taken = rs1 >= rs2; break;
    case Op::kLb: if (!mem_load(rs1 + static_cast<std::uint32_t>(ins.imm), 1, true)) return false; break;
    case Op::kLh: if (!mem_load(rs1 + static_cast<std::uint32_t>(ins.imm), 2, true)) return false; break;
    case Op::kLw: if (!mem_load(rs1 + static_cast<std::uint32_t>(ins.imm), 4, false)) return false; break;
    case Op::kLbu: if (!mem_load(rs1 + static_cast<std::uint32_t>(ins.imm), 1, false)) return false; break;
    case Op::kLhu: if (!mem_load(rs1 + static_cast<std::uint32_t>(ins.imm), 2, false)) return false; break;
    case Op::kSb: if (!mem_store(rs1 + static_cast<std::uint32_t>(ins.imm), 1)) return false; break;
    case Op::kSh: if (!mem_store(rs1 + static_cast<std::uint32_t>(ins.imm), 2)) return false; break;
    case Op::kSw: if (!mem_store(rs1 + static_cast<std::uint32_t>(ins.imm), 4)) return false; break;
    case Op::kAddi: rd_value = rs1 + static_cast<std::uint32_t>(ins.imm); write_rd = true; break;
    case Op::kSlti: rd_value = srs1 < ins.imm ? 1 : 0; write_rd = true; break;
    case Op::kSltiu:
      rd_value = rs1 < static_cast<std::uint32_t>(ins.imm) ? 1 : 0;
      write_rd = true;
      break;
    case Op::kXori: rd_value = rs1 ^ static_cast<std::uint32_t>(ins.imm); write_rd = true; break;
    case Op::kOri: rd_value = rs1 | static_cast<std::uint32_t>(ins.imm); write_rd = true; break;
    case Op::kAndi: rd_value = rs1 & static_cast<std::uint32_t>(ins.imm); write_rd = true; break;
    case Op::kSlli: rd_value = rs1 << (ins.imm & 31); write_rd = true; break;
    case Op::kSrli: rd_value = rs1 >> (ins.imm & 31); write_rd = true; break;
    case Op::kSrai:
      rd_value = static_cast<std::uint32_t>(srs1 >> (ins.imm & 31));
      write_rd = true;
      break;
    case Op::kAdd: rd_value = rs1 + rs2; write_rd = true; break;
    case Op::kSub: rd_value = rs1 - rs2; write_rd = true; break;
    case Op::kSll: rd_value = rs1 << (rs2 & 31); write_rd = true; break;
    case Op::kSlt: rd_value = srs1 < srs2 ? 1 : 0; write_rd = true; break;
    case Op::kSltu: rd_value = rs1 < rs2 ? 1 : 0; write_rd = true; break;
    case Op::kXor: rd_value = rs1 ^ rs2; write_rd = true; break;
    case Op::kSrl: rd_value = rs1 >> (rs2 & 31); write_rd = true; break;
    case Op::kSra: rd_value = static_cast<std::uint32_t>(srs1 >> (rs2 & 31)); write_rd = true; break;
    case Op::kOr: rd_value = rs1 | rs2; write_rd = true; break;
    case Op::kAnd: rd_value = rs1 & rs2; write_rd = true; break;
    case Op::kMul:
      rd_value = static_cast<std::uint32_t>(static_cast<std::int64_t>(srs1) * srs2);
      write_rd = true;
      break;
    case Op::kMulh:
      rd_value = static_cast<std::uint32_t>(
          (static_cast<std::int64_t>(srs1) * static_cast<std::int64_t>(srs2)) >> 32);
      write_rd = true;
      break;
    case Op::kMulhsu:
      rd_value = static_cast<std::uint32_t>(
          (static_cast<i128>(srs1) * static_cast<i128>(rs2)) >> 32);
      write_rd = true;
      break;
    case Op::kMulhu:
      rd_value = static_cast<std::uint32_t>(
          (static_cast<std::uint64_t>(rs1) * static_cast<std::uint64_t>(rs2)) >> 32);
      write_rd = true;
      break;
    case Op::kDiv:
      if (rs2 == 0) rd_value = ~0u;
      else if (srs1 == INT32_MIN && srs2 == -1) rd_value = static_cast<std::uint32_t>(INT32_MIN);
      else rd_value = static_cast<std::uint32_t>(srs1 / srs2);
      write_rd = true;
      break;
    case Op::kDivu:
      rd_value = rs2 == 0 ? ~0u : rs1 / rs2;
      write_rd = true;
      break;
    case Op::kRem:
      if (rs2 == 0) rd_value = rs1;
      else if (srs1 == INT32_MIN && srs2 == -1) rd_value = 0;
      else rd_value = static_cast<std::uint32_t>(srs1 % srs2);
      write_rd = true;
      break;
    case Op::kRemu:
      rd_value = rs2 == 0 ? rs1 : rs1 % rs2;
      write_rd = true;
      break;
    case Op::kFence: break;
    case Op::kCsrrs: {
      // Zicntr: rdcycle (0xC00), rdinstret (0xC02) and their high halves.
      if (ins.rs1 != 0) return trap("unsupported CSR write");
      const auto csr = static_cast<std::uint32_t>(ins.imm) & 0xFFFu;
      std::uint64_t value = 0;
      switch (csr) {
        case 0xC00: value = cycles_; break;                // cycle
        case 0xC02: value = retired_; break;               // instret
        case 0xC80: value = cycles_ >> 32; break;          // cycleh
        case 0xC82: value = retired_ >> 32; break;         // instreth
        default: return trap("unsupported CSR");
      }
      rd_value = static_cast<std::uint32_t>(value);
      write_rd = true;
      break;
    }
    case Op::kEcall:
    case Op::kEbreak:
      halted_ = true;
      break;
    case Op::kInvalid:
      return trap("illegal instruction");
  }

  if (ev.branch_taken) next_pc = pc_ + static_cast<std::uint32_t>(ins.imm);

  if (write_rd && ins.rd != 0) {
    ev.rd_old = regs_[ins.rd];
    regs_[ins.rd] = rd_value;
    ev.rd_new = rd_value;
    ev.rd_written = true;
  }

  ev.cycles = timing_.cycles_for(ev.klass, ev.branch_taken);
  cycles_ += ev.cycles;
  ++retired_;
  pc_ = next_pc;
  if (observer != nullptr) observer->on_instruction(ev);
  return !halted_;
}

}  // namespace reveal::riscv
