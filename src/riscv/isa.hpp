#pragma once
// RV32IM instruction-set definitions shared by the assembler, decoder and
// executor.

#include <cstdint>
#include <string>
#include <string_view>

namespace reveal::riscv {

/// Architectural register names (ABI aliases).
enum class Reg : std::uint8_t {
  x0 = 0, x1, x2, x3, x4, x5, x6, x7, x8, x9, x10, x11, x12, x13, x14, x15,
  x16, x17, x18, x19, x20, x21, x22, x23, x24, x25, x26, x27, x28, x29, x30, x31,
};

// ABI aliases.
inline constexpr Reg zero = Reg::x0;
inline constexpr Reg ra = Reg::x1;
inline constexpr Reg sp = Reg::x2;
inline constexpr Reg gp = Reg::x3;
inline constexpr Reg tp = Reg::x4;
inline constexpr Reg t0 = Reg::x5;
inline constexpr Reg t1 = Reg::x6;
inline constexpr Reg t2 = Reg::x7;
inline constexpr Reg s0 = Reg::x8;
inline constexpr Reg s1 = Reg::x9;
inline constexpr Reg a0 = Reg::x10;
inline constexpr Reg a1 = Reg::x11;
inline constexpr Reg a2 = Reg::x12;
inline constexpr Reg a3 = Reg::x13;
inline constexpr Reg a4 = Reg::x14;
inline constexpr Reg a5 = Reg::x15;
inline constexpr Reg a6 = Reg::x16;
inline constexpr Reg a7 = Reg::x17;
inline constexpr Reg s2 = Reg::x18;
inline constexpr Reg s3 = Reg::x19;
inline constexpr Reg s4 = Reg::x20;
inline constexpr Reg s5 = Reg::x21;
inline constexpr Reg s6 = Reg::x22;
inline constexpr Reg s7 = Reg::x23;
inline constexpr Reg s8 = Reg::x24;
inline constexpr Reg s9 = Reg::x25;
inline constexpr Reg s10 = Reg::x26;
inline constexpr Reg s11 = Reg::x27;
inline constexpr Reg t3 = Reg::x28;
inline constexpr Reg t4 = Reg::x29;
inline constexpr Reg t5 = Reg::x30;
inline constexpr Reg t6 = Reg::x31;

[[nodiscard]] constexpr std::uint8_t index(Reg r) noexcept {
  return static_cast<std::uint8_t>(r);
}

/// Fully decoded operations.
enum class Op : std::uint8_t {
  kLui, kAuipc, kJal, kJalr,
  kBeq, kBne, kBlt, kBge, kBltu, kBgeu,
  kLb, kLh, kLw, kLbu, kLhu,
  kSb, kSh, kSw,
  kAddi, kSlti, kSltiu, kXori, kOri, kAndi, kSlli, kSrli, kSrai,
  kAdd, kSub, kSll, kSlt, kSltu, kXor, kSrl, kSra, kOr, kAnd,
  kMul, kMulh, kMulhsu, kMulhu, kDiv, kDivu, kRem, kRemu,
  kFence, kEcall, kEbreak,
  kCsrrs,  // Zicntr counter reads (rdcycle/rdinstret)
  kInvalid,
};

/// Coarse instruction classes used by the timing and power models.
enum class InstrClass : std::uint8_t {
  kAlu,      // register-register ALU
  kAluImm,   // register-immediate ALU (incl. LUI/AUIPC)
  kLoad,
  kStore,
  kBranch,
  kJump,     // JAL/JALR
  kMul,
  kDiv,
  kSystem,   // FENCE/ECALL/EBREAK
};

/// Decoded instruction fields.
struct Instruction {
  Op op = Op::kInvalid;
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  std::int32_t imm = 0;
  std::uint32_t raw = 0;
};

/// Decodes a raw 32-bit word; Op::kInvalid on undefined encodings.
[[nodiscard]] Instruction decode(std::uint32_t word) noexcept;

/// Instruction class of an op (used by timing/power models).
[[nodiscard]] InstrClass classify(Op op) noexcept;

/// Mnemonic for diagnostics.
[[nodiscard]] std::string_view mnemonic(Op op) noexcept;

/// ABI register name ("a0", "t3", ...).
[[nodiscard]] std::string_view reg_name(std::uint8_t reg) noexcept;

/// Human-readable disassembly, e.g. "addi a0, a1, -7" or
/// "lw t0, 12(sp)". Branch/jump targets are printed as relative offsets.
[[nodiscard]] std::string disassemble(const Instruction& ins);

/// Decodes and disassembles a raw word.
[[nodiscard]] std::string disassemble(std::uint32_t word);

}  // namespace reveal::riscv
