#include "riscv/assembler.hpp"

#include <stdexcept>

namespace reveal::riscv {

namespace {

std::uint32_t r_type(std::uint32_t funct7, Reg rs2, Reg rs1, std::uint32_t funct3, Reg rd,
                     std::uint32_t opcode) {
  return (funct7 << 25) | (std::uint32_t{index(rs2)} << 20) |
         (std::uint32_t{index(rs1)} << 15) | (funct3 << 12) |
         (std::uint32_t{index(rd)} << 7) | opcode;
}

std::uint32_t i_type(std::int32_t imm, Reg rs1, std::uint32_t funct3, Reg rd,
                     std::uint32_t opcode) {
  if (imm < -2048 || imm > 2047)
    throw std::runtime_error("Assembler: I-type immediate out of range");
  return (static_cast<std::uint32_t>(imm & 0xFFF) << 20) |
         (std::uint32_t{index(rs1)} << 15) | (funct3 << 12) |
         (std::uint32_t{index(rd)} << 7) | opcode;
}

std::uint32_t s_type(std::int32_t imm, Reg rs2, Reg rs1, std::uint32_t funct3,
                     std::uint32_t opcode) {
  if (imm < -2048 || imm > 2047)
    throw std::runtime_error("Assembler: S-type immediate out of range");
  const auto u = static_cast<std::uint32_t>(imm & 0xFFF);
  return ((u >> 5) << 25) | (std::uint32_t{index(rs2)} << 20) |
         (std::uint32_t{index(rs1)} << 15) | (funct3 << 12) | ((u & 0x1F) << 7) | opcode;
}

std::uint32_t b_type(std::int32_t offset, Reg rs1, Reg rs2, std::uint32_t funct3) {
  if (offset < -4096 || offset > 4094 || (offset & 1))
    throw std::runtime_error("Assembler: branch offset out of range or misaligned");
  const auto u = static_cast<std::uint32_t>(offset);
  return (((u >> 12) & 1) << 31) | (((u >> 5) & 0x3F) << 25) |
         (std::uint32_t{index(rs2)} << 20) | (std::uint32_t{index(rs1)} << 15) |
         (funct3 << 12) | (((u >> 1) & 0xF) << 8) | (((u >> 11) & 1) << 7) | 0x63u;
}

std::uint32_t j_type(std::int32_t offset, Reg rd) {
  if (offset < -(1 << 20) || offset >= (1 << 20) || (offset & 1))
    throw std::runtime_error("Assembler: JAL offset out of range or misaligned");
  const auto u = static_cast<std::uint32_t>(offset);
  return (((u >> 20) & 1) << 31) | (((u >> 1) & 0x3FF) << 21) | (((u >> 11) & 1) << 20) |
         (((u >> 12) & 0xFF) << 12) | (std::uint32_t{index(rd)} << 7) | 0x6Fu;
}

std::uint32_t u_type(std::uint32_t imm20, Reg rd, std::uint32_t opcode) {
  if (imm20 > 0xFFFFFu) throw std::runtime_error("Assembler: U-type immediate out of range");
  return (imm20 << 12) | (std::uint32_t{index(rd)} << 7) | opcode;
}

}  // namespace

void Assembler::label(const std::string& name) {
  if (!labels_.emplace(name, here()).second)
    throw std::runtime_error("Assembler: duplicate label '" + name + "'");
}

std::uint32_t Assembler::address_of(const std::string& name) const {
  const auto it = labels_.find(name);
  if (it == labels_.end())
    throw std::runtime_error("Assembler: unknown label '" + name + "'");
  return it->second;
}

void Assembler::lui(Reg rd, std::uint32_t imm20) { emit(u_type(imm20, rd, 0x37)); }
void Assembler::auipc(Reg rd, std::uint32_t imm20) { emit(u_type(imm20, rd, 0x17)); }

void Assembler::jal(Reg rd, const std::string& target) {
  fixups_.push_back({words_.size(), target, FixupKind::kJal});
  emit(j_type(0, rd));
}

void Assembler::jalr(Reg rd, Reg rs1, std::int32_t imm) {
  emit(i_type(imm, rs1, 0, rd, 0x67));
}

#define REVEAL_BRANCH(NAME, F3)                                            \
  void Assembler::NAME(Reg rs1, Reg rs2, const std::string& target) {      \
    fixups_.push_back({words_.size(), target, FixupKind::kBranch});        \
    emit(b_type(0, rs1, rs2, F3));                                         \
  }
REVEAL_BRANCH(beq, 0)
REVEAL_BRANCH(bne, 1)
REVEAL_BRANCH(blt, 4)
REVEAL_BRANCH(bge, 5)
REVEAL_BRANCH(bltu, 6)
REVEAL_BRANCH(bgeu, 7)
#undef REVEAL_BRANCH

void Assembler::lb(Reg rd, std::int32_t offset, Reg base) { emit(i_type(offset, base, 0, rd, 0x03)); }
void Assembler::lh(Reg rd, std::int32_t offset, Reg base) { emit(i_type(offset, base, 1, rd, 0x03)); }
void Assembler::lw(Reg rd, std::int32_t offset, Reg base) { emit(i_type(offset, base, 2, rd, 0x03)); }
void Assembler::lbu(Reg rd, std::int32_t offset, Reg base) { emit(i_type(offset, base, 4, rd, 0x03)); }
void Assembler::lhu(Reg rd, std::int32_t offset, Reg base) { emit(i_type(offset, base, 5, rd, 0x03)); }
void Assembler::sb(Reg rs2_, std::int32_t offset, Reg base) { emit(s_type(offset, rs2_, base, 0, 0x23)); }
void Assembler::sh(Reg rs2_, std::int32_t offset, Reg base) { emit(s_type(offset, rs2_, base, 1, 0x23)); }
void Assembler::sw(Reg rs2_, std::int32_t offset, Reg base) { emit(s_type(offset, rs2_, base, 2, 0x23)); }

void Assembler::addi(Reg rd, Reg rs1, std::int32_t imm) { emit(i_type(imm, rs1, 0, rd, 0x13)); }
void Assembler::slti(Reg rd, Reg rs1, std::int32_t imm) { emit(i_type(imm, rs1, 2, rd, 0x13)); }
void Assembler::sltiu(Reg rd, Reg rs1, std::int32_t imm) { emit(i_type(imm, rs1, 3, rd, 0x13)); }
void Assembler::xori(Reg rd, Reg rs1, std::int32_t imm) { emit(i_type(imm, rs1, 4, rd, 0x13)); }
void Assembler::ori(Reg rd, Reg rs1, std::int32_t imm) { emit(i_type(imm, rs1, 6, rd, 0x13)); }
void Assembler::andi(Reg rd, Reg rs1, std::int32_t imm) { emit(i_type(imm, rs1, 7, rd, 0x13)); }

void Assembler::slli(Reg rd, Reg rs1, std::uint32_t shamt) {
  if (shamt > 31) throw std::runtime_error("Assembler: shift amount out of range");
  emit(r_type(0x00, static_cast<Reg>(shamt), rs1, 1, rd, 0x13));
}
void Assembler::srli(Reg rd, Reg rs1, std::uint32_t shamt) {
  if (shamt > 31) throw std::runtime_error("Assembler: shift amount out of range");
  emit(r_type(0x00, static_cast<Reg>(shamt), rs1, 5, rd, 0x13));
}
void Assembler::srai(Reg rd, Reg rs1, std::uint32_t shamt) {
  if (shamt > 31) throw std::runtime_error("Assembler: shift amount out of range");
  emit(r_type(0x20, static_cast<Reg>(shamt), rs1, 5, rd, 0x13));
}

void Assembler::add(Reg rd, Reg rs1, Reg rs2_) { emit(r_type(0x00, rs2_, rs1, 0, rd, 0x33)); }
void Assembler::sub(Reg rd, Reg rs1, Reg rs2_) { emit(r_type(0x20, rs2_, rs1, 0, rd, 0x33)); }
void Assembler::sll(Reg rd, Reg rs1, Reg rs2_) { emit(r_type(0x00, rs2_, rs1, 1, rd, 0x33)); }
void Assembler::slt(Reg rd, Reg rs1, Reg rs2_) { emit(r_type(0x00, rs2_, rs1, 2, rd, 0x33)); }
void Assembler::sltu(Reg rd, Reg rs1, Reg rs2_) { emit(r_type(0x00, rs2_, rs1, 3, rd, 0x33)); }
void Assembler::xor_(Reg rd, Reg rs1, Reg rs2_) { emit(r_type(0x00, rs2_, rs1, 4, rd, 0x33)); }
void Assembler::srl(Reg rd, Reg rs1, Reg rs2_) { emit(r_type(0x00, rs2_, rs1, 5, rd, 0x33)); }
void Assembler::sra(Reg rd, Reg rs1, Reg rs2_) { emit(r_type(0x20, rs2_, rs1, 5, rd, 0x33)); }
void Assembler::or_(Reg rd, Reg rs1, Reg rs2_) { emit(r_type(0x00, rs2_, rs1, 6, rd, 0x33)); }
void Assembler::and_(Reg rd, Reg rs1, Reg rs2_) { emit(r_type(0x00, rs2_, rs1, 7, rd, 0x33)); }

void Assembler::mul(Reg rd, Reg rs1, Reg rs2_) { emit(r_type(0x01, rs2_, rs1, 0, rd, 0x33)); }
void Assembler::mulh(Reg rd, Reg rs1, Reg rs2_) { emit(r_type(0x01, rs2_, rs1, 1, rd, 0x33)); }
void Assembler::mulhsu(Reg rd, Reg rs1, Reg rs2_) { emit(r_type(0x01, rs2_, rs1, 2, rd, 0x33)); }
void Assembler::mulhu(Reg rd, Reg rs1, Reg rs2_) { emit(r_type(0x01, rs2_, rs1, 3, rd, 0x33)); }
void Assembler::div(Reg rd, Reg rs1, Reg rs2_) { emit(r_type(0x01, rs2_, rs1, 4, rd, 0x33)); }
void Assembler::divu(Reg rd, Reg rs1, Reg rs2_) { emit(r_type(0x01, rs2_, rs1, 5, rd, 0x33)); }
void Assembler::rem(Reg rd, Reg rs1, Reg rs2_) { emit(r_type(0x01, rs2_, rs1, 6, rd, 0x33)); }
void Assembler::remu(Reg rd, Reg rs1, Reg rs2_) { emit(r_type(0x01, rs2_, rs1, 7, rd, 0x33)); }

void Assembler::ecall() { emit(0x00000073u); }
void Assembler::ebreak() { emit(0x00100073u); }

void Assembler::csrr(Reg rd, std::uint32_t csr) {
  if (csr > 0xFFFu) throw std::runtime_error("Assembler: CSR address out of range");
  emit((csr << 20) | (2u << 12) | (std::uint32_t{index(rd)} << 7) | 0x73u);
}

void Assembler::li(Reg rd, std::int32_t value) {
  if (value >= -2048 && value <= 2047) {
    addi(rd, zero, value);
    return;
  }
  // lui + addi with carry correction: addi sign-extends its 12-bit imm, so
  // round the upper part up when bit 11 of the low part is set.
  const auto uvalue = static_cast<std::uint32_t>(value);
  std::uint32_t hi = uvalue >> 12;
  const std::int32_t lo = static_cast<std::int32_t>(uvalue << 20) >> 20;
  if (lo < 0) hi = (hi + 1) & 0xFFFFFu;
  lui(rd, hi);
  if (lo != 0) addi(rd, rd, lo);
}

void Assembler::la(Reg rd, const std::string& target) {
  fixups_.push_back({words_.size(), target, FixupKind::kLaAuipc});
  emit(u_type(0, rd, 0x17));  // auipc rd, 0 (patched)
  fixups_.push_back({words_.size(), target, FixupKind::kLaAddi});
  emit(i_type(0, rd, 0, rd, 0x13));  // addi rd, rd, 0 (patched)
}

void Assembler::word(std::uint32_t value) { emit(value); }

std::vector<std::uint32_t> Assembler::assemble() {
  for (const Fixup& fx : fixups_) {
    const std::uint32_t target = address_of(fx.target);
    const std::uint32_t pc = base_ + static_cast<std::uint32_t>(fx.word_index * 4);
    std::uint32_t w = words_[fx.word_index];
    switch (fx.kind) {
      case FixupKind::kBranch: {
        const auto offset = static_cast<std::int32_t>(target - pc);
        const Instruction ins = decode(w);
        w = b_type(offset, static_cast<Reg>(ins.rs1), static_cast<Reg>(ins.rs2),
                   (w >> 12) & 7u);
        break;
      }
      case FixupKind::kJal: {
        const auto offset = static_cast<std::int32_t>(target - pc);
        w = j_type(offset, static_cast<Reg>((w >> 7) & 0x1Fu));
        break;
      }
      case FixupKind::kLaAuipc: {
        // auipc part of la: offset relative to the auipc itself.
        const auto offset = static_cast<std::int32_t>(target - pc);
        const auto uoff = static_cast<std::uint32_t>(offset);
        std::uint32_t hi = uoff >> 12;
        const std::int32_t lo = static_cast<std::int32_t>(uoff << 20) >> 20;
        if (lo < 0) hi = (hi + 1) & 0xFFFFFu;
        w = (hi << 12) | (w & 0xFFFu);
        break;
      }
      case FixupKind::kLaAddi: {
        // addi part of la: low 12 bits relative to the preceding auipc.
        const std::uint32_t auipc_pc = pc - 4;
        const auto offset = static_cast<std::int32_t>(target - auipc_pc);
        const std::int32_t lo = static_cast<std::int32_t>(static_cast<std::uint32_t>(offset) << 20) >> 20;
        w = (w & 0x000FFFFFu) | (static_cast<std::uint32_t>(lo & 0xFFF) << 20);
        break;
      }
    }
    words_[fx.word_index] = w;
  }
  return words_;
}

}  // namespace reveal::riscv
