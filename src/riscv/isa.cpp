#include "riscv/isa.hpp"

namespace reveal::riscv {

namespace {

constexpr std::uint32_t bits(std::uint32_t w, int hi, int lo) noexcept {
  return (w >> lo) & ((1u << (hi - lo + 1)) - 1u);
}

constexpr std::int32_t sign_extend(std::uint32_t v, int width) noexcept {
  const std::uint32_t m = 1u << (width - 1);
  return static_cast<std::int32_t>((v ^ m) - m);
}

std::int32_t imm_i(std::uint32_t w) noexcept { return sign_extend(bits(w, 31, 20), 12); }

std::int32_t imm_s(std::uint32_t w) noexcept {
  return sign_extend((bits(w, 31, 25) << 5) | bits(w, 11, 7), 12);
}

std::int32_t imm_b(std::uint32_t w) noexcept {
  const std::uint32_t v = (bits(w, 31, 31) << 12) | (bits(w, 7, 7) << 11) |
                          (bits(w, 30, 25) << 5) | (bits(w, 11, 8) << 1);
  return sign_extend(v, 13);
}

std::int32_t imm_u(std::uint32_t w) noexcept {
  return static_cast<std::int32_t>(w & 0xFFFFF000u);
}

std::int32_t imm_j(std::uint32_t w) noexcept {
  const std::uint32_t v = (bits(w, 31, 31) << 20) | (bits(w, 19, 12) << 12) |
                          (bits(w, 20, 20) << 11) | (bits(w, 30, 21) << 1);
  return sign_extend(v, 21);
}

}  // namespace

Instruction decode(std::uint32_t word) noexcept {
  Instruction ins;
  ins.raw = word;
  ins.rd = static_cast<std::uint8_t>(bits(word, 11, 7));
  ins.rs1 = static_cast<std::uint8_t>(bits(word, 19, 15));
  ins.rs2 = static_cast<std::uint8_t>(bits(word, 24, 20));
  const std::uint32_t opcode = bits(word, 6, 0);
  const std::uint32_t funct3 = bits(word, 14, 12);
  const std::uint32_t funct7 = bits(word, 31, 25);

  switch (opcode) {
    case 0x37:  // LUI
      ins.op = Op::kLui;
      ins.imm = imm_u(word);
      return ins;
    case 0x17:  // AUIPC
      ins.op = Op::kAuipc;
      ins.imm = imm_u(word);
      return ins;
    case 0x6F:  // JAL
      ins.op = Op::kJal;
      ins.imm = imm_j(word);
      return ins;
    case 0x67:  // JALR
      if (funct3 != 0) break;
      ins.op = Op::kJalr;
      ins.imm = imm_i(word);
      return ins;
    case 0x63:  // branches
      ins.imm = imm_b(word);
      switch (funct3) {
        case 0: ins.op = Op::kBeq; return ins;
        case 1: ins.op = Op::kBne; return ins;
        case 4: ins.op = Op::kBlt; return ins;
        case 5: ins.op = Op::kBge; return ins;
        case 6: ins.op = Op::kBltu; return ins;
        case 7: ins.op = Op::kBgeu; return ins;
        default: break;
      }
      break;
    case 0x03:  // loads
      ins.imm = imm_i(word);
      switch (funct3) {
        case 0: ins.op = Op::kLb; return ins;
        case 1: ins.op = Op::kLh; return ins;
        case 2: ins.op = Op::kLw; return ins;
        case 4: ins.op = Op::kLbu; return ins;
        case 5: ins.op = Op::kLhu; return ins;
        default: break;
      }
      break;
    case 0x23:  // stores
      ins.imm = imm_s(word);
      switch (funct3) {
        case 0: ins.op = Op::kSb; return ins;
        case 1: ins.op = Op::kSh; return ins;
        case 2: ins.op = Op::kSw; return ins;
        default: break;
      }
      break;
    case 0x13:  // ALU immediate
      ins.imm = imm_i(word);
      switch (funct3) {
        case 0: ins.op = Op::kAddi; return ins;
        case 2: ins.op = Op::kSlti; return ins;
        case 3: ins.op = Op::kSltiu; return ins;
        case 4: ins.op = Op::kXori; return ins;
        case 6: ins.op = Op::kOri; return ins;
        case 7: ins.op = Op::kAndi; return ins;
        case 1:
          if (funct7 == 0) {
            ins.op = Op::kSlli;
            ins.imm = static_cast<std::int32_t>(ins.rs2);
            return ins;
          }
          break;
        case 5:
          if (funct7 == 0) {
            ins.op = Op::kSrli;
            ins.imm = static_cast<std::int32_t>(ins.rs2);
            return ins;
          }
          if (funct7 == 0x20) {
            ins.op = Op::kSrai;
            ins.imm = static_cast<std::int32_t>(ins.rs2);
            return ins;
          }
          break;
        default: break;
      }
      break;
    case 0x33:  // ALU register / M extension
      if (funct7 == 0x01) {
        switch (funct3) {
          case 0: ins.op = Op::kMul; return ins;
          case 1: ins.op = Op::kMulh; return ins;
          case 2: ins.op = Op::kMulhsu; return ins;
          case 3: ins.op = Op::kMulhu; return ins;
          case 4: ins.op = Op::kDiv; return ins;
          case 5: ins.op = Op::kDivu; return ins;
          case 6: ins.op = Op::kRem; return ins;
          case 7: ins.op = Op::kRemu; return ins;
          default: break;
        }
        break;
      }
      switch (funct3) {
        case 0:
          if (funct7 == 0) { ins.op = Op::kAdd; return ins; }
          if (funct7 == 0x20) { ins.op = Op::kSub; return ins; }
          break;
        case 1: if (funct7 == 0) { ins.op = Op::kSll; return ins; } break;
        case 2: if (funct7 == 0) { ins.op = Op::kSlt; return ins; } break;
        case 3: if (funct7 == 0) { ins.op = Op::kSltu; return ins; } break;
        case 4: if (funct7 == 0) { ins.op = Op::kXor; return ins; } break;
        case 5:
          if (funct7 == 0) { ins.op = Op::kSrl; return ins; }
          if (funct7 == 0x20) { ins.op = Op::kSra; return ins; }
          break;
        case 6: if (funct7 == 0) { ins.op = Op::kOr; return ins; } break;
        case 7: if (funct7 == 0) { ins.op = Op::kAnd; return ins; } break;
        default: break;
      }
      break;
    case 0x0F:  // FENCE
      ins.op = Op::kFence;
      return ins;
    case 0x73:  // SYSTEM
      if (word == 0x00000073u) { ins.op = Op::kEcall; return ins; }
      if (word == 0x00100073u) { ins.op = Op::kEbreak; return ins; }
      if (funct3 == 2) {  // CSRRS (read-only counter reads only)
        ins.op = Op::kCsrrs;
        ins.imm = static_cast<std::int32_t>(bits(word, 31, 20));  // CSR address
        return ins;
      }
      break;
    default:
      break;
  }
  ins.op = Op::kInvalid;
  return ins;
}

InstrClass classify(Op op) noexcept {
  switch (op) {
    case Op::kLui: case Op::kAuipc:
    case Op::kAddi: case Op::kSlti: case Op::kSltiu: case Op::kXori:
    case Op::kOri: case Op::kAndi: case Op::kSlli: case Op::kSrli: case Op::kSrai:
      return InstrClass::kAluImm;
    case Op::kAdd: case Op::kSub: case Op::kSll: case Op::kSlt: case Op::kSltu:
    case Op::kXor: case Op::kSrl: case Op::kSra: case Op::kOr: case Op::kAnd:
      return InstrClass::kAlu;
    case Op::kLb: case Op::kLh: case Op::kLw: case Op::kLbu: case Op::kLhu:
      return InstrClass::kLoad;
    case Op::kSb: case Op::kSh: case Op::kSw:
      return InstrClass::kStore;
    case Op::kBeq: case Op::kBne: case Op::kBlt: case Op::kBge:
    case Op::kBltu: case Op::kBgeu:
      return InstrClass::kBranch;
    case Op::kJal: case Op::kJalr:
      return InstrClass::kJump;
    case Op::kMul: case Op::kMulh: case Op::kMulhsu: case Op::kMulhu:
      return InstrClass::kMul;
    case Op::kDiv: case Op::kDivu: case Op::kRem: case Op::kRemu:
      return InstrClass::kDiv;
    default:
      return InstrClass::kSystem;
  }
}

std::string_view mnemonic(Op op) noexcept {
  switch (op) {
    case Op::kLui: return "lui";
    case Op::kAuipc: return "auipc";
    case Op::kJal: return "jal";
    case Op::kJalr: return "jalr";
    case Op::kBeq: return "beq";
    case Op::kBne: return "bne";
    case Op::kBlt: return "blt";
    case Op::kBge: return "bge";
    case Op::kBltu: return "bltu";
    case Op::kBgeu: return "bgeu";
    case Op::kLb: return "lb";
    case Op::kLh: return "lh";
    case Op::kLw: return "lw";
    case Op::kLbu: return "lbu";
    case Op::kLhu: return "lhu";
    case Op::kSb: return "sb";
    case Op::kSh: return "sh";
    case Op::kSw: return "sw";
    case Op::kAddi: return "addi";
    case Op::kSlti: return "slti";
    case Op::kSltiu: return "sltiu";
    case Op::kXori: return "xori";
    case Op::kOri: return "ori";
    case Op::kAndi: return "andi";
    case Op::kSlli: return "slli";
    case Op::kSrli: return "srli";
    case Op::kSrai: return "srai";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kSll: return "sll";
    case Op::kSlt: return "slt";
    case Op::kSltu: return "sltu";
    case Op::kXor: return "xor";
    case Op::kSrl: return "srl";
    case Op::kSra: return "sra";
    case Op::kOr: return "or";
    case Op::kAnd: return "and";
    case Op::kMul: return "mul";
    case Op::kMulh: return "mulh";
    case Op::kMulhsu: return "mulhsu";
    case Op::kMulhu: return "mulhu";
    case Op::kDiv: return "div";
    case Op::kDivu: return "divu";
    case Op::kRem: return "rem";
    case Op::kRemu: return "remu";
    case Op::kFence: return "fence";
    case Op::kCsrrs: return "csrrs";
    case Op::kEcall: return "ecall";
    case Op::kEbreak: return "ebreak";
    case Op::kInvalid: return "invalid";
  }
  return "?";
}


std::string_view reg_name(std::uint8_t reg) noexcept {
  static constexpr std::string_view kNames[32] = {
      "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0",
      "a1",   "a2", "a3", "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5",
      "s6",   "s7", "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6"};
  return reg < 32 ? kNames[reg] : "x?";
}

std::string disassemble(const Instruction& ins) {
  const std::string rd{reg_name(ins.rd)};
  const std::string rs1{reg_name(ins.rs1)};
  const std::string rs2{reg_name(ins.rs2)};
  const std::string imm = std::to_string(ins.imm);
  const std::string m{mnemonic(ins.op)};
  switch (classify(ins.op)) {
    case InstrClass::kAlu:
    case InstrClass::kMul:
    case InstrClass::kDiv:
      return m + " " + rd + ", " + rs1 + ", " + rs2;
    case InstrClass::kAluImm:
      if (ins.op == Op::kLui || ins.op == Op::kAuipc) {
        return m + " " + rd + ", " +
               std::to_string(static_cast<std::uint32_t>(ins.imm) >> 12);
      }
      return m + " " + rd + ", " + rs1 + ", " + imm;
    case InstrClass::kLoad:
      return m + " " + rd + ", " + imm + "(" + rs1 + ")";
    case InstrClass::kStore:
      return m + " " + rs2 + ", " + imm + "(" + rs1 + ")";
    case InstrClass::kBranch:
      return m + " " + rs1 + ", " + rs2 + ", pc" + (ins.imm >= 0 ? "+" : "") + imm;
    case InstrClass::kJump:
      if (ins.op == Op::kJal)
        return m + " " + rd + ", pc" + (ins.imm >= 0 ? "+" : "") + imm;
      return m + " " + rd + ", " + imm + "(" + rs1 + ")";
    case InstrClass::kSystem:
      return m;
  }
  return m;
}

std::string disassemble(std::uint32_t word) { return disassemble(decode(word)); }

}  // namespace reveal::riscv
