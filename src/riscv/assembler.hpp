#pragma once
// Two-pass RV32IM mini-assembler.
//
// Programs are built through typed emit methods (one per instruction plus
// the usual pseudo-instructions); labels are resolved when `assemble()` is
// called. Data words can be interleaved for lookup tables. This is how the
// victim Gaussian-sampler firmware is authored (src/core/victim.cpp).

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "riscv/isa.hpp"

namespace reveal::riscv {

class Assembler {
 public:
  /// Base address the program will be loaded at (labels are absolute).
  explicit Assembler(std::uint32_t base_address = 0) : base_(base_address) {}

  /// Current emission address.
  [[nodiscard]] std::uint32_t here() const noexcept {
    return base_ + static_cast<std::uint32_t>(words_.size() * 4);
  }

  /// Defines a label at the current address; throws on redefinition.
  void label(const std::string& name);
  /// Address of a defined label; throws if (not yet) defined.
  [[nodiscard]] std::uint32_t address_of(const std::string& name) const;

  // --- U/J-type ---
  void lui(Reg rd, std::uint32_t imm20);  // imm20 = upper 20 bits value
  void auipc(Reg rd, std::uint32_t imm20);
  void jal(Reg rd, const std::string& target);
  void jalr(Reg rd, Reg rs1, std::int32_t imm);

  // --- branches (to labels) ---
  void beq(Reg rs1, Reg rs2, const std::string& target);
  void bne(Reg rs1, Reg rs2, const std::string& target);
  void blt(Reg rs1, Reg rs2, const std::string& target);
  void bge(Reg rs1, Reg rs2, const std::string& target);
  void bltu(Reg rs1, Reg rs2, const std::string& target);
  void bgeu(Reg rs1, Reg rs2, const std::string& target);

  // --- loads/stores ---
  void lb(Reg rd, std::int32_t offset, Reg base);
  void lh(Reg rd, std::int32_t offset, Reg base);
  void lw(Reg rd, std::int32_t offset, Reg base);
  void lbu(Reg rd, std::int32_t offset, Reg base);
  void lhu(Reg rd, std::int32_t offset, Reg base);
  void sb(Reg rs2, std::int32_t offset, Reg base);
  void sh(Reg rs2, std::int32_t offset, Reg base);
  void sw(Reg rs2, std::int32_t offset, Reg base);

  // --- ALU immediate ---
  void addi(Reg rd, Reg rs1, std::int32_t imm);
  void slti(Reg rd, Reg rs1, std::int32_t imm);
  void sltiu(Reg rd, Reg rs1, std::int32_t imm);
  void xori(Reg rd, Reg rs1, std::int32_t imm);
  void ori(Reg rd, Reg rs1, std::int32_t imm);
  void andi(Reg rd, Reg rs1, std::int32_t imm);
  void slli(Reg rd, Reg rs1, std::uint32_t shamt);
  void srli(Reg rd, Reg rs1, std::uint32_t shamt);
  void srai(Reg rd, Reg rs1, std::uint32_t shamt);

  // --- ALU register ---
  void add(Reg rd, Reg rs1, Reg rs2);
  void sub(Reg rd, Reg rs1, Reg rs2);
  void sll(Reg rd, Reg rs1, Reg rs2);
  void slt(Reg rd, Reg rs1, Reg rs2);
  void sltu(Reg rd, Reg rs1, Reg rs2);
  void xor_(Reg rd, Reg rs1, Reg rs2);
  void srl(Reg rd, Reg rs1, Reg rs2);
  void sra(Reg rd, Reg rs1, Reg rs2);
  void or_(Reg rd, Reg rs1, Reg rs2);
  void and_(Reg rd, Reg rs1, Reg rs2);

  // --- M extension ---
  void mul(Reg rd, Reg rs1, Reg rs2);
  void mulh(Reg rd, Reg rs1, Reg rs2);
  void mulhsu(Reg rd, Reg rs1, Reg rs2);
  void mulhu(Reg rd, Reg rs1, Reg rs2);
  void div(Reg rd, Reg rs1, Reg rs2);
  void divu(Reg rd, Reg rs1, Reg rs2);
  void rem(Reg rd, Reg rs1, Reg rs2);
  void remu(Reg rd, Reg rs1, Reg rs2);

  // --- system ---
  void ecall();
  void ebreak();
  /// csrrs rd, csr, x0 — read-only counter access (Zicntr).
  void csrr(Reg rd, std::uint32_t csr);
  void rdcycle(Reg rd) { csrr(rd, 0xC00); }
  void rdinstret(Reg rd) { csrr(rd, 0xC02); }

  // --- pseudo-instructions ---
  void nop() { addi(zero, zero, 0); }
  void mv(Reg rd, Reg rs) { addi(rd, rs, 0); }
  void neg(Reg rd, Reg rs) { sub(rd, zero, rs); }
  void li(Reg rd, std::int32_t value);  // lui+addi or addi
  void j(const std::string& target) { jal(zero, target); }
  void call(const std::string& target) { jal(ra, target); }
  void ret() { jalr(zero, ra, 0); }
  void bgtz(Reg rs, const std::string& target) { blt(zero, rs, target); }
  void bltz(Reg rs, const std::string& target) { blt(rs, zero, target); }
  void beqz(Reg rs, const std::string& target) { beq(rs, zero, target); }
  void bnez(Reg rs, const std::string& target) { bne(rs, zero, target); }
  /// Loads the address of a label (must resolve within ±2^31).
  void la(Reg rd, const std::string& target);

  /// Emits a raw data word (for constant tables placed after the code).
  void word(std::uint32_t value);

  /// Resolves all fixups and returns the final words; throws
  /// std::runtime_error on undefined labels or out-of-range displacements.
  [[nodiscard]] std::vector<std::uint32_t> assemble();

 private:
  enum class FixupKind { kBranch, kJal, kLaAuipc, kLaAddi };
  struct Fixup {
    std::size_t word_index;
    std::string target;
    FixupKind kind;
  };

  void emit(std::uint32_t w) { words_.push_back(w); }

  std::uint32_t base_;
  std::vector<std::uint32_t> words_;
  std::unordered_map<std::string, std::uint32_t> labels_;
  std::vector<Fixup> fixups_;
};

}  // namespace reveal::riscv
