#pragma once
// RV32IM instruction-set simulator with a PicoRV32-style multi-cycle timing
// model and an observer hook that reports per-instruction micro-architectural
// activity (register/bus toggles) — the raw material for the power model.
//
// Hot path: load_program() predecodes the program region into a cache of
// decoded instructions (class and cycle costs included), so the execute loop
// skips decode()/classify()/cycles_for() per retirement. Stores into the
// program region invalidate the affected cache word, and invalidated words
// re-decode lazily on the next fetch, so self-modifying code behaves exactly
// like the decode-per-step reference (pinned by the differential fuzz in
// tests/test_fast_path.cpp). run_with() additionally binds the observer
// statically, eliminating the virtual dispatch of run() — with a
// NullExecutionObserver the event construction folds away entirely.
//
// Above the predecode cache sits the basic-block translation tier
// (block_translator.hpp, DESIGN.md §6f): straight-line blocks are
// translated once into flat micro-op runs and executed by a threaded
// dispatch loop (exec_block) that checks the instruction budget once per
// block entry, keeps cycle/retired counters in registers, and statically
// inlines the observer. A store into a translated block's word range drops
// the block back to the predecode tier through the same invalidation
// machinery. Every tier produces byte-identical InstrEvent streams and
// machine state; run_reference() remains the decode-per-step anchor.

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "riscv/block_translator.hpp"
#include "riscv/isa.hpp"

namespace reveal::riscv {

/// Per-instruction cycle costs. Defaults approximate the PicoRV32 "regular"
/// configuration (non-pipelined fetch/decode/execute, sequential
/// multiplier) used by the paper's victim at 1.5 MHz.
struct TimingModel {
  std::uint32_t alu = 3;
  std::uint32_t alu_imm = 3;
  std::uint32_t load = 5;
  std::uint32_t store = 5;
  std::uint32_t branch_not_taken = 3;
  std::uint32_t branch_taken = 5;
  std::uint32_t jump = 5;
  std::uint32_t mul = 35;  // bit-serial multiplier
  std::uint32_t div = 40;  // bit-serial divider
  std::uint32_t system = 3;

  [[nodiscard]] std::uint32_t cycles_for(InstrClass klass, bool branch_taken) const noexcept;
};

/// Everything the power model needs to know about one retired instruction.
struct InstrEvent {
  std::uint32_t pc = 0;
  Op op = Op::kInvalid;
  InstrClass klass = InstrClass::kSystem;
  std::uint8_t rd = 0;
  std::uint32_t rs1_val = 0;
  std::uint32_t rs2_val = 0;
  std::uint32_t rd_old = 0;      ///< destination register content before write
  std::uint32_t rd_new = 0;      ///< destination register content after write
  bool rd_written = false;
  bool branch_taken = false;
  std::uint32_t mem_addr = 0;
  std::uint32_t mem_data = 0;    ///< written (stores) or read (loads) value
  bool is_mem_read = false;
  bool is_mem_write = false;
  std::uint32_t cycles = 0;      ///< from the timing model
};

/// Receives one callback per retired instruction.
class ExecutionObserver {
 public:
  virtual ~ExecutionObserver() = default;
  virtual void on_instruction(const InstrEvent& event) = 0;
};

/// Statically-dispatched no-op observer for run_with(): the inlined empty
/// callback lets the compiler discard the whole InstrEvent construction.
struct NullExecutionObserver {
  void on_instruction(const InstrEvent&) noexcept {}
};

class Machine {
 public:
  enum class StopReason { kHalt, kInstrLimit, kTrap };

  explicit Machine(std::size_t memory_bytes = 256 * 1024,
                   TimingModel timing = TimingModel{});

  /// Copies program words to `address`, sets the pc there, and (when
  /// predecoding is enabled) rebuilds the decoded-instruction cache over
  /// the program region.
  void load_program(const std::vector<std::uint32_t>& words, std::uint32_t address = 0);

  [[nodiscard]] std::uint32_t reg(Reg r) const noexcept { return regs_[index(r)]; }
  void set_reg(Reg r, std::uint32_t value) noexcept {
    if (r != zero) regs_[index(r)] = value;
  }
  [[nodiscard]] std::uint32_t pc() const noexcept { return pc_; }
  void set_pc(std::uint32_t pc) noexcept { pc_ = pc; }

  /// Word-aligned direct memory access for the host (throws on OOB). Host
  /// stores into the program region invalidate the predecode cache word.
  [[nodiscard]] std::uint32_t load_word(std::uint32_t address) const;
  void store_word(std::uint32_t address, std::uint32_t value);

  /// Executes until EBREAK/ECALL, the instruction limit, or a trap.
  /// Dispatches the observer virtually; a null observer takes the fused
  /// no-observer fast path.
  StopReason run(std::uint64_t max_instructions, ExecutionObserver* observer = nullptr);

  /// Fused run loop: the observer callback binds statically (no virtual
  /// dispatch per retirement). Semantics are identical to run() — same
  /// InstrEvent stream, cycles, and trap behaviour.
  template <typename ObserverT>
  StopReason run_with(std::uint64_t max_instructions, ObserverT& observer) {
    halted_ = false;
    trapped_ = false;
    if (predecode_ && block_tier_ && !icache_.empty()) {
      return run_translated(max_instructions, observer);
    }
    for (std::uint64_t i = 0; i < max_instructions; ++i) {
      if (!step_impl(&observer)) {
        return trapped_ ? StopReason::kTrap : StopReason::kHalt;
      }
    }
    return StopReason::kInstrLimit;
  }

  /// Decode-per-step reference loop (the pre-predecode execution path):
  /// ignores the instruction cache and dispatches the observer virtually.
  /// Kept as the anchor for the differential fuzz tests and as the
  /// benchmark baseline; produces byte-identical results to run()/run_with().
  StopReason run_reference(std::uint64_t max_instructions,
                           ExecutionObserver* observer = nullptr);

  /// Enables/disables the predecoded-instruction fast path (default on).
  /// Disabling decodes every fetched word from memory again, like the
  /// reference loop; re-enabling rebuilds the cache from current memory.
  void set_predecode(bool enabled);
  [[nodiscard]] bool predecode_enabled() const noexcept { return predecode_; }

  /// Enables/disables the basic-block translation tier (default on). The
  /// block tier sits above the predecode cache and is only active while
  /// predecoding is enabled; disabling it falls back to the per-step
  /// predecode dispatch. Translated blocks are kept across toggles — store
  /// invalidation runs regardless of mode, so they can never go stale.
  void set_block_tier(bool enabled) noexcept { block_tier_ = enabled; }
  [[nodiscard]] bool block_tier_enabled() const noexcept { return block_tier_; }

  /// Live translated blocks (observability/tests).
  [[nodiscard]] std::size_t translated_block_count() const noexcept {
    return block_cache_.block_count();
  }

  [[nodiscard]] std::uint64_t cycle_count() const noexcept { return cycles_; }
  [[nodiscard]] std::uint64_t retired_count() const noexcept { return retired_; }
  [[nodiscard]] const std::string& trap_message() const noexcept { return trap_message_; }
  [[nodiscard]] const TimingModel& timing() const noexcept { return timing_; }

  /// Resets registers, pc and counters (memory and the predecode cache are
  /// preserved).
  void reset() noexcept;

 private:
  /// One predecoded program word: the decoded instruction plus everything
  /// the execute loop would otherwise recompute per retirement.
  struct DecodedInstr {
    Instruction ins{};
    InstrClass klass = InstrClass::kSystem;
    std::uint32_t cycles_taken = 0;
    std::uint32_t cycles_not_taken = 0;
    bool valid = false;
  };

  [[nodiscard]] bool in_bounds(std::uint32_t address, std::uint32_t size) const noexcept {
    return static_cast<std::uint64_t>(address) + size <= memory_.size();
  }
  bool trap(const std::string& message);

  [[nodiscard]] DecodedInstr make_entry(std::uint32_t word) const noexcept {
    DecodedInstr d;
    d.ins = decode(word);
    d.valid = true;
    if (d.ins.op != Op::kInvalid) {
      d.klass = classify(d.ins.op);
      d.cycles_taken = timing_.cycles_for(d.klass, true);
      d.cycles_not_taken = timing_.cycles_for(d.klass, false);
    }
    return d;
  }

  /// Drops the cache entry covering a stored-to program word, and every
  /// translated block whose range covers it (no-op when the address is
  /// outside the cached region).
  void invalidate_icache_word(std::uint32_t address) noexcept {
    if (!icache_.empty() && address >= icache_base_ && address < icache_end_) {
      icache_[(address - icache_base_) >> 2].valid = false;
      block_cache_.invalidate_word(address);
    }
  }

  void rebuild_icache();

  /// Executes one instruction; returns false to stop (halt or trap).
  /// `kUseCache = false` forces the decode-per-step reference behaviour.
  template <typename ObserverT, bool kUseCache = true>
  bool step_impl(ObserverT* observer);

  /// Block-tier run loop: a threaded interpreter over translated blocks.
  /// Block terminators chain straight into the next block's micro-ops
  /// (budget checked once per block entry, counters live in registers
  /// across blocks); unaligned/out-of-region pcs, untranslatable words and
  /// the precise budget tail fall back to single predecode-tier steps.
  template <typename ObserverT>
  StopReason run_translated(std::uint64_t max_instructions, ObserverT& observer);

  std::vector<std::uint8_t> memory_;
  std::uint32_t regs_[32] = {};
  std::uint32_t pc_ = 0;
  std::uint64_t cycles_ = 0;
  std::uint64_t retired_ = 0;
  bool halted_ = false;
  bool trapped_ = false;
  std::string trap_message_;
  TimingModel timing_;
  std::vector<DecodedInstr> icache_;
  std::uint32_t icache_base_ = 0;  ///< byte address of icache_[0] (word aligned)
  std::uint32_t icache_end_ = 0;   ///< one past the cached byte range
  bool predecode_ = true;
  BlockCache block_cache_;
  bool block_tier_ = true;
};

namespace detail {
__extension__ typedef __int128 machine_i128;
}  // namespace detail

template <typename ObserverT, bool kUseCache>
bool Machine::step_impl(ObserverT* observer) {
  if ((pc_ & 3u) != 0 || !in_bounds(pc_, 4)) return trap("instruction fetch fault");
  Instruction ins;
  InstrClass klass;
  std::uint32_t cyc_taken;
  std::uint32_t cyc_not_taken;
  if (kUseCache && predecode_ && pc_ >= icache_base_ && pc_ < icache_end_) {
    DecodedInstr& entry = icache_[(pc_ - icache_base_) >> 2];
    if (!entry.valid) {
      std::uint32_t word;
      std::memcpy(&word, memory_.data() + pc_, 4);
      entry = make_entry(word);
    }
    ins = entry.ins;
    if (ins.op == Op::kInvalid) return trap("illegal instruction");
    klass = entry.klass;
    cyc_taken = entry.cycles_taken;
    cyc_not_taken = entry.cycles_not_taken;
  } else {
    std::uint32_t word;
    std::memcpy(&word, memory_.data() + pc_, 4);
    ins = decode(word);
    if (ins.op == Op::kInvalid) return trap("illegal instruction");
    klass = classify(ins.op);
    cyc_taken = timing_.cycles_for(klass, true);
    cyc_not_taken = timing_.cycles_for(klass, false);
  }

  InstrEvent ev;
  ev.pc = pc_;
  ev.op = ins.op;
  ev.klass = klass;
  ev.rd = ins.rd;
  ev.rs1_val = regs_[ins.rs1];
  ev.rs2_val = regs_[ins.rs2];

  const std::uint32_t rs1 = ev.rs1_val;
  const std::uint32_t rs2 = ev.rs2_val;
  const auto srs1 = static_cast<std::int32_t>(rs1);
  const auto srs2 = static_cast<std::int32_t>(rs2);
  std::uint32_t next_pc = pc_ + 4;
  std::uint32_t rd_value = 0;
  bool write_rd = false;

  auto mem_load = [&](std::uint32_t addr, std::uint32_t size, bool sign) -> bool {
    if (!in_bounds(addr, size) || (size > 1 && (addr & (size - 1)) != 0)) {
      trap("load access fault");
      return false;
    }
    std::uint32_t raw = 0;
    std::memcpy(&raw, memory_.data() + addr, size);
    if (sign) {
      if (size == 1) raw = static_cast<std::uint32_t>(static_cast<std::int8_t>(raw));
      else if (size == 2) raw = static_cast<std::uint32_t>(static_cast<std::int16_t>(raw));
    }
    rd_value = raw;
    write_rd = true;
    ev.mem_addr = addr;
    ev.mem_data = raw;
    ev.is_mem_read = true;
    return true;
  };

  auto mem_store = [&](std::uint32_t addr, std::uint32_t size) -> bool {
    if (!in_bounds(addr, size) || (size > 1 && (addr & (size - 1)) != 0)) {
      trap("store access fault");
      return false;
    }
    std::memcpy(memory_.data() + addr, &rs2, size);
    invalidate_icache_word(addr);
    ev.mem_addr = addr;
    ev.mem_data = size == 4 ? rs2 : (rs2 & ((1u << (size * 8)) - 1u));
    ev.is_mem_write = true;
    return true;
  };

  switch (ins.op) {
    case Op::kLui: rd_value = static_cast<std::uint32_t>(ins.imm); write_rd = true; break;
    case Op::kAuipc:
      rd_value = pc_ + static_cast<std::uint32_t>(ins.imm);
      write_rd = true;
      break;
    case Op::kJal:
      rd_value = pc_ + 4;
      write_rd = true;
      next_pc = pc_ + static_cast<std::uint32_t>(ins.imm);
      break;
    case Op::kJalr:
      rd_value = pc_ + 4;
      write_rd = true;
      next_pc = (rs1 + static_cast<std::uint32_t>(ins.imm)) & ~1u;
      break;
    case Op::kBeq: ev.branch_taken = rs1 == rs2; break;
    case Op::kBne: ev.branch_taken = rs1 != rs2; break;
    case Op::kBlt: ev.branch_taken = srs1 < srs2; break;
    case Op::kBge: ev.branch_taken = srs1 >= srs2; break;
    case Op::kBltu: ev.branch_taken = rs1 < rs2; break;
    case Op::kBgeu: ev.branch_taken = rs1 >= rs2; break;
    case Op::kLb: if (!mem_load(rs1 + static_cast<std::uint32_t>(ins.imm), 1, true)) return false; break;
    case Op::kLh: if (!mem_load(rs1 + static_cast<std::uint32_t>(ins.imm), 2, true)) return false; break;
    case Op::kLw: if (!mem_load(rs1 + static_cast<std::uint32_t>(ins.imm), 4, false)) return false; break;
    case Op::kLbu: if (!mem_load(rs1 + static_cast<std::uint32_t>(ins.imm), 1, false)) return false; break;
    case Op::kLhu: if (!mem_load(rs1 + static_cast<std::uint32_t>(ins.imm), 2, false)) return false; break;
    case Op::kSb: if (!mem_store(rs1 + static_cast<std::uint32_t>(ins.imm), 1)) return false; break;
    case Op::kSh: if (!mem_store(rs1 + static_cast<std::uint32_t>(ins.imm), 2)) return false; break;
    case Op::kSw: if (!mem_store(rs1 + static_cast<std::uint32_t>(ins.imm), 4)) return false; break;
    case Op::kAddi: rd_value = rs1 + static_cast<std::uint32_t>(ins.imm); write_rd = true; break;
    case Op::kSlti: rd_value = srs1 < ins.imm ? 1 : 0; write_rd = true; break;
    case Op::kSltiu:
      rd_value = rs1 < static_cast<std::uint32_t>(ins.imm) ? 1 : 0;
      write_rd = true;
      break;
    case Op::kXori: rd_value = rs1 ^ static_cast<std::uint32_t>(ins.imm); write_rd = true; break;
    case Op::kOri: rd_value = rs1 | static_cast<std::uint32_t>(ins.imm); write_rd = true; break;
    case Op::kAndi: rd_value = rs1 & static_cast<std::uint32_t>(ins.imm); write_rd = true; break;
    case Op::kSlli: rd_value = rs1 << (ins.imm & 31); write_rd = true; break;
    case Op::kSrli: rd_value = rs1 >> (ins.imm & 31); write_rd = true; break;
    case Op::kSrai:
      rd_value = static_cast<std::uint32_t>(srs1 >> (ins.imm & 31));
      write_rd = true;
      break;
    case Op::kAdd: rd_value = rs1 + rs2; write_rd = true; break;
    case Op::kSub: rd_value = rs1 - rs2; write_rd = true; break;
    case Op::kSll: rd_value = rs1 << (rs2 & 31); write_rd = true; break;
    case Op::kSlt: rd_value = srs1 < srs2 ? 1 : 0; write_rd = true; break;
    case Op::kSltu: rd_value = rs1 < rs2 ? 1 : 0; write_rd = true; break;
    case Op::kXor: rd_value = rs1 ^ rs2; write_rd = true; break;
    case Op::kSrl: rd_value = rs1 >> (rs2 & 31); write_rd = true; break;
    case Op::kSra: rd_value = static_cast<std::uint32_t>(srs1 >> (rs2 & 31)); write_rd = true; break;
    case Op::kOr: rd_value = rs1 | rs2; write_rd = true; break;
    case Op::kAnd: rd_value = rs1 & rs2; write_rd = true; break;
    case Op::kMul:
      rd_value = static_cast<std::uint32_t>(static_cast<std::int64_t>(srs1) * srs2);
      write_rd = true;
      break;
    case Op::kMulh:
      rd_value = static_cast<std::uint32_t>(
          (static_cast<std::int64_t>(srs1) * static_cast<std::int64_t>(srs2)) >> 32);
      write_rd = true;
      break;
    case Op::kMulhsu:
      rd_value = static_cast<std::uint32_t>(
          (static_cast<detail::machine_i128>(srs1) * static_cast<detail::machine_i128>(rs2)) >> 32);
      write_rd = true;
      break;
    case Op::kMulhu:
      rd_value = static_cast<std::uint32_t>(
          (static_cast<std::uint64_t>(rs1) * static_cast<std::uint64_t>(rs2)) >> 32);
      write_rd = true;
      break;
    case Op::kDiv:
      if (rs2 == 0) rd_value = ~0u;
      else if (srs1 == INT32_MIN && srs2 == -1) rd_value = static_cast<std::uint32_t>(INT32_MIN);
      else rd_value = static_cast<std::uint32_t>(srs1 / srs2);
      write_rd = true;
      break;
    case Op::kDivu:
      rd_value = rs2 == 0 ? ~0u : rs1 / rs2;
      write_rd = true;
      break;
    case Op::kRem:
      if (rs2 == 0) rd_value = rs1;
      else if (srs1 == INT32_MIN && srs2 == -1) rd_value = 0;
      else rd_value = static_cast<std::uint32_t>(srs1 % srs2);
      write_rd = true;
      break;
    case Op::kRemu:
      rd_value = rs2 == 0 ? rs1 : rs1 % rs2;
      write_rd = true;
      break;
    case Op::kFence: break;
    case Op::kCsrrs: {
      // Zicntr: rdcycle (0xC00), rdinstret (0xC02) and their high halves.
      if (ins.rs1 != 0) return trap("unsupported CSR write");
      const auto csr = static_cast<std::uint32_t>(ins.imm) & 0xFFFu;
      std::uint64_t value = 0;
      switch (csr) {
        case 0xC00: value = cycles_; break;                // cycle
        case 0xC02: value = retired_; break;               // instret
        case 0xC80: value = cycles_ >> 32; break;          // cycleh
        case 0xC82: value = retired_ >> 32; break;         // instreth
        default: return trap("unsupported CSR");
      }
      rd_value = static_cast<std::uint32_t>(value);
      write_rd = true;
      break;
    }
    case Op::kEcall:
    case Op::kEbreak:
      halted_ = true;
      break;
    case Op::kInvalid:
      return trap("illegal instruction");
  }

  if (ev.branch_taken) next_pc = pc_ + static_cast<std::uint32_t>(ins.imm);

  if (write_rd && ins.rd != 0) {
    ev.rd_old = regs_[ins.rd];
    regs_[ins.rd] = rd_value;
    ev.rd_new = rd_value;
    ev.rd_written = true;
  }

  ev.cycles = ev.branch_taken ? cyc_taken : cyc_not_taken;
  cycles_ += ev.cycles;
  ++retired_;
  pc_ = next_pc;
  if (observer != nullptr) observer->on_instruction(ev);
  return !halted_;
}

// Threaded block interpreter. With GNU extensions each micro-op handler
// jumps straight to the next handler through a per-instantiation label
// table (token-threaded dispatch: one indirect branch per retirement, with
// a distinct prediction site per op); otherwise a switch loop provides the
// same semantics. Block terminators jump back to the chain point, which
// charges the whole next block against the instruction budget and enters
// its micro-ops directly — the cycle/retired counters stay in registers
// across chained blocks and are flushed only on halt, trap, or fallback to
// per-step execution. The observer binds statically — with a
// NullExecutionObserver the InstrEvent construction folds away entirely.
#if defined(__GNUC__) || defined(__clang__)
#define REVEAL_BLOCK_THREADED 1
#else
#define REVEAL_BLOCK_THREADED 0
#endif

template <typename ObserverT>
Machine::StopReason Machine::run_translated(std::uint64_t max_instructions,
                                            ObserverT& observer) {
  std::uint8_t* const mem = memory_.data();
  const std::uint64_t mem_size = memory_.size();
  std::uint64_t cyc = cycles_;
  std::uint64_t ret = retired_;
  std::uint64_t remaining = max_instructions;
  std::uint64_t block_budget = 0;  ///< instructions pre-charged for the block
  std::uint64_t ret_entry = 0;     ///< retired count at block entry
  // The live pc and the block-entry table stay in registers across chained
  // blocks: pc_ is synced only on exit or per-step fallback, so a block
  // transition never round-trips the pc through memory. The entry pointer
  // is stable for the whole run (invalidation overwrites in place).
  std::uint32_t vpc = pc_;
  const std::uint32_t ibase = icache_base_;
  const std::uint32_t iend = icache_end_;
  const std::uint64_t* const entry = block_cache_.entry_data();
  const BlockInstr* pool = block_cache_.pool_data();
  const BlockInstr* p = nullptr;
  InstrEvent ev;
  std::uint32_t rs1;
  std::uint32_t rs2;

#if REVEAL_BLOCK_THREADED
// Labels-as-values is a GNU extension (gated above), so the pedantic
// diagnostics don't apply; pop after the last computed goto below.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpedantic"
  // Indexed by BlockInstr::h: the Op range in enum order (isa.hpp), then
  // the fused-pair handlers in kFuse* id order (block_translator.hpp).
  static const void* const kJump[] = {
      &&u_kLui,  &&u_kAuipc,  &&u_kJal,   &&u_kJalr,  &&u_kBeq,   &&u_kBne,
      &&u_kBlt,  &&u_kBge,    &&u_kBltu,  &&u_kBgeu,  &&u_kLb,    &&u_kLh,
      &&u_kLw,   &&u_kLbu,    &&u_kLhu,   &&u_kSb,    &&u_kSh,    &&u_kSw,
      &&u_kAddi, &&u_kSlti,   &&u_kSltiu, &&u_kXori,  &&u_kOri,   &&u_kAndi,
      &&u_kSlli, &&u_kSrli,   &&u_kSrai,  &&u_kAdd,   &&u_kSub,   &&u_kSll,
      &&u_kSlt,  &&u_kSltu,   &&u_kXor,   &&u_kSrl,   &&u_kSra,   &&u_kOr,
      &&u_kAnd,  &&u_kMul,    &&u_kMulh,  &&u_kMulhsu, &&u_kMulhu, &&u_kDiv,
      &&u_kDivu, &&u_kRem,    &&u_kRemu,  &&u_kFence, &&u_kEcall, &&u_kEbreak,
      &&u_kCsrrs, &&u_kInvalid,
      &&u_kFuseLuiAddi, &&u_kFuseAddiAnd, &&u_kFuseAddiAddi, &&u_kFuseAddiBne,
      &&u_kFuseAddAddi, &&u_kFuseSlliXor, &&u_kFuseSrliXor,  &&u_kFuseXorSlli,
      &&u_kFuseXorSrli, &&u_kFuseAndBgeu, &&u_kFuseSubMul,   &&u_kFuseLuiAdd,
      &&u_kFuseSraiSrai, &&u_kFuseXorSub, &&u_kFuseSlliAdd,  &&u_kFuseXorshift,
      &&u_kFuseMaskBgeu, &&u_kFuseAccBne, &&u_kFuseXorshiftMask,
      &&u_kFuseSignFold, &&u_kFuseSlliAddBlt,
  };
  static_assert(sizeof(kJump) / sizeof(kJump[0]) == kHandlerCount,
                "jump table must cover every Op and fused handler");
#define REVEAL_UOP(name) u_##name
#define REVEAL_FUOP(name) u_##name
#define REVEAL_DISPATCH() goto* kJump[p->h]
#else
#define REVEAL_UOP(name) case static_cast<std::uint8_t>(Op::name)
#define REVEAL_FUOP(name) case name
#define REVEAL_DISPATCH() goto reveal_dispatch
#endif

reveal_chain:
  // vpc holds the next fetch address; counters are live in cyc/ret. Charge
  // the whole next block against the budget and enter its micro-ops; early
  // exits refund the unexecuted charge. The packed entry keeps the steady
  // state at one load: count and pool index come out of a single 64-bit
  // descriptor, with no dependent TranslatedBlock fetch.
  if ((vpc & 3u) == 0 && vpc >= ibase && vpc < iend) {
    std::uint64_t e = entry[(vpc - ibase) >> 2];
    if (e == BlockCache::kNoBlock) {
      e = block_cache_.lookup_packed(vpc, mem, timing_);
      pool = block_cache_.pool_data();  // translation may reallocate
    }
    const std::uint64_t count = BlockCache::packed_count(e);
    if (e != BlockCache::kNoBlock && count <= remaining) {
      remaining -= count;
      block_budget = count;
      ret_entry = ret;
      p = pool + BlockCache::packed_first(e);
      REVEAL_DISPATCH();
    }
  }
  // Per-step fallback: unaligned/out-of-region pc, an untranslatable word,
  // or the precise tail once fewer instructions remain than the next block
  // would retire. One exact predecode-tier step, then try to chain again.
  pc_ = vpc;
  cycles_ = cyc;
  retired_ = ret;
  if (remaining == 0) return StopReason::kInstrLimit;
  if (!step_impl<ObserverT, /*kUseCache=*/true>(&observer)) {
    return trapped_ ? StopReason::kTrap : StopReason::kHalt;
  }
  --remaining;
  cyc = cycles_;
  ret = retired_;
  vpc = pc_;
  goto reveal_chain;

#if !REVEAL_BLOCK_THREADED
reveal_dispatch:
  switch (p->h) {
#endif

// Mirrors step_impl field for field: zero-initialized event, source
// registers latched before any destination write.
#define REVEAL_BEGIN() \
  ev = InstrEvent{};   \
  ev.pc = p->pc;       \
  ev.op = p->op;       \
  ev.klass = p->klass; \
  ev.rd = p->rd;       \
  rs1 = regs_[p->rs1]; \
  rs2 = regs_[p->rs2]; \
  ev.rs1_val = rs1;    \
  ev.rs2_val = rs2

#define REVEAL_WRITE_RD(value_expr)          \
  do {                                       \
    const std::uint32_t v_ = (value_expr);   \
    if (p->rd != 0) {                        \
      ev.rd_old = regs_[p->rd];              \
      regs_[p->rd] = v_;                     \
      ev.rd_new = v_;                        \
      ev.rd_written = true;                  \
    }                                        \
  } while (0)

#define REVEAL_RETIRE_NEXT()              \
  do {                                    \
    ev.cycles = p->cycles_not_taken;      \
    cyc += p->cycles_not_taken;           \
    ++ret;                                \
    observer.on_instruction(ev);          \
    ++p;                                  \
    REVEAL_DISPATCH();                    \
  } while (0)

#define REVEAL_SRS1 static_cast<std::int32_t>(rs1)
#define REVEAL_SRS2 static_cast<std::int32_t>(rs2)
#define REVEAL_IMM_U static_cast<std::uint32_t>(p->imm)

#define REVEAL_ALU(name, value_expr) \
  REVEAL_UOP(name) : {               \
    REVEAL_BEGIN();                  \
    REVEAL_WRITE_RD(value_expr);     \
    REVEAL_RETIRE_NEXT();            \
  }

#define REVEAL_BRANCH(name, cond)                                           \
  REVEAL_UOP(name) : {                                                      \
    REVEAL_BEGIN();                                                         \
    ev.branch_taken = (cond);                                               \
    ev.cycles = ev.branch_taken ? p->cycles_taken : p->cycles_not_taken;    \
    cyc += ev.cycles;                                                       \
    ++ret;                                                                  \
    vpc = ev.branch_taken ? p->pc + REVEAL_IMM_U : p->pc + 4;               \
    observer.on_instruction(ev);                                            \
    goto reveal_chain;                                                      \
  }

#define REVEAL_LOAD(name, size, is_signed)                                    \
  REVEAL_UOP(name) : {                                                        \
    REVEAL_BEGIN();                                                           \
    const std::uint32_t addr = rs1 + REVEAL_IMM_U;                            \
    if (static_cast<std::uint64_t>(addr) + (size) > mem_size ||               \
        ((size) > 1 && (addr & ((size)-1)) != 0)) {                           \
      goto reveal_trap_load;                                                  \
    }                                                                         \
    std::uint32_t raw = 0;                                                    \
    std::memcpy(&raw, mem + addr, (size));                                    \
    if ((is_signed) && (size) == 1) {                                         \
      raw = static_cast<std::uint32_t>(static_cast<std::int8_t>(raw));        \
    } else if ((is_signed) && (size) == 2) {                                  \
      raw = static_cast<std::uint32_t>(static_cast<std::int16_t>(raw));       \
    }                                                                         \
    ev.mem_addr = addr;                                                       \
    ev.mem_data = raw;                                                        \
    ev.is_mem_read = true;                                                    \
    REVEAL_WRITE_RD(raw);                                                     \
    REVEAL_RETIRE_NEXT();                                                     \
  }

// A store that lands in the program region retires normally, invalidates
// the predecode word and any covering translated block, then exits so the
// dispatcher refetches from current memory — the executing block itself may
// just have been dropped.
#define REVEAL_STORE(name, size)                                              \
  REVEAL_UOP(name) : {                                                        \
    REVEAL_BEGIN();                                                           \
    const std::uint32_t addr = rs1 + REVEAL_IMM_U;                            \
    if (static_cast<std::uint64_t>(addr) + (size) > mem_size ||               \
        ((size) > 1 && (addr & ((size)-1)) != 0)) {                           \
      goto reveal_trap_store;                                                 \
    }                                                                         \
    std::memcpy(mem + addr, &rs2, (size));                                    \
    ev.mem_addr = addr;                                                       \
    ev.mem_data = (size) == 4 ? rs2 : (rs2 & ((1u << (((size)&3) * 8)) - 1u)); \
    ev.is_mem_write = true;                                                   \
    ev.cycles = p->cycles_not_taken;                                          \
    cyc += p->cycles_not_taken;                                               \
    ++ret;                                                                    \
    observer.on_instruction(ev);                                              \
    if (addr >= icache_base_ && addr < icache_end_) {                         \
      invalidate_icache_word(addr);                                           \
      vpc = p->pc + 4;                                                        \
      remaining += block_budget - (ret - ret_entry); /* refund unexecuted */  \
      goto reveal_chain;                                                      \
    }                                                                         \
    ++p;                                                                      \
    REVEAL_DISPATCH();                                                        \
  }

  REVEAL_ALU(kLui, REVEAL_IMM_U)
  REVEAL_ALU(kAuipc, p->pc + REVEAL_IMM_U)

  REVEAL_UOP(kJal) : {
    REVEAL_BEGIN();
    REVEAL_WRITE_RD(p->pc + 4);
    ev.cycles = p->cycles_not_taken;
    cyc += p->cycles_not_taken;
    ++ret;
    vpc = p->pc + REVEAL_IMM_U;
    observer.on_instruction(ev);
    goto reveal_chain;
  }
  REVEAL_UOP(kJalr) : {
    REVEAL_BEGIN();
    const std::uint32_t target = (rs1 + REVEAL_IMM_U) & ~1u;  // before rd write
    REVEAL_WRITE_RD(p->pc + 4);
    ev.cycles = p->cycles_not_taken;
    cyc += p->cycles_not_taken;
    ++ret;
    vpc = target;
    observer.on_instruction(ev);
    goto reveal_chain;
  }

  REVEAL_BRANCH(kBeq, rs1 == rs2)
  REVEAL_BRANCH(kBne, rs1 != rs2)
  REVEAL_BRANCH(kBlt, REVEAL_SRS1 < REVEAL_SRS2)
  REVEAL_BRANCH(kBge, REVEAL_SRS1 >= REVEAL_SRS2)
  REVEAL_BRANCH(kBltu, rs1 < rs2)
  REVEAL_BRANCH(kBgeu, rs1 >= rs2)

  REVEAL_LOAD(kLb, 1, true)
  REVEAL_LOAD(kLh, 2, true)
  REVEAL_LOAD(kLw, 4, false)
  REVEAL_LOAD(kLbu, 1, false)
  REVEAL_LOAD(kLhu, 2, false)

  REVEAL_STORE(kSb, 1)
  REVEAL_STORE(kSh, 2)
  REVEAL_STORE(kSw, 4)

  REVEAL_ALU(kAddi, rs1 + REVEAL_IMM_U)
  REVEAL_ALU(kSlti, REVEAL_SRS1 < p->imm ? 1u : 0u)
  REVEAL_ALU(kSltiu, rs1 < REVEAL_IMM_U ? 1u : 0u)
  REVEAL_ALU(kXori, rs1 ^ REVEAL_IMM_U)
  REVEAL_ALU(kOri, rs1 | REVEAL_IMM_U)
  REVEAL_ALU(kAndi, rs1 & REVEAL_IMM_U)
  REVEAL_ALU(kSlli, rs1 << (p->imm & 31))
  REVEAL_ALU(kSrli, rs1 >> (p->imm & 31))
  REVEAL_ALU(kSrai, static_cast<std::uint32_t>(REVEAL_SRS1 >> (p->imm & 31)))
  REVEAL_ALU(kAdd, rs1 + rs2)
  REVEAL_ALU(kSub, rs1 - rs2)
  REVEAL_ALU(kSll, rs1 << (rs2 & 31))
  REVEAL_ALU(kSlt, REVEAL_SRS1 < REVEAL_SRS2 ? 1u : 0u)
  REVEAL_ALU(kSltu, rs1 < rs2 ? 1u : 0u)
  REVEAL_ALU(kXor, rs1 ^ rs2)
  REVEAL_ALU(kSrl, rs1 >> (rs2 & 31))
  REVEAL_ALU(kSra, static_cast<std::uint32_t>(REVEAL_SRS1 >> (rs2 & 31)))
  REVEAL_ALU(kOr, rs1 | rs2)
  REVEAL_ALU(kAnd, rs1 & rs2)
  REVEAL_ALU(kMul,
             static_cast<std::uint32_t>(static_cast<std::int64_t>(REVEAL_SRS1) * REVEAL_SRS2))
  REVEAL_ALU(kMulh, static_cast<std::uint32_t>((static_cast<std::int64_t>(REVEAL_SRS1) *
                                                static_cast<std::int64_t>(REVEAL_SRS2)) >>
                                               32))
  REVEAL_ALU(kMulhsu,
             static_cast<std::uint32_t>((static_cast<detail::machine_i128>(REVEAL_SRS1) *
                                         static_cast<detail::machine_i128>(rs2)) >>
                                        32))
  REVEAL_ALU(kMulhu, static_cast<std::uint32_t>(
                         (static_cast<std::uint64_t>(rs1) * static_cast<std::uint64_t>(rs2)) >> 32))

  REVEAL_UOP(kDiv) : {
    REVEAL_BEGIN();
    std::uint32_t q;
    if (rs2 == 0) {
      q = ~0u;
    } else if (REVEAL_SRS1 == INT32_MIN && REVEAL_SRS2 == -1) {
      q = static_cast<std::uint32_t>(INT32_MIN);
    } else {
      q = static_cast<std::uint32_t>(REVEAL_SRS1 / REVEAL_SRS2);
    }
    REVEAL_WRITE_RD(q);
    REVEAL_RETIRE_NEXT();
  }
  REVEAL_UOP(kDivu) : {
    REVEAL_BEGIN();
    REVEAL_WRITE_RD(rs2 == 0 ? ~0u : rs1 / rs2);
    REVEAL_RETIRE_NEXT();
  }
  REVEAL_UOP(kRem) : {
    REVEAL_BEGIN();
    std::uint32_t r;
    if (rs2 == 0) {
      r = rs1;
    } else if (REVEAL_SRS1 == INT32_MIN && REVEAL_SRS2 == -1) {
      r = 0;
    } else {
      r = static_cast<std::uint32_t>(REVEAL_SRS1 % REVEAL_SRS2);
    }
    REVEAL_WRITE_RD(r);
    REVEAL_RETIRE_NEXT();
  }
  REVEAL_UOP(kRemu) : {
    REVEAL_BEGIN();
    REVEAL_WRITE_RD(rs2 == 0 ? rs1 : rs1 % rs2);
    REVEAL_RETIRE_NEXT();
  }

  REVEAL_UOP(kFence) : {
    REVEAL_BEGIN();
    REVEAL_RETIRE_NEXT();
  }

  REVEAL_UOP(kCsrrs) : {
    REVEAL_BEGIN();
    if (p->rs1 != 0) goto reveal_trap_csr_write;
    const std::uint32_t csr = REVEAL_IMM_U & 0xFFFu;
    // The local counters equal cycles_/retired_ as-if flushed, so mid-block
    // rdcycle/rdinstret reads stay exact without a block barrier.
    std::uint64_t value;
    switch (csr) {
      case 0xC00: value = cyc; break;
      case 0xC02: value = ret; break;
      case 0xC80: value = cyc >> 32; break;
      case 0xC82: value = ret >> 32; break;
      default: goto reveal_trap_csr;
    }
    REVEAL_WRITE_RD(static_cast<std::uint32_t>(value));
    REVEAL_RETIRE_NEXT();
  }

  REVEAL_UOP(kEcall) : REVEAL_UOP(kEbreak) : {
    REVEAL_BEGIN();
    ev.cycles = p->cycles_not_taken;
    cyc += p->cycles_not_taken;
    ++ret;
    pc_ = p->pc + 4;
    observer.on_instruction(ev);
    halted_ = true;
    cycles_ = cyc;
    retired_ = ret;
    return StopReason::kHalt;
  }

  // Synthetic fallthrough-exit sentinel (block ended at the region
  // boundary, before an undecodable word, or at the length cap): not a
  // retired instruction — hand the next fetch pc back to the chain point
  // (the full block retired, so there is nothing to refund).
  REVEAL_UOP(kInvalid) : {
    vpc = p->pc;
    goto reveal_chain;
  }

// Fused pairs: one dispatch retires two data-dependent micro-ops. The
// first is always a real-destination ALU op (translate-time guarantee:
// p->rd != 0), whose result is forwarded to the second's operands in a
// register instead of through a regs_ store->load round trip; the second
// is ALU- or branch-class (no memory access, no trap mid-pair). Events,
// counters and register state are identical to the unfused pair.
//
// First half: retire `expr1` into p->rd, then latch the second micro-op's
// operands (forwarded where they read p->rd) and start its event.
#define REVEAL_FUSE_FIRST(expr1)                 \
  const BlockInstr* q = p + 1;                   \
  REVEAL_BEGIN();                                \
  const std::uint32_t v1 = (expr1);              \
  ev.rd_old = regs_[p->rd];                      \
  regs_[p->rd] = v1;                             \
  ev.rd_new = v1;                                \
  ev.rd_written = true;                          \
  ev.cycles = p->cycles_not_taken;               \
  cyc += p->cycles_not_taken;                    \
  ++ret;                                         \
  observer.on_instruction(ev);                   \
  rs1 = q->rs1 == p->rd ? v1 : regs_[q->rs1];    \
  rs2 = q->rs2 == p->rd ? v1 : regs_[q->rs2];    \
  ev = InstrEvent{};                             \
  ev.pc = q->pc;                                 \
  ev.op = q->op;                                 \
  ev.klass = q->klass;                           \
  ev.rd = q->rd;                                 \
  ev.rs1_val = rs1;                              \
  ev.rs2_val = rs2

// `expr1` sees the first micro-op's operands in rs1/rs2 and its immediate
// as REVEAL_IMM_U; `expr2`/`cond` see the second's in rs1/rs2 and q->imm.
#define REVEAL_FUSE_ALU_ALU(name, expr1, expr2) \
  REVEAL_FUOP(name) : {                         \
    REVEAL_FUSE_FIRST(expr1);                   \
    const std::uint32_t v2 = (expr2);           \
    if (q->rd != 0) {                           \
      ev.rd_old = regs_[q->rd];                 \
      regs_[q->rd] = v2;                        \
      ev.rd_new = v2;                           \
      ev.rd_written = true;                     \
    }                                           \
    ev.cycles = q->cycles_not_taken;            \
    cyc += q->cycles_not_taken;                 \
    ++ret;                                      \
    observer.on_instruction(ev);                \
    p += 2;                                     \
    REVEAL_DISPATCH();                          \
  }

#define REVEAL_FUSE_ALU_BRANCH(name, expr1, cond)                          \
  REVEAL_FUOP(name) : {                                                    \
    REVEAL_FUSE_FIRST(expr1);                                              \
    ev.branch_taken = (cond);                                              \
    ev.cycles = ev.branch_taken ? q->cycles_taken : q->cycles_not_taken;   \
    cyc += ev.cycles;                                                      \
    ++ret;                                                                 \
    vpc = ev.branch_taken ? q->pc + static_cast<std::uint32_t>(q->imm)     \
                          : q->pc + 4;                                     \
    observer.on_instruction(ev);                                           \
    goto reveal_chain;                                                     \
  }

  REVEAL_FUSE_ALU_ALU(kFuseLuiAddi, REVEAL_IMM_U,
                      rs1 + static_cast<std::uint32_t>(q->imm))
  REVEAL_FUSE_ALU_ALU(kFuseAddiAnd, rs1 + REVEAL_IMM_U, rs1 & rs2)
  REVEAL_FUSE_ALU_ALU(kFuseAddiAddi, rs1 + REVEAL_IMM_U,
                      rs1 + static_cast<std::uint32_t>(q->imm))
  REVEAL_FUSE_ALU_ALU(kFuseAddAddi, rs1 + rs2,
                      rs1 + static_cast<std::uint32_t>(q->imm))
  REVEAL_FUSE_ALU_ALU(kFuseSlliXor, rs1 << (p->imm & 31), rs1 ^ rs2)
  REVEAL_FUSE_ALU_ALU(kFuseSrliXor, rs1 >> (p->imm & 31), rs1 ^ rs2)
  REVEAL_FUSE_ALU_ALU(kFuseXorSlli, rs1 ^ rs2, rs1 << (q->imm & 31))
  REVEAL_FUSE_ALU_ALU(kFuseXorSrli, rs1 ^ rs2, rs1 >> (q->imm & 31))
  REVEAL_FUSE_ALU_ALU(kFuseSubMul, rs1 - rs2,
                      static_cast<std::uint32_t>(
                          static_cast<std::int64_t>(static_cast<std::int32_t>(rs1)) *
                          static_cast<std::int32_t>(rs2)))
  REVEAL_FUSE_ALU_ALU(kFuseLuiAdd, REVEAL_IMM_U, rs1 + rs2)
  REVEAL_FUSE_ALU_ALU(kFuseSraiSrai,
                      static_cast<std::uint32_t>(REVEAL_SRS1 >> (p->imm & 31)),
                      static_cast<std::uint32_t>(static_cast<std::int32_t>(rs1) >>
                                                 (q->imm & 31)))
  REVEAL_FUSE_ALU_ALU(kFuseXorSub, rs1 ^ rs2, rs1 - rs2)
  REVEAL_FUSE_ALU_ALU(kFuseSlliAdd, rs1 << (p->imm & 31), rs1 + rs2)
  REVEAL_FUSE_ALU_BRANCH(kFuseAndBgeu, rs1 & rs2, rs1 >= rs2)
  REVEAL_FUSE_ALU_BRANCH(kFuseAddiBne, rs1 + REVEAL_IMM_U, rs1 != rs2)

// Multi-op idiom handlers: one dispatch retires a whole matched run
// (block_translator.cpp fused_idiom). Every micro-op writes through to
// regs_ immediately, so operand reads from regs_ are always correct; the
// two most recent in-flight results are additionally forwarded in
// registers (index-checked, nearest first) to keep the dependent chain off
// the store->load round trip.
#define REVEAL_FUSE_OPS2(qp, r1, v1_, r2, v2_)                              \
  rs1 = (qp)->rs1 == (r1) ? (v1_)                                           \
        : (qp)->rs1 == (r2) ? (v2_)                                         \
                            : regs_[(qp)->rs1];                             \
  rs2 = (qp)->rs2 == (r1) ? (v1_)                                           \
        : (qp)->rs2 == (r2) ? (v2_)                                         \
                            : regs_[(qp)->rs2];                             \
  ev = InstrEvent{};                                                        \
  ev.pc = (qp)->pc;                                                         \
  ev.op = (qp)->op;                                                         \
  ev.klass = (qp)->klass;                                                   \
  ev.rd = (qp)->rd;                                                         \
  ev.rs1_val = rs1;                                                         \
  ev.rs2_val = rs2

// Operand load + event skeleton for a mid-run micro-op, reading regs_
// plainly into the rs1/rs2 locals: exact under write-through retirement
// (every earlier micro-op already stored its result). REVEAL_BEGIN for an
// arbitrary slot, in effect.
#define REVEAL_FUSE_LOAD(qp)            \
  rs1 = regs_[(qp)->rs1];               \
  rs2 = regs_[(qp)->rs2];               \
  ev = InstrEvent{};                    \
  ev.pc = (qp)->pc;                     \
  ev.op = (qp)->op;                     \
  ev.klass = (qp)->klass;               \
  ev.rd = (qp)->rd;                     \
  ev.rs1_val = rs1;                     \
  ev.rs2_val = rs2

// Event skeleton for a mid-run micro-op whose operand values are read
// straight from regs_: exact under write-through retirement (every earlier
// micro-op already stored its result), and fully dead-code-eliminated when
// the observer ignores events.
#define REVEAL_FUSE_EV(qp)              \
  ev = InstrEvent{};                    \
  ev.pc = (qp)->pc;                     \
  ev.op = (qp)->op;                     \
  ev.klass = (qp)->klass;               \
  ev.rd = (qp)->rd;                     \
  ev.rs1_val = regs_[(qp)->rs1];        \
  ev.rs2_val = regs_[(qp)->rs2]

// Retire an ALU micro-op *qp with value v (qp->rd != 0 guaranteed). Does
// NOT advance cyc: idiom handlers add their run's pre-summed straight-line
// cost (first slot's cycles_taken) once, plus the final micro-op's own
// cost, instead of one load-and-add per retirement.
#define REVEAL_FUSE_RET(qp, v)           \
  do {                                   \
    ev.rd_old = regs_[(qp)->rd];         \
    regs_[(qp)->rd] = (v);               \
    ev.rd_new = (v);                     \
    ev.rd_written = true;                \
    ev.cycles = (qp)->cycles_not_taken;  \
    ++ret;                               \
    observer.on_instruction(ev);         \
  } while (0)

// Event skeleton / retirement for a canonical-run micro-op whose operand
// and overwritten-destination values are supplied from locals (the regs_
// file is stale mid-run when a handler defers its stores to the end).
// Everything here is dead code under a null observer.
#define REVEAL_FUSE_EVX(qp, r1v, r2v)   \
  ev = InstrEvent{};                    \
  ev.pc = (qp)->pc;                     \
  ev.op = (qp)->op;                     \
  ev.klass = (qp)->klass;               \
  ev.rd = (qp)->rd;                     \
  ev.rs1_val = (r1v);                   \
  ev.rs2_val = (r2v)

#define REVEAL_FUSE_RETX(qp, oldv, v)    \
  do {                                   \
    ev.rd_old = (oldv);                  \
    ev.rd_new = (v);                     \
    ev.rd_written = true;                \
    ev.cycles = (qp)->cycles_not_taken;  \
    ++ret;                               \
    observer.on_instruction(ev);         \
  } while (0)

// Retire the final branch micro-op *qp and chain to the next block.
#define REVEAL_FUSE_BR(qp, cond)                                            \
  do {                                                                      \
    ev.branch_taken = (cond);                                               \
    ev.cycles = ev.branch_taken ? (qp)->cycles_taken : (qp)->cycles_not_taken; \
    cyc += ev.cycles;                                                       \
    ++ret;                                                                  \
    vpc = ev.branch_taken ? (qp)->pc + static_cast<std::uint32_t>((qp)->imm) \
                          : (qp)->pc + 4;                                   \
    observer.on_instruction(ev);                                            \
    goto reveal_chain;                                                      \
  } while (0)

  // xorshift32 step: t = s << a; s ^= t; t = s >> b; s ^= t; t = s << c;
  // s ^= t (any register assignment with real destinations).
  REVEAL_FUOP(kFuseXorshift) : {
    const BlockInstr* q1 = p + 1;
    const BlockInstr* q2 = p + 2;
    const BlockInstr* q3 = p + 3;
    const BlockInstr* q4 = p + 4;
    const BlockInstr* q5 = p + 5;
    REVEAL_BEGIN();
    cyc += p->cycles_taken + q5->cycles_not_taken;  // pre-summed run cost
    const std::uint32_t v0 = rs1 << (p->imm & 31);
    REVEAL_FUSE_RET(p, v0);
    REVEAL_FUSE_OPS2(q1, p->rd, v0, 0xFFu, 0u);
    const std::uint32_t v1 = rs1 ^ rs2;
    REVEAL_FUSE_RET(q1, v1);
    REVEAL_FUSE_OPS2(q2, q1->rd, v1, p->rd, v0);
    const std::uint32_t v2 = rs1 >> (q2->imm & 31);
    REVEAL_FUSE_RET(q2, v2);
    REVEAL_FUSE_OPS2(q3, q2->rd, v2, q1->rd, v1);
    const std::uint32_t v3 = rs1 ^ rs2;
    REVEAL_FUSE_RET(q3, v3);
    REVEAL_FUSE_OPS2(q4, q3->rd, v3, q2->rd, v2);
    const std::uint32_t v4 = rs1 << (q4->imm & 31);
    REVEAL_FUSE_RET(q4, v4);
    REVEAL_FUSE_OPS2(q5, q4->rd, v4, q3->rd, v3);
    const std::uint32_t v5 = rs1 ^ rs2;
    REVEAL_FUSE_RET(q5, v5);
    p += 6;
    REVEAL_DISPATCH();
  }

  // Load-mask-and-reject: m = imm32 (lui+addi); x = s & m; bgeu.
  REVEAL_FUOP(kFuseMaskBgeu) : {
    const BlockInstr* q1 = p + 1;
    const BlockInstr* q2 = p + 2;
    const BlockInstr* q3 = p + 3;
    REVEAL_BEGIN();
    cyc += p->cycles_taken;  // pre-summed straight-line prefix cost
    const std::uint32_t v0 = REVEAL_IMM_U;
    REVEAL_FUSE_RET(p, v0);
    REVEAL_FUSE_OPS2(q1, p->rd, v0, 0xFFu, 0u);
    const std::uint32_t v1 = rs1 + static_cast<std::uint32_t>(q1->imm);
    REVEAL_FUSE_RET(q1, v1);
    REVEAL_FUSE_OPS2(q2, q1->rd, v1, p->rd, v0);
    const std::uint32_t v2 = rs1 & rs2;
    REVEAL_FUSE_RET(q2, v2);
    REVEAL_FUSE_OPS2(q3, q2->rd, v2, q1->rd, v1);
    REVEAL_FUSE_BR(q3, rs1 >= rs2);
  }

  // Full rejection-sampler step: xorshift32 (6 ops) straight into
  // load-mask-and-reject (4 ops), canonical register pattern only
  // (block_translator.cpp xorshift_mask_canonical). One dispatch retires
  // the sampler's entire hot block with the value chain held in locals —
  // regs_ is only *stored* (write-through retirement) and read for event
  // operand values, so the null-observer fast leg reduces to the pure ALU
  // chain plus ten stores.
  REVEAL_FUOP(kFuseXorshiftMask) : {
    const BlockInstr* q1 = p + 1;
    const BlockInstr* q2 = p + 2;
    const BlockInstr* q3 = p + 3;
    const BlockInstr* q4 = p + 4;
    const BlockInstr* q5 = p + 5;
    const BlockInstr* q6 = p + 6;
    const BlockInstr* q7 = p + 7;
    const BlockInstr* q8 = p + 8;
    const BlockInstr* q9 = p + 9;
    if constexpr (std::is_same_v<ObserverT, NullExecutionObserver>) {
      // Observer-free leg: per-op events are unobservable, so the whole
      // rejection loop runs on locals. Every pool field is loop-invariant
      // (the run contains no store, so nothing can invalidate or rewrite
      // the block mid-run) and is hoisted explicitly — the write-through
      // leg below cannot hoist them because regs_ stores may alias the
      // pool under type-based aliasing. Architectural state (the four
      // written registers, counters, budget) is committed identically to
      // the generic leg: regs_ once at exit in last-write program order,
      // cyc/ret/remaining per iteration.
      const std::uint32_t sh_a = static_cast<std::uint32_t>(p->imm) & 31u;
      const std::uint32_t sh_b = static_cast<std::uint32_t>(q2->imm) & 31u;
      const std::uint32_t sh_c = static_cast<std::uint32_t>(q4->imm) & 31u;
      const std::uint32_t mask =
          static_cast<std::uint32_t>(q6->imm) + static_cast<std::uint32_t>(q7->imm);
      const std::uint64_t prefix = p->cycles_taken;  // pre-summed run cost
      const std::uint64_t cyc_taken = q9->cycles_taken;
      const std::uint64_t cyc_not = q9->cycles_not_taken;
      const bool self_loop = q9->pc + static_cast<std::uint32_t>(q9->imm) == p->pc;
      const std::uint8_t rT = p->rd, rS = q1->rd, rM = q6->rd, rX = q8->rd;
      const std::uint32_t bound = regs_[q9->rs2];  // canonical: never written
      std::uint32_t s = regs_[p->rs1];
      std::uint32_t t_fin;
      std::uint32_t x_fin;
      // Accept-path continuation: when the fall-through block is exactly an
      // already-translated accumulate-and-loop idiom (acc += x; i += step;
      // bne i, bound) whose registers are disjoint from everything this run
      // defers or reads, the accept path also stays inside this handler —
      // the full sampling loop (reject, accept, accumulate, loop) then runs
      // on locals. The lookup goes through the live entry table, so a stale
      // translation can never be entered, and no store can invalidate either
      // block while the loop runs (neither contains one). Budget charges
      // mirror the chain's: 10 per rejection pass, 3 per accumulate pass.
      const std::uint32_t fall_pc = q9->pc + 4;
      const BlockInstr* qb = nullptr;
      if (self_loop && fall_pc >= ibase && fall_pc < iend) {
        const std::uint64_t eb = entry[(fall_pc - ibase) >> 2];
        if (eb != BlockCache::kNoBlock && BlockCache::packed_count(eb) == 3) {
          const BlockInstr* f = pool + BlockCache::packed_first(eb);
          const std::uint8_t ra = f[0].rd, ri = f[1].rd, rb = f[2].rs2;
          if (f[0].h == kFuseAccBne && f[0].rs1 == ra && f[0].rs2 == rX &&
              ra != rT && ra != rS && ra != rM && ra != rX &&
              ri != rT && ri != rS && ri != rM && ri != rX &&
              rb != rT && rb != rS && rb != rM && rb != rX &&
              ra != q9->rs2 && ri != q9->rs2) {
            qb = f;
          }
        }
      }
      std::uint32_t acc = 0;
      std::uint32_t ctr = 0;
      std::uint32_t b_bound = 0;
      if (qb != nullptr) {
        acc = regs_[qb[0].rd];
        ctr = regs_[qb[1].rd];
        b_bound = regs_[qb[2].rs2];
      }
      for (;;) {
        const std::uint32_t v0 = s << sh_a;
        const std::uint32_t v1 = s ^ v0;
        const std::uint32_t v2 = v1 >> sh_b;
        const std::uint32_t v3 = v1 ^ v2;
        t_fin = v3 << sh_c;
        s = v3 ^ t_fin;
        x_fin = s & mask;
        cyc += prefix;
        ret += 10;
        const bool taken = x_fin >= bound;
        cyc += taken ? cyc_taken : cyc_not;
        if (taken) {
          vpc = q9->pc + static_cast<std::uint32_t>(q9->imm);
          // Rejection back-edge shortcut, as in the generic leg: re-enter in
          // place with the chain's exact budget charge for the 10 micro-ops.
          if (self_loop && remaining >= 10) {
            remaining -= 10;
            block_budget = 10;
            ret_entry = ret;
            continue;
          }
          break;
        }
        vpc = fall_pc;
        if (qb == nullptr || remaining < 3) break;
        remaining -= 3;
        block_budget = 3;
        ret_entry = ret;
        acc += x_fin;
        ctr += static_cast<std::uint32_t>(qb[1].imm);
        cyc += qb[0].cycles_taken;  // pre-summed add+addi cost
        ret += 3;
        const bool b_taken = ctr != b_bound;
        cyc += b_taken ? qb[2].cycles_taken : qb[2].cycles_not_taken;
        if (!b_taken) {
          vpc = qb[2].pc + 4;
          break;
        }
        vpc = qb[2].pc + static_cast<std::uint32_t>(qb[2].imm);
        if (vpc == p->pc && remaining >= 10) {
          remaining -= 10;
          block_budget = 10;
          ret_entry = ret;
          continue;
        }
        break;
      }
      regs_[p->rd] = t_fin;   // rT = v4, then rS, rM, rX in last-write order
      regs_[q1->rd] = s;      // rS = v5
      regs_[q6->rd] = mask;   // rM = v7
      regs_[q8->rd] = x_fin;  // rX = v8
      if (qb != nullptr) {    // disjoint from the four above (checked)
        regs_[qb[0].rd] = acc;
        regs_[qb[1].rd] = ctr;
      }
      goto reveal_chain;
    } else {
  u_kFuseXorshiftMask_body:
    REVEAL_BEGIN();
    cyc += p->cycles_taken;  // pre-summed straight-line prefix cost
    const std::uint32_t s0 = rs1;
    const std::uint32_t bound = regs_[q9->rs2];  // canonical: never written in-run
    // The value chain lives in locals; only each register's FINAL value is
    // stored (in program order of last writes, so aliasing among the temp,
    // mask and result registers resolves exactly). Mid-run event operand
    // values for the raw index fields (shift amounts, lui immediate bits)
    // are reconstructed with explicit selects against the written-so-far
    // set — observer-only code, dead in the timed null-observer leg.
    const std::uint8_t rT = p->rd, rS = q1->rd, rM = q6->rd;
    const std::uint32_t v0 = s0 << (p->imm & 31);
    REVEAL_FUSE_RETX(p, regs_[rT], v0);
    REVEAL_FUSE_EVX(q1, s0, v0);
    const std::uint32_t v1 = s0 ^ v0;
    REVEAL_FUSE_RETX(q1, s0, v1);
    REVEAL_FUSE_EVX(q2, v1,
                    q2->rs2 == rS   ? v1
                    : q2->rs2 == rT ? v0
                                    : regs_[q2->rs2]);
    const std::uint32_t v2 = v1 >> (q2->imm & 31);
    REVEAL_FUSE_RETX(q2, v0, v2);
    REVEAL_FUSE_EVX(q3, v1, v2);
    const std::uint32_t v3 = v1 ^ v2;
    REVEAL_FUSE_RETX(q3, v1, v3);
    REVEAL_FUSE_EVX(q4, v3,
                    q4->rs2 == rS   ? v3
                    : q4->rs2 == rT ? v2
                                    : regs_[q4->rs2]);
    const std::uint32_t v4 = v3 << (q4->imm & 31);
    REVEAL_FUSE_RETX(q4, v2, v4);
    REVEAL_FUSE_EVX(q5, v3, v4);
    const std::uint32_t v5 = v3 ^ v4;
    REVEAL_FUSE_RETX(q5, v3, v5);
    REVEAL_FUSE_EVX(q6,
                    q6->rs1 == rS   ? v5
                    : q6->rs1 == rT ? v4
                                    : regs_[q6->rs1],
                    q6->rs2 == rS   ? v5
                    : q6->rs2 == rT ? v4
                                    : regs_[q6->rs2]);
    const std::uint32_t v6 = static_cast<std::uint32_t>(q6->imm);
    REVEAL_FUSE_RETX(q6, rM == rT ? v4 : regs_[rM], v6);
    REVEAL_FUSE_EVX(q7, v6,
                    q7->rs2 == rM   ? v6
                    : q7->rs2 == rS ? v5
                    : q7->rs2 == rT ? v4
                                    : regs_[q7->rs2]);
    const std::uint32_t v7 = v6 + static_cast<std::uint32_t>(q7->imm);
    REVEAL_FUSE_RETX(q7, v6, v7);
    REVEAL_FUSE_EVX(q8, v5, v7);
    const std::uint32_t v8 = v5 & v7;
    REVEAL_FUSE_RETX(q8,
                     q8->rd == rM   ? v7
                     : q8->rd == rS ? v5
                     : q8->rd == rT ? v4
                                    : regs_[q8->rd],
                     v8);
    regs_[rT] = v4;
    regs_[rS] = v5;
    regs_[rM] = v7;
    regs_[q8->rd] = v8;
    REVEAL_FUSE_EV(q9);
    ev.branch_taken = v8 >= bound;
    ev.cycles = ev.branch_taken ? q9->cycles_taken : q9->cycles_not_taken;
    cyc += ev.cycles;
    ++ret;
    observer.on_instruction(ev);
    if (ev.branch_taken) {
      vpc = q9->pc + static_cast<std::uint32_t>(q9->imm);
      // Rejection back-edge: when the branch re-enters this very run and the
      // budget covers another full pass, loop in place. The charge matches
      // what the chain would make for the 10 micro-ops (no store in the run
      // can trigger a refund), but the rejection — whose direction is
      // data-random by construction — no longer feeds the chain's indirect
      // dispatch, which keeps that dispatch's target sequence periodic and
      // predictable.
      if (vpc == p->pc && remaining >= 10) {
        remaining -= 10;
        block_budget = 10;
        ret_entry = ret;
        goto u_kFuseXorshiftMask_body;
      }
      goto reveal_chain;
    }
    vpc = q9->pc + 4;
    goto reveal_chain;
    }
  }

  // Accumulate-and-loop back edge: acc += x; i += step; bne i, bound —
  // canonical register pattern only (acc_bne_canonical): counter and bound
  // are distinct from the accumulator, so both load up front and the whole
  // step is three ALU ops, two stores and the loop branch.
  REVEAL_FUOP(kFuseAccBne) : {
    const BlockInstr* q1 = p + 1;
    const BlockInstr* q2 = p + 2;
    REVEAL_BEGIN();
    cyc += p->cycles_taken;  // pre-summed straight-line prefix cost
    const std::uint32_t i0 = regs_[q1->rs1];     // canonical: counter != acc
    const std::uint32_t bound = regs_[q2->rs2];  // canonical: untouched in-run
    const std::uint32_t v0 = rs1 + rs2;
    REVEAL_FUSE_RET(p, v0);
    REVEAL_FUSE_EV(q1);
    const std::uint32_t v1 = i0 + static_cast<std::uint32_t>(q1->imm);
    REVEAL_FUSE_RET(q1, v1);
    REVEAL_FUSE_EV(q2);
    REVEAL_FUSE_BR(q2, v1 != bound);
  }

  // Sign-fold epilogue: center the accumulated CLT sum, multiply by the
  // random sign, and branch on the folded value (lui,addi,sub,mul,lui,add,
  // srai,srai,xor,sub,blt). Pure write-through with plain operand loads —
  // exact for any register pattern — retiring eleven micro-ops per dispatch.
  REVEAL_FUOP(kFuseSignFold) : {
    const BlockInstr* q1 = p + 1;
    const BlockInstr* q2 = p + 2;
    const BlockInstr* q3 = p + 3;
    const BlockInstr* q4 = p + 4;
    const BlockInstr* q5 = p + 5;
    const BlockInstr* q6 = p + 6;
    const BlockInstr* q7 = p + 7;
    const BlockInstr* q8 = p + 8;
    const BlockInstr* q9 = p + 9;
    const BlockInstr* q10 = p + 10;
    REVEAL_BEGIN();
    cyc += p->cycles_taken;  // pre-summed straight-line prefix cost
    REVEAL_FUSE_RET(p, REVEAL_IMM_U);  // lui
    REVEAL_FUSE_LOAD(q1);
    REVEAL_FUSE_RET(q1, rs1 + static_cast<std::uint32_t>(q1->imm));  // addi
    REVEAL_FUSE_LOAD(q2);
    REVEAL_FUSE_RET(q2, rs1 - rs2);  // sub
    REVEAL_FUSE_LOAD(q3);
    REVEAL_FUSE_RET(q3, static_cast<std::uint32_t>(
                            static_cast<std::int64_t>(REVEAL_SRS1) * REVEAL_SRS2));  // mul
    REVEAL_FUSE_LOAD(q4);
    REVEAL_FUSE_RET(q4, static_cast<std::uint32_t>(q4->imm));  // lui
    REVEAL_FUSE_LOAD(q5);
    REVEAL_FUSE_RET(q5, rs1 + rs2);  // add
    REVEAL_FUSE_LOAD(q6);
    REVEAL_FUSE_RET(q6, static_cast<std::uint32_t>(REVEAL_SRS1 >> (q6->imm & 31)));  // srai
    REVEAL_FUSE_LOAD(q7);
    REVEAL_FUSE_RET(q7, static_cast<std::uint32_t>(REVEAL_SRS1 >> (q7->imm & 31)));  // srai
    REVEAL_FUSE_LOAD(q8);
    REVEAL_FUSE_RET(q8, rs1 ^ rs2);  // xor
    REVEAL_FUSE_LOAD(q9);
    REVEAL_FUSE_RET(q9, rs1 - rs2);  // sub
    REVEAL_FUSE_LOAD(q10);
    REVEAL_FUSE_BR(q10, REVEAL_SRS1 < REVEAL_SRS2);  // blt
  }

  // Store-pointer advance and loop branch (slli,add,blt): write-through,
  // exact for any register pattern.
  REVEAL_FUOP(kFuseSlliAddBlt) : {
    const BlockInstr* q1 = p + 1;
    const BlockInstr* q2 = p + 2;
    REVEAL_BEGIN();
    cyc += p->cycles_taken;  // pre-summed straight-line prefix cost
    REVEAL_FUSE_RET(p, rs1 << (p->imm & 31));
    REVEAL_FUSE_LOAD(q1);
    REVEAL_FUSE_RET(q1, rs1 + rs2);
    REVEAL_FUSE_LOAD(q2);
    REVEAL_FUSE_BR(q2, REVEAL_SRS1 < REVEAL_SRS2);
  }

#if !REVEAL_BLOCK_THREADED
  }
#endif

  // Trap exits: the faulting instruction does not retire — counters exclude
  // it and pc_ stays at the fault, exactly like an un-advanced step_impl.
reveal_trap_load:
  cycles_ = cyc;
  retired_ = ret;
  pc_ = p->pc;
  trap("load access fault");
  return StopReason::kTrap;

reveal_trap_store:
  cycles_ = cyc;
  retired_ = ret;
  pc_ = p->pc;
  trap("store access fault");
  return StopReason::kTrap;

reveal_trap_csr_write:
  cycles_ = cyc;
  retired_ = ret;
  pc_ = p->pc;
  trap("unsupported CSR write");
  return StopReason::kTrap;

reveal_trap_csr:
  cycles_ = cyc;
  retired_ = ret;
  pc_ = p->pc;
  trap("unsupported CSR");
  return StopReason::kTrap;

#if REVEAL_BLOCK_THREADED
#pragma GCC diagnostic pop
#endif

#undef REVEAL_UOP
#undef REVEAL_FUOP
#undef REVEAL_DISPATCH
#undef REVEAL_FUSE_FIRST
#undef REVEAL_FUSE_ALU_ALU
#undef REVEAL_FUSE_ALU_BRANCH
#undef REVEAL_FUSE_OPS2
#undef REVEAL_FUSE_LOAD
#undef REVEAL_FUSE_EV
#undef REVEAL_FUSE_EVX
#undef REVEAL_FUSE_RET
#undef REVEAL_FUSE_RETX
#undef REVEAL_FUSE_BR
#undef REVEAL_BEGIN
#undef REVEAL_WRITE_RD
#undef REVEAL_RETIRE_NEXT
#undef REVEAL_SRS1
#undef REVEAL_SRS2
#undef REVEAL_IMM_U
#undef REVEAL_ALU
#undef REVEAL_BRANCH
#undef REVEAL_LOAD
#undef REVEAL_STORE
}

}  // namespace reveal::riscv
