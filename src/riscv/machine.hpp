#pragma once
// RV32IM instruction-set simulator with a PicoRV32-style multi-cycle timing
// model and an observer hook that reports per-instruction micro-architectural
// activity (register/bus toggles) — the raw material for the power model.
//
// Hot path: load_program() predecodes the program region into a cache of
// decoded instructions (class and cycle costs included), so the execute loop
// skips decode()/classify()/cycles_for() per retirement. Stores into the
// program region invalidate the affected cache word, and invalidated words
// re-decode lazily on the next fetch, so self-modifying code behaves exactly
// like the decode-per-step reference (pinned by the differential fuzz in
// tests/test_fast_path.cpp). run_with() additionally binds the observer
// statically, eliminating the virtual dispatch of run() — with a
// NullExecutionObserver the event construction folds away entirely.

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "riscv/isa.hpp"

namespace reveal::riscv {

/// Per-instruction cycle costs. Defaults approximate the PicoRV32 "regular"
/// configuration (non-pipelined fetch/decode/execute, sequential
/// multiplier) used by the paper's victim at 1.5 MHz.
struct TimingModel {
  std::uint32_t alu = 3;
  std::uint32_t alu_imm = 3;
  std::uint32_t load = 5;
  std::uint32_t store = 5;
  std::uint32_t branch_not_taken = 3;
  std::uint32_t branch_taken = 5;
  std::uint32_t jump = 5;
  std::uint32_t mul = 35;  // bit-serial multiplier
  std::uint32_t div = 40;  // bit-serial divider
  std::uint32_t system = 3;

  [[nodiscard]] std::uint32_t cycles_for(InstrClass klass, bool branch_taken) const noexcept;
};

/// Everything the power model needs to know about one retired instruction.
struct InstrEvent {
  std::uint32_t pc = 0;
  Op op = Op::kInvalid;
  InstrClass klass = InstrClass::kSystem;
  std::uint8_t rd = 0;
  std::uint32_t rs1_val = 0;
  std::uint32_t rs2_val = 0;
  std::uint32_t rd_old = 0;      ///< destination register content before write
  std::uint32_t rd_new = 0;      ///< destination register content after write
  bool rd_written = false;
  bool branch_taken = false;
  std::uint32_t mem_addr = 0;
  std::uint32_t mem_data = 0;    ///< written (stores) or read (loads) value
  bool is_mem_read = false;
  bool is_mem_write = false;
  std::uint32_t cycles = 0;      ///< from the timing model
};

/// Receives one callback per retired instruction.
class ExecutionObserver {
 public:
  virtual ~ExecutionObserver() = default;
  virtual void on_instruction(const InstrEvent& event) = 0;
};

/// Statically-dispatched no-op observer for run_with(): the inlined empty
/// callback lets the compiler discard the whole InstrEvent construction.
struct NullExecutionObserver {
  void on_instruction(const InstrEvent&) noexcept {}
};

class Machine {
 public:
  enum class StopReason { kHalt, kInstrLimit, kTrap };

  explicit Machine(std::size_t memory_bytes = 256 * 1024,
                   TimingModel timing = TimingModel{});

  /// Copies program words to `address`, sets the pc there, and (when
  /// predecoding is enabled) rebuilds the decoded-instruction cache over
  /// the program region.
  void load_program(const std::vector<std::uint32_t>& words, std::uint32_t address = 0);

  [[nodiscard]] std::uint32_t reg(Reg r) const noexcept { return regs_[index(r)]; }
  void set_reg(Reg r, std::uint32_t value) noexcept {
    if (r != zero) regs_[index(r)] = value;
  }
  [[nodiscard]] std::uint32_t pc() const noexcept { return pc_; }
  void set_pc(std::uint32_t pc) noexcept { pc_ = pc; }

  /// Word-aligned direct memory access for the host (throws on OOB). Host
  /// stores into the program region invalidate the predecode cache word.
  [[nodiscard]] std::uint32_t load_word(std::uint32_t address) const;
  void store_word(std::uint32_t address, std::uint32_t value);

  /// Executes until EBREAK/ECALL, the instruction limit, or a trap.
  /// Dispatches the observer virtually; a null observer takes the fused
  /// no-observer fast path.
  StopReason run(std::uint64_t max_instructions, ExecutionObserver* observer = nullptr);

  /// Fused run loop: the observer callback binds statically (no virtual
  /// dispatch per retirement). Semantics are identical to run() — same
  /// InstrEvent stream, cycles, and trap behaviour.
  template <typename ObserverT>
  StopReason run_with(std::uint64_t max_instructions, ObserverT& observer) {
    halted_ = false;
    trapped_ = false;
    for (std::uint64_t i = 0; i < max_instructions; ++i) {
      if (!step_impl(&observer)) {
        return trapped_ ? StopReason::kTrap : StopReason::kHalt;
      }
    }
    return StopReason::kInstrLimit;
  }

  /// Decode-per-step reference loop (the pre-predecode execution path):
  /// ignores the instruction cache and dispatches the observer virtually.
  /// Kept as the anchor for the differential fuzz tests and as the
  /// benchmark baseline; produces byte-identical results to run()/run_with().
  StopReason run_reference(std::uint64_t max_instructions,
                           ExecutionObserver* observer = nullptr);

  /// Enables/disables the predecoded-instruction fast path (default on).
  /// Disabling decodes every fetched word from memory again, like the
  /// reference loop; re-enabling rebuilds the cache from current memory.
  void set_predecode(bool enabled);
  [[nodiscard]] bool predecode_enabled() const noexcept { return predecode_; }

  [[nodiscard]] std::uint64_t cycle_count() const noexcept { return cycles_; }
  [[nodiscard]] std::uint64_t retired_count() const noexcept { return retired_; }
  [[nodiscard]] const std::string& trap_message() const noexcept { return trap_message_; }
  [[nodiscard]] const TimingModel& timing() const noexcept { return timing_; }

  /// Resets registers, pc and counters (memory and the predecode cache are
  /// preserved).
  void reset() noexcept;

 private:
  /// One predecoded program word: the decoded instruction plus everything
  /// the execute loop would otherwise recompute per retirement.
  struct DecodedInstr {
    Instruction ins{};
    InstrClass klass = InstrClass::kSystem;
    std::uint32_t cycles_taken = 0;
    std::uint32_t cycles_not_taken = 0;
    bool valid = false;
  };

  [[nodiscard]] bool in_bounds(std::uint32_t address, std::uint32_t size) const noexcept {
    return static_cast<std::uint64_t>(address) + size <= memory_.size();
  }
  bool trap(const std::string& message);

  [[nodiscard]] DecodedInstr make_entry(std::uint32_t word) const noexcept {
    DecodedInstr d;
    d.ins = decode(word);
    d.valid = true;
    if (d.ins.op != Op::kInvalid) {
      d.klass = classify(d.ins.op);
      d.cycles_taken = timing_.cycles_for(d.klass, true);
      d.cycles_not_taken = timing_.cycles_for(d.klass, false);
    }
    return d;
  }

  /// Drops the cache entry covering a stored-to program word (no-op when
  /// the address is outside the cached region).
  void invalidate_icache_word(std::uint32_t address) noexcept {
    if (!icache_.empty() && address >= icache_base_ && address < icache_end_) {
      icache_[(address - icache_base_) >> 2].valid = false;
    }
  }

  void rebuild_icache();

  /// Executes one instruction; returns false to stop (halt or trap).
  /// `kUseCache = false` forces the decode-per-step reference behaviour.
  template <typename ObserverT, bool kUseCache = true>
  bool step_impl(ObserverT* observer);

  std::vector<std::uint8_t> memory_;
  std::uint32_t regs_[32] = {};
  std::uint32_t pc_ = 0;
  std::uint64_t cycles_ = 0;
  std::uint64_t retired_ = 0;
  bool halted_ = false;
  bool trapped_ = false;
  std::string trap_message_;
  TimingModel timing_;
  std::vector<DecodedInstr> icache_;
  std::uint32_t icache_base_ = 0;  ///< byte address of icache_[0] (word aligned)
  std::uint32_t icache_end_ = 0;   ///< one past the cached byte range
  bool predecode_ = true;
};

namespace detail {
__extension__ typedef __int128 machine_i128;
}  // namespace detail

template <typename ObserverT, bool kUseCache>
bool Machine::step_impl(ObserverT* observer) {
  if ((pc_ & 3u) != 0 || !in_bounds(pc_, 4)) return trap("instruction fetch fault");
  Instruction ins;
  InstrClass klass;
  std::uint32_t cyc_taken;
  std::uint32_t cyc_not_taken;
  if (kUseCache && predecode_ && pc_ >= icache_base_ && pc_ < icache_end_) {
    DecodedInstr& entry = icache_[(pc_ - icache_base_) >> 2];
    if (!entry.valid) {
      std::uint32_t word;
      std::memcpy(&word, memory_.data() + pc_, 4);
      entry = make_entry(word);
    }
    ins = entry.ins;
    if (ins.op == Op::kInvalid) return trap("illegal instruction");
    klass = entry.klass;
    cyc_taken = entry.cycles_taken;
    cyc_not_taken = entry.cycles_not_taken;
  } else {
    std::uint32_t word;
    std::memcpy(&word, memory_.data() + pc_, 4);
    ins = decode(word);
    if (ins.op == Op::kInvalid) return trap("illegal instruction");
    klass = classify(ins.op);
    cyc_taken = timing_.cycles_for(klass, true);
    cyc_not_taken = timing_.cycles_for(klass, false);
  }

  InstrEvent ev;
  ev.pc = pc_;
  ev.op = ins.op;
  ev.klass = klass;
  ev.rd = ins.rd;
  ev.rs1_val = regs_[ins.rs1];
  ev.rs2_val = regs_[ins.rs2];

  const std::uint32_t rs1 = ev.rs1_val;
  const std::uint32_t rs2 = ev.rs2_val;
  const auto srs1 = static_cast<std::int32_t>(rs1);
  const auto srs2 = static_cast<std::int32_t>(rs2);
  std::uint32_t next_pc = pc_ + 4;
  std::uint32_t rd_value = 0;
  bool write_rd = false;

  auto mem_load = [&](std::uint32_t addr, std::uint32_t size, bool sign) -> bool {
    if (!in_bounds(addr, size) || (size > 1 && (addr & (size - 1)) != 0)) {
      trap("load access fault");
      return false;
    }
    std::uint32_t raw = 0;
    std::memcpy(&raw, memory_.data() + addr, size);
    if (sign) {
      if (size == 1) raw = static_cast<std::uint32_t>(static_cast<std::int8_t>(raw));
      else if (size == 2) raw = static_cast<std::uint32_t>(static_cast<std::int16_t>(raw));
    }
    rd_value = raw;
    write_rd = true;
    ev.mem_addr = addr;
    ev.mem_data = raw;
    ev.is_mem_read = true;
    return true;
  };

  auto mem_store = [&](std::uint32_t addr, std::uint32_t size) -> bool {
    if (!in_bounds(addr, size) || (size > 1 && (addr & (size - 1)) != 0)) {
      trap("store access fault");
      return false;
    }
    std::memcpy(memory_.data() + addr, &rs2, size);
    invalidate_icache_word(addr);
    ev.mem_addr = addr;
    ev.mem_data = size == 4 ? rs2 : (rs2 & ((1u << (size * 8)) - 1u));
    ev.is_mem_write = true;
    return true;
  };

  switch (ins.op) {
    case Op::kLui: rd_value = static_cast<std::uint32_t>(ins.imm); write_rd = true; break;
    case Op::kAuipc:
      rd_value = pc_ + static_cast<std::uint32_t>(ins.imm);
      write_rd = true;
      break;
    case Op::kJal:
      rd_value = pc_ + 4;
      write_rd = true;
      next_pc = pc_ + static_cast<std::uint32_t>(ins.imm);
      break;
    case Op::kJalr:
      rd_value = pc_ + 4;
      write_rd = true;
      next_pc = (rs1 + static_cast<std::uint32_t>(ins.imm)) & ~1u;
      break;
    case Op::kBeq: ev.branch_taken = rs1 == rs2; break;
    case Op::kBne: ev.branch_taken = rs1 != rs2; break;
    case Op::kBlt: ev.branch_taken = srs1 < srs2; break;
    case Op::kBge: ev.branch_taken = srs1 >= srs2; break;
    case Op::kBltu: ev.branch_taken = rs1 < rs2; break;
    case Op::kBgeu: ev.branch_taken = rs1 >= rs2; break;
    case Op::kLb: if (!mem_load(rs1 + static_cast<std::uint32_t>(ins.imm), 1, true)) return false; break;
    case Op::kLh: if (!mem_load(rs1 + static_cast<std::uint32_t>(ins.imm), 2, true)) return false; break;
    case Op::kLw: if (!mem_load(rs1 + static_cast<std::uint32_t>(ins.imm), 4, false)) return false; break;
    case Op::kLbu: if (!mem_load(rs1 + static_cast<std::uint32_t>(ins.imm), 1, false)) return false; break;
    case Op::kLhu: if (!mem_load(rs1 + static_cast<std::uint32_t>(ins.imm), 2, false)) return false; break;
    case Op::kSb: if (!mem_store(rs1 + static_cast<std::uint32_t>(ins.imm), 1)) return false; break;
    case Op::kSh: if (!mem_store(rs1 + static_cast<std::uint32_t>(ins.imm), 2)) return false; break;
    case Op::kSw: if (!mem_store(rs1 + static_cast<std::uint32_t>(ins.imm), 4)) return false; break;
    case Op::kAddi: rd_value = rs1 + static_cast<std::uint32_t>(ins.imm); write_rd = true; break;
    case Op::kSlti: rd_value = srs1 < ins.imm ? 1 : 0; write_rd = true; break;
    case Op::kSltiu:
      rd_value = rs1 < static_cast<std::uint32_t>(ins.imm) ? 1 : 0;
      write_rd = true;
      break;
    case Op::kXori: rd_value = rs1 ^ static_cast<std::uint32_t>(ins.imm); write_rd = true; break;
    case Op::kOri: rd_value = rs1 | static_cast<std::uint32_t>(ins.imm); write_rd = true; break;
    case Op::kAndi: rd_value = rs1 & static_cast<std::uint32_t>(ins.imm); write_rd = true; break;
    case Op::kSlli: rd_value = rs1 << (ins.imm & 31); write_rd = true; break;
    case Op::kSrli: rd_value = rs1 >> (ins.imm & 31); write_rd = true; break;
    case Op::kSrai:
      rd_value = static_cast<std::uint32_t>(srs1 >> (ins.imm & 31));
      write_rd = true;
      break;
    case Op::kAdd: rd_value = rs1 + rs2; write_rd = true; break;
    case Op::kSub: rd_value = rs1 - rs2; write_rd = true; break;
    case Op::kSll: rd_value = rs1 << (rs2 & 31); write_rd = true; break;
    case Op::kSlt: rd_value = srs1 < srs2 ? 1 : 0; write_rd = true; break;
    case Op::kSltu: rd_value = rs1 < rs2 ? 1 : 0; write_rd = true; break;
    case Op::kXor: rd_value = rs1 ^ rs2; write_rd = true; break;
    case Op::kSrl: rd_value = rs1 >> (rs2 & 31); write_rd = true; break;
    case Op::kSra: rd_value = static_cast<std::uint32_t>(srs1 >> (rs2 & 31)); write_rd = true; break;
    case Op::kOr: rd_value = rs1 | rs2; write_rd = true; break;
    case Op::kAnd: rd_value = rs1 & rs2; write_rd = true; break;
    case Op::kMul:
      rd_value = static_cast<std::uint32_t>(static_cast<std::int64_t>(srs1) * srs2);
      write_rd = true;
      break;
    case Op::kMulh:
      rd_value = static_cast<std::uint32_t>(
          (static_cast<std::int64_t>(srs1) * static_cast<std::int64_t>(srs2)) >> 32);
      write_rd = true;
      break;
    case Op::kMulhsu:
      rd_value = static_cast<std::uint32_t>(
          (static_cast<detail::machine_i128>(srs1) * static_cast<detail::machine_i128>(rs2)) >> 32);
      write_rd = true;
      break;
    case Op::kMulhu:
      rd_value = static_cast<std::uint32_t>(
          (static_cast<std::uint64_t>(rs1) * static_cast<std::uint64_t>(rs2)) >> 32);
      write_rd = true;
      break;
    case Op::kDiv:
      if (rs2 == 0) rd_value = ~0u;
      else if (srs1 == INT32_MIN && srs2 == -1) rd_value = static_cast<std::uint32_t>(INT32_MIN);
      else rd_value = static_cast<std::uint32_t>(srs1 / srs2);
      write_rd = true;
      break;
    case Op::kDivu:
      rd_value = rs2 == 0 ? ~0u : rs1 / rs2;
      write_rd = true;
      break;
    case Op::kRem:
      if (rs2 == 0) rd_value = rs1;
      else if (srs1 == INT32_MIN && srs2 == -1) rd_value = 0;
      else rd_value = static_cast<std::uint32_t>(srs1 % srs2);
      write_rd = true;
      break;
    case Op::kRemu:
      rd_value = rs2 == 0 ? rs1 : rs1 % rs2;
      write_rd = true;
      break;
    case Op::kFence: break;
    case Op::kCsrrs: {
      // Zicntr: rdcycle (0xC00), rdinstret (0xC02) and their high halves.
      if (ins.rs1 != 0) return trap("unsupported CSR write");
      const auto csr = static_cast<std::uint32_t>(ins.imm) & 0xFFFu;
      std::uint64_t value = 0;
      switch (csr) {
        case 0xC00: value = cycles_; break;                // cycle
        case 0xC02: value = retired_; break;               // instret
        case 0xC80: value = cycles_ >> 32; break;          // cycleh
        case 0xC82: value = retired_ >> 32; break;         // instreth
        default: return trap("unsupported CSR");
      }
      rd_value = static_cast<std::uint32_t>(value);
      write_rd = true;
      break;
    }
    case Op::kEcall:
    case Op::kEbreak:
      halted_ = true;
      break;
    case Op::kInvalid:
      return trap("illegal instruction");
  }

  if (ev.branch_taken) next_pc = pc_ + static_cast<std::uint32_t>(ins.imm);

  if (write_rd && ins.rd != 0) {
    ev.rd_old = regs_[ins.rd];
    regs_[ins.rd] = rd_value;
    ev.rd_new = rd_value;
    ev.rd_written = true;
  }

  ev.cycles = ev.branch_taken ? cyc_taken : cyc_not_taken;
  cycles_ += ev.cycles;
  ++retired_;
  pc_ = next_pc;
  if (observer != nullptr) observer->on_instruction(ev);
  return !halted_;
}

}  // namespace reveal::riscv
