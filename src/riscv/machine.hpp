#pragma once
// RV32IM instruction-set simulator with a PicoRV32-style multi-cycle timing
// model and an observer hook that reports per-instruction micro-architectural
// activity (register/bus toggles) — the raw material for the power model.

#include <cstdint>
#include <string>
#include <vector>

#include "riscv/isa.hpp"

namespace reveal::riscv {

/// Per-instruction cycle costs. Defaults approximate the PicoRV32 "regular"
/// configuration (non-pipelined fetch/decode/execute, sequential
/// multiplier) used by the paper's victim at 1.5 MHz.
struct TimingModel {
  std::uint32_t alu = 3;
  std::uint32_t alu_imm = 3;
  std::uint32_t load = 5;
  std::uint32_t store = 5;
  std::uint32_t branch_not_taken = 3;
  std::uint32_t branch_taken = 5;
  std::uint32_t jump = 5;
  std::uint32_t mul = 35;  // bit-serial multiplier
  std::uint32_t div = 40;  // bit-serial divider
  std::uint32_t system = 3;

  [[nodiscard]] std::uint32_t cycles_for(InstrClass klass, bool branch_taken) const noexcept;
};

/// Everything the power model needs to know about one retired instruction.
struct InstrEvent {
  std::uint32_t pc = 0;
  Op op = Op::kInvalid;
  InstrClass klass = InstrClass::kSystem;
  std::uint8_t rd = 0;
  std::uint32_t rs1_val = 0;
  std::uint32_t rs2_val = 0;
  std::uint32_t rd_old = 0;      ///< destination register content before write
  std::uint32_t rd_new = 0;      ///< destination register content after write
  bool rd_written = false;
  bool branch_taken = false;
  std::uint32_t mem_addr = 0;
  std::uint32_t mem_data = 0;    ///< written (stores) or read (loads) value
  bool is_mem_read = false;
  bool is_mem_write = false;
  std::uint32_t cycles = 0;      ///< from the timing model
};

/// Receives one callback per retired instruction.
class ExecutionObserver {
 public:
  virtual ~ExecutionObserver() = default;
  virtual void on_instruction(const InstrEvent& event) = 0;
};

class Machine {
 public:
  enum class StopReason { kHalt, kInstrLimit, kTrap };

  explicit Machine(std::size_t memory_bytes = 256 * 1024,
                   TimingModel timing = TimingModel{});

  /// Copies program words to `address` and sets the pc there.
  void load_program(const std::vector<std::uint32_t>& words, std::uint32_t address = 0);

  [[nodiscard]] std::uint32_t reg(Reg r) const noexcept { return regs_[index(r)]; }
  void set_reg(Reg r, std::uint32_t value) noexcept {
    if (r != zero) regs_[index(r)] = value;
  }
  [[nodiscard]] std::uint32_t pc() const noexcept { return pc_; }
  void set_pc(std::uint32_t pc) noexcept { pc_ = pc; }

  /// Word-aligned direct memory access for the host (throws on OOB).
  [[nodiscard]] std::uint32_t load_word(std::uint32_t address) const;
  void store_word(std::uint32_t address, std::uint32_t value);

  /// Executes until EBREAK/ECALL, the instruction limit, or a trap.
  StopReason run(std::uint64_t max_instructions, ExecutionObserver* observer = nullptr);

  [[nodiscard]] std::uint64_t cycle_count() const noexcept { return cycles_; }
  [[nodiscard]] std::uint64_t retired_count() const noexcept { return retired_; }
  [[nodiscard]] const std::string& trap_message() const noexcept { return trap_message_; }
  [[nodiscard]] const TimingModel& timing() const noexcept { return timing_; }

  /// Resets registers, pc and counters (memory is preserved).
  void reset() noexcept;

 private:
  /// Executes one instruction; returns false to stop (halt or trap).
  bool step(ExecutionObserver* observer);

  [[nodiscard]] bool in_bounds(std::uint32_t address, std::uint32_t size) const noexcept {
    return static_cast<std::uint64_t>(address) + size <= memory_.size();
  }
  bool trap(const std::string& message);

  std::vector<std::uint8_t> memory_;
  std::uint32_t regs_[32] = {};
  std::uint32_t pc_ = 0;
  std::uint64_t cycles_ = 0;
  std::uint64_t retired_ = 0;
  bool halted_ = false;
  bool trapped_ = false;
  std::string trap_message_;
  TimingModel timing_;
};

}  // namespace reveal::riscv
