#pragma once
// Binary serialization of the BFV value types (polys, plaintexts,
// ciphertexts, keys) — stream-based with per-type magic tags and a file
// convenience layer. The format is little-endian and
// versioned; loads validate structure and throw std::runtime_error on
// corrupt or mismatched data.

#include <iosfwd>
#include <string>

#include "seal/ciphertext.hpp"
#include "seal/encryption_params.hpp"
#include "seal/keys.hpp"
#include "seal/poly.hpp"

namespace reveal::seal {

void save_poly(const Poly& poly, std::ostream& out);
[[nodiscard]] Poly load_poly(std::istream& in);

void save_plaintext(const Plaintext& plain, std::ostream& out);
[[nodiscard]] Plaintext load_plaintext(std::istream& in);

void save_ciphertext(const Ciphertext& ct, std::ostream& out);
[[nodiscard]] Ciphertext load_ciphertext(std::istream& in);

void save_public_key(const PublicKey& pk, std::ostream& out);
[[nodiscard]] PublicKey load_public_key(std::istream& in);

void save_secret_key(const SecretKey& sk, std::ostream& out);
[[nodiscard]] SecretKey load_secret_key(std::istream& in);

/// True if the poly's shape matches the context (degree and RNS count) and
/// every coefficient is reduced modulo its modulus.
[[nodiscard]] bool conforms_to(const Poly& poly, const Context& context);

/// File helpers (throw std::runtime_error on I/O failure).
void save_ciphertext_file(const Ciphertext& ct, const std::string& path);
[[nodiscard]] Ciphertext load_ciphertext_file(const std::string& path);
void save_public_key_file(const PublicKey& pk, const std::string& path);
[[nodiscard]] PublicKey load_public_key_file(const std::string& path);

}  // namespace reveal::seal
