#pragma once
// Key material and key generation for the BFV scheme.

#include <cstdint>
#include <map>
#include <vector>

#include "seal/encryption_params.hpp"
#include "seal/poly.hpp"
#include "seal/random.hpp"

namespace reveal::seal {

/// Secret key: ternary polynomial s (coefficient representation).
struct SecretKey {
  Poly s;
};

/// Public key: pk = (p0, p1) = ([-(a s + e)]_q, a).
struct PublicKey {
  Poly p0;
  Poly p1;
};

/// Relinearization keys: base-2^w decomposition of encryptions of s^2.
/// rk[l] = (-(a_l s + e_l) + w^l s^2, a_l).
struct RelinKeys {
  std::vector<std::pair<Poly, Poly>> keys;
  int decomposition_bit_count = 0;
};

/// Key-switching keys for Galois automorphisms x -> x^g: per element g, a
/// base-2^w key-switch key encrypting s(x^g) under s.
struct GaloisKeys {
  /// keys[g][l] = (-(a_l s + e_l) + w^l s(x^g), a_l).
  std::map<std::uint32_t, std::vector<std::pair<Poly, Poly>>> keys;
  int decomposition_bit_count = 0;

  [[nodiscard]] bool has(std::uint32_t galois_element) const {
    return keys.find(galois_element) != keys.end();
  }
};

/// Generates sk / pk / relin keys per the BFV KeyGen of §II-A.
class KeyGenerator {
 public:
  /// Draws the secret key immediately; `random` must outlive the generator.
  KeyGenerator(const Context& context, UniformRandomGenerator& random);

  [[nodiscard]] const SecretKey& secret_key() const noexcept { return secret_key_; }
  [[nodiscard]] const PublicKey& public_key() const noexcept { return public_key_; }

  /// Generates relinearization keys with the given decomposition bit count
  /// (single-modulus contexts only; throws otherwise).
  [[nodiscard]] RelinKeys create_relin_keys(int decomposition_bit_count = 16);

  /// Generates Galois keys for the given elements (each odd, < 2n).
  /// Single-modulus contexts only.
  [[nodiscard]] GaloisKeys create_galois_keys(const std::vector<std::uint32_t>& elements,
                                              int decomposition_bit_count = 8);

 private:
  const Context& context_;
  UniformRandomGenerator& random_;
  SecretKey secret_key_;
  PublicKey public_key_;
};

}  // namespace reveal::seal
