#pragma once
// Homomorphic evaluation for the BFV scheme: addition/subtraction/negation
// for any parameter set; ciphertext multiplication and relinearization for
// single-modulus contexts (sufficient for the paper's parameter set and the
// cloud-side "Evaluate" of Fig. 1).

#include "seal/ciphertext.hpp"
#include "seal/encryption_params.hpp"
#include "seal/keys.hpp"

namespace reveal::seal {

class Evaluator {
 public:
  explicit Evaluator(const Context& context) : context_(context) {}

  void add_inplace(Ciphertext& a, const Ciphertext& b) const;
  void sub_inplace(Ciphertext& a, const Ciphertext& b) const;
  void negate_inplace(Ciphertext& a) const;

  /// a += Δ·plain (adds a plaintext to the message slot).
  void add_plain_inplace(Ciphertext& a, const Plaintext& plain) const;

  /// a *= plain (polynomial product with the plaintext lifted mod q_j).
  void multiply_plain_inplace(Ciphertext& a, const Plaintext& plain) const;

  /// Full BFV multiplication: result has 3 components (tensor + t/q scaling).
  /// Single-modulus contexts only; throws std::logic_error otherwise.
  [[nodiscard]] Ciphertext multiply(const Ciphertext& a, const Ciphertext& b) const;

  /// Reduces a 3-component ciphertext back to 2 components.
  void relinearize_inplace(Ciphertext& a, const RelinKeys& rk) const;

  /// Applies the Galois automorphism x -> x^g homomorphically: the result
  /// encrypts m(x^g). Requires a fresh 2-component ciphertext, a matching
  /// key in `gk`, and a single-modulus context.
  void apply_galois_inplace(Ciphertext& a, std::uint32_t galois_element,
                            const GaloisKeys& gk) const;

  /// The Galois element realizing a batched-slot rotation by `step`
  /// (3^step mod 2n; step may be negative).
  [[nodiscard]] std::uint32_t galois_element_for_step(int step) const;

 private:
  const Context& context_;
};

}  // namespace reveal::seal
