#include "seal/modulus.hpp"

#include <stdexcept>

namespace reveal::seal {

namespace {

__extension__ typedef unsigned __int128 u128;

int bit_length(std::uint64_t v) noexcept {
  int bits = 0;
  while (v != 0) {
    ++bits;
    v >>= 1;
  }
  return bits;
}

std::uint64_t mulmod_u64(std::uint64_t a, std::uint64_t b, std::uint64_t m) noexcept {
  return static_cast<std::uint64_t>(static_cast<u128>(a) * b % m);
}

std::uint64_t powmod_u64(std::uint64_t base, std::uint64_t exp, std::uint64_t m) noexcept {
  std::uint64_t result = 1 % m;
  base %= m;
  while (exp != 0) {
    if (exp & 1) result = mulmod_u64(result, base, m);
    base = mulmod_u64(base, base, m);
    exp >>= 1;
  }
  return result;
}

}  // namespace

bool is_prime_u64(std::uint64_t n) noexcept {
  if (n < 2) return false;
  for (std::uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL, 23ULL,
                          29ULL, 31ULL, 37ULL}) {
    if (n % p == 0) return n == p;
  }
  // Write n-1 = d * 2^r.
  std::uint64_t d = n - 1;
  int r = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++r;
  }
  // These witnesses are deterministic for all n < 2^64.
  for (std::uint64_t a : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL, 23ULL,
                          29ULL, 31ULL, 37ULL}) {
    std::uint64_t x = powmod_u64(a, d, n);
    if (x == 1 || x == n - 1) continue;
    bool composite = true;
    for (int i = 0; i < r - 1; ++i) {
      x = mulmod_u64(x, x, n);
      if (x == n - 1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

Modulus::Modulus(std::uint64_t value) {
  if (value < 2 || value >= (std::uint64_t{1} << 61))
    throw std::invalid_argument("Modulus: value must satisfy 2 <= value < 2^61");
  value_ = value;
  bit_count_ = bit_length(value);
  is_prime_ = is_prime_u64(value);
  // const_ratio = floor(2^128 / value) computed by 128-bit long division.
  // 2^128 / v: first divide 2^64 by v to get the high word contribution.
  const u128 numerator_high = (static_cast<u128>(1) << 64);
  const u128 q_high = numerator_high / value;
  const u128 r_high = numerator_high % value;
  const u128 q_low = (r_high << 64) / value;
  const_ratio_[1] = static_cast<std::uint64_t>(q_high);
  const_ratio_[0] = static_cast<std::uint64_t>(q_low);
}

std::uint64_t Modulus::reduce(std::uint64_t input) const noexcept {
  // Single-word Barrett: q_hat = floor(input * floor(2^128/q) / 2^128);
  // the estimate is off by at most one multiple of value_.
  const std::uint64_t q_hat =
      static_cast<std::uint64_t>(((static_cast<u128>(input) * const_ratio_[1]) +
                                  ((static_cast<u128>(input) * const_ratio_[0]) >> 64)) >>
                                 64);
  std::uint64_t result = input - q_hat * value_;
  if (result >= value_) result -= value_;
  return result;
}

std::uint64_t Modulus::reduce128(std::uint64_t high, std::uint64_t low) const noexcept {
  // Barrett reduction of a 128-bit value following SEAL's barrett_reduce_128.
  // tmp3 = floor(input * const_ratio / 2^128), then input - tmp3 * value.
  const std::uint64_t cr0 = const_ratio_[0];
  const std::uint64_t cr1 = const_ratio_[1];

  // Round 1: multiply low word.
  const u128 low_cr0 = static_cast<u128>(low) * cr0;
  const std::uint64_t carry1 = static_cast<std::uint64_t>(low_cr0 >> 64);
  const u128 low_cr1 = static_cast<u128>(low) * cr1;
  const u128 tmp2 = low_cr1 + carry1;
  const std::uint64_t tmp1 = static_cast<std::uint64_t>(tmp2);
  const std::uint64_t carry2 = static_cast<std::uint64_t>(tmp2 >> 64);

  // Round 2: multiply high word.
  const u128 high_cr0 = static_cast<u128>(high) * cr0;
  const u128 tmp3 = high_cr0 + tmp1;
  const std::uint64_t carry3 = static_cast<std::uint64_t>(tmp3 >> 64);
  const std::uint64_t tmp4 = high * cr1 + carry2 + carry3;

  // Barrett subtraction: result = low - tmp4 * value (mod 2^64).
  std::uint64_t result = low - tmp4 * value_;
  if (result >= value_) result -= value_;
  return result;
}

Modulus find_ntt_prime(int bit_count, std::size_t poly_degree, std::size_t skip) {
  if (bit_count < 8 || bit_count > 60)
    throw std::invalid_argument("find_ntt_prime: bit_count must be in [8, 60]");
  const std::uint64_t two_n = static_cast<std::uint64_t>(poly_degree) * 2;
  // Start at the largest candidate ≡ 1 (mod 2n) below 2^bit_count.
  std::uint64_t candidate = ((std::uint64_t{1} << bit_count) - 1) / two_n * two_n + 1;
  std::size_t skipped = 0;
  while (candidate > two_n) {
    if (candidate < (std::uint64_t{1} << bit_count) && is_prime_u64(candidate)) {
      if (skipped == skip) return Modulus(candidate);
      ++skipped;
    }
    candidate -= two_n;
  }
  throw std::runtime_error("find_ntt_prime: no NTT-friendly prime found");
}

std::vector<Modulus> find_ntt_primes(int bit_count, std::size_t poly_degree,
                                     std::size_t count) {
  std::vector<Modulus> primes;
  primes.reserve(count);
  for (std::size_t i = 0; i < count; ++i) primes.push_back(find_ntt_prime(bit_count, poly_degree, i));
  return primes;
}

}  // namespace reveal::seal
