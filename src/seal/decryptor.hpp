#pragma once
// BFV decryption: m = [ round(t/q · [c0 + c1·s (+ c2·s²)]_q) ]_t.
//
// Works for any number of RNS components: the noisy inner product is
// CRT-composed into a BigUInt per coefficient, then the exact rational
// rounding is done with multi-precision arithmetic.

#include <cstdint>

#include "seal/ciphertext.hpp"
#include "seal/crt.hpp"
#include "seal/encryption_params.hpp"
#include "seal/keys.hpp"

namespace reveal::seal {

class Decryptor {
 public:
  Decryptor(const Context& context, const SecretKey& sk);

  /// Decrypts a 2- or 3-component ciphertext.
  [[nodiscard]] Plaintext decrypt(const Ciphertext& ct) const;

  /// Remaining invariant-noise budget in bits (0 = decryption unreliable).
  /// Mirrors SEAL's Decryptor::invariant_noise_budget.
  [[nodiscard]] int invariant_noise_budget(const Ciphertext& ct) const;

 private:
  /// v = c0 + c1 s + c2 s^2 per RNS component (coefficient representation).
  [[nodiscard]] Poly dot_product_with_secret(const Ciphertext& ct) const;

  const Context& context_;
  SecretKey sk_;
  CrtComposer crt_;
};

}  // namespace reveal::seal
