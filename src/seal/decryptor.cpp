#include "seal/decryptor.hpp"

#include <cmath>
#include <stdexcept>

#include "seal/modarith.hpp"
#include "seal/poly.hpp"

namespace reveal::seal {

Decryptor::Decryptor(const Context& context, const SecretKey& sk)
    : context_(context), sk_(sk), crt_(context.coeff_modulus()) {
  if (sk_.s.coeff_count() != context_.n())
    throw std::invalid_argument("Decryptor: secret key does not match context");
}

Poly Decryptor::dot_product_with_secret(const Ciphertext& ct) const {
  if (ct.size() < 2 || ct.size() > 3)
    throw std::invalid_argument("Decryptor: ciphertext must have 2 or 3 components");
  const auto& tables = context_.fast_ntt_tables();
  const auto& moduli = context_.coeff_modulus();

  Poly v = ct[0];
  Poly c1s;
  polyops::multiply_ntt(ct[1], sk_.s, tables, c1s);
  polyops::add(v, c1s, moduli, v);
  if (ct.size() == 3) {
    Poly s2;
    polyops::multiply_ntt(sk_.s, sk_.s, tables, s2);
    Poly c2s2;
    polyops::multiply_ntt(ct[2], s2, tables, c2s2);
    polyops::add(v, c2s2, moduli, v);
  }
  return v;
}

Plaintext Decryptor::decrypt(const Ciphertext& ct) const {
  const Poly v = dot_product_with_secret(ct);
  const std::uint64_t t = context_.plain_modulus().value();
  const BigUInt& q = context_.total_coeff_modulus();
  const BigUInt half_q = [&q] {
    BigUInt h = q;
    h >>= 1;
    return h;
  }();

  std::vector<std::uint64_t> message(context_.n(), 0);
  for (std::size_t i = 0; i < context_.n(); ++i) {
    const BigUInt x = crt_.compose(v, i);
    // m_i = floor((t*x + q/2) / q) mod t — exact rounded division.
    const BigUInt numerator = x * t + half_q;
    const BigUInt quotient = BigUInt::divmod(numerator, q).quotient;
    message[i] = quotient.mod_word(t);
  }
  // Trim trailing zeros for a canonical representation.
  while (!message.empty() && message.back() == 0) message.pop_back();
  return Plaintext(std::move(message));
}

int Decryptor::invariant_noise_budget(const Ciphertext& ct) const {
  const Poly v = dot_product_with_secret(ct);
  const std::uint64_t t = context_.plain_modulus().value();
  const BigUInt& q = context_.total_coeff_modulus();
  const BigUInt half_q = [&q] {
    BigUInt h = q;
    h >>= 1;
    return h;
  }();

  // Invariant noise: w_i = [t * v_i]_q centered; budget =
  // log2(q) - log2(2*max|w_i|). Decryption is correct while budget > 0.
  BigUInt max_mag;
  for (std::size_t i = 0; i < context_.n(); ++i) {
    const BigUInt x = crt_.compose(v, i);
    BigUInt w = BigUInt::divmod(x * t, q).remainder;
    if (w > half_q) w = q - w;  // centered magnitude
    if (w > max_mag) max_mag = w;
  }
  const double log_q = std::log2(q.to_double());
  const double log_w = max_mag.is_zero() ? 0.0 : std::log2(max_mag.to_double());
  const double budget = log_q - log_w - 1.0;
  return budget < 0.0 ? 0 : static_cast<int>(budget);
}

}  // namespace reveal::seal
