#pragma once
// Harvey-style negacyclic NTT with Shoup-precomputed twiddle factors and
// lazy reduction — the algorithm SEAL itself uses (ntt_negacyclic_harvey).
//
// Compared to ntt.hpp's reference transform (one Barrett reduction per
// butterfly multiply), this variant precomputes w' = floor(w * 2^64 / q)
// per twiddle so a modular multiply costs two 64x64 multiplies and one
// conditional subtraction, and keeps values in [0, 4q) during the forward
// pass ("lazy"), reducing only at the end. Requires q < 2^61 so 4q fits
// comfortably below 2^63.

#include <cstdint>
#include <vector>

#include "seal/modulus.hpp"

namespace reveal::seal {

class FastNttTables {
 public:
  /// Same preconditions as NttTables: n a power of two, q prime,
  /// q ≡ 1 (mod 2n).
  FastNttTables(std::size_t n, const Modulus& q);

  [[nodiscard]] std::size_t n() const noexcept { return n_; }
  [[nodiscard]] const Modulus& modulus() const noexcept { return q_; }

  /// In-place transforms, bit-identical to NttTables' results.
  void forward_transform(std::uint64_t* values) const noexcept;
  void inverse_transform(std::uint64_t* values) const noexcept;

  void forward_transform(std::vector<std::uint64_t>& values) const;
  void inverse_transform(std::vector<std::uint64_t>& values) const;

 private:
  std::size_t n_ = 0;
  int log_n_ = 0;
  Modulus q_;
  std::uint64_t two_q_ = 0;
  std::vector<std::uint64_t> roots_;        // psi^bitrev(i)
  std::vector<std::uint64_t> roots_shoup_;  // floor(roots * 2^64 / q)
  std::vector<std::uint64_t> inv_roots_;
  std::vector<std::uint64_t> inv_roots_shoup_;
  std::uint64_t inv_n_ = 0;
  std::uint64_t inv_n_shoup_ = 0;
};

}  // namespace reveal::seal
