#pragma once
// Polynomial samplers.
//
// `set_poly_coeffs_normal` is a line-for-line port of the SEAL v3.2 routine
// the paper attacks (Fig. 2): the noise value flows through an
// if / else-if / else sign-assignment with a negation on the negative path —
// the three vulnerabilities (branch leakage, value assignment leakage,
// negation leakage) all live here. `sample_poly_normal_v36` is the
// patched, branchless equivalent of the SEAL v3.6 fix.

#include <cstdint>
#include <vector>

#include "seal/encryption_params.hpp"
#include "seal/poly.hpp"
#include "seal/random.hpp"

namespace reveal::seal {

/// SEAL v3.2 Encryptor::set_poly_coeffs_normal (vulnerable).
///
/// `poly` must point to coeff_count * coeff_mod_count uint64 slots laid out
/// SEAL-style (coefficient i of component j at poly[i + j*coeff_count]).
/// If `sampled_out` is non-null it receives the signed noise value of every
/// coefficient (ground truth for attack evaluation).
void set_poly_coeffs_normal(std::uint64_t* poly, UniformRandomGenerator& random,
                            const Context& context,
                            std::vector<std::int64_t>* sampled_out = nullptr);

/// SEAL v3.6-style patched sampler: identical output distribution, but the
/// sign assignment is computed with branch-free arithmetic select, so no
/// instruction-flow difference exists between positive/negative/zero draws.
void sample_poly_normal_v36(std::uint64_t* poly, UniformRandomGenerator& random,
                            const Context& context,
                            std::vector<std::int64_t>* sampled_out = nullptr);

/// Uniform ternary polynomial (coefficients in {-1, 0, 1}) — the R_2
/// distribution used for the secret key s and the encryption sample u.
void sample_poly_ternary(Poly& poly, UniformRandomGenerator& random, const Context& context);

/// Uniform polynomial over [0, q_j) per component — used for the public
/// key's `a` part.
void sample_poly_uniform(Poly& poly, UniformRandomGenerator& random, const Context& context);

/// Convenience: samples a fresh error polynomial with the vulnerable sampler.
[[nodiscard]] Poly sample_error_poly(UniformRandomGenerator& random, const Context& context,
                                     std::vector<std::int64_t>* sampled_out = nullptr);

/// Writes a *known* signed noise vector into a poly using the same encoding
/// the samplers use (positive -> value, negative -> q_j - |value|, zero -> 0).
void encode_noise_values(const std::vector<std::int64_t>& noise, const Context& context,
                         Poly& poly);

}  // namespace reveal::seal
