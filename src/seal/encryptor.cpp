#include "seal/encryptor.hpp"

#include <stdexcept>

#include "seal/modarith.hpp"
#include "seal/sampler.hpp"

namespace reveal::seal {

Encryptor::Encryptor(const Context& context, const PublicKey& pk, SamplerVariant sampler)
    : context_(context), pk_(pk), sampler_(sampler) {
  if (pk_.p0.coeff_count() != context_.n() || pk_.p1.coeff_count() != context_.n())
    throw std::invalid_argument("Encryptor: public key does not match context");
}

Poly Encryptor::scale_plain(const Plaintext& plain) const {
  const std::size_t n = context_.n();
  const std::size_t k = context_.coeff_mod_count();
  const auto& moduli = context_.coeff_modulus();
  const auto& delta = context_.delta_mod_qj();
  const std::uint64_t t = context_.plain_modulus().value();
  if (plain.coeff_count() > n)
    throw std::invalid_argument("Encryptor: plaintext has too many coefficients");
  Poly result(n, k);
  for (std::size_t i = 0; i < plain.coeff_count(); ++i) {
    const std::uint64_t m = plain[i];
    if (m >= t) throw std::invalid_argument("Encryptor: plaintext coefficient >= t");
    for (std::size_t j = 0; j < k; ++j) {
      result.at(i, j) = mul_mod(moduli[j].reduce(m), delta[j], moduli[j]);
    }
  }
  return result;
}

Ciphertext Encryptor::encrypt(const Plaintext& plain, UniformRandomGenerator& random,
                              EncryptionWitness* witness) const {
  EncryptionWitness local;
  local.u = Poly(context_.n(), context_.coeff_mod_count());
  sample_poly_ternary(local.u, random, context_);

  Poly e1_poly(context_.n(), context_.coeff_mod_count());
  Poly e2_poly(context_.n(), context_.coeff_mod_count());
  if (sampler_ == SamplerVariant::kVulnerableV32) {
    set_poly_coeffs_normal(e1_poly.data(), random, context_, &local.e1);
    set_poly_coeffs_normal(e2_poly.data(), random, context_, &local.e2);
  } else {
    sample_poly_normal_v36(e1_poly.data(), random, context_, &local.e1);
    sample_poly_normal_v36(e2_poly.data(), random, context_, &local.e2);
  }

  const auto& tables = context_.fast_ntt_tables();
  const auto& moduli = context_.coeff_modulus();

  // c0 = Δ·m + p0·u + e1 ; c1 = p1·u + e2.
  Ciphertext ct;
  ct.resize(2, context_.n(), context_.coeff_mod_count());
  Poly p0u;
  polyops::multiply_ntt(pk_.p0, local.u, tables, p0u);
  Poly delta_m = scale_plain(plain);
  polyops::add(delta_m, p0u, moduli, ct[0]);
  polyops::add(ct[0], e1_poly, moduli, ct[0]);

  Poly p1u;
  polyops::multiply_ntt(pk_.p1, local.u, tables, p1u);
  polyops::add(p1u, e2_poly, moduli, ct[1]);

  if (witness != nullptr) *witness = std::move(local);
  return ct;
}

Ciphertext Encryptor::encrypt_with_witness(const Plaintext& plain,
                                           const EncryptionWitness& witness) const {
  if (witness.u.coeff_count() != context_.n() ||
      witness.e1.size() != context_.n() || witness.e2.size() != context_.n())
    throw std::invalid_argument("encrypt_with_witness: witness does not match context");

  Poly e1_poly;
  Poly e2_poly;
  encode_noise_values(witness.e1, context_, e1_poly);
  encode_noise_values(witness.e2, context_, e2_poly);

  const auto& tables = context_.fast_ntt_tables();
  const auto& moduli = context_.coeff_modulus();

  Ciphertext ct;
  ct.resize(2, context_.n(), context_.coeff_mod_count());
  Poly p0u;
  polyops::multiply_ntt(pk_.p0, witness.u, tables, p0u);
  Poly delta_m = scale_plain(plain);
  polyops::add(delta_m, p0u, moduli, ct[0]);
  polyops::add(ct[0], e1_poly, moduli, ct[0]);

  Poly p1u;
  polyops::multiply_ntt(pk_.p1, witness.u, tables, p1u);
  polyops::add(p1u, e2_poly, moduli, ct[1]);
  return ct;
}

}  // namespace reveal::seal
