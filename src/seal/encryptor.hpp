#pragma once
// BFV encryption (paper Eq. 1):
//   (c0, c1) = ([Δ·m + p0·u + e1]_q, [p1·u + e2]_q)
//
// The error polynomials e1, e2 come from the vulnerable
// set_poly_coeffs_normal sampler — the attack surface. The encryptor can
// optionally expose an `EncryptionWitness` carrying the exact sampled
// values, used as ground truth when evaluating the attack, and supports
// encrypting with externally supplied randomness (e.g. noise sampled on the
// RISC-V victim so the captured power trace corresponds to this exact
// ciphertext).

#include <cstdint>
#include <vector>

#include "seal/ciphertext.hpp"
#include "seal/encryption_params.hpp"
#include "seal/keys.hpp"
#include "seal/random.hpp"

namespace reveal::seal {

/// The fresh per-encryption secrets; recovering e1/e2 (and hence u) is
/// exactly what the paper's attack does.
struct EncryptionWitness {
  Poly u;                        ///< ternary encryption sample
  std::vector<std::int64_t> e1;  ///< signed Gaussian noise for c0
  std::vector<std::int64_t> e2;  ///< signed Gaussian noise for c1
};

enum class SamplerVariant {
  kVulnerableV32,  ///< set_poly_coeffs_normal (branching; paper target)
  kPatchedV36,     ///< branch-free v3.6-style sampler
};

class Encryptor {
 public:
  Encryptor(const Context& context, const PublicKey& pk,
            SamplerVariant sampler = SamplerVariant::kVulnerableV32);

  /// Encrypts `plain`, drawing u, e1, e2 from `random`. If `witness` is
  /// non-null it receives the sampled secrets.
  [[nodiscard]] Ciphertext encrypt(const Plaintext& plain, UniformRandomGenerator& random,
                                   EncryptionWitness* witness = nullptr) const;

  /// Encrypts with fully specified randomness (deterministic; used to tie a
  /// ciphertext to a power trace captured on the simulated target).
  [[nodiscard]] Ciphertext encrypt_with_witness(const Plaintext& plain,
                                                const EncryptionWitness& witness) const;

  /// Scales a plaintext by Delta into an RNS poly: result = Δ·m per modulus.
  [[nodiscard]] Poly scale_plain(const Plaintext& plain) const;

 private:
  const Context& context_;
  const PublicKey& pk_;
  SamplerVariant sampler_;
};

}  // namespace reveal::seal
