#include "seal/sampler.hpp"

#include <cmath>
#include <stdexcept>

namespace reveal::seal {

void set_poly_coeffs_normal(std::uint64_t* poly, UniformRandomGenerator& random,
                            const Context& context,
                            std::vector<std::int64_t>* sampled_out) {
  const auto& parms = context.parms();
  const std::size_t coeff_count = context.n();
  const std::size_t coeff_mod_count = context.coeff_mod_count();
  const auto& coeff_modulus = context.coeff_modulus();
  if (sampled_out != nullptr) sampled_out->assign(coeff_count, 0);

  // --- begin faithful port of SEAL v3.2 (paper Fig. 2) ---
  RandomToStandardAdapter engine(random);
  ClippedNormalDistribution dist(0, parms.noise_standard_deviation(),
                                 parms.noise_max_deviation());
  for (std::size_t i = 0; i < coeff_count; i++) {
    const std::int64_t noise = std::llround(dist(engine));
    if (sampled_out != nullptr) (*sampled_out)[i] = noise;
    if (noise > 0) {
      for (std::size_t j = 0; j < coeff_mod_count; j++) {
        poly[i + (j * coeff_count)] = static_cast<std::uint64_t>(noise);
      }
    } else if (noise < 0) {
      const std::int64_t negated = -noise;  // the negation the attack exploits
      for (std::size_t j = 0; j < coeff_mod_count; j++) {
        poly[i + (j * coeff_count)] =
            coeff_modulus[j].value() - static_cast<std::uint64_t>(negated);
      }
    } else {
      for (std::size_t j = 0; j < coeff_mod_count; j++) {
        poly[i + (j * coeff_count)] = 0;
      }
    }
  }
  // --- end faithful port ---
}

void sample_poly_normal_v36(std::uint64_t* poly, UniformRandomGenerator& random,
                            const Context& context,
                            std::vector<std::int64_t>* sampled_out) {
  const auto& parms = context.parms();
  const std::size_t coeff_count = context.n();
  const std::size_t coeff_mod_count = context.coeff_mod_count();
  const auto& coeff_modulus = context.coeff_modulus();
  if (sampled_out != nullptr) sampled_out->assign(coeff_count, 0);

  RandomToStandardAdapter engine(random);
  ClippedNormalDistribution dist(0, parms.noise_standard_deviation(),
                                 parms.noise_max_deviation());
  for (std::size_t i = 0; i < coeff_count; i++) {
    const std::int64_t noise = std::llround(dist(engine));
    if (sampled_out != nullptr) (*sampled_out)[i] = noise;
    // Branch-free sign handling (SEAL v3.6 replaces the if/else chain with
    // an iterator expression of the same shape): `flag` is all-ones exactly
    // when noise < 0, selecting the additive offset q_j without branching.
    const auto u_noise = static_cast<std::uint64_t>(noise);
    const std::uint64_t flag =
        static_cast<std::uint64_t>(-static_cast<std::int64_t>(noise < 0));
    for (std::size_t j = 0; j < coeff_mod_count; j++) {
      poly[i + (j * coeff_count)] = u_noise + (flag & coeff_modulus[j].value());
    }
  }
}

void sample_poly_ternary(Poly& poly, UniformRandomGenerator& random, const Context& context) {
  const std::size_t n = context.n();
  const std::size_t k = context.coeff_mod_count();
  if (poly.coeff_count() != n || poly.coeff_mod_count() != k) poly = Poly(n, k);
  const auto& moduli = context.coeff_modulus();
  // Rejection-sample a uniform value in {0, 1, 2} from 32-bit words.
  auto draw_ternary = [&random]() -> std::uint32_t {
    for (;;) {
      const std::uint32_t r = random.generate();
      if (r < 0xFFFFFFFFu / 3u * 3u) return r % 3u;
    }
  };
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t v = draw_ternary();  // 0 -> 0, 1 -> 1, 2 -> -1
    for (std::size_t j = 0; j < k; ++j) {
      if (v == 2) poly.at(i, j) = moduli[j].value() - 1;
      else poly.at(i, j) = v;
    }
  }
}

void sample_poly_uniform(Poly& poly, UniformRandomGenerator& random, const Context& context) {
  const std::size_t n = context.n();
  const std::size_t k = context.coeff_mod_count();
  if (poly.coeff_count() != n || poly.coeff_mod_count() != k) poly = Poly(n, k);
  const auto& moduli = context.coeff_modulus();
  for (std::size_t j = 0; j < k; ++j) {
    const std::uint64_t q = moduli[j].value();
    // Rejection sampling from 64-bit words below the largest multiple of q.
    const std::uint64_t limit = q * (~std::uint64_t{0} / q);
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t r = 0;
      do {
        r = (static_cast<std::uint64_t>(random.generate()) << 32) | random.generate();
      } while (r >= limit);
      poly.at(i, j) = r % q;
    }
  }
}

Poly sample_error_poly(UniformRandomGenerator& random, const Context& context,
                       std::vector<std::int64_t>* sampled_out) {
  Poly poly(context.n(), context.coeff_mod_count());
  set_poly_coeffs_normal(poly.data(), random, context, sampled_out);
  return poly;
}

void encode_noise_values(const std::vector<std::int64_t>& noise, const Context& context,
                         Poly& poly) {
  const std::size_t n = context.n();
  const std::size_t k = context.coeff_mod_count();
  if (noise.size() != n)
    throw std::invalid_argument("encode_noise_values: noise vector size mismatch");
  if (poly.coeff_count() != n || poly.coeff_mod_count() != k) poly = Poly(n, k);
  const auto& moduli = context.coeff_modulus();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      if (noise[i] > 0) {
        poly.at(i, j) = static_cast<std::uint64_t>(noise[i]);
      } else if (noise[i] < 0) {
        poly.at(i, j) = moduli[j].value() - static_cast<std::uint64_t>(-noise[i]);
      } else {
        poly.at(i, j) = 0;
      }
    }
  }
}

}  // namespace reveal::seal
