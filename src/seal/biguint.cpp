#include "seal/biguint.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace reveal::seal {

namespace {
__extension__ typedef unsigned __int128 u128;
}

BigUInt::BigUInt(std::uint64_t value) {
  if (value != 0) limbs_.push_back(value);
}

void BigUInt::normalize() noexcept {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

std::size_t BigUInt::bit_count() const noexcept {
  if (limbs_.empty()) return 0;
  std::uint64_t top = limbs_.back();
  std::size_t bits = (limbs_.size() - 1) * 64;
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigUInt::bit(std::size_t i) const noexcept {
  const std::size_t limb = i / 64;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 64)) & 1;
}

double BigUInt::to_double() const noexcept {
  double acc = 0.0;
  for (auto it = limbs_.rbegin(); it != limbs_.rend(); ++it) {
    acc = acc * 0x1.0p64 + static_cast<double>(*it);
  }
  return acc;
}

std::string BigUInt::to_string() const {
  if (is_zero()) return "0";
  BigUInt tmp = *this;
  std::string digits;
  const BigUInt ten(10);
  while (!tmp.is_zero()) {
    auto [q, r] = divmod(tmp, ten);
    digits.push_back(static_cast<char>('0' + r.low_word()));
    tmp = std::move(q);
  }
  std::reverse(digits.begin(), digits.end());
  return digits;
}

BigUInt& BigUInt::operator+=(const BigUInt& rhs) {
  limbs_.resize(std::max(limbs_.size(), rhs.limbs_.size()), 0);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const std::uint64_t addend = i < rhs.limbs_.size() ? rhs.limbs_[i] : 0;
    const u128 sum = static_cast<u128>(limbs_[i]) + addend + carry;
    limbs_[i] = static_cast<std::uint64_t>(sum);
    carry = static_cast<std::uint64_t>(sum >> 64);
  }
  if (carry != 0) limbs_.push_back(carry);
  return *this;
}

BigUInt& BigUInt::operator-=(const BigUInt& rhs) {
  if (compare(rhs) < 0) throw std::domain_error("BigUInt subtraction underflow");
  std::uint64_t borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const std::uint64_t subtrahend = i < rhs.limbs_.size() ? rhs.limbs_[i] : 0;
    const u128 lhs_ext = static_cast<u128>(limbs_[i]);
    const u128 rhs_ext = static_cast<u128>(subtrahend) + borrow;
    if (lhs_ext >= rhs_ext) {
      limbs_[i] = static_cast<std::uint64_t>(lhs_ext - rhs_ext);
      borrow = 0;
    } else {
      limbs_[i] = static_cast<std::uint64_t>((static_cast<u128>(1) << 64) + lhs_ext - rhs_ext);
      borrow = 1;
    }
  }
  normalize();
  return *this;
}

BigUInt& BigUInt::operator<<=(std::size_t bits) {
  if (is_zero() || bits == 0) return *this;
  const std::size_t limb_shift = bits / 64;
  const std::size_t bit_shift = bits % 64;
  limbs_.insert(limbs_.begin(), limb_shift, 0);
  if (bit_shift != 0) {
    std::uint64_t carry = 0;
    for (std::size_t i = limb_shift; i < limbs_.size(); ++i) {
      const std::uint64_t next_carry = limbs_[i] >> (64 - bit_shift);
      limbs_[i] = (limbs_[i] << bit_shift) | carry;
      carry = next_carry;
    }
    if (carry != 0) limbs_.push_back(carry);
  }
  return *this;
}

BigUInt& BigUInt::operator>>=(std::size_t bits) {
  const std::size_t limb_shift = bits / 64;
  const std::size_t bit_shift = bits % 64;
  if (limb_shift >= limbs_.size()) {
    limbs_.clear();
    return *this;
  }
  limbs_.erase(limbs_.begin(), limbs_.begin() + static_cast<std::ptrdiff_t>(limb_shift));
  if (bit_shift != 0) {
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
      limbs_[i] >>= bit_shift;
      if (i + 1 < limbs_.size()) limbs_[i] |= limbs_[i + 1] << (64 - bit_shift);
    }
  }
  normalize();
  return *this;
}

BigUInt operator*(const BigUInt& a, std::uint64_t b) {
  BigUInt out;
  if (a.is_zero() || b == 0) return out;
  out.limbs_.assign(a.limbs_.size() + 1, 0);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    const u128 prod = static_cast<u128>(a.limbs_[i]) * b + carry;
    out.limbs_[i] = static_cast<std::uint64_t>(prod);
    carry = static_cast<std::uint64_t>(prod >> 64);
  }
  out.limbs_[a.limbs_.size()] = carry;
  out.normalize();
  return out;
}

BigUInt operator*(const BigUInt& a, const BigUInt& b) {
  BigUInt out;
  if (a.is_zero() || b.is_zero()) return out;
  out.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < b.limbs_.size(); ++j) {
      const u128 cur = static_cast<u128>(a.limbs_[i]) * b.limbs_[j] +
                       out.limbs_[i + j] + carry;
      out.limbs_[i + j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    out.limbs_[i + b.limbs_.size()] += carry;
  }
  out.normalize();
  return out;
}

int BigUInt::compare(const BigUInt& rhs) const noexcept {
  if (limbs_.size() != rhs.limbs_.size())
    return limbs_.size() < rhs.limbs_.size() ? -1 : 1;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != rhs.limbs_[i]) return limbs_[i] < rhs.limbs_[i] ? -1 : 1;
  }
  return 0;
}

BigUInt::DivResult BigUInt::divmod(const BigUInt& numerator, const BigUInt& denominator) {
  if (denominator.is_zero()) throw std::domain_error("BigUInt division by zero");
  DivResult result;
  if (numerator.compare(denominator) < 0) {
    result.remainder = numerator;
    return result;
  }
  // Binary long division: adequate for the ≤256-bit values in decryption.
  const std::size_t nbits = numerator.bit_count();
  BigUInt remainder;
  BigUInt quotient;
  quotient.limbs_.assign((nbits + 63) / 64, 0);
  for (std::size_t i = nbits; i-- > 0;) {
    remainder <<= 1;
    if (numerator.bit(i)) {
      if (remainder.limbs_.empty()) remainder.limbs_.push_back(1);
      else remainder.limbs_[0] |= 1;
    }
    if (remainder.compare(denominator) >= 0) {
      remainder -= denominator;
      quotient.limbs_[i / 64] |= std::uint64_t{1} << (i % 64);
    }
  }
  quotient.normalize();
  result.quotient = std::move(quotient);
  result.remainder = std::move(remainder);
  return result;
}

std::uint64_t BigUInt::mod_word(std::uint64_t m) const {
  if (m == 0) throw std::domain_error("BigUInt::mod_word: division by zero");
  u128 acc = 0;
  for (auto it = limbs_.rbegin(); it != limbs_.rend(); ++it) {
    acc = ((acc << 64) | *it) % m;
  }
  return static_cast<std::uint64_t>(acc);
}

}  // namespace reveal::seal
