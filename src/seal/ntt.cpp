#include "seal/ntt.hpp"

#include <stdexcept>

#include "seal/modarith.hpp"

namespace reveal::seal {

std::size_t reverse_bits(std::size_t value, int bits) noexcept {
  std::size_t out = 0;
  for (int i = 0; i < bits; ++i) {
    out = (out << 1) | (value & 1);
    value >>= 1;
  }
  return out;
}

namespace {

bool is_power_of_two(std::size_t v) noexcept { return v != 0 && (v & (v - 1)) == 0; }

int log2_exact(std::size_t v) noexcept {
  int log = 0;
  while ((std::size_t{1} << log) < v) ++log;
  return log;
}

}  // namespace

NttTables::NttTables(std::size_t n, const Modulus& q) : n_(n), q_(q) {
  if (!is_power_of_two(n) || n < 2)
    throw std::invalid_argument("NttTables: n must be a power of two >= 2");
  if (!q.is_prime() || (q.value() - 1) % (2 * n) != 0)
    throw std::invalid_argument("NttTables: q must be prime with q ≡ 1 (mod 2n)");
  log_n_ = log2_exact(n);
  psi_ = minimal_primitive_root(2 * n, q);
  inv_n_ = inverse_mod(n, q);
  const std::uint64_t psi_inv = inverse_mod(psi_, q);

  // Powers of psi in bit-reversed order: root_powers_[i] = psi^bitrev(i, log n).
  root_powers_.assign(n, 0);
  inv_root_powers_.assign(n, 0);
  std::uint64_t power = 1;
  std::uint64_t inv_power = 1;
  std::vector<std::uint64_t> fwd(n), inv(n);
  for (std::size_t i = 0; i < n; ++i) {
    fwd[i] = power;
    inv[i] = inv_power;
    power = mul_mod(power, psi_, q);
    inv_power = mul_mod(inv_power, psi_inv, q);
  }
  // The inverse stage mirrors the forward stage with the same (m + i) index,
  // so both tables are stored in bit-reversed exponent order.
  for (std::size_t i = 0; i < n; ++i) {
    root_powers_[i] = fwd[reverse_bits(i, log_n_)];
    inv_root_powers_[i] = inv[reverse_bits(i, log_n_)];
  }
}

void NttTables::forward_transform(std::uint64_t* values) const noexcept {
  // Cooley-Tukey butterflies, decimation in time, root powers consumed in
  // bit-reversed order (Longa-Naehrig style negacyclic forward NTT).
  std::size_t t = n_ >> 1;
  std::size_t m = 1;
  std::size_t root_index = 1;
  for (; m < n_; m <<= 1, t >>= 1) {
    for (std::size_t i = 0; i < m; ++i) {
      const std::uint64_t w = root_powers_[root_index++];
      const std::size_t j1 = 2 * i * t;
      for (std::size_t j = j1; j < j1 + t; ++j) {
        const std::uint64_t u = values[j];
        const std::uint64_t v = mul_mod(values[j + t], w, q_);
        values[j] = add_mod(u, v, q_);
        values[j + t] = sub_mod(u, v, q_);
      }
    }
  }
}

void NttTables::inverse_transform(std::uint64_t* values) const noexcept {
  // Gentleman-Sande butterflies, decimation in frequency.
  std::size_t t = 1;
  std::size_t m = n_ >> 1;
  for (; m >= 1; m >>= 1, t <<= 1) {
    std::size_t j1 = 0;
    for (std::size_t i = 0; i < m; ++i) {
      const std::uint64_t w = inv_root_powers_[m + i];
      for (std::size_t j = j1; j < j1 + t; ++j) {
        const std::uint64_t u = values[j];
        const std::uint64_t v = values[j + t];
        values[j] = add_mod(u, v, q_);
        values[j + t] = mul_mod(sub_mod(u, v, q_), w, q_);
      }
      j1 += 2 * t;
    }
  }
  for (std::size_t i = 0; i < n_; ++i) values[i] = mul_mod(values[i], inv_n_, q_);
}

void NttTables::forward_transform(std::vector<std::uint64_t>& values) const {
  if (values.size() != n_) throw std::invalid_argument("forward_transform: size mismatch");
  forward_transform(values.data());
}

void NttTables::inverse_transform(std::vector<std::uint64_t>& values) const {
  if (values.size() != n_) throw std::invalid_argument("inverse_transform: size mismatch");
  inverse_transform(values.data());
}

}  // namespace reveal::seal
