#pragma once
// Randomness plumbing mirroring SEAL's:
//   UniformRandomGenerator  -> RandomToStandardAdapter -> ClippedNormalDistribution
//
// The vulnerable code path in SEAL v3.2 (paper Fig. 2) is
//   RandomToStandardAdapter engine(random);
//   ClippedNormalDistribution dist(0, sigma, max_dev);
//   int64_t noise = dist(engine);
// We reproduce the same layering so the ported sampler reads identically.

#include <cstdint>
#include <memory>

#include "numeric/rng.hpp"

namespace reveal::seal {

/// Abstract 32-bit random source (SEAL's UniformRandomGenerator).
class UniformRandomGenerator {
 public:
  virtual ~UniformRandomGenerator() = default;
  virtual std::uint32_t generate() = 0;
};

/// Deterministic generator backed by xoshiro256** — stands in for SEAL's
/// BlakePRNG; keyed by a 64-bit seed so experiments are reproducible.
class StandardRandomGenerator final : public UniformRandomGenerator {
 public:
  explicit StandardRandomGenerator(std::uint64_t seed) : rng_(seed) {}
  std::uint32_t generate() override { return static_cast<std::uint32_t>(rng_()); }

  /// Access to the underlying engine for non-SEAL sampling paths.
  [[nodiscard]] num::Xoshiro256StarStar& engine() noexcept { return rng_; }

 private:
  num::Xoshiro256StarStar rng_;
};

/// Adapts UniformRandomGenerator to the standard UniformRandomBitGenerator
/// requirements (SEAL's RandomToStandardAdapter).
class RandomToStandardAdapter {
 public:
  using result_type = std::uint32_t;

  explicit RandomToStandardAdapter(UniformRandomGenerator& generator)
      : generator_(&generator) {}

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint32_t{0}; }
  result_type operator()() { return generator_->generate(); }

 private:
  UniformRandomGenerator* generator_;
};

/// Port of SEAL's util::ClippedNormalDistribution: draws from
/// N(mean, stddev) and resamples until |x - mean| <= max_deviation.
///
/// The normal variate is produced by a Box-Muller transform over the
/// adapter's 32-bit outputs so that results are platform-deterministic
/// (std::normal_distribution is implementation-defined).
class ClippedNormalDistribution {
 public:
  /// Throws std::invalid_argument unless stddev >= 0 and max_deviation >= 0.
  ClippedNormalDistribution(double mean, double standard_deviation, double max_deviation);

  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double standard_deviation() const noexcept { return stddev_; }
  [[nodiscard]] double max_deviation() const noexcept { return max_dev_; }

  /// Draws one clipped normal variate (resampling loop — the time-variant
  /// behaviour the paper exploits to segment traces survives in our RISC-V
  /// port of this function).
  double operator()(RandomToStandardAdapter& engine);

 private:
  double next_gaussian(RandomToStandardAdapter& engine);

  double mean_;
  double stddev_;
  double max_dev_;
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace reveal::seal
