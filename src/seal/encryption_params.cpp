#include "seal/encryption_params.hpp"

#include <stdexcept>

namespace reveal::seal {

namespace {

bool is_power_of_two(std::size_t v) noexcept { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

EncryptionParameters EncryptionParameters::seal_128_1024() {
  EncryptionParameters parms;
  parms.set_poly_modulus_degree(1024);
  // q = 132120577 = 2^27 - 2^21 + 1; prime, q ≡ 1 (mod 2048) — the smallest
  // SEAL-128 coefficient modulus used in the paper's Table III.
  parms.set_coeff_modulus({Modulus(132120577ULL)});
  parms.set_plain_modulus(256);
  parms.set_noise_standard_deviation(3.19);
  parms.set_noise_max_deviation(41.0);
  return parms;
}

EncryptionParameters EncryptionParameters::toy_256() {
  EncryptionParameters parms;
  parms.set_poly_modulus_degree(256);
  parms.set_coeff_modulus({find_ntt_prime(20, 256)});
  parms.set_plain_modulus(64);
  parms.set_noise_standard_deviation(3.19);
  parms.set_noise_max_deviation(41.0);
  return parms;
}

EncryptionParameters EncryptionParameters::seal_128_4096() {
  EncryptionParameters parms;
  parms.set_poly_modulus_degree(4096);
  parms.set_coeff_modulus(find_ntt_primes(36, 4096, 3));
  parms.set_plain_modulus(65537);
  parms.set_noise_standard_deviation(3.19);
  parms.set_noise_max_deviation(41.0);
  return parms;
}

EncryptionParameters EncryptionParameters::toy_mul_64() {
  EncryptionParameters parms;
  parms.set_poly_modulus_degree(64);
  parms.set_coeff_modulus({find_ntt_prime(35, 64)});
  parms.set_plain_modulus(64);
  parms.set_noise_standard_deviation(3.19);
  parms.set_noise_max_deviation(41.0);
  return parms;
}

Context::Context(EncryptionParameters parms) : parms_(std::move(parms)) {
  const std::size_t n = parms_.poly_modulus_degree();
  if (!is_power_of_two(n) || n < 2)
    throw std::invalid_argument("Context: poly_modulus_degree must be a power of two >= 2");
  const auto& moduli = parms_.coeff_modulus();
  if (moduli.empty())
    throw std::invalid_argument("Context: coeff_modulus must not be empty");
  for (std::size_t i = 0; i < moduli.size(); ++i) {
    for (std::size_t j = i + 1; j < moduli.size(); ++j) {
      if (moduli[i] == moduli[j])
        throw std::invalid_argument("Context: duplicate coefficient moduli");
    }
  }
  const auto& t = parms_.plain_modulus();
  if (t.is_zero()) throw std::invalid_argument("Context: plain_modulus not set");
  if (parms_.noise_standard_deviation() <= 0.0 ||
      parms_.noise_max_deviation() < parms_.noise_standard_deviation())
    throw std::invalid_argument("Context: invalid noise distribution parameters");

  ntt_tables_.reserve(moduli.size());
  fast_ntt_tables_.reserve(moduli.size());
  total_q_ = BigUInt(1);
  for (const auto& q : moduli) {
    ntt_tables_.emplace_back(n, q);  // throws if q is not NTT-friendly
    fast_ntt_tables_.emplace_back(n, q);
    total_q_ = total_q_ * q.value();
  }
  if (BigUInt(t.value()) >= total_q_)
    throw std::invalid_argument("Context: plain_modulus must be smaller than coeff modulus");

  delta_ = BigUInt::divmod(total_q_, BigUInt(t.value())).quotient;
  delta_mod_qj_.reserve(moduli.size());
  for (const auto& q : moduli) delta_mod_qj_.push_back(delta_.mod_word(q.value()));
}

}  // namespace reveal::seal
