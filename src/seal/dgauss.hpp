#pragma once
// Discrete Gaussian samplers beyond SEAL's clipped continuous normal.
//
// Related work ([10] Kim et al., [12] Zhang et al.) attacks CDT-based
// samplers; this module provides a cumulative-distribution-table sampler in
// two flavours — a binary-search variant (fast, with secret-dependent
// memory access, i.e. the leaky construction those papers analyze) and a
// constant-time full-scan variant (their countermeasure). Both sample the
// rounded clipped Gaussian exactly (matching
// num::rounded_clipped_normal_pmf), so they are drop-in alternatives to the
// ClippedNormalDistribution pipeline for distribution-level experiments.

#include <cstdint>
#include <vector>

#include "numeric/rng.hpp"

namespace reveal::seal {

class CdtSampler {
 public:
  /// Builds the 64-bit-precision cumulative table for the rounded clipped
  /// Gaussian with the given sigma and clip bound. Throws
  /// std::invalid_argument for non-positive parameters.
  CdtSampler(double sigma, double max_deviation);

  [[nodiscard]] double sigma() const noexcept { return sigma_; }
  [[nodiscard]] int max_value() const noexcept { return max_value_; }
  /// Cumulative 64-bit thresholds, one per support value (ascending).
  [[nodiscard]] const std::vector<std::uint64_t>& table() const noexcept { return cdt_; }
  /// Support values aligned with table().
  [[nodiscard]] const std::vector<int>& support() const noexcept { return support_; }

  /// Binary-search sampling: O(log |support|) with secret-dependent access
  /// pattern (the construction attacked by the CDT side-channel papers).
  [[nodiscard]] int sample(num::Xoshiro256StarStar& rng) const noexcept;

  /// Constant-time sampling: scans the whole table with branchless
  /// accumulation; same output distribution as sample().
  [[nodiscard]] int sample_constant_time(num::Xoshiro256StarStar& rng) const noexcept;

 private:
  double sigma_;
  int max_value_;
  std::vector<int> support_;
  std::vector<std::uint64_t> cdt_;
};

}  // namespace reveal::seal
