#include "seal/crt.hpp"

#include <stdexcept>

#include "seal/modarith.hpp"

namespace reveal::seal {

CrtComposer::CrtComposer(const std::vector<Modulus>& moduli) : moduli_(moduli) {
  if (moduli_.empty()) throw std::invalid_argument("CrtComposer: no moduli");
  total_ = BigUInt(1);
  for (const auto& q : moduli_) total_ = total_ * q.value();
  half_total_ = total_;
  half_total_ >>= 1;

  punctured_.reserve(moduli_.size());
  inv_punctured_.reserve(moduli_.size());
  for (std::size_t j = 0; j < moduli_.size(); ++j) {
    BigUInt prod(1);
    for (std::size_t l = 0; l < moduli_.size(); ++l) {
      if (l != j) prod = prod * moduli_[l].value();
    }
    const std::uint64_t residue = prod.mod_word(moduli_[j].value());
    inv_punctured_.push_back(inverse_mod(residue, moduli_[j]));  // throws if not coprime
    punctured_.push_back(std::move(prod));
  }
}

BigUInt CrtComposer::compose(const std::vector<std::uint64_t>& residues) const {
  if (residues.size() != moduli_.size())
    throw std::invalid_argument("CrtComposer::compose: residue count mismatch");
  BigUInt acc;
  for (std::size_t j = 0; j < moduli_.size(); ++j) {
    const std::uint64_t term = mul_mod(residues[j], inv_punctured_[j], moduli_[j]);
    acc += punctured_[j] * term;
  }
  return BigUInt::divmod(acc, total_).remainder;
}

BigUInt CrtComposer::compose(const Poly& poly, std::size_t i) const {
  if (poly.coeff_mod_count() != moduli_.size())
    throw std::invalid_argument("CrtComposer::compose: poly modulus count mismatch");
  std::vector<std::uint64_t> residues(moduli_.size());
  for (std::size_t j = 0; j < moduli_.size(); ++j) residues[j] = poly.at(i, j);
  return compose(residues);
}

BigUInt CrtComposer::centered_magnitude(const BigUInt& x) const {
  if (x > half_total_) return total_ - x;
  return x;
}

}  // namespace reveal::seal
