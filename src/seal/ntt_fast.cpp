#include "seal/ntt_fast.hpp"

#include <stdexcept>

#include "seal/modarith.hpp"
#include "seal/ntt.hpp"

namespace reveal::seal {

namespace {

__extension__ typedef unsigned __int128 u128;

/// floor(operand * 2^64 / q) — the Shoup constant of `operand`.
std::uint64_t shoup_constant(std::uint64_t operand, std::uint64_t q) {
  return static_cast<std::uint64_t>((static_cast<u128>(operand) << 64) / q);
}

/// Shoup modular multiply: returns x*w mod q in [0, 2q).
/// (w, w_shoup) precomputed; x < 4q.
inline std::uint64_t mul_shoup_lazy(std::uint64_t x, std::uint64_t w,
                                    std::uint64_t w_shoup, std::uint64_t q) noexcept {
  const std::uint64_t hi =
      static_cast<std::uint64_t>((static_cast<u128>(x) * w_shoup) >> 64);
  return x * w - hi * q;  // in [0, 2q)
}

bool is_power_of_two(std::size_t v) noexcept { return v != 0 && (v & (v - 1)) == 0; }

int log2_exact(std::size_t v) noexcept {
  int log = 0;
  while ((std::size_t{1} << log) < v) ++log;
  return log;
}

}  // namespace

FastNttTables::FastNttTables(std::size_t n, const Modulus& q) : n_(n), q_(q) {
  if (!is_power_of_two(n) || n < 2)
    throw std::invalid_argument("FastNttTables: n must be a power of two >= 2");
  if (!q.is_prime() || (q.value() - 1) % (2 * n) != 0)
    throw std::invalid_argument("FastNttTables: q must be prime with q ≡ 1 (mod 2n)");
  if (q.bit_count() > 61)
    throw std::invalid_argument("FastNttTables: q must be below 2^61 for lazy reduction");
  log_n_ = log2_exact(n);
  two_q_ = 2 * q.value();

  const std::uint64_t psi = minimal_primitive_root(2 * n, q);
  const std::uint64_t psi_inv = inverse_mod(psi, q);
  inv_n_ = inverse_mod(n, q);
  inv_n_shoup_ = shoup_constant(inv_n_, q.value());

  std::vector<std::uint64_t> fwd(n), inv(n);
  std::uint64_t power = 1, inv_power = 1;
  for (std::size_t i = 0; i < n; ++i) {
    fwd[i] = power;
    inv[i] = inv_power;
    power = mul_mod(power, psi, q);
    inv_power = mul_mod(inv_power, psi_inv, q);
  }
  roots_.assign(n, 0);
  roots_shoup_.assign(n, 0);
  inv_roots_.assign(n, 0);
  inv_roots_shoup_.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t rev = reverse_bits(i, log_n_);
    roots_[i] = fwd[rev];
    roots_shoup_[i] = shoup_constant(fwd[rev], q.value());
    inv_roots_[i] = inv[rev];
    inv_roots_shoup_[i] = shoup_constant(inv[rev], q.value());
  }
}

void FastNttTables::forward_transform(std::uint64_t* values) const noexcept {
  // Cooley-Tukey with lazy values in [0, 4q): at each butterfly
  //   u' = u + v*w  (u < 4q folded to < 2q first; v*w in [0, 2q))
  //   v' = u - v*w + 2q
  const std::uint64_t q = q_.value();
  const std::uint64_t two_q = two_q_;
  std::size_t t = n_ >> 1;
  std::size_t m = 1;
  std::size_t root_index = 1;
  for (; m < n_; m <<= 1, t >>= 1) {
    for (std::size_t i = 0; i < m; ++i) {
      const std::uint64_t w = roots_[root_index];
      const std::uint64_t ws = roots_shoup_[root_index];
      ++root_index;
      const std::size_t j1 = 2 * i * t;
      for (std::size_t j = j1; j < j1 + t; ++j) {
        std::uint64_t u = values[j];
        if (u >= two_q) u -= two_q;  // fold to [0, 2q)
        const std::uint64_t v = mul_shoup_lazy(values[j + t], w, ws, q);  // [0, 2q)
        values[j] = u + v;               // [0, 4q)
        values[j + t] = u + two_q - v;   // [0, 4q)
      }
    }
  }
  for (std::size_t i = 0; i < n_; ++i) {
    std::uint64_t v = values[i];
    if (v >= two_q) v -= two_q;
    if (v >= q) v -= q;
    values[i] = v;
  }
}

void FastNttTables::inverse_transform(std::uint64_t* values) const noexcept {
  // Gentleman-Sande, lazy in [0, 2q).
  const std::uint64_t q = q_.value();
  const std::uint64_t two_q = two_q_;
  std::size_t t = 1;
  std::size_t m = n_ >> 1;
  for (; m >= 1; m >>= 1, t <<= 1) {
    std::size_t j1 = 0;
    for (std::size_t i = 0; i < m; ++i) {
      const std::uint64_t w = inv_roots_[m + i];
      const std::uint64_t ws = inv_roots_shoup_[m + i];
      for (std::size_t j = j1; j < j1 + t; ++j) {
        const std::uint64_t u = values[j];       // [0, 2q)
        const std::uint64_t v = values[j + t];   // [0, 2q)
        std::uint64_t sum = u + v;               // [0, 4q)
        if (sum >= two_q) sum -= two_q;
        values[j] = sum;                         // [0, 2q)
        values[j + t] = mul_shoup_lazy(u + two_q - v, w, ws, q);  // [0, 2q)
      }
      j1 += 2 * t;
    }
  }
  for (std::size_t i = 0; i < n_; ++i) {
    std::uint64_t v = mul_shoup_lazy(values[i], inv_n_, inv_n_shoup_, q);
    if (v >= q) v -= q;
    values[i] = v;
  }
}

void FastNttTables::forward_transform(std::vector<std::uint64_t>& values) const {
  if (values.size() != n_)
    throw std::invalid_argument("FastNttTables::forward_transform: size mismatch");
  forward_transform(values.data());
}

void FastNttTables::inverse_transform(std::vector<std::uint64_t>& values) const {
  if (values.size() != n_)
    throw std::invalid_argument("FastNttTables::inverse_transform: size mismatch");
  inverse_transform(values.data());
}

}  // namespace reveal::seal
