#pragma once
// Modulus with precomputed Barrett constants, mirroring SEAL's SmallModulus.
//
// Supports moduli up to 61 bits. The Barrett constant floor(2^128 / q) is
// stored as two 64-bit words so that 128-bit products can be reduced without
// division, exactly as SEAL does.

#include <cstdint>
#include <vector>

namespace reveal::seal {

class Modulus {
 public:
  Modulus() = default;

  /// Constructs a modulus; throws std::invalid_argument unless
  /// 2 <= value < 2^61.
  explicit Modulus(std::uint64_t value);

  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }
  [[nodiscard]] int bit_count() const noexcept { return bit_count_; }
  [[nodiscard]] bool is_zero() const noexcept { return value_ == 0; }
  [[nodiscard]] bool is_prime() const noexcept { return is_prime_; }

  /// Barrett reduction of a 64-bit operand.
  [[nodiscard]] std::uint64_t reduce(std::uint64_t input) const noexcept;

  /// Barrett reduction of a 128-bit operand given as (high, low) words.
  [[nodiscard]] std::uint64_t reduce128(std::uint64_t high, std::uint64_t low) const noexcept;

  friend bool operator==(const Modulus& a, const Modulus& b) noexcept {
    return a.value_ == b.value_;
  }

 private:
  std::uint64_t value_ = 0;
  std::uint64_t const_ratio_[2] = {0, 0};  // floor(2^128 / value), low/high word
  int bit_count_ = 0;
  bool is_prime_ = false;
};

/// Deterministic Miller-Rabin primality test, exact for all 64-bit inputs.
[[nodiscard]] bool is_prime_u64(std::uint64_t n) noexcept;

/// Finds the largest prime p < 2^bit_count with p ≡ 1 (mod 2n), suitable as
/// an NTT-friendly coefficient modulus for polynomial degree n.
/// Throws std::runtime_error if none exists in the search window.
[[nodiscard]] Modulus find_ntt_prime(int bit_count, std::size_t poly_degree,
                                     std::size_t skip = 0);

/// Generates `count` distinct NTT-friendly primes of the given bit size.
[[nodiscard]] std::vector<Modulus> find_ntt_primes(int bit_count,
                                                   std::size_t poly_degree,
                                                   std::size_t count);

}  // namespace reveal::seal
