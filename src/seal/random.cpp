#include "seal/random.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace reveal::seal {

ClippedNormalDistribution::ClippedNormalDistribution(double mean, double standard_deviation,
                                                     double max_deviation)
    : mean_(mean), stddev_(standard_deviation), max_dev_(max_deviation) {
  if (!(standard_deviation >= 0.0) || !(max_deviation >= 0.0))
    throw std::invalid_argument(
        "ClippedNormalDistribution: deviations must be non-negative");
}

double ClippedNormalDistribution::next_gaussian(RandomToStandardAdapter& engine) {
  if (has_cached_) {
    has_cached_ = false;
    return cached_;
  }
  // Box-Muller from two uniform doubles built out of 32-bit words.
  auto uniform = [&engine]() {
    const std::uint64_t hi = engine();
    const std::uint64_t lo = engine();
    const std::uint64_t bits = ((hi << 32) | lo) >> 11;  // 53 bits
    return static_cast<double>(bits) * 0x1.0p-53;
  };
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_ = radius * std::sin(angle);
  has_cached_ = true;
  return radius * std::cos(angle);
}

double ClippedNormalDistribution::operator()(RandomToStandardAdapter& engine) {
  // SEAL's loop: resample until the draw falls inside the clip window.
  for (;;) {
    const double value = next_gaussian(engine) * stddev_ + mean_;
    if (std::abs(value - mean_) <= max_dev_) return value;
  }
}

}  // namespace reveal::seal
