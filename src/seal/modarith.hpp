#pragma once
// Scalar modular arithmetic on top of `Modulus`.

#include <cstdint>

#include "seal/modulus.hpp"

namespace reveal::seal {

/// (a + b) mod q; inputs must already be < q.
[[nodiscard]] inline std::uint64_t add_mod(std::uint64_t a, std::uint64_t b,
                                           const Modulus& q) noexcept {
  std::uint64_t s = a + b;
  if (s >= q.value()) s -= q.value();
  return s;
}

/// (a - b) mod q; inputs must already be < q.
[[nodiscard]] inline std::uint64_t sub_mod(std::uint64_t a, std::uint64_t b,
                                           const Modulus& q) noexcept {
  return a >= b ? a - b : a + q.value() - b;
}

/// (-a) mod q; input must already be < q.
[[nodiscard]] inline std::uint64_t negate_mod(std::uint64_t a, const Modulus& q) noexcept {
  return a == 0 ? 0 : q.value() - a;
}

/// (a * b) mod q via Barrett reduction of the 128-bit product.
[[nodiscard]] inline std::uint64_t mul_mod(std::uint64_t a, std::uint64_t b,
                                           const Modulus& q) noexcept {
  __extension__ typedef unsigned __int128 u128;
  const u128 prod = static_cast<u128>(a) * b;
  return q.reduce128(static_cast<std::uint64_t>(prod >> 64),
                     static_cast<std::uint64_t>(prod));
}

/// a^exp mod q (square-and-multiply).
[[nodiscard]] std::uint64_t pow_mod(std::uint64_t a, std::uint64_t exp,
                                    const Modulus& q) noexcept;

/// Multiplicative inverse of a mod prime q; throws std::invalid_argument if
/// a ≡ 0 or q is not prime.
[[nodiscard]] std::uint64_t inverse_mod(std::uint64_t a, const Modulus& q);

/// Returns true and writes a primitive 2n-th root of unity mod q into `root`
/// (q prime, q ≡ 1 mod 2n); returns false if none exists.
bool try_primitive_root(std::size_t two_n, const Modulus& q, std::uint64_t& root);

/// The *minimal* primitive 2n-th root of unity mod q (SEAL convention);
/// throws std::runtime_error if none exists.
[[nodiscard]] std::uint64_t minimal_primitive_root(std::size_t two_n, const Modulus& q);

/// Centers x in [0,q) into the signed representative in (-q/2, q/2].
[[nodiscard]] inline std::int64_t center_mod(std::uint64_t x, const Modulus& q) noexcept {
  const std::uint64_t half = q.value() >> 1;
  if (x > half) return static_cast<std::int64_t>(x) - static_cast<std::int64_t>(q.value());
  return static_cast<std::int64_t>(x);
}

}  // namespace reveal::seal
