#include "seal/encoder.hpp"

#include <stdexcept>

#include "seal/modarith.hpp"

namespace reveal::seal {

IntegerEncoder::IntegerEncoder(const Context& context) : context_(context) {}

Plaintext IntegerEncoder::encode(std::uint64_t value) const {
  std::vector<std::uint64_t> coeffs;
  while (value != 0) {
    coeffs.push_back(value & 1);
    value >>= 1;
  }
  if (coeffs.size() > context_.n())
    throw std::invalid_argument("IntegerEncoder::encode: value needs too many coefficients");
  return Plaintext(std::move(coeffs));
}

std::int64_t IntegerEncoder::decode(const Plaintext& plain) const {
  const Modulus& t = context_.plain_modulus();
  // Evaluate at x = 2 with centered coefficients (mod-t wrap tolerated as in
  // SEAL: coefficients above t/2 count as negative).
  std::int64_t result = 0;
  for (std::size_t i = plain.coeff_count(); i-- > 0;) {
    const std::int64_t c = center_mod(t.reduce(plain[i]), t);
    // result = result*2 + c with overflow checks.
    if (result > (INT64_MAX >> 1) || result < (INT64_MIN >> 1))
      throw std::overflow_error("IntegerEncoder::decode: value exceeds int64");
    result = result * 2 + c;
  }
  return result;
}

BatchEncoder::BatchEncoder(const Context& context)
    : context_(context),
      slots_(context.n()),
      tables_([&context]() -> NttTables {
        const Modulus& t = context.plain_modulus();
        if (!t.is_prime() || (t.value() - 1) % (2 * context.n()) != 0)
          throw std::invalid_argument(
              "BatchEncoder: plain_modulus must be prime with t ≡ 1 (mod 2n)");
        return NttTables(context.n(), t);
      }()) {}

Plaintext BatchEncoder::encode(const std::vector<std::uint64_t>& values) const {
  if (values.size() > slots_)
    throw std::invalid_argument("BatchEncoder::encode: too many values");
  const std::uint64_t t = context_.plain_modulus().value();
  std::vector<std::uint64_t> slots(slots_, 0);
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (values[i] >= t) throw std::invalid_argument("BatchEncoder::encode: value >= t");
    slots[i] = values[i];
  }
  tables_.inverse_transform(slots);
  return Plaintext(std::move(slots));
}

std::vector<std::uint64_t> BatchEncoder::decode(const Plaintext& plain) const {
  std::vector<std::uint64_t> coeffs(slots_, 0);
  for (std::size_t i = 0; i < slots_ && i < plain.coeff_count(); ++i) coeffs[i] = plain[i];
  tables_.forward_transform(coeffs);
  return coeffs;
}

}  // namespace reveal::seal
